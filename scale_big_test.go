//go:build !race

// The million-row tier allocates tens of millions of rows' worth of
// packed columns; under the race detector that footprint and slowdown
// would dominate `make race`, so this file is plain-build only (the
// same kernels are race-tested on smaller tables in internal/table).

package psk

import (
	"testing"
	"time"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/search"
)

// TestScaleMillionRows drives the columnar substrate at its design
// point: the 48,842-row Adult shape scaled x20 (~977k rows). It pins
// the two scale properties the substrate exists for — allocations per
// row must stay flat as the table grows 10x (arena-backed chunked
// scans allocate per group and per block, not per row), and the full
// Samarati search over the scaled table must land on a verified
// p-sensitive k-anonymous result where the reference CheckBasic scan
// and the policy/group-stats path agree.
func TestScaleMillionRows(t *testing.T) {
	if testing.Short() {
		t.Skip("million-row scale test skipped in -short mode")
	}
	start := time.Now()
	small, err := dataset.GenerateScaled(2, 2006)
	if err != nil {
		t.Fatal(err)
	}
	big, err := dataset.GenerateScaled(20, 2006)
	if err != nil {
		t.Fatal(err)
	}
	qis := dataset.QIs()
	conf := dataset.Confidential()

	// Allocation flatness: allocs/row on the ~1M-row table must stay
	// within 2x of the ~100k-row table. AllocsPerRun's warm-up call
	// primes the arena pool, so the measured runs see steady state.
	perRow := func(tblRows int, f func()) float64 {
		return testing.AllocsPerRun(3, f) / float64(tblRows)
	}
	smallRate := perRow(small.NumRows(), func() {
		if _, err := small.GroupStats(qis, conf, 1); err != nil {
			t.Fatal(err)
		}
	})
	bigRate := perRow(big.NumRows(), func() {
		if _, err := big.GroupStats(qis, conf, 1); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("GroupStats allocs/row: %.4f at %d rows, %.4f at %d rows",
		smallRate, small.NumRows(), bigRate, big.NumRows())
	if bigRate > 2*smallRate {
		t.Errorf("allocs/row grew with table size: %.4f at 1M vs %.4f at 100k (limit 2x)",
			bigRate, smallRate)
	}

	// Full search at a million rows, then both verdict implementations
	// of Definition 2 on the masked output.
	hs, err := dataset.Hierarchies()
	if err != nil {
		t.Fatal(err)
	}
	cfg := search.Config{
		QIs:           qis,
		Confidential:  conf,
		Hierarchies:   hs,
		K:             10,
		P:             2,
		MaxSuppress:   big.NumRows() / 100,
		UseConditions: true,
	}
	res, err := search.Samarati(big, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no solution on the million-row workload")
	}
	chk, err := core.Check(res.Masked, cfg.QIs, cfg.Confidential, cfg.P, cfg.K)
	if err != nil || !chk.Satisfied {
		t.Fatalf("policy-path verification failed: %+v, %v", chk, err)
	}
	basic, err := core.CheckBasic(res.Masked, cfg.QIs, cfg.Confidential, cfg.P, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if !basic {
		t.Fatal("CheckBasic and the policy path disagree on the masked result")
	}
	t.Logf("1M pipeline: node %v, %d suppressed, %v", res.Node, res.Suppressed, time.Since(start))
}
