package psk

// One benchmark per table and figure of the paper's evaluation, plus
// the ablation and paradigm-comparison studies DESIGN.md calls out
// (E10, E11). Each benchmark regenerates the corresponding artifact
// through internal/experiments and reports domain metrics alongside
// time/allocs, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. EXPERIMENTS.md records paper-vs-measured values.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/experiments"
	"psk/internal/generalize"
	"psk/internal/lattice"
	"psk/internal/loss"
	"psk/internal/obs"
	"psk/internal/search"
	"psk/internal/stream"
	"psk/internal/table"
)

// BenchmarkTable1MotivatingAttack regenerates the Section 2 attack
// (Tables 1-2): the intruder links the external list and learns Sam's
// and Eric's diagnosis.
func BenchmarkTable1MotivatingAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMotivatingAttack()
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.AttributeDisclosed != 2 {
			b.Fatalf("attribute disclosures = %d, want 2", res.Summary.AttributeDisclosed)
		}
	}
	b.ReportMetric(2, "disclosures")
}

// BenchmarkTable3PSensitivity regenerates the Table 3 analysis:
// 3-anonymous, 1-sensitive; 2-sensitive after the paper's edit.
func BenchmarkTable3PSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3Sensitivity()
		if err != nil {
			b.Fatal(err)
		}
		if res.Sensitivity != 1 || res.FixedSensitivity != 2 {
			b.Fatalf("sensitivity = %d/%d, want 1/2", res.Sensitivity, res.FixedSensitivity)
		}
	}
}

// BenchmarkFigure1Hierarchies regenerates the Figure 1 DGH/VGH
// renderings for ZipCode and Sex.
func BenchmarkFigure1Hierarchies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ZipCode.Levels) != 3 || len(res.Sex.Levels) != 2 {
			b.Fatal("wrong hierarchy shapes")
		}
	}
}

// BenchmarkFigure2Lattice regenerates the Figure 2 lattice (6 nodes,
// height 3).
func BenchmarkFigure2Lattice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure2()
		if err != nil {
			b.Fatal(err)
		}
		if res.Size != 6 || res.Height != 3 {
			b.Fatalf("lattice = %d/%d", res.Size, res.Height)
		}
	}
}

// BenchmarkFigure3SuppressionCounts regenerates Figure 3's per-node
// counts of tuples failing 3-anonymity (10, 7, 7, 2, 0, 0).
func BenchmarkFigure3SuppressionCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure3()
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, c := range res.Counts {
			total += c
		}
		if total != 26 { // 10+7+7+2+0+0
			b.Fatalf("count total = %d, want 26", total)
		}
	}
}

// BenchmarkTable4MinimalGeneralizations regenerates Table 4: the
// 3-minimal generalizations for TS = 0..10.
func BenchmarkTable4MinimalGeneralizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 11 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkTables5and6FrequencySets regenerates Tables 5-6 and the
// maxGroups walk-through (300/100/50/25 for p = 2..5).
func BenchmarkTables5and6FrequencySets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunExample1()
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxGroups[5] != 25 {
			b.Fatalf("maxGroups(5) = %d, want 25", res.MaxGroups[5])
		}
	}
}

// BenchmarkTable7AdultHierarchies regenerates Table 7 and the Section 4
// lattice shape (96 nodes, height 9).
func BenchmarkTable7AdultHierarchies(b *testing.B) {
	im, err := dataset.Generate(4000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable7(im)
		if err != nil {
			b.Fatal(err)
		}
		if res.LatticeSize != 96 || res.Height != 9 {
			b.Fatalf("lattice = %d/%d", res.LatticeSize, res.Height)
		}
	}
}

// BenchmarkTable8AttributeDisclosures regenerates the paper's main
// experiment: k-minimal Samarati maskings of Adult samples (n = 400,
// 4000; k = 2, 3) and their attribute-disclosure counts.
func BenchmarkTable8AttributeDisclosures(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last experiments.Table8Result
	for i := 0; i < b.N; i++ {
		last, err = experiments.RunTable8(experiments.Table8Config{
			Source:     src,
			SampleSeed: 17,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	positive := 0
	for _, r := range last.Rows {
		if r.Disclosures > 0 {
			positive++
		}
	}
	b.ReportMetric(float64(positive), "cells-with-disclosures")
}

// BenchmarkAblationConditions measures Algorithm 2's necessary
// conditions against the basic Algorithm 1 inside a p-k-minimal search
// (the paper's future-work comparison, E10).
func BenchmarkAblationConditions(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(400, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	base := search.Config{
		QIs:          dataset.QIs(),
		Confidential: dataset.Confidential(),
		Hierarchies:  hs,
		K:            3,
		P:            2,
		MaxSuppress:  4,
	}
	b.Run("WithConditions", func(b *testing.B) {
		cfg := base
		cfg.UseConditions = true
		benchSearch(b, im, cfg)
	})
	b.Run("WithoutConditions", func(b *testing.B) {
		cfg := base
		cfg.UseConditions = false
		benchSearch(b, im, cfg)
	})
}

// BenchmarkCheckAlgorithms compares Algorithm 1 (basic) with Algorithm
// 2 (improved) as standalone property tests on a masked Adult sample —
// the per-check version of the E10 ablation. The improved test's win
// comes from rejecting infeasible tables before the group scan.
func BenchmarkCheckAlgorithms(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(4000, 17)
	if err != nil {
		b.Fatal(err)
	}
	qis := dataset.QIs()
	conf := dataset.Confidential()
	// Precompute bounds once, as Theorems 1-2 license.
	bounds, err := core.ComputeBounds(im, conf, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Algorithm1Basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CheckBasic(im, qis, conf, 2, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Algorithm2Improved", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CheckWithBounds(im, qis, conf, 2, 3, bounds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSearchStrategies compares the three lattice searches on the
// same Adult workload (DESIGN.md ablation 3).
func BenchmarkSearchStrategies(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(1000, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	cfg := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             1,
		MaxSuppress:   10,
		UseConditions: true,
	}
	b.Run("Samarati", func(b *testing.B) { benchSearch(b, im, cfg) })
	b.Run("SamaratiWorkers4", func(b *testing.B) {
		c := cfg
		c.Workers = 4
		benchSearch(b, im, c)
	})
	b.Run("BottomUp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.BottomUp(im, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Minimal) == 0 {
				b.Fatal("found nothing")
			}
		}
	})
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.Exhaustive(im, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Minimal) == 0 {
				b.Fatal("found nothing")
			}
		}
	})
}

// BenchmarkMondrianVsFullDomain compares the two recoding paradigms at
// equal k on the same sample (E11): Mondrian should produce far lower
// discernibility.
func BenchmarkMondrianVsFullDomain(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(2000, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("FullDomain", func(b *testing.B) {
		cfg := search.Config{
			QIs:           dataset.QIs(),
			Confidential:  dataset.Confidential(),
			Hierarchies:   hs,
			K:             5,
			P:             1,
			MaxSuppress:   40,
			UseConditions: true,
		}
		benchSearch(b, im, cfg)
	})
	b.Run("Mondrian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.Mondrian(im, search.MondrianConfig{
				QIs: dataset.QIs(), K: 5, P: 1, Strict: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Partitions == 0 {
				b.Fatal("no partitions")
			}
		}
	})
}

// BenchmarkGroupBy exercises the table engine's group-by on Adult-sized
// data (DESIGN.md ablation 4's hash-based frequency sets).
func BenchmarkGroupBy(b *testing.B) {
	im, err := dataset.Generate(10000, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, err := im.GroupBy(dataset.QIs()...)
		if err != nil {
			b.Fatal(err)
		}
		if len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

func benchSearch(b *testing.B, im *table.Table, cfg search.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := search.Samarati(im, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("found nothing")
		}
	}
}

// BenchmarkGreedyCluster measures the clustering generator (the
// follow-up-work algorithm) on an Adult sample at k=4, p=2.
func BenchmarkGreedyCluster(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(1000, 17)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := search.GreedyCluster(im, search.ClusterConfig{
			QIs: dataset.QIs(), Confidential: dataset.Confidential(), K: 4, P: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Clusters == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkAllMinimal compares predictive tagging against the
// exhaustive scan when enumerating the complete p-k-minimal antichain.
func BenchmarkAllMinimal(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(500, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	cfg := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
	}
	b.Run("PredictiveTagging", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.AllMinimal(im, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Minimal) == 0 {
				b.Fatal("found nothing")
			}
		}
	})
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.Exhaustive(im, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Minimal) == 0 {
				b.Fatal("found nothing")
			}
		}
	})
}

// BenchmarkLocalVsTupleSuppression compares the two suppression styles
// at the same lattice node.
func BenchmarkLocalVsTupleSuppression(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(2000, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	m, err := generalize.NewMasker(dataset.QIs(), hs)
	if err != nil {
		b.Fatal(err)
	}
	node := lattice.Node{1, 1, 1, 0}
	g, err := m.Apply(im, node)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("TupleSuppression", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := m.Suppress(g, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CellSuppression", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := m.SuppressCells(g, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncognitoVsSamarati compares the subset-pruned complete
// search against binary search on the Adult lattice.
func BenchmarkIncognitoVsSamarati(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(500, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	cfg := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
	}
	b.Run("Incognito", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.Incognito(im, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Minimal) == 0 {
				b.Fatal("found nothing")
			}
		}
	})
	b.Run("IncognitoWorkers4", func(b *testing.B) {
		c := cfg
		c.Workers = 4
		for i := 0; i < b.N; i++ {
			res, err := search.Incognito(im, c)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Minimal) == 0 {
				b.Fatal("found nothing")
			}
		}
	})
	b.Run("Samarati", func(b *testing.B) { benchSearch(b, im, cfg) })
}

// BenchmarkParallelSearch measures the node-evaluation engine against
// the pre-engine baseline on the Adult workload. Baseline disables the
// generalized-column cache and the single-pass suppression (the
// original per-node cost); WorkersN runs the engine with an N-goroutine
// pool. Results are identical across all variants — only the cost
// moves. Note that on a single-CPU host the WorkersN variants cannot
// beat Workers1; the engine's speedup there comes from the cache, and
// the worker pool pays off once GOMAXPROCS > 1.
func BenchmarkParallelSearch(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(1000, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
	}
	variants := []struct {
		name string
		mut  func(*search.Config)
	}{
		{"Baseline", func(c *search.Config) { c.DisableCache = true }},
		{"Workers1", func(c *search.Config) { c.Workers = 1 }},
		{"Workers2", func(c *search.Config) { c.Workers = 2 }},
		{"Workers4", func(c *search.Config) { c.Workers = 4 }},
		{"Workers8", func(c *search.Config) { c.Workers = 8 }},
	}
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		b.Run(fmt.Sprintf("Samarati/%s", v.name), func(b *testing.B) { benchSearch(b, im, cfg) })
	}
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		b.Run(fmt.Sprintf("Exhaustive/%s", v.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := search.Exhaustive(im, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Minimal) == 0 {
					b.Fatal("found nothing")
				}
			}
		})
	}
}

// BenchmarkRollup measures the group-statistics roll-up store against
// the PR 1 engine (DisableRollup) on the Adult workload: with the
// store, every lattice node after the first is verdicted by merging an
// already-evaluated descendant's groups instead of re-scanning the
// sample's rows, so complete searches (Exhaustive, Incognito) — which
// evaluate many ancestors of the bottom — see the largest win. Results
// are byte-identical across all variants (rollup_test.go).
func BenchmarkRollup(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(1000, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
	}
	variants := []struct {
		name string
		mut  func(*search.Config)
	}{
		{"Rollup", func(c *search.Config) {}},
		{"DisableRollup", func(c *search.Config) { c.DisableRollup = true }},
	}
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		b.Run(fmt.Sprintf("Exhaustive/%s", v.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := search.Exhaustive(im, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Minimal) == 0 {
					b.Fatal("found nothing")
				}
			}
		})
	}
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		b.Run(fmt.Sprintf("Incognito/%s", v.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := search.Incognito(im, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Minimal) == 0 {
					b.Fatal("found nothing")
				}
			}
		})
	}
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		b.Run(fmt.Sprintf("Samarati/%s", v.name), func(b *testing.B) { benchSearch(b, im, cfg) })
	}
}

// BenchmarkAnatomize measures the bucketization release on an Adult
// sample (MaritalStatus as the sensitive attribute; Pay is too skewed
// to be anatomy-eligible, which EXPERIMENTS.md discusses).
func BenchmarkAnatomize(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(2000, 17)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := search.Anatomize(im, []string{dataset.Age, dataset.Race, dataset.Sex}, dataset.MaritalStatus, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.Groups == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkMaskingMethods regenerates the E14 masking-method
// comparison (Section 2's survey, measured).
func BenchmarkMaskingMethods(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMethods(1000, 3, src, 17)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) < 5 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkGroupByStrategies compares the hash-based group-by with the
// sort-based alternative (DESIGN.md ablation 4).
func BenchmarkGroupByStrategies(b *testing.B) {
	im, err := dataset.Generate(10000, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := im.GroupBy(dataset.QIs()...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := im.GroupBySorted(dataset.QIs()...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEarlyExitVsFullScan compares the early-exit property check
// (CheckBasic stops at the first violating group) with the
// full-reporting scan (Violations visits every group) on a table that
// violates early (DESIGN.md ablation 2).
func BenchmarkEarlyExitVsFullScan(b *testing.B) {
	im, err := dataset.Generate(4000, 7)
	if err != nil {
		b.Fatal(err)
	}
	qis := dataset.QIs()
	conf := dataset.Confidential()
	b.Run("EarlyExit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CheckBasic(im, qis, conf, 2, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Violations(im, qis, conf, 2, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDisclosureDecay regenerates the E15 sweep: attribute
// disclosures of k-minimal maskings as k grows.
func BenchmarkDisclosureDecay(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDisclosureDecay(1000, []int{2, 4, 8}, src, 17)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Disclosures) != 3 {
			b.Fatal("short series")
		}
	}
}

// BenchmarkPolicy measures what composing properties costs the lattice
// search on the Adult workload: the built-in p-sensitive k-anonymity
// target (Legacy), the same target expressed as a composite policy
// (Composite — must cost the same, since the verdict path is shared),
// and a strictly stronger conjunction adding 0.5-closeness (Strict —
// the search the single-property path cannot express). Snapshotted to
// BENCH_policy.json by `make bench-json`.
func BenchmarkPolicy(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(1000, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	conf := dataset.Confidential()
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  conf,
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
	}
	variants := []struct {
		name string
		mut  func(*search.Config)
	}{
		{"Legacy", func(c *search.Config) {}},
		{"Composite", func(c *search.Config) {
			c.Policy = core.All(
				core.PSensitiveKAnonymityPolicy{P: c.P, K: c.K},
				core.DistinctLDiversityPolicy{Attr: conf[0], L: c.P},
			)
		}},
		{"Strict", func(c *search.Config) {
			c.Policy = core.All(
				core.PSensitiveKAnonymityPolicy{P: c.P, K: c.K},
				core.TClosenessPolicy{Attr: conf[0], T: 0.5},
			)
		}},
	}
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		b.Run(fmt.Sprintf("Samarati/%s", v.name), func(b *testing.B) { benchSearch(b, im, cfg) })
	}
	for _, v := range variants {
		cfg := base
		v.mut(&cfg)
		b.Run(fmt.Sprintf("Incognito/%s", v.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := search.Incognito(im, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Minimal) == 0 {
					b.Fatal("found nothing")
				}
			}
		})
	}
}

// BenchmarkScale proves the columnar substrate at production scale on
// the full 48,842-row Adult shape times 2 / 20 / 205 (~100k / ~1M /
// ~10M rows, dataset.GenerateScaled). BaseScan measures the verdict
// substrate itself — one GroupStats pass over all four QIs and all
// four confidential attributes — through the chunked packed kernel
// (Packed) and the retained per-row reference kernel (Rowwise), whose
// ratio is the packed substrate's win. Samarati runs the whole search
// at ~100k and ~1M rows. Every sub-benchmark reports ns/row and
// allocs/row, the two numbers that must stay flat as rows grow;
// `make bench-scale` snapshots them into BENCH_scale.json and the CI
// bench-regression job compares against it. Under -short (the `make
// check` smoke run) only the ~100k tier runs.
func BenchmarkScale(b *testing.B) {
	factors := []int{2, 20, 205}
	if testing.Short() {
		factors = factors[:1]
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	qis, conf := dataset.QIs(), dataset.Confidential()
	for _, factor := range factors {
		im, err := dataset.GenerateScaled(factor, 2006)
		if err != nil {
			b.Fatal(err)
		}
		rows := im.NumRows()
		b.Run(fmt.Sprintf("BaseScan/Packed/x%d", factor), func(b *testing.B) {
			benchPerRow(b, rows, func() error {
				s, err := im.GroupStats(qis, conf, 1)
				if err == nil && s.NumGroups() == 0 {
					return fmt.Errorf("no groups")
				}
				return err
			})
		})
		b.Run(fmt.Sprintf("BaseScan/Rowwise/x%d", factor), func(b *testing.B) {
			benchPerRow(b, rows, func() error {
				s, err := im.GroupStatsRowwise(qis, conf, 1)
				if err == nil && s.NumGroups() == 0 {
					return fmt.Errorf("no groups")
				}
				return err
			})
		})
		if factor > 20 {
			// The ~10M tier exercises the base scan only; the full
			// search is proven at ~1M and its cost there bounds the
			// per-node work, which the roll-up layer makes row-free
			// past the base scan anyway.
			continue
		}
		cfg := search.Config{
			QIs:           qis,
			Confidential:  conf,
			Hierarchies:   hs,
			K:             10,
			P:             2,
			MaxSuppress:   rows / 100,
			UseConditions: true,
		}
		b.Run(fmt.Sprintf("Samarati/x%d", factor), func(b *testing.B) {
			benchPerRow(b, rows, func() error {
				res, err := search.Samarati(im, cfg)
				if err == nil && !res.Found {
					return fmt.Errorf("found nothing")
				}
				return err
			})
		})
	}
}

// benchPerRow runs fn b.N times and reports ns/row and allocs/row on
// top of the standard per-op numbers, so scale benchmarks are
// comparable across row counts.
func benchPerRow(b *testing.B, rows int, fn func() error) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	perRow := float64(b.N) * float64(rows)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/perRow, "ns/row")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/perRow, "allocs/row")
}

// BenchmarkIncremental measures the streaming publisher against the
// cold republish it replaces, on the ~1M-row Adult shape
// (GenerateScaled x20; the ~100k x2 tier under -short) across a churn
// ladder of 0.1% / 1% / 10% rows per batch. Warm is the incremental
// loop — Apply the delta, Republish the maintained node — whose cost
// is proportional to the delta (the allocs/op column scales with the
// churn, not the table). Cold is the same delta absorbed into a plain
// ledger followed by a full Samarati re-search of the live snapshot,
// the O(rows) pipeline a batch publisher would re-run. SpeedupPin
// fails the benchmark if the warm path is not at least 10x faster per
// batch at 0.1% churn. `make bench-incr` snapshots everything into
// BENCH_incr.json and `make bench-compare` gates regressions on it.
func BenchmarkIncremental(b *testing.B) {
	factor := 20
	if testing.Short() {
		factor = 2
	}
	im, err := dataset.GenerateScaled(factor, 2006)
	if err != nil {
		b.Fatal(err)
	}
	rows := im.NumRows()
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	cfg := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             10,
		P:             2,
		MaxSuppress:   rows / 100,
		UseConditions: true,
	}
	// Batches are pregenerated per epoch; when a timed loop outruns the
	// supply, the session is rebuilt off the clock and the stream starts
	// over (retire ids are only valid against the session they were
	// generated for).
	const supply = 64
	churns := []struct {
		name string
		frac float64
	}{{"Churn0.1", 0.001}, {"Churn1", 0.01}, {"Churn10", 0.1}}

	for _, c := range churns {
		c := c
		b.Run("Warm/"+c.name, func(b *testing.B) {
			var (
				s       *search.Incremental
				batches []stream.Batch
				next    int
			)
			reset := func() {
				var err error
				if s, err = search.OpenIncremental(im, cfg, search.StrategySamarati); err != nil {
					b.Fatal(err)
				}
				if res, err := s.Republish(); err != nil || !res.Found {
					b.Fatalf("initial publish: found %v, err %v", res.Found, err)
				}
				if batches, err = dataset.GenerateBatches(rows, supply, c.frac, 7); err != nil {
					b.Fatal(err)
				}
				next = 0
			}
			reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if next == len(batches) {
					b.StopTimer()
					reset()
					b.StartTimer()
				}
				batch := batches[next]
				next++
				if err := s.Apply(batch.Append, batch.Retire); err != nil {
					b.Fatal(err)
				}
				res, err := s.Republish()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Found {
					b.Fatal("republish found nothing")
				}
			}
		})
		b.Run("Cold/"+c.name, func(b *testing.B) {
			led := table.NewLedger(im)
			batches, err := dataset.GenerateBatches(rows, supply, c.frac, 7)
			if err != nil {
				b.Fatal(err)
			}
			next := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if next == len(batches) {
					b.StopTimer()
					led = table.NewLedger(im)
					next = 0
					b.StartTimer()
				}
				batch := batches[next]
				next++
				if err := applyToLedger(led, batch); err != nil {
					b.Fatal(err)
				}
				snap, err := led.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				res, err := search.Samarati(snap, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Found {
					b.Fatal("cold search found nothing")
				}
			}
		})
	}

	// SpeedupPin is the acceptance gate, not a throughput number: it
	// times a handful of warm batches and one cold republish on the same
	// post-delta rows and fails unless warm wins by at least 10x.
	b.Run("SpeedupPin/Churn0.1", func(b *testing.B) {
		n := 3
		batches, err := dataset.GenerateBatches(rows, n, 0.001, 7)
		if err != nil {
			b.Fatal(err)
		}
		s, err := search.OpenIncremental(im, cfg, search.StrategySamarati)
		if err != nil {
			b.Fatal(err)
		}
		if res, err := s.Republish(); err != nil || !res.Found {
			b.Fatalf("initial publish: found %v, err %v", res.Found, err)
		}
		warmStart := time.Now()
		for _, batch := range batches {
			if err := s.Apply(batch.Append, batch.Retire); err != nil {
				b.Fatal(err)
			}
			res, err := s.Republish()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Found {
				b.Fatal("republish found nothing")
			}
		}
		warmPer := time.Since(warmStart) / time.Duration(n)

		led := table.NewLedger(im)
		for _, batch := range batches {
			if err := applyToLedger(led, batch); err != nil {
				b.Fatal(err)
			}
		}
		coldStart := time.Now()
		snap, err := led.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		res, err := search.Samarati(snap, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("cold search found nothing")
		}
		coldPer := time.Since(coldStart)

		b.ReportMetric(float64(coldPer)/float64(warmPer), "x-speedup")
		if coldPer < 10*warmPer {
			b.Errorf("incremental republish (%v/batch) is not 10x faster than cold (%v/batch) at 0.1%% churn", warmPer, coldPer)
		}
	})
}

// applyToLedger absorbs one delta batch into a plain ledger — the row
// bookkeeping both the cold and warm republish variants share.
func applyToLedger(led *table.Ledger, batch stream.Batch) error {
	for _, id := range batch.Retire {
		if err := led.Retire(id); err != nil {
			return err
		}
	}
	for _, cells := range batch.Append {
		if _, err := led.AppendText(cells); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkFrontier measures the utility-aware Pareto frontier pass on
// the scaled Adult shape (x2 ~100k rows; x20 ~1M rows, skipped under
// -short). Frontier is one AllMinimal call with the frontier enabled:
// every satisfying node is scored from its memoized post-suppression
// statistics, nothing is materialized. AllMinimalThenScore is the
// workflow the frontier replaces — enumerate the minimal antichain,
// materialize each node's masked table, and score it with the row-
// scanning loss oracles. The AllocsPin sub-benchmark is the acceptance
// gate for the O(groups) claim: one MeasureStats call on the ~1M-row
// base statistics must allocate proportionally to the group count, far
// below the row count. `make bench-frontier` snapshots everything into
// BENCH_frontier.json and `make bench-compare` gates regressions on it.
func BenchmarkFrontier(b *testing.B) {
	factors := []int{2, 20}
	if testing.Short() {
		factors = factors[:1]
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	qis, conf := dataset.QIs(), dataset.Confidential()
	m, err := generalize.NewMasker(qis, hs)
	if err != nil {
		b.Fatal(err)
	}
	for _, factor := range factors {
		im, err := dataset.GenerateScaled(factor, 2006)
		if err != nil {
			b.Fatal(err)
		}
		rows := im.NumRows()
		cfg := search.Config{
			QIs:           qis,
			Confidential:  conf,
			Hierarchies:   hs,
			K:             10,
			P:             2,
			MaxSuppress:   rows / 100,
			UseConditions: true,
		}
		b.Run(fmt.Sprintf("Frontier/x%d", factor), func(b *testing.B) {
			c := cfg
			c.Frontier = search.FrontierConfig{Enabled: true}
			benchPerRow(b, rows, func() error {
				res, err := search.AllMinimal(im, c)
				if err == nil && len(res.Frontier) == 0 {
					return fmt.Errorf("empty frontier")
				}
				return err
			})
		})
		b.Run(fmt.Sprintf("AllMinimalThenScore/x%d", factor), func(b *testing.B) {
			benchPerRow(b, rows, func() error {
				res, err := search.AllMinimal(im, cfg)
				if err != nil {
					return err
				}
				if len(res.Minimal) == 0 {
					return fmt.Errorf("found nothing")
				}
				for _, min := range res.Minimal {
					rep, err := loss.Measure(loss.Input{
						Initial: im, Masked: min.Masked, QIs: qis,
						Node: min.Node, Lattice: m.Lattice(), K: cfg.K,
					})
					if err != nil {
						return err
					}
					if rep.Discernibility == 0 {
						return fmt.Errorf("zero discernibility")
					}
				}
				return nil
			})
		})
		if factor != factors[len(factors)-1] {
			continue
		}
		// AllocsPin: scoring the largest tier's base statistics must cost
		// O(groups) allocations — the bound that proves no per-row work
		// hides in the stats-native metrics.
		b.Run(fmt.Sprintf("AllocsPin/x%d", factor), func(b *testing.B) {
			s, err := im.GroupStats(qis, conf, 1)
			if err != nil {
				b.Fatal(err)
			}
			base, err := loss.NewBaseline(im, qis)
			if err != nil {
				b.Fatal(err)
			}
			bottom := make(lattice.Node, len(qis))
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := loss.MeasureStats(loss.StatsInput{
					Stats: s, Rows: rows, Baseline: base,
					Node: bottom, Lattice: m.Lattice(), K: cfg.K,
				}); err != nil {
					b.Fatal(err)
				}
			})
			bound := float64(8*s.NumGroups() + 256)
			b.ReportMetric(allocs, "allocs/score")
			b.ReportMetric(float64(s.NumGroups()), "groups")
			if allocs > bound {
				b.Errorf("MeasureStats allocates %.0f/op over %d groups (bound %.0f) — not O(groups)", allocs, s.NumGroups(), bound)
			}
		})
	}
}

// BenchmarkObsOverhead measures what the telemetry layer costs the
// search on the Adult workload: Off is the plain run (nil recorder —
// the engine's zero-clock-read fast path), On attaches a fresh
// recorder each iteration. The budget is at most 2% on the disabled
// path, which BENCH_obs.json (`make bench-json`) records; On stays
// cheap too because the counters are contention-free atomics.
func BenchmarkObsOverhead(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(1000, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
	}
	run := func(b *testing.B, observe bool, strat func(search.Config) (int, error)) {
		for i := 0; i < b.N; i++ {
			cfg := base
			if observe {
				cfg.Recorder = obs.NewRecorder()
			}
			n, err := strat(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("found nothing")
			}
			if observe != (cfg.Recorder.Snapshot() != nil) {
				b.Fatal("recorder state does not match variant")
			}
		}
	}
	exhaustive := func(cfg search.Config) (int, error) {
		res, err := search.Exhaustive(im, cfg)
		return len(res.Minimal), err
	}
	incognito := func(cfg search.Config) (int, error) {
		res, err := search.Incognito(im, cfg)
		return len(res.Minimal), err
	}
	for _, v := range []struct {
		name    string
		observe bool
	}{{"Off", false}, {"On", true}} {
		v := v
		b.Run(fmt.Sprintf("Exhaustive/%s", v.name), func(b *testing.B) { run(b, v.observe, exhaustive) })
		b.Run(fmt.Sprintf("Incognito/%s", v.name), func(b *testing.B) { run(b, v.observe, incognito) })
	}
}

// BenchmarkObsLive measures the full live observatory against the bare
// search: Off is the nil-recorder baseline, Live attaches a recorder, a
// running 1ms sampler and the HTTP debug server (nothing scraping it) —
// the standing cost of having /metrics and /progress answerable while a
// search is in flight. The handlers only read atomics, so Live must
// track Off closely; BENCH_obs.json records both and `make
// bench-compare` gates regressions.
func BenchmarkObsLive(b *testing.B) {
	src, err := dataset.Generate(30000, 2006)
	if err != nil {
		b.Fatal(err)
	}
	im, err := src.Sample(1000, 17)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		b.Fatal(err)
	}
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
	}
	run := func(cfg search.Config) {
		res, err := search.Samarati(im, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("found nothing")
		}
	}
	b.Run("Off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(base)
		}
	})
	b.Run("Live", func(b *testing.B) {
		rec := obs.NewRecorder()
		sampler := obs.NewSampler(rec, time.Millisecond, 512)
		sampler.Start()
		defer sampler.Stop()
		srv, err := obs.NewServer("127.0.0.1:0", rec, sampler)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cfg := base
		cfg.Recorder = rec
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(cfg)
		}
		b.StopTimer()
		if rec.Progress().NodesEvaluated == 0 {
			b.Fatal("recorder saw no work")
		}
	})
}
