# Tier-1 gate for the psk module. `make check` is what CI and reviewers
# run before merging: vet, build, the full test suite under the race
# detector (the parallel search engine must stay deterministic), and a
# single-iteration pass over every benchmark so the evaluation harness
# cannot silently rot.

GO ?= go

.PHONY: check vet build test race bench bench-json

check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json snapshots the roll-up benchmark (ns/op and allocs/op per
# variant) into BENCH_rollup.json, the committed record of the roll-up
# layer's win over the row-scanning engine, the policy benchmark
# into BENCH_policy.json, the record of what composing properties
# costs the search relative to the built-in single-property target,
# and the telemetry overhead benchmark into BENCH_obs.json, the record
# that a disabled recorder costs the search at most ~2% (nil-receiver
# fast path) and an attached one stays in the same ballpark.
bench-json:
	$(GO) test -run '^$$' -bench '^BenchmarkRollup$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson > BENCH_rollup.json
	$(GO) test -run '^$$' -bench '^BenchmarkPolicy$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson > BENCH_policy.json
	$(GO) test -run '^$$' -bench '^BenchmarkObsOverhead$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
