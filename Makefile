# Tier-1 gate for the psk module. `make check` is what CI and reviewers
# run before merging: vet, build, the full test suite under the race
# detector (the parallel search engine must stay deterministic), and a
# single-iteration pass over every benchmark so the evaluation harness
# cannot silently rot.

GO ?= go

# Allowed fractional ns/op regression before bench-compare fails
# (0.15 = +15%), and the per-target budget of the fuzz smoke run.
BENCH_TOLERANCE ?= 0.15
# The scale benchmarks run single-iteration over millions of rows, so
# their snapshot comparison gets a looser gate than the microbenchmarks.
SCALE_TOLERANCE ?= 0.50
# The incremental benchmarks time millisecond-scale per-batch work at
# 10 iterations, so they inherit the looser gate too.
INCR_TOLERANCE ?= 0.50
# The frontier benchmarks run full lattice passes over ~100k/1M rows at
# low iteration counts, so they share the scale-tier gate.
FRONTIER_TOLERANCE ?= 0.50
# The serve benchmarks measure service-level latency over real HTTP
# (round trips, poll intervals, scheduler noise), so they get the
# loosest gate: the signal is the regime ratio, not the absolute ns/op.
SERVE_TOLERANCE ?= 0.50
FUZZTIME ?= 30s

# Statement-coverage ratchet for `make cover`: set just below the
# measured total so coverage can only move up. Raise it when coverage
# genuinely improves; never lower it to admit a regression.
COVERAGE_FLOOR ?= 85.0

.PHONY: check vet build test race bench bench-json bench-scale bench-incr bench-frontier bench-serve bench-compare fuzz-smoke cover serve-smoke

check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# -short keeps BenchmarkScale on its ~100k-row smoke tier here, so the
# chunked/packed scale path is exercised on every `make check` without
# paying for the 1M/10M tiers (those run in `make bench-scale`).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

# bench-json snapshots the roll-up benchmark (ns/op and allocs/op per
# variant) into BENCH_rollup.json, the committed record of the roll-up
# layer's win over the row-scanning engine, the policy benchmark
# into BENCH_policy.json, the record of what composing properties
# costs the search relative to the built-in single-property target,
# and the telemetry benchmarks into BENCH_obs.json, the record that a
# disabled recorder costs the search at most ~2% (nil-receiver fast
# path), an attached one stays in the same ballpark, and the full live
# observatory (recorder + sampler + HTTP server) tracks the bare search.
bench-json: bench-incr
	$(GO) test -run '^$$' -bench '^BenchmarkRollup$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson > BENCH_rollup.json
	$(GO) test -run '^$$' -bench '^BenchmarkPolicy$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson > BENCH_policy.json
	$(GO) test -run '^$$' -bench '^BenchmarkObs(Overhead|Live)$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	$(GO) test -run '^$$' -bench '^BenchmarkParallelSearch$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson > BENCH_parallel.json

# bench-incr snapshots the streaming benchmark — warm (incremental
# Apply+Republish) vs cold (full Samarati re-search) per delta batch on
# the ~1M-row Adult shape across the 0.1%/1%/10% churn ladder — into
# BENCH_incr.json, the committed record that a republish costs O(delta)
# and stays >= 10x ahead of the cold pipeline at low churn (the
# SpeedupPin sub-benchmark fails otherwise).
bench-incr:
	$(GO) test -run '^$$' -bench '^BenchmarkIncremental$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson > BENCH_incr.json

# bench-scale snapshots the scale benchmark — base-scan and Samarati
# ns/row + allocs/row on the 48,842-row Adult shape x2/x20/x205
# (~100k/1M/10M rows), packed kernel vs the rowwise reference — into
# BENCH_scale.json, the committed proof that the columnar substrate
# stays flat per row as data grows.
bench-scale:
	$(GO) test -run '^$$' -bench '^BenchmarkScale$$' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson > BENCH_scale.json

# bench-frontier snapshots the Pareto-frontier benchmark — one frontier
# pass (statistics-scored, nothing materialized) vs the enumerate-
# materialize-score workflow it replaces, at ~100k and ~1M rows, plus
# the AllocsPin gate proving MeasureStats allocates O(groups) — into
# BENCH_frontier.json.
bench-frontier:
	$(GO) test -run '^$$' -bench '^BenchmarkFrontier$$' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchjson > BENCH_frontier.json

# bench-serve snapshots the service benchmark — end-to-end job latency
# over real HTTP in the three result-cache regimes (cold search,
# result-cache hit, coalesced identical burst) — into BENCH_serve.json,
# the committed record that a cache hit answers without queueing and a
# coalesced burst costs one search, not eight.
bench-serve:
	$(GO) test -run '^$$' -bench '^BenchmarkServe$$' -benchmem -benchtime 20x ./internal/serve \
		| $(GO) run ./cmd/benchjson > BENCH_serve.json

# serve-smoke is the end-to-end service gate the CI serve job runs:
# the real pskserve entry point on an ephemeral port, driven over real
# HTTP through verdict exit codes, single-flight dedup, queued-job
# cancellation, per-job /metrics byte-identity with the embedded
# report, and counter equality with a pskanon -metrics-json run of the
# same inputs.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke|TestExitCodeAgreement' -v ./internal/cli

# bench-compare reruns the gauntlet benchmarks and fails when any
# regresses its committed BENCH_*.json ns/op by more than
# BENCH_TOLERANCE — the CI bench-regression job runs exactly this, so
# a search-path slowdown cannot merge silently. Refresh the baselines
# with `make bench-json` when a change is *supposed* to move them.
bench-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkParallelSearch$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson -compare BENCH_parallel.json -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run '^$$' -bench '^BenchmarkPolicy$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson -compare BENCH_policy.json -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run '^$$' -bench '^BenchmarkObs(Overhead|Live)$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson -compare BENCH_obs.json -tolerance $(BENCH_TOLERANCE)
	$(GO) test -run '^$$' -bench '^BenchmarkScale$$' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -compare BENCH_scale.json -tolerance $(SCALE_TOLERANCE)
	$(GO) test -run '^$$' -bench '^BenchmarkIncremental$$' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson -compare BENCH_incr.json -tolerance $(INCR_TOLERANCE)
	$(GO) test -run '^$$' -bench '^BenchmarkFrontier$$' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -compare BENCH_frontier.json -tolerance $(FRONTIER_TOLERANCE)
	$(GO) test -run '^$$' -bench '^BenchmarkServe$$' -benchmem -benchtime 20x ./internal/serve \
		| $(GO) run ./cmd/benchjson -compare BENCH_serve.json -tolerance $(SERVE_TOLERANCE)

# fuzz-smoke gives each native fuzz target FUZZTIME of coverage-guided
# input generation on top of its committed seed corpus: the loaders
# (dataset, hierarchy) must never panic on hostile bytes, the two
# implementations of Definition 2 must agree on every generated table,
# and the incremental session must survive hostile delta files with
# exact live-row accounting.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoadTable$$' -fuzztime $(FUZZTIME) ./internal/dataset
	$(GO) test -run '^$$' -fuzz '^FuzzLoadHierarchy$$' -fuzztime $(FUZZTIME) ./internal/hierarchy
	$(GO) test -run '^$$' -fuzz '^FuzzPolicyEval$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzApplyDelta$$' -fuzztime $(FUZZTIME) ./internal/search

# cover measures statement coverage across the module and fails below
# COVERAGE_FLOOR. The test run writes to a temp profile that is always
# cleaned up; whatever profile was produced — even on a failing run —
# is published at COVERPROFILE, the explicit path the CI coverage job
# uploads from (if: always()), so a red run still ships its profile
# for inspection (`go tool cover -html=$(COVERPROFILE)`).
COVERPROFILE ?= coverage.out

cover:
	@tmp=$$(mktemp) || exit 1; \
	trap 'rm -f "$$tmp"' EXIT; \
	if ! $(GO) test -coverprofile="$$tmp" -coverpkg=./... ./...; then \
		[ -s "$$tmp" ] && cp "$$tmp" $(COVERPROFILE); \
		echo "cover: tests failed; partial profile at $(COVERPROFILE)"; exit 1; \
	fi; \
	cp "$$tmp" $(COVERPROFILE); \
	total=$$($(GO) tool cover -func=$(COVERPROFILE) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total statement coverage: $$total% (floor $(COVERAGE_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVERAGE_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the floor $(COVERAGE_FLOOR)%"; exit 1; }
