// Package psk implements the p-sensitive k-anonymity privacy model of
// Truta and Vinay (ICDE 2006 Workshops, "Privacy Protection: p-Sensitive
// k-Anonymity Property") as a production-quality Go library.
//
// A masked microdata satisfies p-sensitive k-anonymity when every
// combination of quasi-identifier values occurs at least k times
// (k-anonymity, protecting against identity disclosure) and every such
// group contains at least p distinct values of each confidential
// attribute (p-sensitivity, protecting against attribute disclosure).
//
// The package exposes:
//
//   - property checks: IsKAnonymous, IsPSensitiveKAnonymous (the paper's
//     Algorithm 2, with the two necessary conditions as fast rejection
//     filters), CheckBasic (Algorithm 1), Sensitivity and
//     AttributeDisclosures;
//   - the necessary-condition bounds MaxP and MaxGroups (Conditions 1-2,
//     reusable across maskings per Theorems 1-2);
//   - Anonymize: full-domain generalization with suppression, searching
//     the generalization lattice for a p-k-minimal node with Samarati's
//     binary search (Algorithm 3), a bottom-up breadth-first scan, or an
//     exhaustive enumeration of all minimal nodes;
//   - Mondrian: a multidimensional partitioning baseline with the same
//     k and p guarantees;
//   - hierarchy construction (interval, tree, prefix, flat), CSV input/
//     output, a SQL subset for inspection queries, disclosure-risk
//     linkage attacks and information-loss metrics.
//
// # Quick start
//
//	data, err := psk.ReadCSVFile("patients.csv", &schema)
//	...
//	res, err := psk.Anonymize(data, psk.Config{
//		QuasiIdentifiers: []string{"Age", "ZipCode", "Sex"},
//		Confidential:     []string{"Illness"},
//		Hierarchies:      hierarchies,
//		K:                3,
//		P:                2,
//		MaxSuppress:      10,
//	})
//	if res.Found {
//		res.Masked.WriteCSVFile("patients_masked.csv")
//	}
//
// The runnable programs under examples/ and cmd/ exercise the complete
// API; DESIGN.md maps every module to the paper section it implements,
// and EXPERIMENTS.md records the reproduction of each table and figure.
package psk
