package psk

import (
	"context"
	"fmt"
	"io"
	"time"

	"psk/internal/core"
	"psk/internal/generalize"
	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/loss"
	"psk/internal/mask"
	"psk/internal/minisql"
	"psk/internal/obs"
	"psk/internal/obs/explain"
	"psk/internal/risk"
	"psk/internal/search"
	"psk/internal/table"
)

// Re-exported relational types. The aliases make every table method
// (GroupBy, Sample, WriteCSV, ...) available to library users without a
// second import.
type (
	// Table is an immutable columnar relation.
	Table = table.Table
	// Schema describes a table's fields.
	Schema = table.Schema
	// Field is one schema entry.
	Field = table.Field
	// Value is a dynamically typed cell.
	Value = table.Value
	// Builder accumulates rows for a Table.
	Builder = table.Builder
)

// Column type constants.
const (
	String = table.String
	Int    = table.Int
	Float  = table.Float
)

// Value constructors.
var (
	// SV constructs a string Value.
	SV = table.SV
	// IV constructs an integer Value.
	IV = table.IV
	// FV constructs a float Value.
	FV = table.FV
)

// NewSchema builds a validated schema.
func NewSchema(fields ...Field) (Schema, error) { return table.NewSchema(fields...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(fields ...Field) Schema { return table.MustSchema(fields...) }

// NewBuilder returns a row builder for the schema.
func NewBuilder(schema Schema) (*Builder, error) { return table.NewBuilder(schema) }

// FromRows builds a table from typed rows.
func FromRows(schema Schema, rows [][]Value) (*Table, error) { return table.FromRows(schema, rows) }

// FromText builds a table from textual rows.
func FromText(schema Schema, rows [][]string) (*Table, error) { return table.FromText(schema, rows) }

// ReadCSV reads a CSV stream (header row required); a nil schema infers
// all-string columns.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) { return table.ReadCSV(r, schema) }

// ReadCSVFile reads a CSV file; see ReadCSV.
func ReadCSVFile(path string, schema *Schema) (*Table, error) {
	return table.ReadCSVFile(path, schema)
}

// Hierarchy types re-exported for configuration.
type (
	// Hierarchy maps ground values to generalized labels per level.
	Hierarchy = hierarchy.Hierarchy
	// Hierarchies is a per-attribute hierarchy collection.
	Hierarchies = hierarchy.Set
	// IntervalLevel configures one numeric generalization level.
	IntervalLevel = hierarchy.IntervalLevel
	// Node is a generalization lattice node (one level per QI).
	Node = lattice.Node
)

// Suppressed is the conventional one-group label ("*").
const Suppressed = hierarchy.Suppressed

// NewHierarchies collects per-attribute hierarchies, rejecting
// duplicates.
func NewHierarchies(hs ...Hierarchy) (*Hierarchies, error) { return hierarchy.NewSet(hs...) }

// NewIntervalHierarchy builds a numeric hierarchy from interval levels.
func NewIntervalHierarchy(attr string, levels []IntervalLevel) (Hierarchy, error) {
	return hierarchy.NewInterval(attr, levels)
}

// NewTreeHierarchy builds a categorical hierarchy from per-value
// ancestor chains.
func NewTreeHierarchy(attr string, chains map[string][]string) (Hierarchy, error) {
	return hierarchy.NewTree(attr, chains)
}

// ParseTreeHierarchy parses the semicolon-separated hierarchy format
// ("value;level1;level2;...").
func ParseTreeHierarchy(attr, text string) (Hierarchy, error) {
	return hierarchy.ParseTree(attr, text)
}

// NewPrefixHierarchy builds a character-suppression hierarchy (one
// character per level).
func NewPrefixHierarchy(attr string, width, steps int) (Hierarchy, error) {
	return hierarchy.NewPrefix(attr, width, steps)
}

// NewPrefixStepsHierarchy builds a character-suppression hierarchy with
// a custom per-level schedule.
func NewPrefixStepsHierarchy(attr string, width int, suppress []int) (Hierarchy, error) {
	return hierarchy.NewPrefixSteps(attr, width, suppress)
}

// NewFlatHierarchy builds the one-step hierarchy mapping every value to
// top (Suppressed when top is empty).
func NewFlatHierarchy(attr, top string) Hierarchy {
	f := hierarchy.NewFlat(attr)
	f.Top = top
	return f
}

// DecadeLevel builds a fixed-width interval level covering [lo, hi].
func DecadeLevel(name string, lo, hi, width int64) IntervalLevel {
	return hierarchy.DecadeLevel(name, lo, hi, width)
}

// Algorithm selects the lattice search strategy used by Anonymize.
type Algorithm int

// Available search algorithms.
const (
	// AlgorithmSamarati is the paper's Algorithm 3: binary search on
	// lattice height. The default.
	AlgorithmSamarati Algorithm = iota
	// AlgorithmBottomUp scans levels from the bottom and returns the
	// first satisfying level's nodes (Incognito-style).
	AlgorithmBottomUp
	// AlgorithmExhaustive evaluates the whole lattice and returns a
	// node from the full p-k-minimal set.
	AlgorithmExhaustive
)

// Config parameterizes Anonymize.
type Config struct {
	// QuasiIdentifiers are the key attributes, in lattice order.
	QuasiIdentifiers []string
	// Confidential are the confidential attributes (required for P >= 2).
	Confidential []string
	// Hierarchies supplies a generalization hierarchy per QI.
	Hierarchies *Hierarchies
	// K is the k-anonymity parameter (>= 2).
	K int
	// P is the sensitivity parameter (1 <= P <= K); P = 1 yields plain
	// k-anonymity.
	P int
	// MaxSuppress is the suppression threshold TS.
	MaxSuppress int
	// Policy, when non-nil, replaces the built-in p-sensitive
	// k-anonymity target: the search accepts the first (minimal) node
	// whose suppressed masking satisfies this policy instead. Compose
	// with AllOf — e.g. AllOf(PSensitiveKAnonymity(3, 5, nil),
	// TClosenessPolicy("Disease", 0.3)) searches for "3-sensitive
	// 5-anonymous and 0.3-close" in one pass. P and Confidential are
	// ignored when set; K still drives the suppression step.
	Policy Policy
	// Algorithm selects the search strategy; zero value is Samarati.
	Algorithm Algorithm
	// DisableConditions turns off the necessary-condition filters
	// (Algorithm 1 behaviour); useful only for benchmarking.
	DisableConditions bool
	// Workers bounds the worker pool evaluating independent lattice
	// nodes concurrently; <= 1 (including the zero value) keeps the
	// serial path. Results are identical at every worker count.
	// DefaultWorkers() returns the GOMAXPROCS-sized pool.
	Workers int
	// Recorder, when non-nil, collects search telemetry (node verdicts
	// and latencies, phase wall times, cache and roll-up counters);
	// Result.Report snapshots it when the search finishes. Telemetry
	// never changes search results. See NewRecorder.
	Recorder *Recorder
	// Tracer, when non-nil, streams one JSONL event per evaluated
	// lattice node. See NewTracer.
	Tracer *Tracer
	// Context, when non-nil, cancels the search: once Done, no further
	// lattice node starts evaluating and the result is the valid
	// best-so-far partial state tagged StopCancelled.
	Context context.Context
	// Budget bounds the search by wall-clock deadline, lattice nodes
	// consumed and cache memory; see Budget. The zero value is
	// unlimited.
	Budget Budget
	// Frontier, when enabled, adds a utility-aware Pareto frontier pass:
	// every satisfying lattice node is scored with the stats-native loss
	// metrics and Result.Frontier receives the dominance-reduced set.
	// See FrontierConfig.
	Frontier FrontierConfig
}

// DefaultWorkers returns the recommended Config.Workers value for
// parallel lattice search: one worker per schedulable CPU.
func DefaultWorkers() int { return search.DefaultWorkers() }

func (c Config) searchConfig() search.Config {
	return search.Config{
		QIs:           c.QuasiIdentifiers,
		Confidential:  c.Confidential,
		Hierarchies:   c.Hierarchies,
		K:             c.K,
		P:             c.P,
		MaxSuppress:   c.MaxSuppress,
		Policy:        c.Policy,
		UseConditions: !c.DisableConditions,
		Workers:       c.Workers,
		Recorder:      c.Recorder,
		Tracer:        c.Tracer,
		Context:       c.Context,
		Budget:        c.Budget,
		Frontier:      c.Frontier,
	}
}

// Budget bounds a search by wall-clock deadline, lattice nodes
// consumed and generalized-column cache bytes; the zero value is
// unlimited. See the search package for the deterministic partial-
// result guarantees each limit carries.
type Budget = search.Budget

// StopReason explains how a search ended; StopDone marks a complete
// run, anything else a valid best-so-far partial result.
type StopReason = search.StopReason

// Search termination causes (Result.StopReason).
const (
	// StopDone: the search ran to completion.
	StopDone = search.StopDone
	// StopDeadline: Budget.Deadline elapsed.
	StopDeadline = search.StopDeadline
	// StopNodeBudget: Budget.MaxNodes was consumed.
	StopNodeBudget = search.StopNodeBudget
	// StopMemBudget: the column cache exceeded Budget.MaxCacheBytes.
	StopMemBudget = search.StopMemBudget
	// StopCancelled: Config.Context was cancelled.
	StopCancelled = search.StopCancelled
)

// Result is the outcome of Anonymize.
type Result struct {
	// Found reports whether any lattice node satisfies the property
	// within the suppression budget.
	Found bool
	// Node is the chosen p-k-minimal generalization.
	Node Node
	// Masked is the released microdata (generalized and suppressed).
	Masked *Table
	// Suppressed is the number of tuples removed.
	Suppressed int
	// AllMinimal lists every minimal node when AlgorithmExhaustive or
	// AlgorithmBottomUp was used.
	AllMinimal []Node
	// Report is the telemetry snapshot of the search; nil unless
	// Config.Recorder was set.
	Report *Report
	// StopReason records why the search ended: StopDone for a complete
	// run, otherwise the context/budget limit that tripped first — the
	// rest of the result is then the valid best-so-far partial state.
	StopReason StopReason
	// Frontier is the utility-aware Pareto frontier over satisfying
	// nodes, each entry scored with the stats-native loss metrics and
	// tagged with its dominance rank; nil unless Config.Frontier was
	// enabled.
	Frontier []Frontier
}

// Anonymize searches the generalization lattice for a p-k-minimal
// generalization of im and returns the masked microdata (Algorithm 3 of
// the paper, or a sibling strategy per Config.Algorithm).
func Anonymize(im *Table, cfg Config) (*Result, error) {
	switch cfg.Algorithm {
	case AlgorithmSamarati:
		r, err := search.Samarati(im, cfg.searchConfig())
		if err != nil {
			return nil, err
		}
		return &Result{Found: r.Found, Node: r.Node, Masked: r.Masked, Suppressed: r.Suppressed, Report: r.Report, StopReason: r.StopReason, Frontier: r.Frontier}, nil
	case AlgorithmBottomUp:
		r, err := search.BottomUp(im, cfg.searchConfig())
		if err != nil {
			return nil, err
		}
		return exhaustiveResult(r), nil
	case AlgorithmExhaustive:
		r, err := search.Exhaustive(im, cfg.searchConfig())
		if err != nil {
			return nil, err
		}
		return exhaustiveResult(r), nil
	default:
		return nil, fmt.Errorf("psk: unknown algorithm %d", cfg.Algorithm)
	}
}

func exhaustiveResult(r search.ExhaustiveResult) *Result {
	out := &Result{Report: r.Report, StopReason: r.StopReason, Frontier: r.Frontier}
	if len(r.Minimal) == 0 {
		return out
	}
	first := r.Minimal[0]
	out.Found = true
	out.Node = first.Node
	out.Masked = first.Masked
	out.Suppressed = first.Suppressed
	for _, m := range r.Minimal {
		out.AllMinimal = append(out.AllMinimal, m.Node)
	}
	return out
}

// IsKAnonymous reports whether every QI-group has at least k members
// (Definition 1).
func IsKAnonymous(t *Table, qis []string, k int) (bool, error) {
	return core.IsKAnonymous(t, qis, k)
}

// IsPSensitiveKAnonymous tests p-sensitive k-anonymity (Definition 2)
// using the paper's improved Algorithm 2: the two necessary conditions
// first, then the detailed group scan.
func IsPSensitiveKAnonymous(t *Table, qis, confidential []string, p, k int) (bool, error) {
	res, err := core.Check(t, qis, confidential, p, k)
	if err != nil {
		return false, err
	}
	return res.Satisfied, nil
}

// CheckBasic tests p-sensitive k-anonymity with the paper's basic
// Algorithm 1 (no condition filters).
func CheckBasic(t *Table, qis, confidential []string, p, k int) (bool, error) {
	return core.CheckBasic(t, qis, confidential, p, k)
}

// Sensitivity returns the largest p the table satisfies for its current
// QI grouping.
func Sensitivity(t *Table, qis, confidential []string) (int, error) {
	return core.Sensitivity(t, qis, confidential)
}

// MaxP evaluates Condition 1's bound: the minimum distinct-value count
// over the confidential attributes.
func MaxP(t *Table, confidential []string) (int, error) { return core.MaxP(t, confidential) }

// MaxGroups evaluates Condition 2's bound: the maximum admissible
// number of QI-groups for sensitivity p.
func MaxGroups(t *Table, confidential []string, p int) (int, error) {
	return core.MaxGroups(t, confidential, p)
}

// AttributeDisclosures counts (QI-group, confidential attribute) pairs
// with fewer than p distinct values — Table 8's measurement at p = 2.
func AttributeDisclosures(t *Table, qis, confidential []string, p int) (int, error) {
	return core.AttributeDisclosures(t, qis, confidential, p)
}

// Mondrian partitions the table with the greedy multidimensional
// algorithm under k-anonymity and optional p-sensitivity constraints.
func Mondrian(t *Table, qis, confidential []string, k, p int) (*Table, error) {
	r, err := search.Mondrian(t, search.MondrianConfig{
		QIs: qis, Confidential: confidential, K: k, P: p, Strict: true,
	})
	if err != nil {
		return nil, err
	}
	return r.Masked, nil
}

// Query runs a SQL SELECT (the paper's checks are expressed in SQL) over
// named tables and returns the result relation.
func Query(tables map[string]*Table, sql string) (*Table, error) {
	return minisql.Run(minisql.Catalog(tables), sql)
}

// Intruder re-exports the record-linkage attacker of internal/risk.
type Intruder = risk.Intruder

// Linkage is one individual's attack outcome.
type Linkage = risk.Linkage

// AttackSummary aggregates linkage results.
type AttackSummary = risk.Summary

// SummarizeAttack aggregates per-individual linkages.
func SummarizeAttack(links []Linkage) AttackSummary { return risk.Summarize(links) }

// UtilityReport bundles information-loss metrics for a masking.
type UtilityReport = loss.Report

// Frontier is one member of the utility-aware Pareto frontier a
// frontier-mode search returns: the node, its (satisfied) policy
// verdict, the stats-native loss report, the release summary and the
// dominance rank. See Config.Frontier.
type Frontier = search.FrontierEntry

// FrontierConfig switches a search into frontier mode; see
// Config.Frontier and DefaultObjectives.
type FrontierConfig = search.FrontierConfig

// Objective identifies one minimized axis of the frontier reduction.
type Objective = search.Objective

// Frontier objectives (see the search package for the minimization
// conventions — ObjPrecision and ObjMargin fold their "bigger is
// better" quantities into minimized coordinates).
const (
	ObjHeight         = search.ObjHeight
	ObjPrecision      = search.ObjPrecision
	ObjDiscernibility = search.ObjDiscernibility
	ObjAvgGroup       = search.ObjAvgGroup
	ObjSuppression    = search.ObjSuppression
	ObjEntropy        = search.ObjEntropy
	ObjMargin         = search.ObjMargin
)

// DefaultObjectives returns the frontier axes used when
// FrontierConfig.Objectives is empty: discernibility, entropy loss and
// suppression traded against the privacy margin.
func DefaultObjectives() []Objective { return search.DefaultObjectives() }

// MeasureUtility computes the loss metrics of masked microdata mm
// derived from im by generalizing the QIs to node under cfg's
// hierarchies.
func MeasureUtility(im, mm *Table, cfg Config, node Node) (UtilityReport, error) {
	m, err := generalize.NewMasker(cfg.QuasiIdentifiers, cfg.Hierarchies)
	if err != nil {
		return UtilityReport{}, err
	}
	return loss.Measure(loss.Input{
		Initial: im, Masked: mm, QIs: cfg.QuasiIdentifiers,
		Node: node, Lattice: m.Lattice(), K: cfg.K,
	})
}

// RiskMeasures aggregates group-size-based re-identification risk
// (prosecutor / journalist / marketer models).
type RiskMeasures = risk.Measures

// MeasureRisk computes the re-identification risk measures of a masked
// microdata over its quasi-identifiers.
func MeasureRisk(mm *Table, qis []string) (RiskMeasures, error) { return risk.Measure(mm, qis) }

// Violation describes one QI-group breaking p-sensitive k-anonymity.
type Violation = core.GroupViolation

// ListViolations reports every violating QI-group with the reason
// (too small, or low diversity per confidential attribute). A nil
// result means the table satisfies the property.
func ListViolations(t *Table, qis, confidential []string, p, k int) ([]Violation, error) {
	return core.Violations(t, qis, confidential, p, k)
}

// GroupProfile summarizes one QI-group (size and per-confidential
// distinct counts).
type GroupProfile = core.GroupProfile

// ProfileGroups computes the profile of every QI-group.
func ProfileGroups(t *Table, qis, confidential []string) ([]GroupProfile, error) {
	return core.Profile(t, qis, confidential)
}

// ExtendedConfig configures CheckExtendedPSensitivity: a value
// hierarchy over the confidential attribute and the highest level at
// which p-diversity is still required.
type ExtendedConfig = core.ExtendedConfig

// CheckExtendedPSensitivity tests extended p-sensitive k-anonymity:
// QI-groups must keep p distinct confidential labels at every hierarchy
// level up to MaxLevel, closing the similarity attack that plain
// p-sensitivity leaves open.
func CheckExtendedPSensitivity(t *Table, qis []string, confidential string, p, k int, cfg ExtendedConfig) (bool, error) {
	return core.CheckExtended(t, qis, confidential, p, k, cfg)
}

// GreedyCluster anonymizes by greedy clustering: groups of at least k
// records with at least p distinct values per confidential attribute,
// recoded to per-cluster ranges. Lower information loss than
// full-domain generalization, no suppression.
func GreedyCluster(t *Table, qis, confidential []string, k, p int) (*Table, error) {
	res, err := search.GreedyCluster(t, search.ClusterConfig{
		QIs: qis, Confidential: confidential, K: k, P: p,
	})
	if err != nil {
		return nil, err
	}
	return res.Masked, nil
}

// AllMinimal enumerates every p-k-minimal generalization node using
// predictive tagging (monotonicity assumed, as in Samarati's search).
func AllMinimal(im *Table, cfg Config) ([]Node, error) {
	res, err := search.AllMinimal(im, cfg.searchConfig())
	if err != nil {
		return nil, err
	}
	nodes := make([]Node, 0, len(res.Minimal))
	for _, m := range res.Minimal {
		nodes = append(nodes, m.Node)
	}
	return nodes, nil
}

// ClusterConstraint adds a category-level diversity requirement to
// GreedyClusterExtended (extended p-sensitivity enforced during
// cluster construction).
type ClusterConstraint = search.ExtendedConstraint

// GreedyClusterExtended is GreedyCluster with extended-sensitivity
// constraints: every cluster keeps at least p distinct labels at every
// hierarchy level (up to each constraint's MaxLevel) of the named
// confidential attributes.
func GreedyClusterExtended(t *Table, qis, confidential []string, k, p int, extended []ClusterConstraint) (*Table, error) {
	res, err := search.GreedyCluster(t, search.ClusterConfig{
		QIs: qis, Confidential: confidential, K: k, P: p, Extended: extended,
	})
	if err != nil {
		return nil, err
	}
	return res.Masked, nil
}

// LocalSuppress generalizes the quasi-identifiers to node and then
// applies local (cell-level) suppression: tuples in undersized
// QI-groups keep their confidential values but have every QI cell
// replaced with "*". Returns the masked table and the number of
// locally suppressed tuples. The result is k-anonymous iff that count
// is zero or at least k (re-check with IsKAnonymous).
func LocalSuppress(im *Table, cfg Config, node Node) (*Table, int, error) {
	m, err := generalize.NewMasker(cfg.QuasiIdentifiers, cfg.Hierarchies)
	if err != nil {
		return nil, 0, err
	}
	g, err := m.Apply(im, node)
	if err != nil {
		return nil, 0, err
	}
	return m.SuppressCells(g, cfg.K)
}

// AnonymizeIncognito searches with the subset-lattice pruning of
// LeFevre et al.'s Incognito (the paper's reference [12]), adapted to
// p-sensitive k-anonymity, and returns every p-k-minimal node.
func AnonymizeIncognito(im *Table, cfg Config) (*Result, error) {
	r, err := search.Incognito(im, cfg.searchConfig())
	if err != nil {
		return nil, err
	}
	out := &Result{Report: r.Report, StopReason: r.StopReason, Frontier: r.Frontier}
	if len(r.Minimal) == 0 {
		return out, nil
	}
	first := r.Minimal[0]
	out.Found = true
	out.Node = first.Node
	out.Masked = first.Masked
	out.Suppressed = first.Suppressed
	for _, m := range r.Minimal {
		out.AllMinimal = append(out.AllMinimal, m.Node)
	}
	return out, nil
}

// AnatomyRelease is the two-table anatomy release: QIT (exact QI values
// plus GroupID) and ST (GroupID, sensitive value, count).
type AnatomyRelease = search.AnatomyResult

// Anatomize produces an anatomy bucketization (Xiao & Tao): the QIs are
// released exactly, but the sensitive attribute is only linkable to a
// group holding at least p distinct values. Fails when any sensitive
// value occurs more than n/p times (the eligibility condition).
func Anatomize(t *Table, qis []string, sensitive string, p int) (AnatomyRelease, error) {
	return search.Anatomize(t, qis, sensitive, p)
}

// Microaggregate applies MDAV microaggregation to numeric attributes:
// groups of at least k records, each value replaced by its group mean.
func Microaggregate(t *Table, attrs []string, k int) (*Table, error) {
	return mask.Microaggregate(t, attrs, k)
}

// RankSwap swaps each value of a numeric attribute with a partner
// whose rank differs by at most pct percent of n, preserving the
// marginal distribution exactly.
func RankSwap(t *Table, attr string, pct float64, seed int64) (*Table, error) {
	return mask.RankSwap(t, attr, pct, seed)
}

// AddNoise perturbs a numeric attribute with zero-mean Gaussian noise
// scaled to the attribute's standard deviation.
func AddNoise(t *Table, attr string, scale float64, seed int64) (*Table, error) {
	return mask.AddNoise(t, attr, scale, seed)
}

// CheckPAlpha tests (p, alpha)-sensitive k-anonymity: p distinct
// values per (group, confidential attribute) pair and no value holding
// more than an alpha fraction of any group.
func CheckPAlpha(t *Table, qis, confidential []string, p, k int, alpha float64) (bool, error) {
	return core.CheckPAlpha(t, qis, confidential, p, k, alpha)
}

// IsDistinctLDiverse reports whether every QI-group has at least l
// distinct values of the confidential attribute (distinct l-diversity,
// the closest relative of p-sensitivity in the follow-on literature).
func IsDistinctLDiverse(t *Table, qis []string, confidential string, l int) (bool, error) {
	return core.IsDistinctLDiverse(t, qis, confidential, l)
}

// IsEntropyLDiverse reports whether every QI-group's confidential value
// distribution has entropy at least log(l).
func IsEntropyLDiverse(t *Table, qis []string, confidential string, l int) (bool, error) {
	return core.IsEntropyLDiverse(t, qis, confidential, l)
}

// TCloseness returns the maximum variational distance between any
// QI-group's confidential value distribution and the whole-table
// distribution; the table is t-close when the result is <= t.
func TCloseness(t *Table, qis []string, confidential string) (float64, error) {
	return core.TCloseness(t, qis, confidential)
}

// Policy is a composable privacy property evaluated over group
// statistics. Every check in this package — p-sensitive k-anonymity,
// l-diversity, t-closeness, (p, alpha), extended p-sensitivity — is a
// Policy; AllOf conjoins them, and Config.Policy makes every search
// strategy target the composition. Custom implementations must be
// monotone under QI-group merging to be searched with Samarati,
// AllMinimal or Incognito.
type Policy = core.Policy

// Verdict is a policy evaluation result: Satisfied, the Reason when
// not, and the first violating group's index (Group, -1 when none).
type Verdict = core.Result

// Bounds are the Theorem 1-2 rejection bounds (maxP, maxGroups)
// computed once on the initial microdata.
type Bounds = core.Bounds

// KAnonymity is plain k-anonymity (Definition 1) as a Policy.
func KAnonymity(k int) Policy { return core.KAnonymityPolicy{K: k} }

// PSensitivity requires p distinct values per (QI-group, confidential
// attribute) pair; nil confidential means every attribute the search's
// statistics carry.
func PSensitivity(p int, confidential []string) Policy {
	return core.PSensitivityPolicy{P: p, Attrs: confidential}
}

// PSensitiveKAnonymity is the paper's Definition 2 as a Policy.
func PSensitiveKAnonymity(p, k int, confidential []string) Policy {
	return core.PSensitiveKAnonymityPolicy{P: p, K: k, Attrs: confidential}
}

// DistinctLDiversity requires l distinct confidential values per group.
func DistinctLDiversity(confidential string, l int) Policy {
	return core.DistinctLDiversityPolicy{Attr: confidential, L: l}
}

// EntropyLDiversity requires per-group value entropy of at least log(l).
func EntropyLDiversity(confidential string, l int) Policy {
	return core.EntropyLDiversityPolicy{Attr: confidential, L: l}
}

// RecursiveLDiversity is recursive (c,l)-diversity: in every group the
// most frequent value's count must stay below c times the sum of the
// l-th most frequent onwards.
func RecursiveLDiversity(confidential string, c float64, l int) Policy {
	return core.RecursiveLDiversityPolicy{Attr: confidential, C: c, L: l}
}

// TClose requires every group's confidential distribution to stay
// within variational distance t of the whole release's.
func TClose(confidential string, t float64) Policy {
	return core.TClosenessPolicy{Attr: confidential, T: t}
}

// PAlphaSensitivity is (p, alpha)-sensitive k-anonymity as a Policy.
func PAlphaSensitivity(p, k int, alpha float64, confidential []string) Policy {
	return core.PAlphaPolicy{P: p, K: k, Alpha: alpha, Attrs: confidential}
}

// AllOf conjoins policies: satisfied only when every part is; the
// verdict of the first unsatisfied part is reported.
func AllOf(policies ...Policy) Policy { return core.All(policies...) }

// BoundedPolicy wraps a policy with the paper's Algorithm 2 rejection
// filters: Condition 1 (p > maxP) and Condition 2 (too many QI-groups)
// reject before the wrapped policy scans a single group. Compute the
// bounds once on the initial microdata with ComputeBounds; Theorems 1
// and 2 keep them valid for every derived masking.
func BoundedPolicy(inner Policy, b Bounds) Policy { return core.WithBounds(inner, b) }

// ComputeBounds evaluates the two necessary-condition bounds of the
// paper on the initial microdata, for sensitivity parameter p.
func ComputeBounds(t *Table, confidential []string, p int) (Bounds, error) {
	return core.ComputeBounds(t, confidential, p)
}

// EvaluatePolicy checks a table against a policy directly (no search):
// one group-statistics pass over the QIs, then the policy verdict.
// confidential lists the attributes the statistics carry histograms
// for; it must cover every attribute the policy names, and is what
// attribute-agnostic policies (nil Attrs) apply to.
func EvaluatePolicy(t *Table, qis, confidential []string, pol Policy) (Verdict, error) {
	v, err := core.NewStatsView(t, qis, confidential, 1)
	if err != nil {
		return Verdict{}, err
	}
	return pol.Evaluate(v)
}

// Telemetry re-exports. The obs layer is nil-safe throughout: a nil
// *Recorder / *Tracer disables collection at the cost of one pointer
// compare per instrumented call site, so production paths thread nil
// without guards.
type (
	// Recorder aggregates search telemetry; attach one via
	// Config.Recorder and read Result.Report (or Snapshot it directly).
	Recorder = obs.Recorder
	// Tracer streams one JSONL event per evaluated lattice node.
	Tracer = obs.Tracer
	// Report is an immutable telemetry snapshot; String() renders the
	// block the -stats CLI flag prints, and it marshals to JSON as-is.
	Report = obs.Report
	// TraceEvent is one line of a JSONL search trace.
	TraceEvent = obs.Event
)

// NewRecorder returns an enabled, empty telemetry recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// NewTracer wraps w in a buffered JSONL node-evaluation trace; call
// Flush when the search completes.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// ReadTraceEvents parses a JSONL trace produced by a Tracer into a
// slice. For traces that may not fit in memory, use ScanTraceEvents.
func ReadTraceEvents(r io.Reader) ([]TraceEvent, error) { return obs.ReadEvents(r) }

// ScanTraceEvents streams a JSONL trace through fn one event at a
// time, in file order, without holding the trace in memory.
func ScanTraceEvents(r io.Reader, fn func(TraceEvent) error) error {
	return obs.ScanEvents(r, fn)
}

// Live observability re-exports: the in-flight view of a running
// search. A Sampler snapshots Recorder deltas into a bounded ring of
// timestamped Samples; an ObsServer serves /metrics, /progress,
// /healthz and /debug/pprof over HTTP while the search runs; an Audit
// explains a finished search from its trace and report.
type (
	// Sampler periodically snapshots a Recorder into a ring buffer of
	// Samples; see NewSampler.
	Sampler = obs.Sampler
	// Sample is one timestamped snapshot of search rates and gauges.
	Sample = obs.Sample
	// Progress is the live in-flight view of a search (completion
	// fraction, budget consumption, best-so-far node).
	Progress = obs.Progress
	// ObsServer is the stdlib-only HTTP debug server over a Recorder;
	// see NewObsServer.
	ObsServer = obs.Server
	// Audit is the reconciled explain view of one search run: per-level
	// prune attribution, budget timeline, efficiency summary. See
	// ExplainTrace.
	Audit = explain.Audit
)

// NewSampler builds a sampler over rec taking one sample per interval
// (<= 0 defaults to 250ms) into a ring of capacity entries (<= 0
// defaults to 512). Call Start to begin ticking and Stop before reading
// a final consistent ring; a nil rec yields a nil, disabled sampler.
func NewSampler(rec *Recorder, interval time.Duration, capacity int) *Sampler {
	return obs.NewSampler(rec, interval, capacity)
}

// NewObsServer binds addr (":0" selects an ephemeral port — read Addr)
// and serves the live observatory for rec: /metrics (the Report
// snapshot), /progress (Progress plus the sampler's ring), /healthz and
// /debug/pprof. sampler may be nil. Close the server when done.
func NewObsServer(addr string, rec *Recorder, sampler *Sampler) (*ObsServer, error) {
	return obs.NewServer(addr, rec, sampler)
}

// ExplainTrace streams a JSONL search trace into an Audit and, when rep
// is non-nil, reconciles the trace's verdict totals exactly against the
// report's node counters. The Audit's WriteText/WriteJSON render the
// `pskanon -explain` output.
func ExplainTrace(r io.Reader, rep *Report) (*Audit, error) {
	return explain.FromReader(r, rep)
}

// Instrument wraps a policy tree so every leaf policy reports
// per-evaluation telemetry to rec (see Report.Policies). The search
// engine applies this automatically to Config.Policy when
// Config.Recorder is set; use it directly when evaluating policies
// outside a search (as pskcheck -stats does). A nil recorder returns
// p unchanged.
func Instrument(p Policy, rec *Recorder) Policy { return core.Observe(p, rec) }
