package psk

import (
	"fmt"

	"psk/internal/search"
)

// Session is a streaming anonymization session: open it once on the
// base microdata, feed it append/retire deltas with Apply, and call
// Republish after each batch for a fresh verdict at a cost
// proportional to the delta, not the table. The published
// generalization is maintained incrementally — group statistics move
// with each row, unchanged verdicts re-scan only the touched groups,
// and a broken verdict is repaired by climbing the lattice from the
// incumbent node before falling back to a cold Config.Algorithm
// search. Every verdict matches evaluating the published node on a
// fresh scan of the live rows, and Materialize is byte-identical to
// the batch pipeline on the live snapshot; a repaired node is a
// satisfying ancestor of the incumbent but need not be globally
// height-minimal (see DESIGN.md §14).
//
// A Session is not safe for concurrent use.
type Session struct {
	inc *search.Incremental
}

// OpenSession starts a streaming session over the base microdata. The
// table is copied, so later changes to im do not affect the session;
// Config.Algorithm selects the cold-fallback strategy used for the
// first Republish and for republishes the incremental repair cannot
// settle.
func OpenSession(im *Table, cfg Config) (*Session, error) {
	var fb search.Strategy
	switch cfg.Algorithm {
	case AlgorithmSamarati:
		fb = search.StrategySamarati
	case AlgorithmBottomUp:
		fb = search.StrategyBottomUp
	case AlgorithmExhaustive:
		fb = search.StrategyExhaustive
	default:
		return nil, fmt.Errorf("psk: unknown algorithm %d", cfg.Algorithm)
	}
	inc, err := search.OpenIncremental(im, cfg.searchConfig(), fb)
	if err != nil {
		return nil, err
	}
	return &Session{inc: inc}, nil
}

// Schema returns the session's row schema; appended cells follow it.
func (s *Session) Schema() Schema { return s.inc.Schema() }

// NumLive reports the number of live (non-retired) rows.
func (s *Session) NumLive() int { return s.inc.NumLive() }

// NumRows reports the total number of row ids ever stored: the base
// table's rows are 0..n-1 and every appended row takes the next id.
func (s *Session) NumRows() int { return s.inc.NumRows() }

// Published returns a copy of the currently published generalization
// node, or nil when nothing is published (before the first Republish,
// or after one that found no satisfying node).
func (s *Session) Published() Node { return s.inc.Published() }

// Apply absorbs one delta batch: retires first (ids must name live
// rows), then appends (textual cells in schema order). On error the
// batch stops at the failing row; an error that could leave the
// maintained statistics inconsistent poisons the session permanently.
func (s *Session) Apply(appends [][]string, retires []int) error {
	return s.inc.Apply(appends, retires)
}

// Republish re-verdicts the published node against the current live
// rows and returns a batch-shaped Result. Result.Masked is nil on the
// incremental paths (materializing costs O(live rows)); call
// Materialize when the masked release is actually needed.
func (s *Session) Republish() (*Result, error) {
	r, err := s.inc.Republish()
	if err != nil {
		return nil, err
	}
	return &Result{
		Found:      r.Found,
		Node:       r.Node,
		Masked:     r.Masked,
		Suppressed: r.Suppressed,
		Report:     r.Report,
		StopReason: r.StopReason,
	}, nil
}

// Materialize builds the masked microdata for the published node from
// the current live rows — byte-identical to Anonymize's output on a
// snapshot of them — and returns it with the suppressed-tuple count.
func (s *Session) Materialize() (*Table, int, error) { return s.inc.Materialize() }
