module psk

go 1.22
