package psk

import (
	"testing"
	"time"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/search"
)

// TestScaleFullPipeline drives the complete pipeline on a 50,000-record
// synthetic Adult: generation, Samarati search, property verification,
// disclosure counting and risk measurement. Guarded by -short so the
// regular test loop stays fast.
func TestScaleFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	start := time.Now()
	im, err := dataset.Generate(50000, 2006)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		t.Fatal(err)
	}
	cfg := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             10,
		P:             2,
		MaxSuppress:   500,
		UseConditions: true,
	}
	res, err := search.Samarati(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no solution on the 50k workload")
	}
	chk, err := core.Check(res.Masked, cfg.QIs, cfg.Confidential, cfg.P, cfg.K)
	if err != nil || !chk.Satisfied {
		t.Fatalf("verification failed: %+v, %v", chk, err)
	}
	m, err := MeasureRisk(res.Masked, cfg.QIs)
	if err != nil {
		t.Fatal(err)
	}
	if m.ProsecutorMax > 1.0/float64(cfg.K) {
		t.Errorf("prosecutor risk %g exceeds 1/k", m.ProsecutorMax)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Minute {
		t.Errorf("pipeline took %v; expected well under two minutes", elapsed)
	}
	t.Logf("50k pipeline: node %v, %d suppressed, %d groups, %v",
		res.Node, res.Suppressed, m.Groups, elapsed)
}

// TestScaleClusteringAndChecks exercises GreedyCluster and the check
// algorithms on 10,000 records (also -short guarded).
func TestScaleClusteringAndChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	im, err := dataset.Generate(10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.GreedyCluster(im, search.ClusterConfig{
		QIs:          dataset.QIs(),
		Confidential: []string{dataset.Pay, dataset.TaxPeriod},
		K:            8,
		P:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	chk, err := core.Check(res.Masked, dataset.QIs(), []string{dataset.Pay, dataset.TaxPeriod}, 2, 8)
	if err != nil || !chk.Satisfied {
		t.Fatalf("cluster verification: %+v, %v", chk, err)
	}
	basic, err := core.CheckBasic(res.Masked, dataset.QIs(), []string{dataset.Pay, dataset.TaxPeriod}, 2, 8)
	if err != nil || !basic {
		t.Fatalf("algorithms disagree at scale: %v, %v", basic, err)
	}
}
