// Healthcare: the paper's Section 2 scenario end to end. A healthcare
// organization wants to publish patient microdata. The example shows
// (1) why plain k-anonymity is not enough — the Table 1/Table 2 attack
// where an intruder learns that Sam and Eric have Diabetes — and (2)
// how a p-sensitive release stops the attack.
package main

import (
	"fmt"
	"log"
	"sort"

	"psk"
)

func patientData() (*psk.Table, error) {
	schema := psk.MustSchema(
		psk.Field{Name: "Name", Type: psk.String},
		psk.Field{Name: "Age", Type: psk.Int},
		psk.Field{Name: "ZipCode", Type: psk.String},
		psk.Field{Name: "Sex", Type: psk.String},
		psk.Field{Name: "Illness", Type: psk.String},
	)
	// The hospital's initial microdata: identified records.
	return psk.FromText(schema, [][]string{
		{"Adam", "51", "43102", "M", "Colon Cancer"},
		{"Gloria", "38", "43102", "F", "Breast Cancer"},
		{"Tanisha", "34", "43102", "F", "HIV"},
		{"Sam", "29", "43102", "M", "Diabetes"},
		{"Eric", "29", "43102", "M", "Diabetes"},
		{"Don", "51", "43102", "M", "Heart Disease"},
	})
}

func hierarchies() (*psk.Hierarchies, error) {
	// Age generalizes to decades, then one group; ZipCode loses digits;
	// Sex collapses to Person.
	age, err := psk.NewIntervalHierarchy("Age", []psk.IntervalLevel{
		psk.DecadeLevel("decades", 20, 60, 10),
		{Name: "any", Labels: []string{psk.Suppressed}},
	})
	if err != nil {
		return nil, err
	}
	zip, err := psk.NewPrefixStepsHierarchy("ZipCode", 5, []int{2, 5})
	if err != nil {
		return nil, err
	}
	return psk.NewHierarchies(age, zip, psk.NewFlatHierarchy("Sex", "Person"))
}

func main() {
	identified, err := patientData()
	if err != nil {
		log.Fatal(err)
	}
	hs, err := hierarchies()
	if err != nil {
		log.Fatal(err)
	}

	// The public voter list the intruder holds: everyone's name and key
	// attributes (this is the hospital data minus the illness — in
	// reality it comes from an external source).
	external, err := identified.Select("Name", "Age", "ZipCode", "Sex")
	if err != nil {
		log.Fatal(err)
	}
	// The released table never includes names.
	releasable, err := identified.Select("Age", "ZipCode", "Sex", "Illness")
	if err != nil {
		log.Fatal(err)
	}

	qis := []string{"Age", "ZipCode", "Sex"}
	conf := []string{"Illness"}

	fmt.Println("== Release 1: k-anonymity only (k=2) ==")
	kOnly, err := psk.Anonymize(releasable, psk.Config{
		QuasiIdentifiers: qis,
		Confidential:     conf,
		Hierarchies:      hs,
		K:                2,
		P:                1, // no sensitivity requirement
		MaxSuppress:      0,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !kOnly.Found {
		log.Fatal("k-anonymous release not found")
	}
	fmt.Printf("generalization node: %s\n", kOnly.Node)
	fmt.Println(kOnly.Masked)
	attack(external, hs, kOnly, qis, conf)

	fmt.Println("\n== Release 2: p-sensitive k-anonymity (p=2, k=2) ==")
	psens, err := psk.Anonymize(releasable, psk.Config{
		QuasiIdentifiers: qis,
		Confidential:     conf,
		Hierarchies:      hs,
		K:                2,
		P:                2,
		MaxSuppress:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !psens.Found {
		log.Fatal("p-sensitive release not found")
	}
	fmt.Printf("generalization node: %s, suppressed %d\n", psens.Node, psens.Suppressed)
	fmt.Println(psens.Masked)
	attack(external, hs, psens, qis, conf)
}

// attack simulates the intruder: link the external identified list
// against a release and report what is learned.
func attack(external *psk.Table, hs *psk.Hierarchies, rel *psk.Result, qis, conf []string) {
	in := &psk.Intruder{
		External:    external,
		IDAttr:      "Name",
		QIs:         qis,
		Hierarchies: hs,
		Node:        rel.Node,
	}
	links, err := in.Attack(rel.Masked, conf)
	if err != nil {
		log.Fatal(err)
	}
	sum := psk.SummarizeAttack(links)
	fmt.Printf("intruder: %d/%d linked, %d uniquely identified, %d attribute disclosures\n",
		sum.Linked, sum.Individuals, sum.UniquelyIdentified, sum.AttributeDisclosed)
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
	for _, l := range links {
		for attr, v := range l.Learned {
			fmt.Printf("  LEAK: %s has %s = %s\n", l.ID, attr, v)
		}
	}
	if sum.AttributeDisclosed == 0 {
		fmt.Println("  no confidential values leaked")
	}
}
