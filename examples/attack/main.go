// Attack: quantify disclosure risk at scale. A marketing firm (the
// paper's motivating intruder) holds an identified list covering part
// of the population and links it against a published census release.
// The example sweeps p over {1, 2, 3} at fixed k and reports how many
// individuals suffer attribute disclosure under each release, showing
// the marginal value of the p parameter.
package main

import (
	"fmt"
	"log"

	"psk"
	"psk/internal/dataset"
)

func main() {
	pool, err := dataset.Generate(30000, 2006)
	if err != nil {
		log.Fatal(err)
	}
	im, err := pool.Sample(2000, 23)
	if err != nil {
		log.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		log.Fatal(err)
	}

	// The intruder's list: 500 of the 2000 individuals, with synthetic
	// names and ground-level key attributes.
	known, err := im.Sample(500, 99)
	if err != nil {
		log.Fatal(err)
	}
	external, err := withNames(known)
	if err != nil {
		log.Fatal(err)
	}

	qis := dataset.QIs()
	conf := []string{dataset.Pay, dataset.TaxPeriod}

	fmt.Printf("population: %d records; intruder knows %d identities\n\n",
		im.NumRows(), external.NumRows())
	fmt.Printf("%-28s  %-20s  %10s  %12s  %12s\n",
		"release", "node", "suppressed", "identified", "attr leaks")

	k := 4
	for p := 1; p <= 3; p++ {
		res, err := psk.Anonymize(im, psk.Config{
			QuasiIdentifiers: qis,
			Confidential:     conf,
			Hierarchies:      hs,
			K:                k,
			P:                p,
			MaxSuppress:      60,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d-sensitive %d-anonymity", p, k)
		if !res.Found {
			maxP, err := psk.MaxP(im, conf)
			if err == nil && p > maxP {
				// Necessary condition 1: Pay has only two distinct
				// values, so no masking whatsoever can reach p = 3.
				fmt.Printf("%-28s  infeasible: p exceeds maxP = %d (necessary condition 1)\n", label, maxP)
			} else {
				fmt.Printf("%-28s  no masking satisfies the property within budget\n", label)
			}
			continue
		}
		in := &psk.Intruder{
			External:    external,
			IDAttr:      "Name",
			QIs:         qis,
			Hierarchies: hs,
			Node:        res.Node,
		}
		links, err := in.Attack(res.Masked, conf)
		if err != nil {
			log.Fatal(err)
		}
		sum := psk.SummarizeAttack(links)
		fmt.Printf("%-28s  %-20s  %10d  %12d  %12d\n",
			label, res.Node.String(), res.Suppressed, sum.UniquelyIdentified, sum.AttributeDisclosed)
	}

	fmt.Println("\nAttribute leaks shrink as p grows: every QI-group is forced to")
	fmt.Println("contain at least p distinct values of each confidential attribute,")
	fmt.Println("so linking a person to a group no longer pins down their value.")
}

// withNames attaches a synthetic Name column (Person-0001, ...) to the
// intruder's known sub-population.
func withNames(t *psk.Table) (*psk.Table, error) {
	fields := append([]psk.Field{{Name: "Name", Type: psk.String}}, t.Schema().Fields...)
	sch, err := psk.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	b, err := psk.NewBuilder(sch)
	if err != nil {
		return nil, err
	}
	for r := 0; r < t.NumRows(); r++ {
		row, err := t.Row(r)
		if err != nil {
			return nil, err
		}
		rec := append([]psk.Value{psk.SV(fmt.Sprintf("Person-%04d", r))}, row...)
		b.Append(rec...)
	}
	return b.Build()
}
