// Similarity: the attack that plain p-sensitivity misses and the
// extended model catches. A hospital release is 3-sensitive — every
// group has three distinct diagnoses — yet one group's diagnoses are
// all cancers, so an intruder who links any member learns "cancer"
// with certainty. The example runs the plain and extended checks side
// by side, then repairs the release with greedy clustering.
package main

import (
	"fmt"
	"log"

	"psk"
)

func main() {
	schema := psk.MustSchema(
		psk.Field{Name: "Age", Type: psk.Int},
		psk.Field{Name: "ZipCode", Type: psk.String},
		psk.Field{Name: "Illness", Type: psk.String},
	)
	// Already 3-anonymous on (Age, ZipCode): two groups of 3 and one of 4.
	data, err := psk.FromText(schema, [][]string{
		{"20", "41076", "Colon Cancer"},
		{"20", "41076", "Lung Cancer"},
		{"20", "41076", "Stomach Cancer"},
		{"30", "41099", "Flu"},
		{"30", "41099", "Diabetes"},
		{"30", "41099", "Colon Cancer"},
		{"40", "43102", "HIV"},
		{"40", "43102", "Flu"},
		{"40", "43102", "Asthma"},
		{"40", "43102", "Diabetes"},
	})
	if err != nil {
		log.Fatal(err)
	}
	qis := []string{"Age", "ZipCode"}

	// The disease taxonomy the extended model consults.
	taxonomy, err := psk.NewTreeHierarchy("Illness", map[string][]string{
		"Colon Cancer":   {"Cancer", "Any"},
		"Lung Cancer":    {"Cancer", "Any"},
		"Stomach Cancer": {"Cancer", "Any"},
		"Flu":            {"Infection", "Any"},
		"HIV":            {"Infection", "Any"},
		"Asthma":         {"Chronic", "Any"},
		"Diabetes":       {"Chronic", "Any"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Release:")
	fmt.Println(data)

	plain, err := psk.CheckBasic(data, qis, []string{"Illness"}, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	ext, err := psk.CheckExtendedPSensitivity(data, qis, "Illness", 2, 3,
		psk.ExtendedConfig{Hierarchy: taxonomy, MaxLevel: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain 3-sensitive 3-anonymity:               %v\n", plain)
	fmt.Printf("extended 2-sensitive 3-anonymity (category): %v\n", ext)
	fmt.Println()
	fmt.Println("The 20/41076 group has three *distinct* diagnoses — plain")
	fmt.Println("p-sensitivity passes — but they are all cancers: linking any")
	fmt.Println("member reveals the disease category. The extended check fails it.")
	fmt.Println()

	// Repair: recluster with the category constraint enforced during
	// construction — every cluster must mix at least two disease
	// categories, not merely two disease names.
	masked, err := psk.GreedyClusterExtended(data, qis, []string{"Illness"}, 3, 2,
		[]psk.ClusterConstraint{{Attr: "Illness", Hierarchy: taxonomy, MaxLevel: 1}})
	if err != nil {
		log.Fatal(err)
	}
	fixedExt, err := psk.CheckExtendedPSensitivity(masked, qis, "Illness", 2, 3,
		psk.ExtendedConfig{Hierarchy: taxonomy, MaxLevel: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Re-clustered release (GreedyClusterExtended, k=3, p=2, category-aware):")
	fmt.Println(masked)
	fmt.Printf("extended 2-sensitive 3-anonymity (category): %v\n", fixedExt)
}
