// Census: the paper's Section 4 workload. Anonymize an Adult census
// sample with the Table 7 hierarchies, compare the three lattice search
// strategies and the Mondrian baseline, and measure utility.
package main

import (
	"fmt"
	"log"
	"time"

	"psk"
	"psk/internal/dataset"
)

func main() {
	// A 4000-record sample, as in the paper's larger experiment. Use
	// cmd/adultgen to materialize the same data as CSV, or pass a real
	// adult.data through dataset.Load.
	pool, err := dataset.Generate(30000, 2006)
	if err != nil {
		log.Fatal(err)
	}
	im, err := pool.Sample(4000, 17)
	if err != nil {
		log.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		log.Fatal(err)
	}

	cfg := psk.Config{
		QuasiIdentifiers: dataset.QIs(),
		Confidential:     dataset.Confidential(),
		Hierarchies:      hs,
		K:                3,
		P:                2,
		MaxSuppress:      40,
	}

	fmt.Printf("Initial microdata: %d records, QIs %v\n\n", im.NumRows(), cfg.QuasiIdentifiers)

	for _, alg := range []struct {
		name string
		a    psk.Algorithm
	}{
		{"Samarati binary search", psk.AlgorithmSamarati},
		{"bottom-up level scan", psk.AlgorithmBottomUp},
	} {
		c := cfg
		c.Algorithm = alg.a
		start := time.Now()
		res, err := psk.Anonymize(im, c)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if !res.Found {
			fmt.Printf("%-24s: no solution\n", alg.name)
			continue
		}
		rep, err := psk.MeasureUtility(im, res.Masked, c, res.Node)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s: node %s  suppressed %d  precision %.3f  DM %d  (%v)\n",
			alg.name, res.Node, res.Suppressed, rep.Precision, rep.Discernibility, elapsed)
		if len(res.AllMinimal) > 0 {
			fmt.Printf("%-24s  minimal nodes at that height: %v\n", "", res.AllMinimal)
		}
	}

	// Mondrian: multidimensional recoding with the same k and p.
	start := time.Now()
	masked, err := psk.Mondrian(im, cfg.QuasiIdentifiers, cfg.Confidential, cfg.K, cfg.P)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := psk.IsPSensitiveKAnonymous(masked, cfg.QuasiIdentifiers, cfg.Confidential, cfg.P, cfg.K)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := masked.NumGroups(cfg.QuasiIdentifiers...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s: %d partitions  property holds: %v  (%v)\n",
		"Mondrian baseline", groups, ok, time.Since(start))

	// Inspect the release with SQL, as the paper does.
	out, err := psk.Query(map[string]*psk.Table{"MM": masked},
		"SELECT Sex, COUNT(*) AS n, COUNT(DISTINCT Pay) AS pays FROM MM GROUP BY Sex ORDER BY n DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL inspection of the Mondrian release:")
	fmt.Print(out.Format(-1))
}
