// Quickstart: anonymize a small patient table to 2-sensitive
// 3-anonymity in a dozen lines of library code.
package main

import (
	"fmt"
	"log"

	"psk"
)

func main() {
	// 1. Describe the data.
	schema := psk.MustSchema(
		psk.Field{Name: "Age", Type: psk.Int},
		psk.Field{Name: "ZipCode", Type: psk.String},
		psk.Field{Name: "Sex", Type: psk.String},
		psk.Field{Name: "Illness", Type: psk.String},
	)
	data, err := psk.FromText(schema, [][]string{
		{"25", "41076", "M", "Flu"},
		{"29", "41076", "M", "Asthma"},
		{"31", "41076", "F", "Diabetes"},
		{"38", "41099", "F", "Flu"},
		{"34", "41099", "M", "Diabetes"},
		{"36", "41099", "M", "Asthma"},
		{"52", "43102", "M", "Flu"},
		{"55", "43102", "F", "Heart Disease"},
		{"58", "43102", "M", "Diabetes"},
		{"61", "43103", "F", "Asthma"},
		{"64", "43103", "M", "Flu"},
		{"67", "43103", "F", "Heart Disease"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Define how each quasi-identifier may be generalized.
	age, err := psk.NewIntervalHierarchy("Age", []psk.IntervalLevel{
		psk.DecadeLevel("decades", 20, 70, 10),
		{Name: "halves", Cuts: []int64{50}, Labels: []string{"<50", ">=50"}},
		{Name: "any", Labels: []string{psk.Suppressed}},
	})
	if err != nil {
		log.Fatal(err)
	}
	zip, err := psk.NewPrefixStepsHierarchy("ZipCode", 5, []int{2, 5})
	if err != nil {
		log.Fatal(err)
	}
	hierarchies, err := psk.NewHierarchies(age, zip, psk.NewFlatHierarchy("Sex", "Person"))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Anonymize: k = 3 (identity protection), p = 2 (attribute
	// protection), allowing at most 2 suppressed tuples.
	cfg := psk.Config{
		QuasiIdentifiers: []string{"Age", "ZipCode", "Sex"},
		Confidential:     []string{"Illness"},
		Hierarchies:      hierarchies,
		K:                3,
		P:                2,
		MaxSuppress:      2,
	}
	res, err := psk.Anonymize(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no masking satisfies the requested privacy level")
	}

	fmt.Println("Initial microdata:")
	fmt.Println(data)
	fmt.Printf("Chosen generalization node: %s (lattice height %d), suppressed %d tuples\n\n",
		res.Node, res.Node.Height(), res.Suppressed)
	fmt.Println("Masked microdata (2-sensitive 3-anonymous):")
	fmt.Println(res.Masked)

	// 4. Verify and measure.
	ok, err := psk.IsPSensitiveKAnonymous(res.Masked, cfg.QuasiIdentifiers, cfg.Confidential, cfg.P, cfg.K)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := psk.MeasureUtility(data, res.Masked, cfg, res.Node)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d-sensitive %d-anonymity: %v\n", cfg.P, cfg.K, ok)
	fmt.Printf("utility: precision %.3f, discernibility %d, suppression %.0f%%\n",
		rep.Precision, rep.Discernibility, rep.SuppressionRatio*100)
}
