// Command pskexp regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers).
//
// Usage:
//
//	pskexp -exp all
//	pskexp -exp table8 [-adult adult.data] [-ts 0] [-seed 17]
//	pskexp -exp attack|table3|figure1|figure2|figure3|table4|example1|table7|ablation|utility
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.Exp(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pskexp:", err)
		os.Exit(1)
	}
}
