// Command pskcheck verifies privacy properties of a (masked) CSV file:
// k-anonymity, p-sensitive k-anonymity (with the paper's necessary
// conditions reported), the achievable sensitivity, re-identification
// risk and attribute disclosure counts. It can also run ad-hoc SQL
// against the file, since the paper defines its checks in SQL.
//
// The -ldiv, -tclose and -alpha flags conjoin extra properties onto
// the p-sensitive k-anonymity target (distinct l-diversity,
// t-closeness, and the (p, alpha) frequency cap, per confidential
// attribute); when any is given, pskcheck evaluates the composite
// policy and exits with a non-zero status if it is violated, so
// release pipelines can gate on `pskcheck ... && publish`.
//
// Exit codes: 0 when the checks ran and every requested property held,
// 1 when a property was violated (a verdict), 2 when the input layer
// rejected the invocation (missing file, malformed CSV) before any
// check ran.
//
// Usage:
//
//	pskcheck -in masked.csv -qi Age,ZipCode,Sex -conf Illness -k 3 -p 2 [-violations]
//	pskcheck -in masked.csv -qi Age,ZipCode,Sex -conf Illness -k 3 -p 2 -ldiv 2 -tclose 0.4
//	pskcheck -in masked.csv -sql "SELECT COUNT(*) FROM T GROUP BY Sex"
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.Check(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pskcheck:", err)
		os.Exit(cli.ExitCode(err))
	}
}
