// Command adultgen emits the synthetic Adult census microdata used by
// the experiment harness (see DESIGN.md for the substitution rationale:
// the reproduction environment is offline, so the UCI file is replaced
// by a generator matching its published marginal distributions).
//
// Usage:
//
//	adultgen -n 4000 -seed 2006 -out adult.csv
//	adultgen -scale 20 -seed 2006 -out adult_1m.csv   # 48,842-row shape x 20
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.Gen(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "adultgen:", err)
		os.Exit(1)
	}
}
