// Command pskserve is anonymization-as-a-service: an async job server
// over the p-sensitive k-anonymity engine. Check, anonymize, frontier
// and attack run as jobs — POST /v1/jobs returns a job id, GET
// /v1/jobs/{id} polls status and result, DELETE cancels the underlying
// search through its context.
//
// Usage:
//
//	pskserve -addr 127.0.0.1:8787 -queue 64 -workers 2 -max-timeout 30s
//
// The service applies the CLI exit-code convention to HTTP statuses
// (verdicts — positive or negative — are 200, input errors 400),
// backpressures with 429 + Retry-After when the queue is full, dedups
// identical in-flight requests (single-flight), caches completed
// results by content key, and shares one generalized-column cache
// across concurrent searches over the same dataset. Each job exposes
// the live observatory under /v1/jobs/{id}/ (metrics, progress,
// healthz, debug/pprof); service-level /metrics, /progress, /healthz
// and /debug/pprof cover the queue and caches.
//
// Exit codes: 0 on clean shutdown (SIGINT/SIGTERM drains), 2 when the
// listener could not bind.
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.Serve(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pskserve:", err)
		os.Exit(cli.ExitCode(err))
	}
}
