// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON object mapping each benchmark to its ns/op and
// allocs/op, for committing benchmark snapshots (see `make bench-json`).
//
// With -compare it instead judges the fresh output against a committed
// snapshot and exits non-zero when any benchmark's ns/op regressed by
// more than -tolerance (see `make bench-compare`), so CI can gate
// merges on benchmark regressions.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/search | benchjson > BENCH.json
//	go test -bench . -benchmem ./internal/search | benchjson -compare BENCH.json -tolerance 0.15
package main

import (
	"flag"
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	var (
		compare   = flag.String("compare", "", "baseline BENCH json to compare against instead of emitting json")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional ns/op regression in -compare mode (0.15 = +15%)")
	)
	flag.Parse()
	if *compare == "" {
		if err := cli.BenchJSON(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	base, err := os.Open(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	defer base.Close()
	if err := cli.BenchCompare(os.Stdin, base, *tolerance, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
