// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON object mapping each benchmark to its ns/op and
// allocs/op, for committing benchmark snapshots (see `make bench-json`).
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.BenchJSON(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
