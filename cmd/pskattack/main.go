// Command pskattack simulates the paper's record-linkage intruder
// (Section 2, Tables 1-2): it joins an identified external CSV against
// a masked release on the key attributes and reports identity and
// attribute disclosure.
//
// Usage:
//
//	pskattack -masked masked.csv -external voters.csv -id Name \
//	          -qi Age,ZipCode,Sex -conf Illness [-leaks]
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.Attack(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pskattack:", err)
		os.Exit(1)
	}
}
