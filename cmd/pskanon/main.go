// Command pskanon anonymizes a CSV file to p-sensitive k-anonymity
// using full-domain generalization with suppression (the paper's
// Algorithm 3) and writes the masked microdata plus a report.
//
// Usage:
//
//	pskanon -in data.csv -job job.json -out masked.csv [-algorithm samarati]
//	pskanon -in data.csv -job job.json -ldiv 2 -tclose 0.4 -out masked.csv
//
// The job file (see internal/config) names the quasi-identifiers,
// confidential attributes, k, p, the suppression threshold, and the
// generalization hierarchy for every quasi-identifier. The -ldiv,
// -tclose and -alpha flags conjoin extra properties onto the search
// target (distinct l-diversity, t-closeness, the (p, alpha) frequency
// cap), making every strategy look for the composite in one pass.
// The -timeout and -max-nodes flags bound the search; when a budget
// trips, the best generalization found so far is released with a
// warning on stderr.
//
// Exit codes: 0 when a satisfying generalization was released, 1 when
// none exists within the suppression budget (a verdict), 2 when the
// input layer rejected the invocation (missing file, malformed CSV,
// invalid job config) before any search ran.
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.Anon(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pskanon:", err)
		os.Exit(cli.ExitCode(err))
	}
}
