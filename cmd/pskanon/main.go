// Command pskanon anonymizes a CSV file to p-sensitive k-anonymity
// using full-domain generalization with suppression (the paper's
// Algorithm 3) and writes the masked microdata plus a report.
//
// Usage:
//
//	pskanon -in data.csv -job job.json -out masked.csv [-algorithm samarati]
//
// The job file (see internal/config) names the quasi-identifiers,
// confidential attributes, k, p, the suppression threshold, and the
// generalization hierarchy for every quasi-identifier.
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.Anon(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pskanon:", err)
		os.Exit(1)
	}
}
