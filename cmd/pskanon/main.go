// Command pskanon anonymizes a CSV file to p-sensitive k-anonymity
// using full-domain generalization with suppression (the paper's
// Algorithm 3) and writes the masked microdata plus a report.
//
// Usage:
//
//	pskanon -in data.csv -job job.json -out masked.csv [-algorithm samarati]
//	pskanon -in data.csv -job job.json -ldiv 2 -tclose 0.4 -out masked.csv
//
// The job file (see internal/config) names the quasi-identifiers,
// confidential attributes, k, p, the suppression threshold, and the
// generalization hierarchy for every quasi-identifier. The -ldiv,
// -tclose and -alpha flags conjoin extra properties onto the search
// target (distinct l-diversity, t-closeness, the (p, alpha) frequency
// cap), making every strategy look for the composite in one pass;
// pskanon exits with a non-zero status when no generalization
// satisfies the target within the suppression budget.
package main

import (
	"fmt"
	"os"

	"psk/internal/cli"
)

func main() {
	if err := cli.Anon(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pskanon:", err)
		os.Exit(1)
	}
}
