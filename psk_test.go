package psk

import (
	"strings"
	"testing"
)

// paperHierarchies builds the Figure 2/3 configuration through the
// public API.
func paperHierarchies(t *testing.T) *Hierarchies {
	t.Helper()
	zip, err := NewPrefixStepsHierarchy("ZipCode", 5, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewHierarchies(zip, NewFlatHierarchy("Sex", "Person"))
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

func figure3(t *testing.T) *Table {
	t.Helper()
	sch := MustSchema(
		Field{Name: "Sex", Type: String},
		Field{Name: "ZipCode", Type: String},
		Field{Name: "Illness", Type: String},
	)
	tbl, err := FromText(sch, [][]string{
		{"M", "41076", "Flu"}, {"F", "41099", "Cold"}, {"M", "41099", "Asthma"},
		{"M", "41076", "Cold"}, {"F", "43102", "Flu"}, {"M", "43102", "Asthma"},
		{"M", "43102", "Cold"}, {"F", "43103", "Flu"}, {"M", "48202", "Asthma"},
		{"M", "48201", "Flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func baseConfig(t *testing.T) Config {
	return Config{
		QuasiIdentifiers: []string{"Sex", "ZipCode"},
		Confidential:     []string{"Illness"},
		Hierarchies:      paperHierarchies(t),
		K:                3,
		P:                2,
		MaxSuppress:      4,
	}
}

func TestAnonymizeSamarati(t *testing.T) {
	tbl := figure3(t)
	cfg := baseConfig(t)
	res, err := Anonymize(tbl, cfg)
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if !res.Found {
		t.Fatal("no solution found")
	}
	ok, err := IsPSensitiveKAnonymous(res.Masked, cfg.QuasiIdentifiers, cfg.Confidential, cfg.P, cfg.K)
	if err != nil || !ok {
		t.Errorf("output not 2-sensitive 3-anonymous: %v", err)
	}
	if res.Suppressed > cfg.MaxSuppress {
		t.Errorf("suppressed %d > budget %d", res.Suppressed, cfg.MaxSuppress)
	}
}

func TestAnonymizeAlgorithmsAgreeOnHeight(t *testing.T) {
	tbl := figure3(t)
	cfg := baseConfig(t)
	heights := map[Algorithm]int{}
	for _, alg := range []Algorithm{AlgorithmSamarati, AlgorithmBottomUp, AlgorithmExhaustive} {
		c := cfg
		c.Algorithm = alg
		res, err := Anonymize(tbl, c)
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if !res.Found {
			t.Fatalf("alg %d found nothing", alg)
		}
		heights[alg] = res.Node.Height()
		if alg != AlgorithmSamarati && len(res.AllMinimal) == 0 {
			t.Errorf("alg %d returned no minimal set", alg)
		}
	}
	if heights[AlgorithmSamarati] != heights[AlgorithmBottomUp] {
		t.Errorf("heights differ: %v", heights)
	}
	// Exhaustive returns a p-k-minimal node, which may sit at a greater
	// height than the minimal *height* node (minimality is w.r.t. the
	// partial order, not height), but never below.
	if heights[AlgorithmExhaustive] < heights[AlgorithmSamarati] {
		t.Errorf("exhaustive found lower height than samarati: %v", heights)
	}
}

func TestAnonymizeUnknownAlgorithm(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Algorithm = Algorithm(99)
	if _, err := Anonymize(figure3(t), cfg); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPropertyChecks(t *testing.T) {
	tbl := figure3(t)
	qis := []string{"Sex", "ZipCode"}
	ok, err := IsKAnonymous(tbl, qis, 2)
	if err != nil || ok {
		t.Errorf("raw table should not be 2-anonymous: %v %v", ok, err)
	}
	s, err := Sensitivity(tbl, qis, []string{"Illness"})
	if err != nil || s != 1 {
		t.Errorf("sensitivity = %d, %v", s, err)
	}
	basic, err := CheckBasic(tbl, qis, []string{"Illness"}, 2, 2)
	if err != nil || basic {
		t.Errorf("CheckBasic = %v, %v", basic, err)
	}
	maxP, err := MaxP(tbl, []string{"Illness"})
	if err != nil || maxP != 3 {
		t.Errorf("MaxP = %d, %v", maxP, err)
	}
	mg, err := MaxGroups(tbl, []string{"Illness"}, 2)
	if err != nil || mg != 6 { // n=10, most frequent illness appears 4 times -> 6
		t.Errorf("MaxGroups = %d, %v", mg, err)
	}
	disc, err := AttributeDisclosures(tbl, qis, []string{"Illness"}, 2)
	if err != nil || disc == 0 {
		t.Errorf("AttributeDisclosures = %d, %v (singleton groups must disclose)", disc, err)
	}
}

func TestMondrianFacade(t *testing.T) {
	tbl := figure3(t)
	masked, err := Mondrian(tbl, []string{"Sex", "ZipCode"}, []string{"Illness"}, 3, 2)
	if err != nil {
		t.Fatalf("Mondrian: %v", err)
	}
	ok, err := IsPSensitiveKAnonymous(masked, []string{"Sex", "ZipCode"}, []string{"Illness"}, 2, 3)
	if err != nil || !ok {
		t.Errorf("Mondrian output fails property: %v", err)
	}
	if masked.NumRows() != tbl.NumRows() {
		t.Error("Mondrian dropped rows")
	}
}

func TestQueryFacade(t *testing.T) {
	tbl := figure3(t)
	out, err := Query(map[string]*Table{"T": tbl},
		"SELECT Sex, COUNT(*) AS n FROM T GROUP BY Sex ORDER BY n DESC")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	v, _ := out.Value(0, "Sex")
	if v.Str() != "M" {
		t.Errorf("top sex = %v", v)
	}
	if _, err := Query(nil, "SELECT * FROM Missing"); err == nil {
		t.Error("missing table accepted")
	}
}

func TestCSVRoundTripFacade(t *testing.T) {
	tbl := figure3(t)
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	sch := tbl.Schema()
	back, err := ReadCSV(strings.NewReader(sb.String()), &sch)
	if err != nil || back.NumRows() != tbl.NumRows() {
		t.Errorf("round trip: %v", err)
	}
	inferred, err := ReadCSV(strings.NewReader(sb.String()), nil)
	if err != nil || inferred.NumCols() != 3 {
		t.Errorf("inferred: %v", err)
	}
}

func TestIntruderFacade(t *testing.T) {
	mmSch := MustSchema(
		Field{Name: "Sex", Type: String},
		Field{Name: "Zip", Type: String},
		Field{Name: "Illness", Type: String},
	)
	mm, err := FromText(mmSch, [][]string{
		{"M", "41076", "Flu"}, {"M", "41076", "Flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	extSch := MustSchema(
		Field{Name: "Name", Type: String},
		Field{Name: "Sex", Type: String},
		Field{Name: "Zip", Type: String},
	)
	ext, err := FromText(extSch, [][]string{{"Bob", "M", "41076"}})
	if err != nil {
		t.Fatal(err)
	}
	in := &Intruder{External: ext, IDAttr: "Name", QIs: []string{"Sex", "Zip"}}
	links, err := in.Attack(mm, []string{"Illness"})
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	sum := SummarizeAttack(links)
	if sum.AttributeDisclosed != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestMeasureUtilityFacade(t *testing.T) {
	tbl := figure3(t)
	cfg := baseConfig(t)
	res, err := Anonymize(tbl, cfg)
	if err != nil || !res.Found {
		t.Fatalf("Anonymize: %v", err)
	}
	rep, err := MeasureUtility(tbl, res.Masked, cfg, res.Node)
	if err != nil {
		t.Fatalf("MeasureUtility: %v", err)
	}
	if rep.Precision < 0 || rep.Precision > 1 {
		t.Errorf("precision = %g", rep.Precision)
	}
	if rep.Discernibility <= 0 {
		t.Errorf("DM = %d", rep.Discernibility)
	}
	// Invalid config surfaces an error.
	bad := cfg
	bad.QuasiIdentifiers = []string{"Missing"}
	if _, err := MeasureUtility(tbl, res.Masked, bad, res.Node); err == nil {
		t.Error("bad config accepted")
	}
}

func TestHierarchyConstructors(t *testing.T) {
	if _, err := NewPrefixHierarchy("Z", 5, 2); err != nil {
		t.Errorf("NewPrefixHierarchy: %v", err)
	}
	if _, err := NewIntervalHierarchy("Age", []IntervalLevel{DecadeLevel("d", 0, 99, 10)}); err != nil {
		t.Errorf("NewIntervalHierarchy: %v", err)
	}
	tree, err := NewTreeHierarchy("M", map[string][]string{"a": {"x"}, "b": {"x"}})
	if err != nil || tree.Height() != 1 {
		t.Errorf("NewTreeHierarchy: %v", err)
	}
	parsed, err := ParseTreeHierarchy("R", "a;top\nb;top\n")
	if err != nil || parsed.Height() != 1 {
		t.Errorf("ParseTreeHierarchy: %v", err)
	}
	flat := NewFlatHierarchy("S", "")
	got, _ := flat.Generalize("x", 1)
	if got != Suppressed {
		t.Errorf("flat top = %q", got)
	}
}

func TestValuesAndBuilderFacade(t *testing.T) {
	sch := MustSchema(Field{Name: "A", Type: Int}, Field{Name: "B", Type: String})
	b, err := NewBuilder(sch)
	if err != nil {
		t.Fatal(err)
	}
	b.Append(IV(1), SV("x"))
	b.Append(FV(2.0), SV("y"))
	tbl, err := b.Build()
	if err != nil || tbl.NumRows() != 2 {
		t.Fatalf("build: %v", err)
	}
	rows := [][]Value{{IV(3), SV("z")}}
	tbl2, err := FromRows(sch, rows)
	if err != nil || tbl2.NumRows() != 1 {
		t.Fatalf("FromRows: %v", err)
	}
}

func TestGreedyClusterFacade(t *testing.T) {
	tbl := figure3(t)
	masked, err := GreedyCluster(tbl, []string{"Sex", "ZipCode"}, []string{"Illness"}, 3, 2)
	if err != nil {
		t.Fatalf("GreedyCluster: %v", err)
	}
	ok, err := IsPSensitiveKAnonymous(masked, []string{"Sex", "ZipCode"}, []string{"Illness"}, 2, 3)
	if err != nil || !ok {
		t.Errorf("cluster output fails property: %v", err)
	}
	if masked.NumRows() != tbl.NumRows() {
		t.Error("clustering dropped rows")
	}
}

func TestAllMinimalFacade(t *testing.T) {
	tbl := figure3(t)
	cfg := baseConfig(t)
	nodes, err := AllMinimal(tbl, cfg)
	if err != nil {
		t.Fatalf("AllMinimal: %v", err)
	}
	if len(nodes) == 0 {
		t.Fatal("no minimal nodes")
	}
	// Every reported node must actually satisfy the property.
	for _, n := range nodes {
		c := cfg
		c.Algorithm = AlgorithmSamarati
		res, err := Anonymize(tbl, c)
		if err != nil || !res.Found {
			t.Fatalf("anonymize: %v", err)
		}
		if n.Height() < res.Node.Height() {
			t.Errorf("minimal node %v below Samarati height %d", n, res.Node.Height())
		}
	}
}

func TestMeasureRiskFacade(t *testing.T) {
	tbl := figure3(t)
	m, err := MeasureRisk(tbl, []string{"Sex", "ZipCode"})
	if err != nil {
		t.Fatalf("MeasureRisk: %v", err)
	}
	if m.Records != 10 || m.UniqueRecords == 0 {
		t.Errorf("measures = %+v", m)
	}
	if m.SatisfiesThreshold(0.5) {
		t.Error("raw table has singletons; threshold must fail")
	}
}

func TestListViolationsFacade(t *testing.T) {
	tbl := figure3(t)
	vs, err := ListViolations(tbl, []string{"Sex", "ZipCode"}, []string{"Illness"}, 2, 2)
	if err != nil {
		t.Fatalf("ListViolations: %v", err)
	}
	if len(vs) == 0 {
		t.Error("raw table should violate")
	}
	ps, err := ProfileGroups(tbl, []string{"Sex", "ZipCode"}, []string{"Illness"})
	if err != nil || len(ps) == 0 {
		t.Errorf("ProfileGroups: %v", err)
	}
}

func TestExtendedFacade(t *testing.T) {
	sch := MustSchema(
		Field{Name: "Zip", Type: String},
		Field{Name: "Illness", Type: String},
	)
	tbl, err := FromText(sch, [][]string{
		{"41076", "Colon Cancer"}, {"41076", "Lung Cancer"}, {"41076", "Stomach Cancer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewTreeHierarchy("Illness", map[string][]string{
		"Colon Cancer":   {"Cancer"},
		"Lung Cancer":    {"Cancer"},
		"Stomach Cancer": {"Cancer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Plain 3-sensitivity holds; extended 2-sensitivity at the category
	// level must fail (similarity attack).
	plain, err := CheckBasic(tbl, []string{"Zip"}, []string{"Illness"}, 3, 3)
	if err != nil || !plain {
		t.Fatalf("plain = %v, %v", plain, err)
	}
	ext, err := CheckExtendedPSensitivity(tbl, []string{"Zip"}, "Illness", 2, 3,
		ExtendedConfig{Hierarchy: h, MaxLevel: 1})
	if err != nil || ext {
		t.Errorf("extended = %v, %v; want false", ext, err)
	}
}

func TestTableOpsFacade(t *testing.T) {
	tbl := figure3(t)
	dropped, err := tbl.Drop("Illness")
	if err != nil || dropped.NumCols() != 2 {
		t.Errorf("Drop: %v", err)
	}
	renamed, err := tbl.Rename("Illness", "Dx")
	if err != nil || !renamed.Schema().Has("Dx") {
		t.Errorf("Rename: %v", err)
	}
	both, err := tbl.Concat(tbl)
	if err != nil || both.NumRows() != 20 {
		t.Errorf("Concat: %v", err)
	}
}

func TestLocalSuppressFacade(t *testing.T) {
	tbl := figure3(t)
	cfg := baseConfig(t)
	masked, suppressed, err := LocalSuppress(tbl, cfg, Node{1, 1})
	if err != nil {
		t.Fatalf("LocalSuppress: %v", err)
	}
	if masked.NumRows() != tbl.NumRows() {
		t.Error("local suppression must not drop rows")
	}
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (the 482** pair)", suppressed)
	}
	bad := cfg
	bad.QuasiIdentifiers = []string{"Missing"}
	if _, _, err := LocalSuppress(tbl, bad, Node{1, 1}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestIncognitoFacade(t *testing.T) {
	tbl := figure3(t)
	cfg := baseConfig(t)
	res, err := AnonymizeIncognito(tbl, cfg)
	if err != nil {
		t.Fatalf("AnonymizeIncognito: %v", err)
	}
	if !res.Found || len(res.AllMinimal) == 0 {
		t.Fatal("no minimal nodes")
	}
	ok, err := IsPSensitiveKAnonymous(res.Masked, cfg.QuasiIdentifiers, cfg.Confidential, cfg.P, cfg.K)
	if err != nil || !ok {
		t.Errorf("output fails property: %v", err)
	}
	// Agreement with Samarati on minimal height.
	sam, err := Anonymize(tbl, cfg)
	if err != nil || !sam.Found {
		t.Fatal(err)
	}
	if res.Node.Height() != sam.Node.Height() {
		t.Errorf("incognito height %d != samarati %d", res.Node.Height(), sam.Node.Height())
	}
}

func TestAnatomizeFacade(t *testing.T) {
	tbl := figure3(t)
	rel, err := Anatomize(tbl, []string{"Sex", "ZipCode"}, "Illness", 2)
	if err != nil {
		t.Fatalf("Anatomize: %v", err)
	}
	if rel.QIT.NumRows() != tbl.NumRows() || rel.Groups == 0 {
		t.Errorf("release = %d rows, %d groups", rel.QIT.NumRows(), rel.Groups)
	}
	// Inspect the sensitive table with SQL: every group has >= 2
	// distinct values.
	out, err := Query(map[string]*Table{"ST": rel.ST},
		"SELECT GroupID, COUNT(DISTINCT Illness) AS d FROM ST GROUP BY GroupID HAVING COUNT(DISTINCT Illness) < 2")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.NumRows() != 0 {
		t.Errorf("%d groups below 2 distinct values", out.NumRows())
	}
}

func TestCheckPAlphaFacade(t *testing.T) {
	tbl := figure3(t)
	ok, err := CheckPAlpha(tbl, []string{"Sex"}, []string{"Illness"}, 2, 3, 1)
	if err != nil {
		t.Fatalf("CheckPAlpha: %v", err)
	}
	// Grouped only by Sex: M(7) has 3 illnesses, F(3) has 2 -> plain
	// 2-sensitive 3-anonymity holds at alpha = 1.
	if !ok {
		t.Error("alpha=1 should hold")
	}
	// A tight alpha bites: F group is {Cold, Flu x2} -> 2/3 dominance.
	ok, err = CheckPAlpha(tbl, []string{"Sex"}, []string{"Illness"}, 2, 3, 0.5)
	if err != nil || ok {
		t.Errorf("alpha=0.5 = %v, %v; want false", ok, err)
	}
}

func TestDiversityFacade(t *testing.T) {
	tbl := figure3(t)
	qis := []string{"Sex"}
	ok, err := IsDistinctLDiverse(tbl, qis, "Illness", 2)
	if err != nil || !ok {
		t.Errorf("distinct 2-diverse by Sex = %v, %v", ok, err)
	}
	ok, err = IsDistinctLDiverse(tbl, qis, "Illness", 4)
	if err != nil || ok {
		t.Errorf("distinct 4-diverse = %v, %v; want false", ok, err)
	}
	ok, err = IsEntropyLDiverse(tbl, qis, "Illness", 1)
	if err != nil || !ok {
		t.Errorf("entropy 1-diverse = %v, %v", ok, err)
	}
	d, err := TCloseness(tbl, qis, "Illness")
	if err != nil || d < 0 || d > 1 {
		t.Errorf("t-closeness = %g, %v", d, err)
	}
}
