package psk

import (
	"strings"
	"testing"
)

// TestSessionMatchesAnonymize: the streaming facade's first publication
// and its materialized release are identical to the one-shot batch API
// on the same table.
func TestSessionMatchesAnonymize(t *testing.T) {
	tbl := figure3(t)
	cfg := baseConfig(t)
	batch, err := Anonymize(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenSession(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Republish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != batch.Found || !res.Node.Equal(batch.Node) || res.Suppressed != batch.Suppressed {
		t.Fatalf("initial publish %+v, batch %+v", res, batch)
	}
	if !s.Published().Equal(batch.Node) {
		t.Fatalf("Published() = %v, want %v", s.Published(), batch.Node)
	}
	mm, suppressed, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != batch.Suppressed {
		t.Fatalf("Materialize suppressed %d, batch %d", suppressed, batch.Suppressed)
	}
	var got, want strings.Builder
	if err := mm.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if err := batch.Masked.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("materialized release differs from batch:\n%s\nvs\n%s", got.String(), want.String())
	}
}

// TestSessionAbsorbsDeltas: churn keeps the verdict correct — the
// release after append/retire batches still satisfies the property on
// the live rows.
func TestSessionAbsorbsDeltas(t *testing.T) {
	cfg := baseConfig(t)
	s, err := OpenSession(figure3(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Republish(); err != nil {
		t.Fatal(err)
	}
	// Row cells follow the session schema (Sex, ZipCode, Illness).
	if err := s.Apply([][]string{
		{"F", "41077", "Flu"},
		{"M", "41078", "Asthma"},
		{"F", "43104", "Cold"},
	}, []int{0, 4}); err != nil {
		t.Fatal(err)
	}
	if s.NumLive() != 11 || s.NumRows() != 13 {
		t.Fatalf("NumLive %d NumRows %d, want 11 / 13", s.NumLive(), s.NumRows())
	}
	res, err := s.Republish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("republish found nothing")
	}
	mm, _, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsPSensitiveKAnonymous(mm, cfg.QuasiIdentifiers, cfg.Confidential, cfg.P, cfg.K)
	if err != nil || !ok {
		t.Errorf("release after churn not %d-sensitive %d-anonymous: %v", cfg.P, cfg.K, err)
	}
}

func TestSessionErrors(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Algorithm = Algorithm(99)
	if _, err := OpenSession(figure3(t), cfg); err == nil {
		t.Error("unknown algorithm accepted")
	}
	cfg = baseConfig(t)
	s, err := OpenSession(figure3(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(nil, []int{99}); err == nil {
		t.Error("unknown retire id accepted")
	}
	if _, _, err := s.Materialize(); err == nil {
		t.Error("Materialize before any publication succeeded")
	}
}
