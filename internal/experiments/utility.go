package experiments

import (
	"fmt"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/generalize"
	"psk/internal/loss"
	"psk/internal/search"
	"psk/internal/table"
)

// E11: full-domain generalization versus Mondrian at equal (k, p) — the
// utility comparison DESIGN.md calls out as an extension study.

// UtilityRow compares the two paradigms for one (k, p).
type UtilityRow struct {
	K, P int
	// FullDomain metrics (Samarati's k-minimal node).
	FDFound          bool
	FDNode           string
	FDDiscernibility int
	FDAvgGroupRatio  float64
	FDPrecision      float64
	FDSuppressed     int
	// Mondrian metrics.
	MPartitions     int
	MDiscernibility int
	MAvgGroupRatio  float64
	MPSatisfied     bool
	// GreedyCluster metrics.
	CClusters       int
	CDiscernibility int
	CAvgGroupRatio  float64
	CPSatisfied     bool
}

// propertyHolds checks the target property on a masked table: plain
// k-anonymity when p = 1, the full p-sensitive check otherwise.
func propertyHolds(mm *table.Table, p, k int) (bool, error) {
	if p >= 2 {
		chk, err := core.Check(mm, dataset.QIs(), dataset.Confidential(), p, k)
		if err != nil {
			return false, err
		}
		return chk.Satisfied, nil
	}
	return core.IsKAnonymous(mm, dataset.QIs(), k)
}

// UtilityResult is the E11 study.
type UtilityResult struct {
	Size int
	Rows []UtilityRow
}

// RunUtility compares full-domain generalization (Samarati) with
// Mondrian partitioning on an Adult sample across k values, reporting
// discernibility, average group ratio and precision. Mondrian's
// multidimensional recoding should win on utility (lower DM, C_AVG
// closer to 1), which is the crossover the anonymization literature
// reports; the benches verify that shape.
func RunUtility(n int, ks []int, p int, source *table.Table, seed int64) (UtilityResult, error) {
	if len(ks) == 0 {
		ks = []int{2, 5, 10, 25}
	}
	src := source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return UtilityResult{}, err
		}
	}
	im, err := src.Sample(n, seed)
	if err != nil {
		return UtilityResult{}, err
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return UtilityResult{}, err
	}
	masker, err := generalize.NewMasker(dataset.QIs(), hs)
	if err != nil {
		return UtilityResult{}, err
	}

	res := UtilityResult{Size: n}
	for _, k := range ks {
		row := UtilityRow{K: k, P: p}

		sr, err := search.Samarati(im, search.Config{
			QIs:           dataset.QIs(),
			Confidential:  dataset.Confidential(),
			Hierarchies:   hs,
			K:             k,
			P:             p,
			MaxSuppress:   n / 50,
			UseConditions: true,
		})
		if err != nil {
			return UtilityResult{}, err
		}
		row.FDFound = sr.Found
		if sr.Found {
			row.FDNode = sr.Node.Label(dataset.LatticePrefixes())
			row.FDSuppressed = sr.Suppressed
			rep, err := loss.Measure(loss.Input{
				Initial: im, Masked: sr.Masked, QIs: dataset.QIs(),
				Node: sr.Node, Lattice: masker.Lattice(), K: k,
			})
			if err != nil {
				return UtilityResult{}, err
			}
			row.FDDiscernibility = rep.Discernibility
			row.FDAvgGroupRatio = rep.AvgGroupRatio
			row.FDPrecision = rep.Precision
		}

		mr, err := search.Mondrian(im, search.MondrianConfig{
			QIs:          dataset.QIs(),
			Confidential: dataset.Confidential(),
			K:            k,
			P:            p,
			Strict:       true,
		})
		if err != nil {
			return UtilityResult{}, err
		}
		row.MPartitions = mr.Partitions
		row.MDiscernibility, err = loss.Discernibility(mr.Masked, dataset.QIs(), im.NumRows())
		if err != nil {
			return UtilityResult{}, err
		}
		row.MAvgGroupRatio, err = loss.AvgGroupRatio(mr.Masked, dataset.QIs(), k)
		if err != nil {
			return UtilityResult{}, err
		}
		row.MPSatisfied, err = propertyHolds(mr.Masked, p, k)
		if err != nil {
			return UtilityResult{}, err
		}

		cr, err := search.GreedyCluster(im, search.ClusterConfig{
			QIs:          dataset.QIs(),
			Confidential: dataset.Confidential(),
			K:            k,
			P:            p,
		})
		if err != nil {
			return UtilityResult{}, err
		}
		row.CClusters = cr.Clusters
		row.CDiscernibility, err = loss.Discernibility(cr.Masked, dataset.QIs(), im.NumRows())
		if err != nil {
			return UtilityResult{}, err
		}
		row.CAvgGroupRatio, err = loss.AvgGroupRatio(cr.Masked, dataset.QIs(), k)
		if err != nil {
			return UtilityResult{}, err
		}
		row.CPSatisfied, err = propertyHolds(cr.Masked, p, k)
		if err != nil {
			return UtilityResult{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the utility comparison.
func (r UtilityResult) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		fd := "not found"
		if row.FDFound {
			fd = fmt.Sprintf("%s DM=%d C_AVG=%.2f Prec=%.3f supp=%d",
				row.FDNode, row.FDDiscernibility, row.FDAvgGroupRatio, row.FDPrecision, row.FDSuppressed)
		}
		rows[i] = []string{
			fmt.Sprintf("k=%d p=%d", row.K, row.P),
			fd,
			fmt.Sprintf("parts=%d DM=%d C_AVG=%.2f ok=%v",
				row.MPartitions, row.MDiscernibility, row.MAvgGroupRatio, row.MPSatisfied),
			fmt.Sprintf("clusters=%d DM=%d C_AVG=%.2f ok=%v",
				row.CClusters, row.CDiscernibility, row.CAvgGroupRatio, row.CPSatisfied),
		}
	}
	return fmt.Sprintf("Full-domain vs Mondrian vs GreedyCluster on Adult n=%d (E11):\n%s", r.Size,
		renderTable([]string{"Config", "Full-domain (Samarati)", "Mondrian", "GreedyCluster"}, rows))
}
