package experiments

import (
	"fmt"
	"strings"

	"psk/internal/core"
	"psk/internal/search"
	"psk/internal/table"
)

// E6: Table 4 — 3-minimal generalizations per suppression threshold.

// Table4Row is one TS entry of Table 4.
type Table4Row struct {
	TS    int
	Nodes []string
}

// Table4Result is the full Table 4.
type Table4Result struct {
	K    int
	Rows []Table4Row
}

// RunTable4 reproduces Table 4: for every suppression threshold TS from
// 0 to 10, the 3-minimal generalizations of the Figure 3 microdata.
func RunTable4() (Table4Result, error) {
	tbl, err := Figure3Data()
	if err != nil {
		return Table4Result{}, err
	}
	hs, err := Figure3Hierarchies()
	if err != nil {
		return Table4Result{}, err
	}
	res := Table4Result{K: 3}
	for ts := 0; ts <= tbl.NumRows(); ts++ {
		ex, err := search.Exhaustive(tbl, search.Config{
			QIs:           []string{"Sex", "ZipCode"},
			Hierarchies:   hs,
			K:             3,
			P:             1,
			MaxSuppress:   ts,
			UseConditions: true,
		})
		if err != nil {
			return Table4Result{}, err
		}
		row := Table4Row{TS: ts}
		for _, m := range ex.Minimal {
			row.Nodes = append(row.Nodes, m.Node.Label([]string{"S", "Z"}))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders Table 4.
func (r Table4Result) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{fmt.Sprint(row.TS), strings.Join(row.Nodes, " and ")}
	}
	return fmt.Sprintf("%d-minimal generalizations per suppression threshold (Table 4):\n%s",
		r.K, renderTable([]string{"TS", "Minimal nodes"}, rows))
}

// E7: Tables 5 and 6 — the frequency sets and maxGroups of Example 1.

// FrequencyRow is one confidential attribute's frequency data.
type FrequencyRow struct {
	Attribute  string
	Distinct   int
	Freq       []int
	Cumulative []int
}

// Example1Result reproduces Tables 5-6 and the maxGroups walk-through.
type Example1Result struct {
	N     int
	Rows  []FrequencyRow
	CFMax []int
	MaxP  int
	// MaxGroups[p] for p = 2..MaxP.
	MaxGroups map[int]int
}

// BuildExample1 constructs the synthetic 1000-tuple microdata of
// Example 1, with confidential attribute frequencies exactly as printed.
func BuildExample1() (*table.Table, error) {
	freqs := map[string][]int{
		"S1": {300, 300, 200, 100, 100},
		"S2": {500, 300, 100, 40, 35, 25},
		"S3": {700, 200, 50, 10, 10, 10, 10, 5, 3, 2},
	}
	expand := func(name string) []string {
		var out []string
		for i, f := range freqs[name] {
			for j := 0; j < f; j++ {
				out = append(out, fmt.Sprintf("%s-v%02d", name, i))
			}
		}
		return out
	}
	sch := table.MustSchema(
		table.Field{Name: "K1", Type: table.Int},
		table.Field{Name: "K2", Type: table.Int},
		table.Field{Name: "S1", Type: table.String},
		table.Field{Name: "S2", Type: table.String},
		table.Field{Name: "S3", Type: table.String},
	)
	s1, s2, s3 := expand("S1"), expand("S2"), expand("S3")
	b, err := table.NewBuilder(sch)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 1000; i++ {
		b.Append(table.IV(int64(i%10)), table.IV(int64(i%7)),
			table.SV(s1[i]), table.SV(s2[i]), table.SV(s3[i]))
	}
	return b.Build()
}

// RunExample1 computes the paper's Tables 5-6 values and the maximum
// allowed group counts for every feasible p.
func RunExample1() (Example1Result, error) {
	tbl, err := BuildExample1()
	if err != nil {
		return Example1Result{}, err
	}
	conf := []string{"S1", "S2", "S3"}
	res := Example1Result{N: tbl.NumRows(), MaxGroups: make(map[int]int)}
	for _, attr := range conf {
		f, err := core.FrequencySet(tbl, attr)
		if err != nil {
			return Example1Result{}, err
		}
		res.Rows = append(res.Rows, FrequencyRow{
			Attribute:  attr,
			Distinct:   len(f),
			Freq:       f,
			Cumulative: core.Cumulative(f),
		})
	}
	res.CFMax, err = core.CFMax(tbl, conf)
	if err != nil {
		return Example1Result{}, err
	}
	res.MaxP, err = core.MaxP(tbl, conf)
	if err != nil {
		return Example1Result{}, err
	}
	for p := 2; p <= res.MaxP; p++ {
		g, err := core.MaxGroups(tbl, conf, p)
		if err != nil {
			return Example1Result{}, err
		}
		res.MaxGroups[p] = g
	}
	return res, nil
}

// Format renders the frequency tables and bounds.
func (r Example1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Example 1 (n = %d):\n", r.N)
	var rows [][]string
	for _, fr := range r.Rows {
		rows = append(rows, []string{fr.Attribute, fmt.Sprint(fr.Distinct),
			intsToString(fr.Freq), intsToString(fr.Cumulative)})
	}
	b.WriteString(renderTable([]string{"Attr", "s_j", "f_i (Table 5)", "cf_i (Table 6)"}, rows))
	fmt.Fprintf(&b, "cf_i (max over attributes): %s\n", intsToString(r.CFMax))
	fmt.Fprintf(&b, "maxP = %d\n", r.MaxP)
	for p := 2; p <= r.MaxP; p++ {
		fmt.Fprintf(&b, "maxGroups(p=%d) = %d\n", p, r.MaxGroups[p])
	}
	return b.String()
}

func intsToString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, " ")
}
