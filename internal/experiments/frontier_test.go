package experiments

import (
	"strings"
	"testing"

	"psk/internal/dataset"
)

// TestRunFrontierShape: one small sweep — every configuration reports
// a row, frontiers under looser policies are non-empty, and the
// rendering carries the study's columns.
func TestRunFrontierShape(t *testing.T) {
	src, err := dataset.Generate(3000, 2006)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFrontier(600, src, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 600 || len(res.Rows) != 5 {
		t.Fatalf("size %d, %d rows", res.Size, len(res.Rows))
	}
	if res.Rows[0].Label != "k=2 p=1" || res.Rows[0].Members == 0 {
		t.Errorf("loosest config has empty frontier: %+v", res.Rows[0])
	}
	for _, row := range res.Rows {
		if row.Members > 0 && (row.BestDM == "-" || row.BestMargin == "-") {
			t.Errorf("%s: members %d but missing corners: %+v", row.Label, row.Members, row)
		}
		if row.Members == 0 && row.Nodes != "-" {
			t.Errorf("%s: empty frontier with nodes %q", row.Label, row.Nodes)
		}
	}
	out := res.Format()
	for _, want := range []string{"E19", "Members", "Best DM", "Best entropy", "Best margin"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
