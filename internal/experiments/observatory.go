package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"psk/internal/dataset"
	"psk/internal/obs"
	"psk/internal/search"
	"psk/internal/table"
)

// E20: the observatory study — what live visibility costs and what a
// scraper sees. The same Adult search runs three ways (bare, recorder
// attached, full observatory: recorder + sampler + HTTP server),
// pinning that the found node never changes and measuring each layer's
// wall-time overhead. A fixed live window then loops the search
// back-to-back under a running sampler and one real HTTP scrape of
// every endpoint, checking the /progress time series is monotone in
// cumulative nodes and the frozen final /metrics matches the report
// byte for byte. A cadence sweep over the same window shows requested
// vs achieved sampling intervals — on a loaded single-CPU box the
// scheduler floors the achievable cadence, and the sweep makes that
// floor visible instead of pretending the requested rate was met.

// liveWindow is how long the looped-search phases keep the search hot.
const liveWindow = 250 * time.Millisecond

// ObservatoryMode is one instrumentation level's measured run.
type ObservatoryMode struct {
	// Mode names the level: "off", "recorder", "observatory".
	Mode string
	// Node is the minimal node found (must agree across modes).
	Node string
	// NodesEvaluated is the search's node count (must agree too).
	NodesEvaluated int
	// WallNs is the fastest of the repetitions — the low-noise estimate
	// a micro-scale overhead comparison wants.
	WallNs int64
	// OverheadPct is WallNs relative to the "off" mode (0 for "off").
	OverheadPct float64
}

// ObservatoryLive is the looped-search live-scrape phase.
type ObservatoryLive struct {
	// WindowNs is the wall time the loop ran; Searches how many full
	// searches completed inside it.
	WindowNs int64
	Searches int
	// Samples is the time-series length the sampler accumulated.
	Samples int
	// Monotonic reports that cumulative node counts never decreased
	// across consecutive samples — the live-snapshot guarantee.
	Monotonic bool
	// FinalNodes is the last sample's cumulative node count.
	FinalNodes int64
	// ScrapeState is the /healthz state observed mid-window and
	// ScrapeSamples the /progress sample count at scrape time;
	// ScrapeFinalOK reports that the post-Finalize /metrics scrape
	// matched the frozen report byte for byte.
	ScrapeState   string
	ScrapeSamples int
	ScrapeFinalOK bool
}

// ObservatoryRate is one sampling-interval setting's yield over the
// same looped window.
type ObservatoryRate struct {
	// Interval is the requested sampler cadence.
	Interval time.Duration
	// Taken counts samples ever taken; Retained is the ring's window
	// (Taken > Retained shows the wraparound working).
	Taken, Retained int
	// AchievedNs is the mean observed spacing (window / taken) — the
	// cadence the scheduler actually delivered.
	AchievedNs int64
	// FinalNodes is the cumulative node count in the last retained
	// sample.
	FinalNodes int64
}

// ObservatoryResult is the E20 study.
type ObservatoryResult struct {
	Size, K, P int
	// Reps is how many times each mode ran (fastest wall time kept).
	Reps  int
	Modes []ObservatoryMode
	Live  ObservatoryLive
	Rates []ObservatoryRate
	// Identical reports that every mode found the same node with the
	// same node count — attaching the observatory changed no result.
	Identical bool
}

// RunObservatory measures the observability layers' overhead on the
// Adult Samarati search, exercises the live endpoints over real HTTP,
// and sweeps the sampler cadence.
func RunObservatory(n, k, p int, source *table.Table, seed int64) (ObservatoryResult, error) {
	src := source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return ObservatoryResult{}, err
		}
	}
	im, err := src.Sample(n, seed)
	if err != nil {
		return ObservatoryResult{}, err
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return ObservatoryResult{}, err
	}
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             k,
		P:             p,
		MaxSuppress:   n / 100,
		UseConditions: true,
	}
	prefixes := dataset.LatticePrefixes()
	run := func(cfg search.Config) (string, int, error) {
		r, err := search.Samarati(im, cfg)
		if err != nil {
			return "", 0, err
		}
		node := "-"
		if r.Found {
			node = r.Node.Label(prefixes)
		}
		return node, r.Stats.NodesEvaluated, nil
	}

	const reps = 5
	res := ObservatoryResult{Size: n, K: k, P: p, Reps: reps}

	// Overhead modes: one search per rep, fastest wall kept. The
	// observatory mode attaches the full stack (recorder, 1ms sampler,
	// live HTTP server) but nothing scrapes it — the cost of having the
	// endpoints up, separated from the cost of using them.
	measure := func(mode string, attach func(*search.Config) func()) (ObservatoryMode, error) {
		m := ObservatoryMode{Mode: mode}
		for i := 0; i < reps; i++ {
			cfg := base
			detach := attach(&cfg)
			t0 := time.Now()
			node, nodes, err := run(cfg)
			wall := time.Since(t0).Nanoseconds()
			if detach != nil {
				detach()
			}
			if err != nil {
				return m, err
			}
			m.Node, m.NodesEvaluated = node, nodes
			if m.WallNs == 0 || wall < m.WallNs {
				m.WallNs = wall
			}
		}
		return m, nil
	}
	off, err := measure("off", func(*search.Config) func() { return nil })
	if err != nil {
		return ObservatoryResult{}, err
	}
	recm, err := measure("recorder", func(cfg *search.Config) func() {
		cfg.Recorder = obs.NewRecorder()
		return nil
	})
	if err != nil {
		return ObservatoryResult{}, err
	}
	var srvErr error
	obsm, err := measure("observatory", func(cfg *search.Config) func() {
		rec := obs.NewRecorder()
		cfg.Recorder = rec
		sampler := obs.NewSampler(rec, time.Millisecond, 512)
		sampler.Start()
		srv, err := obs.NewServer("127.0.0.1:0", rec, sampler)
		if err != nil {
			srvErr = err
			sampler.Stop()
			return nil
		}
		return func() { sampler.Stop(); srv.Close() }
	})
	if err == nil {
		err = srvErr
	}
	if err != nil {
		return ObservatoryResult{}, err
	}
	res.Modes = []ObservatoryMode{off, recm, obsm}
	for i := range res.Modes {
		m := &res.Modes[i]
		if off.WallNs > 0 && m.Mode != "off" {
			m.OverheadPct = 100 * (float64(m.WallNs)/float64(off.WallNs) - 1)
		}
	}
	res.Identical = off.Node == recm.Node && off.Node == obsm.Node &&
		off.NodesEvaluated == recm.NodesEvaluated &&
		off.NodesEvaluated == obsm.NodesEvaluated

	// Live window: loop the search under one recorder + 10ms sampler +
	// server for liveWindow, scraping the endpoints mid-flight.
	live, err := runLiveWindow(base, run)
	if err != nil {
		return ObservatoryResult{}, err
	}
	res.Live = live

	// Cadence sweep: same looped window per interval, small ring so the
	// fastest cadence demonstrates wraparound (taken > retained).
	for _, iv := range []time.Duration{
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	} {
		rec := obs.NewRecorder()
		cfg := base
		cfg.Recorder = rec
		sampler := obs.NewSampler(rec, iv, 8)
		sampler.Start()
		t0 := time.Now()
		for time.Since(t0) < liveWindow {
			if _, _, err := run(cfg); err != nil {
				sampler.Stop()
				return ObservatoryResult{}, err
			}
		}
		window := time.Since(t0).Nanoseconds()
		sampler.Stop()
		samples := sampler.Samples()
		rate := ObservatoryRate{
			Interval: iv,
			Taken:    sampler.Total(),
			Retained: len(samples),
		}
		if rate.Taken > 0 {
			rate.AchievedNs = window / int64(rate.Taken)
		}
		if len(samples) > 0 {
			rate.FinalNodes = samples[len(samples)-1].Nodes
		}
		res.Rates = append(res.Rates, rate)
	}
	return res, nil
}

// runLiveWindow loops the search under the full observatory for
// liveWindow, scrapes /healthz and /progress over real HTTP mid-window,
// and after freezing the final report verifies the /metrics scrape
// matches it byte for byte.
func runLiveWindow(base search.Config, run func(search.Config) (string, int, error)) (ObservatoryLive, error) {
	var live ObservatoryLive
	rec := obs.NewRecorder()
	cfg := base
	cfg.Recorder = rec
	sampler := obs.NewSampler(rec, 10*time.Millisecond, 512)
	sampler.Start()
	defer sampler.Stop()
	srv, err := obs.NewServer("127.0.0.1:0", rec, sampler)
	if err != nil {
		return live, err
	}
	defer srv.Close()

	get := func(path string) ([]byte, error) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("observatory: GET %s: %s", path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}

	t0 := time.Now()
	for time.Since(t0) < liveWindow {
		if _, _, err := run(cfg); err != nil {
			return live, err
		}
		live.Searches++
		if live.ScrapeState == "" {
			// One honest mid-window scrape: the server must answer while
			// the loop is still hot.
			var health struct {
				State string `json:"state"`
			}
			b, err := get("/healthz")
			if err != nil {
				return live, err
			}
			if err := json.Unmarshal(b, &health); err != nil {
				return live, err
			}
			live.ScrapeState = health.State
			var prog struct {
				SamplesTaken int `json:"samples_taken"`
			}
			if b, err = get("/progress"); err != nil {
				return live, err
			}
			if err := json.Unmarshal(b, &prog); err != nil {
				return live, err
			}
			live.ScrapeSamples = prog.SamplesTaken
		}
	}
	live.WindowNs = time.Since(t0).Nanoseconds()

	sampler.Poll() // one final sample at the completed totals
	samples := sampler.Samples()
	live.Samples = len(samples)
	live.Monotonic = true
	var prev int64 = -1
	for _, s := range samples {
		if s.Nodes < prev {
			live.Monotonic = false
		}
		prev = s.Nodes
	}
	if len(samples) > 0 {
		live.FinalNodes = samples[len(samples)-1].Nodes
	}

	// Freeze the final report and confirm a scrape returns its exact
	// bytes (the guarantee the CLI's -obs-linger exposes to pollers).
	rep := rec.Snapshot()
	srv.Finalize(rep)
	want, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return live, err
	}
	got, err := get("/metrics")
	if err != nil {
		return live, err
	}
	// The server's encoder appends a trailing newline MarshalIndent
	// doesn't; normalize before comparing.
	live.ScrapeFinalOK = string(got) == string(want)+"\n"
	return live, nil
}

// Format renders the overhead table, the live-window verdicts and the
// cadence sweep.
func (r ObservatoryResult) Format() string {
	rows := make([][]string, len(r.Modes))
	for i, m := range r.Modes {
		overhead := "-"
		if m.Mode != "off" {
			overhead = fmt.Sprintf("%+.1f%%", m.OverheadPct)
		}
		rows[i] = []string{
			m.Mode, m.Node, fmt.Sprint(m.NodesEvaluated),
			fmt.Sprintf("%.2f", float64(m.WallNs)/1e6), overhead,
		}
	}
	out := fmt.Sprintf("Live observatory on Adult n=%d (%d-sensitive %d-anonymity, best of %d, E20):\n%s",
		r.Size, r.P, r.K, r.Reps,
		renderTable([]string{"Mode", "node", "evaluated", "wall ms", "overhead"}, rows))
	verdict := "IDENTICAL"
	if !r.Identical {
		verdict = "DIVERGED"
	}
	out += fmt.Sprintf("results across modes: %s\n", verdict)

	mono := "MONOTONE"
	if !r.Live.Monotonic {
		mono = "NON-MONOTONE"
	}
	finalScrape := "MATCH"
	if !r.Live.ScrapeFinalOK {
		finalScrape = "MISMATCH"
	}
	out += fmt.Sprintf("\nLive window (%.0fms, %d searches, %d samples, %s, final nodes %d):\n",
		float64(r.Live.WindowNs)/1e6, r.Live.Searches, r.Live.Samples, mono, r.Live.FinalNodes)
	out += fmt.Sprintf("  mid-window scrape: /healthz state=%q, /progress samples=%d\n",
		r.Live.ScrapeState, r.Live.ScrapeSamples)
	out += fmt.Sprintf("  final /metrics vs frozen report: %s\n", finalScrape)

	rates := make([][]string, len(r.Rates))
	for i, rt := range r.Rates {
		rates[i] = []string{
			rt.Interval.String(), fmt.Sprint(rt.Taken), fmt.Sprint(rt.Retained),
			fmt.Sprintf("%.1fms", float64(rt.AchievedNs)/1e6),
			fmt.Sprint(rt.FinalNodes),
		}
	}
	out += "\nSampler cadence sweep (ring capacity 8, same window):\n" +
		renderTable([]string{"Interval", "taken", "retained", "achieved", "final nodes"}, rates)
	return out
}
