package experiments

import (
	"fmt"
	"sort"
	"strings"

	"psk/internal/core"
	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/risk"
	"psk/internal/table"
)

// E1: the Section 2 motivating attack (Tables 1 and 2).

// AttackResult is the outcome of re-running the paper's intruder
// example.
type AttackResult struct {
	// KAnonymous confirms Table 1 is 2-anonymous.
	KAnonymous bool
	// Summary aggregates the linkage attack.
	Summary risk.Summary
	// Learned maps individual -> confidential facts gleaned.
	Learned map[string]map[string]string
}

// RunMotivatingAttack reproduces the paper's Section 2 narrative: Table
// 1 is 2-anonymous (no identity disclosure) yet the intruder holding
// Table 2 learns that both Sam and Eric have Diabetes (attribute
// disclosure).
func RunMotivatingAttack() (AttackResult, error) {
	mm, err := Table1()
	if err != nil {
		return AttackResult{}, err
	}
	ext, err := Table2()
	if err != nil {
		return AttackResult{}, err
	}
	var res AttackResult
	res.KAnonymous, err = core.IsKAnonymous(mm, []string{"Age", "ZipCode", "Sex"}, 2)
	if err != nil {
		return AttackResult{}, err
	}

	// The intruder knows Age was generalized to multiples of 10.
	var decade hierarchy.IntervalLevel
	for c := int64(10); c <= 90; c += 10 {
		decade.Cuts = append(decade.Cuts, c)
	}
	for c := int64(0); c <= 90; c += 10 {
		decade.Labels = append(decade.Labels, fmt.Sprint(c))
	}
	age, err := hierarchy.NewInterval("Age", []hierarchy.IntervalLevel{decade})
	if err != nil {
		return AttackResult{}, err
	}
	zip, err := hierarchy.NewPrefix("ZipCode", 5, 1)
	if err != nil {
		return AttackResult{}, err
	}
	hs, err := hierarchy.NewSet(age, zip, hierarchy.NewFlat("Sex"))
	if err != nil {
		return AttackResult{}, err
	}

	in := &risk.Intruder{
		External:    ext,
		IDAttr:      "Name",
		QIs:         []string{"Age", "ZipCode", "Sex"},
		Hierarchies: hs,
		Node:        lattice.Node{1, 0, 0},
	}
	links, err := in.Attack(mm, []string{"Illness"})
	if err != nil {
		return AttackResult{}, err
	}
	res.Summary = risk.Summarize(links)
	res.Learned = make(map[string]map[string]string)
	for _, l := range links {
		if len(l.Learned) > 0 {
			res.Learned[l.ID] = l.Learned
		}
	}
	return res, nil
}

// Format renders the attack result.
func (r AttackResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 is 2-anonymous: %v\n", r.KAnonymous)
	fmt.Fprintf(&b, "Individuals attacked: %d, linked: %d, uniquely identified: %d\n",
		r.Summary.Individuals, r.Summary.Linked, r.Summary.UniquelyIdentified)
	fmt.Fprintf(&b, "Attribute disclosures (despite k-anonymity): %d\n", r.Summary.AttributeDisclosed)
	names := make([]string, 0, len(r.Learned))
	for n := range r.Learned {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for attr, v := range r.Learned[n] {
			fmt.Fprintf(&b, "  intruder learns: %s has %s = %s\n", n, attr, v)
		}
	}
	return b.String()
}

// E2: Table 3's p-sensitivity analysis.

// SensitivityResult is the outcome of the Table 3 demonstration.
type SensitivityResult struct {
	// KAnonymity is the k the masked microdata satisfies (3).
	KAnonymity int
	// Sensitivity is the p it satisfies (1 for Table 3 as printed).
	Sensitivity int
	// FixedSensitivity is the p after the paper's suggested one-value
	// edit (2).
	FixedSensitivity int
}

// RunTable3Sensitivity reproduces the Table 3 walk-through: the data is
// 3-anonymous but only 1-sensitive; changing the first tuple's income
// to 40,000 makes it 2-sensitive.
func RunTable3Sensitivity() (SensitivityResult, error) {
	tbl, err := Table3()
	if err != nil {
		return SensitivityResult{}, err
	}
	qis := []string{"Age", "ZipCode", "Sex"}
	conf := []string{"Illness", "Income"}
	var res SensitivityResult
	res.KAnonymity, err = core.MinGroupSize(tbl, qis)
	if err != nil {
		return SensitivityResult{}, err
	}
	res.Sensitivity, err = core.Sensitivity(tbl, qis, conf)
	if err != nil {
		return SensitivityResult{}, err
	}

	// Apply the paper's edit: first tuple income 50,000 -> 40,000.
	b, err := table.NewBuilder(tbl.Schema())
	if err != nil {
		return SensitivityResult{}, err
	}
	for r := 0; r < tbl.NumRows(); r++ {
		rowVals, err := tbl.Row(r)
		if err != nil {
			return SensitivityResult{}, err
		}
		if r == 0 {
			rowVals[4] = table.IV(40000)
		}
		b.Append(rowVals...)
	}
	fixed, err := b.Build()
	if err != nil {
		return SensitivityResult{}, err
	}
	res.FixedSensitivity, err = core.Sensitivity(fixed, qis, conf)
	if err != nil {
		return SensitivityResult{}, err
	}
	return res, nil
}

// Format renders the sensitivity result.
func (r SensitivityResult) Format() string {
	return fmt.Sprintf(
		"Table 3 satisfies %d-anonymity and %d-sensitive %d-anonymity.\n"+
			"After the paper's one-value edit it satisfies %d-sensitive %d-anonymity.\n",
		r.KAnonymity, r.Sensitivity, r.KAnonymity, r.FixedSensitivity, r.KAnonymity)
}
