package experiments

import (
	"fmt"

	"psk/internal/dataset"
	"psk/internal/obs"
	"psk/internal/search"
	"psk/internal/table"
)

// E17: the telemetry replay — the Adult search of the earlier
// experiments re-run with the observability layer attached, comparing
// what each strategy's instrumentation reports: how hard the necessary
// conditions prune, how well the generalized-column cache serves, how
// often the roll-up store saves a row scan, and where the wall time
// goes phase by phase.

// TelemetryRow is one strategy's recorded search.
type TelemetryRow struct {
	Strategy string
	// Node is the found minimal node ("-" when nothing satisfies).
	Node string
	// Report is the strategy's full telemetry snapshot.
	Report *obs.Report
	// NodesEvaluated is the search's own Stats counter, pinned equal to
	// the report's verdict total by the determinism tests.
	NodesEvaluated int
}

// TelemetryResult is the E17 study.
type TelemetryResult struct {
	Size, K, P int
	Rows       []TelemetryRow
	// TraceEvents counts JSONL events emitted across every run (-1 when
	// no tracer was attached); with serial evaluation it must equal
	// TotalNodes, which the pskexp acceptance check reads off the
	// emitted trace file.
	TraceEvents int64
	// TotalNodes sums NodesEvaluated over all strategies.
	TotalNodes int64
}

// Reports keys each strategy's snapshot by name (the -metrics-json
// payload of pskexp -exp telemetry).
func (r TelemetryResult) Reports() map[string]*obs.Report {
	out := make(map[string]*obs.Report, len(r.Rows))
	for _, row := range r.Rows {
		out[row.Strategy] = row.Report
	}
	return out
}

// RunTelemetry replays the Adult search under every lattice strategy
// with a fresh Recorder each, optionally streaming all node
// evaluations to one shared tracer. Evaluation stays serial so the
// trace's event count is exactly the evaluated-node total.
func RunTelemetry(n, k, p int, source *table.Table, seed int64, tracer *obs.Tracer) (TelemetryResult, error) {
	src := source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return TelemetryResult{}, err
		}
	}
	im, err := src.Sample(n, seed)
	if err != nil {
		return TelemetryResult{}, err
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return TelemetryResult{}, err
	}
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             k,
		P:             p,
		MaxSuppress:   n / 100,
		UseConditions: true,
		Tracer:        tracer,
	}

	prefixes := dataset.LatticePrefixes()
	type strategy struct {
		name string
		run  func(search.Config) (string, search.Stats, *obs.Report, error)
	}
	strategies := []strategy{
		{"Samarati", func(cfg search.Config) (string, search.Stats, *obs.Report, error) {
			r, err := search.Samarati(im, cfg)
			if err != nil || !r.Found {
				return "-", r.Stats, r.Report, err
			}
			return r.Node.Label(prefixes), r.Stats, r.Report, nil
		}},
		{"BottomUp", func(cfg search.Config) (string, search.Stats, *obs.Report, error) {
			r, err := search.BottomUp(im, cfg)
			if err != nil || len(r.Minimal) == 0 {
				return "-", r.Stats, r.Report, err
			}
			return r.Minimal[0].Node.Label(prefixes), r.Stats, r.Report, nil
		}},
		{"AllMinimal", func(cfg search.Config) (string, search.Stats, *obs.Report, error) {
			r, err := search.AllMinimal(im, cfg)
			if err != nil || len(r.Minimal) == 0 {
				return "-", r.Stats, r.Report, err
			}
			return r.Minimal[0].Node.Label(prefixes), r.Stats, r.Report, nil
		}},
		{"Incognito", func(cfg search.Config) (string, search.Stats, *obs.Report, error) {
			r, err := search.Incognito(im, cfg)
			if err != nil || len(r.Minimal) == 0 {
				return "-", r.Stats, r.Report, err
			}
			return r.Minimal[0].Node.Label(prefixes), r.Stats, r.Report, nil
		}},
	}

	res := TelemetryResult{Size: n, K: k, P: p, TraceEvents: -1}
	for _, s := range strategies {
		cfg := base
		cfg.Recorder = obs.NewRecorder()
		node, stats, report, err := s.run(cfg)
		if err != nil {
			return TelemetryResult{}, err
		}
		res.Rows = append(res.Rows, TelemetryRow{
			Strategy: s.name, Node: node, Report: report,
			NodesEvaluated: stats.NodesEvaluated,
		})
		res.TotalNodes += int64(stats.NodesEvaluated)
	}
	if tracer != nil {
		res.TraceEvents = tracer.Events()
	}
	return res, nil
}

// phaseNs extracts one phase's total from a report (0 when absent).
func phaseNs(rep *obs.Report, phase obs.Phase) int64 {
	for _, p := range rep.Phases {
		if p.Phase == phase.String() {
			return p.TotalNs
		}
	}
	return 0
}

// Format renders the prune-rate, cache-efficiency and phase-time
// tables.
func (r TelemetryResult) Format() string {
	rows := make([][]string, len(r.Rows))
	phases := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rep := row.Report
		rows[i] = []string{
			row.Strategy, row.Node,
			fmt.Sprint(rep.Nodes.Evaluated),
			fmt.Sprintf("%.1f%%", 100*rep.Nodes.PruneRate()),
			fmt.Sprintf("%.1f%%", 100*rep.Cache.HitRate()),
			fmt.Sprint(rep.Rollup.Merges),
			fmt.Sprint(rep.Rollup.RowScans),
			fmt.Sprint(rep.SuppressedRows),
		}
		phases[i] = []string{
			row.Strategy,
			fmt.Sprintf("%.2f", float64(phaseNs(rep, obs.PhaseGroupBy))/1e6),
			fmt.Sprintf("%.2f", float64(phaseNs(rep, obs.PhaseRollup))/1e6),
			fmt.Sprintf("%.2f", float64(phaseNs(rep, obs.PhaseSuppress))/1e6),
			fmt.Sprintf("%.2f", float64(phaseNs(rep, obs.PhasePolicy))/1e6),
			fmt.Sprintf("%.2f", float64(phaseNs(rep, obs.PhaseMaterialize))/1e6),
		}
	}
	out := fmt.Sprintf("Telemetry replay on Adult n=%d (%d-sensitive %d-anonymity, E17):\n%s",
		r.Size, r.P, r.K,
		renderTable([]string{"Strategy", "node", "evaluated", "prune rate", "cache hits", "rollup merges", "row scans", "suppressed"}, rows))
	out += "\nPhase wall time (ms):\n" +
		renderTable([]string{"Strategy", "group-by", "rollup", "suppress", "policy", "materialize"}, phases)
	if r.TraceEvents >= 0 {
		verdict := "MATCH"
		if r.TraceEvents != r.TotalNodes {
			verdict = "MISMATCH"
		}
		out += fmt.Sprintf("\ntrace events: %d, nodes evaluated: %d (%s)\n", r.TraceEvents, r.TotalNodes, verdict)
	}
	return out
}
