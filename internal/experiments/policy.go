package experiments

import (
	"fmt"
	"strings"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/search"
	"psk/internal/table"
)

// E16: the composite-policy search — one pass of the lattice engine
// targeting a conjunction of properties instead of the paper's single
// p-sensitive k-anonymity check.

// PolicyRow is one strategy's comparison between the legacy
// single-property search and the equivalent composite policy, plus a
// strictly stronger composite.
type PolicyRow struct {
	Strategy string
	// LegacyNode / CompositeNode are the minimal nodes of the built-in
	// p-sensitive k-anonymity search and of the equivalent composite
	// policy (p-sensitivity AND distinct l-diversity with l = p); they
	// must agree, and Identical confirms the masked microdata are
	// byte-identical row for row.
	LegacyNode, CompositeNode string
	Identical                 bool
	// StrictNode is the minimal node once 0.5-closeness on the first
	// confidential attribute is conjoined on top — the search the legacy
	// path cannot express in one pass ("-" when nothing satisfies it).
	StrictNode string
	// StrictScans counts the composite search's detailed group scans.
	StrictScans int
}

// PolicyResult is the E16 study.
type PolicyResult struct {
	Size, K, P int
	Rows       []PolicyRow
}

// RunPolicyComposite drives the policy layer end to end on one Adult
// sample: for Samarati and Incognito it (1) searches with the built-in
// p-sensitive k-anonymity parameters, (2) searches with the equivalent
// composite policy and verifies the masked tables coincide, and (3)
// searches a strictly stronger conjunction (adding 0.5-closeness) the
// single-property path cannot express.
func RunPolicyComposite(n, k, p int, source *table.Table, seed int64) (PolicyResult, error) {
	src := source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return PolicyResult{}, err
		}
	}
	im, err := src.Sample(n, seed)
	if err != nil {
		return PolicyResult{}, err
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return PolicyResult{}, err
	}
	conf := dataset.Confidential()
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  conf,
		Hierarchies:   hs,
		K:             k,
		P:             p,
		MaxSuppress:   n / 100,
		UseConditions: true,
	}
	// Distinct l-diversity at l = p on a confidential attribute is
	// implied by p-sensitivity, so this conjunction has exactly the
	// legacy property's solutions.
	equivalent := core.All(
		core.PSensitiveKAnonymityPolicy{P: p, K: k},
		core.DistinctLDiversityPolicy{Attr: conf[0], L: p},
	)
	strict := core.All(
		core.PSensitiveKAnonymityPolicy{P: p, K: k},
		core.TClosenessPolicy{Attr: conf[0], T: 0.5},
	)

	res := PolicyResult{Size: n, K: k, P: p}
	type strategy struct {
		name string
		run  func(search.Config) (found bool, node string, masked *table.Table, stats search.Stats, err error)
	}
	strategies := []strategy{
		{"Samarati", func(cfg search.Config) (bool, string, *table.Table, search.Stats, error) {
			r, err := search.Samarati(im, cfg)
			if err != nil || !r.Found {
				return false, "-", nil, r.Stats, err
			}
			return true, r.Node.Label(dataset.LatticePrefixes()), r.Masked, r.Stats, nil
		}},
		{"Incognito", func(cfg search.Config) (bool, string, *table.Table, search.Stats, error) {
			r, err := search.Incognito(im, cfg)
			if err != nil || len(r.Minimal) == 0 {
				return false, "-", nil, r.Stats, err
			}
			first := r.Minimal[0]
			return true, first.Node.Label(dataset.LatticePrefixes()), first.Masked, r.Stats, nil
		}},
	}
	for _, s := range strategies {
		_, legacyNode, legacyMasked, _, err := s.run(base)
		if err != nil {
			return PolicyResult{}, err
		}

		cfg := base
		cfg.Policy = equivalent
		_, compNode, compMasked, _, err := s.run(cfg)
		if err != nil {
			return PolicyResult{}, err
		}
		identical := legacyNode == compNode && csvString(legacyMasked) == csvString(compMasked)

		cfg.Policy = strict
		_, strictNode, _, strictStats, err := s.run(cfg)
		if err != nil {
			return PolicyResult{}, err
		}

		res.Rows = append(res.Rows, PolicyRow{
			Strategy:   s.name,
			LegacyNode: legacyNode, CompositeNode: compNode, Identical: identical,
			StrictNode:  strictNode,
			StrictScans: strictStats.GroupScans,
		})
	}
	return res, nil
}

// csvString renders a masked table for byte-level comparison.
func csvString(t *table.Table) string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	if err := t.WriteCSV(&sb); err != nil {
		return "error: " + err.Error()
	}
	return sb.String()
}

// Format renders the comparison.
func (r PolicyResult) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Strategy, row.LegacyNode, row.CompositeNode,
			fmt.Sprint(row.Identical), row.StrictNode, fmt.Sprint(row.StrictScans),
		}
	}
	return fmt.Sprintf("Composite-policy search on Adult n=%d (%d-sensitive %d-anonymity, E16):\n%s",
		r.Size, r.P, r.K,
		renderTable([]string{"Strategy", "legacy node", "composite node", "identical masked", "+0.5-close node", "scans"}, rows))
}
