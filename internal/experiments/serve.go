package experiments

import (
	"fmt"
	"strings"

	"psk/internal/serve/loadtest"
)

// E21: the service study — anonymization-as-a-service under
// multi-tenant load. Two scenarios run against a fresh in-process
// pskserve over real HTTP:
//
//   - dedup: hundreds of concurrent tenants submit a small mix of
//     distinct jobs over one dataset; the harness verifies the
//     single-flight invariant (at most one underlying search per
//     distinct content key) and that every tenant of a variant reads
//     byte-identical results.
//   - backpressure: the same mix against a one-worker, tiny-queue
//     server; the harness counts 429 rejections and verifies the
//     accepted subset still satisfies both invariants.
//
// The numbers that matter are not latencies (scheduling noise) but the
// counter identities: searches <= variants, accepted + rejected =
// submitted, results consistent at every interleaving.
type ServeResult struct {
	// Dedup is the wide-queue scenario; Backpressure the tiny-queue one.
	Dedup        *loadtest.Report
	Backpressure *loadtest.Report
}

// RunServe executes the E21 service load study.
func RunServe() (*ServeResult, error) {
	dedup, err := loadtest.Run(loadtest.Config{
		Tenants: 200, Requests: 3, Variants: 4, Rows: 240, Workers: 4,
	})
	if err != nil {
		return nil, fmt.Errorf("dedup scenario: %w", err)
	}
	// One worker, a queue smaller than the burst, and per-request
	// distinct configs (coalesced requests never occupy queue slots, so
	// backpressure only bites on distinct keys). The report records how
	// often 429 fired; the invariants must hold either way.
	back, err := loadtest.Run(loadtest.Config{
		Tenants: 64, Requests: 2, Distinct: true, Rows: 240, Queue: 8, Workers: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("backpressure scenario: %w", err)
	}
	return &ServeResult{Dedup: dedup, Backpressure: back}, nil
}

// Format renders the result for the experiment harness.
func (r *ServeResult) Format() string {
	var b strings.Builder
	b.WriteString("-- dedup: wide queue, 4 workers --\n")
	b.WriteString(r.Dedup.Format())
	b.WriteString("\n-- backpressure: queue=8, 1 worker --\n")
	b.WriteString(r.Backpressure.Format())
	ok := r.Dedup.SingleFlight && r.Dedup.ResultsConsistent &&
		r.Backpressure.SingleFlight && r.Backpressure.ResultsConsistent
	fmt.Fprintf(&b, "\ninvariants (single-flight, result consistency): %v\n", ok)
	return b.String()
}
