package experiments

import (
	"fmt"
	"time"

	"psk/internal/dataset"
	"psk/internal/search"
	"psk/internal/table"
)

// E18: graceful degradation under budgets — the Adult search run under
// a ladder of node budgets, showing how the result set grows from an
// empty partial toward the full minimal set as the budget admits more
// of the lattice, with every stop tagged by its StopReason. A deadline
// and node budget from the pskexp flags add one extra row each, so a
// user can probe "what does my time budget buy" on their own data.

// BudgetRow is one bounded search of the ladder.
type BudgetRow struct {
	// Strategy names the search strategy.
	Strategy string
	// MaxNodes / Deadline are the limits in force (zero = unlimited).
	MaxNodes int64
	Deadline time.Duration
	// StopReason is why the search ended.
	StopReason search.StopReason
	// Evaluated is the node-evaluation count actually spent.
	Evaluated int
	// Minimal is the number of minimal nodes in the (partial) answer,
	// and Node the label of the first (or "-").
	Minimal int
	Node    string
}

// BudgetResult is the E18 study.
type BudgetResult struct {
	Size, K, P int
	// LatticeSize is the full lattice's node count, the ladder's ceiling.
	LatticeSize int
	Rows        []BudgetRow
}

// RunBudget runs the ladder on an Adult sample. deadline and maxNodes
// come from the pskexp -timeout / -max-nodes flags; either being
// nonzero appends a row bounded by exactly that flag.
func RunBudget(n, k, p int, source *table.Table, seed int64, deadline time.Duration, maxNodes int64) (BudgetResult, error) {
	src := source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return BudgetResult{}, err
		}
	}
	im, err := src.Sample(n, seed)
	if err != nil {
		return BudgetResult{}, err
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return BudgetResult{}, err
	}
	base := search.Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             k,
		P:             p,
		MaxSuppress:   n / 100,
		UseConditions: true,
	}
	heights, err := hs.Heights(base.QIs)
	if err != nil {
		return BudgetResult{}, err
	}
	latticeSize := 1
	for _, h := range heights {
		latticeSize *= h + 1
	}

	res := BudgetResult{Size: n, K: k, P: p, LatticeSize: latticeSize}
	prefixes := dataset.LatticePrefixes()
	run := func(strategy string, budget search.Budget) error {
		cfg := base
		cfg.Budget = budget
		var (
			stats   search.Stats
			reason  search.StopReason
			minimal []search.MinimalNode
		)
		switch strategy {
		case "Exhaustive":
			r, err := search.Exhaustive(im, cfg)
			if err != nil {
				return err
			}
			stats, reason, minimal = r.Stats, r.StopReason, r.Minimal
		case "Samarati":
			r, err := search.Samarati(im, cfg)
			if err != nil {
				return err
			}
			stats, reason = r.Stats, r.StopReason
			if r.Found {
				minimal = []search.MinimalNode{{Node: r.Node, Suppressed: r.Suppressed}}
			}
		default:
			return fmt.Errorf("experiments: unknown budget strategy %q", strategy)
		}
		node := "-"
		if len(minimal) > 0 {
			node = minimal[0].Node.Label(prefixes)
		}
		res.Rows = append(res.Rows, BudgetRow{
			Strategy: strategy, MaxNodes: budget.MaxNodes, Deadline: budget.Deadline,
			StopReason: reason, Evaluated: stats.NodesEvaluated,
			Minimal: len(minimal), Node: node,
		})
		return nil
	}

	// The ladder: powers of two up to the lattice size, then unlimited.
	for budget := int64(8); budget < int64(latticeSize); budget *= 2 {
		if err := run("Exhaustive", search.Budget{MaxNodes: budget}); err != nil {
			return BudgetResult{}, err
		}
	}
	if err := run("Exhaustive", search.Budget{}); err != nil {
		return BudgetResult{}, err
	}
	if maxNodes > 0 {
		if err := run("Samarati", search.Budget{MaxNodes: maxNodes}); err != nil {
			return BudgetResult{}, err
		}
	}
	if deadline > 0 {
		if err := run("Samarati", search.Budget{Deadline: deadline}); err != nil {
			return BudgetResult{}, err
		}
	}
	return res, nil
}

// Format renders the ladder table.
func (r BudgetResult) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		limit := "none"
		switch {
		case row.MaxNodes > 0:
			limit = fmt.Sprintf("%d nodes", row.MaxNodes)
		case row.Deadline > 0:
			limit = row.Deadline.String()
		}
		rows[i] = []string{
			row.Strategy, limit, row.StopReason.String(),
			fmt.Sprint(row.Evaluated), fmt.Sprint(row.Minimal), row.Node,
		}
	}
	return fmt.Sprintf("Budget-bounded search on Adult n=%d (%d-sensitive %d-anonymity, lattice %d nodes, E18):\n%s",
		r.Size, r.P, r.K, r.LatticeSize,
		renderTable([]string{"Strategy", "budget", "stop", "evaluated", "minimal", "first node"}, rows))
}
