package experiments

import (
	"fmt"
	"strings"
	"time"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/search"
	"psk/internal/table"
)

// E8: Table 7 — the Adult key-attribute generalizations.

// Table7Row describes one attribute's hierarchy.
type Table7Row struct {
	Attribute      string
	DistinctValues int
	LevelNames     []string
}

// Table7Result is the rendered Table 7.
type Table7Result struct {
	Rows        []Table7Row
	LatticeSize int
	Height      int
}

// RunTable7 reproduces Table 7: the generalization chosen for each
// Adult key attribute, plus the induced lattice shape (96 nodes, height
// 9) from Section 4.
func RunTable7(im *table.Table) (Table7Result, error) {
	hs, err := dataset.Hierarchies()
	if err != nil {
		return Table7Result{}, err
	}
	var res Table7Result
	for _, attr := range dataset.QIs() {
		h, err := hs.Get(attr)
		if err != nil {
			return Table7Result{}, err
		}
		d, err := im.DistinctCount(attr)
		if err != nil {
			return Table7Result{}, err
		}
		row := Table7Row{Attribute: attr, DistinctValues: d}
		for lvl := 1; lvl <= h.Height(); lvl++ {
			row.LevelNames = append(row.LevelNames, h.LevelName(lvl))
		}
		res.Rows = append(res.Rows, row)
		res.Height += h.Height()
		if res.LatticeSize == 0 {
			res.LatticeSize = 1
		}
		res.LatticeSize *= h.Height() + 1
	}
	return res, nil
}

// Format renders Table 7.
func (r Table7Result) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Attribute, fmt.Sprint(row.DistinctValues),
			strings.Join(row.LevelNames, " -> ")}
	}
	return fmt.Sprintf("Adult key attribute generalizations (Table 7):\n%s"+
		"Lattice: %d nodes, height %d\n",
		renderTable([]string{"Attribute", "Distinct", "Generalizations"}, rows),
		r.LatticeSize, r.Height)
}

// E9: Table 8 — attribute disclosures on k-minimal Adult maskings.

// Table8Row is one experiment cell of Table 8.
type Table8Row struct {
	Size        int
	K           int
	Node        string
	Height      int
	Suppressed  int
	Groups      int
	Disclosures int
	// PSensitive2 reports whether the k-minimal masking already has
	// 2-sensitive k-anonymity (the paper found it does not in 3 of 4
	// cells).
	PSensitive2 bool
}

// Table8Config parameterizes the Table 8 run.
type Table8Config struct {
	// Sizes are the sample sizes (paper: 400, 4000).
	Sizes []int
	// Ks are the k values (paper: 2, 3).
	Ks []int
	// Source is the initial microdata pool to sample from; when nil a
	// synthetic Adult of 30000 rows (seed 2006) is generated.
	Source *table.Table
	// SampleSeed makes the per-size samples reproducible.
	SampleSeed int64
	// MaxSuppress is the per-run suppression threshold (the paper does
	// not state its TS; 0 reproduces the paper's node heights best).
	MaxSuppress int
}

// Table8Result is the full Table 8 reproduction.
type Table8Result struct {
	Rows []Table8Row
}

// RunTable8 reproduces the paper's main experiment: for each sample
// size and k, find the k-minimal generalization with Samarati's binary
// search and count the attribute disclosures (QI-group x confidential
// attribute pairs with a constant value, i.e. 2-sensitivity violations)
// in the resulting masked microdata.
func RunTable8(cfg Table8Config) (Table8Result, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{400, 4000}
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = []int{2, 3}
	}
	src := cfg.Source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return Table8Result{}, err
		}
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return Table8Result{}, err
	}

	var res Table8Result
	for _, n := range cfg.Sizes {
		im, err := src.Sample(n, cfg.SampleSeed)
		if err != nil {
			return Table8Result{}, err
		}
		for _, k := range cfg.Ks {
			sr, err := search.Samarati(im, search.Config{
				QIs:           dataset.QIs(),
				Confidential:  dataset.Confidential(),
				Hierarchies:   hs,
				K:             k,
				P:             1, // the paper searches for k-minimal, then inspects
				MaxSuppress:   cfg.MaxSuppress,
				UseConditions: true,
			})
			if err != nil {
				return Table8Result{}, err
			}
			if !sr.Found {
				return Table8Result{}, fmt.Errorf("experiments: no %d-minimal generalization for n=%d", k, n)
			}
			disc, err := core.AttributeDisclosures(sr.Masked, dataset.QIs(), dataset.Confidential(), 2)
			if err != nil {
				return Table8Result{}, err
			}
			groups, err := sr.Masked.NumGroups(dataset.QIs()...)
			if err != nil {
				return Table8Result{}, err
			}
			res.Rows = append(res.Rows, Table8Row{
				Size:        n,
				K:           k,
				Node:        sr.Node.Label(dataset.LatticePrefixes()),
				Height:      sr.Node.Height(),
				Suppressed:  sr.Suppressed,
				Groups:      groups,
				Disclosures: disc,
				PSensitive2: disc == 0,
			})
		}
	}
	return res, nil
}

// Format renders Table 8.
func (r Table8Result) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d and %d-anonymity", row.Size, row.K),
			row.Node,
			fmt.Sprint(row.Disclosures),
			fmt.Sprint(row.Groups),
			fmt.Sprint(row.Suppressed),
		}
	}
	return "Attribute disclosures for k-minimal maskings (Table 8):\n" +
		renderTable([]string{"Size and k-anonymity", "Lattice node", "Attr disclosures", "QI-groups", "Suppressed"}, rows)
}

// E10: the future-work ablation — Algorithm 2's necessary conditions
// versus the basic Algorithm 1 inside a p-k-minimal search.

// AblationRow compares one configuration with conditions on and off.
type AblationRow struct {
	Size, K, P int
	// WithConditions / WithoutConditions report elapsed wall time and
	// detailed group scans for the two variants.
	TimeWith, TimeWithout   time.Duration
	ScansWith, ScansWithout int
	// SameOutcome confirms both variants found the same node height (or
	// both found nothing).
	SameOutcome bool
}

// AblationResult is the E10 study.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblation measures the benefit of the two necessary conditions
// (Algorithm 2 / Algorithm 3) over the basic test (Algorithm 1) during
// p-k-minimal searches on Adult samples — the comparison the paper's
// future-work section proposes.
func RunAblation(sizes []int, k, p int, source *table.Table, seed int64) (AblationResult, error) {
	if len(sizes) == 0 {
		sizes = []int{400, 4000}
	}
	src := source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return AblationResult{}, err
		}
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return AblationResult{}, err
	}
	var res AblationResult
	for _, n := range sizes {
		im, err := src.Sample(n, seed)
		if err != nil {
			return AblationResult{}, err
		}
		cfg := search.Config{
			QIs:           dataset.QIs(),
			Confidential:  dataset.Confidential(),
			Hierarchies:   hs,
			K:             k,
			P:             p,
			MaxSuppress:   n / 100,
			UseConditions: true,
		}
		start := time.Now()
		with, err := search.Samarati(im, cfg)
		if err != nil {
			return AblationResult{}, err
		}
		tWith := time.Since(start)

		cfg.UseConditions = false
		start = time.Now()
		without, err := search.Samarati(im, cfg)
		if err != nil {
			return AblationResult{}, err
		}
		tWithout := time.Since(start)

		same := with.Found == without.Found
		if same && with.Found {
			same = with.Node.Height() == without.Node.Height()
		}
		res.Rows = append(res.Rows, AblationRow{
			Size: n, K: k, P: p,
			TimeWith: tWith, TimeWithout: tWithout,
			ScansWith: with.Stats.GroupScans, ScansWithout: without.Stats.GroupScans,
			SameOutcome: same,
		})
	}
	return res, nil
}

// Format renders the ablation rows.
func (r AblationResult) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("n=%d k=%d p=%d", row.Size, row.K, row.P),
			row.TimeWith.String(), row.TimeWithout.String(),
			fmt.Sprint(row.ScansWith), fmt.Sprint(row.ScansWithout),
			fmt.Sprint(row.SameOutcome),
		}
	}
	return "Necessary-condition ablation (Algorithm 2 vs Algorithm 1 inside Samarati):\n" +
		renderTable([]string{"Config", "t(with)", "t(without)", "scans(with)", "scans(without)", "same outcome"}, rows)
}

// E15: the disclosure-decay sweep — the paper's closing observation
// ("when the value of k increases, the number of attribute disclosures
// decreases ... [but] the attribute disclosure problem is not avoided")
// rendered as a series over k.

// DecayResult is the E15 sweep.
type DecayResult struct {
	Size int
	Ks   []int
	// Disclosures[i] is the 2-sensitivity violation count of the
	// k=Ks[i]-minimal masking.
	Disclosures []int
	// Heights[i] is the k-minimal node height.
	Heights []int
}

// RunDisclosureDecay sweeps k and records the attribute disclosures of
// each k-minimal masking on one Adult sample.
func RunDisclosureDecay(n int, ks []int, source *table.Table, seed int64) (DecayResult, error) {
	if len(ks) == 0 {
		ks = []int{2, 3, 4, 5, 6, 8, 10}
	}
	t8, err := RunTable8(Table8Config{
		Sizes:      []int{n},
		Ks:         ks,
		Source:     source,
		SampleSeed: seed,
	})
	if err != nil {
		return DecayResult{}, err
	}
	res := DecayResult{Size: n, Ks: ks}
	for _, row := range t8.Rows {
		res.Disclosures = append(res.Disclosures, row.Disclosures)
		res.Heights = append(res.Heights, row.Height)
	}
	return res, nil
}

// Format renders the series.
func (r DecayResult) Format() string {
	rows := make([][]string, len(r.Ks))
	for i := range r.Ks {
		rows[i] = []string{
			fmt.Sprint(r.Ks[i]),
			fmt.Sprint(r.Heights[i]),
			fmt.Sprint(r.Disclosures[i]),
		}
	}
	return fmt.Sprintf("Attribute disclosures vs k on Adult n=%d (E15):\n%s", r.Size,
		renderTable([]string{"k", "node height", "attr disclosures"}, rows))
}
