package experiments

import (
	"fmt"
	"math"

	"psk/internal/dataset"
	"psk/internal/mask"
	"psk/internal/risk"
	"psk/internal/search"
	"psk/internal/table"
)

// E14: the Section 2 masking-method survey as a measured comparison.
// Each method masks the same Adult sample's Age attribute (plus, for
// the grouping methods, the other QIs); the study then measures
// re-identification risk (prosecutor max and marketer over the QI set)
// and utility (mean absolute error of Age, fraction of exactly
// preserved values).

// MethodRow is one masking method's risk/utility profile.
type MethodRow struct {
	Method string
	// ProsecutorMax and MarketerRisk are over the full QI set.
	ProsecutorMax float64
	MarketerRisk  float64
	// AgeMAE is the mean absolute error of the Age attribute (numeric
	// utility). Range-recoded methods use the range midpoint.
	AgeMAE float64
	// ExactAges is the fraction of records whose released Age equals
	// the original.
	ExactAges float64
}

// MethodsResult is the E14 study.
type MethodsResult struct {
	Size int
	K    int
	Rows []MethodRow
}

// RunMethods compares the disclosure-control methods of the paper's
// Section 2 on one Adult sample.
func RunMethods(n, k int, source *table.Table, seed int64) (MethodsResult, error) {
	src := source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return MethodsResult{}, err
		}
	}
	im, err := src.Sample(n, seed)
	if err != nil {
		return MethodsResult{}, err
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return MethodsResult{}, err
	}
	res := MethodsResult{Size: n, K: k}

	add := func(name string, masked *table.Table) error {
		m, err := risk.Measure(masked, dataset.QIs())
		if err != nil {
			return err
		}
		mae, exact, err := ageError(im, masked)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, MethodRow{
			Method:        name,
			ProsecutorMax: m.ProsecutorMax,
			MarketerRisk:  m.MarketerRisk,
			AgeMAE:        mae,
			ExactAges:     exact,
		})
		return nil
	}

	if err := add("none (raw)", im); err != nil {
		return MethodsResult{}, err
	}

	sr, err := search.Samarati(im, search.Config{
		QIs: dataset.QIs(), Confidential: dataset.Confidential(),
		Hierarchies: hs, K: k, P: 1, MaxSuppress: n / 50, UseConditions: true,
	})
	if err != nil {
		return MethodsResult{}, err
	}
	if sr.Found {
		if err := add("full-domain generalization", sr.Masked); err != nil {
			return MethodsResult{}, err
		}
	}

	mr, err := search.Mondrian(im, search.MondrianConfig{QIs: dataset.QIs(), K: k, P: 1, Strict: true})
	if err != nil {
		return MethodsResult{}, err
	}
	if err := add("mondrian", mr.Masked); err != nil {
		return MethodsResult{}, err
	}

	micro, err := mask.Microaggregate(im, []string{dataset.Age}, k)
	if err != nil {
		return MethodsResult{}, err
	}
	if err := add("microaggregation (Age)", micro); err != nil {
		return MethodsResult{}, err
	}

	swapped, err := mask.RankSwap(im, dataset.Age, 5, seed)
	if err != nil {
		return MethodsResult{}, err
	}
	if err := add("rank swap (Age, 5%)", swapped); err != nil {
		return MethodsResult{}, err
	}

	noisy, err := mask.AddNoise(im, dataset.Age, 0.25, seed)
	if err != nil {
		return MethodsResult{}, err
	}
	if err := add("noise (Age, 0.25 sd)", noisy); err != nil {
		return MethodsResult{}, err
	}
	return res, nil
}

// ageError measures Age utility: mean absolute error against the
// original and the exactly preserved fraction. Generalized labels are
// decoded to range midpoints.
func ageError(im, mm *table.Table) (mae float64, exact float64, err error) {
	orig, err := im.Column(dataset.Age)
	if err != nil {
		return 0, 0, err
	}
	got, err := mm.Column(dataset.Age)
	if err != nil {
		return 0, 0, err
	}
	n := im.NumRows()
	if mm.NumRows() < n {
		n = mm.NumRows() // suppression shortens the release
	}
	if n == 0 {
		return 0, 0, nil
	}
	sum, hits := 0.0, 0
	for r := 0; r < n; r++ {
		o := orig.Value(r).Float()
		g, ok := decodeAge(got.Value(r).Str())
		if !ok {
			// Fully suppressed label: charge the domain half-range.
			sum += 36.5 // (90-17)/2
			continue
		}
		diff := math.Abs(o - g)
		sum += diff
		if diff == 0 {
			hits++
		}
	}
	return sum / float64(n), float64(hits) / float64(n), nil
}

// decodeAge parses a released Age cell: a plain number, "lo-hi" range,
// "[lo-hi]" range or "<x"/">=x" half-range; "*" is undecodable.
func decodeAge(s string) (float64, bool) {
	if s == "" || s == "*" {
		return 0, false
	}
	if s[0] == '[' && s[len(s)-1] == ']' {
		s = s[1 : len(s)-1]
	}
	if s[0] == '<' {
		v, ok := atofSimple(s[1:])
		return v - 10, ok
	}
	if len(s) > 2 && s[0] == '>' && s[1] == '=' {
		v, ok := atofSimple(s[2:])
		return v + 10, ok
	}
	// Range "lo-hi" (careful: negative ages do not occur).
	for i := 1; i < len(s); i++ {
		if s[i] == '-' {
			lo, ok1 := atofSimple(s[:i])
			hi, ok2 := atofSimple(s[i+1:])
			if ok1 && ok2 {
				return (lo + hi) / 2, true
			}
			return 0, false
		}
	}
	return atofSimple(s)
}

func atofSimple(s string) (float64, bool) {
	v := 0.0
	frac := false
	scale := 0.1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if frac {
				v += float64(c-'0') * scale
				scale /= 10
			} else {
				v = v*10 + float64(c-'0')
			}
		case c == '.' && !frac:
			frac = true
		default:
			return 0, false
		}
	}
	return v, len(s) > 0
}

// Format renders the comparison.
func (r MethodsResult) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Method,
			fmt.Sprintf("%.3f", row.ProsecutorMax),
			fmt.Sprintf("%.3f", row.MarketerRisk),
			fmt.Sprintf("%.2f", row.AgeMAE),
			fmt.Sprintf("%.0f%%", row.ExactAges*100),
		}
	}
	return fmt.Sprintf("Masking methods on Adult n=%d, k=%d (E14):\n%s", r.Size, r.K,
		renderTable([]string{"Method", "Prosecutor max", "Marketer", "Age MAE", "Exact ages"}, rows))
}
