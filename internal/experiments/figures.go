package experiments

import (
	"fmt"
	"strings"

	"psk/internal/core"
	"psk/internal/generalize"
	"psk/internal/hierarchy"
	"psk/internal/lattice"
)

// E3: Figure 1 — domain and value generalization hierarchies.

// HierarchyRendering shows each domain level of a hierarchy with its
// distinct labels, reproducing Figure 1's DGH column.
type HierarchyRendering struct {
	Attribute string
	// Levels[i] lists the distinct labels of domain level i in first-
	// appearance order over the supplied ground values.
	Levels [][]string
}

// RenderHierarchy evaluates a hierarchy over ground values and lists
// the distinct labels per level.
func RenderHierarchy(h hierarchy.Hierarchy, ground []string) (HierarchyRendering, error) {
	out := HierarchyRendering{Attribute: h.Attribute()}
	for lvl := 0; lvl <= h.Height(); lvl++ {
		seen := make(map[string]bool)
		var labels []string
		for _, v := range ground {
			g, err := h.Generalize(v, lvl)
			if err != nil {
				return HierarchyRendering{}, err
			}
			if !seen[g] {
				seen[g] = true
				labels = append(labels, g)
			}
		}
		out.Levels = append(out.Levels, labels)
	}
	return out, nil
}

// Figure1Result holds the two renderings of Figure 1.
type Figure1Result struct {
	ZipCode HierarchyRendering
	Sex     HierarchyRendering
}

// RunFigure1 reproduces Figure 1: the ZipCode hierarchy over the
// example zips (Z0..Z2) and the Sex hierarchy (S0..S1).
func RunFigure1() (Figure1Result, error) {
	zip, err := hierarchy.NewPrefix("ZipCode", 5, 2)
	if err != nil {
		return Figure1Result{}, err
	}
	sex := hierarchy.NewFlat("Sex")
	sex.Top = "Person"
	var res Figure1Result
	res.ZipCode, err = RenderHierarchy(zip, []string{"41075", "41076", "41088", "41099"})
	if err != nil {
		return Figure1Result{}, err
	}
	res.Sex, err = RenderHierarchy(sex, []string{"M", "F"})
	if err != nil {
		return Figure1Result{}, err
	}
	return res, nil
}

// Format renders both hierarchies.
func (r Figure1Result) Format() string {
	var b strings.Builder
	for _, h := range []HierarchyRendering{r.ZipCode, r.Sex} {
		fmt.Fprintf(&b, "%s domain generalization hierarchy:\n", h.Attribute)
		for lvl, labels := range h.Levels {
			fmt.Fprintf(&b, "  level %d: {%s}\n", lvl, strings.Join(labels, ", "))
		}
	}
	return b.String()
}

// E4: Figure 2 — the generalization lattice for Sex x ZipCode.

// Figure2Result lists the lattice nodes by height.
type Figure2Result struct {
	Height int
	Size   int
	// ByHeight[h] are the node labels at height h.
	ByHeight [][]string
}

// RunFigure2 reproduces Figure 2: the 6-node lattice over <S, Z> with
// heights 0..3.
func RunFigure2() (Figure2Result, error) {
	lat, err := lattice.New([]int{1, 2})
	if err != nil {
		return Figure2Result{}, err
	}
	res := Figure2Result{Height: lat.Height(), Size: lat.Size()}
	for h := 0; h <= lat.Height(); h++ {
		var labels []string
		for _, n := range lat.NodesAtHeight(h) {
			labels = append(labels, n.Label([]string{"S", "Z"}))
		}
		res.ByHeight = append(res.ByHeight, labels)
	}
	return res, nil
}

// Format renders the lattice level by level, top down like the figure.
func (r Figure2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Generalization lattice for <Sex, ZipCode>: %d nodes, height %d\n", r.Size, r.Height)
	for h := len(r.ByHeight) - 1; h >= 0; h-- {
		fmt.Fprintf(&b, "  height %d: %s\n", h, strings.Join(r.ByHeight[h], "  "))
	}
	return b.String()
}

// E5: Figure 3 — tuples failing 3-anonymity at every node.

// Figure3Result maps each lattice node label to the number of tuples
// that do not satisfy 3-anonymity there (the parenthesized counts).
type Figure3Result struct {
	K int
	// Nodes in bottom-up order with their violation counts.
	Nodes  []string
	Counts []int
}

// RunFigure3 reproduces Figure 3's per-node counts for k = 3.
func RunFigure3() (Figure3Result, error) {
	tbl, err := Figure3Data()
	if err != nil {
		return Figure3Result{}, err
	}
	hs, err := Figure3Hierarchies()
	if err != nil {
		return Figure3Result{}, err
	}
	m, err := generalize.NewMasker([]string{"Sex", "ZipCode"}, hs)
	if err != nil {
		return Figure3Result{}, err
	}
	res := Figure3Result{K: 3}
	for _, node := range m.Lattice().AllNodes() {
		g, err := m.Apply(tbl, node)
		if err != nil {
			return Figure3Result{}, err
		}
		n, err := core.TuplesViolatingK(g, []string{"Sex", "ZipCode"}, 3)
		if err != nil {
			return Figure3Result{}, err
		}
		res.Nodes = append(res.Nodes, node.Label([]string{"S", "Z"}))
		res.Counts = append(res.Counts, n)
	}
	return res, nil
}

// Format renders the per-node counts.
func (r Figure3Result) Format() string {
	rows := make([][]string, len(r.Nodes))
	for i := range r.Nodes {
		rows[i] = []string{r.Nodes[i], fmt.Sprint(r.Counts[i])}
	}
	return fmt.Sprintf("Tuples not satisfying %d-anonymity per lattice node (Figure 3):\n%s",
		r.K, renderTable([]string{"Node", "Violating tuples"}, rows))
}
