package experiments

import (
	"math"
	"strings"
	"testing"

	"psk/internal/dataset"
	"psk/internal/table"
)

// E1: the motivating attack must reproduce the paper's narrative
// exactly: 2-anonymous, nobody uniquely identified, Sam and Eric learn
// Diabetes.
func TestRunMotivatingAttack(t *testing.T) {
	res, err := RunMotivatingAttack()
	if err != nil {
		t.Fatalf("RunMotivatingAttack: %v", err)
	}
	if !res.KAnonymous {
		t.Error("Table 1 should be 2-anonymous")
	}
	if res.Summary.UniquelyIdentified != 0 {
		t.Errorf("uniquely identified = %d, want 0", res.Summary.UniquelyIdentified)
	}
	if res.Summary.AttributeDisclosed != 2 {
		t.Errorf("attribute disclosed = %d, want 2", res.Summary.AttributeDisclosed)
	}
	for _, name := range []string{"Sam", "Eric"} {
		if res.Learned[name]["Illness"] != "Diabetes" {
			t.Errorf("%s learned %v, want Diabetes", name, res.Learned[name])
		}
	}
	out := res.Format()
	if !strings.Contains(out, "Sam has Illness = Diabetes") {
		t.Errorf("Format missing disclosure line:\n%s", out)
	}
}

// E2: Table 3 is 3-anonymous, 1-sensitive; the paper's edit lifts it to
// 2-sensitive.
func TestRunTable3Sensitivity(t *testing.T) {
	res, err := RunTable3Sensitivity()
	if err != nil {
		t.Fatalf("RunTable3Sensitivity: %v", err)
	}
	if res.KAnonymity != 3 || res.Sensitivity != 1 || res.FixedSensitivity != 2 {
		t.Errorf("result = %+v, want k=3 p=1 fixed=2", res)
	}
	if !strings.Contains(res.Format(), "1-sensitive 3-anonymity") {
		t.Errorf("Format = %q", res.Format())
	}
}

// E3: Figure 1's exact domain levels.
func TestRunFigure1(t *testing.T) {
	res, err := RunFigure1()
	if err != nil {
		t.Fatalf("RunFigure1: %v", err)
	}
	if len(res.ZipCode.Levels) != 3 {
		t.Fatalf("zip levels = %d", len(res.ZipCode.Levels))
	}
	if got := strings.Join(res.ZipCode.Levels[1], ","); got != "4107*,4108*,4109*" {
		t.Errorf("Z1 = %q", got)
	}
	if got := strings.Join(res.ZipCode.Levels[2], ","); got != "410**" {
		t.Errorf("Z2 = %q", got)
	}
	if got := strings.Join(res.Sex.Levels[1], ","); got != "Person" {
		t.Errorf("S1 = %q", got)
	}
	if !strings.Contains(res.Format(), "4107*") {
		t.Error("Format missing zip labels")
	}
}

// E4: Figure 2's lattice shape.
func TestRunFigure2(t *testing.T) {
	res, err := RunFigure2()
	if err != nil {
		t.Fatalf("RunFigure2: %v", err)
	}
	if res.Size != 6 || res.Height != 3 {
		t.Errorf("lattice = %d nodes height %d, want 6/3", res.Size, res.Height)
	}
	wantCounts := []int{1, 2, 2, 1}
	for h, want := range wantCounts {
		if len(res.ByHeight[h]) != want {
			t.Errorf("height %d has %d nodes, want %d", h, len(res.ByHeight[h]), want)
		}
	}
	if res.ByHeight[0][0] != "<S0, Z0>" || res.ByHeight[3][0] != "<S1, Z2>" {
		t.Errorf("labels = %v", res.ByHeight)
	}
	if !strings.Contains(res.Format(), "<S1, Z1>") {
		t.Error("Format missing node labels")
	}
}

// E5: Figure 3's exact per-node violation counts.
func TestRunFigure3(t *testing.T) {
	res, err := RunFigure3()
	if err != nil {
		t.Fatalf("RunFigure3: %v", err)
	}
	want := map[string]int{
		"<S0, Z0>": 10,
		"<S1, Z0>": 7,
		"<S0, Z1>": 7,
		"<S1, Z1>": 2,
		"<S0, Z2>": 0,
		"<S1, Z2>": 0,
	}
	if len(res.Nodes) != len(want) {
		t.Fatalf("nodes = %v", res.Nodes)
	}
	for i, n := range res.Nodes {
		if res.Counts[i] != want[n] {
			t.Errorf("%s = %d, want %d", n, res.Counts[i], want[n])
		}
	}
	if !strings.Contains(res.Format(), "Violating tuples") {
		t.Error("Format header missing")
	}
}

// E6: Table 4's exact minimal generalizations for all TS values.
func TestRunTable4(t *testing.T) {
	res, err := RunTable4()
	if err != nil {
		t.Fatalf("RunTable4: %v", err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 (TS 0..10)", len(res.Rows))
	}
	want := map[int]string{
		0:  "<S0, Z2>",
		1:  "<S0, Z2>",
		2:  "<S0, Z2> and <S1, Z1>",
		3:  "<S0, Z2> and <S1, Z1>",
		4:  "<S0, Z2> and <S1, Z1>",
		5:  "<S0, Z2> and <S1, Z1>",
		6:  "<S0, Z2> and <S1, Z1>",
		7:  "<S0, Z1> and <S1, Z0>",
		8:  "<S0, Z1> and <S1, Z0>",
		9:  "<S0, Z1> and <S1, Z0>",
		10: "<S0, Z0>",
	}
	for _, row := range res.Rows {
		got := strings.Join(row.Nodes, " and ")
		if got != want[row.TS] {
			t.Errorf("TS=%d: %q, want %q", row.TS, got, want[row.TS])
		}
	}
	if !strings.Contains(res.Format(), "Minimal nodes") {
		t.Error("Format header missing")
	}
}

// E7: Tables 5-6 exact values and the maxGroups walk-through
// (300/100/50/25).
func TestRunExample1(t *testing.T) {
	res, err := RunExample1()
	if err != nil {
		t.Fatalf("RunExample1: %v", err)
	}
	if res.N != 1000 || res.MaxP != 5 {
		t.Errorf("n=%d maxP=%d, want 1000/5", res.N, res.MaxP)
	}
	if got := intsToString(res.CFMax); got != "700 900 950 960 1000" {
		t.Errorf("cf = %q", got)
	}
	want := map[int]int{2: 300, 3: 100, 4: 50, 5: 25}
	for p, w := range want {
		if res.MaxGroups[p] != w {
			t.Errorf("maxGroups(%d) = %d, want %d", p, res.MaxGroups[p], w)
		}
	}
	byAttr := make(map[string]FrequencyRow)
	for _, r := range res.Rows {
		byAttr[r.Attribute] = r
	}
	if got := intsToString(byAttr["S3"].Freq); got != "700 200 50 10 10 10 10 5 3 2" {
		t.Errorf("f^3 = %q", got)
	}
	if got := intsToString(byAttr["S2"].Cumulative); got != "500 800 900 940 975 1000" {
		t.Errorf("cf^2 = %q", got)
	}
	if byAttr["S1"].Distinct != 5 || byAttr["S2"].Distinct != 6 || byAttr["S3"].Distinct != 10 {
		t.Error("distinct counts wrong")
	}
	if !strings.Contains(res.Format(), "maxGroups(p=5) = 25") {
		t.Errorf("Format:\n%s", res.Format())
	}
}

// E8: Table 7's hierarchy descriptions and lattice shape.
func TestRunTable7(t *testing.T) {
	im, err := generateSmallAdult(t)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTable7(im)
	if err != nil {
		t.Fatalf("RunTable7: %v", err)
	}
	if res.LatticeSize != 96 || res.Height != 9 {
		t.Errorf("lattice = %d/%d, want 96/9", res.LatticeSize, res.Height)
	}
	byAttr := make(map[string]Table7Row)
	for _, r := range res.Rows {
		byAttr[r.Attribute] = r
	}
	if len(byAttr["Age"].LevelNames) != 3 || len(byAttr["Sex"].LevelNames) != 1 {
		t.Errorf("level names = %+v", byAttr)
	}
	if byAttr["MaritalStatus"].LevelNames[0] != "Single or Married" {
		t.Errorf("marital level 1 = %q", byAttr["MaritalStatus"].LevelNames[0])
	}
	if !strings.Contains(res.Format(), "96 nodes") {
		t.Error("Format missing lattice size")
	}
}

// E9: Table 8's shape on the synthetic Adult — the core claims of the
// paper's experiment section:
//
//  1. k-minimal maskings exist for every cell;
//  2. attribute disclosures occur in most cells (the paper: 3 of 4);
//  3. disclosures do not increase when k grows at fixed size.
func TestRunTable8Shape(t *testing.T) {
	res, err := RunTable8(Table8Config{SampleSeed: 17})
	if err != nil {
		t.Fatalf("RunTable8: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	positive := 0
	byCell := make(map[[2]int]Table8Row)
	for _, r := range res.Rows {
		byCell[[2]int{r.Size, r.K}] = r
		if r.Disclosures > 0 {
			positive++
		}
		if r.Height < 1 {
			t.Errorf("n=%d k=%d: k-minimal at height %d; expected generalization", r.Size, r.K, r.Height)
		}
	}
	if positive < 3 {
		t.Errorf("attribute disclosures in %d of 4 cells; paper found 3 of 4", positive)
	}
	for _, n := range []int{400, 4000} {
		if byCell[[2]int{n, 3}].Disclosures > byCell[[2]int{n, 2}].Disclosures {
			t.Errorf("n=%d: disclosures rose with k: %d -> %d",
				n, byCell[[2]int{n, 2}].Disclosures, byCell[[2]int{n, 3}].Disclosures)
		}
	}
	out := res.Format()
	if !strings.Contains(out, "400 and 2-anonymity") || !strings.Contains(out, "4000 and 3-anonymity") {
		t.Errorf("Format rows missing:\n%s", out)
	}
}

// E10: the ablation must agree on outcomes and never scan more groups
// with conditions enabled.
func TestRunAblation(t *testing.T) {
	res, err := RunAblation([]int{400}, 3, 2, nil, 17)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if !row.SameOutcome {
		t.Error("conditions changed the search outcome")
	}
	if row.ScansWith > row.ScansWithout {
		t.Errorf("conditions increased scans: %d > %d", row.ScansWith, row.ScansWithout)
	}
	if !strings.Contains(res.Format(), "same outcome") {
		t.Error("Format header missing")
	}
}

// E11: Mondrian must dominate full-domain generalization on
// discernibility (lower is better) at equal k — the known utility
// crossover between single- and multi-dimensional recoding.
func TestRunUtilityShape(t *testing.T) {
	res, err := RunUtility(800, []int{2, 5}, 1, nil, 17)
	if err != nil {
		t.Fatalf("RunUtility: %v", err)
	}
	for _, row := range res.Rows {
		if !row.FDFound {
			t.Errorf("k=%d: full-domain found nothing", row.K)
			continue
		}
		if !row.MPSatisfied {
			t.Errorf("k=%d: Mondrian output does not satisfy the property", row.K)
		}
		if row.MDiscernibility > row.FDDiscernibility {
			t.Errorf("k=%d: Mondrian DM %d worse than full-domain %d",
				row.K, row.MDiscernibility, row.FDDiscernibility)
		}
	}
	if !strings.Contains(res.Format(), "Mondrian") {
		t.Error("Format header missing")
	}
}

func generateSmallAdult(t *testing.T) (*table.Table, error) {
	t.Helper()
	return dataset.Generate(2000, 11)
}

// E11 extension: GreedyCluster must also satisfy the property and beat
// full-domain generalization on discernibility.
func TestRunUtilityClusterColumn(t *testing.T) {
	res, err := RunUtility(600, []int{3}, 2, nil, 17)
	if err != nil {
		t.Fatalf("RunUtility: %v", err)
	}
	row := res.Rows[0]
	if !row.CPSatisfied {
		t.Error("GreedyCluster output does not satisfy the property")
	}
	if row.CClusters < 2 {
		t.Errorf("clusters = %d", row.CClusters)
	}
	if row.FDFound && row.CDiscernibility > row.FDDiscernibility {
		t.Errorf("cluster DM %d worse than full-domain %d", row.CDiscernibility, row.FDDiscernibility)
	}
	if !strings.Contains(res.Format(), "GreedyCluster") {
		t.Error("Format missing cluster column")
	}
}

// E14: the masking-method comparison must show the expected risk and
// utility ordering.
func TestRunMethodsShape(t *testing.T) {
	res, err := RunMethods(800, 3, nil, 17)
	if err != nil {
		t.Fatalf("RunMethods: %v", err)
	}
	byName := make(map[string]MethodRow)
	for _, r := range res.Rows {
		byName[r.Method] = r
	}
	raw, ok := byName["none (raw)"]
	if !ok {
		t.Fatal("raw row missing")
	}
	if raw.ProsecutorMax != 1 {
		t.Errorf("raw prosecutor risk = %g; samples this size always have unique QI combos", raw.ProsecutorMax)
	}
	if raw.AgeMAE != 0 || raw.ExactAges != 1 {
		t.Errorf("raw utility row = %+v", raw)
	}
	// The grouping methods must cut risk below raw.
	for _, name := range []string{"full-domain generalization", "mondrian"} {
		row, ok := byName[name]
		if !ok {
			t.Errorf("%s row missing", name)
			continue
		}
		if row.MarketerRisk >= raw.MarketerRisk {
			t.Errorf("%s marketer risk %g not below raw %g", name, row.MarketerRisk, raw.MarketerRisk)
		}
	}
	// Rank swap preserves the marginal: lower Age error than full
	// suppression-style recoding but non-zero.
	swap := byName["rank swap (Age, 5%)"]
	if swap.AgeMAE <= 0 {
		t.Errorf("rank swap MAE = %g, want > 0", swap.AgeMAE)
	}
	fd := byName["full-domain generalization"]
	if fd.Method != "" && swap.AgeMAE >= fd.AgeMAE {
		t.Errorf("rank swap MAE %g should beat full-domain %g", swap.AgeMAE, fd.AgeMAE)
	}
	if !strings.Contains(res.Format(), "Prosecutor max") {
		t.Error("Format header missing")
	}
}

func TestDecodeAge(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{"20-29", 24.5, true},
		{"[20-39]", 29.5, true},
		{"<50", 40, true},
		{">=50", 60, true},
		{"*", 0, false},
		{"", 0, false},
		{"abc", 0, false},
		{"12.5", 12.5, true},
	}
	for _, c := range cases {
		got, ok := decodeAge(c.in)
		if ok != c.ok || (ok && math.Abs(got-c.want) > 1e-9) {
			t.Errorf("decodeAge(%q) = %g, %v; want %g, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// E15: disclosures must be non-increasing in k (the paper's closing
// claim) and remain positive for small k on the skewed Adult data.
func TestRunDisclosureDecay(t *testing.T) {
	res, err := RunDisclosureDecay(2000, []int{2, 4, 8}, nil, 17)
	if err != nil {
		t.Fatalf("RunDisclosureDecay: %v", err)
	}
	if len(res.Disclosures) != 3 {
		t.Fatalf("series length = %d", len(res.Disclosures))
	}
	if res.Disclosures[0] == 0 {
		t.Error("k=2 should disclose on skewed Adult data")
	}
	// The paper's claim is a broad decay, not strict monotonicity (its
	// own caveat: "the attribute disclosure problem is not avoided").
	last := len(res.Disclosures) - 1
	if res.Disclosures[last] > res.Disclosures[0] {
		t.Errorf("disclosures grew from k=2 to k=%d: %v", res.Ks[last], res.Disclosures)
	}
	for i := 1; i < len(res.Heights); i++ {
		if res.Heights[i] < res.Heights[i-1] {
			t.Errorf("node heights fell with k: %v", res.Heights)
		}
	}
	if !strings.Contains(res.Format(), "attr disclosures") {
		t.Error("Format header missing")
	}
}
