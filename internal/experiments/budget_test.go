package experiments

import (
	"strings"
	"testing"
	"time"

	"psk/internal/search"
)

// E18: the ladder must show graceful degradation — every bounded run
// spends at most its budget, stops with the structured node-budget
// reason when truncated, and the unbounded final row completes the
// lattice with StopDone and a non-empty minimal set.
func TestRunBudget(t *testing.T) {
	res, err := RunBudget(500, 3, 2, nil, 17, 0, 5)
	if err != nil {
		t.Fatalf("RunBudget: %v", err)
	}
	if res.LatticeSize != 96 {
		t.Fatalf("lattice size = %d, want 96", res.LatticeSize)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("only %d rows", len(res.Rows))
	}
	var sawDone bool
	for _, row := range res.Rows {
		if row.MaxNodes > 0 {
			if int64(row.Evaluated) > row.MaxNodes {
				t.Errorf("%s budget %d: evaluated %d nodes", row.Strategy, row.MaxNodes, row.Evaluated)
			}
			if row.StopReason != search.StopNodeBudget && row.StopReason != search.StopDone {
				t.Errorf("%s budget %d: stop reason %s", row.Strategy, row.MaxNodes, row.StopReason)
			}
		}
		if row.StopReason == search.StopDone {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("no run completed")
	}
	final := res.Rows[len(res.Rows)-1]
	if final.MaxNodes != 5 || final.Strategy != "Samarati" {
		t.Errorf("flag row = %+v", final)
	}
	unbounded := res.Rows[len(res.Rows)-2]
	if unbounded.MaxNodes != 0 || unbounded.StopReason != search.StopDone || unbounded.Minimal == 0 {
		t.Errorf("unbounded row = %+v", unbounded)
	}
	if !strings.Contains(res.Format(), "node-budget") {
		t.Error("Format missing the stop column")
	}

	// A deadline flag adds a Samarati row bounded by wall time.
	res2, err := RunBudget(500, 3, 2, nil, 17, time.Minute, 0)
	if err != nil {
		t.Fatalf("RunBudget with deadline: %v", err)
	}
	last := res2.Rows[len(res2.Rows)-1]
	if last.Deadline != time.Minute {
		t.Errorf("deadline row = %+v", last)
	}
}
