// Package experiments implements one runner per table and figure of the
// paper's evaluation, plus the ablation and utility studies DESIGN.md
// calls out. Each runner returns a structured result and can render the
// same rows the paper reports; cmd/pskexp prints them and the top-level
// benchmarks regenerate them under the Go benchmark harness.
package experiments

import (
	"fmt"
	"strings"

	"psk/internal/hierarchy"
	"psk/internal/table"
)

// patientSchema is the Table 1 / Table 3 schema.
func patientSchema(income bool) table.Schema {
	fields := []table.Field{
		{Name: "Age", Type: table.Int},
		{Name: "ZipCode", Type: table.String},
		{Name: "Sex", Type: table.String},
		{Name: "Illness", Type: table.String},
	}
	if income {
		fields = append(fields, table.Field{Name: "Income", Type: table.Int})
	}
	return table.Schema{Fields: fields}
}

// Table1 returns the paper's Table 1 masked patient microdata.
func Table1() (*table.Table, error) {
	return table.FromText(patientSchema(false), [][]string{
		{"50", "43102", "M", "Colon Cancer"},
		{"30", "43102", "F", "Breast Cancer"},
		{"30", "43102", "F", "HIV"},
		{"20", "43102", "M", "Diabetes"},
		{"20", "43102", "M", "Diabetes"},
		{"50", "43102", "M", "Heart Disease"},
	})
}

// Table2 returns the paper's Table 2 external identified table.
func Table2() (*table.Table, error) {
	sch := table.MustSchema(
		table.Field{Name: "Name", Type: table.String},
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	return table.FromText(sch, [][]string{
		{"Sam", "29", "M", "43102"},
		{"Gloria", "38", "F", "43102"},
		{"Adam", "51", "M", "43102"},
		{"Eric", "29", "M", "43102"},
		{"Tanisha", "34", "F", "43102"},
		{"Don", "51", "M", "43102"},
	})
}

// Table3 returns the paper's Table 3 masked microdata (3-anonymous,
// 1-sensitive).
func Table3() (*table.Table, error) {
	return table.FromText(patientSchema(true), [][]string{
		{"20", "43102", "F", "AIDS", "50000"},
		{"20", "43102", "F", "AIDS", "50000"},
		{"20", "43102", "F", "Diabetes", "50000"},
		{"30", "43102", "M", "Diabetes", "30000"},
		{"30", "43102", "M", "Diabetes", "40000"},
		{"30", "43102", "M", "Heart Disease", "30000"},
		{"30", "43102", "M", "Heart Disease", "40000"},
	})
}

// Figure3Data returns the 10-row Sex/ZipCode microdata of Figure 3.
func Figure3Data() (*table.Table, error) {
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	return table.FromText(sch, [][]string{
		{"M", "41076"}, {"F", "41099"}, {"M", "41099"}, {"M", "41076"},
		{"F", "43102"}, {"M", "43102"}, {"M", "43102"}, {"F", "43103"},
		{"M", "48202"}, {"M", "48201"},
	})
}

// Figure3Hierarchies returns the hierarchy set of Figures 2-3: Sex (M/F
// -> Person) and ZipCode (5-digit -> 431** -> one group).
func Figure3Hierarchies() (*hierarchy.Set, error) {
	zip, err := hierarchy.NewPrefixSteps("ZipCode", 5, []int{2, 5})
	if err != nil {
		return nil, err
	}
	sex := hierarchy.NewFlat("Sex")
	sex.Top = "Person"
	return hierarchy.NewSet(zip, sex)
}

// row formats a fixed-width report row.
func row(b *strings.Builder, cells []string, widths []int) {
	for i, c := range cells {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
}

// renderTable renders a header and rows with auto-sized columns.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	row(&b, header, widths)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	row(&b, sep, widths)
	for _, r := range rows {
		row(&b, r, widths)
	}
	return b.String()
}
