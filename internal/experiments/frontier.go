package experiments

import (
	"fmt"
	"strings"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/search"
	"psk/internal/table"
)

// E19: the utility-aware Pareto frontier across policy strictness —
// how the set of undominated releases moves as k, p and composed
// policies tighten. One AllMinimal pass per configuration with the
// frontier enabled; every loss score comes from the statistics-native
// path (nothing is materialized to be scored).

// FrontierExpRow summarizes one configuration's frontier.
type FrontierExpRow struct {
	Label   string
	Members int
	// Nodes lists the frontier members (walk order, labelled).
	Nodes string
	// BestDM / BestEntropy / BestMargin name the member optimal on each
	// axis, with its value — the corners a publisher chooses between.
	BestDM      string
	BestEntropy string
	BestMargin  string
}

// FrontierExpResult is the E19 study.
type FrontierExpResult struct {
	Size int
	Rows []FrontierExpRow
}

// RunFrontier sweeps policy strictness on one Adult sample: plain
// k-anonymity (p=1), two p-sensitive settings, and two composite
// policies (adding distinct l-diversity / t-closeness), reporting each
// configuration's Pareto frontier over the default objectives.
func RunFrontier(n int, source *table.Table, seed int64) (FrontierExpResult, error) {
	src := source
	if src == nil {
		var err error
		src, err = dataset.Generate(30000, 2006)
		if err != nil {
			return FrontierExpResult{}, err
		}
	}
	im, err := src.Sample(n, seed)
	if err != nil {
		return FrontierExpResult{}, err
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		return FrontierExpResult{}, err
	}
	conf := dataset.Confidential()

	type config struct {
		label string
		k, p  int
		pol   core.Policy
	}
	configs := []config{
		{"k=2 p=1", 2, 1, nil},
		{"k=5 p=2", 5, 2, nil},
		{"k=10 p=2", 10, 2, nil},
		{"k=5 p=2 +ldiv3", 5, 2, core.All(
			core.PSensitiveKAnonymityPolicy{P: 2, K: 5},
			core.DistinctLDiversityPolicy{Attr: conf[0], L: 3},
		)},
		{"k=5 p=2 +tclose0.5", 5, 2, core.All(
			core.PSensitiveKAnonymityPolicy{P: 2, K: 5},
			core.TClosenessPolicy{Attr: conf[0], T: 0.5},
		)},
	}

	res := FrontierExpResult{Size: n}
	for _, c := range configs {
		cfg := search.Config{
			QIs:           dataset.QIs(),
			Confidential:  conf,
			Hierarchies:   hs,
			K:             c.k,
			P:             c.p,
			MaxSuppress:   n / 100,
			UseConditions: true,
			Policy:        c.pol,
			Frontier:      search.FrontierConfig{Enabled: true},
		}
		r, err := search.AllMinimal(im, cfg)
		if err != nil {
			return FrontierExpResult{}, err
		}
		row := FrontierExpRow{Label: c.label, Members: len(r.Frontier)}
		if len(r.Frontier) == 0 {
			row.Nodes, row.BestDM, row.BestEntropy, row.BestMargin = "-", "-", "-", "-"
			res.Rows = append(res.Rows, row)
			continue
		}
		labels := make([]string, len(r.Frontier))
		bestDM, bestEnt, bestMargin := 0, 0, 0
		for i, f := range r.Frontier {
			labels[i] = f.Node.Label(dataset.LatticePrefixes())
			if f.Loss.Discernibility < r.Frontier[bestDM].Loss.Discernibility {
				bestDM = i
			}
			if f.Loss.EntropyLossBits < r.Frontier[bestEnt].Loss.EntropyLossBits {
				bestEnt = i
			}
			if f.MinGroup > r.Frontier[bestMargin].MinGroup {
				bestMargin = i
			}
		}
		row.Nodes = strings.Join(labels, " ")
		row.BestDM = fmt.Sprintf("%s (%d)", labels[bestDM], r.Frontier[bestDM].Loss.Discernibility)
		row.BestEntropy = fmt.Sprintf("%s (%.2f bits)", labels[bestEnt], r.Frontier[bestEnt].Loss.EntropyLossBits)
		row.BestMargin = fmt.Sprintf("%s (min group %d)", labels[bestMargin], r.Frontier[bestMargin].MinGroup)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the frontier study.
func (r FrontierExpResult) Format() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Label,
			fmt.Sprintf("%d", row.Members),
			row.Nodes,
			row.BestDM,
			row.BestEntropy,
			row.BestMargin,
		}
	}
	return fmt.Sprintf("Pareto frontier vs policy strictness on Adult n=%d (E19):\n%s", r.Size,
		renderTable([]string{"Config", "Members", "Frontier nodes", "Best DM", "Best entropy", "Best margin"}, rows))
}
