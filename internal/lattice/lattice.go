// Package lattice implements the generalization lattice of Samarati,
// the search space of full-domain generalization (paper Figure 2).
//
// A node is a vector of generalization levels, one per quasi-identifier
// attribute: node[i] in [0, dims[i]]. The partial order is component-wise
// <=; node Y is a generalization of X when Y >= X in every coordinate.
// The height of a node is the sum of its coordinates — the minimum path
// length from the bottom element — and the lattice height is the sum of
// the per-attribute hierarchy heights.
package lattice

import (
	"fmt"
	"strings"
	"sync"
)

// Node is a generalization level vector. Nodes are value-like; treat
// them as immutable once created.
type Node []int

// Clone returns an independent copy of the node.
func (n Node) Clone() Node {
	c := make(Node, len(n))
	copy(c, n)
	return c
}

// Height returns the sum of levels — height(X, GL) in the paper.
func (n Node) Height() int {
	h := 0
	for _, l := range n {
		h += l
	}
	return h
}

// Equal reports component-wise equality.
func (n Node) Equal(o Node) bool {
	if len(n) != len(o) {
		return false
	}
	for i := range n {
		if n[i] != o[i] {
			return false
		}
	}
	return true
}

// GeneralizationOf reports whether n >= o in every coordinate, i.e. n is
// on a path from o to the top of the lattice (n may equal o).
func (n Node) GeneralizationOf(o Node) bool {
	if len(n) != len(o) {
		return false
	}
	for i := range n {
		if n[i] < o[i] {
			return false
		}
	}
	return true
}

// StrictGeneralizationOf reports n >= o and n != o.
func (n Node) StrictGeneralizationOf(o Node) bool {
	return n.GeneralizationOf(o) && !n.Equal(o)
}

// Key returns a compact string key for maps.
func (n Node) Key() string {
	var b strings.Builder
	for i, l := range n {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	return b.String()
}

// String renders the node in the paper's notation using the given
// attribute prefixes, e.g. Label([]string{"A","M","R","S"}) -> "<A1, M1,
// R2, S1>". With no prefixes it renders "<1,1,2,1>".
func (n Node) String() string { return "<" + n.Key() + ">" }

// Label renders the node with attribute letter prefixes.
func (n Node) Label(prefixes []string) string {
	var b strings.Builder
	b.WriteByte('<')
	for i, l := range n {
		if i > 0 {
			b.WriteString(", ")
		}
		if i < len(prefixes) {
			fmt.Fprintf(&b, "%s%d", prefixes[i], l)
		} else {
			fmt.Fprintf(&b, "%d", l)
		}
	}
	b.WriteByte('>')
	return b.String()
}

// Lattice is the full generalization lattice for a vector of hierarchy
// heights. It is safe for concurrent use.
type Lattice struct {
	dims []int

	// byHeight memoizes NodesAtHeight results: the searches re-enumerate
	// the same levels many times (Samarati probes heights repeatedly,
	// the level sweeps walk every height), and the parallel engine needs
	// a stable node order to reduce worker results deterministically.
	mu       sync.Mutex
	byHeight map[int][]Node
}

// New builds a lattice with the given per-attribute maximum levels. All
// dimensions must be non-negative and there must be at least one.
func New(dims []int) (*Lattice, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("lattice: no dimensions")
	}
	for i, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("lattice: dimension %d has negative height %d", i, d)
		}
	}
	c := make([]int, len(dims))
	copy(c, dims)
	return &Lattice{dims: c}, nil
}

// Dims returns a copy of the dimension vector.
func (l *Lattice) Dims() []int {
	c := make([]int, len(l.dims))
	copy(c, l.dims)
	return c
}

// NumAttrs returns the number of attributes (vector length).
func (l *Lattice) NumAttrs() int { return len(l.dims) }

// Height returns height(GL): the sum of all dimension heights.
func (l *Lattice) Height() int {
	h := 0
	for _, d := range l.dims {
		h += d
	}
	return h
}

// Size returns the total number of nodes: prod(dims[i]+1).
func (l *Lattice) Size() int {
	n := 1
	for _, d := range l.dims {
		n *= d + 1
	}
	return n
}

// Bottom returns the all-zeros node (no generalization).
func (l *Lattice) Bottom() Node { return make(Node, len(l.dims)) }

// Top returns the maximal node (full generalization).
func (l *Lattice) Top() Node {
	t := make(Node, len(l.dims))
	copy(t, l.dims)
	return t
}

// Contains reports whether the node is a valid member of the lattice.
func (l *Lattice) Contains(n Node) bool {
	if len(n) != len(l.dims) {
		return false
	}
	for i, v := range n {
		if v < 0 || v > l.dims[i] {
			return false
		}
	}
	return true
}

// Successors returns the immediate generalizations of n (one level up in
// a single coordinate).
func (l *Lattice) Successors(n Node) []Node {
	var out []Node
	for i := range n {
		if n[i] < l.dims[i] {
			s := n.Clone()
			s[i]++
			out = append(out, s)
		}
	}
	return out
}

// Predecessors returns the immediate specializations of n (one level
// down in a single coordinate).
func (l *Lattice) Predecessors(n Node) []Node {
	var out []Node
	for i := range n {
		if n[i] > 0 {
			p := n.Clone()
			p[i]--
			out = append(out, p)
		}
	}
	return out
}

// NodesAtHeight enumerates all nodes with the given height, in
// lexicographic order. Heights outside [0, Height()] yield nil. The
// enumeration is stable: repeated calls return the same shared slice,
// which callers must treat as read-only (nodes are immutable by
// convention; Clone before mutating).
func (l *Lattice) NodesAtHeight(h int) []Node {
	if h < 0 || h > l.Height() {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if nodes, ok := l.byHeight[h]; ok {
		return nodes
	}
	var out []Node
	cur := make(Node, len(l.dims))
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(l.dims) {
			if remaining == 0 {
				out = append(out, cur.Clone())
			}
			return
		}
		max := l.dims[i]
		if max > remaining {
			max = remaining
		}
		for v := 0; v <= max; v++ {
			cur[i] = v
			rec(i+1, remaining-v)
		}
		cur[i] = 0
	}
	rec(0, h)
	if l.byHeight == nil {
		l.byHeight = make(map[int][]Node)
	}
	l.byHeight[h] = out
	return out
}

// AllNodes enumerates every node, level by level from bottom to top.
func (l *Lattice) AllNodes() []Node {
	out := make([]Node, 0, l.Size())
	for h := 0; h <= l.Height(); h++ {
		out = append(out, l.NodesAtHeight(h)...)
	}
	return out
}

// Walk visits every node bottom-up (by height, lexicographic within a
// height) until fn returns false.
func (l *Lattice) Walk(fn func(Node) bool) {
	for h := 0; h <= l.Height(); h++ {
		for _, n := range l.NodesAtHeight(h) {
			if !fn(n) {
				return
			}
		}
	}
}

// Minimal filters a set of nodes down to its minimal elements under the
// generalization partial order: nodes with no other set member strictly
// below them. This implements the paper's Definition 3 over the set of
// nodes satisfying a property.
func Minimal(nodes []Node) []Node {
	var out []Node
	for i, n := range nodes {
		minimal := true
		for j, m := range nodes {
			if i != j && n.StrictGeneralizationOf(m) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, n)
		}
	}
	return out
}
