package lattice

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// figure2 returns the paper's Figure 2 lattice: Sex (height 1) x ZipCode
// (height 2).
func figure2(t *testing.T) *Lattice {
	t.Helper()
	l, err := New([]int{1, 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

// TestFigure2Heights verifies the exact heights the paper lists for the
// Sex x ZipCode lattice: height(<S0,Z0>)=0, <S1,Z0>=1, <S0,Z1>=1,
// <S1,Z1>=2, <S1,Z2>=3, height(GL)=3.
func TestFigure2Heights(t *testing.T) {
	l := figure2(t)
	cases := []struct {
		node Node
		want int
	}{
		{Node{0, 0}, 0},
		{Node{1, 0}, 1},
		{Node{0, 1}, 1},
		{Node{1, 1}, 2},
		{Node{0, 2}, 2},
		{Node{1, 2}, 3},
	}
	for _, c := range cases {
		if got := c.node.Height(); got != c.want {
			t.Errorf("height(%v) = %d, want %d", c.node, got, c.want)
		}
	}
	if l.Height() != 3 {
		t.Errorf("height(GL) = %d, want 3", l.Height())
	}
	if l.Size() != 6 {
		t.Errorf("Size = %d, want 6", l.Size())
	}
}

func TestFigure2LevelEnumeration(t *testing.T) {
	l := figure2(t)
	wantCounts := []int{1, 2, 2, 1} // by height 0..3
	for h, want := range wantCounts {
		nodes := l.NodesAtHeight(h)
		if len(nodes) != want {
			t.Errorf("nodes at height %d = %d, want %d (%v)", h, len(nodes), want, nodes)
		}
	}
	if l.NodesAtHeight(-1) != nil || l.NodesAtHeight(4) != nil {
		t.Error("out-of-range heights should yield nil")
	}
	all := l.AllNodes()
	if len(all) != 6 {
		t.Errorf("AllNodes = %d, want 6", len(all))
	}
	if !all[0].Equal(l.Bottom()) || !all[5].Equal(l.Top()) {
		t.Errorf("AllNodes order wrong: %v", all)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := New([]int{1, -1}); err == nil {
		t.Error("negative dim accepted")
	}
}

func TestPartialOrder(t *testing.T) {
	a := Node{1, 0}
	b := Node{1, 2}
	c := Node{0, 2}
	if !b.GeneralizationOf(a) || !b.StrictGeneralizationOf(a) {
		t.Error("b should generalize a")
	}
	if a.GeneralizationOf(b) {
		t.Error("a should not generalize b")
	}
	if b.GeneralizationOf(Node{0}) {
		t.Error("length mismatch should be false")
	}
	// Incomparable pair.
	if a.GeneralizationOf(c) || c.GeneralizationOf(a) {
		t.Error("a and c should be incomparable")
	}
	if !a.GeneralizationOf(a) || a.StrictGeneralizationOf(a) {
		t.Error("reflexivity broken")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	l := figure2(t)
	succ := l.Successors(Node{0, 1})
	if len(succ) != 2 {
		t.Fatalf("successors = %v", succ)
	}
	if !succ[0].Equal(Node{1, 1}) || !succ[1].Equal(Node{0, 2}) {
		t.Errorf("successors = %v", succ)
	}
	if got := l.Successors(l.Top()); len(got) != 0 {
		t.Errorf("top successors = %v", got)
	}
	pred := l.Predecessors(Node{1, 1})
	if len(pred) != 2 {
		t.Fatalf("predecessors = %v", pred)
	}
	if got := l.Predecessors(l.Bottom()); len(got) != 0 {
		t.Errorf("bottom predecessors = %v", got)
	}
}

func TestContains(t *testing.T) {
	l := figure2(t)
	if !l.Contains(Node{1, 2}) || l.Contains(Node{2, 0}) || l.Contains(Node{0, 3}) ||
		l.Contains(Node{0}) || l.Contains(Node{-1, 0}) {
		t.Error("Contains broken")
	}
}

func TestLabelsAndKeys(t *testing.T) {
	n := Node{1, 2}
	if n.String() != "<1,2>" {
		t.Errorf("String = %q", n.String())
	}
	if n.Key() != "1,2" {
		t.Errorf("Key = %q", n.Key())
	}
	if got := n.Label([]string{"S", "Z"}); got != "<S1, Z2>" {
		t.Errorf("Label = %q", got)
	}
	if got := n.Label([]string{"S"}); got != "<S1, 2>" {
		t.Errorf("partial Label = %q", got)
	}
}

func TestMinimal(t *testing.T) {
	// From Table 4 (TS in 2..6): {<0,2>, <1,1>} are both 3-minimal; the
	// set also satisfying at <1,2> must be filtered out.
	nodes := []Node{{0, 2}, {1, 1}, {1, 2}}
	min := Minimal(nodes)
	if len(min) != 2 {
		t.Fatalf("Minimal = %v", min)
	}
	if !min[0].Equal(Node{0, 2}) || !min[1].Equal(Node{1, 1}) {
		t.Errorf("Minimal = %v", min)
	}
	if got := Minimal(nil); got != nil {
		t.Errorf("Minimal(nil) = %v", got)
	}
	// A single node is minimal.
	single := Minimal([]Node{{1, 1}})
	if len(single) != 1 {
		t.Errorf("Minimal single = %v", single)
	}
}

func TestWalkStopsEarly(t *testing.T) {
	l := figure2(t)
	visited := 0
	l.Walk(func(n Node) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Errorf("visited = %d, want 3", visited)
	}
}

// latticeGen generates random small lattices for property tests.
type latticeGen struct {
	l *Lattice
}

func (latticeGen) Generate(r *rand.Rand, _ int) reflect.Value {
	nd := 1 + r.Intn(4)
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = r.Intn(4)
	}
	l, _ := New(dims)
	return reflect.ValueOf(latticeGen{l: l})
}

// Property: the per-height node counts sum to Size(), and every node at
// height h actually has Height() == h.
func TestHeightPartitionProperty(t *testing.T) {
	f := func(g latticeGen) bool {
		total := 0
		for h := 0; h <= g.l.Height(); h++ {
			nodes := g.l.NodesAtHeight(h)
			total += len(nodes)
			for _, n := range nodes {
				if n.Height() != h || !g.l.Contains(n) {
					return false
				}
			}
		}
		return total == g.l.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: successors/predecessors are inverse relations and adjust
// height by exactly one.
func TestSuccessorPredecessorDuality(t *testing.T) {
	f := func(g latticeGen) bool {
		for _, n := range g.l.AllNodes() {
			for _, s := range g.l.Successors(n) {
				if s.Height() != n.Height()+1 || !s.StrictGeneralizationOf(n) {
					return false
				}
				found := false
				for _, p := range g.l.Predecessors(s) {
					if p.Equal(n) {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Minimal returns an antichain (no member generalizes
// another) and every input node generalizes some minimal node.
func TestMinimalAntichainProperty(t *testing.T) {
	f := func(g latticeGen, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		all := g.l.AllNodes()
		var subset []Node
		for _, n := range all {
			if r.Intn(3) == 0 {
				subset = append(subset, n)
			}
		}
		min := Minimal(subset)
		for i, a := range min {
			for j, b := range min {
				if i != j && a.StrictGeneralizationOf(b) {
					return false
				}
			}
		}
		for _, n := range subset {
			covered := false
			for _, m := range min {
				if n.GeneralizationOf(m) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAdultLatticeShape checks the paper's Adult lattice: 4x3x4x2 = 96
// nodes, height 9 (Section 4).
func TestAdultLatticeShape(t *testing.T) {
	l, err := New([]int{3, 2, 3, 1}) // Age, MaritalStatus, Race, Sex heights
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if l.Size() != 96 {
		t.Errorf("Adult lattice size = %d, want 96", l.Size())
	}
	if l.Height() != 9 {
		t.Errorf("Adult lattice height = %d, want 9", l.Height())
	}
}
