package lattice

import (
	"sync"
	"testing"
)

// TestNodesAtHeightMemoized: repeated enumeration of a level must return
// the same stable slice, and concurrent enumeration must be safe (run
// with -race).
func TestNodesAtHeightMemoized(t *testing.T) {
	l, err := New([]int{2, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h <= l.Height(); h++ {
		a := l.NodesAtHeight(h)
		b := l.NodesAtHeight(h)
		if len(a) != len(b) {
			t.Fatalf("height %d: lengths differ", h)
		}
		if len(a) > 0 && &a[0] != &b[0] {
			t.Errorf("height %d: enumeration not memoized", h)
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Errorf("height %d node %d: %v != %v", h, i, a[i], b[i])
			}
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total := 0
			for h := 0; h <= l.Height(); h++ {
				total += len(l.NodesAtHeight(h))
			}
			if total != l.Size() {
				t.Errorf("enumerated %d nodes, want %d", total, l.Size())
			}
		}()
	}
	wg.Wait()
}
