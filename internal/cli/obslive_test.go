package cli

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// obsAddrWriter is a goroutine-safe stderr sink that announces the
// observatory's bound address as soon as the CLI prints it.
type obsAddrWriter struct {
	mu    sync.Mutex
	b     strings.Builder
	addrC chan string
	sent  bool
}

func newObsAddrWriter() *obsAddrWriter {
	return &obsAddrWriter{addrC: make(chan string, 1)}
}

func (w *obsAddrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.b.Write(p)
	if !w.sent {
		s := w.b.String()
		if i := strings.Index(s, "listening on http://"); i >= 0 {
			rest := s[i+len("listening on http://"):]
			if j := strings.IndexAny(rest, " \n"); j > 0 {
				w.addrC <- rest[:j]
				w.sent = true
			}
		}
	}
	return len(p), nil
}

func (w *obsAddrWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

func obsGet(t *testing.T, addr, path string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestObsLive drives the whole live-observability loop the CI obs-live
// job exercises: pskanon runs with -obs-listen, an external poller
// scrapes /healthz, /progress and /metrics while the process is up, the
// -obs-linger grace keeps the server alive until the final report is
// scraped, and the final /metrics scrape must equal the -metrics-json
// file byte for byte.
func TestObsLive(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	outPath := filepath.Join(dir, "masked.csv")
	metricsPath := filepath.Join(dir, "metrics.json")
	stderr := newObsAddrWriter()
	var stdout strings.Builder

	done := make(chan error, 1)
	go func() {
		done <- Anon([]string{
			"-in", csvPath, "-job", jobPath, "-out", outPath,
			"-metrics-json", metricsPath,
			"-obs-listen", "127.0.0.1:0", "-obs-linger", "10s",
		}, &stdout, stderr)
	}()

	var addr string
	select {
	case addr = <-stderr.addrC:
	case err := <-done:
		t.Fatalf("Anon finished before announcing the observatory: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("no observatory address announced\nstderr: %s", stderr.String())
	}

	// Poll the live endpoints. The run is fast, so scrapes may land
	// before or after completion — either way every snapshot must be
	// well-formed and the evaluated count must never decrease.
	var lastEvaluated int64 = -1
	state := ""
	deadline := time.Now().Add(10 * time.Second)
	for state != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("observatory never reached done state\nstderr: %s", stderr.String())
		}
		var health struct {
			Status string `json:"status"`
			State  string `json:"state"`
		}
		if err := json.Unmarshal(obsGet(t, addr, "/healthz"), &health); err != nil {
			t.Fatal(err)
		}
		if health.Status != "ok" {
			t.Fatalf("healthz = %+v", health)
		}
		state = health.State

		var prog struct {
			State    string `json:"state"`
			Progress struct {
				NodesEvaluated int64   `json:"nodes_evaluated"`
				LatticeNodes   int64   `json:"lattice_nodes"`
				Fraction       float64 `json:"fraction"`
			} `json:"progress"`
		}
		if err := json.Unmarshal(obsGet(t, addr, "/progress"), &prog); err != nil {
			t.Fatal(err)
		}
		if prog.Progress.NodesEvaluated < lastEvaluated {
			t.Fatalf("evaluated went backwards: %d -> %d", lastEvaluated, prog.Progress.NodesEvaluated)
		}
		lastEvaluated = prog.Progress.NodesEvaluated
		if prog.Progress.Fraction < 0 || prog.Progress.Fraction > 1 {
			t.Fatalf("fraction out of range: %v", prog.Progress.Fraction)
		}
	}
	if lastEvaluated <= 0 {
		t.Fatalf("no nodes observed evaluated")
	}

	// The state is done: this scrape serves the frozen final report and
	// releases the -obs-linger wait.
	finalScrape := obsGet(t, addr, "/metrics")

	if err := <-done; err != nil {
		t.Fatalf("Anon: %v\nstderr: %s", err, stderr.String())
	}
	fileBytes, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(finalScrape) != string(fileBytes) {
		t.Fatalf("final /metrics scrape differs from -metrics-json file:\nscrape %d bytes\nfile   %d bytes",
			len(finalScrape), len(fileBytes))
	}
	var rep struct {
		Nodes struct {
			Evaluated int64 `json:"evaluated"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(finalScrape, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Nodes.Evaluated == 0 {
		t.Fatal("final report has no evaluations")
	}
}

// TestObsLiveExplain: -explain riding the same run must reconcile (the
// CLI errors out otherwise) and print the audit block.
func TestObsLiveExplain(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	outPath := filepath.Join(dir, "masked.csv")
	auditPath := filepath.Join(dir, "audit.json")
	var stdout, stderr strings.Builder
	err := Anon([]string{
		"-in", csvPath, "-job", jobPath, "-out", outPath,
		"-explain", "-explain-json", auditPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("Anon -explain: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "prune attribution by lattice level:") {
		t.Fatalf("explain block missing:\n%s", stderr.String())
	}
	b, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	var audit struct {
		Events int64 `json:"events"`
		Levels []struct {
			Evaluated int64 `json:"evaluated"`
		} `json:"levels"`
		Report *struct {
			Nodes struct {
				Evaluated int64 `json:"evaluated"`
			} `json:"nodes"`
		} `json:"report"`
	}
	if err := json.Unmarshal(b, &audit); err != nil {
		t.Fatal(err)
	}
	if audit.Events == 0 || len(audit.Levels) == 0 || audit.Report == nil {
		t.Fatalf("audit incomplete: %s", b)
	}
	var levelTotal int64
	for _, l := range audit.Levels {
		levelTotal += l.Evaluated
	}
	if levelTotal != audit.Report.Nodes.Evaluated {
		t.Fatalf("explain totals %d != report %d", levelTotal, audit.Report.Nodes.Evaluated)
	}
}
