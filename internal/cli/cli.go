// Package cli implements the command-line tools as testable functions:
// each binary under cmd/ is a thin wrapper over one entry point here.
// All entry points take an argument vector and explicit output streams
// and return an error instead of exiting, so the full CLI surface is
// covered by ordinary unit tests.
package cli

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"psk"
	"psk/internal/config"
	"psk/internal/dataset"
	"psk/internal/stream"
	"psk/internal/table"
)

// policyFlags are the optional policy-composition flags shared by
// pskcheck and pskanon. Any active flag extends the target property:
// the base p-sensitive k-anonymity is conjoined with the requested
// l-diversity / t-closeness / alpha constraints over the confidential
// attributes, and the tools exit non-zero when the composition is
// violated (pskcheck) or unachievable (pskanon).
type policyFlags struct {
	ldiv   int
	tclose float64
	alpha  float64
}

func registerPolicyFlags(fs *flag.FlagSet) *policyFlags {
	pf := &policyFlags{}
	fs.IntVar(&pf.ldiv, "ldiv", 0,
		"also require distinct l-diversity with this l on every confidential attribute (0 = off; violation exits non-zero)")
	fs.Float64Var(&pf.tclose, "tclose", -1,
		"also require t-closeness with this t on every confidential attribute (negative = off; violation exits non-zero)")
	fs.Float64Var(&pf.alpha, "alpha", 0,
		"also cap each confidential value's within-group frequency at alpha, i.e. (p,alpha)-sensitivity (0 = off; violation exits non-zero)")
	return pf
}

func (pf *policyFlags) active() bool { return pf.ldiv > 0 || pf.tclose >= 0 || pf.alpha > 0 }

// compose builds the composite target policy, or nil when no policy
// flag is active.
func (pf *policyFlags) compose(confs []string, p, k int) (psk.Policy, error) {
	if !pf.active() {
		return nil, nil
	}
	if len(confs) == 0 {
		return nil, fmt.Errorf("-ldiv/-tclose/-alpha require confidential attributes")
	}
	var parts []psk.Policy
	if pf.alpha > 0 {
		parts = append(parts, psk.PAlphaSensitivity(p, k, pf.alpha, confs))
	} else {
		parts = append(parts, psk.PSensitiveKAnonymity(p, k, confs))
	}
	for _, attr := range confs {
		if pf.ldiv > 0 {
			parts = append(parts, psk.DistinctLDiversity(attr, pf.ldiv))
		}
		if pf.tclose >= 0 {
			parts = append(parts, psk.TClose(attr, pf.tclose))
		}
	}
	return psk.AllOf(parts...), nil
}

// Anon implements pskanon: anonymize a CSV per a JSON job description.
func Anon(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pskanon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "input CSV file (header row required)")
		jobPath   = fs.String("job", "", "anonymization job JSON")
		out       = fs.String("out", "", "output CSV file (default: stdout)")
		algorithm = fs.String("algorithm", "samarati", "search algorithm: samarati, bottomup, exhaustive")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the search; on expiry the best result found so far is used (0 = no limit)")
		maxNodes  = fs.Int64("max-nodes", 0, "lattice-node evaluation budget for the search (0 = no limit)")
		deltas    = fs.String("stream", "", "JSONL delta file (adultgen -stream format): anonymize incrementally, republishing after every batch, and write the final masked table")
		frontier  = fs.Bool("frontier", false, "print the utility-aware Pareto frontier over satisfying nodes as a table on stdout (the masked CSV is then only written with -out)")
		frontJSON = fs.Bool("frontier-json", false, "like -frontier but emit the frontier as a JSON array")
		workers   = fs.Int("workers", 0, "worker pool size for lattice evaluation (0 = one per CPU)")
	)
	pf := registerPolicyFlags(fs)
	prof := registerProfileFlags(fs)
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *jobPath == "" {
		fs.Usage()
		return fmt.Errorf("-in and -job are required")
	}
	wantFrontier := *frontier || *frontJSON
	if wantFrontier && *deltas != "" {
		return fmt.Errorf("-frontier/-frontier-json cannot be combined with -stream")
	}
	stopProf, err := prof.start(stderr)
	if err != nil {
		return err
	}
	defer stopProf()
	if err := of.setup(stderr); err != nil {
		return err
	}
	defer of.close(stderr)

	// Loading and validation: failures here are input errors (exit 2),
	// not verdicts — the data was never judged.
	job, err := config.Load(*jobPath)
	if err != nil {
		return inputErr(err)
	}
	header, err := csvHeader(*in)
	if err != nil {
		return inputErr(err)
	}
	schema, err := job.Schema(header)
	if err != nil {
		return inputErr(err)
	}
	data, err := psk.ReadCSVFile(*in, &schema)
	if err != nil {
		return inputErr(err)
	}
	hs, err := job.BuildHierarchies()
	if err != nil {
		return inputErr(err)
	}

	cfg := psk.Config{
		QuasiIdentifiers: job.QuasiIdentifiers,
		Confidential:     job.Confidential,
		Hierarchies:      hs,
		K:                job.K,
		P:                job.P,
		MaxSuppress:      job.MaxSuppress,
		Budget:           psk.Budget{Deadline: *timeout, MaxNodes: *maxNodes},
		Workers:          *workers,
		Recorder:         of.rec,
		Tracer:           of.tracer,
		Frontier:         psk.FrontierConfig{Enabled: wantFrontier},
	}
	pol, err := pf.compose(job.Confidential, job.P, job.K)
	if err != nil {
		return err
	}
	cfg.Policy = pol
	switch *algorithm {
	case "samarati":
		cfg.Algorithm = psk.AlgorithmSamarati
	case "bottomup":
		cfg.Algorithm = psk.AlgorithmBottomUp
	case "exhaustive":
		cfg.Algorithm = psk.AlgorithmExhaustive
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}

	if *deltas != "" {
		return anonStream(data, cfg, *deltas, *out, of, stdout, stderr)
	}

	res, err := psk.Anonymize(data, cfg)
	if err != nil {
		return err
	}
	if err := of.report(res.Report, stderr); err != nil {
		return err
	}
	if res.StopReason.Partial() {
		fmt.Fprintf(stderr, "warning: search stopped early (%s); the result reflects only the evaluated part of the lattice\n",
			res.StopReason)
	}
	if !res.Found {
		if res.StopReason.Partial() {
			return fmt.Errorf("no generalization found before the search stopped (%s); raise -timeout/-max-nodes to search the full lattice",
				res.StopReason)
		}
		if pol != nil {
			return fmt.Errorf("no generalization satisfies %s within %d suppressions", pol.Name(), job.MaxSuppress)
		}
		maxP, err := psk.MaxP(data, job.Confidential)
		if err == nil && job.P > maxP {
			return fmt.Errorf("no solution: p = %d exceeds maxP = %d (necessary condition 1)", job.P, maxP)
		}
		return fmt.Errorf("no generalization satisfies %d-sensitive %d-anonymity within %d suppressions",
			job.P, job.K, job.MaxSuppress)
	}

	if pol != nil {
		fmt.Fprintf(stderr, "policy: %s\n", pol.Name())
	}
	fmt.Fprintf(stderr, "node: %s (height %d)\n", res.Node, res.Node.Height())
	fmt.Fprintf(stderr, "rows: %d released, %d suppressed\n", res.Masked.NumRows(), res.Suppressed)
	if rep, err := psk.MeasureUtility(data, res.Masked, cfg, res.Node); err == nil {
		fmt.Fprintf(stderr, "utility: precision %.3f, discernibility %d, avg group ratio %.2f\n",
			rep.Precision, rep.Discernibility, rep.AvgGroupRatio)
	}
	if len(res.AllMinimal) > 1 {
		fmt.Fprintf(stderr, "all minimal nodes: %v\n", res.AllMinimal)
	}

	if wantFrontier {
		// Frontier mode owns stdout; the masked CSV is only written when
		// the caller named a file for it.
		fmt.Fprintf(stderr, "frontier: %d members\n", len(res.Frontier))
		if *frontJSON {
			if err := writeFrontierJSON(stdout, res.Frontier); err != nil {
				return err
			}
		} else if err := writeFrontierTable(stdout, res.Frontier); err != nil {
			return err
		}
		if *out != "" {
			return res.Masked.WriteCSVFile(*out)
		}
		return nil
	}

	if *out == "" {
		return res.Masked.WriteCSV(stdout)
	}
	return res.Masked.WriteCSVFile(*out)
}

// anonStream is pskanon's -stream mode: open an incremental session on
// the input table, absorb the delta file batch by batch with a
// republish after each, and write the final masked table. Per-batch
// verdict lines go to stderr; the CSV on stdout/-out reflects the live
// rows after the last batch.
func anonStream(data *psk.Table, cfg psk.Config, deltaPath, out string, of *obsFlags, stdout, stderr io.Writer) error {
	s, err := psk.OpenSession(data, cfg)
	if err != nil {
		return err
	}
	cols := s.Schema().Names()
	report := func(label string, res *psk.Result) {
		if res.Found {
			fmt.Fprintf(stderr, "%s: node %s, %d live rows, %d suppressed\n", label, res.Node, s.NumLive(), res.Suppressed)
		} else {
			fmt.Fprintf(stderr, "%s: no satisfying generalization (%d live rows)\n", label, s.NumLive())
		}
	}
	res, err := s.Republish()
	if err != nil {
		return err
	}
	report("initial", res)

	f, err := os.Open(deltaPath)
	if err != nil {
		return inputErr(err)
	}
	defer f.Close()
	r := stream.NewReader(f)
	for {
		b, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return inputErr(err)
		}
		if err := b.Validate(cols); err != nil {
			return inputErr(fmt.Errorf("%s line %d: %w", deltaPath, r.Line(), err))
		}
		if err := s.Apply(b.Append, b.Retire); err != nil {
			return inputErr(fmt.Errorf("%s line %d: %w", deltaPath, r.Line(), err))
		}
		if res, err = s.Republish(); err != nil {
			return err
		}
		report(fmt.Sprintf("batch %d", r.Line()), res)
	}

	if err := of.report(res.Report, stderr); err != nil {
		return err
	}
	if !res.Found {
		return fmt.Errorf("no generalization satisfies the property on the rows after the final batch")
	}
	mm, suppressed, err := s.Materialize()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "final: node %s, %d rows released, %d suppressed\n", s.Published(), mm.NumRows(), suppressed)
	if out == "" {
		return mm.WriteCSV(stdout)
	}
	return mm.WriteCSVFile(out)
}

// Check implements pskcheck: verify privacy properties or run SQL.
func Check(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pskcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in   = fs.String("in", "", "input CSV file (header row required)")
		qi   = fs.String("qi", "", "comma-separated quasi-identifier attributes")
		conf = fs.String("conf", "", "comma-separated confidential attributes")
		k    = fs.Int("k", 2, "k-anonymity parameter")
		p    = fs.Int("p", 2, "p-sensitivity parameter")
		sql  = fs.String("sql", "", "run this SQL query against the file (table name: T) and exit")
		verb = fs.Bool("violations", false, "list each violating QI-group")
	)
	pf := registerPolicyFlags(fs)
	prof := registerProfileFlags(fs)
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	stopProf, err := prof.start(stderr)
	if err != nil {
		return err
	}
	defer stopProf()
	if err := of.setup(stderr); err != nil {
		return err
	}
	defer of.close(stderr)
	data, err := psk.ReadCSVFile(*in, nil)
	if err != nil {
		return inputErr(err)
	}

	if *sql != "" {
		out, err := psk.Query(map[string]*psk.Table{"T": data}, *sql)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out.Format(-1))
		return nil
	}

	qis := splitList(*qi)
	confs := splitList(*conf)
	if len(qis) == 0 {
		return fmt.Errorf("-qi is required (or use -sql)")
	}
	if pf.active() && len(confs) == 0 {
		return fmt.Errorf("-ldiv/-tclose/-alpha require -conf")
	}

	fmt.Fprintf(stdout, "rows: %d\n", data.NumRows())
	ok, err := psk.IsKAnonymous(data, qis, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d-anonymity: %v\n", *k, ok)

	riskM, err := psk.MeasureRisk(data, qis)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "risk: prosecutor max %.3f, marketer %.3f, %d unique records\n",
		riskM.ProsecutorMax, riskM.MarketerRisk, riskM.UniqueRecords)

	if len(confs) == 0 {
		return nil
	}

	maxP, err := psk.MaxP(data, confs)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "maxP (necessary condition 1): %d\n", maxP)
	if *p <= maxP {
		mg, err := psk.MaxGroups(data, confs, *p)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "maxGroups for p=%d (necessary condition 2): %d\n", *p, mg)
	}

	s, err := psk.Sensitivity(data, qis, confs)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sensitivity (largest satisfied p): %d\n", s)

	psOK, err := psk.IsPSensitiveKAnonymous(data, qis, confs, *p, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d-sensitive %d-anonymity: %v\n", *p, *k, psOK)

	disc, err := psk.AttributeDisclosures(data, qis, confs, *p)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "attribute disclosures at p=%d (group x attribute pairs): %d\n", *p, disc)

	if *verb {
		vs, err := psk.ListViolations(data, qis, confs, *p, *k)
		if err != nil {
			return err
		}
		for _, v := range vs {
			why := ""
			if v.TooSmall {
				why = fmt.Sprintf("size %d < k", v.Size)
			}
			for attr, d := range v.LowDiversity {
				if why != "" {
					why += "; "
				}
				why += fmt.Sprintf("%s has %d < p distinct", attr, d)
			}
			fmt.Fprintf(stdout, "  violation [%s]: %s\n", v.KeyString(), why)
		}
	}

	// Composite policy verdict: report and exit non-zero on violation,
	// so scripts can gate a release on `pskcheck && publish`.
	pol, err := pf.compose(confs, *p, *k)
	if err != nil {
		return err
	}
	if pol == nil && of.active() {
		// No policy flags, but telemetry was requested: time the
		// built-in target so -stats/-metrics-json report a per-policy
		// row instead of an empty recorder. The printed verdicts above
		// are untouched.
		if _, err := psk.EvaluatePolicy(data, qis, confs, psk.Instrument(psk.PSensitiveKAnonymity(*p, *k, confs), of.rec)); err != nil {
			return err
		}
	}
	if pol != nil {
		verdict, err := psk.EvaluatePolicy(data, qis, confs, psk.Instrument(pol, of.rec))
		if err != nil {
			return err
		}
		if !verdict.Satisfied {
			fmt.Fprintf(stdout, "policy %s: VIOLATED (%s, QI-group #%d)\n", pol.Name(), verdict.Reason, verdict.Group)
			if rerr := of.report(nil, stderr); rerr != nil {
				return rerr
			}
			return fmt.Errorf("policy %s violated: %s", pol.Name(), verdict.Reason)
		}
		fmt.Fprintf(stdout, "policy %s: satisfied (%d QI-groups)\n", pol.Name(), verdict.Groups)
	}
	return of.report(nil, stderr)
}

// Gen implements adultgen: emit synthetic Adult microdata, or with
// -stream a JSONL delta file (append/retire batches) against a base
// table of the same size.
func Gen(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("adultgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int("n", 4000, "number of records")
		scale   = fs.Int("scale", 0, "emit the full 48,842-row Adult shape times this factor (overrides -n)")
		seed    = fs.Int64("seed", 2006, "generator seed")
		out     = fs.String("out", "", "output file (default: stdout)")
		doDelta = fs.Bool("stream", false, "emit a JSONL delta stream (for pskanon -stream) instead of CSV; -n/-scale size the base table the deltas run against")
		batches = fs.Int("batches", 8, "with -stream: number of delta batches")
		churn   = fs.Float64("churn", 0.01, "with -stream: fraction of the base rows each batch retires and re-appends")
	)
	prof := registerProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start(stderr)
	if err != nil {
		return err
	}
	defer stopProf()
	if *doDelta {
		baseRows := *n
		if *scale > 0 {
			baseRows = *scale * dataset.AdultRows
		}
		bs, err := dataset.GenerateBatches(baseRows, *batches, *churn, *seed)
		if err != nil {
			return err
		}
		if *out == "" {
			return stream.Write(stdout, bs)
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := stream.Write(f, bs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d delta batches against %d base rows to %s\n", len(bs), baseRows, *out)
		return nil
	}
	var tbl *table.Table
	if *scale > 0 {
		tbl, err = dataset.GenerateScaled(*scale, *seed)
	} else {
		tbl, err = dataset.Generate(*n, *seed)
	}
	if err != nil {
		return err
	}
	if *out == "" {
		return tbl.WriteCSV(stdout)
	}
	if err := tbl.WriteCSVFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d records to %s\n", tbl.NumRows(), *out)
	return nil
}

func csvHeader(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.TrimLeadingSpace = true
	return r.Read()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
