package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"psk/internal/dataset"
	"psk/internal/experiments"
	"psk/internal/table"
)

// ExpNames lists the experiment identifiers Exp accepts, in the order
// "all" runs them.
var ExpNames = []string{"attack", "table3", "figure1", "figure2", "figure3",
	"table4", "example1", "table7", "table8", "ablation", "utility", "methods", "decay", "policy",
	"telemetry", "budget", "frontier", "observatory", "serve"}

// Exp implements pskexp: regenerate the paper's tables and figures.
func Exp(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pskexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment to run (all, "+strings.Join(ExpNames, ", ")+")")
		adult    = fs.String("adult", "", "path to a real UCI adult.data file (default: synthetic Adult)")
		seed     = fs.Int64("seed", 17, "sample seed for the Adult experiments")
		ts       = fs.Int("ts", 0, "suppression threshold for Table 8")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget for the E18 budget experiment's flag rows (0 = off)")
		maxNodes = fs.Int64("max-nodes", 0, "node budget for the E18 budget experiment's flag rows (0 = off)")
	)
	prof := registerProfileFlags(fs)
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.start(stderr)
	if err != nil {
		return err
	}
	defer stopProf()
	if err := of.setup(stderr); err != nil {
		return err
	}
	defer of.close(stderr)

	var source *table.Table
	if *adult != "" {
		var err error
		source, err = dataset.Load(*adult)
		if err != nil {
			return inputErr(err)
		}
		fmt.Fprintf(stdout, "using real Adult data: %d records from %s\n\n", source.NumRows(), *adult)
	}

	emit := func(title, body string) error {
		_, err := fmt.Fprintf(stdout, "=== %s ===\n%s\n", title, body)
		return err
	}

	runners := map[string]func() error{
		"attack": func() error {
			res, err := experiments.RunMotivatingAttack()
			if err != nil {
				return err
			}
			return emit("E1: motivating attack (Tables 1-2)", res.Format())
		},
		"table3": func() error {
			res, err := experiments.RunTable3Sensitivity()
			if err != nil {
				return err
			}
			return emit("E2: Table 3 sensitivity analysis", res.Format())
		},
		"figure1": func() error {
			res, err := experiments.RunFigure1()
			if err != nil {
				return err
			}
			return emit("E3: Figure 1 hierarchies", res.Format())
		},
		"figure2": func() error {
			res, err := experiments.RunFigure2()
			if err != nil {
				return err
			}
			return emit("E4: Figure 2 lattice", res.Format())
		},
		"figure3": func() error {
			res, err := experiments.RunFigure3()
			if err != nil {
				return err
			}
			return emit("E5: Figure 3 violation counts", res.Format())
		},
		"table4": func() error {
			res, err := experiments.RunTable4()
			if err != nil {
				return err
			}
			return emit("E6: Table 4 minimal generalizations", res.Format())
		},
		"example1": func() error {
			res, err := experiments.RunExample1()
			if err != nil {
				return err
			}
			return emit("E7: Tables 5-6 frequency sets", res.Format())
		},
		"table7": func() error {
			im := source
			if im == nil {
				var err error
				im, err = dataset.Generate(4000, 2006)
				if err != nil {
					return err
				}
			}
			res, err := experiments.RunTable7(im)
			if err != nil {
				return err
			}
			return emit("E8: Table 7 Adult hierarchies", res.Format())
		},
		"table8": func() error {
			res, err := experiments.RunTable8(experiments.Table8Config{
				Source:      source,
				SampleSeed:  *seed,
				MaxSuppress: *ts,
			})
			if err != nil {
				return err
			}
			return emit("E9: Table 8 attribute disclosures", res.Format())
		},
		"ablation": func() error {
			res, err := experiments.RunAblation(nil, 3, 2, source, *seed)
			if err != nil {
				return err
			}
			return emit("E10: necessary-condition ablation", res.Format())
		},
		"utility": func() error {
			res, err := experiments.RunUtility(2000, nil, 1, source, *seed)
			if err != nil {
				return err
			}
			return emit("E11: full-domain vs Mondrian vs GreedyCluster utility", res.Format())
		},
		"decay": func() error {
			res, err := experiments.RunDisclosureDecay(2000, nil, source, *seed)
			if err != nil {
				return err
			}
			return emit("E15: attribute disclosures vs k", res.Format())
		},
		"methods": func() error {
			res, err := experiments.RunMethods(2000, 3, source, *seed)
			if err != nil {
				return err
			}
			return emit("E14: masking methods comparison", res.Format())
		},
		"policy": func() error {
			res, err := experiments.RunPolicyComposite(1000, 3, 2, source, *seed)
			if err != nil {
				return err
			}
			return emit("E16: composite-policy search", res.Format())
		},
		"telemetry": func() error {
			res, err := experiments.RunTelemetry(1000, 3, 2, source, *seed, of.tracer)
			if err != nil {
				return err
			}
			if of.stats {
				for _, row := range res.Rows {
					fmt.Fprintf(stderr, "--- telemetry: %s ---\n%s", row.Strategy, row.Report.String())
				}
			}
			if of.metricsJSON != "" {
				if err := writeJSON(of.metricsJSON, res.Reports()); err != nil {
					return err
				}
			}
			return emit("E17: search telemetry", res.Format())
		},
		"budget": func() error {
			res, err := experiments.RunBudget(1000, 3, 2, source, *seed, *timeout, *maxNodes)
			if err != nil {
				return err
			}
			return emit("E18: budget-bounded search", res.Format())
		},
		"frontier": func() error {
			res, err := experiments.RunFrontier(2000, source, *seed)
			if err != nil {
				return err
			}
			return emit("E19: utility-aware Pareto frontier", res.Format())
		},
		"observatory": func() error {
			res, err := experiments.RunObservatory(20000, 3, 2, source, *seed)
			if err != nil {
				return err
			}
			return emit("E20: live observatory", res.Format())
		},
		"serve": func() error {
			res, err := experiments.RunServe()
			if err != nil {
				return err
			}
			return emit("E21: anonymization-as-a-service load study", res.Format())
		},
	}

	if *exp == "all" {
		for _, name := range ExpNames {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	runner, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (available: all, %s)", *exp, strings.Join(ExpNames, ", "))
	}
	return runner()
}
