package cli

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchMetrics is the per-benchmark summary `make bench-json` records:
// wall time and allocation count per iteration, the two numbers the
// roll-up optimisation is judged by.
type BenchMetrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// gomaxprocsSuffix is the "-8" style suffix `go test` appends to
// benchmark names; stripped so the JSON keys are stable across
// machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// BenchJSON converts `go test -bench -benchmem` output read from in
// into a JSON object mapping benchmark name to its metrics, written to
// out. Lines that are not benchmark results (headers, PASS, ok) are
// ignored; a benchmark run twice keeps the last result.
func BenchJSON(in io.Reader, out io.Writer) error {
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseBench reads `go test -bench` output into per-benchmark metrics.
func parseBench(in io.Reader) (map[string]BenchMetrics, error) {
	results := make(map[string]BenchMetrics)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var m BenchMetrics
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				ok = true
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark results on input")
	}
	return results, nil
}

// BenchCompare reads fresh `go test -bench` output from in and judges
// it against a committed baseline snapshot (a BenchJSON file read from
// baseline): every benchmark present in both must not regress its
// ns/op by more than tolerance (a fraction: 0.15 allows +15%). A table
// of deltas is written to out; regressions beyond tolerance make the
// call fail, listing each offender, so CI can gate merges on it.
// Benchmarks on only one side are reported and skipped, but the
// intersection must be non-empty — comparing disjoint snapshots is a
// harness bug, not a pass.
func BenchCompare(in, baseline io.Reader, tolerance float64, out io.Writer) error {
	if tolerance < 0 {
		return fmt.Errorf("benchjson: negative tolerance %g", tolerance)
	}
	fresh, err := parseBench(in)
	if err != nil {
		return err
	}
	var base map[string]BenchMetrics
	if err := json.NewDecoder(baseline).Decode(&base); err != nil {
		return fmt.Errorf("benchjson: baseline: %w", err)
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		if _, ok := base[name]; ok {
			names = append(names, name)
		} else {
			fmt.Fprintf(out, "new (no baseline): %s\n", name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("benchjson: no benchmarks in common with the baseline")
	}
	var regressions []string
	for _, name := range names {
		b, f := base[name], fresh[name]
		if b.NsPerOp <= 0 {
			fmt.Fprintf(out, "skip (zero baseline): %s\n", name)
			continue
		}
		delta := f.NsPerOp/b.NsPerOp - 1
		verdict := "ok"
		if delta > tolerance {
			verdict = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s (+%.1f%%)", name, 100*delta))
		}
		fmt.Fprintf(out, "%-60s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, f.NsPerOp, 100*delta, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchjson: %d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressions), 100*tolerance, strings.Join(regressions, ", "))
	}
	return nil
}
