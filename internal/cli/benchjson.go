package cli

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// BenchMetrics is the per-benchmark summary `make bench-json` records:
// wall time and allocation count per iteration, the two numbers the
// roll-up optimisation is judged by.
type BenchMetrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// gomaxprocsSuffix is the "-8" style suffix `go test` appends to
// benchmark names; stripped so the JSON keys are stable across
// machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// BenchJSON converts `go test -bench -benchmem` output read from in
// into a JSON object mapping benchmark name to its metrics, written to
// out. Lines that are not benchmark results (headers, PASS, ok) are
// ignored; a benchmark run twice keeps the last result.
func BenchJSON(in io.Reader, out io.Writer) error {
	results := make(map[string]BenchMetrics)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var m BenchMetrics
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("benchjson: %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				ok = true
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark results on input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
