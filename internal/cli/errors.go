package cli

import "errors"

// Exit codes of the release-pipeline tools. A violated property and a
// broken input must be distinguishable to a shell script: `pskcheck &&
// publish` wants to halt on both, but a retry loop or a CI gate wants
// to treat "the data fails the policy" (keep the data out) differently
// from "the invocation never examined the data" (fix the job file).
const (
	// ExitOK: the tool ran and, where applicable, the property held.
	ExitOK = 0
	// ExitViolation: the tool ran but the property was violated or no
	// satisfying generalization exists — a verdict, not a failure.
	ExitViolation = 1
	// ExitInputError: the input layer rejected the invocation (missing
	// file, malformed CSV, invalid job config, bad hierarchy) before
	// any verdict was possible.
	ExitInputError = 2
)

// InputError marks an error from the loading/validation phase: the
// tool never got far enough to judge the data. ExitCode maps it to
// ExitInputError.
type InputError struct{ Err error }

func (e *InputError) Error() string { return e.Err.Error() }
func (e *InputError) Unwrap() error { return e.Err }

// inputErr wraps err as an InputError; nil stays nil so loader call
// sites can wrap unconditionally.
func inputErr(err error) error {
	if err == nil {
		return nil
	}
	return &InputError{Err: err}
}

// ExitCode maps an entry-point error to the process exit code of the
// convention above.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var ie *InputError
	if errors.As(err, &ie) {
		return ExitInputError
	}
	return ExitViolation
}
