package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"psk"
)

// Frontier rendering for pskanon -frontier / -frontier-json. Both
// renderings are deterministic functions of the frontier slice: fixed
// column order, fixed float formats, entries in the engine's lattice
// walk order. Because the frontier itself is byte-identical at every
// worker count, so is the rendered output.

// frontierRow is the serialized shape of one frontier member.
type frontierRow struct {
	Rank             int     `json:"rank"`
	Node             string  `json:"node"`
	Height           int     `json:"height"`
	Groups           int     `json:"groups"`
	MinGroup         int     `json:"min_group"`
	Suppressed       int     `json:"suppressed"`
	Precision        float64 `json:"precision"`
	Discernibility   int     `json:"discernibility"`
	AvgGroupRatio    float64 `json:"avg_group_ratio"`
	SuppressionRatio float64 `json:"suppression_ratio"`
	EntropyLossBits  float64 `json:"entropy_loss_bits"`
}

func frontierRows(fr []psk.Frontier) []frontierRow {
	rows := make([]frontierRow, len(fr))
	for i, f := range fr {
		rows[i] = frontierRow{
			Rank:             f.Rank,
			Node:             f.Node.String(),
			Height:           f.Node.Height(),
			Groups:           f.Groups,
			MinGroup:         f.MinGroup,
			Suppressed:       f.Suppressed,
			Precision:        f.Loss.Precision,
			Discernibility:   f.Loss.Discernibility,
			AvgGroupRatio:    f.Loss.AvgGroupRatio,
			SuppressionRatio: f.Loss.SuppressionRatio,
			EntropyLossBits:  f.Loss.EntropyLossBits,
		}
	}
	return rows
}

// writeFrontierTable renders the frontier as an aligned text table.
func writeFrontierTable(w io.Writer, fr []psk.Frontier) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "RANK\tNODE\tHEIGHT\tGROUPS\tMIN\tSUPP\tPREC\tDM\tC_AVG\tSUPP_RATIO\tENTROPY_BITS")
	for _, r := range frontierRows(fr) {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%.4f\t%d\t%.3f\t%.4f\t%.4f\n",
			r.Rank, r.Node, r.Height, r.Groups, r.MinGroup, r.Suppressed,
			r.Precision, r.Discernibility, r.AvgGroupRatio, r.SuppressionRatio, r.EntropyLossBits)
	}
	return tw.Flush()
}

// writeFrontierJSON renders the frontier as a JSON array.
func writeFrontierJSON(w io.Writer, fr []psk.Frontier) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(frontierRows(fr))
}
