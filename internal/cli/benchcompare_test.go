package cli

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
BenchmarkParallelSearch/serial-8         	     100	  11000000 ns/op	    5000 allocs/op
BenchmarkPolicy/basic-8                  	   10000	    100000 ns/op	     200 allocs/op
BenchmarkNew-8                           	   10000	     90000 ns/op	     100 allocs/op
PASS
ok  	psk	1.0s
`

func TestBenchCompare(t *testing.T) {
	baseline := `{
	  "BenchmarkParallelSearch/serial": {"ns_per_op": 10000000, "allocs_per_op": 5000},
	  "BenchmarkPolicy/basic": {"ns_per_op": 100000, "allocs_per_op": 200},
	  "BenchmarkGone": {"ns_per_op": 1, "allocs_per_op": 1}
	}`

	t.Run("within tolerance", func(t *testing.T) {
		var out strings.Builder
		// ParallelSearch is +10% against a 15% tolerance; Policy is flat.
		err := BenchCompare(strings.NewReader(benchOutput), strings.NewReader(baseline), 0.15, &out)
		if err != nil {
			t.Fatalf("BenchCompare: %v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "new (no baseline): BenchmarkNew") {
			t.Errorf("baseline-less benchmark not reported:\n%s", out.String())
		}
	})

	t.Run("regression fails", func(t *testing.T) {
		var out strings.Builder
		err := BenchCompare(strings.NewReader(benchOutput), strings.NewReader(baseline), 0.05, &out)
		if err == nil {
			t.Fatalf("+10%% accepted at 5%% tolerance:\n%s", out.String())
		}
		if !strings.Contains(err.Error(), "BenchmarkParallelSearch/serial") {
			t.Errorf("offender not named: %v", err)
		}
		if strings.Contains(err.Error(), "BenchmarkPolicy/basic") {
			t.Errorf("flat benchmark blamed: %v", err)
		}
	})

	t.Run("improvement passes at zero tolerance", func(t *testing.T) {
		fast := strings.Replace(benchOutput, "11000000 ns/op", "9000000 ns/op", 1)
		var out strings.Builder
		if err := BenchCompare(strings.NewReader(fast), strings.NewReader(baseline), 0, &out); err != nil {
			t.Fatalf("improvement rejected: %v", err)
		}
	})

	t.Run("disjoint snapshots fail", func(t *testing.T) {
		var out strings.Builder
		err := BenchCompare(strings.NewReader(benchOutput), strings.NewReader(`{"Other": {"ns_per_op": 1}}`), 0.15, &out)
		if err == nil || !strings.Contains(err.Error(), "no benchmarks in common") {
			t.Errorf("disjoint comparison: %v", err)
		}
	})

	t.Run("bad inputs fail", func(t *testing.T) {
		var out strings.Builder
		if err := BenchCompare(strings.NewReader(benchOutput), strings.NewReader("{not json"), 0.15, &out); err == nil {
			t.Error("malformed baseline accepted")
		}
		if err := BenchCompare(strings.NewReader("no benchmarks here"), strings.NewReader(baseline), 0.15, &out); err == nil {
			t.Error("empty bench output accepted")
		}
		if err := BenchCompare(strings.NewReader(benchOutput), strings.NewReader(baseline), -1, &out); err == nil {
			t.Error("negative tolerance accepted")
		}
	})
}
