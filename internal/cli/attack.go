package cli

import (
	"flag"
	"fmt"
	"io"
	"sort"

	"psk"
)

// Attack implements pskattack: simulate the paper's record-linkage
// intruder against a masked CSV using an external identified CSV, and
// report identity and attribute disclosure.
func Attack(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pskattack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		masked   = fs.String("masked", "", "masked (released) CSV file")
		external = fs.String("external", "", "intruder's identified CSV file")
		idAttr   = fs.String("id", "Name", "identifier column of the external file")
		qi       = fs.String("qi", "", "comma-separated key attributes shared by both files")
		conf     = fs.String("conf", "", "comma-separated confidential attributes of the masked file")
		verbose  = fs.Bool("leaks", false, "list each learned fact")
	)
	prof := registerProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *masked == "" || *external == "" || *qi == "" {
		fs.Usage()
		return fmt.Errorf("-masked, -external and -qi are required")
	}
	stopProf, err := prof.start(stderr)
	if err != nil {
		return err
	}
	defer stopProf()
	mm, err := psk.ReadCSVFile(*masked, nil)
	if err != nil {
		return fmt.Errorf("masked file: %w", err)
	}
	ext, err := psk.ReadCSVFile(*external, nil)
	if err != nil {
		return fmt.Errorf("external file: %w", err)
	}
	qis := splitList(*qi)
	confs := splitList(*conf)

	// The CLI attack matches released values directly: the external
	// file is expected to hold values at the same granularity as the
	// release (pre-generalize it with pskanon's hierarchies if needed).
	in := &psk.Intruder{External: ext, IDAttr: *idAttr, QIs: qis}
	links, err := in.Attack(mm, confs)
	if err != nil {
		return err
	}
	sum := psk.SummarizeAttack(links)
	fmt.Fprintf(stdout, "individuals: %d\n", sum.Individuals)
	fmt.Fprintf(stdout, "linked to at least one released record: %d\n", sum.Linked)
	fmt.Fprintf(stdout, "uniquely identified (identity disclosure): %d\n", sum.UniquelyIdentified)
	fmt.Fprintf(stdout, "learned a confidential value (attribute disclosure): %d\n", sum.AttributeDisclosed)
	fmt.Fprintf(stdout, "max identity risk: %.3f\n", sum.MaxIdentityRisk)
	fmt.Fprintf(stdout, "expected re-identifications: %.2f\n", sum.ExpectedReidentifications)
	if *verbose {
		sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
		for _, l := range links {
			attrs := make([]string, 0, len(l.Learned))
			for a := range l.Learned {
				attrs = append(attrs, a)
			}
			sort.Strings(attrs)
			for _, a := range attrs {
				fmt.Fprintf(stdout, "  LEAK: %s has %s = %s\n", l.ID, a, l.Learned[a])
			}
		}
	}
	return nil
}
