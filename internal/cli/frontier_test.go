package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psk"
)

// anonFrontier runs pskanon over the patients fixture with the given
// extra flags and returns (stdout, stderr).
func anonFrontier(t *testing.T, extra ...string) (string, string) {
	t.Helper()
	csvPath, jobPath, _ := writeFixtures(t)
	args := append([]string{"-in", csvPath, "-job", jobPath}, extra...)
	var stdout, stderr strings.Builder
	if err := Anon(args, &stdout, &stderr); err != nil {
		t.Fatalf("Anon %v: %v\nstderr: %s", extra, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestAnonFrontierDeterministic pins the acceptance criterion: the
// rendered frontier is byte-identical across worker counts.
func TestAnonFrontierDeterministic(t *testing.T) {
	out1, err1 := anonFrontier(t, "-frontier", "-workers", "1")
	out4, _ := anonFrontier(t, "-frontier", "-workers", "4")
	if out1 != out4 {
		t.Errorf("frontier table differs between -workers 1 and 4:\n--- w1 ---\n%s--- w4 ---\n%s", out1, out4)
	}
	if !strings.Contains(out1, "RANK") || !strings.Contains(out1, "ENTROPY_BITS") {
		t.Errorf("missing table header:\n%s", out1)
	}
	if !strings.Contains(err1, "frontier: ") {
		t.Errorf("stderr missing frontier summary:\n%s", err1)
	}
	// Frontier mode without -out must not leak the masked CSV to stdout.
	if strings.Contains(out1, "Illness") {
		t.Errorf("masked CSV leaked into frontier stdout:\n%s", out1)
	}
}

// TestAnonFrontierJSON checks the JSON rendering: parseable, Pareto
// rank 0 only by default, every member at or above k, and byte-stable
// across worker counts.
func TestAnonFrontierJSON(t *testing.T) {
	out1, _ := anonFrontier(t, "-frontier-json", "-workers", "1")
	out4, _ := anonFrontier(t, "-frontier-json", "-workers", "4")
	if out1 != out4 {
		t.Errorf("frontier JSON differs between -workers 1 and 4:\n%s\nvs\n%s", out1, out4)
	}
	var rows []frontierRow
	if err := json.Unmarshal([]byte(out1), &rows); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, out1)
	}
	if len(rows) == 0 {
		t.Fatal("empty frontier")
	}
	for _, r := range rows {
		if r.Rank != 0 {
			t.Errorf("node %s: rank %d on default (Pareto-only) frontier", r.Node, r.Rank)
		}
		if r.MinGroup < 3 {
			t.Errorf("node %s: min group %d < k=3", r.Node, r.MinGroup)
		}
		if r.Node == "" || r.Groups <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
}

// TestAnonFrontierOut: with -out the masked CSV is still written while
// the frontier owns stdout.
func TestAnonFrontierOut(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	outPath := filepath.Join(dir, "masked.csv")
	var stdout, stderr strings.Builder
	if err := Anon([]string{"-in", csvPath, "-job", jobPath, "-frontier", "-out", outPath}, &stdout, &stderr); err != nil {
		t.Fatalf("Anon: %v\nstderr: %s", err, stderr.String())
	}
	masked, err := psk.ReadCSVFile(outPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := psk.IsPSensitiveKAnonymous(masked, []string{"Age", "ZipCode", "Sex"}, []string{"Illness"}, 2, 3)
	if err != nil || !ok {
		t.Errorf("masked output not 2-sensitive 3-anonymous: %v", err)
	}
	if !strings.Contains(stdout.String(), "RANK") {
		t.Errorf("frontier table missing from stdout:\n%s", stdout.String())
	}
}

// TestAnonFrontierStreamConflict: combining frontier mode with -stream
// is flag misuse — a plain error (exit 1), not an input error.
func TestAnonFrontierStreamConflict(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	deltaPath := filepath.Join(dir, "deltas.jsonl")
	if err := os.WriteFile(deltaPath, []byte(""), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	err := Anon([]string{"-in", csvPath, "-job", jobPath, "-frontier", "-stream", deltaPath}, &stdout, &stderr)
	if err == nil {
		t.Fatal("frontier + stream accepted")
	}
	if got := ExitCode(err); got != ExitViolation {
		t.Errorf("exit code %d, want %d (plain error)", got, ExitViolation)
	}
}
