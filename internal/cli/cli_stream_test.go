package cli

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psk"
	"psk/internal/stream"
)

// TestGenStream: adultgen -stream emits a parseable JSONL delta file
// with the requested batch count and churn, deterministically.
func TestGenStream(t *testing.T) {
	var a, b, stderr strings.Builder
	args := []string{"-stream", "-n", "200", "-batches", "3", "-churn", "0.05", "-seed", "7"}
	if err := Gen(args, &a, &stderr); err != nil {
		t.Fatalf("Gen: %v", err)
	}
	if err := Gen(args, &b, &stderr); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed emitted different delta streams")
	}
	r := stream.NewReader(strings.NewReader(a.String()))
	var batches []stream.Batch
	for {
		batch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, batch)
	}
	if len(batches) != 3 {
		t.Fatalf("%d batches, want 3", len(batches))
	}
	if len(batches[0].Columns) == 0 {
		t.Fatal("first batch declares no columns")
	}
	if got := len(batches[0].Retire); got != 10 {
		t.Fatalf("batch churn %d, want 10 (0.05 * 200)", got)
	}
}

// TestGenStreamToFile: -out writes the delta file and reports on stderr.
func TestGenStreamToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.jsonl")
	var stdout, stderr strings.Builder
	if err := Gen([]string{"-stream", "-n", "100", "-batches", "2", "-out", path}, &stdout, &stderr); err != nil {
		t.Fatalf("Gen: %v", err)
	}
	if !strings.Contains(stderr.String(), "2 delta batches against 100 base rows") {
		t.Errorf("stderr = %q", stderr.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("delta file missing or empty: %v", err)
	}
}

// patientDeltas is a hand-written delta stream against patientsCSV
// (rows 0-11): two batches of churn that keep every QI-group at least
// 3 strong after generalization.
const patientDeltas = `{"columns":["Age","ZipCode","Sex","Illness"],"append":[["27","41076","F","Colitis"],["33","41099","F","Flu"]],"retire":[0]}
{"append":[["56","43102","F","Asthma"],["62","43103","M","Diabetes"]],"retire":[3]}
`

// TestAnonStreamEndToEnd: pskanon -stream consumes a delta file,
// republishes per batch, and the final release satisfies the property
// on the post-delta rows.
func TestAnonStreamEndToEnd(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	deltaPath := filepath.Join(dir, "deltas.jsonl")
	if err := os.WriteFile(deltaPath, []byte(patientDeltas), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "masked.csv")
	var stdout, stderr strings.Builder
	err := Anon([]string{"-in", csvPath, "-job", jobPath, "-stream", deltaPath, "-out", outPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("Anon -stream: %v\nstderr: %s", err, stderr.String())
	}
	for _, want := range []string{"initial:", "batch 1:", "batch 2:", "final:"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
	masked, err := psk.ReadCSVFile(outPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 12 base rows - 2 retires + 4 appends = 14 live, minus suppression.
	if masked.NumRows() > 14 {
		t.Fatalf("release has %d rows for 14 live", masked.NumRows())
	}
	ok, err := psk.IsPSensitiveKAnonymous(masked, []string{"Age", "ZipCode", "Sex"}, []string{"Illness"}, 2, 3)
	if err != nil || !ok {
		t.Errorf("final release not 2-sensitive 3-anonymous: %v", err)
	}
}

// TestAnonStreamRejectsBadDeltas: schema mismatches and unknown retire
// ids are input errors that name the offending line.
func TestAnonStreamRejectsBadDeltas(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	for name, deltas := range map[string]string{
		"wrong columns":  `{"columns":["Age","Zip","Sex","Illness"],"retire":[0]}` + "\n",
		"short row":      `{"append":[["27","41076","F"]]}` + "\n",
		"unknown retire": `{"retire":[99]}` + "\n",
		"garbage":        "not json\n",
	} {
		deltaPath := filepath.Join(dir, "bad.jsonl")
		if err := os.WriteFile(deltaPath, []byte(deltas), 0o644); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr strings.Builder
		err := Anon([]string{"-in", csvPath, "-job", jobPath, "-stream", deltaPath}, &stdout, &stderr)
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
