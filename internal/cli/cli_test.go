package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psk"
)

const jobJSON = `{
  "quasiIdentifiers": ["Age", "ZipCode", "Sex"],
  "confidential": ["Illness"],
  "k": 3, "p": 2, "maxSuppress": 2,
  "types": {"Age": "int"},
  "hierarchies": {
    "Age":     {"type": "interval",
                "levels": [{"name": "decades", "width": 10, "min": 20, "max": 70},
                           {"cuts": [50], "labels": ["<50", ">=50"]},
                           {"labels": ["*"]}]},
    "ZipCode": {"type": "prefixSteps", "width": 5, "suppress": [2, 5]},
    "Sex":     {"type": "flat", "top": "Person"}
  }
}`

const patientsCSV = `Age,ZipCode,Sex,Illness
25,41076,M,Flu
29,41076,M,Asthma
31,41076,F,Diabetes
38,41099,F,Flu
34,41099,M,Diabetes
36,41099,M,Asthma
52,43102,M,Flu
55,43102,F,Heart Disease
58,43102,M,Diabetes
61,43103,F,Asthma
64,43103,M,Flu
67,43103,F,Heart Disease
`

// writeFixtures creates the CSV and job files in a temp dir.
func writeFixtures(t *testing.T) (csvPath, jobPath, dir string) {
	t.Helper()
	dir = t.TempDir()
	csvPath = filepath.Join(dir, "patients.csv")
	jobPath = filepath.Join(dir, "job.json")
	if err := os.WriteFile(csvPath, []byte(patientsCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jobPath, []byte(jobJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return csvPath, jobPath, dir
}

func TestAnonEndToEnd(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	outPath := filepath.Join(dir, "masked.csv")
	var stdout, stderr strings.Builder

	err := Anon([]string{"-in", csvPath, "-job", jobPath, "-out", outPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("Anon: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "node:") || !strings.Contains(stderr.String(), "utility:") {
		t.Errorf("report missing:\n%s", stderr.String())
	}

	// The output must verify as 2-sensitive 3-anonymous.
	masked, err := psk.ReadCSVFile(outPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := psk.IsPSensitiveKAnonymous(masked, []string{"Age", "ZipCode", "Sex"}, []string{"Illness"}, 2, 3)
	if err != nil || !ok {
		t.Errorf("output not 2-sensitive 3-anonymous: %v", err)
	}
}

func TestAnonToStdout(t *testing.T) {
	csvPath, jobPath, _ := writeFixtures(t)
	var stdout, stderr strings.Builder
	err := Anon([]string{"-in", csvPath, "-job", jobPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("Anon: %v", err)
	}
	if !strings.HasPrefix(stdout.String(), "Age,ZipCode,Sex,Illness\n") {
		t.Errorf("stdout = %q", stdout.String()[:40])
	}
}

func TestAnonAlgorithms(t *testing.T) {
	csvPath, jobPath, _ := writeFixtures(t)
	for _, alg := range []string{"samarati", "bottomup", "exhaustive"} {
		var stdout, stderr strings.Builder
		err := Anon([]string{"-in", csvPath, "-job", jobPath, "-algorithm", alg}, &stdout, &stderr)
		if err != nil {
			t.Errorf("algorithm %s: %v", alg, err)
		}
	}
	var stdout, stderr strings.Builder
	if err := Anon([]string{"-in", csvPath, "-job", jobPath, "-algorithm", "magic"}, &stdout, &stderr); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAnonInfeasibleP(t *testing.T) {
	csvPath, _, dir := writeFixtures(t)
	// Illness has 5 distinct values; ask for p = 6 via an edited job.
	job := strings.Replace(jobJSON, `"k": 3, "p": 2`, `"k": 8, "p": 6`, 1)
	jobPath := filepath.Join(dir, "badjob.json")
	if err := os.WriteFile(jobPath, []byte(job), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	err := Anon([]string{"-in", csvPath, "-job", jobPath}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "maxP") {
		t.Errorf("err = %v, want condition-1 explanation", err)
	}
}

func TestAnonErrors(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	var out, errw strings.Builder
	if err := Anon([]string{}, &out, &errw); err == nil {
		t.Error("missing flags accepted")
	}
	if err := Anon([]string{"-in", csvPath, "-job", filepath.Join(dir, "none.json")}, &out, &errw); err == nil {
		t.Error("missing job accepted")
	}
	if err := Anon([]string{"-in", filepath.Join(dir, "none.csv"), "-job", jobPath}, &out, &errw); err == nil {
		t.Error("missing csv accepted")
	}
	if err := Anon([]string{"-bogus"}, &out, &errw); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestCheckProperties(t *testing.T) {
	csvPath, _, _ := writeFixtures(t)
	var stdout, stderr strings.Builder
	err := Check([]string{"-in", csvPath, "-qi", "Age,ZipCode,Sex", "-conf", "Illness", "-k", "2", "-p", "2"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{
		"rows: 12",
		"2-anonymity: false", // raw data has singleton groups
		"maxP (necessary condition 1): 4",
		"sensitivity (largest satisfied p): 1",
		"risk: prosecutor max 1.000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckViolationsListing(t *testing.T) {
	csvPath, _, _ := writeFixtures(t)
	var stdout, stderr strings.Builder
	// The male group holds only {Flu, Asthma, Diabetes}: 3 < p = 4.
	err := Check([]string{"-in", csvPath, "-qi", "Sex", "-conf", "Illness", "-k", "4", "-p", "4", "-violations"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !strings.Contains(stdout.String(), "violation [") {
		t.Errorf("violations not listed:\n%s", stdout.String())
	}
}

func TestCheckSQL(t *testing.T) {
	csvPath, _, _ := writeFixtures(t)
	var stdout, stderr strings.Builder
	err := Check([]string{"-in", csvPath, "-sql", "SELECT Sex, COUNT(*) AS n FROM T GROUP BY Sex ORDER BY Sex"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("Check -sql: %v", err)
	}
	if !strings.Contains(stdout.String(), "Sex") || !strings.Contains(stdout.String(), "n") {
		t.Errorf("sql output:\n%s", stdout.String())
	}
	if err := Check([]string{"-in", csvPath, "-sql", "NOT SQL"}, &stdout, &stderr); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestCheckErrors(t *testing.T) {
	csvPath, _, dir := writeFixtures(t)
	var out, errw strings.Builder
	if err := Check([]string{}, &out, &errw); err == nil {
		t.Error("missing -in accepted")
	}
	if err := Check([]string{"-in", filepath.Join(dir, "none.csv"), "-qi", "A"}, &out, &errw); err == nil {
		t.Error("missing file accepted")
	}
	if err := Check([]string{"-in", csvPath}, &out, &errw); err == nil {
		t.Error("missing -qi accepted")
	}
	if err := Check([]string{"-in", csvPath, "-qi", "Nope"}, &out, &errw); err == nil {
		t.Error("unknown QI accepted")
	}
	if err := Check([]string{"-in", csvPath, "-qi", "Sex", "-conf", "Nope"}, &out, &errw); err == nil {
		t.Error("unknown confidential accepted")
	}
}

func TestGen(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "adult.csv")
	var stdout, stderr strings.Builder
	err := Gen([]string{"-n", "100", "-seed", "1", "-out", outPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("Gen: %v", err)
	}
	tbl, err := psk.ReadCSVFile(outPath, nil)
	if err != nil || tbl.NumRows() != 100 {
		t.Errorf("generated rows = %d, %v", tbl.NumRows(), err)
	}
	// Stdout mode.
	stdout.Reset()
	if err := Gen([]string{"-n", "5"}, &stdout, &stderr); err != nil {
		t.Fatalf("Gen stdout: %v", err)
	}
	if !strings.HasPrefix(stdout.String(), "Age,MaritalStatus,Race,Sex,") {
		t.Errorf("csv header = %q", strings.SplitN(stdout.String(), "\n", 2)[0])
	}
	if err := Gen([]string{"-n", "-3"}, &stdout, &stderr); err == nil {
		t.Error("negative n accepted")
	}
}

func TestExpSmallExperiments(t *testing.T) {
	for _, exp := range []string{"attack", "table3", "figure1", "figure2", "figure3", "table4", "example1"} {
		var stdout, stderr strings.Builder
		if err := Exp([]string{"-exp", exp}, &stdout, &stderr); err != nil {
			t.Errorf("Exp(%s): %v", exp, err)
		}
		if !strings.Contains(stdout.String(), "===") {
			t.Errorf("Exp(%s) produced no section header", exp)
		}
	}
}

func TestExpUnknown(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := Exp([]string{"-exp", "nope"}, &stdout, &stderr); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := Exp([]string{"-adult", "/nonexistent"}, &stdout, &stderr); err == nil {
		t.Error("missing adult file accepted")
	}
}

// TestExpWithRealAdultFormat drives the table8 path against a small
// fabricated adult.data file to exercise the loader wiring.
func TestExpWithRealAdultFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "adult.data")
	// 60 UCI-format rows: enough for a 50-record sample at k=2 to find
	// some masking (everything may generalize to the top node).
	var sb strings.Builder
	ages := []string{"22", "31", "44", "56", "67", "38"}
	marital := []string{"Never-married", "Married-civ-spouse", "Divorced"}
	races := []string{"White", "Black"}
	sexes := []string{"Male", "Female"}
	pays := []string{"<=50K", ">50K"}
	for i := 0; i < 60; i++ {
		sb.WriteString(ages[i%len(ages)] + ", Private, 0, HS-grad, 9, " +
			marital[i%len(marital)] + ", Sales, Husband, " +
			races[i%len(races)] + ", " + sexes[i%len(sexes)] +
			", 0, 0, 40, United-States, " + pays[i%len(pays)] + "\n")
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	err := Exp([]string{"-exp", "table7", "-adult", path}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("Exp table7 with adult file: %v", err)
	}
	if !strings.Contains(stdout.String(), "using real Adult data: 60 records") {
		t.Errorf("loader banner missing:\n%s", stdout.String())
	}
}

// TestExpMethods drives the E14 masking-method comparison end to end.
func TestExpMethods(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := Exp([]string{"-exp", "methods"}, &stdout, &stderr); err != nil {
		t.Fatalf("Exp(methods): %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"none (raw)", "mondrian", "microaggregation", "rank swap", "noise"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestExpAll drives the complete experiment harness end to end — the
// same run that regenerates every table and figure (-short skips it).
func TestExpAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness skipped in -short mode")
	}
	var stdout, stderr strings.Builder
	if err := Exp([]string{"-exp", "all"}, &stdout, &stderr); err != nil {
		t.Fatalf("Exp(all): %v", err)
	}
	out := stdout.String()
	for _, want := range []string{
		"E1: motivating attack",
		"E2: Table 3 sensitivity",
		"E3: Figure 1 hierarchies",
		"E4: Figure 2 lattice",
		"E5: Figure 3 violation counts",
		"E6: Table 4 minimal generalizations",
		"E7: Tables 5-6 frequency sets",
		"E8: Table 7 Adult hierarchies",
		"E9: Table 8 attribute disclosures",
		"E10: necessary-condition ablation",
		"E11: full-domain vs Mondrian vs GreedyCluster utility",
		"E14: masking methods comparison",
		"maxGroups(p=5) = 25",
		"<S0, Z2> and <S1, Z1>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("harness output missing %q", want)
		}
	}
}

const maskedCSV = `Age,ZipCode,Sex,Illness
20,43102,M,Diabetes
20,43102,M,Diabetes
30,43102,F,Breast Cancer
30,43102,F,HIV
50,43102,M,Colon Cancer
50,43102,M,Heart Disease
`

const externalCSV = `Name,Age,ZipCode,Sex
Sam,20,43102,M
Eric,20,43102,M
Gloria,30,43102,F
Adam,50,43102,M
`

func TestAttackEndToEnd(t *testing.T) {
	dir := t.TempDir()
	mmPath := filepath.Join(dir, "masked.csv")
	extPath := filepath.Join(dir, "external.csv")
	if err := os.WriteFile(mmPath, []byte(maskedCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(extPath, []byte(externalCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	err := Attack([]string{
		"-masked", mmPath, "-external", extPath,
		"-qi", "Age,ZipCode,Sex", "-conf", "Illness", "-leaks",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{
		"individuals: 4",
		"linked to at least one released record: 4",
		"uniquely identified (identity disclosure): 0",
		"learned a confidential value (attribute disclosure): 2",
		"LEAK: Eric has Illness = Diabetes",
		"LEAK: Sam has Illness = Diabetes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAttackErrors(t *testing.T) {
	var out, errw strings.Builder
	if err := Attack([]string{}, &out, &errw); err == nil {
		t.Error("missing flags accepted")
	}
	dir := t.TempDir()
	mmPath := filepath.Join(dir, "m.csv")
	os.WriteFile(mmPath, []byte(maskedCSV), 0o644)
	if err := Attack([]string{"-masked", mmPath, "-external", "/none", "-qi", "Age"}, &out, &errw); err == nil {
		t.Error("missing external accepted")
	}
	if err := Attack([]string{"-masked", "/none", "-external", mmPath, "-qi", "Age"}, &out, &errw); err == nil {
		t.Error("missing masked accepted")
	}
	extPath := filepath.Join(dir, "e.csv")
	os.WriteFile(extPath, []byte(externalCSV), 0o644)
	if err := Attack([]string{"-masked", mmPath, "-external", extPath, "-qi", "Nope"}, &out, &errw); err == nil {
		t.Error("unknown QI accepted")
	}
}

// TestCheckPolicyFlags pins the composite-policy surface of pskcheck:
// -ldiv/-tclose/-alpha conjoin extra properties, a satisfied composite
// reports and exits zero, a violated one exits non-zero.
func TestCheckPolicyFlags(t *testing.T) {
	// Two groups of two, each with two distinct illnesses.
	const diverseCSV = `Age,ZipCode,Sex,Illness
20,43102,M,Diabetes
20,43102,M,Flu
30,43102,F,Breast Cancer
30,43102,F,HIV
`
	dir := t.TempDir()
	mmPath := filepath.Join(dir, "masked.csv")
	if err := os.WriteFile(mmPath, []byte(diverseCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	// Every group has 2 distinct illnesses: distinct 2-diversity on top
	// of 2-sensitive 2-anonymity is satisfied.
	var stdout, stderr strings.Builder
	err := Check([]string{"-in", mmPath, "-qi", "Age,ZipCode,Sex", "-conf", "Illness",
		"-k", "2", "-p", "2", "-ldiv", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("satisfied policy errored: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "policy all(2-sensitive-2-anonymity(Illness) and distinct-2-diversity(Illness)): satisfied") {
		t.Errorf("satisfied verdict missing:\n%s", stdout.String())
	}

	// 3-diversity fails (2 distinct per group): non-zero exit.
	stdout.Reset()
	err = Check([]string{"-in", mmPath, "-qi", "Age,ZipCode,Sex", "-conf", "Illness",
		"-k", "2", "-p", "2", "-ldiv", "3"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "violated") {
		t.Errorf("violated policy err = %v", err)
	}
	if !strings.Contains(stdout.String(), "VIOLATED") {
		t.Errorf("violation verdict missing:\n%s", stdout.String())
	}

	// Each group's illnesses split 50/50 at best, so alpha 0.4 fails...
	stdout.Reset()
	err = Check([]string{"-in", mmPath, "-qi", "Age,ZipCode,Sex", "-conf", "Illness",
		"-k", "2", "-p", "2", "-alpha", "0.4"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "violated") {
		t.Errorf("alpha 0.4 err = %v", err)
	}
	// ...and alpha 0.5 passes, as does a loose t-closeness bound.
	stdout.Reset()
	err = Check([]string{"-in", mmPath, "-qi", "Age,ZipCode,Sex", "-conf", "Illness",
		"-k", "2", "-p", "2", "-alpha", "0.5", "-tclose", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("alpha 0.5 + tclose 1: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "satisfied") {
		t.Errorf("verdict missing:\n%s", stdout.String())
	}

	// Policy flags without -conf are rejected.
	if err := Check([]string{"-in", mmPath, "-qi", "Sex", "-ldiv", "2"}, &stdout, &stderr); err == nil {
		t.Error("-ldiv without -conf accepted")
	}
}

// TestAnonPolicyFlags drives pskanon with a composite search target:
// the masked output must satisfy the extra l-diversity constraint, and
// an unachievable constraint must exit non-zero naming the policy.
func TestAnonPolicyFlags(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)
	outPath := filepath.Join(dir, "masked.csv")
	var stdout, stderr strings.Builder
	err := Anon([]string{"-in", csvPath, "-job", jobPath, "-ldiv", "2", "-out", outPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("Anon -ldiv 2: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "policy: all(2-sensitive-3-anonymity(Illness) and distinct-2-diversity(Illness))") {
		t.Errorf("policy banner missing:\n%s", stderr.String())
	}
	masked, err := psk.ReadCSVFile(outPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	qis := []string{"Age", "ZipCode", "Sex"}
	if ok, err := psk.IsPSensitiveKAnonymous(masked, qis, []string{"Illness"}, 2, 3); err != nil || !ok {
		t.Errorf("output not 2-sensitive 3-anonymous: %v", err)
	}
	if ok, err := psk.IsDistinctLDiverse(masked, qis, "Illness", 2); err != nil || !ok {
		t.Errorf("output not distinct 2-diverse: %v", err)
	}

	// Illness has 5 distinct values overall; 6-diversity is impossible.
	stdout.Reset()
	stderr.Reset()
	err = Anon([]string{"-in", csvPath, "-job", jobPath, "-ldiv", "6"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "distinct-6-diversity") {
		t.Errorf("impossible composite err = %v", err)
	}
}

// TestBenchJSON pins the bench-output-to-JSON conversion `make
// bench-json` relies on.
func TestBenchJSON(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: psk
BenchmarkRollup/Exhaustive/Rollup-8         	      10	   7065294 ns/op	  123456 B/op	    1234 allocs/op
BenchmarkRollup/Exhaustive/DisableRollup    	      10	  13623264 ns/op	  654321 B/op	    4321 allocs/op
PASS
ok  	psk	1.773s
`
	var out strings.Builder
	if err := BenchJSON(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var got map[string]struct {
		Ns     float64 `json:"ns_per_op"`
		Allocs float64 `json:"allocs_per_op"`
	}
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkRollup/Exhaustive/Rollup"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", out.String())
	}
	if r.Ns != 7065294 || r.Allocs != 1234 {
		t.Errorf("Rollup metrics = %+v", r)
	}
	d := got["BenchmarkRollup/Exhaustive/DisableRollup"]
	if d.Ns != 13623264 || d.Allocs != 4321 {
		t.Errorf("DisableRollup metrics = %+v", d)
	}
	if err := BenchJSON(strings.NewReader("PASS\n"), &out); err == nil {
		t.Error("empty bench output accepted")
	}
}
