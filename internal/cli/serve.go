package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"psk/internal/search"
	"psk/internal/serve"
)

// Serve implements pskserve: run the anonymization service until
// SIGINT/SIGTERM, then drain. The network-facing behaviour lives in
// internal/serve; this entry point only parses flags, binds the
// listener and wires signals.
func Serve(args []string, stdout, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return ServeContext(ctx, args, stdout, stderr)
}

// ServeContext is Serve with an explicit lifetime: the server drains
// and returns when ctx is cancelled. Split out so tests can run the
// whole binary path in-process and stop it deterministically.
func ServeContext(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pskserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8787", "listen address (use :0 for an ephemeral port)")
		queue         = fs.Int("queue", 0, "job queue capacity; a full queue answers 429 + Retry-After (0 = default 64)")
		workers       = fs.Int("workers", 0, "queue workers draining jobs concurrently (0 = default 2)")
		searchWorkers = fs.Int("search-workers", 0, "per-search engine worker cap (0 = default 1, the serial deterministic path)")
		maxTimeout    = fs.Duration("max-timeout", 30*time.Second, "server-side cap on per-request wall-clock budgets (0 = uncapped)")
		maxNodes      = fs.Int64("max-nodes", 0, "server-side cap on per-request lattice-node budgets (0 = uncapped)")
		maxCacheMB    = fs.Int64("max-cache-mb", 0, "server-side cap on per-request cache-memory budgets, in MiB (0 = uncapped)")
		results       = fs.Int("results", 0, "result cache entries, LRU (0 = default 128)")
		datasets      = fs.Int("datasets", 0, "shared dataset cache entries, LRU (0 = default 8)")
		retryAfter    = fs.Duration("retry-after", time.Second, "Retry-After hint returned with 429/503")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := serve.New(serve.Options{
		QueueSize:        *queue,
		Workers:          *workers,
		MaxSearchWorkers: *searchWorkers,
		MaxBudget: search.Budget{
			Deadline:      *maxTimeout,
			MaxNodes:      *maxNodes,
			MaxCacheBytes: *maxCacheMB << 20,
		},
		ResultCacheEntries:  *results,
		DatasetCacheEntries: *datasets,
		RetryAfter:          *retryAfter,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return inputErr(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(stderr, "pskserve: listening on http://%s (POST /v1/jobs; /metrics /progress /healthz /debug/pprof)\n",
		ln.Addr())

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "pskserve: draining\n")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	return srv.Close()
}
