package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"psk"
)

// obsFlags are the telemetry flags shared by pskanon, pskcheck and
// pskexp: -stats prints the human-readable report to stderr,
// -metrics-json writes the report (or the experiment's strategy map)
// as JSON, and -trace streams one JSONL event per evaluated lattice
// node to a file.
type obsFlags struct {
	stats       bool
	trace       string
	metricsJSON string

	rec       *psk.Recorder
	tracer    *psk.Tracer
	traceFile *os.File
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	of := &obsFlags{}
	fs.BoolVar(&of.stats, "stats", false, "print a telemetry report (node verdicts, phase times, cache stats) to stderr")
	fs.StringVar(&of.trace, "trace", "", "write a JSONL trace (one event per evaluated lattice node) to this file")
	fs.StringVar(&of.metricsJSON, "metrics-json", "", "write the telemetry report as JSON to this file")
	return of
}

func (of *obsFlags) active() bool {
	return of.stats || of.trace != "" || of.metricsJSON != ""
}

// setup builds the recorder and tracer the flags request; the caller
// must defer close. Both stay nil when no flag is active, keeping the
// search on its zero-cost path.
func (of *obsFlags) setup() error {
	if !of.active() {
		return nil
	}
	of.rec = psk.NewRecorder()
	if of.trace != "" {
		f, err := os.Create(of.trace)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		of.traceFile = f
		of.tracer = psk.NewTracer(f)
	}
	return nil
}

// report emits the collected telemetry: the human block on -stats, the
// JSON file on -metrics-json. Pass the search's own snapshot when one
// exists (it was taken at search completion); a nil report falls back
// to a fresh snapshot of the recorder.
func (of *obsFlags) report(rep *psk.Report, stderr io.Writer) error {
	if rep == nil {
		rep = of.rec.Snapshot()
	}
	if rep == nil {
		return nil
	}
	if of.stats {
		fmt.Fprintf(stderr, "--- telemetry ---\n%s", rep.String())
	}
	if of.metricsJSON != "" {
		return writeJSON(of.metricsJSON, rep)
	}
	return nil
}

// close flushes and closes the trace stream; call it after the search,
// before reading the trace file.
func (of *obsFlags) close(stderr io.Writer) {
	if of.tracer != nil {
		if err := of.tracer.Flush(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
		}
	}
	if of.traceFile != nil {
		if err := of.traceFile.Close(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
		}
		of.traceFile = nil
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-json: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("metrics-json: %w", err)
	}
	return f.Close()
}
