package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"psk"
)

// obsFlags are the observability flags shared by pskanon, pskcheck and
// pskexp: -stats prints the human-readable report to stderr,
// -metrics-json writes the report (or the experiment's strategy map)
// as JSON, -trace streams one JSONL event per evaluated lattice node
// to a file, -obs-listen serves the live observatory (/metrics,
// /progress, /healthz, /debug/pprof) over HTTP while the run is in
// flight, and -explain/-explain-json render the trace-driven audit
// (per-level prune attribution, budget timeline) after the run.
type obsFlags struct {
	stats       bool
	trace       string
	metricsJSON string
	obsListen   string
	obsSample   time.Duration
	obsLinger   time.Duration
	explain     bool
	explainJSON string

	rec       *psk.Recorder
	tracer    *psk.Tracer
	traceFile *os.File
	// tracePath is the file the tracer writes: the -trace flag, or a
	// temp file created because -explain needs a trace the user didn't
	// ask to keep (traceTemp marks it for removal on close).
	tracePath string
	traceTemp bool
	sampler   *psk.Sampler
	server    *psk.ObsServer
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	of := &obsFlags{}
	fs.BoolVar(&of.stats, "stats", false, "print a telemetry report (node verdicts, phase times, cache stats) to stderr")
	fs.StringVar(&of.trace, "trace", "", "write a JSONL trace (one event per evaluated lattice node) to this file")
	fs.StringVar(&of.metricsJSON, "metrics-json", "", "write the telemetry report as JSON to this file")
	fs.StringVar(&of.obsListen, "obs-listen", "", "serve the live observatory on this address while the run is in flight: /metrics, /progress, /healthz, /debug/pprof (e.g. 127.0.0.1:6060; :0 picks a port, printed to stderr)")
	fs.DurationVar(&of.obsSample, "obs-sample", 250*time.Millisecond, "sampling interval of the /progress time series (with -obs-listen)")
	fs.DurationVar(&of.obsLinger, "obs-linger", 0, "after finishing, keep the observatory up until the final report is scraped or this long elapses (with -obs-listen; lets an external poller read the final /metrics)")
	fs.BoolVar(&of.explain, "explain", false, "print a trace-driven audit to stderr after the run: per-lattice-level prune attribution, budget timeline, cache/rollup efficiency")
	fs.StringVar(&of.explainJSON, "explain-json", "", "write the -explain audit as JSON to this file")
	return of
}

func (of *obsFlags) active() bool {
	return of.stats || of.trace != "" || of.metricsJSON != "" ||
		of.obsListen != "" || of.explain || of.explainJSON != ""
}

// wantExplain reports whether an audit must be produced after the run.
func (of *obsFlags) wantExplain() bool { return of.explain || of.explainJSON != "" }

// setup builds the recorder, tracer, sampler and live server the flags
// request; the caller must defer close. Everything stays nil when no
// flag is active, keeping the search on its zero-cost path.
func (of *obsFlags) setup(stderr io.Writer) error {
	if !of.active() {
		return nil
	}
	of.rec = psk.NewRecorder()
	of.tracePath = of.trace
	if of.tracePath == "" && of.wantExplain() {
		// The audit is trace-driven; buy a trace the user didn't ask to
		// keep and remove it on close.
		f, err := os.CreateTemp("", "psk-trace-*.jsonl")
		if err != nil {
			return fmt.Errorf("explain: %w", err)
		}
		of.tracePath = f.Name()
		of.traceTemp = true
		of.traceFile = f
		of.tracer = psk.NewTracer(f)
	} else if of.tracePath != "" {
		f, err := os.Create(of.tracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		of.traceFile = f
		of.tracer = psk.NewTracer(f)
	}
	if of.obsListen != "" {
		of.sampler = psk.NewSampler(of.rec, of.obsSample, 0)
		of.sampler.Start()
		srv, err := psk.NewObsServer(of.obsListen, of.rec, of.sampler)
		if err != nil {
			return err
		}
		of.server = srv
		fmt.Fprintf(stderr, "observatory: listening on http://%s (/metrics /progress /healthz /debug/pprof)\n", srv.Addr())
	}
	return nil
}

// report emits the collected telemetry: the human block on -stats, the
// JSON file on -metrics-json, the trace-driven audit on -explain, and
// the frozen final /metrics payload on -obs-listen. Pass the search's
// own snapshot when one exists (it was taken at search completion); a
// nil report falls back to a fresh snapshot of the recorder.
func (of *obsFlags) report(rep *psk.Report, stderr io.Writer) error {
	if rep == nil {
		rep = of.rec.Snapshot()
	}
	if rep == nil {
		return nil
	}
	if of.stats {
		fmt.Fprintf(stderr, "--- telemetry ---\n%s", rep.String())
	}
	if of.metricsJSON != "" {
		if err := writeJSON(of.metricsJSON, rep); err != nil {
			return err
		}
	}
	// Freeze /metrics to the exact report written above, so a scrape
	// after completion and the -metrics-json file agree byte for byte.
	if of.server != nil {
		of.sampler.Poll() // final sample at the completed totals
		of.server.Finalize(rep)
	}
	if of.wantExplain() {
		if err := of.runExplain(rep, stderr); err != nil {
			return err
		}
	}
	return nil
}

// runExplain flushes the trace and renders the audit against rep.
func (of *obsFlags) runExplain(rep *psk.Report, stderr io.Writer) error {
	if of.tracer == nil {
		return fmt.Errorf("explain: no trace collected")
	}
	if err := of.tracer.Flush(); err != nil {
		return fmt.Errorf("explain: %w", err)
	}
	f, err := os.Open(of.tracePath)
	if err != nil {
		return fmt.Errorf("explain: %w", err)
	}
	defer f.Close()
	audit, err := psk.ExplainTrace(f, rep)
	if err != nil {
		return err
	}
	if of.explain {
		fmt.Fprintf(stderr, "--- explain ---\n")
		if err := audit.WriteText(stderr); err != nil {
			return err
		}
	}
	if of.explainJSON != "" {
		if err := writeJSON(of.explainJSON, audit); err != nil {
			return fmt.Errorf("explain-json: %w", err)
		}
	}
	return nil
}

// close flushes and closes the trace stream, stops the sampler and
// shuts the live server down (after the -obs-linger grace period when
// a final report is waiting to be scraped). Call it after the search,
// before reading the trace file.
func (of *obsFlags) close(stderr io.Writer) {
	if of.tracer != nil {
		if err := of.tracer.Flush(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
		}
	}
	if of.traceFile != nil {
		if err := of.traceFile.Close(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
		}
		of.traceFile = nil
	}
	if of.traceTemp && of.tracePath != "" {
		os.Remove(of.tracePath)
		of.tracePath = ""
	}
	of.sampler.Stop()
	if of.server != nil {
		if of.obsLinger > 0 && of.server.Finalized() {
			of.server.WaitScraped(of.obsLinger)
		}
		of.server.Close()
		of.server = nil
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-json: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("metrics-json: %w", err)
	}
	return f.Close()
}
