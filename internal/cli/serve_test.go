package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"psk/internal/config"
	"psk/internal/obs"
	"psk/internal/serve"
	"psk/internal/serve/loadtest"
)

// TestExitCodeAgreement pins the service's exit-code constants and its
// HTTP mapping to the CLI convention: the two layers must never drift,
// or a script watching pskcheck and a client watching pskserve would
// disagree about the same verdict.
func TestExitCodeAgreement(t *testing.T) {
	if serve.ExitOK != ExitOK || serve.ExitViolation != ExitViolation || serve.ExitInputError != ExitInputError {
		t.Fatalf("exit constants drifted: serve (%d,%d,%d) vs cli (%d,%d,%d)",
			serve.ExitOK, serve.ExitViolation, serve.ExitInputError,
			ExitOK, ExitViolation, ExitInputError)
	}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"ok", nil, http.StatusOK},
		{"verdict", fmt.Errorf("policy violated"), http.StatusOK},
		{"input", inputErr(fmt.Errorf("bad csv")), http.StatusBadRequest},
		{"wrapped input", fmt.Errorf("ctx: %w", inputErr(fmt.Errorf("bad"))), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := serve.HTTPStatus(ExitCode(c.err)); got != c.want {
			t.Errorf("%s: HTTPStatus(ExitCode) = %d, want %d", c.name, got, c.want)
		}
	}
	// Unknown exit codes are internal failures, never silent successes.
	if got := serve.HTTPStatus(-1); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus(-1) = %d, want 500", got)
	}
}

// smokeClient wraps the tiny HTTP vocabulary the smoke test needs.
type smokeClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func (s *smokeClient) do(method, path string, body any) (int, json.RawMessage) {
	s.t.Helper()
	var rd bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			s.t.Fatal(err)
		}
		rd = *bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, s.base+path, &rd)
	if err != nil {
		s.t.Fatal(err)
	}
	resp, err := s.c.Do(req)
	if err != nil {
		s.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		s.t.Fatal(err)
	}
	return resp.StatusCode, json.RawMessage(buf.Bytes())
}

func (s *smokeClient) submit(req serve.JobRequest) string {
	s.t.Helper()
	status, raw := s.do("POST", "/v1/jobs", req)
	if status != http.StatusAccepted {
		s.t.Fatalf("submit: got %d: %s", status, raw)
	}
	var payload struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil || payload.ID == "" {
		s.t.Fatalf("submit: no id in %s", raw)
	}
	return payload.ID
}

type smokeStatus struct {
	State      string          `json:"state"`
	StopReason string          `json:"stop_reason"`
	ExitCode   *int            `json:"exit_code"`
	Error      string          `json:"error"`
	Result     json.RawMessage `json:"result"`
	Report     json.RawMessage `json:"report"`
}

func (s *smokeClient) pollDone(id string) (int, smokeStatus) {
	s.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, raw := s.do("GET", "/v1/jobs/"+id, nil)
		var st smokeStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			s.t.Fatalf("status %s: %v in %s", id, err, raw)
		}
		if st.State == "queued" || st.State == "running" ||
			(st.State == "cancelled" && st.StopReason == "") {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		return code, st
	}
	s.t.Fatalf("job %s never finished", id)
	return 0, smokeStatus{}
}

func (s *smokeClient) counters() map[string]int64 {
	s.t.Helper()
	_, raw := s.do("GET", "/metrics", nil)
	var m serve.ServiceMetrics
	if err := json.Unmarshal(raw, &m); err != nil {
		s.t.Fatalf("metrics: %v in %s", err, raw)
	}
	return m.Counters
}

// TestServeSmoke is the end-to-end gate the CI serve job runs via
// `make serve-smoke`: the real pskserve entry point bound to an
// ephemeral port, driven over real HTTP through the whole contract —
// verdict exit codes, single-flight dedup pinned via /metrics,
// queued-job cancellation with the cancelled StopReason, the per-job
// /metrics scrape byte-equal to the embedded report, and the service's
// telemetry counters equal to a pskanon -metrics-json run of the same
// inputs.
func TestServeSmoke(t *testing.T) {
	stderr := newObsAddrWriter()
	var stdout strings.Builder
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- ServeContext(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1"}, &stdout, stderr)
	}()

	var addr string
	select {
	case addr = <-stderr.addrC:
	case err := <-done:
		t.Fatalf("ServeContext finished before announcing: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("no listen address announced\nstderr: %s", stderr.String())
	}
	sc := &smokeClient{t: t, base: "http://" + addr, c: &http.Client{Timeout: 30 * time.Second}}

	// Liveness before anything else.
	if code, raw := sc.do("GET", "/healthz", nil); code != 200 || !bytes.Contains(raw, []byte("serving")) {
		t.Fatalf("healthz: %d %s", code, raw)
	}

	// Verdicts over HTTP follow the CLI exit-code convention: both a
	// satisfied and a violated check are 200s, distinguished by exit_code.
	id := sc.submit(serve.JobRequest{
		Kind: serve.KindCheck, CSV: patientsCSV,
		QIs: []string{"Sex"}, Conf: []string{"Illness"}, K: 3, P: 2,
	})
	if code, st := sc.pollDone(id); code != 200 || st.ExitCode == nil || *st.ExitCode != ExitOK {
		t.Fatalf("satisfied check: code %d status %+v", code, st)
	}
	id = sc.submit(serve.JobRequest{
		Kind: serve.KindCheck, CSV: patientsCSV,
		QIs: []string{"Age", "ZipCode", "Sex"}, Conf: []string{"Illness"}, K: 3, P: 2,
	})
	if code, st := sc.pollDone(id); code != 200 || st.ExitCode == nil || *st.ExitCode != ExitViolation {
		t.Fatalf("violated check: code %d status %+v", code, st)
	}
	if code, raw := sc.do("POST", "/v1/jobs", serve.JobRequest{Kind: "bogus"}); code != http.StatusBadRequest {
		t.Fatalf("input error: code %d %s", code, raw)
	}

	// Single-flight: concurrent tenants submitting the identical
	// anonymize request get exactly one underlying search.
	job, err := config.Parse([]byte(jobJSON))
	if err != nil {
		t.Fatal(err)
	}
	anonReq := serve.JobRequest{Kind: serve.KindAnonymize, CSV: patientsCSV, Job: job}
	before := sc.counters()
	const tenants = 6
	ids := make([]string, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(anonReq)
			resp, err := sc.c.Post(sc.base+"/v1/jobs", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			var payload struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&payload)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusAccepted {
				t.Errorf("tenant %d: status %d err %v", i, resp.StatusCode, err)
				return
			}
			ids[i] = payload.ID
		}(i)
	}
	wg.Wait()
	var firstResult string
	for _, id := range ids {
		code, st := sc.pollDone(id)
		if code != 200 || st.State != "done" || st.StopReason != "done" {
			t.Fatalf("anonymize %s: code %d status %+v", id, code, st)
		}
		if firstResult == "" {
			firstResult = string(st.Result)
		} else if firstResult != string(st.Result) {
			t.Errorf("tenants read different results for one key")
		}
	}
	after := sc.counters()
	if got := after["searches"] - before["searches"]; got != 1 {
		t.Errorf("single-flight: %d searches for %d identical tenants, want 1", got, tenants)
	}
	if got := (after["coalesced"] - before["coalesced"]) + (after["cache_hits"] - before["cache_hits"]); got != tenants-1 {
		t.Errorf("coalesced+cache_hits delta = %d, want %d", got, tenants-1)
	}

	// Byte-identity: the per-job /metrics scrape is the embedded report.
	_, st := sc.pollDone(ids[0])
	if len(st.Report) == 0 {
		t.Fatal("done job carries no report")
	}
	_, scrape := sc.do("GET", "/v1/jobs/"+ids[0]+"/metrics", nil)
	var embedded bytes.Buffer
	if err := json.Indent(&embedded, st.Report, "", "  "); err != nil {
		t.Fatal(err)
	}
	embedded.WriteByte('\n')
	if !bytes.Equal(embedded.Bytes(), scrape) {
		t.Errorf("per-job /metrics differs from the embedded report:\nscrape %d bytes\nembedded %d bytes",
			len(scrape), embedded.Len())
	}

	// The same run through pskanon -metrics-json must agree on every
	// scheduling-independent counter: one engine, two front doors.
	csvPath, jobPath, dir := writeFixtures(t)
	metricsPath := filepath.Join(dir, "metrics.json")
	var aout, aerr strings.Builder
	if err := Anon([]string{"-in", csvPath, "-job", jobPath, "-out", filepath.Join(dir, "masked.csv"),
		"-metrics-json", metricsPath, "-workers", "1"}, &aout, &aerr); err != nil {
		t.Fatalf("Anon: %v\nstderr: %s", err, aerr.String())
	}
	var serveRep, cliRep obs.Report
	if err := json.Unmarshal(st.Report, &serveRep); err != nil {
		t.Fatal(err)
	}
	if err := unmarshalFile(metricsPath, &cliRep); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serveRep.DeterministicCounters(), cliRep.DeterministicCounters()) {
		t.Errorf("service and CLI runs disagree on deterministic counters:\nserve: %v\ncli:   %v",
			serveRep.DeterministicCounters(), cliRep.DeterministicCounters())
	}

	// Cancellation: park a victim behind a dozen full-lattice searches
	// on the single worker, cancel it while queued, and read the
	// cancelled StopReason. The blockers give the DELETE round trip a
	// margin of many engine runs, not one.
	bigCSV := loadtest.DatasetCSV(60000)
	bigJob := loadtest.JobSpec(0)
	cancelBefore := sc.counters()
	blockers := make([]string, 12)
	for i := range blockers {
		blockers[i] = sc.submit(serve.JobRequest{
			Kind: serve.KindAnonymize, CSV: bigCSV, Job: bigJob, Algorithm: "exhaustive",
			Budget: serve.BudgetRequest{MaxNodes: int64(1_000_000_000 + i)},
		})
	}
	victim := sc.submit(serve.JobRequest{
		Kind: serve.KindAnonymize, CSV: bigCSV, Job: bigJob, Algorithm: "exhaustive",
		Budget: serve.BudgetRequest{MaxNodes: 999_999_999},
	})
	if code, raw := sc.do("DELETE", "/v1/jobs/"+victim, nil); code != 200 {
		t.Fatalf("cancel queued job: %d %s", code, raw)
	}
	if code, _ := sc.do("DELETE", "/v1/jobs/"+victim, nil); code != http.StatusConflict {
		t.Errorf("second cancel: %d, want 409", code)
	}
	if _, st := sc.pollDone(victim); st.State != "cancelled" || st.StopReason != "cancelled" {
		t.Errorf("victim state %q stop %q, want cancelled/cancelled", st.State, st.StopReason)
	}
	for _, id := range blockers {
		if _, st := sc.pollDone(id); st.State != "done" {
			t.Fatalf("blocker %s ended %q: %s", id, st.State, st.Error)
		}
	}
	cancelAfter := sc.counters()
	if got := cancelAfter["searches"] - cancelBefore["searches"]; got != int64(len(blockers)) {
		t.Errorf("cancelled job touched the engine: searches delta %d, want %d", got, len(blockers))
	}
	if cancelAfter["cancelled"] <= cancelBefore["cancelled"] {
		t.Errorf("cancelled counter not bumped: %v -> %v", cancelBefore["cancelled"], cancelAfter["cancelled"])
	}

	// Drain: cancelling the context shuts the entry point down cleanly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("ServeContext: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never drained")
	}
	if !strings.Contains(stderr.String(), "pskserve: draining") {
		t.Errorf("no drain announcement:\n%s", stderr.String())
	}
}

func unmarshalFile(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
