package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodeConvention pins the 0/1/2 contract the release tooling
// scripts against: nil is OK, a verdict is 1, and anything from the
// input layer is 2 — including when further wrapped by a caller.
func TestExitCodeConvention(t *testing.T) {
	if c := ExitCode(nil); c != ExitOK {
		t.Errorf("nil -> %d, want %d", c, ExitOK)
	}
	if c := ExitCode(fmt.Errorf("policy violated")); c != ExitViolation {
		t.Errorf("plain error -> %d, want %d", c, ExitViolation)
	}
	if c := ExitCode(inputErr(fmt.Errorf("bad csv"))); c != ExitInputError {
		t.Errorf("input error -> %d, want %d", c, ExitInputError)
	}
	wrapped := fmt.Errorf("context: %w", inputErr(fmt.Errorf("bad csv")))
	if c := ExitCode(wrapped); c != ExitInputError {
		t.Errorf("wrapped input error -> %d, want %d", c, ExitInputError)
	}
	if inputErr(nil) != nil {
		t.Error("inputErr(nil) != nil")
	}
}

// TestAnonExitCodes drives Anon through the three classes: a clean
// run, loader failures (missing file, malformed job, malformed CSV)
// and a no-solution verdict, checking the exit code each would map to.
func TestAnonExitCodes(t *testing.T) {
	csvPath, jobPath, dir := writeFixtures(t)

	var out, errw strings.Builder
	if err := Anon([]string{"-in", csvPath, "-job", jobPath}, &out, &errw); ExitCode(err) != ExitOK {
		t.Errorf("clean run: exit %d (%v)", ExitCode(err), err)
	}

	loaderCases := []struct {
		name string
		args []string
	}{
		{"missing job", []string{"-in", csvPath, "-job", filepath.Join(dir, "none.json")}},
		{"missing csv", []string{"-in", filepath.Join(dir, "none.csv"), "-job", jobPath}},
	}
	badJob := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJob, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaderCases = append(loaderCases, struct {
		name string
		args []string
	}{"malformed job", []string{"-in", csvPath, "-job", badJob}})
	for _, tc := range loaderCases {
		var out, errw strings.Builder
		err := Anon(tc.args, &out, &errw)
		if ExitCode(err) != ExitInputError {
			t.Errorf("%s: exit %d (%v), want %d", tc.name, ExitCode(err), err, ExitInputError)
		}
	}

	// Infeasible p: the loaders succeeded, the verdict is "no solution"
	// — exit 1, not 2.
	job := strings.Replace(jobJSON, `"k": 3, "p": 2`, `"k": 8, "p": 6`, 1)
	infeasible := filepath.Join(dir, "infeasible.json")
	if err := os.WriteFile(infeasible, []byte(job), 0o644); err != nil {
		t.Fatal(err)
	}
	var vout, verrw strings.Builder
	err := Anon([]string{"-in", csvPath, "-job", infeasible}, &vout, &verrw)
	if err == nil || ExitCode(err) != ExitViolation {
		t.Errorf("infeasible p: exit %d (%v), want %d", ExitCode(err), err, ExitViolation)
	}
}

// TestCheckExitCodes does the same for Check: missing input is 2, a
// violated composite policy is 1.
func TestCheckExitCodes(t *testing.T) {
	csvPath, _, dir := writeFixtures(t)

	var out, errw strings.Builder
	err := Check([]string{"-in", filepath.Join(dir, "none.csv"), "-qi", "Sex"}, &out, &errw)
	if ExitCode(err) != ExitInputError {
		t.Errorf("missing csv: exit %d (%v), want %d", ExitCode(err), err, ExitInputError)
	}

	// The fixture is not 5-diverse: the composite verdict is a violation.
	var vout, verrw strings.Builder
	err = Check([]string{"-in", csvPath, "-qi", "Age,ZipCode,Sex", "-conf", "Illness", "-ldiv", "5"}, &vout, &verrw)
	if err == nil || ExitCode(err) != ExitViolation {
		t.Errorf("violated policy: exit %d (%v), want %d", ExitCode(err), err, ExitViolation)
	}
}

// TestAnonBudgetFlags: a generous budget leaves the result identical
// to an unbudgeted run; a one-node budget still exits cleanly when a
// solution was found in the prefix, or explains itself when not.
func TestAnonBudgetFlags(t *testing.T) {
	csvPath, jobPath, _ := writeFixtures(t)

	var plain, plainErr strings.Builder
	if err := Anon([]string{"-in", csvPath, "-job", jobPath}, &plain, &plainErr); err != nil {
		t.Fatalf("unbudgeted: %v", err)
	}
	var budgeted, budgetedErr strings.Builder
	if err := Anon([]string{"-in", csvPath, "-job", jobPath, "-timeout", "1m", "-max-nodes", "100000"}, &budgeted, &budgetedErr); err != nil {
		t.Fatalf("budgeted: %v", err)
	}
	if plain.String() != budgeted.String() {
		t.Error("generous budget changed the released table")
	}

	// One node on exhaustive cannot reach the satisfying region of this
	// lattice: the error must name the stop reason.
	var tiny, tinyErr strings.Builder
	err := Anon([]string{"-in", csvPath, "-job", jobPath, "-algorithm", "exhaustive", "-max-nodes", "1"}, &tiny, &tinyErr)
	if err == nil {
		t.Fatal("1-node exhaustive found a solution")
	}
	if !strings.Contains(err.Error(), "node-budget") {
		t.Errorf("error does not name the stop reason: %v", err)
	}
	if !strings.Contains(tinyErr.String(), "stopped early") {
		t.Errorf("stderr missing the early-stop warning:\n%s", tinyErr.String())
	}
	if ExitCode(err) != ExitViolation {
		t.Errorf("budget-stopped not-found: exit %d, want %d", ExitCode(err), ExitViolation)
	}
}
