package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags are the pprof flags every subcommand registers: a CPU
// profile covering the run, a heap profile written on exit, and a
// goroutine-blocking profile (useful for the parallel engine's barrier
// and roll-up waits) written on exit.
type profileFlags struct {
	cpu, mem, block string
}

func registerProfileFlags(fs *flag.FlagSet) *profileFlags {
	pf := &profileFlags{}
	fs.StringVar(&pf.cpu, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&pf.mem, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&pf.block, "blockprofile", "", "write a pprof blocking profile to this file on exit")
	return pf
}

// start begins the requested profiles and returns the stop function the
// caller must defer; exit-time profile write failures are reported to
// stderr rather than overriding the command's own error.
func (pf *profileFlags) start(stderr io.Writer) (stop func(), err error) {
	var stops []func()
	if pf.cpu != "" {
		f, err := os.Create(pf.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if pf.block != "" {
		runtime.SetBlockProfileRate(1)
		path := pf.block
		stops = append(stops, func() {
			runtime.SetBlockProfileRate(0)
			writeProfile(path, "block", stderr)
		})
	}
	if pf.mem != "" {
		path := pf.mem
		stops = append(stops, func() {
			runtime.GC()
			writeProfile(path, "heap", stderr)
		})
	}
	return func() {
		// Unwind in reverse registration order, CPU profile last-in
		// first-out with the others.
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}

func writeProfile(path, name string, stderr io.Writer) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "%sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(stderr, "%sprofile: %v\n", name, err)
	}
}
