// Package obs is the telemetry layer of the lattice-search stack: a
// zero-dependency (stdlib-only) collection of atomic counters, gauges,
// fixed-bucket latency histograms and phase timers behind a nil-safe
// *Recorder, plus a JSONL span tracer (Tracer) that streams one event
// per lattice-node evaluation for offline analysis.
//
// The design constraint is that instrumented hot paths must cost
// nothing when telemetry is off. Every Recorder method is defined on
// the pointer receiver and starts with an inlineable nil check, so the
// disabled configuration — a nil *Recorder threaded through
// search.Config — compiles down to a compare-and-branch per call site:
// no time.Now(), no atomics, no allocation (BenchmarkObsOverhead pins
// the <2% budget). When a Recorder is attached, all mutation is either
// a single atomic add or (for the per-policy table, keyed by name) a
// short mutex-guarded map update, so one Recorder is safe for the
// engine's whole worker pool.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Verdict classifies the outcome of one lattice-node evaluation, the
// unit of work Algorithm 3 performs. The prune verdicts mirror the
// paper's two necessary conditions; OverBudget is the suppression-
// threshold gate that rejects a node before any policy scan.
type Verdict uint8

// Node-evaluation outcomes.
const (
	// VerdictSatisfied: the node's masked microdata satisfies the
	// target policy.
	VerdictSatisfied Verdict = iota
	// VerdictViolated: the policy ran a detailed group scan and found a
	// violating group.
	VerdictViolated
	// VerdictPrunedCondition1: rejected by necessary condition 1
	// (p > maxP) before any group scan.
	VerdictPrunedCondition1
	// VerdictPrunedCondition2: rejected by the group-count bound of
	// necessary condition 2 before any group scan.
	VerdictPrunedCondition2
	// VerdictOverBudget: the node needs more suppression than the
	// threshold TS admits; no policy evaluation happened.
	VerdictOverBudget
	// VerdictError: the evaluation failed with an error.
	VerdictError

	numVerdicts
)

// String names the verdict for traces and reports.
func (v Verdict) String() string {
	switch v {
	case VerdictSatisfied:
		return "satisfied"
	case VerdictViolated:
		return "violated"
	case VerdictPrunedCondition1:
		return "pruned-condition1"
	case VerdictPrunedCondition2:
		return "pruned-condition2"
	case VerdictOverBudget:
		return "over-budget"
	case VerdictError:
		return "error"
	default:
		return "unknown"
	}
}

// Phase identifies one timed stage of the search pipeline. Phase wall
// times answer "where did the search spend its time" the way the
// paper's complexity discussion slices Algorithm 3: the one base
// group-by row scan, the per-node statistic roll-ups, the suppression
// replay, the policy group scan, and the column work of building
// masked tables.
type Phase uint8

// Pipeline phases.
const (
	// PhaseGroupBy is the base group-by: a full row scan building group
	// statistics (at most once per search with the roll-up store on).
	PhaseGroupBy Phase = iota
	// PhaseRollup is the statistics merge deriving a node's groups from
	// an already-evaluated descendant's (plus the level-map assembly).
	PhaseRollup
	// PhaseSuppress is the suppression step: counting violating tuples
	// against the budget and removing sub-k groups (on rows or on
	// statistics).
	PhaseSuppress
	// PhasePolicy is the policy verdict: the detailed group scan of
	// Algorithm 1/2 or any composed policy.
	PhasePolicy
	// PhaseGeneralize is per-node column work on the row path:
	// assembling the generalized table from cached columns.
	PhaseGeneralize
	// PhaseMaterialize is the masked-table build for a node the
	// statistics already proved satisfying.
	PhaseMaterialize
	// PhaseSearch is the root span of one strategy call; every other
	// phase recorded on the strategy's own goroutine nests under it.
	PhaseSearch
	// PhaseFrontier is the Pareto frontier pass (scan + scoring +
	// dominance reduction), a child of PhaseSearch.
	PhaseFrontier
	// PhaseRepair is an incremental session's lattice ascent from a
	// violating incumbent node.
	PhaseRepair

	numPhases
)

// String names the phase for reports.
func (p Phase) String() string {
	switch p {
	case PhaseGroupBy:
		return "base-group-by"
	case PhaseRollup:
		return "rollup"
	case PhaseSuppress:
		return "suppress"
	case PhasePolicy:
		return "policy-scan"
	case PhaseGeneralize:
		return "generalize"
	case PhaseMaterialize:
		return "materialize"
	case PhaseSearch:
		return "search"
	case PhaseFrontier:
		return "frontier-scan"
	case PhaseRepair:
		return "repair-ascent"
	default:
		return "unknown"
	}
}

// maxWorkers bounds the per-worker utilization table; worker ids wrap
// beyond it (the engine clamps pools to GOMAXPROCS-sized counts, far
// below this).
const maxWorkers = 64

// Recorder aggregates telemetry for one or more searches. The zero
// value is NOT ready; build one with NewRecorder. A nil *Recorder is
// the disabled implementation: every method no-ops (and Start avoids
// the clock read entirely), so callers thread nil through instrumented
// paths without guards.
type Recorder struct {
	verdicts [numVerdicts]atomic.Int64
	nodeLat  histogram

	phaseNs     [numPhases]atomic.Int64
	phaseSelfNs [numPhases]atomic.Int64
	phaseCount  [numPhases]atomic.Int64

	colHits, colMisses, colBytes atomic.Int64
	mapHits, mapMisses           atomic.Int64

	rollupMerges, rollupReuses, rollupScans atomic.Int64

	suppressedRows atomic.Int64
	poolSize       atomic.Int64
	workerNs       [maxWorkers]atomic.Int64

	budgetStops, panicsRecovered atomic.Int64

	groupsRecheck, repairAscents, coldFallbacks atomic.Int64

	frontierScored, frontierMembers     atomic.Int64
	frontierDominated, frontierCutSkips atomic.Int64

	// Progress gauges: the live-observability view (obs.Server's
	// /progress endpoint) reads these while a search is in flight.
	startUnixNs    int64 // set once at NewRecorder; no atomics needed
	latticeNodes   atomic.Int64
	budgetUsed     atomic.Int64
	budgetMax      atomic.Int64
	deadlineUnixNs atomic.Int64
	memUsed        atomic.Int64
	memBudget      atomic.Int64

	mu       sync.Mutex
	policies map[string]*policyAgg

	bestMu     sync.Mutex
	bestNode   string
	bestHeight int
}

type policyAgg struct {
	count, satisfied, ns int64
}

// NewRecorder returns an enabled, empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		policies:    make(map[string]*policyAgg),
		startUnixNs: time.Now().UnixNano(),
	}
}

// Enabled reports whether telemetry is being collected (r non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Start returns the current time when recording is enabled and the
// zero time otherwise — the disabled path never touches the clock.
// Pair it with PhaseEnd / Since.
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// PhaseEnd records one completed flat phase span started at start (a
// Start result): a leaf timing whose self time equals its total. Use
// StartSpan/End when the phase parents nested work.
func (r *Recorder) PhaseEnd(p Phase, start time.Time) {
	if r == nil {
		return
	}
	ns := time.Since(start).Nanoseconds()
	r.phaseNs[p].Add(ns)
	r.phaseSelfNs[p].Add(ns)
	r.phaseCount[p].Add(1)
}

// NodeEvaluated records one lattice-node evaluation: its verdict
// counter and its latency histogram sample.
func (r *Recorder) NodeEvaluated(v Verdict, d time.Duration) {
	if r == nil {
		return
	}
	if v >= numVerdicts {
		v = VerdictError
	}
	r.verdicts[v].Add(1)
	r.nodeLat.observe(d.Nanoseconds())
}

// WorkerBusy attributes evaluation time to one worker of the engine's
// pool (the serial path is worker 0).
func (r *Recorder) WorkerBusy(id int, d time.Duration) {
	if r == nil {
		return
	}
	if id < 0 {
		id = 0
	}
	r.workerNs[id%maxWorkers].Add(d.Nanoseconds())
}

// SetPoolSize records the evaluation pool width (a gauge; the maximum
// observed value wins, so nested subset searches don't shrink it).
func (r *Recorder) SetPoolSize(n int) {
	if r == nil {
		return
	}
	for {
		cur := r.poolSize.Load()
		if int64(n) <= cur || r.poolSize.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// CacheColumn records one generalized-column cache access: a hit
// (entry already present) or a miss, with the freshly built column's
// estimated size in bytes (0 on hits).
func (r *Recorder) CacheColumn(hit bool, bytes int64) {
	if r == nil {
		return
	}
	if hit {
		r.colHits.Add(1)
		return
	}
	r.colMisses.Add(1)
	r.colBytes.Add(bytes)
}

// CacheLevelMap records one level-map cache access (the code
// translations the roll-up layer moves group keys with).
func (r *Recorder) CacheLevelMap(hit bool) {
	if r == nil {
		return
	}
	if hit {
		r.mapHits.Add(1)
	} else {
		r.mapMisses.Add(1)
	}
}

// RollupMerge records a node whose statistics were derived by merging
// a descendant's groups instead of scanning rows.
func (r *Recorder) RollupMerge() {
	if r == nil {
		return
	}
	r.rollupMerges.Add(1)
}

// RollupReuse records a node whose statistics were already in the
// roll-up store (computed by or for another evaluation).
func (r *Recorder) RollupReuse() {
	if r == nil {
		return
	}
	r.rollupReuses.Add(1)
}

// RollupRowScan records a node whose statistics fell back to a full
// row scan (the lattice bottom, or a non-nested hierarchy).
func (r *Recorder) RollupRowScan() {
	if r == nil {
		return
	}
	r.rollupScans.Add(1)
}

// AddSuppressedRows accumulates tuples removed by suppression at
// evaluated nodes that passed the budget gate.
func (r *Recorder) AddSuppressedRows(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.suppressedRows.Add(n)
}

// BudgetStop records one search stopped early by a tripped budget
// limit or a cancelled context (counted once per strategy call — the
// limiter publishes a single stop reason).
func (r *Recorder) BudgetStop() {
	if r == nil {
		return
	}
	r.budgetStops.Add(1)
}

// PanicRecovered records one node evaluation whose panic the engine
// recovered into an error outcome.
func (r *Recorder) PanicRecovered() {
	if r == nil {
		return
	}
	r.panicsRecovered.Add(1)
}

// GroupsRecheck accumulates groups re-verdicted by an incremental
// session's O(changed-groups) fast path.
func (r *Recorder) GroupsRecheck(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.groupsRecheck.Add(n)
}

// RepairAscent records one repair pass: the incremental session found
// the published node violated and climbed the lattice from it instead
// of searching cold.
func (r *Recorder) RepairAscent() {
	if r == nil {
		return
	}
	r.repairAscents.Add(1)
}

// ColdFallback records one full batch-strategy run inside an
// incremental session — the initial publish, or a republish the repair
// ascent could not settle.
func (r *Recorder) ColdFallback() {
	if r == nil {
		return
	}
	r.coldFallbacks.Add(1)
}

// FrontierScored records one satisfying lattice node scored with the
// statistics-native loss metrics during a frontier scan.
func (r *Recorder) FrontierScored() {
	if r == nil {
		return
	}
	r.frontierScored.Add(1)
}

// FrontierCutSkip records one lattice node the frontier scan skipped
// because it lies in the dominated up-set of an already-scored node.
func (r *Recorder) FrontierCutSkip() {
	if r == nil {
		return
	}
	r.frontierCutSkips.Add(1)
}

// FrontierReduced records one dominance reduction: scored entries in,
// kept frontier members out.
func (r *Recorder) FrontierReduced(scored, kept int64) {
	if r == nil {
		return
	}
	r.frontierMembers.Add(kept)
	r.frontierDominated.Add(scored - kept)
}

// Span is one hierarchical phase timing: a wall-clock interval whose
// children (spans started with this span as parent) are subtracted to
// give the phase's self time, so nested pipeline stages — a frontier
// scan inside a search, a row-scan fallback inside a roll-up — carry
// exact attribution instead of double counting. The zero Span (what a
// nil Recorder's StartSpan returns) is disabled: End no-ops and a
// pointer to it is a valid parent.
//
// Spans are designed for one call tree: Start and End run on the
// goroutine that owns the span, while child time accumulates atomically
// so a span may parent work handed to other goroutines (self time is
// then clamped at zero when concurrent children overlap its wall
// clock).
type Span struct {
	childNs int64 // atomic; first field for 64-bit alignment
	rec     *Recorder
	phase   Phase
	parent  *Span
	start   time.Time
}

// StartSpan opens a hierarchical phase span. parent may be nil (a root
// span) or a disabled span; the disabled Recorder returns a disabled
// span without touching the clock. End the span exactly once.
func (r *Recorder) StartSpan(p Phase, parent *Span) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, phase: p, parent: parent, start: time.Now()}
}

// End closes the span: its total wall time lands in the phase table,
// its self time (total minus recorded children, floored at zero) in the
// self column, and the total is reported upward to the parent. End is
// idempotent — later calls no-op — so a strategy may End its root span
// explicitly before snapshotting and still defer End for error paths.
func (s *Span) End() {
	if s == nil || s.rec == nil {
		return
	}
	tot := time.Since(s.start).Nanoseconds()
	self := tot - atomic.LoadInt64(&s.childNs)
	if self < 0 {
		self = 0
	}
	s.rec.phaseNs[s.phase].Add(tot)
	s.rec.phaseSelfNs[s.phase].Add(self)
	s.rec.phaseCount[s.phase].Add(1)
	if s.parent != nil && s.parent.rec != nil {
		atomic.AddInt64(&s.parent.childNs, tot)
	}
	s.rec = nil
}

// AddLatticeNodes grows the lattice-size gauge: the total number of
// nodes in scope for the search (summed across Incognito's subset
// lattices and an incremental session's repeated republishes), the
// denominator of the /progress completion fraction.
func (r *Recorder) AddLatticeNodes(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.latticeNodes.Add(n)
}

// NoteBudgetNodes publishes the node budget's consumption (used out of
// max; max 0 = unlimited). Called at reduction time, so the gauge
// advances exactly as the deterministic spend does.
func (r *Recorder) NoteBudgetNodes(used, max int64) {
	if r == nil {
		return
	}
	r.budgetUsed.Store(used)
	r.budgetMax.Store(max)
}

// NoteDeadline publishes the search's absolute wall-clock deadline.
func (r *Recorder) NoteDeadline(t time.Time) {
	if r == nil || t.IsZero() {
		return
	}
	r.deadlineUnixNs.Store(t.UnixNano())
}

// NoteMem publishes the generalized-column cache's estimated bytes
// against its budget (budget 0 = unlimited).
func (r *Recorder) NoteMem(used, budget int64) {
	if r == nil {
		return
	}
	r.memUsed.Store(used)
	r.memBudget.Store(budget)
}

// NoteBest publishes the best satisfying node observed so far (its
// String form and lattice height). Strategies call it from the
// deterministic reduction, so the gauge never depends on scheduling.
func (r *Recorder) NoteBest(node string, height int) {
	if r == nil {
		return
	}
	r.bestMu.Lock()
	r.bestNode, r.bestHeight = node, height
	r.bestMu.Unlock()
}

// PolicyEval records one policy evaluation (by policy name) started at
// start: its latency and whether the policy was satisfied.
func (r *Recorder) PolicyEval(name string, start time.Time, satisfied bool) {
	if r == nil {
		return
	}
	d := time.Since(start).Nanoseconds()
	r.mu.Lock()
	agg := r.policies[name]
	if agg == nil {
		agg = &policyAgg{}
		r.policies[name] = agg
	}
	agg.count++
	agg.ns += d
	if satisfied {
		agg.satisfied++
	}
	r.mu.Unlock()
}
