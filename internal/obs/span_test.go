package obs

import (
	"sync"
	"testing"
	"time"
)

func phaseStat(rep *Report, p Phase) (PhaseStat, bool) {
	for _, ps := range rep.Phases {
		if ps.Phase == p.String() {
			return ps, true
		}
	}
	return PhaseStat{}, false
}

// TestSpanNesting: a child span's total must be subtracted from its
// parent's self time, and the parent's total must cover the child.
func TestSpanNesting(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan(PhaseSearch, nil)
	time.Sleep(2 * time.Millisecond)
	child := rec.StartSpan(PhaseFrontier, &root)
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()

	rep := rec.Snapshot()
	search, ok := phaseStat(rep, PhaseSearch)
	if !ok {
		t.Fatal("no search phase recorded")
	}
	frontier, ok := phaseStat(rep, PhaseFrontier)
	if !ok {
		t.Fatal("no frontier phase recorded")
	}
	if search.Count != 1 || frontier.Count != 1 {
		t.Fatalf("counts = %d/%d", search.Count, frontier.Count)
	}
	if search.TotalNs < frontier.TotalNs {
		t.Fatalf("parent total %d < child total %d", search.TotalNs, frontier.TotalNs)
	}
	// Self is computed as total minus the exact child total.
	if want := search.TotalNs - frontier.TotalNs; search.SelfNs != want {
		t.Fatalf("parent self = %d, want total-child = %d", search.SelfNs, want)
	}
	// The child has no children of its own: self == total.
	if frontier.SelfNs != frontier.TotalNs {
		t.Fatalf("leaf self = %d, total = %d", frontier.SelfNs, frontier.TotalNs)
	}
}

// TestSpanEndIdempotent: a strategy Ends its root span explicitly
// before snapshotting and again via defer; only the first may record.
func TestSpanEndIdempotent(t *testing.T) {
	rec := NewRecorder()
	sp := rec.StartSpan(PhaseSearch, nil)
	sp.End()
	sp.End()
	sp.End()
	rep := rec.Snapshot()
	search, _ := phaseStat(rep, PhaseSearch)
	if search.Count != 1 {
		t.Fatalf("span recorded %d times", search.Count)
	}
}

// TestSpanDisabled: the nil recorder's span must be inert end to end,
// including as a parent of enabled spans.
func TestSpanDisabled(t *testing.T) {
	var nilRec *Recorder
	sp := nilRec.StartSpan(PhaseSearch, nil)
	sp.End() // no-op, no panic
	var nilSpan *Span
	nilSpan.End()

	// An enabled child under a disabled parent records itself and drops
	// the upward report.
	rec := NewRecorder()
	child := rec.StartSpan(PhaseFrontier, &sp)
	child.End()
	rep := rec.Snapshot()
	if fr, ok := phaseStat(rep, PhaseFrontier); !ok || fr.Count != 1 {
		t.Fatalf("child under disabled parent = %+v", fr)
	}
}

// TestSpanConcurrentChildren: children ended on other goroutines must
// accumulate into the parent atomically (run with -race), and a parent
// whose concurrent children overlap its wall clock clamps self at zero
// instead of going negative.
func TestSpanConcurrentChildren(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan(PhaseSearch, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := rec.StartSpan(PhaseRollup, &root)
			time.Sleep(time.Millisecond)
			child.End()
		}()
	}
	wg.Wait()
	root.End()
	rep := rec.Snapshot()
	rollup, _ := phaseStat(rep, PhaseRollup)
	if rollup.Count != 8 {
		t.Fatalf("children recorded = %d", rollup.Count)
	}
	search, _ := phaseStat(rep, PhaseSearch)
	if search.SelfNs < 0 {
		t.Fatalf("parent self went negative: %d", search.SelfNs)
	}
}
