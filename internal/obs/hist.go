package obs

import (
	"fmt"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of every latency histogram:
// bucket i holds samples with duration < histBase<<i nanoseconds, and
// the last bucket is the overflow. With histBase = 1µs the covered
// range is 1µs .. ~0.5s, which brackets node-evaluation latencies from
// a six-node toy lattice to a full Adult scan.
const (
	histBuckets = 20
	histBase    = int64(1000) // 1µs in ns
)

// histogram is a fixed-bucket latency histogram with lock-free
// observation; exact sum/count/max ride along so averages and the true
// maximum don't suffer bucket quantization.
type histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func (h *histogram) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// bucketFor maps a duration to its bucket index.
func bucketFor(ns int64) int {
	bound := histBase
	for i := 0; i < histBuckets-1; i++ {
		if ns < bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

// HistSnapshot is the immutable view of a histogram.
type HistSnapshot struct {
	// Buckets[i] counts samples below UpperNs(i); the last bucket is
	// the overflow.
	Buckets [histBuckets]int64 `json:"buckets"`
	Count   int64              `json:"count"`
	SumNs   int64              `json:"sum_ns"`
	MaxNs   int64              `json:"max_ns"`
}

func (h *histogram) snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	s.MaxNs = h.max.Load()
	return s
}

// UpperNs returns bucket i's exclusive upper bound in nanoseconds
// (the overflow bucket reports the histogram's true maximum).
func (s HistSnapshot) UpperNs(i int) int64 {
	if i >= histBuckets-1 {
		return s.MaxNs
	}
	return histBase << i
}

// MeanNs returns the exact mean sample, 0 when empty.
func (s HistSnapshot) MeanNs() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / s.Count
}

// QuantileNs estimates the q-quantile (0 < q <= 1) from the buckets:
// the upper bound of the bucket holding the q*Count-th sample. Bucket
// granularity makes it an upper estimate, good to a factor of two.
func (s HistSnapshot) QuantileNs(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i := 0; i < histBuckets; i++ {
		seen += s.Buckets[i]
		if seen >= target {
			return s.UpperNs(i)
		}
	}
	return s.MaxNs
}

// fmtNs renders a nanosecond quantity human-readably (report tables).
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
