package explain

import (
	"bytes"
	"strings"
	"testing"

	"psk/internal/obs"
)

// trace builds a JSONL stream from events via the real tracer.
func trace(t *testing.T, events []obs.Event) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	for _, ev := range events {
		tr.Emit(ev)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

func testEvents() []obs.Event {
	return []obs.Event{
		{Node: []int{0, 0}, Height: 0, Verdict: "pruned-condition1", DurationNs: 100, AtNs: 10},
		{Node: []int{1, 0}, Height: 1, Verdict: "pruned-condition2", DurationNs: 200, AtNs: 20},
		{Node: []int{0, 1}, Height: 1, Verdict: "over-budget", DurationNs: 300, AtNs: 30},
		{Node: []int{1, 1}, Height: 2, Verdict: "violated", DurationNs: 400, AtNs: 40},
		{Node: []int{2, 1}, Height: 3, Verdict: "satisfied", DurationNs: 500, AtNs: 50},
	}
}

func testReport() *obs.Report {
	return &obs.Report{Nodes: obs.NodeCounts{
		Evaluated: 5, Satisfied: 1, Violated: 1,
		PrunedCondition1: 1, PrunedCondition2: 1, OverBudget: 1,
	}}
}

func TestAuditLevelsAndTimeline(t *testing.T) {
	a, err := FromReader(trace(t, testEvents()), testReport())
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != 5 || a.SchemaVersion != obs.TraceSchemaVersion {
		t.Fatalf("events/schema = %d/v%d", a.Events, a.SchemaVersion)
	}
	if len(a.Levels) != 4 {
		t.Fatalf("levels = %d", len(a.Levels))
	}
	l1 := a.Levels[1]
	if l1.Height != 1 || l1.Evaluated != 2 || l1.PrunedCondition2 != 1 || l1.OverBudget != 1 {
		t.Fatalf("level 1 = %+v", l1)
	}
	if l1.PruneRate() != 1.0 {
		t.Fatalf("level-1 prune rate = %v", l1.PruneRate())
	}
	if l1.WallNs != 500 {
		t.Fatalf("level-1 wall = %d", l1.WallNs)
	}
	l2 := a.Levels[2]
	if l2.Scanned != 1 || l2.Violated != 1 {
		t.Fatalf("level 2 = %+v", l2)
	}
	if len(a.Timeline) != 5 {
		t.Fatalf("timeline = %d points", len(a.Timeline))
	}
	last := a.Timeline[len(a.Timeline)-1]
	if last.Nodes != 5 || last.AtNs != 50 || last.WallNs != 1500 {
		t.Fatalf("timeline end = %+v", last)
	}
	for i := 1; i < len(a.Timeline); i++ {
		if a.Timeline[i].AtNs < a.Timeline[i-1].AtNs || a.Timeline[i].Nodes <= a.Timeline[i-1].Nodes {
			t.Fatalf("timeline not monotone at %d", i)
		}
	}
}

// TestAuditReconcileMismatch: a report from a different run must be
// rejected, not silently tabulated.
func TestAuditReconcileMismatch(t *testing.T) {
	rep := testReport()
	rep.Nodes.Satisfied = 2
	rep.Nodes.Evaluated = 6
	if _, err := FromReader(trace(t, testEvents()), rep); err == nil {
		t.Fatal("mismatched report reconciled")
	}
}

// TestAuditNoReport: a nil report skips reconciliation but still
// builds the attribution.
func TestAuditNoReport(t *testing.T) {
	a, err := FromReader(trace(t, testEvents()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Totals(); got.Evaluated != 5 {
		t.Fatalf("totals = %+v", got)
	}
	if err := a.Reconcile(); err == nil {
		t.Fatal("Reconcile without a report must error")
	}
}

// TestAuditV1Trace: events without schema_version/at_ns (a pre-version
// trace) fall back to cumulative wall time as the timeline coordinate.
func TestAuditV1Trace(t *testing.T) {
	v1 := strings.NewReader(
		`{"node":[0,0],"height":0,"verdict":"violated","duration_ns":100,"worker":0}` + "\n" +
			`{"node":[1,0],"height":1,"verdict":"satisfied","duration_ns":200,"worker":0}` + "\n")
	a, err := FromReader(v1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.SchemaVersion != 0 {
		t.Fatalf("schema = %d, want 0 (v1)", a.SchemaVersion)
	}
	if len(a.Timeline) != 2 || a.Timeline[0].AtNs != 100 || a.Timeline[1].AtNs != 300 {
		t.Fatalf("v1 timeline = %+v", a.Timeline)
	}
}

func TestAuditUnknownVerdict(t *testing.T) {
	bad := strings.NewReader(`{"node":[0],"height":0,"verdict":"maybe","duration_ns":1}` + "\n")
	if _, err := FromReader(bad, nil); err == nil {
		t.Fatal("unknown verdict accepted")
	}
}

// TestAuditDownsample: a long trace's timeline must stay bounded and
// keep the final point.
func TestAuditDownsample(t *testing.T) {
	var events []obs.Event
	for i := 0; i < 3000; i++ {
		events = append(events, obs.Event{
			Node: []int{i}, Height: i % 7, Verdict: "violated",
			DurationNs: 10, AtNs: int64(i + 1),
		})
	}
	a, err := FromReader(trace(t, events), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Timeline) > 2*timelinePoints {
		t.Fatalf("timeline = %d points, cap %d", len(a.Timeline), 2*timelinePoints)
	}
	last := a.Timeline[len(a.Timeline)-1]
	if last.Nodes != 3000 || last.AtNs != 3000 {
		t.Fatalf("final point = %+v", last)
	}
}

// TestWriteText: the human rendering must include the level table, the
// timeline and the efficiency block, and String must match it.
func TestWriteText(t *testing.T) {
	rep := testReport()
	rep.Cache = obs.CacheStats{Hits: 3, Misses: 1, Bytes: 4096}
	rep.Rollup = obs.RollupStats{Merges: 2, Reuses: 1, RowScans: 1}
	a, err := FromReader(trace(t, testEvents()), rep)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := a.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"5 trace events (schema v2)",
		"prune attribution by lattice level:",
		"budget consumption timeline:",
		"75.0% hit rate",
		"75.0% scans avoided",
		"total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
	if a.String() != out {
		t.Fatal("String differs from WriteText")
	}

	var js bytes.Buffer
	if err := a.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"schema_version": 2`) {
		t.Fatal("WriteJSON missing schema_version")
	}
}
