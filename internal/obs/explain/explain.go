// Package explain turns a search's raw observability artifacts — the
// JSONL node trace and the final metrics Report — into an audit: per
// lattice level, why nodes were dismissed (necessary-condition 1,
// necessary-condition 2, over the suppression budget) versus scanned in
// detail; how the node budget was consumed over time; and how well the
// column cache and roll-up store amortized work. The audit reconciles
// exactly against the Report's node counters, so a mismatch (a trace
// truncated mid-run, events from a different search) is an error, not a
// silently wrong table.
package explain

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"psk/internal/obs"
)

// LevelStat is the prune attribution for one lattice height: of the
// nodes evaluated at this level, how many each gate dismissed and how
// many reached a detailed group scan.
type LevelStat struct {
	// Height is the lattice height (level-vector sum).
	Height int `json:"height"`
	// Evaluated is the number of node evaluations at this height.
	Evaluated int64 `json:"evaluated"`
	// PrunedCondition1 / PrunedCondition2 / OverBudget are dismissals by
	// each gate, in gate order.
	PrunedCondition1 int64 `json:"pruned_condition1"`
	PrunedCondition2 int64 `json:"pruned_condition2"`
	OverBudget       int64 `json:"over_budget"`
	// Scanned is satisfied + violated: evaluations that survived every
	// gate and paid for a detailed group scan.
	Scanned   int64 `json:"scanned"`
	Satisfied int64 `json:"satisfied"`
	Violated  int64 `json:"violated"`
	Errors    int64 `json:"errors"`
	// WallNs is the summed evaluation wall time at this height.
	WallNs int64 `json:"wall_ns"`
}

// PruneRate is the fraction of this level's evaluations a gate stopped
// before a detailed scan.
func (l LevelStat) PruneRate() float64 {
	if l.Evaluated == 0 {
		return 0
	}
	return float64(l.PrunedCondition1+l.PrunedCondition2+l.OverBudget) / float64(l.Evaluated)
}

// TimelinePoint is one step of the budget-consumption timeline: after
// the Nth evaluation (in emission order), the cumulative node count and
// spent wall time. AtNs is the trace's emission offset where available
// (schema v2); on v1 traces it falls back to cumulative evaluation
// time, which overstates elapsed time for parallel runs but preserves
// ordering.
type TimelinePoint struct {
	AtNs   int64 `json:"at_ns"`
	Nodes  int64 `json:"nodes"`
	WallNs int64 `json:"wall_ns"`
}

// Audit is the reconciled explain view of one search run.
type Audit struct {
	// SchemaVersion is the highest trace schema seen in the stream.
	SchemaVersion int `json:"schema_version"`
	// Events is the total trace events consumed.
	Events int64 `json:"events"`
	// Levels is the per-height prune attribution, height ascending.
	Levels []LevelStat `json:"levels"`
	// Timeline is the budget-consumption curve, downsampled to at most
	// timelinePoints entries (always keeping the final point).
	Timeline []TimelinePoint `json:"timeline"`
	// Report echoes the metrics report the audit reconciled against.
	Report *obs.Report `json:"report,omitempty"`
}

// timelinePoints caps the timeline length so an audit of a multi-GB
// trace stays small; the curve keeps every k-th event plus the last.
const timelinePoints = 256

// FromReader streams a JSONL trace into an Audit, never holding the
// event stream in memory, and reconciles it against rep (nil rep skips
// reconciliation — useful when only the trace survived).
func FromReader(r io.Reader, rep *obs.Report) (*Audit, error) {
	a := &Audit{Report: rep}
	byHeight := map[int]*LevelStat{}
	var points []TimelinePoint
	var cumNodes, cumWall, lastAt int64
	err := obs.ScanEvents(r, func(ev obs.Event) error {
		a.Events++
		if ev.SchemaVersion > a.SchemaVersion {
			a.SchemaVersion = ev.SchemaVersion
		}
		ls := byHeight[ev.Height]
		if ls == nil {
			ls = &LevelStat{Height: ev.Height}
			byHeight[ev.Height] = ls
		}
		ls.Evaluated++
		ls.WallNs += ev.DurationNs
		switch ev.Verdict {
		case obs.VerdictSatisfied.String():
			ls.Satisfied++
			ls.Scanned++
		case obs.VerdictViolated.String():
			ls.Violated++
			ls.Scanned++
		case obs.VerdictPrunedCondition1.String():
			ls.PrunedCondition1++
		case obs.VerdictPrunedCondition2.String():
			ls.PrunedCondition2++
		case obs.VerdictOverBudget.String():
			ls.OverBudget++
		case obs.VerdictError.String():
			ls.Errors++
		default:
			return fmt.Errorf("explain: unknown verdict %q in trace event %d", ev.Verdict, a.Events)
		}
		cumNodes++
		cumWall += ev.DurationNs
		at := ev.AtNs
		if at == 0 { // v1 trace: synthesize a monotone coordinate
			at = cumWall
		}
		if at > lastAt {
			lastAt = at
		}
		points = append(points, TimelinePoint{AtNs: lastAt, Nodes: cumNodes, WallNs: cumWall})
		if len(points) > 2*timelinePoints {
			points = downsample(points)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(points) > timelinePoints {
		points = downsample(points)
	}
	a.Timeline = points
	for _, ls := range byHeight {
		a.Levels = append(a.Levels, *ls)
	}
	sort.Slice(a.Levels, func(i, j int) bool { return a.Levels[i].Height < a.Levels[j].Height })
	if rep != nil {
		if err := a.Reconcile(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// downsample halves a timeline by keeping every other point, always
// retaining the final one.
func downsample(points []TimelinePoint) []TimelinePoint {
	out := points[:0]
	for i := 0; i < len(points); i += 2 {
		out = append(out, points[i])
	}
	if last := points[len(points)-1]; len(out) == 0 || out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}

// Totals sums the per-level attribution into one NodeCounts — the view
// Reconcile compares against the Report.
func (a *Audit) Totals() obs.NodeCounts {
	var n obs.NodeCounts
	for _, l := range a.Levels {
		n.Evaluated += l.Evaluated
		n.Satisfied += l.Satisfied
		n.Violated += l.Violated
		n.PrunedCondition1 += l.PrunedCondition1
		n.PrunedCondition2 += l.PrunedCondition2
		n.OverBudget += l.OverBudget
		n.Errors += l.Errors
	}
	return n
}

// Reconcile checks that the trace-derived verdict totals exactly equal
// the Report's node counters. The two are written by the same engine
// callback, so any difference means the artifacts don't describe the
// same completed run.
func (a *Audit) Reconcile() error {
	if a.Report == nil {
		return fmt.Errorf("explain: no report to reconcile against")
	}
	got, want := a.Totals(), a.Report.Nodes
	if got != want {
		return fmt.Errorf("explain: trace does not reconcile with report: trace %+v, report %+v", got, want)
	}
	return nil
}

// WriteJSON writes the audit as indented JSON.
func (a *Audit) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteText renders the audit as the human-readable block `pskanon
// -explain` prints: the per-level prune table, the budget timeline
// (coarsened to ten rows), and the efficiency summary from the report.
func (a *Audit) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "explain: %d trace events (schema v%d)\n\n", a.Events, maxInt(a.SchemaVersion, 1))

	fmt.Fprintln(w, "prune attribution by lattice level:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "height\tevaluated\tcond-1\tcond-2\tover-budget\tscanned\tsatisfied\tviolated\terrors\tprune%\twall\t")
	tot := a.Totals()
	var totWall int64
	for _, l := range a.Levels {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%s\t\n",
			l.Height, l.Evaluated, l.PrunedCondition1, l.PrunedCondition2, l.OverBudget,
			l.Scanned, l.Satisfied, l.Violated, l.Errors, 100*l.PruneRate(), fmtNs(l.WallNs))
		totWall += l.WallNs
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%s\t\n",
		tot.Evaluated, tot.PrunedCondition1, tot.PrunedCondition2, tot.OverBudget,
		tot.Satisfied+tot.Violated, tot.Satisfied, tot.Violated, tot.Errors,
		100*tot.PruneRate(), fmtNs(totWall))
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(a.Timeline) > 0 {
		fmt.Fprintln(w, "\nbudget consumption timeline:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "at\tnodes\twall spent\t")
		step := (len(a.Timeline) + 9) / 10
		for i := 0; i < len(a.Timeline); i += step {
			p := a.Timeline[i]
			fmt.Fprintf(tw, "%s\t%d\t%s\t\n", fmtNs(p.AtNs), p.Nodes, fmtNs(p.WallNs))
		}
		if last := a.Timeline[len(a.Timeline)-1]; (len(a.Timeline)-1)%step != 0 {
			fmt.Fprintf(tw, "%s\t%d\t%s\t\n", fmtNs(last.AtNs), last.Nodes, fmtNs(last.WallNs))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if r := a.Report; r != nil {
		fmt.Fprintln(w, "\nefficiency (from metrics report):")
		fmt.Fprintf(w, "  column cache: %.1f%% hit rate (%d hits / %d misses), ~%d KiB built\n",
			100*r.Cache.HitRate(), r.Cache.Hits, r.Cache.Misses, r.Cache.Bytes/1024)
		ru := r.Rollup
		if tot := ru.Merges + ru.Reuses + ru.RowScans; tot > 0 {
			fmt.Fprintf(w, "  rollup store: %.1f%% scans avoided (%d merges, %d reuses, %d row scans)\n",
				100*float64(ru.Merges+ru.Reuses)/float64(tot), ru.Merges, ru.Reuses, ru.RowScans)
		}
		if fr := r.Frontier; fr.Scored > 0 || fr.CutSkipped > 0 {
			fmt.Fprintf(w, "  frontier: %d scored, %d members, %d dominated, %d cut-skipped\n",
				fr.Scored, fr.Members, fr.Dominated, fr.CutSkipped)
		}
		if r.BudgetStops > 0 {
			fmt.Fprintf(w, "  budget stops: %d (search ended early)\n", r.BudgetStops)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fmtNs mirrors the report's duration formatting: ns below 10µs, then
// µs/ms/s at sensible cutoffs.
func fmtNs(ns int64) string {
	switch {
	case ns < 10_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 10_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 10_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

// String renders WriteText to a string (convenience for the CLI).
func (a *Audit) String() string {
	var b strings.Builder
	_ = a.WriteText(&b)
	return b.String()
}
