package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report is an immutable snapshot of a Recorder, the shape surfaced
// through search results, the psk facade and the CLI's -metrics-json.
// All fields are plain data so a Report marshals to JSON as-is.
type Report struct {
	// Nodes breaks node evaluations down by verdict.
	Nodes NodeCounts `json:"nodes"`
	// NodeLatency is the per-evaluation latency histogram.
	NodeLatency HistSnapshot `json:"node_latency"`
	// Phases is the per-phase wall-time table, in pipeline order.
	Phases []PhaseStat `json:"phases"`
	// Cache summarizes the generalized-column cache.
	Cache CacheStats `json:"cache"`
	// Rollup summarizes the group-statistics roll-up store.
	Rollup RollupStats `json:"rollup"`
	// Policies is the per-policy evaluation table, sorted by name.
	Policies []PolicyStat `json:"policies,omitempty"`
	// Workers is the per-worker busy-time table (workers that did any
	// work), id ascending.
	Workers []WorkerStat `json:"workers,omitempty"`
	// PoolSize is the widest evaluation pool observed.
	PoolSize int64 `json:"pool_size"`
	// SuppressedRows totals tuples removed by suppression at evaluated
	// nodes that passed the budget gate.
	SuppressedRows int64 `json:"suppressed_rows"`
	// BudgetStops counts searches stopped early by a tripped budget
	// limit or a cancelled context.
	BudgetStops int64 `json:"budget_stops"`
	// PanicsRecovered counts node evaluations whose panic the engine
	// recovered into an error outcome.
	PanicsRecovered int64 `json:"panics_recovered"`
	// Incremental summarizes streaming-session work (all zero for batch
	// searches).
	Incremental IncrementalStats `json:"incremental"`
	// Frontier summarizes the Pareto frontier pass (all zero unless the
	// search ran in frontier mode).
	Frontier FrontierStats `json:"frontier"`
}

// IncrementalStats summarizes an incremental session's republish work.
type IncrementalStats struct {
	// GroupsRecheck: groups re-verdicted by the O(changed-groups) path.
	GroupsRecheck int64 `json:"groups_recheck"`
	// RepairAscents: republishes repaired by lattice ascent from the
	// incumbent node.
	RepairAscents int64 `json:"repair_ascents"`
	// ColdFallbacks: full batch-strategy runs (initial publish included).
	ColdFallbacks int64 `json:"cold_fallbacks"`
}

// FrontierStats summarizes the frontier scan and its dominance
// reduction.
type FrontierStats struct {
	// Scored: satisfying nodes scored with the stats-native metrics.
	Scored int64 `json:"scored"`
	// Members: entries surviving the dominance reduction.
	Members int64 `json:"members"`
	// Dominated: scored entries the reduction eliminated.
	Dominated int64 `json:"dominated"`
	// CutSkipped: nodes skipped as members of a dominated up-set.
	CutSkipped int64 `json:"cut_skipped"`
}

// NodeCounts is the verdict breakdown of node evaluations.
type NodeCounts struct {
	Evaluated        int64 `json:"evaluated"`
	Satisfied        int64 `json:"satisfied"`
	Violated         int64 `json:"violated"`
	PrunedCondition1 int64 `json:"pruned_condition1"`
	PrunedCondition2 int64 `json:"pruned_condition2"`
	OverBudget       int64 `json:"over_budget"`
	Errors           int64 `json:"errors"`
}

// PruneRate is the fraction of evaluations the necessary conditions
// and the suppression budget rejected before a detailed group scan.
func (n NodeCounts) PruneRate() float64 {
	if n.Evaluated == 0 {
		return 0
	}
	return float64(n.PrunedCondition1+n.PrunedCondition2+n.OverBudget) / float64(n.Evaluated)
}

// PhaseStat is one row of the phase wall-time table. TotalNs is the
// phase's whole wall-clock footprint; SelfNs subtracts the time its
// child spans (StartSpan nesting) accounted for, so a parent phase like
// "search" attributes time to itself only when no nested phase claimed
// it. Flat PhaseEnd timings have SelfNs == TotalNs.
type PhaseStat struct {
	Phase   string `json:"phase"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	SelfNs  int64  `json:"self_ns"`
}

// CacheStats summarizes the generalized-column cache: column accesses
// (Hits/Misses/Bytes, bytes being the estimated memory of freshly
// built columns) and level-map accesses.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Bytes     int64 `json:"bytes"`
	MapHits   int64 `json:"map_hits"`
	MapMisses int64 `json:"map_misses"`
}

// HitRate is the column hit fraction (0 when the cache was untouched).
func (c CacheStats) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// RollupStats summarizes how node statistics were obtained.
type RollupStats struct {
	// Merges: derived by merging a descendant's groups.
	Merges int64 `json:"merges"`
	// Reuses: already present in the store.
	Reuses int64 `json:"reuses"`
	// RowScans: full row scans (the lattice bottom, or fallback).
	RowScans int64 `json:"row_scans"`
}

// PolicyStat is one row of the per-policy evaluation table.
type PolicyStat struct {
	Name      string `json:"name"`
	Count     int64  `json:"count"`
	Satisfied int64  `json:"satisfied"`
	TotalNs   int64  `json:"total_ns"`
}

// WorkerStat is one row of the worker utilization table.
type WorkerStat struct {
	ID     int   `json:"id"`
	BusyNs int64 `json:"busy_ns"`
}

// Snapshot captures the recorder's current totals; nil recorders
// snapshot to nil. Snapshots are consistent per counter (atomic loads)
// but not across counters; take them after the searches of interest
// complete, as the strategies do for Result.Report.
func (r *Recorder) Snapshot() *Report {
	if r == nil {
		return nil
	}
	rep := &Report{}
	rep.Nodes = NodeCounts{
		Satisfied:        r.verdicts[VerdictSatisfied].Load(),
		Violated:         r.verdicts[VerdictViolated].Load(),
		PrunedCondition1: r.verdicts[VerdictPrunedCondition1].Load(),
		PrunedCondition2: r.verdicts[VerdictPrunedCondition2].Load(),
		OverBudget:       r.verdicts[VerdictOverBudget].Load(),
		Errors:           r.verdicts[VerdictError].Load(),
	}
	rep.Nodes.Evaluated = rep.Nodes.Satisfied + rep.Nodes.Violated +
		rep.Nodes.PrunedCondition1 + rep.Nodes.PrunedCondition2 +
		rep.Nodes.OverBudget + rep.Nodes.Errors
	rep.NodeLatency = r.nodeLat.snapshot()
	for p := Phase(0); p < numPhases; p++ {
		if c := r.phaseCount[p].Load(); c > 0 {
			rep.Phases = append(rep.Phases, PhaseStat{
				Phase: p.String(), Count: c,
				TotalNs: r.phaseNs[p].Load(), SelfNs: r.phaseSelfNs[p].Load(),
			})
		}
	}
	rep.Cache = CacheStats{
		Hits: r.colHits.Load(), Misses: r.colMisses.Load(), Bytes: r.colBytes.Load(),
		MapHits: r.mapHits.Load(), MapMisses: r.mapMisses.Load(),
	}
	rep.Rollup = RollupStats{
		Merges: r.rollupMerges.Load(), Reuses: r.rollupReuses.Load(), RowScans: r.rollupScans.Load(),
	}
	r.mu.Lock()
	for name, agg := range r.policies {
		rep.Policies = append(rep.Policies, PolicyStat{Name: name, Count: agg.count, Satisfied: agg.satisfied, TotalNs: agg.ns})
	}
	r.mu.Unlock()
	sort.Slice(rep.Policies, func(i, j int) bool { return rep.Policies[i].Name < rep.Policies[j].Name })
	for id := range r.workerNs {
		if ns := r.workerNs[id].Load(); ns > 0 {
			rep.Workers = append(rep.Workers, WorkerStat{ID: id, BusyNs: ns})
		}
	}
	rep.PoolSize = r.poolSize.Load()
	rep.SuppressedRows = r.suppressedRows.Load()
	rep.BudgetStops = r.budgetStops.Load()
	rep.PanicsRecovered = r.panicsRecovered.Load()
	rep.Incremental = IncrementalStats{
		GroupsRecheck: r.groupsRecheck.Load(),
		RepairAscents: r.repairAscents.Load(),
		ColdFallbacks: r.coldFallbacks.Load(),
	}
	rep.Frontier = FrontierStats{
		Scored:     r.frontierScored.Load(),
		Members:    r.frontierMembers.Load(),
		Dominated:  r.frontierDominated.Load(),
		CutSkipped: r.frontierCutSkips.Load(),
	}
	return rep
}

// DeterministicCounters returns the counters that are independent of
// goroutine scheduling for barrier-style searches (Exhaustive,
// BottomUp, AllMinimal, Incognito — every strategy whose evaluated
// node set doesn't depend on cancellation timing): verdict counts,
// suppressed rows, row scans, and policy/suppress evaluation counts.
// The telemetry determinism tests pin serial == parallel on exactly
// this view; latencies, worker tables, and counters whose attribution
// depends on completion order (cache hit split, rollup merge sources)
// are deliberately excluded.
func (r *Report) DeterministicCounters() map[string]int64 {
	out := map[string]int64{
		"nodes.evaluated":            r.Nodes.Evaluated,
		"nodes.satisfied":            r.Nodes.Satisfied,
		"nodes.violated":             r.Nodes.Violated,
		"nodes.pruned_condition1":    r.Nodes.PrunedCondition1,
		"nodes.pruned_condition2":    r.Nodes.PrunedCondition2,
		"nodes.over_budget":          r.Nodes.OverBudget,
		"nodes.errors":               r.Nodes.Errors,
		"suppressed_rows":            r.SuppressedRows,
		"rollup.row_scans":           r.Rollup.RowScans,
		"incremental.groups_recheck": r.Incremental.GroupsRecheck,
		"incremental.repair_ascents": r.Incremental.RepairAscents,
		"incremental.cold_fallbacks": r.Incremental.ColdFallbacks,
		"frontier.scored":            r.Frontier.Scored,
		"frontier.members":           r.Frontier.Members,
		"frontier.dominated":         r.Frontier.Dominated,
		"frontier.cut_skipped":       r.Frontier.CutSkipped,
	}
	for _, p := range r.Phases {
		if p.Phase == PhaseSuppress.String() || p.Phase == PhasePolicy.String() {
			out["phase."+p.Phase+".count"] = p.Count
		}
	}
	for _, p := range r.Policies {
		out["policy."+p.Name+".count"] = p.Count
		out["policy."+p.Name+".satisfied"] = p.Satisfied
	}
	return out
}

// Progress is the live in-flight view of a search, the plain-data
// payload of obs.Server's /progress endpoint: completion against the
// lattice, the budget's consumption, and the best satisfying node seen
// so far. Unlike Report it is meant to be read while the search runs —
// every field is an independent atomic gauge, so the view is consistent
// per field, not across fields.
type Progress struct {
	// NodesEvaluated counts lattice-node evaluations so far.
	NodesEvaluated int64 `json:"nodes_evaluated"`
	// LatticeNodes is the total node count in scope for the search (sum
	// over Incognito's subset lattices); 0 until a strategy starts.
	LatticeNodes int64 `json:"lattice_nodes"`
	// Fraction is NodesEvaluated/LatticeNodes (0 when unknown). Pruning
	// may finish a search well below 1.0; it never overstates progress.
	Fraction float64 `json:"fraction"`
	// BestNode is the String form of the best satisfying node found so
	// far ("" until a hit), with its lattice height.
	BestNode   string `json:"best_node,omitempty"`
	BestHeight int    `json:"best_height,omitempty"`
	// BudgetNodesUsed/Max mirror Budget.MaxNodes consumption (Max 0 =
	// unlimited).
	BudgetNodesUsed int64 `json:"budget_nodes_used"`
	BudgetNodesMax  int64 `json:"budget_nodes_max"`
	// DeadlineUnixNs is the absolute deadline (0 = none).
	DeadlineUnixNs int64 `json:"deadline_unix_ns"`
	// MemUsedBytes/MemBudgetBytes mirror the cache-memory budget
	// (budget 0 = unlimited; used only advances while a budget is set).
	MemUsedBytes   int64 `json:"mem_used_bytes"`
	MemBudgetBytes int64 `json:"mem_budget_bytes"`
	// ElapsedNs is the time since the recorder was created.
	ElapsedNs int64 `json:"elapsed_ns"`
	// SuppressedRows mirrors the running suppression total.
	SuppressedRows int64 `json:"suppressed_rows"`
}

// Progress snapshots the live gauges; nil recorders return the zero
// value. Safe to call at any moment from any goroutine.
func (r *Recorder) Progress() Progress {
	if r == nil {
		return Progress{}
	}
	var p Progress
	for v := Verdict(0); v < numVerdicts; v++ {
		p.NodesEvaluated += r.verdicts[v].Load()
	}
	p.LatticeNodes = r.latticeNodes.Load()
	if p.LatticeNodes > 0 {
		p.Fraction = float64(p.NodesEvaluated) / float64(p.LatticeNodes)
	}
	r.bestMu.Lock()
	p.BestNode, p.BestHeight = r.bestNode, r.bestHeight
	r.bestMu.Unlock()
	p.BudgetNodesUsed = r.budgetUsed.Load()
	p.BudgetNodesMax = r.budgetMax.Load()
	p.DeadlineUnixNs = r.deadlineUnixNs.Load()
	p.MemUsedBytes = r.memUsed.Load()
	p.MemBudgetBytes = r.memBudget.Load()
	p.ElapsedNs = time.Now().UnixNano() - r.startUnixNs
	p.SuppressedRows = r.suppressedRows.Load()
	return p
}

// String renders the report as the human-readable block `pskanon
// -stats` and friends print.
func (r *Report) String() string {
	if r == nil {
		return "telemetry: disabled\n"
	}
	var b strings.Builder
	n := r.Nodes
	fmt.Fprintf(&b, "nodes evaluated: %d (satisfied %d, violated %d, pruned-c1 %d, pruned-c2 %d, over-budget %d, errors %d)\n",
		n.Evaluated, n.Satisfied, n.Violated, n.PrunedCondition1, n.PrunedCondition2, n.OverBudget, n.Errors)
	fmt.Fprintf(&b, "prune rate: %.1f%%   suppressed rows at evaluated nodes: %d\n", 100*n.PruneRate(), r.SuppressedRows)
	if r.NodeLatency.Count > 0 {
		fmt.Fprintf(&b, "node latency: mean %s, p50 %s, p90 %s, p99 %s, max %s\n",
			fmtNs(r.NodeLatency.MeanNs()), fmtNs(r.NodeLatency.QuantileNs(0.50)),
			fmtNs(r.NodeLatency.QuantileNs(0.90)), fmtNs(r.NodeLatency.QuantileNs(0.99)),
			fmtNs(r.NodeLatency.MaxNs))
	}
	if len(r.Phases) > 0 {
		b.WriteString("phases:\n")
		for _, p := range r.Phases {
			avg := int64(0)
			if p.Count > 0 {
				avg = p.TotalNs / p.Count
			}
			fmt.Fprintf(&b, "  %-14s %8d calls  total %10s  self %10s  avg %8s\n",
				p.Phase, p.Count, fmtNs(p.TotalNs), fmtNs(p.SelfNs), fmtNs(avg))
		}
	}
	c := r.Cache
	fmt.Fprintf(&b, "column cache: %d hits, %d misses (%.1f%% hit rate), ~%d KiB built; level maps: %d hits, %d misses\n",
		c.Hits, c.Misses, 100*c.HitRate(), c.Bytes/1024, c.MapHits, c.MapMisses)
	fmt.Fprintf(&b, "rollup store: %d merges, %d reuses, %d row scans\n",
		r.Rollup.Merges, r.Rollup.Reuses, r.Rollup.RowScans)
	if r.BudgetStops > 0 || r.PanicsRecovered > 0 {
		fmt.Fprintf(&b, "degradation: %d budget stops, %d panics recovered\n",
			r.BudgetStops, r.PanicsRecovered)
	}
	if inc := r.Incremental; inc.GroupsRecheck > 0 || inc.RepairAscents > 0 || inc.ColdFallbacks > 0 {
		fmt.Fprintf(&b, "incremental: %d groups rechecked, %d repair ascents, %d cold fallbacks\n",
			inc.GroupsRecheck, inc.RepairAscents, inc.ColdFallbacks)
	}
	if fr := r.Frontier; fr.Scored > 0 || fr.CutSkipped > 0 {
		fmt.Fprintf(&b, "frontier: %d scored, %d members, %d dominated, %d cut-skipped\n",
			fr.Scored, fr.Members, fr.Dominated, fr.CutSkipped)
	}
	if len(r.Policies) > 0 {
		b.WriteString("policies:\n")
		for _, p := range r.Policies {
			avg := int64(0)
			if p.Count > 0 {
				avg = p.TotalNs / p.Count
			}
			fmt.Fprintf(&b, "  %-48s %8d evals  %8d satisfied  total %10s  avg %8s\n",
				p.Name, p.Count, p.Satisfied, fmtNs(p.TotalNs), fmtNs(avg))
		}
	}
	if len(r.Workers) > 0 {
		fmt.Fprintf(&b, "workers (pool %d):", r.PoolSize)
		for _, w := range r.Workers {
			fmt.Fprintf(&b, " #%d %s", w.ID, fmtNs(w.BusyNs))
		}
		b.WriteString("\n")
	}
	return b.String()
}
