package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderIsNoOp: the disabled implementation must be callable
// through every method without panicking and without observing time.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	t0 := r.Start()
	if !t0.IsZero() {
		t.Fatal("nil recorder touched the clock")
	}
	r.PhaseEnd(PhasePolicy, t0)
	r.NodeEvaluated(VerdictSatisfied, time.Millisecond)
	r.WorkerBusy(3, time.Millisecond)
	r.SetPoolSize(8)
	r.CacheColumn(true, 0)
	r.CacheColumn(false, 100)
	r.CacheLevelMap(true)
	r.RollupMerge()
	r.RollupReuse()
	r.RollupRowScan()
	r.AddSuppressedRows(5)
	r.PolicyEval("p", t0, true)
	if rep := r.Snapshot(); rep != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", rep)
	}
}

func TestRecorderCounters(t *testing.T) {
	r := NewRecorder()
	r.NodeEvaluated(VerdictSatisfied, 2*time.Microsecond)
	r.NodeEvaluated(VerdictViolated, 10*time.Microsecond)
	r.NodeEvaluated(VerdictPrunedCondition2, time.Microsecond)
	r.NodeEvaluated(VerdictOverBudget, time.Microsecond)
	r.CacheColumn(false, 4096)
	r.CacheColumn(true, 0)
	r.CacheColumn(true, 0)
	r.CacheLevelMap(false)
	r.CacheLevelMap(true)
	r.RollupMerge()
	r.RollupMerge()
	r.RollupRowScan()
	r.AddSuppressedRows(7)
	r.SetPoolSize(4)
	r.SetPoolSize(2) // gauge keeps the max
	r.WorkerBusy(1, time.Millisecond)
	start := r.Start()
	r.PhaseEnd(PhasePolicy, start)
	r.PolicyEval("3-anonymity", start, true)
	r.PolicyEval("3-anonymity", start, false)

	rep := r.Snapshot()
	if rep.Nodes.Evaluated != 4 || rep.Nodes.Satisfied != 1 || rep.Nodes.Violated != 1 ||
		rep.Nodes.PrunedCondition2 != 1 || rep.Nodes.OverBudget != 1 {
		t.Fatalf("node counts = %+v", rep.Nodes)
	}
	if got := rep.Nodes.PruneRate(); got != 0.5 {
		t.Fatalf("prune rate = %v, want 0.5", got)
	}
	if rep.Cache.Hits != 2 || rep.Cache.Misses != 1 || rep.Cache.Bytes != 4096 {
		t.Fatalf("cache = %+v", rep.Cache)
	}
	if rep.Cache.MapHits != 1 || rep.Cache.MapMisses != 1 {
		t.Fatalf("map cache = %+v", rep.Cache)
	}
	if rep.Rollup.Merges != 2 || rep.Rollup.RowScans != 1 {
		t.Fatalf("rollup = %+v", rep.Rollup)
	}
	if rep.SuppressedRows != 7 {
		t.Fatalf("suppressed = %d", rep.SuppressedRows)
	}
	if rep.PoolSize != 4 {
		t.Fatalf("pool = %d, want max-observed 4", rep.PoolSize)
	}
	if len(rep.Policies) != 1 || rep.Policies[0].Count != 2 || rep.Policies[0].Satisfied != 1 {
		t.Fatalf("policies = %+v", rep.Policies)
	}
	if len(rep.Workers) != 1 || rep.Workers[0].ID != 1 {
		t.Fatalf("workers = %+v", rep.Workers)
	}
	if rep.NodeLatency.Count != 4 || rep.NodeLatency.MaxNs != 10_000 {
		t.Fatalf("latency = %+v", rep.NodeLatency)
	}
	// The report must render and marshal.
	if s := rep.String(); !strings.Contains(s, "nodes evaluated: 4") {
		t.Fatalf("report string:\n%s", s)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderConcurrency hammers one recorder from many goroutines;
// run with -race. Totals must be exact: atomics may not drop updates.
func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.NodeEvaluated(Verdict(i%int(numVerdicts)), time.Duration(i)*time.Microsecond)
				r.CacheColumn(i%2 == 0, 8)
				r.RollupMerge()
				r.AddSuppressedRows(1)
				r.WorkerBusy(w, time.Microsecond)
				r.PolicyEval("p", r.Start(), i%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	rep := r.Snapshot()
	if rep.Nodes.Evaluated != workers*per {
		t.Fatalf("evaluated = %d, want %d", rep.Nodes.Evaluated, workers*per)
	}
	if rep.Rollup.Merges != workers*per || rep.SuppressedRows != workers*per {
		t.Fatalf("merges/suppressed = %d/%d", rep.Rollup.Merges, rep.SuppressedRows)
	}
	if got := rep.Cache.Hits + rep.Cache.Misses; got != workers*per {
		t.Fatalf("cache accesses = %d", got)
	}
	if rep.Policies[0].Count != workers*per {
		t.Fatalf("policy evals = %d", rep.Policies[0].Count)
	}
	if len(rep.Workers) != workers {
		t.Fatalf("worker rows = %d", len(rep.Workers))
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(500)              // < 1µs -> bucket 0
	h.observe(1500)             // bucket 1
	h.observe(int64(time.Hour)) // overflow
	s := h.snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.QuantileNs(1.0) != s.MaxNs {
		t.Fatalf("q100 = %d, want max %d", s.QuantileNs(1.0), s.MaxNs)
	}
	if s.QuantileNs(0.34) != 1000 {
		t.Fatalf("q34 = %d, want 1000 (bucket-0 upper bound)", s.QuantileNs(0.34))
	}
	if s.QuantileNs(0.67) != 2000 {
		t.Fatalf("q67 = %d, want 2000 (bucket-1 upper bound)", s.QuantileNs(0.67))
	}
}

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	want := []Event{
		{Node: []int{1, 0, 2}, Height: 3, Verdict: "satisfied", DurationNs: 1234, Worker: 0},
		{Node: []int{0, 0, 0}, Height: 0, Verdict: "over-budget", DurationNs: 99, Worker: 2},
	}
	for _, ev := range want {
		tr.Emit(ev)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != int64(len(want)) {
		t.Fatalf("events = %d", tr.Events())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Fatalf("lines = %d, want %d", lines, len(want))
	}
	got, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events", len(got))
	}
	for i := range want {
		if got[i].Verdict != want[i].Verdict || got[i].Height != want[i].Height ||
			got[i].DurationNs != want[i].DurationNs || got[i].Worker != want[i].Worker ||
			len(got[i].Node) != len(want[i].Node) {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	var nilTracer *Tracer
	nilTracer.Emit(Event{})
	if nilTracer.Events() != 0 || nilTracer.Flush() != nil {
		t.Fatal("nil tracer misbehaved")
	}
}
