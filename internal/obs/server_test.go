package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func get(t *testing.T, addr, path string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServerRequiresRecorder(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil, nil); err == nil {
		t.Fatal("server accepted a nil recorder")
	}
}

func TestServerEndpoints(t *testing.T) {
	rec := NewRecorder()
	rec.NodeEvaluated(VerdictSatisfied, time.Microsecond)
	rec.NodeEvaluated(VerdictViolated, time.Microsecond)
	rec.AddLatticeNodes(10)
	rec.NoteBest("<A1, M0>", 1)
	sampler := NewSampler(rec, time.Second, 8)
	sampler.Poll()

	srv, err := NewServer("127.0.0.1:0", rec, sampler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	var health map[string]string
	if err := json.Unmarshal(get(t, addr, "/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["state"] != "running" {
		t.Fatalf("healthz = %v", health)
	}

	var rep Report
	if err := json.Unmarshal(get(t, addr, "/metrics"), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Nodes.Evaluated != 2 {
		t.Fatalf("live metrics evaluated = %d", rep.Nodes.Evaluated)
	}

	var prog struct {
		State        string   `json:"state"`
		Progress     Progress `json:"progress"`
		SamplesTaken int      `json:"samples_taken"`
		Samples      []Sample `json:"samples"`
	}
	if err := json.Unmarshal(get(t, addr, "/progress"), &prog); err != nil {
		t.Fatal(err)
	}
	if prog.State != "running" {
		t.Fatalf("progress state = %q", prog.State)
	}
	if prog.Progress.NodesEvaluated != 2 || prog.Progress.LatticeNodes != 10 {
		t.Fatalf("progress = %+v", prog.Progress)
	}
	if prog.Progress.Fraction != 0.2 {
		t.Fatalf("fraction = %v", prog.Progress.Fraction)
	}
	if prog.Progress.BestNode != "<A1, M0>" || prog.Progress.BestHeight != 1 {
		t.Fatalf("best = %q/%d", prog.Progress.BestNode, prog.Progress.BestHeight)
	}
	if prog.SamplesTaken != 1 || len(prog.Samples) != 1 {
		t.Fatalf("samples = %d/%d", prog.SamplesTaken, len(prog.Samples))
	}

	// The pprof mux must be mounted.
	if body := get(t, addr, "/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof cmdline empty")
	}
}

// TestServerFinalize: after Finalize, /metrics must serve the frozen
// report byte-identically to the CLI's -metrics-json encoding, /healthz
// must flip to done, and WaitScraped must observe the scrape.
func TestServerFinalize(t *testing.T) {
	rec := NewRecorder()
	rec.NodeEvaluated(VerdictSatisfied, time.Microsecond)
	srv, err := NewServer("127.0.0.1:0", rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	if srv.Finalized() {
		t.Fatal("finalized before Finalize")
	}
	if srv.WaitScraped(10 * time.Millisecond) {
		t.Fatal("scraped before any finalized scrape")
	}

	rep := rec.Snapshot()
	srv.Finalize(rep)
	if !srv.Finalized() {
		t.Fatal("Finalize did not stick")
	}

	// More recorder activity after Finalize must not leak into /metrics.
	rec.NodeEvaluated(VerdictViolated, time.Microsecond)

	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	got := get(t, addr, "/metrics")
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("finalized /metrics differs from encoder output:\ngot  %d bytes\nwant %d bytes", len(got), want.Len())
	}

	var health map[string]string
	if err := json.Unmarshal(get(t, addr, "/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health["state"] != "done" {
		t.Fatalf("state after finalize = %q", health["state"])
	}
	if !srv.WaitScraped(time.Second) {
		t.Fatal("WaitScraped missed the finalized scrape")
	}
	if srv.WaitScraped(0) {
		t.Fatal("WaitScraped(0) must report false")
	}
}
