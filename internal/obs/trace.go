package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceSchemaVersion is the version stamped into every emitted Event.
// Version history:
//
//	1 — node/height/verdict/duration_ns/worker (PR 4; events carry no
//	    schema_version field, so a zero value means version 1)
//	2 — adds schema_version and at_ns (emission offset from tracer
//	    creation), the fields the explain pipeline's timeline needs.
//
// Consumers must ignore unknown fields and treat missing ones as zero,
// so any reader of version n can read all versions <= n.
const TraceSchemaVersion = 2

// Event is one JSONL trace record: a single lattice-node evaluation.
// The schema is stable (DESIGN.md section 11): one object per line,
// unknown fields must be ignored by consumers.
type Event struct {
	// SchemaVersion is the trace schema the event was written with
	// (TraceSchemaVersion at write time; 0 on pre-versioning traces,
	// which readers treat as version 1).
	SchemaVersion int `json:"schema_version,omitempty"`
	// Node is the lattice node's level vector, in QI order.
	Node []int `json:"node"`
	// Height is the node's lattice height (the level sum).
	Height int `json:"height"`
	// Verdict is the evaluation outcome (Verdict.String()).
	Verdict string `json:"verdict"`
	// DurationNs is the evaluation's wall time in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
	// AtNs is the event's emission offset from the tracer's creation in
	// nanoseconds — a per-search timeline coordinate (0 on version-1
	// traces). Emission happens when the evaluation completes, so AtNs
	// approximates the evaluation's end time.
	AtNs int64 `json:"at_ns,omitempty"`
	// Worker is the engine worker that ran the evaluation (0 on the
	// serial path).
	Worker int `json:"worker"`
}

// Tracer streams one Event per lattice-node evaluation to an
// io.Writer as JSON Lines. A nil *Tracer is the disabled
// implementation (Emit no-ops), mirroring the Recorder convention.
// Emission is serialized by a mutex — tracing is an offline-analysis
// tool, not a hot-path default — and buffered; call Flush (or Close)
// before reading the output.
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	err    error
	epoch  time.Time
	events atomic.Int64
}

// NewTracer wraps w in a buffered JSONL event stream.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw), epoch: time.Now()}
}

// Emit writes one event (one line), stamping the schema version and the
// timeline offset unless the caller set them. The first write error is
// retained and reported by Flush; later events are dropped.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if ev.SchemaVersion == 0 {
		ev.SchemaVersion = TraceSchemaVersion
	}
	if ev.AtNs == 0 {
		ev.AtNs = time.Since(t.epoch).Nanoseconds()
	}
	if t.err == nil {
		t.err = t.enc.Encode(ev)
	}
	t.mu.Unlock()
	t.events.Add(1)
}

// Events returns how many events were emitted (including any dropped
// by a write error).
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	return t.events.Load()
}

// Flush drains the buffer and returns the first error seen on the
// stream, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// ScanEvents streams a JSONL trace through fn, one event at a time, in
// file order — the reader to use on multi-GB traces from million-row
// searches, which must never be required to fit in memory. fn returning
// an error stops the scan and surfaces that error. A decode error
// surfaces with the events already consumed left consumed.
func ScanEvents(r io.Reader, fn func(Event) error) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// ReadEvents parses a JSONL trace back into a slice — the convenience
// wrapper over ScanEvents for tests and small traces; use ScanEvents
// directly when the trace may not fit in memory.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	err := ScanEvents(r, func(ev Event) error {
		out = append(out, ev)
		return nil
	})
	return out, err
}
