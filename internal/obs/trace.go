package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one JSONL trace record: a single lattice-node evaluation.
// The schema is stable (DESIGN.md section 11): one object per line,
// unknown fields must be ignored by consumers.
type Event struct {
	// Node is the lattice node's level vector, in QI order.
	Node []int `json:"node"`
	// Height is the node's lattice height (the level sum).
	Height int `json:"height"`
	// Verdict is the evaluation outcome (Verdict.String()).
	Verdict string `json:"verdict"`
	// DurationNs is the evaluation's wall time in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
	// Worker is the engine worker that ran the evaluation (0 on the
	// serial path).
	Worker int `json:"worker"`
}

// Tracer streams one Event per lattice-node evaluation to an
// io.Writer as JSON Lines. A nil *Tracer is the disabled
// implementation (Emit no-ops), mirroring the Recorder convention.
// Emission is serialized by a mutex — tracing is an offline-analysis
// tool, not a hot-path default — and buffered; call Flush (or Close)
// before reading the output.
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	err    error
	events atomic.Int64
}

// NewTracer wraps w in a buffered JSONL event stream.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event (one line). The first write error is retained
// and reported by Flush; later events are dropped.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.err == nil {
		t.err = t.enc.Encode(ev)
	}
	t.mu.Unlock()
	t.events.Add(1)
}

// Events returns how many events were emitted (including any dropped
// by a write error).
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	return t.events.Load()
}

// Flush drains the buffer and returns the first error seen on the
// stream, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// ReadEvents parses a JSONL trace back into events — the offline half
// of the tracer, used by tests and the telemetry experiment to verify
// a trace file matches the reported counters.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}
