package obs

import (
	"testing"
	"time"
)

func TestSamplerNilIsDisabled(t *testing.T) {
	if s := NewSampler(nil, time.Millisecond, 4); s != nil {
		t.Fatal("sampler over a nil recorder must be nil")
	}
	var s *Sampler
	s.Start()
	s.Poll()
	s.Stop()
	if s.Samples() != nil || s.Total() != 0 || s.Interval() != 0 {
		t.Fatal("nil sampler misbehaved")
	}
}

func TestSamplerDefaults(t *testing.T) {
	s := NewSampler(NewRecorder(), 0, 0)
	if s.Interval() != 250*time.Millisecond {
		t.Fatalf("default interval = %v", s.Interval())
	}
	if c := cap(s.ring); c != 512 {
		t.Fatalf("default capacity = %d", c)
	}
}

// TestSamplerRingWraparound: more polls than capacity must keep only
// the most recent window, in chronological order, while Total keeps
// counting.
func TestSamplerRingWraparound(t *testing.T) {
	rec := NewRecorder()
	s := NewSampler(rec, time.Second, 4)
	const polls = 7
	for i := 0; i < polls; i++ {
		rec.NodeEvaluated(VerdictViolated, time.Microsecond)
		s.Poll()
	}
	if s.Total() != polls {
		t.Fatalf("total = %d, want %d", s.Total(), polls)
	}
	got := s.Samples()
	if len(got) != 4 {
		t.Fatalf("retained = %d, want ring capacity 4", len(got))
	}
	// Poll i sees i+1 cumulative nodes; the retained window is the last
	// four polls: 4, 5, 6, 7.
	for i, smp := range got {
		if want := int64(polls - 3 + i); smp.Nodes != want {
			t.Fatalf("sample %d nodes = %d, want %d", i, smp.Nodes, want)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].AtNs < got[i-1].AtNs {
			t.Fatalf("samples out of order: %d before %d", got[i].AtNs, got[i-1].AtNs)
		}
	}
}

// TestSamplerIntervalDeltas: rates must be computed over the interval
// since the previous sample, not cumulatively.
func TestSamplerIntervalDeltas(t *testing.T) {
	rec := NewRecorder()
	s := NewSampler(rec, time.Second, 8)

	rec.CacheColumn(true, 0)
	rec.CacheColumn(false, 100)
	s.Poll() // interval 1: 1 hit / 2 accesses

	rec.CacheColumn(true, 0)
	rec.CacheColumn(true, 0)
	rec.CacheColumn(true, 0)
	rec.CacheColumn(false, 100)
	rec.RollupMerge()
	rec.RollupRowScan()
	rec.NoteMem(50, 200)
	s.Poll() // interval 2: 3 hits / 4 accesses, 1 merge / 2 lookups

	got := s.Samples()
	if len(got) != 2 {
		t.Fatalf("samples = %d", len(got))
	}
	if got[0].CacheHitRate != 0.5 {
		t.Fatalf("interval-1 hit rate = %v, want 0.5", got[0].CacheHitRate)
	}
	if got[1].CacheHitRate != 0.75 {
		t.Fatalf("interval-2 hit rate = %v, want 0.75 (delta, not cumulative)", got[1].CacheHitRate)
	}
	if got[1].RollupReuseRate != 0.5 {
		t.Fatalf("interval-2 rollup reuse = %v, want 0.5", got[1].RollupReuseRate)
	}
	if got[0].MemHeadroom != 1 {
		t.Fatalf("unbudgeted headroom = %v, want 1", got[0].MemHeadroom)
	}
	if got[1].MemHeadroom != 0.75 {
		t.Fatalf("budgeted headroom = %v, want 0.75", got[1].MemHeadroom)
	}
}

// TestSamplerTicker: Start must sample on its own without Poll calls.
func TestSamplerTicker(t *testing.T) {
	rec := NewRecorder()
	s := NewSampler(rec, time.Millisecond, 32)
	s.Start()
	deadline := time.Now().Add(time.Second)
	for s.Total() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if s.Total() == 0 {
		t.Fatal("ticker took no samples in a second")
	}
	s.Stop() // second Stop must be safe
}
