package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket edges: bucket i holds
// samples strictly below histBase<<i, an exact boundary lands in the
// next bucket, and everything at or past the last bound overflows.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0},
		{999, 0},
		{1000, 1}, // exact bound is exclusive below, lands above
		{1999, 1},
		{2000, 2},
		{histBase<<17 - 1, 17},
		{histBase << 17, 18},
		{histBase<<18 - 1, 18},
		{histBase << 18, histBuckets - 1}, // first overflow value
		{int64(time.Hour), histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.ns); got != c.bucket {
			t.Errorf("bucketFor(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}

	var h histogram
	h.observe(-5) // negative clamps to zero
	s := h.snapshot()
	if s.Buckets[0] != 1 || s.SumNs != 0 {
		t.Fatalf("negative observation: %+v", s)
	}
	// UpperNs must mirror the bucket bounds; the overflow bucket reports
	// the true maximum.
	if s.UpperNs(0) != 1000 || s.UpperNs(5) != 1000<<5 {
		t.Fatalf("UpperNs = %d/%d", s.UpperNs(0), s.UpperNs(5))
	}
	h.observe(int64(time.Hour))
	s = h.snapshot()
	if s.UpperNs(histBuckets-1) != int64(time.Hour) {
		t.Fatalf("overflow upper = %d, want observed max", s.UpperNs(histBuckets-1))
	}
}

// TestReportJSONRoundTrip: a fully populated report must survive
// marshal → unmarshal → marshal byte-identically — the stability the
// finalized /metrics byte-match and the -metrics-json consumers rely
// on.
func TestReportJSONRoundTrip(t *testing.T) {
	rec := NewRecorder()
	for v := Verdict(0); v < numVerdicts; v++ {
		rec.NodeEvaluated(v, time.Duration(v+1)*time.Microsecond)
	}
	start := rec.Start()
	rec.PhaseEnd(PhaseGroupBy, start)
	sp := rec.StartSpan(PhaseSearch, nil)
	sp.End()
	rec.CacheColumn(true, 0)
	rec.CacheColumn(false, 2048)
	rec.CacheLevelMap(true)
	rec.RollupMerge()
	rec.RollupReuse()
	rec.RollupRowScan()
	rec.AddSuppressedRows(3)
	rec.SetPoolSize(4)
	rec.WorkerBusy(2, time.Millisecond)
	rec.BudgetStop()
	rec.GroupsRecheck(12)
	rec.RepairAscent()
	rec.ColdFallback()
	rec.FrontierScored()
	rec.FrontierReduced(1, 1)
	rec.PolicyEval("2-sensitive-3-anonymity", rec.Start(), true)

	rep := rec.Snapshot()
	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip drifted:\nfirst  %s\nsecond %s", first, second)
	}
	if back.Nodes != rep.Nodes || back.Cache != rep.Cache || back.Rollup != rep.Rollup {
		t.Fatal("round-tripped counters differ")
	}
}

// TestProgressGauges: the live gauges must read back exactly what the
// strategies publish.
func TestProgressGauges(t *testing.T) {
	var nilRec *Recorder
	if p := nilRec.Progress(); p != (Progress{}) {
		t.Fatalf("nil progress = %+v", p)
	}

	rec := NewRecorder()
	rec.AddLatticeNodes(100)
	rec.AddLatticeNodes(60) // Incognito: subset lattices sum
	for i := 0; i < 40; i++ {
		rec.NodeEvaluated(VerdictViolated, time.Microsecond)
	}
	rec.NoteBudgetNodes(40, 500)
	deadline := time.Now().Add(time.Minute)
	rec.NoteDeadline(deadline)
	rec.NoteMem(1024, 4096)
	rec.NoteBest("<A2, M1>", 3)
	rec.AddSuppressedRows(9)

	p := rec.Progress()
	if p.NodesEvaluated != 40 || p.LatticeNodes != 160 {
		t.Fatalf("progress counts = %+v", p)
	}
	if p.Fraction != 0.25 {
		t.Fatalf("fraction = %v", p.Fraction)
	}
	if p.BudgetNodesUsed != 40 || p.BudgetNodesMax != 500 {
		t.Fatalf("budget = %d/%d", p.BudgetNodesUsed, p.BudgetNodesMax)
	}
	if p.DeadlineUnixNs != deadline.UnixNano() {
		t.Fatalf("deadline = %d", p.DeadlineUnixNs)
	}
	if p.MemUsedBytes != 1024 || p.MemBudgetBytes != 4096 {
		t.Fatalf("mem = %d/%d", p.MemUsedBytes, p.MemBudgetBytes)
	}
	if p.BestNode != "<A2, M1>" || p.BestHeight != 3 {
		t.Fatalf("best = %q/%d", p.BestNode, p.BestHeight)
	}
	if p.SuppressedRows != 9 {
		t.Fatalf("suppressed = %d", p.SuppressedRows)
	}
	if p.ElapsedNs <= 0 {
		t.Fatalf("elapsed = %d", p.ElapsedNs)
	}
}
