package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the live observatory: a stdlib-only net/http debug server
// exposing a running search's telemetry while it is in flight —
// exactly when a multi-hour 10M-row run needs visibility and the
// post-hoc Report does not exist yet. Endpoints:
//
//	/metrics  — the current Report snapshot as JSON (the same shape
//	            -metrics-json writes); after Finalize it serves the
//	            frozen final report byte-for-byte
//	/progress — the Progress gauges plus the Sampler's time-series ring
//	/healthz  — {"status":"ok","state":"running"|"done"}
//	/debug/pprof/* — the standard runtime profiles; combined with the
//	            engine's pprof worker labels, CPU samples attribute to
//	            (strategy, phase, worker)
//
// The server never touches search structures: every handler reads
// atomic gauges or snapshots the Recorder, so attaching one cannot
// change a result byte. Lifecycle: NewServer binds and serves
// immediately; Finalize freezes the /metrics payload; WaitScraped lets
// a CLI linger until a scraper has read the final report; Close shuts
// the listener down.
//
// A Server is also an http.Handler: NewHandler builds one without a
// listener, which is how cmd/pskserve mounts the same endpoints —
// per-job, under /v1/jobs/{id}/ — on the service's own mux.
type Server struct {
	rec     *Recorder
	sampler *Sampler
	mux     *http.ServeMux
	ln      net.Listener
	srv     *http.Server
	start   time.Time

	final       atomic.Pointer[Report]
	scraped     chan struct{}
	scrapedOnce sync.Once
}

// NewHandler builds the observatory's endpoints over rec without
// binding a listener; mount the returned Server on an external mux
// (it implements http.Handler, routing /metrics, /progress, /healthz
// and /debug/pprof relative to its mount point via http.StripPrefix).
// rec may not be nil; sampler may be nil (then /progress carries no
// samples). Finalize, Finalized and WaitScraped work exactly as on a
// listening server; Close is a no-op.
func NewHandler(rec *Recorder, sampler *Sampler) (*Server, error) {
	if rec == nil {
		return nil, fmt.Errorf("obs: server requires a recorder")
	}
	s := &Server{
		rec:     rec,
		sampler: sampler,
		start:   time.Now(),
		scraped: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/progress", s.handleProgress)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// NewServer binds addr (e.g. "127.0.0.1:6060", ":0" for an ephemeral
// port) and starts serving in a background goroutine. rec may not be
// nil — a server without a recorder has nothing to say. sampler may be
// nil (then /progress carries no samples).
func NewServer(addr string, rec *Recorder, sampler *Sampler) (*Server, error) {
	s, err := NewHandler(rec, sampler)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// ServeHTTP routes a request through the observatory's mux, making a
// Server mountable on an external http.ServeMux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Addr returns the bound listen address (useful with ":0"); empty for
// a NewHandler server, which never listens.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Finalize freezes the /metrics payload to rep — the exact report the
// CLI wrote to -metrics-json, so a scrape after completion and the
// file agree byte for byte. The /healthz state flips to "done".
func (s *Server) Finalize(rep *Report) {
	if rep != nil {
		s.final.Store(rep)
	}
}

// Finalized reports whether Finalize has been called.
func (s *Server) Finalized() bool { return s.final.Load() != nil }

// WaitScraped blocks until a /metrics request has been served after
// Finalize, or the timeout elapses — the linger a CLI uses so an
// external poller deterministically observes the final report before
// the process exits. Returns true when a scrape happened.
func (s *Server) WaitScraped(timeout time.Duration) bool {
	if timeout <= 0 {
		return false
	}
	select {
	case <-s.scraped:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Close shuts the listener down. In-flight handlers finish on their
// own time; no new connections are accepted. A NewHandler server has
// no listener; Close is then a no-op.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) state() string {
	if s.Finalized() {
		return "done"
	}
	return "running"
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.final.Load()
	done := rep != nil
	if rep == nil {
		rep = s.rec.Snapshot()
	}
	WriteJSON(w, rep)
	if done {
		s.scrapedOnce.Do(func() { close(s.scraped) })
	}
}

// progressPayload is the /progress response body.
type progressPayload struct {
	State string `json:"state"`
	// UptimeNs is the server's age, the scrape-side clock.
	UptimeNs int64    `json:"uptime_ns"`
	Progress Progress `json:"progress"`
	// SampleIntervalNs and SamplesTaken describe the ring: SamplesTaken
	// may exceed len(Samples) once the ring has wrapped.
	SampleIntervalNs int64    `json:"sample_interval_ns,omitempty"`
	SamplesTaken     int      `json:"samples_taken"`
	Samples          []Sample `json:"samples,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, progressPayload{
		State:            s.state(),
		UptimeNs:         time.Since(s.start).Nanoseconds(),
		Progress:         s.rec.Progress(),
		SampleIntervalNs: s.sampler.Interval().Nanoseconds(),
		SamplesTaken:     s.sampler.Total(),
		Samples:          s.sampler.Samples(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, map[string]string{"status": "ok", "state": s.state()})
}

// WriteJSON writes v with the CLI's -metrics-json encoder settings
// (two-space indent, trailing newline) so scrapes, files and service
// responses compare byte for byte. Exported for cmd/pskserve, whose
// job-result payloads embed Reports under the same contract.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
