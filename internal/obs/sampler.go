package obs

import (
	"sync"
	"time"
)

// Sample is one timestamped snapshot of Recorder deltas: the rates a
// live dashboard wants (nodes/sec, cache hit ratio, roll-up reuse) plus
// the gauges that bound them (cache bytes, memory-budget headroom).
// Rates are computed over the interval since the previous sample, so a
// flat-lining NodesPerSec during a long run is visible immediately
// instead of being averaged away by cumulative counters.
type Sample struct {
	// AtNs is the sample's offset from the sampler's start.
	AtNs int64 `json:"at_ns"`
	// Nodes is the cumulative node-evaluation count at sample time.
	Nodes int64 `json:"nodes"`
	// NodesPerSec is the evaluation rate over the sampling interval.
	NodesPerSec float64 `json:"nodes_per_sec"`
	// CacheHitRate is the generalized-column cache hit fraction over the
	// interval (0 when the cache was untouched).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// RollupReuseRate is the fraction of interval stats lookups served
	// without a row scan (merges + reuses over all three sources).
	RollupReuseRate float64 `json:"rollup_reuse_rate"`
	// CacheBytes is the cumulative estimated bytes of built columns.
	CacheBytes int64 `json:"cache_bytes"`
	// MemUsedBytes / MemBudgetBytes mirror the cache-memory budget
	// gauges; MemHeadroom is 1 - used/budget (1 when unbudgeted).
	MemUsedBytes   int64   `json:"mem_used_bytes"`
	MemBudgetBytes int64   `json:"mem_budget_bytes"`
	MemHeadroom    float64 `json:"mem_headroom"`
	// Suppressed is the cumulative suppressed-row count.
	Suppressed int64 `json:"suppressed"`
}

// samplerView is the cumulative counter set a rate is computed from.
type samplerView struct {
	atNs                      int64
	nodes                     int64
	colHits, colMisses        int64
	merges, reuses, scans     int64
	colBytes, memUsed, memMax int64
	suppressed                int64
}

// Sampler periodically snapshots a Recorder into a fixed-size ring
// buffer of Samples — the time-series half of the live observatory.
// The ring keeps the most recent Cap samples; older ones are
// overwritten, so memory is constant no matter how long a search runs.
// A nil *Sampler is disabled (every method no-ops), mirroring the
// Recorder convention, and an idle Sampler costs the search nothing:
// sampling reads a dozen atomics on its own goroutine at the configured
// cadence and never touches any search structure.
type Sampler struct {
	rec      *Recorder
	interval time.Duration

	mu    sync.Mutex
	ring  []Sample
	total int // samples ever taken; ring[total % cap] is the next slot
	prev  samplerView
	epoch time.Time

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over rec taking one sample per interval
// into a ring of capacity entries. interval <= 0 defaults to 250ms,
// capacity <= 0 to 512. A nil rec yields a nil (disabled) sampler.
func NewSampler(rec *Recorder, interval time.Duration, capacity int) *Sampler {
	if rec == nil {
		return nil
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	if capacity <= 0 {
		capacity = 512
	}
	return &Sampler{
		rec:      rec,
		interval: interval,
		ring:     make([]Sample, 0, capacity),
		epoch:    time.Now(),
	}
}

// Start launches the sampling ticker. Safe to call once; Stop ends it.
// Starting a nil or already-started sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Poll()
			}
		}
	}()
}

// Stop halts the ticker and waits for the sampling goroutine to exit.
// The ring stays readable after Stop.
func (s *Sampler) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	select {
	case <-s.stop: // already stopped
	default:
		close(s.stop)
	}
	<-s.done
}

// Poll takes one sample immediately (the ticker calls it; tests and
// dump-on-demand paths may too).
func (s *Sampler) Poll() {
	if s == nil {
		return
	}
	r := s.rec
	cur := samplerView{
		atNs:       time.Since(s.epoch).Nanoseconds(),
		colHits:    r.colHits.Load(),
		colMisses:  r.colMisses.Load(),
		merges:     r.rollupMerges.Load(),
		reuses:     r.rollupReuses.Load(),
		scans:      r.rollupScans.Load(),
		colBytes:   r.colBytes.Load(),
		memUsed:    r.memUsed.Load(),
		memMax:     r.memBudget.Load(),
		suppressed: r.suppressedRows.Load(),
	}
	for v := Verdict(0); v < numVerdicts; v++ {
		cur.nodes += r.verdicts[v].Load()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.prev
	s.prev = cur

	smp := Sample{
		AtNs:           cur.atNs,
		Nodes:          cur.nodes,
		CacheBytes:     cur.colBytes,
		MemUsedBytes:   cur.memUsed,
		MemBudgetBytes: cur.memMax,
		MemHeadroom:    1,
		Suppressed:     cur.suppressed,
	}
	if dt := cur.atNs - prev.atNs; dt > 0 {
		smp.NodesPerSec = float64(cur.nodes-prev.nodes) / (float64(dt) / 1e9)
	}
	if acc := (cur.colHits - prev.colHits) + (cur.colMisses - prev.colMisses); acc > 0 {
		smp.CacheHitRate = float64(cur.colHits-prev.colHits) / float64(acc)
	}
	warm := (cur.merges - prev.merges) + (cur.reuses - prev.reuses)
	if tot := warm + (cur.scans - prev.scans); tot > 0 {
		smp.RollupReuseRate = float64(warm) / float64(tot)
	}
	if cur.memMax > 0 {
		smp.MemHeadroom = 1 - float64(cur.memUsed)/float64(cur.memMax)
	}

	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, smp)
	} else {
		s.ring[s.total%cap(s.ring)] = smp
	}
	s.total++
}

// Samples returns the retained window in chronological order (a copy;
// at most the ring capacity, the most recent samples winning).
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	if s.total <= len(s.ring) {
		return append(out, s.ring...)
	}
	// Ring full and wrapped: oldest retained sample sits at total % cap.
	start := s.total % cap(s.ring)
	out = append(out, s.ring[start:]...)
	return append(out, s.ring[:start]...)
}

// Total reports how many samples were ever taken (>= len(Samples())).
func (s *Sampler) Total() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Interval reports the sampling cadence.
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}
