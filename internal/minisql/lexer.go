// Package minisql implements a small SQL engine over internal/table
// relations: a lexer, recursive-descent parser and evaluator for the
// SELECT subset the paper uses to define its checks —
//
//	SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age
//	SELECT COUNT(DISTINCT S) FROM IM
//
// — extended with WHERE, HAVING, ORDER BY, LIMIT and the usual
// aggregates so it is useful as a general inspection tool (cmd/pskcheck
// exposes it on the command line).
package minisql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

// keywords recognized by the lexer (matched case-insensitively).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"BY": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "AS": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"DISTINCT": true, "ASC": true, "DESC": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(input) {
					return nil, fmt.Errorf("minisql: unterminated string literal at %d", i)
				}
				if input[j] == '\'' {
					// Doubled quote is an escaped quote.
					if j+1 < len(input) && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1])) && startsValue(toks)):
			j := i + 1
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			// Multi-character operators first.
			if i+1 < len(input) {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, token{kind: tokSymbol, text: two, pos: i})
					i += 2
					continue
				}
			}
			switch c {
			case '*', ',', '(', ')', '=', '<', '>':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("minisql: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

// startsValue reports whether the previous token position admits a
// value (so '-' starts a negative number rather than being an
// operator; minisql has no arithmetic, so this is almost always true).
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	if last.kind == tokSymbol && last.text != ")" && last.text != "*" {
		return true
	}
	return last.kind == tokKeyword
}
