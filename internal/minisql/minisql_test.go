package minisql

import (
	"strings"
	"testing"

	"psk/internal/table"
)

func patientCatalog(t *testing.T) Catalog {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
		table.Field{Name: "Income", Type: table.Int},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"50", "43102", "M", "Colon Cancer", "20000"},
		{"30", "43102", "F", "Breast Cancer", "25000"},
		{"30", "43102", "F", "HIV", "30000"},
		{"20", "43102", "M", "Diabetes", "15000"},
		{"20", "43102", "M", "Diabetes", "18000"},
		{"50", "43102", "M", "Heart Disease", "40000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Catalog{"Patient": tbl, "IM": tbl}
}

func mustRun(t *testing.T, cat Catalog, q string) *table.Table {
	t.Helper()
	out, err := Run(cat, q)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	return out
}

// TestPaperKAnonymityQuery runs the paper's Section 2 check verbatim:
// SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age.
func TestPaperKAnonymityQuery(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat, "SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age")
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
	for r := 0; r < out.NumRows(); r++ {
		v, _ := out.Value(r, "COUNT(*)")
		if v.Int() != 2 {
			t.Errorf("group %d count = %d, want 2 (Table 1 is 2-anonymous)", r, v.Int())
		}
	}
}

// TestPaperViolationQuery: groups with count below k identify
// k-anonymity violations, exactly as the paper describes.
func TestPaperViolationQuery(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat,
		"SELECT Sex, ZipCode, Age, COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age HAVING COUNT(*) < 3")
	if out.NumRows() != 3 {
		t.Errorf("violating groups for k=3: %d, want 3 (all pairs)", out.NumRows())
	}
	out = mustRun(t, cat,
		"SELECT Sex FROM Patient GROUP BY Sex, ZipCode, Age HAVING COUNT(*) < 2")
	if out.NumRows() != 0 {
		t.Errorf("violating groups for k=2: %d, want 0", out.NumRows())
	}
}

// TestPaperCondition1Query runs the paper's Condition 1 check:
// SELECT COUNT(DISTINCT S) FROM IM.
func TestPaperCondition1Query(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat, "SELECT COUNT(DISTINCT Illness) FROM IM")
	v, _ := out.Value(0, "COUNT(DISTINCT Illness)")
	if v.Int() != 5 {
		t.Errorf("distinct illnesses = %d, want 5", v.Int())
	}
	out = mustRun(t, cat, "SELECT COUNT(DISTINCT ZipCode) AS zips FROM IM")
	v, _ = out.Value(0, "zips")
	if v.Int() != 1 {
		t.Errorf("distinct zips = %d, want 1", v.Int())
	}
}

func TestSelectStar(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat, "SELECT * FROM Patient WHERE Sex = 'M'")
	if out.NumRows() != 4 || out.NumCols() != 5 {
		t.Errorf("dims = %dx%d", out.NumRows(), out.NumCols())
	}
	out = mustRun(t, cat, "SELECT * FROM Patient WHERE Age >= 30 AND Sex = 'F'")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT * FROM Patient WHERE Age > 20 OR Illness = 'Diabetes'")
	if out.NumRows() != 6 {
		t.Errorf("rows = %d", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT * FROM Patient WHERE NOT Sex = 'M'")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT * FROM Patient WHERE (Age = 20 OR Age = 30) AND Sex = 'M'")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestProjection(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat, "SELECT Illness, Age FROM Patient WHERE Income > 25000")
	if out.NumRows() != 2 || out.NumCols() != 2 {
		t.Fatalf("dims = %dx%d", out.NumRows(), out.NumCols())
	}
	v, _ := out.Value(0, "Illness")
	if v.Str() != "HIV" {
		t.Errorf("row 0 = %v", v)
	}
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat,
		"SELECT COUNT(*) AS n, MIN(Income) AS lo, MAX(Income) AS hi, SUM(Income) AS total, AVG(Age) AS avgage FROM Patient")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	get := func(col string) table.Value {
		v, err := out.Value(0, col)
		if err != nil {
			t.Fatalf("col %s: %v", col, err)
		}
		return v
	}
	if get("n").Int() != 6 || get("lo").Int() != 15000 || get("hi").Int() != 40000 {
		t.Errorf("aggregates = %v %v %v", get("n"), get("lo"), get("hi"))
	}
	if get("total").Int() != 148000 {
		t.Errorf("sum = %v", get("total"))
	}
	if got := get("avgage").Float(); got < 33.3 || got > 33.4 {
		t.Errorf("avg = %v", got)
	}
}

func TestGroupByWithKeysInOutput(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat,
		"SELECT Sex, COUNT(*) AS n, COUNT(DISTINCT Illness) AS ills FROM Patient GROUP BY Sex ORDER BY Sex")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	sex0, _ := out.Value(0, "Sex")
	n0, _ := out.Value(0, "n")
	i0, _ := out.Value(0, "ills")
	if sex0.Str() != "F" || n0.Int() != 2 || i0.Int() != 2 {
		t.Errorf("F row = %v/%v/%v", sex0, n0, i0)
	}
	sex1, _ := out.Value(1, "Sex")
	n1, _ := out.Value(1, "n")
	i1, _ := out.Value(1, "ills")
	if sex1.Str() != "M" || n1.Int() != 4 || i1.Int() != 3 {
		t.Errorf("M row = %v/%v/%v", sex1, n1, i1)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat, "SELECT Illness, Income FROM Patient ORDER BY Income DESC LIMIT 2")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	v, _ := out.Value(0, "Income")
	if v.Str() != "40000" {
		t.Errorf("top income = %v", v)
	}
	out = mustRun(t, cat, "SELECT Age, COUNT(*) FROM Patient GROUP BY Age ORDER BY COUNT(*) DESC, Age ASC")
	a0, _ := out.Value(0, "Age")
	if a0.Str() != "20" && a0.Str() != "30" && a0.Str() != "50" {
		t.Errorf("first age = %v", a0)
	}
	if out.NumRows() != 3 {
		t.Errorf("rows = %d", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT * FROM Patient LIMIT 0")
	if out.NumRows() != 0 {
		t.Errorf("LIMIT 0 rows = %d", out.NumRows())
	}
}

func TestStringEscapes(t *testing.T) {
	sch := table.MustSchema(table.Field{Name: "S", Type: table.String})
	tbl, err := table.FromText(sch, [][]string{{"it's"}, {"plain"}})
	if err != nil {
		t.Fatal(err)
	}
	out := mustRun(t, Catalog{"T": tbl}, "SELECT * FROM T WHERE S = 'it''s'")
	if out.NumRows() != 1 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestNumericComparisonOnIntColumn(t *testing.T) {
	cat := patientCatalog(t)
	// Int column compared with numeric literal: numeric semantics (9 < 30).
	out := mustRun(t, cat, "SELECT * FROM Patient WHERE Age <> 30 AND Age <= 20")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT * FROM Patient WHERE Income >= 30000")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT * FROM",
		"SELECT * T",
		"INSERT INTO T",
		"SELECT * FROM T WHERE",
		"SELECT * FROM T GROUP Sex",
		"SELECT * FROM T GROUP BY",
		"SELECT COUNT( FROM T",
		"SELECT COUNT(*) FROM T LIMIT x",
		"SELECT a AS FROM T",
		"SELECT * FROM T WHERE a = 'unterminated",
		"SELECT * FROM T WHERE a ~ 1",
		"SELECT * FROM T trailing",
		"SELECT SUM(*) FROM T",
		"SELECT * FROM T ORDER BY",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestExecErrors(t *testing.T) {
	cat := patientCatalog(t)
	bad := []string{
		"SELECT * FROM Missing",
		"SELECT Nope FROM Patient",
		"SELECT * FROM Patient WHERE Nope = 1",
		"SELECT Illness FROM Patient GROUP BY Sex",     // non-grouped column
		"SELECT Sex, Income FROM Patient GROUP BY Sex", // ditto
		"SELECT COUNT(*), Illness FROM Patient",        // mixed agg/bare without GROUP BY
		"SELECT * FROM Patient GROUP BY Sex",           // star with group by
		"SELECT COUNT(Nope) FROM Patient",              // unknown agg column
		"SELECT Sex FROM Patient ORDER BY Nope",        // unknown order column
		"SELECT Sex FROM Patient WHERE Illness",        // non-boolean where
		"SELECT COUNT(*) FROM Patient GROUP BY Nope",   // unknown group column
	}
	for _, q := range bad {
		if _, err := Run(cat, q); err == nil {
			t.Errorf("Run(%q) succeeded, want error", q)
		}
	}
}

func TestHavingOnAggregate(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat,
		"SELECT Age, COUNT(*) AS n FROM Patient GROUP BY Age HAVING COUNT(*) >= 2 AND MIN(Income) > 14000")
	if out.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", out.NumRows())
	}
	out = mustRun(t, cat,
		"SELECT Age FROM Patient GROUP BY Age HAVING COUNT(DISTINCT Illness) < 2")
	if out.NumRows() != 1 {
		t.Errorf("attribute-disclosure groups = %d, want 1 (the Diabetes pair)", out.NumRows())
	}
}

func TestAggregateNames(t *testing.T) {
	if (&AggregateCall{Func: AggCount}).Name() != "COUNT(*)" {
		t.Error("COUNT(*) name")
	}
	if (&AggregateCall{Func: AggCountDistinct, Column: "x"}).Name() != "COUNT(DISTINCT x)" {
		t.Error("COUNT DISTINCT name")
	}
	if (&AggregateCall{Func: AggSum, Column: "x"}).Name() != "SUM(x)" {
		t.Error("SUM name")
	}
	for _, f := range []AggFunc{AggCount, AggCountDistinct, AggSum, AggMin, AggMax, AggAvg} {
		if f.String() == "" || f.String() == "AGG" {
			t.Errorf("missing name for %d", f)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat, "select count(*) from Patient group by Sex")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestEmptyTableQueries(t *testing.T) {
	sch := table.MustSchema(table.Field{Name: "X", Type: table.String})
	empty, err := table.FromText(sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"E": empty}
	out := mustRun(t, cat, "SELECT COUNT(*) FROM E")
	v, _ := out.Value(0, "COUNT(*)")
	if v.Int() != 0 {
		t.Errorf("count = %v", v)
	}
	out = mustRun(t, cat, "SELECT X, COUNT(*) FROM E GROUP BY X")
	if out.NumRows() != 0 {
		t.Errorf("rows = %d", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT MIN(X) AS m, AVG(X) AS a FROM E")
	if out.NumRows() != 1 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	sch := table.MustSchema(table.Field{Name: "N", Type: table.Int})
	tbl, err := table.FromText(sch, [][]string{{"-5"}, {"3"}})
	if err != nil {
		t.Fatal(err)
	}
	out := mustRun(t, Catalog{"T": tbl}, "SELECT * FROM T WHERE N < -1")
	if out.NumRows() != 1 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestFloatLiteralAndAvgOutput(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat, "SELECT AVG(Income) AS a FROM Patient WHERE Age = 20")
	v, _ := out.Value(0, "a")
	if v.Float() != 16500 {
		t.Errorf("avg = %v", v)
	}
	out = mustRun(t, cat, "SELECT * FROM Patient WHERE Age > 19.5 AND Age < 20.5")
	if out.NumRows() != 2 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestResultIsPlainTable(t *testing.T) {
	cat := patientCatalog(t)
	out := mustRun(t, cat, "SELECT Sex, COUNT(*) AS n FROM Patient GROUP BY Sex")
	var sb strings.Builder
	if err := out.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasPrefix(sb.String(), "Sex,n\n") {
		t.Errorf("csv = %q", sb.String())
	}
}
