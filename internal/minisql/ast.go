package minisql

// The abstract syntax tree of the supported SELECT statement.

// Query is the root node.
type Query struct {
	// Star is true for SELECT *.
	Star bool
	// Items are the select-list entries (empty when Star).
	Items []SelectItem
	// Table is the FROM relation name.
	Table string
	// Where is the optional row filter.
	Where Expr
	// GroupBy are the optional grouping column names.
	GroupBy []string
	// Having is the optional group filter (may reference aggregates).
	Having Expr
	// OrderBy are the optional output orderings.
	OrderBy []OrderKey
	// Limit caps the output rows; -1 means no limit.
	Limit int
}

// SelectItem is one select-list entry: either a plain column reference
// or an aggregate call.
type SelectItem struct {
	// Expr is the computed expression (a ColumnRef or AggregateCall).
	Expr Expr
	// Alias is the optional AS name.
	Alias string
}

// OrderKey orders output by a select-list column (by alias or by its
// rendered name).
type OrderKey struct {
	Column string
	Desc   bool
}

// Expr is a boolean/value expression evaluated per row or per group.
type Expr interface {
	// Name renders the canonical column header for the expression.
	Name() string
}

// ColumnRef references a base-table column.
type ColumnRef struct {
	Column string
}

// Name implements Expr.
func (c *ColumnRef) Name() string { return c.Column }

// Literal is a string or numeric constant.
type Literal struct {
	// Text is the literal text; IsNum records whether it was a number.
	Text  string
	IsNum bool
	Num   float64
}

// Name implements Expr.
func (l *Literal) Name() string { return l.Text }

// AggFunc identifies an aggregate function.
type AggFunc int

// Supported aggregates.
const (
	AggCount AggFunc = iota
	AggCountDistinct
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggCountDistinct:
		return "COUNT(DISTINCT)"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return "AGG"
}

// AggregateCall is COUNT(*), COUNT(col), COUNT(DISTINCT col), SUM(col),
// MIN(col), MAX(col) or AVG(col).
type AggregateCall struct {
	Func AggFunc
	// Column is empty for COUNT(*).
	Column string
}

// Name implements Expr.
func (a *AggregateCall) Name() string {
	switch {
	case a.Func == AggCount && a.Column == "":
		return "COUNT(*)"
	case a.Func == AggCountDistinct:
		return "COUNT(DISTINCT " + a.Column + ")"
	default:
		return a.Func.String() + "(" + a.Column + ")"
	}
}

// Compare is a binary comparison: =, <>, <, <=, >, >=.
type Compare struct {
	Op          string
	Left, Right Expr
}

// Name implements Expr.
func (c *Compare) Name() string { return c.Left.Name() + c.Op + c.Right.Name() }

// Logical is AND / OR over two sub-expressions.
type Logical struct {
	Op          string // "AND" or "OR"
	Left, Right Expr
}

// Name implements Expr.
func (l *Logical) Name() string { return l.Left.Name() + " " + l.Op + " " + l.Right.Name() }

// Not negates a boolean expression.
type Not struct {
	Inner Expr
}

// Name implements Expr.
func (n *Not) Name() string { return "NOT " + n.Inner.Name() }
