package minisql

import (
	"fmt"
	"strconv"
)

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) error {
	if p.eat(kind, text) {
		return nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("minisql: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) query() (*Query, error) {
	q := &Query{Limit: -1}
	if err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	if p.eat(tokSymbol, "*") {
		q.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			q.Items = append(q.Items, item)
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
	}
	if err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	if !p.at(tokIdent, "") {
		return nil, p.errf("expected table name, found %q", p.cur().text)
	}
	q.Table = p.cur().text
	p.pos++

	if p.eat(tokKeyword, "WHERE") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.eat(tokKeyword, "GROUP") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			if !p.at(tokIdent, "") {
				return nil, p.errf("expected column in GROUP BY, found %q", p.cur().text)
			}
			q.GroupBy = append(q.GroupBy, p.cur().text)
			p.pos++
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
	}
	if p.eat(tokKeyword, "HAVING") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.eat(tokKeyword, "ORDER") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			key, err := p.orderKey()
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
	}
	if p.eat(tokKeyword, "LIMIT") {
		if !p.at(tokNumber, "") {
			return nil, p.errf("expected number after LIMIT, found %q", p.cur().text)
		}
		n, err := strconv.Atoi(p.cur().text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", p.cur().text)
		}
		q.Limit = n
		p.pos++
	}
	return q, nil
}

func (p *parser) orderKey() (OrderKey, error) {
	var key OrderKey
	switch {
	case p.at(tokIdent, ""):
		key.Column = p.cur().text
		p.pos++
	case p.at(tokKeyword, "COUNT") || p.at(tokKeyword, "SUM") || p.at(tokKeyword, "MIN") ||
		p.at(tokKeyword, "MAX") || p.at(tokKeyword, "AVG"):
		agg, err := p.aggregate()
		if err != nil {
			return key, err
		}
		key.Column = agg.Name()
	default:
		return key, p.errf("expected column in ORDER BY, found %q", p.cur().text)
	}
	if p.eat(tokKeyword, "DESC") {
		key.Desc = true
	} else {
		p.eat(tokKeyword, "ASC")
	}
	return key, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	var item SelectItem
	e, err := p.primary()
	if err != nil {
		return item, err
	}
	item.Expr = e
	if p.eat(tokKeyword, "AS") {
		if !p.at(tokIdent, "") {
			return item, p.errf("expected alias after AS, found %q", p.cur().text)
		}
		item.Alias = p.cur().text
		p.pos++
	}
	return item, nil
}

func (p *parser) aggregate() (*AggregateCall, error) {
	fn := p.cur().text
	p.pos++
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	call := &AggregateCall{}
	switch fn {
	case "COUNT":
		call.Func = AggCount
		if p.eat(tokSymbol, "*") {
			// COUNT(*)
		} else {
			if p.eat(tokKeyword, "DISTINCT") {
				call.Func = AggCountDistinct
			}
			if !p.at(tokIdent, "") {
				return nil, p.errf("expected column in COUNT, found %q", p.cur().text)
			}
			call.Column = p.cur().text
			p.pos++
		}
	case "SUM", "MIN", "MAX", "AVG":
		switch fn {
		case "SUM":
			call.Func = AggSum
		case "MIN":
			call.Func = AggMin
		case "MAX":
			call.Func = AggMax
		case "AVG":
			call.Func = AggAvg
		}
		if !p.at(tokIdent, "") {
			return nil, p.errf("expected column in %s, found %q", fn, p.cur().text)
		}
		call.Column = p.cur().text
		p.pos++
	default:
		return nil, p.errf("unknown aggregate %q", fn)
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return call, nil
}

// orExpr := andExpr (OR andExpr)*
func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.eat(tokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

// andExpr := notExpr (AND notExpr)*
func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.eat(tokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

// notExpr := NOT notExpr | comparison
func (p *parser) notExpr() (Expr, error) {
	if p.eat(tokKeyword, "NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{Inner: inner}, nil
	}
	return p.comparison()
}

// comparison := primary [op primary]
func (p *parser) comparison() (Expr, error) {
	if p.eat(tokSymbol, "(") {
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		// A parenthesized boolean may still be the left side of a
		// comparison only if it is actually a value; minisql keeps it
		// simple and treats parens as boolean grouping only.
		return inner, nil
	}
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.eat(tokSymbol, op) {
			right, err := p.primary()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Compare{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

// primary := aggregate | ident | literal
func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && (t.text == "COUNT" || t.text == "SUM" || t.text == "MIN" || t.text == "MAX" || t.text == "AVG"):
		return p.aggregate()
	case t.kind == tokIdent:
		p.pos++
		return &ColumnRef{Column: t.text}, nil
	case t.kind == tokNumber:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return &Literal{Text: t.text, IsNum: true, Num: f}, nil
	case t.kind == tokString:
		p.pos++
		return &Literal{Text: t.text}, nil
	default:
		return nil, p.errf("expected expression, found %q", t.text)
	}
}
