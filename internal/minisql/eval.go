package minisql

import (
	"fmt"
	"sort"
	"strings"

	"psk/internal/table"
)

// Catalog resolves table names for queries.
type Catalog map[string]*table.Table

// Run parses and executes a query against the catalog, returning the
// result as a new table.
func Run(cat Catalog, query string) (*table.Table, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Exec(cat, q)
}

// Exec executes a parsed query.
func Exec(cat Catalog, q *Query) (*table.Table, error) {
	src, ok := cat[q.Table]
	if !ok {
		return nil, fmt.Errorf("minisql: unknown table %q", q.Table)
	}

	// WHERE: filter rows.
	rows := make([]int, 0, src.NumRows())
	for r := 0; r < src.NumRows(); r++ {
		if q.Where != nil {
			keep, err := evalBool(q.Where, src, []int{r}, nil)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		rows = append(rows, r)
	}

	if q.Star {
		if q.GroupBy != nil || q.Having != nil {
			return nil, fmt.Errorf("minisql: SELECT * cannot be combined with GROUP BY/HAVING")
		}
		out, err := src.Gather(rows)
		if err != nil {
			return nil, err
		}
		return finish(out, q)
	}

	hasAgg := false
	for _, it := range q.Items {
		if containsAggregate(it.Expr) {
			hasAgg = true
		}
	}

	switch {
	case len(q.GroupBy) > 0:
		return execGrouped(src, q, rows)
	case hasAgg:
		// Aggregates without GROUP BY: one output row over all rows.
		return execAggregateAll(src, q, rows)
	default:
		return execProjection(src, q, rows)
	}
}

// finish applies ORDER BY and LIMIT to a result table.
func finish(out *table.Table, q *Query) (*table.Table, error) {
	var err error
	if len(q.OrderBy) > 0 {
		out, err = orderBy(out, q.OrderBy)
		if err != nil {
			return nil, err
		}
	}
	if q.Limit >= 0 {
		out = out.Head(q.Limit)
	}
	return out, nil
}

func orderBy(t *table.Table, keys []OrderKey) (*table.Table, error) {
	cols := make([]table.Column, len(keys))
	for i, k := range keys {
		c, err := t.Column(k.Column)
		if err != nil {
			return nil, fmt.Errorf("minisql: ORDER BY: %w", err)
		}
		cols[i] = c
	}
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, c := range cols {
			cmp := c.Value(rows[a]).Compare(c.Value(rows[b]))
			if keys[i].Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return t.Gather(rows)
}

// itemName returns the output column header for a select item.
func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return it.Expr.Name()
}

func execProjection(src *table.Table, q *Query, rows []int) (*table.Table, error) {
	fields := make([]table.Field, len(q.Items))
	for i, it := range q.Items {
		fields[i] = table.Field{Name: itemName(it), Type: table.String}
	}
	sch, err := table.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("minisql: %w", err)
	}
	b, err := table.NewBuilder(sch)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		rec := make([]table.Value, len(q.Items))
		for i, it := range q.Items {
			v, err := evalValue(it.Expr, src, []int{r}, nil)
			if err != nil {
				return nil, err
			}
			rec[i] = v
		}
		b.Append(rec...)
	}
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	return finish(out, q)
}

func execAggregateAll(src *table.Table, q *Query, rows []int) (*table.Table, error) {
	fields := make([]table.Field, len(q.Items))
	for i, it := range q.Items {
		fields[i] = table.Field{Name: itemName(it), Type: table.String}
	}
	sch, err := table.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("minisql: %w", err)
	}
	b, err := table.NewBuilder(sch)
	if err != nil {
		return nil, err
	}
	rec := make([]table.Value, len(q.Items))
	for i, it := range q.Items {
		if !containsAggregate(it.Expr) {
			return nil, fmt.Errorf("minisql: mixing aggregates and bare columns requires GROUP BY")
		}
		v, err := evalValue(it.Expr, src, rows, nil)
		if err != nil {
			return nil, err
		}
		rec[i] = v
	}
	b.Append(rec...)
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	return finish(out, q)
}

func execGrouped(src *table.Table, q *Query, rows []int) (*table.Table, error) {
	// Validate that bare column references are grouping columns.
	grouped := make(map[string]bool, len(q.GroupBy))
	for _, g := range q.GroupBy {
		grouped[g] = true
	}
	for _, it := range q.Items {
		if ref, ok := it.Expr.(*ColumnRef); ok && !grouped[ref.Column] {
			return nil, fmt.Errorf("minisql: column %q must appear in GROUP BY or an aggregate", ref.Column)
		}
	}

	groupCols := make([]table.Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c, err := src.Column(g)
		if err != nil {
			return nil, fmt.Errorf("minisql: GROUP BY: %w", err)
		}
		groupCols[i] = c
	}

	// Partition filtered rows by group key.
	index := make(map[string]int)
	var groups [][]int
	var sb strings.Builder
	for _, r := range rows {
		sb.Reset()
		for _, c := range groupCols {
			sb.WriteString(c.Value(r).Str())
			sb.WriteByte(0)
		}
		key := sb.String()
		gi, ok := index[key]
		if !ok {
			gi = len(groups)
			index[key] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], r)
	}

	keyIndex := make(map[string]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		keyIndex[g] = i
	}

	fields := make([]table.Field, len(q.Items))
	for i, it := range q.Items {
		fields[i] = table.Field{Name: itemName(it), Type: table.String}
	}
	sch, err := table.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("minisql: %w", err)
	}
	b, err := table.NewBuilder(sch)
	if err != nil {
		return nil, err
	}

	for _, g := range groups {
		if q.Having != nil {
			keep, err := evalBool(q.Having, src, g, keyIndex)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		rec := make([]table.Value, len(q.Items))
		for i, it := range q.Items {
			v, err := evalValue(it.Expr, src, g, keyIndex)
			if err != nil {
				return nil, err
			}
			rec[i] = v
		}
		b.Append(rec...)
	}
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	return finish(out, q)
}

func containsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *AggregateCall:
		return true
	case *Compare:
		return containsAggregate(x.Left) || containsAggregate(x.Right)
	case *Logical:
		return containsAggregate(x.Left) || containsAggregate(x.Right)
	case *Not:
		return containsAggregate(x.Inner)
	default:
		return false
	}
}

// evalValue evaluates an expression over a row set. For per-row
// evaluation the set has one element. keyIndex, when non-nil, marks
// grouped evaluation: bare columns take the value of the first row.
func evalValue(e Expr, src *table.Table, rows []int, keyIndex map[string]int) (table.Value, error) {
	switch x := e.(type) {
	case *Literal:
		if x.IsNum {
			if x.Num == float64(int64(x.Num)) {
				return table.IV(int64(x.Num)), nil
			}
			return table.FV(x.Num), nil
		}
		return table.SV(x.Text), nil
	case *ColumnRef:
		col, err := src.Column(x.Column)
		if err != nil {
			return table.Value{}, fmt.Errorf("minisql: %w", err)
		}
		if len(rows) == 0 {
			return table.Value{}, fmt.Errorf("minisql: column %q evaluated over empty row set", x.Column)
		}
		return col.Value(rows[0]), nil
	case *AggregateCall:
		return evalAggregate(x, src, rows)
	default:
		return table.Value{}, fmt.Errorf("minisql: boolean expression used as value")
	}
}

func evalAggregate(a *AggregateCall, src *table.Table, rows []int) (table.Value, error) {
	if a.Func == AggCount && a.Column == "" {
		return table.IV(int64(len(rows))), nil
	}
	col, err := src.Column(a.Column)
	if err != nil {
		return table.Value{}, fmt.Errorf("minisql: %w", err)
	}
	switch a.Func {
	case AggCount:
		return table.IV(int64(len(rows))), nil
	case AggCountDistinct:
		seen := make(map[int]struct{}, len(rows))
		for _, r := range rows {
			seen[col.Code(r)] = struct{}{}
		}
		return table.IV(int64(len(seen))), nil
	case AggSum, AggAvg:
		sum := 0.0
		for _, r := range rows {
			sum += col.Value(r).Float()
		}
		if a.Func == AggAvg {
			if len(rows) == 0 {
				return table.FV(0), nil
			}
			return table.FV(sum / float64(len(rows))), nil
		}
		if sum == float64(int64(sum)) {
			return table.IV(int64(sum)), nil
		}
		return table.FV(sum), nil
	case AggMin, AggMax:
		if len(rows) == 0 {
			return table.SV(""), nil
		}
		best := col.Value(rows[0])
		for _, r := range rows[1:] {
			v := col.Value(r)
			if (a.Func == AggMin && v.Compare(best) < 0) || (a.Func == AggMax && v.Compare(best) > 0) {
				best = v
			}
		}
		return best, nil
	}
	return table.Value{}, fmt.Errorf("minisql: unsupported aggregate %v", a.Func)
}

func evalBool(e Expr, src *table.Table, rows []int, keyIndex map[string]int) (bool, error) {
	switch x := e.(type) {
	case *Compare:
		l, err := evalValue(x.Left, src, rows, keyIndex)
		if err != nil {
			return false, err
		}
		r, err := evalValue(x.Right, src, rows, keyIndex)
		if err != nil {
			return false, err
		}
		cmp := l.Compare(r)
		switch x.Op {
		case "=":
			return cmp == 0, nil
		case "<>":
			return cmp != 0, nil
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		case ">=":
			return cmp >= 0, nil
		default:
			return false, fmt.Errorf("minisql: unknown operator %q", x.Op)
		}
	case *Logical:
		l, err := evalBool(x.Left, src, rows, keyIndex)
		if err != nil {
			return false, err
		}
		if x.Op == "AND" && !l {
			return false, nil
		}
		if x.Op == "OR" && l {
			return true, nil
		}
		return evalBool(x.Right, src, rows, keyIndex)
	case *Not:
		v, err := evalBool(x.Inner, src, rows, keyIndex)
		if err != nil {
			return false, err
		}
		return !v, nil
	default:
		return false, fmt.Errorf("minisql: expression %q is not boolean", e.Name())
	}
}
