package minisql

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"psk/internal/table"
)

// randomRelation generates small random microdata tables for the
// equivalence properties below: the SQL engine must agree with the
// table engine's native operators on every query pattern the paper
// uses.
type randomRelation struct {
	tbl *table.Table
}

func (randomRelation) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*3 + 1)
	sch := table.MustSchema(
		table.Field{Name: "A", Type: table.String},
		table.Field{Name: "B", Type: table.String},
		table.Field{Name: "N", Type: table.Int},
	)
	letters := []string{"x", "y", "z"}
	b, _ := table.NewBuilder(sch)
	for i := 0; i < n; i++ {
		b.Append(
			table.SV(letters[r.Intn(len(letters))]),
			table.SV(letters[r.Intn(len(letters))]),
			table.IV(int64(r.Intn(6))),
		)
	}
	t, _ := b.Build()
	return reflect.ValueOf(randomRelation{tbl: t})
}

// Property: SELECT COUNT(*) GROUP BY matches Table.GroupBy — the
// paper's k-anonymity check gives identical counts through SQL and
// through the native engine.
func TestSQLGroupByEquivalence(t *testing.T) {
	f := func(rel randomRelation) bool {
		if rel.tbl.NumRows() == 0 {
			return true
		}
		out, err := Run(Catalog{"T": rel.tbl}, "SELECT A, B, COUNT(*) AS n FROM T GROUP BY A, B")
		if err != nil {
			return false
		}
		groups, err := rel.tbl.GroupBy("A", "B")
		if err != nil {
			return false
		}
		if out.NumRows() != len(groups) {
			return false
		}
		want := make(map[string]int, len(groups))
		for _, g := range groups {
			want[g.Key[0].Str()+"\x00"+g.Key[1].Str()] = g.Size()
		}
		for r := 0; r < out.NumRows(); r++ {
			a, _ := out.Value(r, "A")
			b, _ := out.Value(r, "B")
			n, _ := out.Value(r, "n")
			if want[a.Str()+"\x00"+b.Str()] != int(n.Int()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: COUNT(DISTINCT c) matches Table.DistinctCount — Condition
// 1's SQL check agrees with the native implementation.
func TestSQLDistinctEquivalence(t *testing.T) {
	f := func(rel randomRelation) bool {
		for _, col := range []string{"A", "B", "N"} {
			out, err := Run(Catalog{"T": rel.tbl},
				"SELECT COUNT(DISTINCT "+col+") AS d FROM T")
			if err != nil {
				return false
			}
			v, err := out.Value(0, "d")
			if err != nil {
				return false
			}
			want, err := rel.tbl.DistinctCount(col)
			if err != nil {
				return false
			}
			if int(v.Int()) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: WHERE matches Table.Filter for equality and numeric
// comparison predicates.
func TestSQLWhereEquivalence(t *testing.T) {
	f := func(rel randomRelation, pivot uint8) bool {
		threshold := int64(pivot % 6)
		q := fmt.Sprintf("SELECT * FROM T WHERE A = 'x' OR N >= %d", threshold)
		out, err := Run(Catalog{"T": rel.tbl}, q)
		if err != nil {
			return false
		}
		want := rel.tbl.Filter(func(r int) bool {
			a, _ := rel.tbl.Value(r, "A")
			n, _ := rel.tbl.Value(r, "N")
			return a.Str() == "x" || n.Int() >= threshold
		})
		return out.NumRows() == want.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HAVING COUNT(*) < k selects exactly the undersized groups
// (the paper's violating-group query).
func TestSQLHavingEquivalence(t *testing.T) {
	f := func(rel randomRelation, kk uint8) bool {
		if rel.tbl.NumRows() == 0 {
			return true
		}
		k := int(kk%4) + 1
		q := fmt.Sprintf("SELECT A, COUNT(*) FROM T GROUP BY A HAVING COUNT(*) < %d", k)
		out, err := Run(Catalog{"T": rel.tbl}, q)
		if err != nil {
			return false
		}
		groups, err := rel.tbl.GroupBy("A")
		if err != nil {
			return false
		}
		want := 0
		for _, g := range groups {
			if g.Size() < k {
				want++
			}
		}
		return out.NumRows() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ORDER BY produces a sorted permutation; LIMIT truncates.
func TestSQLOrderLimitProperty(t *testing.T) {
	f := func(rel randomRelation, lim uint8) bool {
		limit := int(lim % 8)
		q := fmt.Sprintf("SELECT N FROM T ORDER BY N DESC LIMIT %d", limit)
		out, err := Run(Catalog{"T": rel.tbl}, q)
		if err != nil {
			return false
		}
		wantRows := rel.tbl.NumRows()
		if limit < wantRows {
			wantRows = limit
		}
		if out.NumRows() != wantRows {
			return false
		}
		prev := int64(1 << 62)
		for r := 0; r < out.NumRows(); r++ {
			v, _ := out.Value(r, "N")
			if v.Int() > prev {
				return false
			}
			prev = v.Int()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the lexer/parser never panic on mutated query strings (a
// lightweight fuzz over printable mutations of valid queries).
func TestParserRobustness(t *testing.T) {
	seeds := []string{
		"SELECT COUNT(*) FROM T GROUP BY A, B",
		"SELECT * FROM T WHERE A = 'x' AND N >= 3",
		"SELECT A, COUNT(DISTINCT B) FROM T GROUP BY A HAVING COUNT(*) < 2 ORDER BY A LIMIT 5",
	}
	rng := rand.New(rand.NewSource(99))
	chars := []byte("SELECTFROMWHEREGROUPBY*(),'<>=! abcxyz0123456789")
	for _, seed := range seeds {
		for i := 0; i < 500; i++ {
			b := []byte(seed)
			for m := 0; m <= rng.Intn(3); m++ {
				pos := rng.Intn(len(b))
				switch rng.Intn(3) {
				case 0:
					b[pos] = chars[rng.Intn(len(chars))]
				case 1:
					b = append(b[:pos], b[pos+1:]...)
				default:
					b = append(b[:pos], append([]byte{chars[rng.Intn(len(chars))]}, b[pos:]...)...)
				}
				if len(b) == 0 {
					b = []byte("S")
				}
			}
			// Must not panic; errors are fine.
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on %q: %v", string(b), r)
					}
				}()
				_, _ = Parse(string(b))
			}()
		}
	}
}
