package stream

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	in := []Batch{
		{Columns: []string{"Sex", "ZipCode"}, Append: [][]string{{"M", "41076"}}},
		{Retire: []int{3, 7}},
		{Append: [][]string{{"F", "41099"}, {"M", "43102"}}, Retire: []int{0}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var out []Batch
	for {
		b, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed batches:\n in %+v\nout %+v", in, out)
	}
	if r.Line() != 3 {
		t.Fatalf("Line() = %d, want 3", r.Line())
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	r := NewReader(strings.NewReader("\n  \n{\"retire\":[1]}\n\n"))
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Retire) != 1 || b.Retire[0] != 1 {
		t.Fatalf("got %+v", b)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"not json\n",
		"[1,2,3]\n",
		`{"retire": "x"}` + "\n",
		`{"append": [3]}` + "\n",
	} {
		if _, err := NewReader(strings.NewReader(in)).Next(); err == nil || err == io.EOF {
			t.Errorf("input %q: want a parse error, got %v", in, err)
		}
	}
}

func TestReaderCapsLineLength(t *testing.T) {
	long := `{"retire":[` + strings.Repeat("1,", MaxLineBytes/2) + "1]}\n"
	if _, err := NewReader(strings.NewReader(long)).Next(); err == nil || err == io.EOF {
		t.Fatalf("oversized line accepted: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cols := []string{"Sex", "ZipCode"}
	ok := Batch{Columns: cols, Append: [][]string{{"M", "41076"}}, Retire: []int{0}}
	if err := ok.Validate(cols); err != nil {
		t.Fatal(err)
	}
	if err := (Batch{Columns: []string{"Sex"}}).Validate(cols); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	if err := (Batch{Columns: []string{"Sex", "Zip"}}).Validate(cols); err == nil {
		t.Fatal("column name mismatch accepted")
	}
	if err := (Batch{Append: [][]string{{"M"}}}).Validate(cols); err == nil {
		t.Fatal("short row accepted")
	}
	if err := (Batch{Retire: []int{-1}}).Validate(cols); err == nil {
		t.Fatal("negative retire id accepted")
	}
}

func TestWriteBatchCapsSize(t *testing.T) {
	big := Batch{Append: [][]string{{strings.Repeat("x", MaxLineBytes)}}}
	if err := WriteBatch(io.Discard, big); err == nil {
		t.Fatal("oversized batch encoded")
	}
}

func TestEmpty(t *testing.T) {
	if !(Batch{Columns: []string{"a"}}).Empty() {
		t.Fatal("columns-only batch should be empty")
	}
	if (Batch{Retire: []int{1}}).Empty() {
		t.Fatal("retire batch reported empty")
	}
}
