// Package stream defines the delta-batch wire format of the streaming
// anonymizer: JSON Lines, one Batch object per line. A batch carries
// rows to append (textual cells in schema order) and row ids to retire
// (ids are assigned by arrival order: the base table's rows first, then
// every appended row in stream order). The first batch may carry the
// column names so a consumer can reject a stream generated against a
// different schema before mutating anything.
package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// MaxLineBytes caps one encoded batch line. The cap exists for the same
// reason dataset.MaxLineBytes does: the reader accepts user-supplied
// files and must fail cleanly on hostile input instead of buffering
// without bound.
const MaxLineBytes = 16 << 20

// Batch is one delta: rows retired first, then rows appended, exactly
// the order an incremental session applies them in.
type Batch struct {
	// Columns, when present, names the schema the appended cells follow;
	// consumers check it against their table before applying anything.
	Columns []string `json:"columns,omitempty"`
	// Append holds rows to add, one textual cell per column.
	Append [][]string `json:"append,omitempty"`
	// Retire holds row ids to remove, in arrival order (base rows are
	// 0..n-1, appended rows continue from there).
	Retire []int `json:"retire,omitempty"`
}

// Empty reports whether the batch changes nothing.
func (b Batch) Empty() bool { return len(b.Append) == 0 && len(b.Retire) == 0 }

// Validate checks the batch against the consumer's column names:
// declared columns must match exactly, every appended row must have one
// cell per column, and retire ids must be non-negative (liveness is the
// session's to enforce — only it knows which ids are retired).
func (b Batch) Validate(columns []string) error {
	if len(b.Columns) > 0 {
		if len(b.Columns) != len(columns) {
			return fmt.Errorf("stream: batch declares %d columns, table has %d", len(b.Columns), len(columns))
		}
		for i, name := range b.Columns {
			if name != columns[i] {
				return fmt.Errorf("stream: batch column %d is %q, table has %q", i, name, columns[i])
			}
		}
	}
	for i, row := range b.Append {
		if len(row) != len(columns) {
			return fmt.Errorf("stream: append row %d has %d cells for %d columns", i, len(row), len(columns))
		}
	}
	for i, id := range b.Retire {
		if id < 0 {
			return fmt.Errorf("stream: retire %d names negative row id %d", i, id)
		}
	}
	return nil
}

// Reader decodes one batch per line.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps a JSONL delta stream.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	return &Reader{sc: sc}
}

// Next returns the next non-blank batch, or io.EOF at stream end.
func (r *Reader) Next() (Batch, error) {
	for r.sc.Scan() {
		r.line++
		raw := bytes.TrimSpace(r.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var b Batch
		if err := json.Unmarshal(raw, &b); err != nil {
			return Batch{}, fmt.Errorf("stream: line %d: %w", r.line, err)
		}
		return b, nil
	}
	if err := r.sc.Err(); err != nil {
		return Batch{}, fmt.Errorf("stream: line %d: %w", r.line+1, err)
	}
	return Batch{}, io.EOF
}

// Line reports the line number of the most recently returned batch.
func (r *Reader) Line() int { return r.line }

// WriteBatch encodes one batch as one line.
func WriteBatch(w io.Writer, b Batch) error {
	enc, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if len(enc) > MaxLineBytes {
		return fmt.Errorf("stream: encoded batch is %d bytes, cap is %d", len(enc), MaxLineBytes)
	}
	if _, err := w.Write(append(enc, '\n')); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// Write encodes a whole delta file.
func Write(w io.Writer, batches []Batch) error {
	for _, b := range batches {
		if err := WriteBatch(w, b); err != nil {
			return err
		}
	}
	return nil
}
