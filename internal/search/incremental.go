package search

import (
	"fmt"

	"psk/internal/core"
	"psk/internal/generalize"
	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// This file is the streaming publisher: an Incremental session keeps a
// published generalization valid across append/retire row batches at a
// cost proportional to the delta, not the table. Three layers stack:
//
//   - table.Ledger + table.StatsDelta maintain the base (bottom-node)
//     group statistics under row churn, and a second StatsDelta
//     maintains the published node's statistics through a per-session
//     code translation (pubMap), so each batch costs O(rows in batch).
//   - Republish re-verdicts only the groups the batch touched
//     (core.RecheckGroups), so an unchanged verdict costs O(changed
//     groups), never O(rows).
//   - When the incumbent node stops satisfying, repair climbs the
//     lattice from it — evaluating only its ancestors, height by
//     height, through the ordinary engine seeded with the maintained
//     base statistics — and only falls back to a cold batch search when
//     no ancestor satisfies (the paper's monotonicity premise makes
//     that fallback rare: generalizing more re-satisfies k-anonymity
//     and p-sensitivity unless the dataset itself became infeasible).
//
// Equivalence bar (DESIGN.md §14): every verdict the session returns is
// identical to evaluating the published node on a fresh scan of the
// live rows, and Materialize is byte-identical to the batch
// generalize+suppress pipeline on the live snapshot. A repaired node is
// a genuinely satisfying ancestor of the incumbent but need not be the
// globally height-minimal node a cold Samarati would return; callers
// that require global minimality republish cold (Strategy fallback).

// Strategy names a batch search strategy an incremental session falls
// back to for the initial publication and for republishes the repair
// ascent cannot settle.
type Strategy uint8

// Fallback strategies.
const (
	// StrategySamarati is Algorithm 3: binary search on lattice height.
	StrategySamarati Strategy = iota
	// StrategyBottomUp scans heights upward, stopping at the first
	// satisfying height.
	StrategyBottomUp
	// StrategyExhaustive enumerates the whole lattice.
	StrategyExhaustive
	// StrategyAllMinimal prunes ancestors of satisfying nodes.
	StrategyAllMinimal
	// StrategyIncognito runs the subset-lattice bottom-up search.
	StrategyIncognito

	numStrategies
)

// String names the strategy as the CLI spells it.
func (s Strategy) String() string {
	switch s {
	case StrategySamarati:
		return "samarati"
	case StrategyBottomUp:
		return "bottomup"
	case StrategyExhaustive:
		return "exhaustive"
	case StrategyAllMinimal:
		return "allminimal"
	case StrategyIncognito:
		return "incognito"
	default:
		return "unknown"
	}
}

// pubMap is one QI attribute's translation from base (source column)
// codes to the session-private code space of the published node. Pub
// codes are assigned by interning the generalized label of each base
// code, so two base codes map to the same pub code exactly when the
// hierarchy sends their values to the same level-L value — the same
// partition the engine's level maps induce, just under session-local
// names (verdicts depend on group identity, never on code values).
// Level 0 is the identity: base codes are their own pub codes.
type pubMap struct {
	level  int
	byBase map[int]int
	labels map[string]int
}

// Incremental is a streaming publish session over one table. Build it
// with OpenIncremental, feed it row batches with Apply, and call
// Republish after each batch for a verdict on the current live rows;
// Materialize produces the masked table for the published node on
// demand. A session is not safe for concurrent use.
type Incremental struct {
	cfg      Config
	fallback Strategy
	m        *generalize.Masker
	led      *table.Ledger
	conf     []string
	qiCols   []table.Column
	confCols []table.Column
	rec      *obs.Recorder

	// qiIdx, qiHier and qiDims validate appended rows before anything
	// mutates: the streaming API accepts untrusted deltas, and a QI
	// value the hierarchy cannot generalize at every lattice level would
	// otherwise surface — and poison the session — only at the next
	// republish.
	qiIdx  []int
	qiHier []hierarchy.Hierarchy
	qiDims []int

	// base maintains the bottom-node statistics (the statistics a fresh
	// GroupStats scan of the live rows would produce, up to group order,
	// representatives and zero-size tombstones — none of which verdicts
	// read). It seeds the repair engine's roll-up store, so repair never
	// rescans rows either.
	base *table.StatsDelta

	// pub is the currently published node; nil before the first
	// publication and after a republish that found nothing. pubStats
	// maintains the published node's statistics and its changed-group
	// set; pubMaps is the base-to-published code translation that keeps
	// it maintainable under appends that introduce new values.
	pub      lattice.Node
	pubStats *table.StatsDelta
	pubMaps  []*pubMap

	// err poisons the session: a failure between the sub-steps of one
	// row (ledger applied, statistics not) leaves the layers
	// inconsistent, after which no further result can be trusted.
	err error
}

// OpenIncremental starts a streaming session: the table is deep-copied
// into a ledger, its base statistics are scanned once, and every later
// batch is absorbed in O(batch) time. The fallback strategy serves the
// initial publication and any republish the repair ascent cannot
// settle. The cache and roll-up ablations are rejected: repair derives
// every ancestor's statistics from the maintained base statistics by
// roll-up, and with the store disabled the engine would rescan the
// ledger — retired rows included.
func OpenIncremental(im *table.Table, cfg Config, fallback Strategy) (*Incremental, error) {
	m, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	if fallback >= numStrategies {
		return nil, fmt.Errorf("search: unknown fallback strategy %d", fallback)
	}
	if cfg.DisableCache || cfg.DisableRollup {
		return nil, fmt.Errorf("search: incremental sessions require the column cache and roll-up store")
	}
	s := &Incremental{
		cfg:      cfg,
		fallback: fallback,
		m:        m,
		led:      table.NewLedger(im),
		conf:     cfg.effectiveConf(),
		rec:      cfg.Recorder,
	}
	tab := s.led.Table()
	s.qiCols = make([]table.Column, len(cfg.QIs))
	s.qiIdx = make([]int, len(cfg.QIs))
	s.qiHier = make([]hierarchy.Hierarchy, len(cfg.QIs))
	s.qiDims = m.Lattice().Dims()
	for i, attr := range cfg.QIs {
		if s.qiCols[i], err = tab.Column(attr); err != nil {
			return nil, err
		}
		s.qiIdx[i] = tab.Schema().Index(attr)
		if s.qiHier[i], err = cfg.Hierarchies.Get(attr); err != nil {
			return nil, err
		}
	}
	s.confCols = make([]table.Column, len(s.conf))
	for i, attr := range s.conf {
		if s.confCols[i], err = tab.Column(attr); err != nil {
			return nil, err
		}
	}
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	bs, err := tab.GroupStats(cfg.QIs, s.conf, w)
	if err != nil {
		return nil, err
	}
	if s.base, err = table.NewStatsDelta(bs); err != nil {
		return nil, err
	}
	return s, nil
}

// Schema returns the session's row schema (appended cells follow it).
func (s *Incremental) Schema() table.Schema { return s.led.Table().Schema() }

// NumLive reports the number of live rows.
func (s *Incremental) NumLive() int { return s.led.NumLive() }

// NumRows reports the total number of row ids ever stored (appends get
// ids NumRows, NumRows+1, ... in order).
func (s *Incremental) NumRows() int { return s.led.NumRows() }

// Published returns a copy of the currently published node, or nil when
// nothing is published.
func (s *Incremental) Published() lattice.Node {
	if s.pub == nil {
		return nil
	}
	return s.pub.Clone()
}

// Apply absorbs one delta batch: retires first (ids must name live rows
// that existed before this batch), then appends (textual cells in
// schema order; each appended row's id is its position in NumRows
// order). The ledger and both maintained statistics move together; on
// error the batch stops at the failing row — rows before it are fully
// absorbed, the failing row not at all — and an error that can leave
// the layers disagreeing poisons the session permanently.
func (s *Incremental) Apply(appends [][]string, retires []int) error {
	if s.err != nil {
		return s.err
	}
	keyCodes := make([]int, len(s.qiCols))
	confCodes := make([]int, len(s.confCols))
	for _, id := range retires {
		if err := s.led.Retire(id); err != nil {
			return err
		}
		// Retired rows stay addressable, so codes can be read after the
		// flag flips; a failure past this point poisons the session.
		s.rowCodes(id, keyCodes, confCodes)
		if _, err := s.base.Retire(keyCodes, confCodes); err != nil {
			return s.poison(err)
		}
		if s.pubStats != nil {
			pubCodes, err := s.translateKnown(keyCodes)
			if err != nil {
				return s.poison(err)
			}
			if _, err := s.pubStats.Retire(pubCodes, confCodes); err != nil {
				return s.poison(err)
			}
		}
	}
	for _, cells := range appends {
		if err := s.validateCells(cells); err != nil {
			return err
		}
		id, err := s.led.AppendText(cells)
		if err != nil {
			return err
		}
		s.rowCodes(id, keyCodes, confCodes)
		if _, err := s.base.Append(keyCodes, confCodes, id); err != nil {
			return s.poison(err)
		}
		if s.pubStats != nil {
			pubCodes, err := s.translateNew(keyCodes, id)
			if err != nil {
				return s.poison(err)
			}
			if _, err := s.pubStats.Append(pubCodes, confCodes, id); err != nil {
				return s.poison(err)
			}
		}
	}
	return nil
}

// validateCells rejects an appended row whose QI cells the hierarchies
// cannot generalize at some lattice level, before anything mutates.
// Without this gate a bad value would be accepted here and fail only
// when a later republish generalizes it — mid-publish, poisoning the
// session. Row width is left to the ledger (its error is pre-mutation
// too).
func (s *Incremental) validateCells(cells []string) error {
	if len(cells) != s.Schema().Len() {
		return nil
	}
	for i, h := range s.qiHier {
		cell := cells[s.qiIdx[i]]
		for lvl := 1; lvl <= s.qiDims[i]; lvl++ {
			if _, err := h.Generalize(cell, lvl); err != nil {
				return fmt.Errorf("search: append QI %s: %w", s.cfg.QIs[i], err)
			}
		}
	}
	return nil
}

// rowCodes reads one row's QI and confidential codes from the cached
// column pointers (appends mutate columns in place, so the pointers
// stay valid for the session's lifetime).
func (s *Incremental) rowCodes(id int, keyCodes, confCodes []int) {
	for i, c := range s.qiCols {
		keyCodes[i] = c.Code(id)
	}
	for i, c := range s.confCols {
		confCodes[i] = c.Code(id)
	}
}

func (s *Incremental) poison(err error) error {
	s.err = fmt.Errorf("search: incremental session poisoned: %w", err)
	return s.err
}

// translateKnown maps base QI codes to published-node codes for a row
// the statistics have already absorbed; every code is necessarily in
// the translation (adoption seeds it from all groups ever seen, and
// appends extend it), so a miss is an internal error.
func (s *Incremental) translateKnown(keyCodes []int) ([]int, error) {
	out := make([]int, len(keyCodes))
	for i, c := range keyCodes {
		pm := s.pubMaps[i]
		if pm.level == 0 {
			out[i] = c
			continue
		}
		pub, ok := pm.byBase[c]
		if !ok {
			return nil, fmt.Errorf("search: QI %s base code %d missing from the published-node translation", s.cfg.QIs[i], c)
		}
		out[i] = pub
	}
	return out, nil
}

// translateNew maps base QI codes to published-node codes for a freshly
// appended row, extending the translation when the row introduced a new
// value: the value's generalized label at the published level is
// interned, so values that generalize alike share a pub code.
func (s *Incremental) translateNew(keyCodes []int, rowID int) ([]int, error) {
	out := make([]int, len(keyCodes))
	for i, c := range keyCodes {
		pm := s.pubMaps[i]
		if pm.level == 0 {
			out[i] = c
			continue
		}
		if pub, ok := pm.byBase[c]; ok {
			out[i] = pub
			continue
		}
		attr := s.cfg.QIs[i]
		h, err := s.cfg.Hierarchies.Get(attr)
		if err != nil {
			return nil, err
		}
		label, err := h.Generalize(s.qiCols[i].Value(rowID).Str(), pm.level)
		if err != nil {
			return nil, fmt.Errorf("search: QI %s: %w", attr, err)
		}
		pub, ok := pm.labels[label]
		if !ok {
			pub = len(pm.labels)
			pm.labels[label] = pub
		}
		pm.byBase[c] = pub
		out[i] = pub
	}
	return out, nil
}

// Republish re-verdicts the published node against the current live
// rows and returns a batch-shaped Result. The fast path costs O(changed
// groups): suppression is re-gated from maintained sizes, and only the
// groups the deltas touched are re-scanned (core.RecheckGroups; a
// non-group-local policy such as t-closeness re-evaluates all groups of
// the published node, still without touching rows). When the incumbent
// no longer satisfies, repair climbs the lattice from it; when nothing
// is published — the first call, or after a not-found republish — the
// fallback strategy runs cold on the live snapshot.
//
// Result.Masked is nil on the fast and repair paths (materializing is
// O(live rows), defeating the point of a per-batch verdict); use
// Materialize. A not-found republish clears the published node.
func (s *Incremental) Republish() (Result, error) {
	if s.err != nil {
		return Result{}, s.err
	}
	if s.pub == nil {
		return s.coldPublish()
	}
	bounds, err := s.currentBounds()
	if err != nil {
		return Result{}, err
	}
	if s.cfg.Policy == nil && s.cfg.UseConditions && s.cfg.P >= 2 && !bounds.Feasible() {
		// Condition 1 on the current data: no masking of any node can
		// satisfy, exactly as the batch strategies report before touching
		// the lattice.
		s.clearPublished()
		var res Result
		res.Stats.PrunedCondition1 = 1
		res.Report = s.rec.Snapshot()
		return res, nil
	}
	var res Result
	res.Stats.NodesEvaluated = 1
	stats := s.pubStats.Stats()
	violating := stats.TuplesBelow(s.cfg.K)
	if violating > s.cfg.MaxSuppress {
		// The engine's over-budget verdict: rejected before any policy
		// scan.
		return s.repair(bounds, res.Stats)
	}
	post := stats.SuppressBelow(s.cfg.K)
	changed := s.changedSurvivors(stats)
	policy := core.Observe(s.cfg.effectivePolicy(bounds), s.cfg.Recorder)
	verdict, local, err := core.RecheckGroups(policy, core.StatsView{Stats: post, Conf: s.conf}, changed)
	if err != nil {
		return Result{}, err
	}
	if local {
		s.rec.GroupsRecheck(int64(len(changed)))
	}
	switch verdict.Reason {
	case core.FailedCondition1:
		res.Stats.PrunedCondition1++
	case core.FailedCondition2:
		res.Stats.PrunedCondition2++
	default:
		res.Stats.GroupScans++
	}
	if !verdict.Satisfied {
		return s.repair(bounds, res.Stats)
	}
	s.base.Reset()
	s.pubStats.Reset()
	res.Found = true
	res.Node = s.pub.Clone()
	res.Suppressed = violating
	res.Report = s.rec.Snapshot()
	return res, nil
}

// changedSurvivors maps the changed-group indices (published-node
// statistics) onto the suppressed view SuppressBelow produced: one pass
// over the groups counts survivors, and changed groups that fell below
// k are dropped (their tuples are already counted as suppressed).
func (s *Incremental) changedSurvivors(stats *table.GroupStats) []int {
	changed := s.pubStats.Changed()
	out := make([]int, 0, len(changed))
	next, surv := 0, 0
	for gi := range stats.Groups {
		if next >= len(changed) {
			break
		}
		alive := stats.Groups[gi].Size >= s.cfg.K
		if gi == changed[next] {
			if alive {
				out = append(out, surv)
			}
			next++
		}
		if alive {
			surv++
		}
	}
	return out
}

// currentBounds refreshes the necessary-condition bounds from the
// maintained base statistics — the streaming equivalent of
// searchBounds, which scans the initial microdata.
func (s *Incremental) currentBounds() (core.Bounds, error) {
	if s.cfg.Policy == nil && s.cfg.UseConditions && s.cfg.P >= 2 {
		return core.BoundsFromStats(s.base.Stats(), s.cfg.P)
	}
	return core.Bounds{MaxP: s.cfg.P, MaxGroups: s.led.NumLive(), P: s.cfg.P}, nil
}

// repair climbs the lattice from the violating incumbent: strict
// ancestors are evaluated height by height through the ordinary engine
// — seeded with the maintained base statistics, so every candidate's
// statistics come from roll-up merges, never a row scan — and the first
// satisfying ancestor (in node order, deterministically) becomes the
// new published node. A tripped budget returns a partial not-found
// result with the deltas left unconsumed, so the next Republish
// retries; an exhausted ascent (no ancestor satisfies) falls back to
// the cold strategy, which searches branches the ascent cannot reach.
func (s *Incremental) repair(bounds core.Bounds, stats Stats) (Result, error) {
	s.rec.RepairAscent()
	span := s.rec.StartSpan(obs.PhaseRepair, nil)
	defer span.End()
	cfg := s.cfg
	cfg.strategy = "incremental-repair"
	lim := cfg.newLimiter()
	eval := newLimitedEvaluator(s.led.Table(), s.m, nil, cfg, bounds, lim)
	eval.noMaterialize = true
	lat := s.m.Lattice()
	bottom := lat.Bottom()
	eval.rollups.seed(bottom, s.base.Stats())
	res := Result{Stats: stats}
	for h := s.pub.Height() + 1; h <= lat.Height(); h++ {
		var cand []lattice.Node
		for _, n := range lat.NodesAtHeight(h) {
			if n.GeneralizationOf(s.pub) {
				cand = append(cand, n)
			}
		}
		if len(cand) == 0 {
			continue
		}
		// The ascent's in-scope node set grows level by level; add each
		// level so the /progress fraction stays meaningful mid-repair.
		s.rec.AddLatticeNodes(int64(len(cand)))
		i, o, err := eval.firstHit(cand, &res.Stats)
		if err != nil {
			return Result{}, err
		}
		if i >= 0 {
			if err := s.adopt(cand[i]); err != nil {
				return Result{}, s.poison(err)
			}
			s.base.Reset()
			s.pubStats.Reset()
			res.Found = true
			res.Node = cand[i].Clone()
			res.Suppressed = o.suppressed
			res.StopReason = lim.stopReason()
			span.End()
			res.Report = s.rec.Snapshot()
			return res, nil
		}
		if lim.tripped() {
			// Partial: the incumbent stays (known violating) and the
			// changed-group set stays unconsumed; the next Republish
			// re-verdicts and resumes the repair.
			res.StopReason = lim.stopReason()
			span.End()
			res.Report = s.rec.Snapshot()
			return res, nil
		}
	}
	span.End()
	return s.coldPublish()
}

// coldPublish runs the fallback batch strategy on the live snapshot —
// the initial publication, and the terminal fallback when repair proves
// no ancestor of the incumbent satisfies. The returned Result is
// exactly the strategy's own (masked table included); on success the
// found node is adopted for incremental maintenance.
func (s *Incremental) coldPublish() (Result, error) {
	s.rec.ColdFallback()
	snap, err := s.led.Snapshot()
	if err != nil {
		return Result{}, err
	}
	var res Result
	switch s.fallback {
	case StrategySamarati:
		res, err = Samarati(snap, s.cfg)
	case StrategyBottomUp, StrategyExhaustive, StrategyAllMinimal:
		var er ExhaustiveResult
		switch s.fallback {
		case StrategyBottomUp:
			er, err = BottomUp(snap, s.cfg)
		case StrategyExhaustive:
			er, err = Exhaustive(snap, s.cfg)
		default:
			er, err = AllMinimal(snap, s.cfg)
		}
		if err == nil {
			res = Result{Stats: er.Stats, Report: er.Report, StopReason: er.StopReason}
			if len(er.Minimal) > 0 {
				first := er.Minimal[0]
				res.Found = true
				res.Node = first.Node
				res.Masked = first.Masked
				res.Suppressed = first.Suppressed
			}
		}
	case StrategyIncognito:
		var ir IncognitoResult
		ir, err = Incognito(snap, s.cfg)
		if err == nil {
			res = Result{Stats: ir.Stats, Report: ir.Report, StopReason: ir.StopReason}
			if len(ir.Minimal) > 0 {
				first := ir.Minimal[0]
				res.Found = true
				res.Node = first.Node
				res.Masked = first.Masked
				res.Suppressed = first.Suppressed
			}
		}
	default:
		err = fmt.Errorf("search: unknown fallback strategy %d", s.fallback)
	}
	if err != nil {
		return Result{}, err
	}
	if !res.Found {
		s.clearPublished()
		s.base.Reset()
		return res, nil
	}
	if err := s.adopt(res.Node); err != nil {
		return Result{}, s.poison(err)
	}
	s.base.Reset()
	s.pubStats.Reset()
	return res, nil
}

// adopt installs a node as the published one: the base-to-published
// code translation is rebuilt by generalizing one representative value
// per distinct base code (group representatives keep their data even
// when retired), the maintained base statistics are rolled up through
// it, and the result becomes the maintained published-node statistics.
// O(groups) — no row is touched.
func (s *Incremental) adopt(node lattice.Node) error {
	bs := s.base.Stats()
	maps := make([]*table.CodeMap, len(s.cfg.QIs))
	pubMaps := make([]*pubMap, len(s.cfg.QIs))
	for i, attr := range s.cfg.QIs {
		pm := &pubMap{level: node[i]}
		pubMaps[i] = pm
		if pm.level == 0 {
			continue // identity; maps[i] == nil is the identity roll-up
		}
		pm.byBase = make(map[int]int)
		pm.labels = make(map[string]int)
		h, err := s.cfg.Hierarchies.Get(attr)
		if err != nil {
			return err
		}
		for gi := range bs.Groups {
			g := &bs.Groups[gi]
			c := g.Codes[i]
			if _, ok := pm.byBase[c]; ok {
				continue
			}
			label, err := h.Generalize(s.qiCols[i].Value(g.Rep).Str(), pm.level)
			if err != nil {
				return fmt.Errorf("search: adopt %v: QI %s: %w", node, attr, err)
			}
			pub, ok := pm.labels[label]
			if !ok {
				pub = len(pm.labels)
				pm.labels[label] = pub
			}
			pm.byBase[c] = pub
		}
		maps[i] = table.NewSparseCodeMap(pm.byBase)
	}
	rolled, err := bs.Rollup(maps)
	if err != nil {
		return fmt.Errorf("search: adopt %v: %w", node, err)
	}
	pubStats, err := table.NewStatsDelta(rolled)
	if err != nil {
		return fmt.Errorf("search: adopt %v: %w", node, err)
	}
	s.pub = node.Clone()
	s.pubStats = pubStats
	s.pubMaps = pubMaps
	return nil
}

func (s *Incremental) clearPublished() {
	s.pub = nil
	s.pubStats = nil
	s.pubMaps = nil
}

// Materialize builds the masked table for the published node from the
// current live rows — generalize, then suppress within the budget —
// byte-identical to the batch pipeline on the live snapshot. It is the
// O(live rows) step a streaming publisher pays only when the masked
// release is actually exported; call it after a Republish that found
// the node satisfying.
func (s *Incremental) Materialize() (*table.Table, int, error) {
	if s.err != nil {
		return nil, 0, s.err
	}
	if s.pub == nil {
		return nil, 0, fmt.Errorf("search: nothing is published")
	}
	snap, err := s.led.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	g, err := s.m.Apply(snap, s.pub)
	if err != nil {
		return nil, 0, err
	}
	mm, suppressed, within, err := s.m.SuppressWithin(g, s.cfg.K, s.cfg.MaxSuppress)
	if err != nil {
		return nil, 0, err
	}
	if !within {
		return nil, 0, fmt.Errorf("search: published node %v exceeds the suppression budget on the current rows; republish first", s.pub)
	}
	return mm, suppressed, nil
}
