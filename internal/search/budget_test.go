package search

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/obs"
	"psk/internal/table"
)

// adultSample returns a generated Adult-shaped table with the standard
// QI/confidential configuration the budget tests search over.
func adultSample(t testing.TB, n int) (*table.Table, Config) {
	t.Helper()
	src, err := dataset.Generate(n, 2006)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
	}
	return src, cfg
}

// strategyRunner adapts each of the five strategies to a common shape
// so every budget behaviour is pinned on all of them.
type strategyRunner struct {
	name string
	run  func(*table.Table, Config) (Stats, StopReason, []MinimalNode, error)
}

func strategies() []strategyRunner {
	return []strategyRunner{
		{"samarati", func(im *table.Table, cfg Config) (Stats, StopReason, []MinimalNode, error) {
			r, err := Samarati(im, cfg)
			var min []MinimalNode
			if r.Found {
				min = []MinimalNode{{Node: r.Node, Masked: r.Masked, Suppressed: r.Suppressed}}
			}
			return r.Stats, r.StopReason, min, err
		}},
		{"exhaustive", func(im *table.Table, cfg Config) (Stats, StopReason, []MinimalNode, error) {
			r, err := Exhaustive(im, cfg)
			return r.Stats, r.StopReason, r.Minimal, err
		}},
		{"bottomup", func(im *table.Table, cfg Config) (Stats, StopReason, []MinimalNode, error) {
			r, err := BottomUp(im, cfg)
			return r.Stats, r.StopReason, r.Minimal, err
		}},
		{"allminimal", func(im *table.Table, cfg Config) (Stats, StopReason, []MinimalNode, error) {
			r, err := AllMinimal(im, cfg)
			return r.Stats, r.StopReason, r.Minimal, err
		}},
		{"incognito", func(im *table.Table, cfg Config) (Stats, StopReason, []MinimalNode, error) {
			r, err := Incognito(im, cfg)
			return r.Stats, r.StopReason, r.Minimal, err
		}},
	}
}

// TestCancelReturnsQuickly pins the tentpole latency contract: after
// Config.Context is cancelled mid-search on Adult, every strategy
// returns within 100ms, with a valid tagged partial result.
func TestCancelReturnsQuickly(t *testing.T) {
	src, base := adultSample(t, 4000)
	for _, s := range strategies() {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", s.name, workers), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cfg := base
				cfg.Context = ctx
				cfg.Workers = workers

				type done struct {
					stats  Stats
					reason StopReason
					min    []MinimalNode
					err    error
					at     time.Time
				}
				ch := make(chan done, 1)
				go func() {
					st, reason, min, err := s.run(src, cfg)
					ch <- done{st, reason, min, err, time.Now()}
				}()
				// Let the search get going, then pull the plug.
				time.Sleep(10 * time.Millisecond)
				cancelled := time.Now()
				cancel()
				d := <-ch
				if d.err != nil {
					t.Fatalf("search error: %v", d.err)
				}
				if lag := d.at.Sub(cancelled); lag > 100*time.Millisecond {
					t.Fatalf("returned %v after cancel; want <= 100ms", lag)
				}
				if d.reason != StopCancelled && d.reason != StopDone {
					t.Fatalf("stop reason %v, want cancelled or done", d.reason)
				}
				// Whatever was found must be genuinely satisfying.
				for _, m := range d.min {
					ok, err := core.CheckBasic(m.Masked, cfg.QIs, cfg.Confidential, cfg.P, cfg.K)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Fatalf("partial result node %v not satisfying", m.Node)
					}
				}
			})
		}
	}
}

// TestNodeBudgetDeterministic pins the tentpole determinism contract:
// for a fixed MaxNodes the partial result — found nodes, masked bytes,
// stats, stop reason — is byte-identical serial vs parallel on every
// strategy.
func TestNodeBudgetDeterministic(t *testing.T) {
	tbl := figure3Table(t)
	for _, s := range strategies() {
		for _, maxNodes := range []int64{1, 2, 3, 5, 8, 13, 21} {
			t.Run(fmt.Sprintf("%s/n%d", s.name, maxNodes), func(t *testing.T) {
				cfg := kOnlyConfig(t, 2)
				cfg.P, cfg.Confidential = 2, []string{"Illness"}
				cfg.Budget.MaxNodes = maxNodes

				serialCfg := cfg
				serialCfg.Workers = 1
				wantStats, wantReason, wantMin, err := s.run(tbl, serialCfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4, 8} {
					parCfg := cfg
					parCfg.Workers = workers
					gotStats, gotReason, gotMin, err := s.run(tbl, parCfg)
					if err != nil {
						t.Fatal(err)
					}
					if gotReason != wantReason {
						t.Fatalf("w%d stop reason %v, serial %v", workers, gotReason, wantReason)
					}
					if !sameStats(gotStats, wantStats) {
						t.Fatalf("w%d stats %+v, serial %+v", workers, gotStats, wantStats)
					}
					if got, want := fmtMinimalNodes(t, gotMin), fmtMinimalNodes(t, wantMin); got != want {
						t.Fatalf("w%d minimal set:\n%s\nserial:\n%s", workers, got, want)
					}
				}
			})
		}
	}
}

// TestNodeBudgetExhausts pins the budget arithmetic itself: an
// Exhaustive search with MaxNodes below the lattice size consumes
// exactly the budget and reports StopNodeBudget; with the budget at or
// above the lattice size it completes with StopDone.
func TestNodeBudgetExhausts(t *testing.T) {
	tbl := figure3Table(t)
	cfg := kOnlyConfig(t, 2)
	lat := 6 // (1+1) * (2+1) nodes in the Figure 3 lattice

	cfg.Budget.MaxNodes = 4
	r, err := Exhaustive(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StopReason != StopNodeBudget {
		t.Fatalf("stop reason %v, want node-budget", r.StopReason)
	}
	if r.Stats.NodesEvaluated != 4 {
		t.Fatalf("evaluated %d nodes on a budget of 4", r.Stats.NodesEvaluated)
	}

	cfg.Budget.MaxNodes = int64(lat)
	r, err = Exhaustive(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StopReason != StopDone {
		t.Fatalf("stop reason %v with budget == lattice size, want done", r.StopReason)
	}
	if r.Stats.NodesEvaluated != lat {
		t.Fatalf("evaluated %d of %d nodes", r.Stats.NodesEvaluated, lat)
	}
}

// TestDeadlineStops pins Budget.Deadline: an already-expired deadline
// stops every strategy before it evaluates a single node, without an
// error, and the recorder counts one budget stop.
func TestDeadlineStops(t *testing.T) {
	tbl := figure3Table(t)
	for _, s := range strategies() {
		t.Run(s.name, func(t *testing.T) {
			cfg := kOnlyConfig(t, 2)
			cfg.Budget.Deadline = time.Nanosecond
			cfg.Recorder = obs.NewRecorder()
			time.Sleep(time.Millisecond) // guarantee expiry
			stats, reason, min, err := s.run(tbl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if reason != StopDeadline {
				t.Fatalf("stop reason %v, want deadline", reason)
			}
			if stats.NodesEvaluated != 0 || len(min) != 0 {
				t.Fatalf("expired deadline evaluated %d nodes, found %d", stats.NodesEvaluated, len(min))
			}
			if rep := cfg.Recorder.Snapshot(); rep.BudgetStops != 1 {
				t.Fatalf("BudgetStops = %d, want 1", rep.BudgetStops)
			}
		})
	}
}

// TestPreCancelledContext pins StopCancelled precedence: a context
// cancelled before the search starts stops it at the first checkpoint.
func TestPreCancelledContext(t *testing.T) {
	tbl := figure3Table(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := kOnlyConfig(t, 2)
	cfg.Context = ctx
	r, err := Samarati(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StopReason != StopCancelled {
		t.Fatalf("stop reason %v, want cancelled", r.StopReason)
	}
	if r.Found || r.Stats.NodesEvaluated != 0 {
		t.Fatalf("pre-cancelled search evaluated %d nodes, found=%v", r.Stats.NodesEvaluated, r.Found)
	}
}

// TestMemBudgetStops pins Budget.MaxCacheBytes: a 1-byte cap trips
// StopMemBudget as soon as the first generalized column lands in the
// cache, and the search still returns cleanly.
func TestMemBudgetStops(t *testing.T) {
	tbl := figure3Table(t)
	cfg := kOnlyConfig(t, 2)
	cfg.Budget.MaxCacheBytes = 1
	r, err := Exhaustive(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StopReason != StopMemBudget {
		t.Fatalf("stop reason %v, want mem-budget", r.StopReason)
	}
	// The bottom node generalizes nothing, so at least it evaluates;
	// the cap must bite before the full lattice does.
	if r.Stats.NodesEvaluated == 0 || r.Stats.NodesEvaluated >= 6 {
		t.Fatalf("evaluated %d nodes under a 1-byte cache cap", r.Stats.NodesEvaluated)
	}
}

// panicPolicy is a deliberately broken custom policy: it panics on
// every evaluation, standing in for a buggy user Policy.
type panicPolicy struct{}

func (panicPolicy) Name() string        { return "panic-policy" }
func (panicPolicy) ConfAttrs() []string { return nil }
func (panicPolicy) Evaluate(core.StatsView) (core.Result, error) {
	panic("deliberate test panic")
}

// TestWorkerPanicRecovered pins the tentpole resilience contract: a
// panicking node evaluation surfaces as an error (not a crash) on
// every strategy at several worker counts, the recorder counts the
// recoveries, and the same table remains searchable afterwards.
func TestWorkerPanicRecovered(t *testing.T) {
	tbl := figure3Table(t)
	for _, s := range strategies() {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", s.name, workers), func(t *testing.T) {
				cfg := kOnlyConfig(t, 2)
				cfg.Policy = panicPolicy{}
				cfg.Workers = workers
				cfg.Recorder = obs.NewRecorder()
				_, _, _, err := s.run(tbl, cfg)
				if err == nil {
					t.Fatal("panicking policy produced no error")
				}
				if !strings.Contains(err.Error(), "panic recovered") {
					t.Fatalf("error %q does not mention the recovered panic", err)
				}
				if rep := cfg.Recorder.Snapshot(); rep.PanicsRecovered == 0 {
					t.Fatal("PanicsRecovered = 0 after a recovered panic")
				}

				// The search machinery must still be usable: same table,
				// sane config, fresh run.
				good := kOnlyConfig(t, 2)
				good.Workers = workers
				if _, reason, min, err := s.run(tbl, good); err != nil || reason != StopDone || len(min) == 0 {
					t.Fatalf("follow-up search: err=%v reason=%v found=%d", err, reason, len(min))
				}
			})
		}
	}
}

// TestBudgetlessPathUnchanged guards the facade contract that the
// budget machinery is invisible when unused: no limiter is built and
// results carry StopDone.
func TestBudgetlessPathUnchanged(t *testing.T) {
	if (Config{}).newLimiter() != nil {
		t.Fatal("zero config built a limiter")
	}
	tbl := figure3Table(t)
	r, err := Samarati(tbl, kOnlyConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.StopReason != StopDone {
		t.Fatalf("unbudgeted search stop reason %v", r.StopReason)
	}
	if StopDone.Partial() || !StopCancelled.Partial() {
		t.Fatal("Partial() misclassifies")
	}
}

// fmtMinimalNodes renders a minimal set — nodes, suppression counts
// and full masked-table bytes — for byte-identical comparison.
func fmtMinimalNodes(t testing.TB, min []MinimalNode) string {
	t.Helper()
	var b strings.Builder
	for _, m := range min {
		fmt.Fprintf(&b, "node %v suppressed %d\n", m.Node, m.Suppressed)
		if m.Masked != nil {
			var csv strings.Builder
			if err := m.Masked.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			b.WriteString(csv.String())
		}
	}
	return b.String()
}
