package search

import (
	"fmt"
	"math/rand"
	"testing"

	"psk/internal/hierarchy"
	"psk/internal/table"
)

// The roll-up store promises results byte-identical to PR 1's
// row-scanning engine: same found nodes, same masked microdata, same
// suppression counts, same stats totals — at every worker count and
// for every strategy. These tests pin that promise; run with -race to
// also exercise the store's synchronization.

// TestRollupAblationMatches compares every strategy with the roll-up
// store on (default) and off (DisableRollup) across the full fixture
// grid.
func TestRollupAblationMatches(t *testing.T) {
	tbl := figure3Table(t)
	for _, p := range []int{1, 2} {
		for ts := 0; ts <= 10; ts += 2 {
			for _, useCond := range []bool{true, false} {
				for _, w := range []int{1, 4} {
					rolled := kOnlyConfig(t, ts)
					rolled.P = p
					rolled.UseConditions = useCond
					rolled.Workers = w
					direct := rolled
					direct.DisableRollup = true
					name := fmt.Sprintf("p=%d/TS=%d/cond=%v/w=%d", p, ts, useCond, w)

					sa, err := Samarati(tbl, rolled)
					if err != nil {
						t.Fatal(err)
					}
					sb, err := Samarati(tbl, direct)
					if err != nil {
						t.Fatal(err)
					}
					if sa.Found != sb.Found || !sameStats(sa.Stats, sb.Stats) ||
						sa.Suppressed != sb.Suppressed ||
						(sa.Found && !sa.Node.Equal(sb.Node)) ||
						fmtMasked(sa.Masked) != fmtMasked(sb.Masked) {
						t.Errorf("%s: rollup changed the Samarati outcome: %+v vs %+v", name, sa, sb)
					}

					ea, err := Exhaustive(tbl, rolled)
					if err != nil {
						t.Fatal(err)
					}
					eb, err := Exhaustive(tbl, direct)
					if err != nil {
						t.Fatal(err)
					}
					if !sameStats(ea.Stats, eb.Stats) ||
						fmt.Sprint(ea.Satisfying) != fmt.Sprint(eb.Satisfying) ||
						fmtMinimal(ea.Minimal) != fmtMinimal(eb.Minimal) {
						t.Errorf("%s: rollup changed the Exhaustive outcome", name)
					}

					ba, err := BottomUp(tbl, rolled)
					if err != nil {
						t.Fatal(err)
					}
					bb, err := BottomUp(tbl, direct)
					if err != nil {
						t.Fatal(err)
					}
					if !sameStats(ba.Stats, bb.Stats) ||
						fmt.Sprint(ba.Satisfying) != fmt.Sprint(bb.Satisfying) ||
						fmtMinimal(ba.Minimal) != fmtMinimal(bb.Minimal) {
						t.Errorf("%s: rollup changed the BottomUp outcome", name)
					}

					aa, err := AllMinimal(tbl, rolled)
					if err != nil {
						t.Fatal(err)
					}
					ab, err := AllMinimal(tbl, direct)
					if err != nil {
						t.Fatal(err)
					}
					if !sameStats(aa.Stats, ab.Stats) ||
						fmt.Sprint(aa.Satisfying) != fmt.Sprint(ab.Satisfying) ||
						fmtMinimal(aa.Minimal) != fmtMinimal(ab.Minimal) {
						t.Errorf("%s: rollup changed the AllMinimal outcome", name)
					}

					ia, err := Incognito(tbl, rolled)
					if err != nil {
						t.Fatal(err)
					}
					ib, err := Incognito(tbl, direct)
					if err != nil {
						t.Fatal(err)
					}
					if !sameStats(ia.Stats, ib.Stats) ||
						ia.PrunedBySubsets != ib.PrunedBySubsets ||
						ia.SubsetsEvaluated != ib.SubsetsEvaluated ||
						fmtMinimal(ia.Minimal) != fmtMinimal(ib.Minimal) {
						t.Errorf("%s: rollup changed the Incognito outcome", name)
					}
				}
			}
		}
	}
}

// randomSearchFixture builds an n-row microdata with three prefix-coded
// QIs and one confidential attribute, plus matching hierarchies — a
// deeper lattice than the Figure 3 fixture, so roll-ups chain across
// several levels.
func randomSearchFixture(t testing.TB, rng *rand.Rand, n int) (*table.Table, Config) {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Zip", Type: table.String},
		table.Field{Name: "Age", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = []string{
			fmt.Sprintf("4%d%d", rng.Intn(3), rng.Intn(4)),
			fmt.Sprintf("%d%d", 2+rng.Intn(4), rng.Intn(10)),
			[]string{"M", "F"}[rng.Intn(2)],
			fmt.Sprintf("d%d", rng.Intn(5)),
		}
	}
	tbl, err := table.FromText(sch, rows)
	if err != nil {
		t.Fatal(err)
	}
	zip, err := hierarchy.NewPrefix("Zip", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	age, err := hierarchy.NewPrefix("Age", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sex := hierarchy.NewFlat("Sex")
	sex.Top = "Person"
	cfg := Config{
		QIs:          []string{"Zip", "Age", "Sex"},
		Confidential: []string{"Illness"},
		Hierarchies:  hierarchy.MustSet(zip, age, sex),
	}
	return tbl, cfg
}

// TestRollupRandomizedEquivalence: on randomized tables and a deeper
// lattice, the roll-up and direct paths must agree for every strategy,
// at serial and parallel worker counts (run with -race).
func TestRollupRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl, base := randomSearchFixture(t, rng, 150+rng.Intn(250))
		base.K = 2 + rng.Intn(3)
		base.P = 1 + rng.Intn(2)
		if base.P > base.K {
			base.P = base.K
		}
		base.MaxSuppress = rng.Intn(20)
		base.UseConditions = rng.Intn(2) == 0
		for _, w := range []int{1, 4} {
			rolled := base
			rolled.Workers = w
			direct := rolled
			direct.DisableRollup = true
			name := fmt.Sprintf("seed=%d w=%d K=%d P=%d TS=%d cond=%v",
				seed, w, base.K, base.P, base.MaxSuppress, base.UseConditions)

			ea, err := Exhaustive(tbl, rolled)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := Exhaustive(tbl, direct)
			if err != nil {
				t.Fatal(err)
			}
			if !sameStats(ea.Stats, eb.Stats) ||
				fmt.Sprint(ea.Satisfying) != fmt.Sprint(eb.Satisfying) ||
				fmtMinimal(ea.Minimal) != fmtMinimal(eb.Minimal) {
				t.Errorf("%s: rollup changed the Exhaustive outcome", name)
			}

			sa, err := Samarati(tbl, rolled)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := Samarati(tbl, direct)
			if err != nil {
				t.Fatal(err)
			}
			if sa.Found != sb.Found || !sameStats(sa.Stats, sb.Stats) ||
				sa.Suppressed != sb.Suppressed ||
				(sa.Found && !sa.Node.Equal(sb.Node)) ||
				fmtMasked(sa.Masked) != fmtMasked(sb.Masked) {
				t.Errorf("%s: rollup changed the Samarati outcome", name)
			}

			ia, err := Incognito(tbl, rolled)
			if err != nil {
				t.Fatal(err)
			}
			ib, err := Incognito(tbl, direct)
			if err != nil {
				t.Fatal(err)
			}
			if !sameStats(ia.Stats, ib.Stats) ||
				ia.PrunedBySubsets != ib.PrunedBySubsets ||
				ia.SubsetsEvaluated != ib.SubsetsEvaluated ||
				fmtMinimal(ia.Minimal) != fmtMinimal(ib.Minimal) {
				t.Errorf("%s: rollup changed the Incognito outcome", name)
			}
		}
	}
}

// TestRollupStoreScansOnce: an exhaustive search over the whole lattice
// must hit the row-scanning fallback exactly once (the lattice bottom);
// every other node's statistics must arrive via roll-up. This pins the
// perf contract, not just the equivalence.
func TestRollupStoreScansOnce(t *testing.T) {
	tbl := figure3Table(t)
	cfg := kOnlyConfig(t, 4)
	cfg.P = 2
	m, err := cfg.validate()
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := searchBounds(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := newEvaluator(tbl, m, nil, cfg, bounds)
	if e.rollups == nil {
		t.Fatal("rollup store not enabled by default")
	}
	nodes := m.Lattice().AllNodes()
	for _, node := range nodes {
		if o := e.evalNode(node); o.err != nil {
			t.Fatal(o.err)
		}
	}
	if len(e.rollups.entries) != len(nodes) {
		t.Errorf("store holds %d entries, want %d", len(e.rollups.entries), len(nodes))
	}
	if scans := e.rollups.rowScans.Load(); scans != 1 {
		t.Errorf("row-scanning fallback ran %d times, want 1 (lattice bottom only)", scans)
	}
	// Re-evaluating is served entirely from the store.
	for _, node := range nodes {
		if o := e.evalNode(node); o.err != nil {
			t.Fatal(o.err)
		}
	}
	if len(e.rollups.entries) != len(nodes) || e.rollups.rowScans.Load() != 1 {
		t.Error("re-evaluation grew the store or re-scanned rows")
	}
}
