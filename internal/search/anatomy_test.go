package search

import (
	"strings"
	"testing"

	"psk/internal/dataset"
	"psk/internal/table"
)

func anatomyInput(t *testing.T) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "Zip", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"23", "11000", "Flu"},
		{"27", "12000", "Flu"},
		{"35", "13000", "Diabetes"},
		{"59", "14000", "Diabetes"},
		{"61", "15000", "Asthma"},
		{"65", "16000", "Asthma"},
		{"70", "17000", "HIV"},
		{"42", "18000", "Flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestAnatomizeBasic(t *testing.T) {
	tbl := anatomyInput(t)
	res, err := Anatomize(tbl, []string{"Age", "Zip"}, "Illness", 2)
	if err != nil {
		t.Fatalf("Anatomize: %v", err)
	}
	if res.QIT.NumRows() != tbl.NumRows() {
		t.Errorf("QIT rows = %d, want %d", res.QIT.NumRows(), tbl.NumRows())
	}
	// QI values are released exactly (no generalization).
	v, _ := res.QIT.Value(0, "Age")
	if v.Int() != 23 {
		t.Errorf("QIT age = %v", v)
	}
	// Every group must have >= 2 distinct sensitive values, checked via
	// the sensitive table.
	perGroup := make(map[int64]map[string]bool)
	totalCount := 0
	for r := 0; r < res.ST.NumRows(); r++ {
		gid, _ := res.ST.Value(r, "GroupID")
		val, _ := res.ST.Value(r, "Illness")
		cnt, _ := res.ST.Value(r, "Count")
		if perGroup[gid.Int()] == nil {
			perGroup[gid.Int()] = make(map[string]bool)
		}
		perGroup[gid.Int()][val.Str()] = true
		totalCount += int(cnt.Int())
	}
	if totalCount != tbl.NumRows() {
		t.Errorf("ST counts sum to %d, want %d", totalCount, tbl.NumRows())
	}
	if len(perGroup) != res.Groups {
		t.Errorf("groups = %d, ST groups = %d", res.Groups, len(perGroup))
	}
	for gid, values := range perGroup {
		if len(values) < 2 {
			t.Errorf("group %d has %d distinct sensitive values", gid, len(values))
		}
	}
	// Cross-check: QIT group membership counts match ST counts.
	gidCol, _ := res.QIT.Column("GroupID")
	qitCounts := make(map[int64]int)
	for r := 0; r < res.QIT.NumRows(); r++ {
		qitCounts[gidCol.Value(r).Int()]++
	}
	for gid := range perGroup {
		stCount := 0
		for r := 0; r < res.ST.NumRows(); r++ {
			g, _ := res.ST.Value(r, "GroupID")
			if g.Int() == gid {
				c, _ := res.ST.Value(r, "Count")
				stCount += int(c.Int())
			}
		}
		if stCount != qitCounts[gid] {
			t.Errorf("group %d: QIT %d rows, ST %d", gid, qitCounts[gid], stCount)
		}
	}
}

func TestAnatomizeEligibility(t *testing.T) {
	// "Flu" occurs 3 of 8 times: p = 3 violates the n/p rule (3*3 > 8).
	tbl := anatomyInput(t)
	if _, err := Anatomize(tbl, []string{"Age"}, "Illness", 3); err == nil ||
		!strings.Contains(err.Error(), "eligibility") {
		t.Errorf("err = %v, want eligibility failure", err)
	}
}

func TestAnatomizeValidation(t *testing.T) {
	tbl := anatomyInput(t)
	if _, err := Anatomize(tbl, []string{"Age"}, "Illness", 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := Anatomize(tbl, nil, "Illness", 2); err == nil {
		t.Error("no QIs accepted")
	}
	if _, err := Anatomize(tbl, []string{"Missing"}, "Illness", 2); err == nil {
		t.Error("unknown QI accepted")
	}
	if _, err := Anatomize(tbl, []string{"Age"}, "Missing", 2); err == nil {
		t.Error("unknown sensitive accepted")
	}
	small := tbl.Head(1)
	if _, err := Anatomize(small, []string{"Age"}, "Illness", 2); err == nil {
		t.Error("n < p accepted")
	}
	// Too few distinct values.
	sch := table.MustSchema(
		table.Field{Name: "Q", Type: table.String},
		table.Field{Name: "S", Type: table.String},
	)
	mono, err := table.FromText(sch, [][]string{{"a", "x"}, {"b", "x"}, {"c", "x"}, {"d", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Anatomize(mono, []string{"Q"}, "S", 2); err == nil {
		t.Error("single-valued sensitive accepted")
	}
}

// TestAnatomizeOnAdult: anatomy on a realistic workload; every group
// keeps >= p distinct values and the release partitions all rows.
func TestAnatomizeOnAdult(t *testing.T) {
	src, err := dataset.Generate(5000, 2006)
	if err != nil {
		t.Fatal(err)
	}
	im, err := src.Sample(1000, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Pay (~76% "<=50K") and TaxPeriod (~80% "12") violate the n/p
	// eligibility rule at p = 2 — anatomy genuinely cannot protect
	// them, a point EXPERIMENTS.md notes — so this test treats
	// MaritalStatus (max share ~46%) as the sensitive attribute.
	if _, err := Anatomize(im, dataset.QIs(), dataset.Pay, 2); err == nil {
		t.Error("skewed Pay should be ineligible for anatomy at p=2")
	}
	res, err := Anatomize(im, []string{dataset.Age, dataset.Race, dataset.Sex}, dataset.MaritalStatus, 2)
	if err != nil {
		t.Fatalf("Anatomize: %v", err)
	}
	if res.QIT.NumRows() != 1000 {
		t.Errorf("QIT rows = %d", res.QIT.NumRows())
	}
	if res.Groups < 100 {
		t.Errorf("groups = %d; expected hundreds at p=2", res.Groups)
	}
	perGroup := make(map[int64]int)
	for r := 0; r < res.ST.NumRows(); r++ {
		gid, _ := res.ST.Value(r, "GroupID")
		perGroup[gid.Int()]++
	}
	for gid, distinct := range perGroup {
		if distinct < 2 {
			t.Errorf("group %d has %d distinct values", gid, distinct)
		}
	}
}
