// Package search implements algorithms that find minimal
// generalizations: the paper's Algorithm 3 (Samarati-style binary
// search on the generalization lattice, extended with the two necessary
// conditions of p-sensitive k-anonymity), an exhaustive lattice scan
// that enumerates all p-k-minimal nodes (Definition 3), an
// Incognito-style bottom-up breadth-first search, and a Mondrian
// multidimensional partitioner as an alternative-paradigm baseline.
package search

import (
	"fmt"
	"runtime"

	"psk/internal/generalize"
	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/table"
)

// Config parameterizes a minimal-generalization search.
type Config struct {
	// QIs are the quasi-identifier (key) attributes, in lattice order.
	QIs []string
	// Confidential are the confidential attributes checked for
	// p-sensitivity. Required when P >= 2; ignored when P <= 1 and
	// empty (plain k-anonymity search).
	Confidential []string
	// Hierarchies supplies a generalization hierarchy for every QI.
	Hierarchies *hierarchy.Set
	// K is the k-anonymity parameter (>= 2).
	K int
	// P is the sensitivity parameter (1 <= P <= K). P = 1 reduces the
	// search to the classic k-minimal generalization.
	P int
	// MaxSuppress is the suppression threshold TS: the maximum number
	// of tuples that may be removed after generalization.
	MaxSuppress int
	// UseConditions enables the two necessary-condition filters of
	// Algorithm 2 / Algorithm 3. Disabling them yields the naive
	// baseline the paper's future-work section proposes to compare
	// against (the E10 ablation).
	UseConditions bool
	// Workers bounds the worker pool that evaluates independent lattice
	// nodes concurrently. Workers <= 1 (including the zero value)
	// preserves the serial, deterministic evaluation order; larger
	// values fan node evaluation out over that many goroutines while
	// still reducing per-node outcomes in deterministic node order, so
	// found nodes, masked tables and stats are identical at every
	// worker count. DefaultWorkers() returns the GOMAXPROCS-sized pool.
	Workers int
	// DisableCache turns off the per-level generalized-column cache and
	// the single-pass suppression, restoring the pre-engine per-node
	// evaluation cost (re-generalize every QI column per node, group
	// twice for the suppression budget). Results are identical either
	// way; the flag exists for ablation benchmarks. It also disables
	// the roll-up store, which is built on the cache's level maps.
	DisableCache bool
	// DisableRollup turns off the group-statistics roll-up store and
	// restores PR 1's per-node row scan. Results are identical either
	// way; the flag exists for the BenchmarkRollup ablation.
	DisableRollup bool
}

// DefaultWorkers returns the recommended Config.Workers value: the
// number of CPUs the Go runtime will actually schedule on.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// workerCount clamps the configured pool to the number of nodes on
// hand; n <= 1 or Workers <= 1 selects the serial path.
func (c Config) workerCount(n int) int {
	w := c.Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// Validate checks the configuration and returns a ready Masker.
func (c Config) validate() (*generalize.Masker, error) {
	if c.K < 2 {
		return nil, fmt.Errorf("search: k must be >= 2, got %d", c.K)
	}
	if c.P < 1 {
		return nil, fmt.Errorf("search: p must be >= 1, got %d", c.P)
	}
	if c.P > c.K {
		return nil, fmt.Errorf("search: p (%d) must be <= k (%d)", c.P, c.K)
	}
	if c.P >= 2 && len(c.Confidential) == 0 {
		return nil, fmt.Errorf("search: p >= 2 requires confidential attributes")
	}
	if c.MaxSuppress < 0 {
		return nil, fmt.Errorf("search: negative suppression threshold %d", c.MaxSuppress)
	}
	if c.Hierarchies == nil {
		return nil, fmt.Errorf("search: nil hierarchy set")
	}
	return generalize.NewMasker(c.QIs, c.Hierarchies)
}

// Stats counts the work a search performed; the ablation benches use it
// to quantify how much the necessary conditions prune.
type Stats struct {
	// NodesEvaluated is the number of lattice nodes whose masked
	// microdata was materialized.
	NodesEvaluated int
	// PrunedCondition1 counts searches rejected outright by Condition 1
	// (0 or 1: it is a property of the dataset, not of a node).
	PrunedCondition1 int
	// PrunedCondition2 counts nodes rejected by the group-count bound
	// before any detailed scan.
	PrunedCondition2 int
	// GroupScans counts full detailed p-sensitivity scans.
	GroupScans int
}

// add accumulates another stats delta. The parallel engine gives every
// node evaluation its own Stats and merges the deltas in deterministic
// node order, which keeps totals race-free and identical to the serial
// scan at any worker count.
func (s *Stats) add(o Stats) {
	s.NodesEvaluated += o.NodesEvaluated
	s.PrunedCondition1 += o.PrunedCondition1
	s.PrunedCondition2 += o.PrunedCondition2
	s.GroupScans += o.GroupScans
}

// Result is the outcome of a single-solution search.
type Result struct {
	// Found reports whether any node satisfies the target property
	// within the suppression threshold.
	Found bool
	// Node is the found (p-)k-minimal generalization node.
	Node lattice.Node
	// Masked is the masked microdata at Node (generalized, then
	// suppressed).
	Masked *table.Table
	// Suppressed is the number of tuples removed at Node.
	Suppressed int
	// Stats describes the work performed.
	Stats Stats
}

