// Package search implements algorithms that find minimal
// generalizations: the paper's Algorithm 3 (Samarati-style binary
// search on the generalization lattice, extended with the two necessary
// conditions of p-sensitive k-anonymity), an exhaustive lattice scan
// that enumerates all p-k-minimal nodes (Definition 3), an
// Incognito-style bottom-up breadth-first search, and a Mondrian
// multidimensional partitioner as an alternative-paradigm baseline.
package search

import (
	"context"
	"fmt"
	"runtime"

	"psk/internal/core"
	"psk/internal/generalize"
	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// Config parameterizes a minimal-generalization search.
type Config struct {
	// QIs are the quasi-identifier (key) attributes, in lattice order.
	QIs []string
	// Confidential are the confidential attributes checked for
	// p-sensitivity. Required when P >= 2; ignored when P <= 1 and
	// empty (plain k-anonymity search).
	Confidential []string
	// Hierarchies supplies a generalization hierarchy for every QI.
	Hierarchies *hierarchy.Set
	// K is the k-anonymity parameter (>= 2).
	K int
	// P is the sensitivity parameter (1 <= P <= K). P = 1 reduces the
	// search to the classic k-minimal generalization.
	P int
	// MaxSuppress is the suppression threshold TS: the maximum number
	// of tuples that may be removed after generalization.
	MaxSuppress int
	// Policy, when non-nil, replaces the built-in p-sensitive
	// k-anonymity verdict: every candidate node's post-suppression group
	// statistics are evaluated against this policy, so one search can
	// target any property composition (core.All of l-diversity,
	// t-closeness, (p, alpha), ... — "3-sensitive 5-anonymous AND
	// 0.3-close" in one pass). P, Confidential and UseConditions are
	// ignored when a policy is set (wrap the policy with core.WithBounds
	// to keep the Algorithm 2 rejection filters); K still governs the
	// suppression step, which removes sub-K groups within MaxSuppress
	// before the policy runs. Samarati, AllMinimal and Incognito
	// additionally require the policy to be monotone under group merging
	// (every built-in core policy is); Exhaustive and BottomUp do not.
	Policy core.Policy
	// UseConditions enables the two necessary-condition filters of
	// Algorithm 2 / Algorithm 3. Disabling them yields the naive
	// baseline the paper's future-work section proposes to compare
	// against (the E10 ablation).
	UseConditions bool
	// Workers bounds the worker pool that evaluates independent lattice
	// nodes concurrently. Workers <= 1 (including the zero value)
	// preserves the serial, deterministic evaluation order; larger
	// values fan node evaluation out over that many goroutines while
	// still reducing per-node outcomes in deterministic node order, so
	// found nodes, masked tables and stats are identical at every
	// worker count. DefaultWorkers() returns the GOMAXPROCS-sized pool.
	Workers int
	// Cache, when non-nil, is a pre-built generalized-column cache the
	// search reuses instead of building its own — the sharing hook for
	// services that run many concurrent searches over one dataset
	// (cmd/pskserve keeps one cache per (dataset, hierarchy) pair, so a
	// tenant's search finds the columns earlier tenants already
	// generalized). The cache must have been built by a Masker over the
	// same hierarchies as this config; it is ignored when its Source is
	// not the searched table (Incognito's subset evaluators and the
	// incremental session keep passing their own caches explicitly).
	// Ignored with DisableCache.
	Cache *generalize.Cache
	// DisableCache turns off the per-level generalized-column cache and
	// the single-pass suppression, restoring the pre-engine per-node
	// evaluation cost (re-generalize every QI column per node, group
	// twice for the suppression budget). Results are identical either
	// way; the flag exists for ablation benchmarks. It also disables
	// the roll-up store, which is built on the cache's level maps.
	DisableCache bool
	// DisableRollup turns off the group-statistics roll-up store and
	// restores PR 1's per-node row scan. Results are identical either
	// way; the flag exists for the BenchmarkRollup ablation.
	DisableRollup bool
	// Recorder, when non-nil, collects telemetry for the search: per-node
	// verdicts and latencies, phase wall times, cache and roll-up
	// counters, per-policy evaluation stats and worker utilization. The
	// strategies snapshot it into Result.Report when they finish. Nil
	// (the default) disables collection at zero cost — every recording
	// site is a nil check. Telemetry never changes search results.
	Recorder *obs.Recorder
	// Tracer, when non-nil, streams one JSONL event per lattice-node
	// evaluation (node vector, height, verdict, duration, worker).
	// Independent of Recorder; nil disables tracing.
	Tracer *obs.Tracer
	// Context, when non-nil, cancels the search: once Done, no further
	// lattice node starts evaluating and the strategy returns its valid
	// best-so-far partial result tagged StopCancelled. Nil (the default)
	// means the search is not cancellable from outside.
	Context context.Context
	// Budget bounds the search by wall-clock time, nodes consumed and
	// cache memory (see Budget). The zero value is unlimited and costs
	// one pointer compare per node.
	Budget Budget
	// Frontier, when enabled, adds a utility-aware Pareto frontier pass
	// to the search (frontier.go): every satisfying lattice node is
	// scored with the statistics-native loss metrics and the result's
	// Frontier field receives the dominance-reduced set. The pass shares
	// the search's roll-up store and budget.
	Frontier FrontierConfig

	// strategy names the strategy that owns this config copy; each entry
	// point stamps it so engine workers can carry pprof labels
	// (psk_strategy) and CPU profiles attribute samples per strategy.
	strategy string
}

// DefaultWorkers returns the recommended Config.Workers value: the
// number of CPUs the Go runtime will actually schedule on.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// workerCount clamps the configured pool to the number of nodes on
// hand; n <= 1 or Workers <= 1 selects the serial path.
func (c Config) workerCount(n int) int {
	w := c.Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// Validate checks the configuration and returns a ready Masker.
func (c Config) validate() (*generalize.Masker, error) {
	if c.K < 2 {
		return nil, fmt.Errorf("search: k must be >= 2, got %d", c.K)
	}
	if c.Policy == nil {
		if c.P < 1 {
			return nil, fmt.Errorf("search: p must be >= 1, got %d", c.P)
		}
		if c.P > c.K {
			return nil, fmt.Errorf("search: p (%d) must be <= k (%d)", c.P, c.K)
		}
		if c.P >= 2 && len(c.Confidential) == 0 {
			return nil, fmt.Errorf("search: p >= 2 requires confidential attributes")
		}
	}
	if c.MaxSuppress < 0 {
		return nil, fmt.Errorf("search: negative suppression threshold %d", c.MaxSuppress)
	}
	if c.Budget.Deadline < 0 || c.Budget.MaxNodes < 0 || c.Budget.MaxCacheBytes < 0 {
		return nil, fmt.Errorf("search: negative budget limit %+v", c.Budget)
	}
	if c.Frontier.MaxRank < 0 {
		return nil, fmt.Errorf("search: negative frontier rank %d", c.Frontier.MaxRank)
	}
	for _, o := range c.Frontier.Objectives {
		if o >= numObjectives {
			return nil, fmt.Errorf("search: unknown frontier objective %d", uint8(o))
		}
	}
	if c.Hierarchies == nil {
		return nil, fmt.Errorf("search: nil hierarchy set")
	}
	return generalize.NewMasker(c.QIs, c.Hierarchies)
}

// effectiveConf lists the confidential attributes node statistics must
// carry histograms for: the configured list joined with every attribute
// the policy addresses by name. Plain k-anonymity searches need none.
func (c Config) effectiveConf() []string {
	if c.Policy == nil {
		if c.P <= 1 {
			return nil
		}
		return c.Confidential
	}
	out := append([]string(nil), c.Confidential...)
	seen := make(map[string]bool, len(out))
	for _, a := range out {
		seen[a] = true
	}
	for _, a := range c.Policy.ConfAttrs() {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// effectivePolicy resolves the policy a search evaluates at every node:
// the configured one, or the built-in equivalent of the legacy
// parameters — plain k-anonymity for P <= 1, p-sensitive k-anonymity
// otherwise, wrapped with the necessary-condition rejection filters
// when they are enabled.
func (c Config) effectivePolicy(bounds core.Bounds) core.Policy {
	if c.Policy != nil {
		return c.Policy
	}
	if c.P <= 1 {
		return core.KAnonymityPolicy{K: c.K}
	}
	var p core.Policy = core.PSensitiveKAnonymityPolicy{P: c.P, K: c.K}
	if c.UseConditions {
		p = core.WithBounds(p, bounds)
	}
	return p
}

// Stats counts the work a search performed; the ablation benches use it
// to quantify how much the necessary conditions prune.
type Stats struct {
	// NodesEvaluated is the number of lattice nodes whose masked
	// microdata was materialized.
	NodesEvaluated int
	// PrunedCondition1 counts Condition 1 rejections. For the built-in
	// property it is 0 or 1 — the condition is a property of the dataset,
	// checked once before the lattice is touched. A custom Policy wrapped
	// with core.WithBounds reports it per evaluated node instead.
	PrunedCondition1 int
	// PrunedCondition2 counts nodes rejected by the group-count bound
	// before any detailed scan.
	PrunedCondition2 int
	// GroupScans counts full detailed p-sensitivity scans.
	GroupScans int
	// SuppressedRows totals the tuples suppression removed at evaluated
	// nodes that passed the budget gate (nodes rejected for exceeding
	// MaxSuppress contribute nothing). Identical across the cached,
	// ablation and statistics evaluation paths.
	SuppressedRows int
}

// Merge accumulates another stats delta. The parallel engine gives
// every node evaluation its own Stats and merges the deltas in
// deterministic node order, which keeps totals race-free and identical
// to the serial scan at any worker count. Exported so callers that run
// several searches (experiment sweeps, the Incognito subset phases) can
// total their work the same way.
func (s *Stats) Merge(o Stats) {
	s.NodesEvaluated += o.NodesEvaluated
	s.PrunedCondition1 += o.PrunedCondition1
	s.PrunedCondition2 += o.PrunedCondition2
	s.GroupScans += o.GroupScans
	s.SuppressedRows += o.SuppressedRows
}

// Result is the outcome of a single-solution search.
type Result struct {
	// Found reports whether any node satisfies the target property
	// within the suppression threshold.
	Found bool
	// Node is the found (p-)k-minimal generalization node.
	Node lattice.Node
	// Masked is the masked microdata at Node (generalized, then
	// suppressed).
	Masked *table.Table
	// Suppressed is the number of tuples removed at Node.
	Suppressed int
	// Stats describes the work performed.
	Stats Stats
	// Report is the telemetry snapshot taken when the search finished;
	// nil unless Config.Recorder was set.
	Report *obs.Report
	// StopReason records why the search ended: StopDone for a complete
	// run, otherwise the context/budget limit that tripped first, in
	// which case the rest of the result is the valid best-so-far state
	// (Found may be false even though an uncancelled search would have
	// succeeded).
	StopReason StopReason
	// Frontier is the dominance-reduced set of satisfying nodes with
	// their stats-native loss scores, in lattice walk order; nil unless
	// Config.Frontier.Enabled.
	Frontier []FrontierEntry
}
