// Package search implements algorithms that find minimal
// generalizations: the paper's Algorithm 3 (Samarati-style binary
// search on the generalization lattice, extended with the two necessary
// conditions of p-sensitive k-anonymity), an exhaustive lattice scan
// that enumerates all p-k-minimal nodes (Definition 3), an
// Incognito-style bottom-up breadth-first search, and a Mondrian
// multidimensional partitioner as an alternative-paradigm baseline.
package search

import (
	"fmt"

	"psk/internal/core"
	"psk/internal/generalize"
	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/table"
)

// Config parameterizes a minimal-generalization search.
type Config struct {
	// QIs are the quasi-identifier (key) attributes, in lattice order.
	QIs []string
	// Confidential are the confidential attributes checked for
	// p-sensitivity. Required when P >= 2; ignored when P <= 1 and
	// empty (plain k-anonymity search).
	Confidential []string
	// Hierarchies supplies a generalization hierarchy for every QI.
	Hierarchies *hierarchy.Set
	// K is the k-anonymity parameter (>= 2).
	K int
	// P is the sensitivity parameter (1 <= P <= K). P = 1 reduces the
	// search to the classic k-minimal generalization.
	P int
	// MaxSuppress is the suppression threshold TS: the maximum number
	// of tuples that may be removed after generalization.
	MaxSuppress int
	// UseConditions enables the two necessary-condition filters of
	// Algorithm 2 / Algorithm 3. Disabling them yields the naive
	// baseline the paper's future-work section proposes to compare
	// against (the E10 ablation).
	UseConditions bool
}

// Validate checks the configuration and returns a ready Masker.
func (c Config) validate() (*generalize.Masker, error) {
	if c.K < 2 {
		return nil, fmt.Errorf("search: k must be >= 2, got %d", c.K)
	}
	if c.P < 1 {
		return nil, fmt.Errorf("search: p must be >= 1, got %d", c.P)
	}
	if c.P > c.K {
		return nil, fmt.Errorf("search: p (%d) must be <= k (%d)", c.P, c.K)
	}
	if c.P >= 2 && len(c.Confidential) == 0 {
		return nil, fmt.Errorf("search: p >= 2 requires confidential attributes")
	}
	if c.MaxSuppress < 0 {
		return nil, fmt.Errorf("search: negative suppression threshold %d", c.MaxSuppress)
	}
	if c.Hierarchies == nil {
		return nil, fmt.Errorf("search: nil hierarchy set")
	}
	return generalize.NewMasker(c.QIs, c.Hierarchies)
}

// Stats counts the work a search performed; the ablation benches use it
// to quantify how much the necessary conditions prune.
type Stats struct {
	// NodesEvaluated is the number of lattice nodes whose masked
	// microdata was materialized.
	NodesEvaluated int
	// PrunedCondition1 counts searches rejected outright by Condition 1
	// (0 or 1: it is a property of the dataset, not of a node).
	PrunedCondition1 int
	// PrunedCondition2 counts nodes rejected by the group-count bound
	// before any detailed scan.
	PrunedCondition2 int
	// GroupScans counts full detailed p-sensitivity scans.
	GroupScans int
}

// Result is the outcome of a single-solution search.
type Result struct {
	// Found reports whether any node satisfies the target property
	// within the suppression threshold.
	Found bool
	// Node is the found (p-)k-minimal generalization node.
	Node lattice.Node
	// Masked is the masked microdata at Node (generalized, then
	// suppressed).
	Masked *table.Table
	// Suppressed is the number of tuples removed at Node.
	Suppressed int
	// Stats describes the work performed.
	Stats Stats
}

// satisfies runs the property check at one node: generalize, suppress
// within budget, then test p-sensitive k-anonymity on the result. The
// bounds are reused across nodes per Theorems 1 and 2. It returns the
// masked table when the node qualifies.
func satisfies(im *table.Table, m *generalize.Masker, cfg Config, node lattice.Node, bounds core.Bounds, stats *Stats) (*table.Table, int, bool, error) {
	g, err := m.Apply(im, node)
	if err != nil {
		return nil, 0, false, err
	}

	stats.NodesEvaluated++

	// Suppression step: count violators, enforce the threshold, remove.
	violating, err := m.ViolatingTuples(g, cfg.K)
	if err != nil {
		return nil, 0, false, err
	}
	if violating > cfg.MaxSuppress {
		return nil, 0, false, nil
	}
	mm, suppressed, err := m.Suppress(g, cfg.K)
	if err != nil {
		return nil, 0, false, err
	}
	// Note: when the budget admits suppressing every tuple, the empty
	// release vacuously satisfies the property; the paper's Table 4
	// relies on this (TS = 10 makes the bottom node 3-minimal).

	if cfg.P <= 1 {
		// Plain k-anonymity: suppression already guarantees it.
		stats.GroupScans++
		return mm, suppressed, true, nil
	}

	if cfg.UseConditions {
		res, err := core.CheckWithBounds(mm, cfg.QIs, cfg.Confidential, cfg.P, cfg.K, bounds)
		if err != nil {
			return nil, 0, false, err
		}
		switch res.Reason {
		case core.FailedCondition2:
			stats.PrunedCondition2++
			return nil, 0, false, nil
		case core.Satisfied:
			stats.GroupScans++
			return mm, suppressed, true, nil
		default:
			stats.GroupScans++
			return nil, 0, false, nil
		}
	}

	stats.GroupScans++
	ok, err := core.CheckBasic(mm, cfg.QIs, cfg.Confidential, cfg.P, cfg.K)
	if err != nil {
		return nil, 0, false, err
	}
	if !ok {
		return nil, 0, false, nil
	}
	return mm, suppressed, true, nil
}
