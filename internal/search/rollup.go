package search

import (
	"fmt"
	"sync"
	"sync/atomic"

	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// rollupStore keeps the pre-suppression group statistics of every
// lattice node one search has evaluated, so later nodes derive their
// statistics by merging an already-evaluated descendant's groups
// (table.GroupStats.Rollup) instead of re-scanning rows. Storing the
// statistics *before* suppression is what makes the roll-up exact at
// every node: generalization is a function of the source rows alone,
// so a node's pre-suppression groups are always a pure merge of any
// descendant's pre-suppression groups, regardless of which tuples
// suppression would remove at either node (suppression then drops
// whole sub-k groups, which SuppressBelow replays on the statistics).
//
// The store is safe for concurrent use by the evaluator's worker pool:
// entries are created under the mutex, computed once by their creator,
// and published by closing done. Waiting on another node's entry can
// never deadlock — a creator only ever waits on the lattice bottom's
// entry, whose computation waits on nothing.
type rollupStore struct {
	mu      sync.Mutex
	entries map[string]*rollupEntry
	// rowScans counts how many node evaluations fell back to scanning
	// rows; for a nested hierarchy set it stays at 1 (the lattice
	// bottom), which TestRollupStoreScansOnce pins.
	rowScans atomic.Int64
}

type rollupEntry struct {
	node lattice.Node
	done chan struct{}
	// completed is set under the store mutex when stats/err are final;
	// nearestDescendant only considers completed entries, so it never
	// blocks on an in-flight computation.
	completed bool
	stats     *table.GroupStats
	err       error
}

func newRollupStore() *rollupStore {
	return &rollupStore{entries: make(map[string]*rollupEntry)}
}

// acquire returns the entry for the node, creating it if absent. The
// caller that observes created == true owns the computation and must
// call finish exactly once; everyone else waits on done.
func (s *rollupStore) acquire(node lattice.Node) (e *rollupEntry, created bool) {
	key := node.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		return e, false
	}
	e = &rollupEntry{node: node.Clone(), done: make(chan struct{})}
	s.entries[key] = e
	return e, true
}

// finish publishes the entry's result.
func (s *rollupStore) finish(e *rollupEntry, stats *table.GroupStats, err error) {
	s.mu.Lock()
	e.stats, e.err = stats, err
	e.completed = true
	s.mu.Unlock()
	close(e.done)
}

// seed pre-populates the store with an externally derived node's
// statistics (Incognito projects the full-QI base statistics onto each
// subset to seed the subset lattice's bottom without a row scan). A
// node already present is left untouched.
func (s *rollupStore) seed(node lattice.Node, stats *table.GroupStats) {
	e, created := s.acquire(node)
	if created {
		s.finish(e, stats, nil)
	}
}

// nearestDescendant returns the completed entry whose node the given
// node generalizes, preferring the greatest lattice height (fewest
// groups, so the cheapest merge); nil when no strict descendant has
// completed without error.
func (s *rollupStore) nearestDescendant(node lattice.Node) *rollupEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *rollupEntry
	for _, e := range s.entries {
		if !e.completed || e.err != nil || !node.StrictGeneralizationOf(e.node) {
			continue
		}
		if best == nil || e.node.Height() > best.node.Height() {
			best = e
		}
	}
	return best
}

// buildStats computes the node's pre-suppression statistics from rows:
// the sharded, parallel group-by over the node's generalized table.
func (e *evaluator) buildStats(node lattice.Node) (*table.GroupStats, error) {
	g, err := e.cache.ApplyQIs(e.qis, node)
	if err != nil {
		return nil, err
	}
	w := e.cfg.Workers
	if w < 1 {
		w = 1
	}
	return g.GroupStats(e.qis, e.conf, w)
}

// statsFor returns the node's pre-suppression group statistics,
// rolling up from the nearest already-evaluated descendant when one
// exists. The first node with no completed descendant seeds the store
// with the lattice bottom's statistics (the one base-level row scan of
// the search); every other node is then an ancestor of something in
// the store, so it merges groups instead of scanning rows.
func (e *evaluator) statsFor(node lattice.Node) (*table.GroupStats, error) {
	entry, created := e.rollups.acquire(node)
	if !created {
		e.rec.RollupReuse()
		<-entry.done
		return entry.stats, entry.err
	}
	// The creator owns the computation and must publish the entry even
	// if the computation panics — otherwise every worker waiting on
	// entry.done would block forever and the pool could never drain. The
	// panic is re-raised after publishing; evalSafe turns it into this
	// node's error outcome, while the waiters see the recorded error.
	finished := false
	defer func() {
		if !finished {
			err := fmt.Errorf("search: rollup stats for node %v: computation panicked", node)
			e.rollups.finish(entry, nil, err)
		}
	}()
	stats, err := e.computeStats(node)
	finished = true
	e.rollups.finish(entry, stats, err)
	return stats, err
}

func (e *evaluator) computeStats(node lattice.Node) (*table.GroupStats, error) {
	src := e.rollups.nearestDescendant(node)
	if src == nil && node.Height() > 0 {
		// Seed the bottom so this and all later nodes can roll up.
		bottom := make(lattice.Node, len(node))
		if bs, err := e.statsFor(bottom); err == nil && bs != nil {
			src = &rollupEntry{node: bottom, stats: bs}
		}
	}
	if src != nil {
		rollStart := e.rec.Start()
		maps, err := e.levelMaps(src.node, node)
		if err == nil {
			rolled, rerr := src.stats.Rollup(maps)
			if rerr == nil {
				e.rec.PhaseEnd(obs.PhaseRollup, rollStart)
				e.rec.RollupMerge()
				return rolled, nil
			}
			err = rerr
		}
		e.rec.PhaseEnd(obs.PhaseRollup, rollStart)
		// A roll-up can only fail when a hierarchy is not a nested
		// refinement (level maps are then not functional). The direct
		// scan still defines the node's statistics, so fall back rather
		// than failing a search the direct path would complete.
		_ = err
	}
	e.rollups.rowScans.Add(1)
	e.rec.RollupRowScan()
	scanStart := e.rec.Start()
	stats, err := e.buildStats(node)
	e.rec.PhaseEnd(obs.PhaseGroupBy, scanStart)
	return stats, err
}

// levelMaps assembles the per-QI code translations from one node's
// levels to another's, served from the shared generalized-column cache.
func (e *evaluator) levelMaps(from, to lattice.Node) ([]*table.CodeMap, error) {
	if len(from) != len(to) || len(from) != len(e.qis) {
		return nil, fmt.Errorf("search: level maps between nodes %v and %v over %d attributes", from, to, len(e.qis))
	}
	maps := make([]*table.CodeMap, len(e.qis))
	for i, attr := range e.qis {
		cm, err := e.cache.LevelMap(attr, from[i], to[i])
		if err != nil {
			return nil, err
		}
		maps[i] = cm
	}
	return maps, nil
}
