package search

import (
	"psk/internal/lattice"
	"psk/internal/table"
)

// AllMinimal enumerates every p-k-minimal generalization (Definition 3)
// using predictive tagging in the style of El Emam's Optimal Lattice
// Anonymization: the lattice is walked bottom-up, and as soon as a node
// satisfies the property every strict generalization of it is tagged
// and never evaluated — by generalization monotonicity they all satisfy
// but none can be minimal. An untagged node that evaluates to
// satisfied therefore has only failing predecessors, which makes it
// minimal by construction.
//
// Compared with Exhaustive (which evaluates all prod(h_i + 1) nodes)
// this skips the entire up-set of every minimal node; compared with
// BottomUp it returns the complete minimal antichain, not only the
// minimal-height slice. Like Samarati it relies on the monotonicity
// premise of the paper; Exhaustive remains the assumption-free
// reference.
func AllMinimal(im *table.Table, cfg Config) (ExhaustiveResult, error) {
	m, err := cfg.validate()
	if err != nil {
		return ExhaustiveResult{}, err
	}
	var res ExhaustiveResult

	bounds, err := searchBounds(im, cfg)
	if err != nil {
		return ExhaustiveResult{}, err
	}
	if cfg.UseConditions && cfg.P >= 2 && !bounds.Feasible() {
		res.Stats.PrunedCondition1 = 1
		return res, nil
	}

	lat := m.Lattice()
	tagged := make(map[string]bool) // known satisfied via a specialization
	for h := 0; h <= lat.Height(); h++ {
		for _, node := range lat.NodesAtHeight(h) {
			if tagged[node.Key()] {
				res.Satisfying = append(res.Satisfying, node)
				tagUp(lat, node, tagged)
				continue
			}
			mm, suppressed, ok, err := satisfies(im, m, cfg, node, bounds, &res.Stats)
			if err != nil {
				return ExhaustiveResult{}, err
			}
			if ok {
				res.Satisfying = append(res.Satisfying, node)
				res.Minimal = append(res.Minimal, MinimalNode{Node: node, Masked: mm, Suppressed: suppressed})
				tagUp(lat, node, tagged)
			}
		}
	}
	return res, nil
}

// tagUp marks every strict generalization of node as known-satisfied.
func tagUp(lat *lattice.Lattice, node lattice.Node, tagged map[string]bool) {
	for _, succ := range lat.Successors(node) {
		if !tagged[succ.Key()] {
			tagged[succ.Key()] = true
			tagUp(lat, succ, tagged)
		}
	}
}
