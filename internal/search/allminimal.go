package search

import (
	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// AllMinimal enumerates every p-k-minimal generalization (Definition 3)
// using predictive tagging in the style of El Emam's Optimal Lattice
// Anonymization: the lattice is walked bottom-up, and as soon as a node
// satisfies the property every strict generalization of it is tagged
// and never evaluated — by generalization monotonicity they all satisfy
// but none can be minimal. An untagged node that evaluates to
// satisfied therefore has only failing predecessors, which makes it
// minimal by construction.
//
// Compared with Exhaustive (which evaluates all prod(h_i + 1) nodes)
// this skips the entire up-set of every minimal node; compared with
// BottomUp it returns the complete minimal antichain, not only the
// minimal-height slice. Like Samarati it relies on the monotonicity
// premise of the paper; Exhaustive remains the assumption-free
// reference.
func AllMinimal(im *table.Table, cfg Config) (ExhaustiveResult, error) {
	cfg.strategy = "all-minimal"
	m, err := cfg.validate()
	if err != nil {
		return ExhaustiveResult{}, err
	}
	var res ExhaustiveResult
	span := cfg.Recorder.StartSpan(obs.PhaseSearch, nil)
	defer span.End()

	bounds, err := searchBounds(im, cfg)
	if err != nil {
		return ExhaustiveResult{}, err
	}
	if cfg.Policy == nil && cfg.UseConditions && cfg.P >= 2 && !bounds.Feasible() {
		res.Stats.PrunedCondition1 = 1
		span.End()
		res.Report = cfg.Recorder.Snapshot()
		return res, nil
	}

	eval := newEvaluator(im, m, nil, cfg, bounds)
	lat := m.Lattice()
	cfg.Recorder.AddLatticeNodes(int64(lat.Size()))
	tagged := make(map[string]bool) // known satisfied via a specialization
	for h := 0; h <= lat.Height(); h++ {
		// Tagging only ever marks strict generalizations — nodes at
		// strictly greater heights — so the level's tag state is fixed
		// before any of its nodes is evaluated. That makes the untagged
		// frontier of each level a set of independent evaluations, which
		// the engine can fan out across workers; results merge back in
		// node order, identical to the serial walk.
		nodes := lat.NodesAtHeight(h)
		var candidates []lattice.Node
		candIdx := make([]int, len(nodes)) // node index -> candidate index, -1 if tagged
		for i, node := range nodes {
			if tagged[node.Key()] {
				candIdx[i] = -1
				continue
			}
			candIdx[i] = len(candidates)
			candidates = append(candidates, node)
		}
		outs, err := eval.evalAll(candidates, &res.Stats)
		if err != nil {
			return ExhaustiveResult{}, err
		}
		for i, node := range nodes {
			if candIdx[i] < 0 {
				res.Satisfying = append(res.Satisfying, node)
				tagUp(lat, node, tagged)
				continue
			}
			if o := outs[candIdx[i]]; o.ok {
				res.Satisfying = append(res.Satisfying, node)
				res.Minimal = append(res.Minimal, MinimalNode{Node: node, Masked: o.masked, Suppressed: o.suppressed})
				tagUp(lat, node, tagged)
			}
		}
		if eval.lim.tripped() {
			// Levels below completed in full, so every node in Minimal is
			// genuinely minimal; higher levels stay unexplored.
			break
		}
	}
	if err := attachFrontier(eval, lat, true, &res.Stats, &res.Frontier, &span); err != nil {
		return ExhaustiveResult{}, err
	}
	res.StopReason = eval.lim.stopReason()
	span.End()
	res.Report = cfg.Recorder.Snapshot()
	return res, nil
}

// tagUp marks every strict generalization of node as known-satisfied.
func tagUp(lat *lattice.Lattice, node lattice.Node, tagged map[string]bool) {
	for _, succ := range lat.Successors(node) {
		if !tagged[succ.Key()] {
			tagged[succ.Key()] = true
			tagUp(lat, succ, tagged)
		}
	}
}
