package search

import (
	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// MinimalNode is one p-k-minimal generalization found by Exhaustive,
// with its masked microdata.
type MinimalNode struct {
	Node       lattice.Node
	Masked     *table.Table
	Suppressed int
}

// ExhaustiveResult reports every p-k-minimal generalization (Definition
// 3): the satisfying nodes with no satisfying node strictly below them.
type ExhaustiveResult struct {
	// Minimal are the p-k-minimal nodes in bottom-up lattice order.
	Minimal []MinimalNode
	// Satisfying is every satisfying node (minimal or not).
	Satisfying []lattice.Node
	// Stats describes the work performed.
	Stats Stats
	// Report is the telemetry snapshot taken when the search finished;
	// nil unless Config.Recorder was set.
	Report *obs.Report
	// StopReason records why the search ended; anything but StopDone
	// marks a valid best-so-far partial enumeration (every node listed
	// in Minimal/Satisfying was genuinely evaluated and satisfied, but
	// nodes the budget skipped may be missing, so minimality is only
	// relative to the evaluated set).
	StopReason StopReason
	// Frontier is the dominance-reduced set of satisfying nodes with
	// their stats-native loss scores, in lattice walk order; nil unless
	// Config.Frontier.Enabled.
	Frontier []FrontierEntry
}

// Exhaustive evaluates every node of the generalization lattice and
// returns all p-k-minimal generalizations. Unlike Samarati it makes no
// monotonicity assumption, so it is the reference implementation the
// tests compare the faster searches against; it also powers Table 4,
// whose lattice has only six nodes. Every node is independent, so with
// cfg.Workers > 1 the whole lattice is evaluated concurrently.
func Exhaustive(im *table.Table, cfg Config) (ExhaustiveResult, error) {
	cfg.strategy = "exhaustive"
	m, err := cfg.validate()
	if err != nil {
		return ExhaustiveResult{}, err
	}
	var res ExhaustiveResult
	span := cfg.Recorder.StartSpan(obs.PhaseSearch, nil)
	defer span.End()

	bounds, err := searchBounds(im, cfg)
	if err != nil {
		return ExhaustiveResult{}, err
	}
	if cfg.Policy == nil && cfg.UseConditions && cfg.P >= 2 && !bounds.Feasible() {
		res.Stats.PrunedCondition1 = 1
		span.End()
		res.Report = cfg.Recorder.Snapshot()
		return res, nil
	}

	eval := newEvaluator(im, m, nil, cfg, bounds)
	nodes := m.Lattice().AllNodes()
	cfg.Recorder.AddLatticeNodes(int64(len(nodes)))
	outs, err := eval.evalAll(nodes, &res.Stats)
	if err != nil {
		return ExhaustiveResult{}, err
	}
	var hits []MinimalNode
	for i, o := range outs {
		if o.ok {
			hits = append(hits, MinimalNode{Node: nodes[i], Masked: o.masked, Suppressed: o.suppressed})
			res.Satisfying = append(res.Satisfying, nodes[i])
		}
	}
	for _, n := range lattice.Minimal(res.Satisfying) {
		for _, h := range hits {
			if h.Node.Equal(n) {
				res.Minimal = append(res.Minimal, h)
				break
			}
		}
	}
	if err := attachFrontier(eval, m.Lattice(), false, &res.Stats, &res.Frontier, &span); err != nil {
		return ExhaustiveResult{}, err
	}
	res.StopReason = eval.lim.stopReason()
	span.End()
	res.Report = cfg.Recorder.Snapshot()
	return res, nil
}
