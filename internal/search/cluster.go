package search

import (
	"fmt"
	"sort"
	"strings"

	"psk/internal/hierarchy"
	"psk/internal/table"
)

// GreedyCluster implements a greedy clustering anonymizer in the spirit
// of Campan and Truta's follow-up work on *generating* p-sensitive
// k-anonymous microdata (the ICDE paper only *tests* the property and
// searches full-domain lattices; its future work proposes dedicated
// generation algorithms). Records are grouped one cluster at a time:
//
//  1. Seed a cluster with the first unassigned record.
//  2. While the cluster lacks p distinct values for some confidential
//     attribute, add the unassigned record that supplies a missing
//     value at the smallest distance; once diversity is met, grow with
//     nearest records until the cluster reaches k.
//  3. When no valid new cluster can be formed, disperse the leftovers
//     into their nearest clusters (which can only grow sizes and value
//     sets, so feasibility is preserved).
//
// Output QI cells are recoded to per-cluster range/set labels, exactly
// like Mondrian, so the result is k-anonymous and p-sensitive by
// construction. Compared with full-domain generalization it trades the
// global interpretability of domain-level recoding for much lower
// information loss; compared with Mondrian it enforces p during
// construction rather than rejecting splits afterwards.
type ClusterResult struct {
	// Masked is the recoded microdata.
	Masked *table.Table
	// Clusters is the number of groups formed.
	Clusters int
	// GroupSizes are the cluster sizes in creation order.
	GroupSizes []int
	// Dispersed is how many leftover records were folded into existing
	// clusters after no further valid cluster could be seeded.
	Dispersed int
}

// ClusterConfig parameterizes GreedyCluster.
type ClusterConfig struct {
	// QIs are the quasi-identifiers to recode.
	QIs []string
	// Confidential are the attributes protected by the P constraint.
	Confidential []string
	// K is the minimum cluster size (>= 2).
	K int
	// P is the sensitivity constraint (1 <= P <= K).
	P int
	// Extended optionally adds category-level diversity constraints:
	// for each entry, every cluster must keep at least P distinct
	// labels at every hierarchy level up to MaxLevel of the named
	// confidential attribute (extended p-sensitivity enforced during
	// construction). The attribute must also appear in Confidential.
	Extended []ExtendedConstraint
}

// ExtendedConstraint is one extended-sensitivity requirement for
// clustering.
type ExtendedConstraint struct {
	// Attr names the confidential attribute.
	Attr string
	// Hierarchy is the value generalization hierarchy over Attr.
	Hierarchy hierarchy.Hierarchy
	// MaxLevel is the highest level at which P distinct labels are
	// required (the root is normally exempt).
	MaxLevel int
}

// GreedyCluster partitions the table into clusters satisfying both
// constraints and returns the recoded masked microdata.
func GreedyCluster(t *table.Table, cfg ClusterConfig) (ClusterResult, error) {
	if cfg.K < 2 {
		return ClusterResult{}, fmt.Errorf("search: cluster k must be >= 2, got %d", cfg.K)
	}
	if cfg.P < 1 {
		return ClusterResult{}, fmt.Errorf("search: cluster p must be >= 1, got %d", cfg.P)
	}
	if cfg.P > cfg.K {
		return ClusterResult{}, fmt.Errorf("search: cluster p (%d) must be <= k (%d)", cfg.P, cfg.K)
	}
	if len(cfg.QIs) == 0 {
		return ClusterResult{}, fmt.Errorf("search: cluster needs at least one quasi-identifier")
	}
	if cfg.P >= 2 && len(cfg.Confidential) == 0 {
		return ClusterResult{}, fmt.Errorf("search: cluster p >= 2 requires confidential attributes")
	}
	if t.NumRows() < cfg.K {
		return ClusterResult{}, fmt.Errorf("search: table has %d rows, fewer than k = %d", t.NumRows(), cfg.K)
	}

	qiCols := make([]table.Column, len(cfg.QIs))
	for i, q := range cfg.QIs {
		c, err := t.Column(q)
		if err != nil {
			return ClusterResult{}, err
		}
		qiCols[i] = c
	}
	confCols := make([]table.Column, len(cfg.Confidential))
	for i, s := range cfg.Confidential {
		c, err := t.Column(s)
		if err != nil {
			return ClusterResult{}, err
		}
		confCols[i] = c
	}
	// Feasibility (the paper's Condition 1 applied to clustering).
	for i, cc := range confCols {
		if cfg.P >= 2 && distinctIn(cc, allRows(t.NumRows())) < cfg.P {
			return ClusterResult{}, fmt.Errorf("search: confidential attribute %q has fewer than p = %d distinct values (necessary condition 1)",
				cfg.Confidential[i], cfg.P)
		}
	}

	// Diversity checks: one per confidential attribute plus one per
	// extended (attribute, level) pair. Extended labels are precomputed
	// so cluster growth tests are O(1) per row.
	checks, err := buildDiversityChecks(t, cfg, confCols)
	if err != nil {
		return ClusterResult{}, err
	}

	// Precompute numeric ranges for distance normalization.
	ranges := make([]float64, len(qiCols))
	for i, c := range qiCols {
		if c.Type() == table.Int || c.Type() == table.Float {
			lo, hi := c.Value(0).Float(), c.Value(0).Float()
			for r := 1; r < c.Len(); r++ {
				v := c.Value(r).Float()
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			ranges[i] = hi - lo
		}
	}
	dist := func(a, b int) float64 {
		d := 0.0
		for i, c := range qiCols {
			switch c.Type() {
			case table.Int, table.Float:
				if ranges[i] > 0 {
					diff := c.Value(a).Float() - c.Value(b).Float()
					if diff < 0 {
						diff = -diff
					}
					d += diff / ranges[i]
				}
			default:
				if c.Code(a) != c.Code(b) {
					d++
				}
			}
		}
		return d
	}

	unassigned := make(map[int]struct{}, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		unassigned[r] = struct{}{}
	}
	var clusters [][]int

	for len(unassigned) >= cfg.K {
		seed := lowestKey(unassigned)
		cluster := []int{seed}
		delete(unassigned, seed)
		ok := true
		for !clusterValid(cluster, checks, cfg) || len(cluster) < cfg.K {
			next := pickNext(cluster, unassigned, checks, cfg, dist)
			if next < 0 {
				ok = false
				break
			}
			cluster = append(cluster, next)
			delete(unassigned, next)
		}
		if !ok {
			// Return the partial cluster to the pool and stop seeding.
			for _, r := range cluster {
				unassigned[r] = struct{}{}
			}
			break
		}
		clusters = append(clusters, cluster)
	}

	if len(clusters) == 0 {
		return ClusterResult{}, fmt.Errorf("search: no cluster satisfying k = %d, p = %d could be formed", cfg.K, cfg.P)
	}

	// Disperse leftovers into the nearest cluster (by seed distance).
	dispersed := 0
	for r := range unassigned {
		best, bestD := 0, -1.0
		for ci, cluster := range clusters {
			d := dist(r, cluster[0])
			if bestD < 0 || d < bestD {
				best, bestD = ci, d
			}
		}
		clusters[best] = append(clusters[best], r)
		dispersed++
	}

	// Recode (shared with Mondrian's labeling).
	labels := make([][]string, len(cfg.QIs))
	for i := range labels {
		labels[i] = make([]string, t.NumRows())
	}
	sizes := make([]int, 0, len(clusters))
	for _, cluster := range clusters {
		sizes = append(sizes, len(cluster))
		for qi, col := range qiCols {
			label := rangeLabel(col, cluster)
			for _, r := range cluster {
				labels[qi][r] = label
			}
		}
	}
	masked := t
	for qi, attr := range cfg.QIs {
		row := 0
		lbl := labels[qi]
		masked, err = masked.MapColumn(attr, func(table.Value) (string, error) {
			s := lbl[row]
			row++
			return s, nil
		})
		if err != nil {
			return ClusterResult{}, err
		}
	}
	sort.Ints(sizes)
	return ClusterResult{Masked: masked, Clusters: len(clusters), GroupSizes: sizes, Dispersed: dispersed}, nil
}

// diversityCheck is one distinctness requirement: a labeling of rows
// whose distinct count within a cluster must reach P.
type diversityCheck struct {
	name  string
	label func(row int) string
}

// buildDiversityChecks assembles the plain per-attribute checks and the
// extended per-(attribute, level) checks.
func buildDiversityChecks(t *table.Table, cfg ClusterConfig, confCols []table.Column) ([]diversityCheck, error) {
	if cfg.P < 2 {
		return nil, nil
	}
	var checks []diversityCheck
	for i, cc := range confCols {
		col := cc
		checks = append(checks, diversityCheck{
			name:  cfg.Confidential[i],
			label: func(row int) string { return col.Value(row).Str() },
		})
	}
	confSet := make(map[string]bool, len(cfg.Confidential))
	for _, c := range cfg.Confidential {
		confSet[c] = true
	}
	for _, ext := range cfg.Extended {
		if ext.Hierarchy == nil {
			return nil, fmt.Errorf("search: extended constraint on %q has nil hierarchy", ext.Attr)
		}
		if !confSet[ext.Attr] {
			return nil, fmt.Errorf("search: extended constraint attribute %q is not confidential", ext.Attr)
		}
		col, err := t.Column(ext.Attr)
		if err != nil {
			return nil, err
		}
		if ext.MaxLevel < 1 || ext.MaxLevel > ext.Hierarchy.Height() {
			return nil, fmt.Errorf("search: extended constraint on %q: MaxLevel %d out of range [1,%d]",
				ext.Attr, ext.MaxLevel, ext.Hierarchy.Height())
		}
		for lvl := 1; lvl <= ext.MaxLevel; lvl++ {
			labels := make([]string, t.NumRows())
			for r := 0; r < t.NumRows(); r++ {
				l, err := ext.Hierarchy.Generalize(col.Value(r).Str(), lvl)
				if err != nil {
					return nil, fmt.Errorf("search: extended constraint on %q: %w", ext.Attr, err)
				}
				labels[r] = l
			}
			// Global feasibility at this level (Condition 1 analogue).
			seen := make(map[string]struct{})
			for _, l := range labels {
				seen[l] = struct{}{}
			}
			if len(seen) < cfg.P {
				return nil, fmt.Errorf("search: %q has only %d distinct level-%d categories; p = %d is infeasible",
					ext.Attr, len(seen), lvl, cfg.P)
			}
			lbl := labels
			checks = append(checks, diversityCheck{
				name:  fmt.Sprintf("%s@%d", ext.Attr, lvl),
				label: func(row int) string { return lbl[row] },
			})
		}
	}
	return checks, nil
}

// clusterValid reports whether the cluster meets the P constraint on
// every diversity check.
func clusterValid(cluster []int, checks []diversityCheck, cfg ClusterConfig) bool {
	if cfg.P < 2 {
		return true
	}
	for _, chk := range checks {
		seen := make(map[string]struct{}, len(cluster))
		for _, r := range cluster {
			seen[chk.label(r)] = struct{}{}
		}
		if len(seen) < cfg.P {
			return false
		}
	}
	return true
}

// pickNext selects the best unassigned record: if some diversity check
// is still short of P distinct labels, only records that add a new
// label for a deficient check are eligible; among eligible records the
// one nearest to the cluster seed wins. Returns -1 when no eligible
// record exists.
func pickNext(cluster []int, unassigned map[int]struct{}, checks []diversityCheck, cfg ClusterConfig, dist func(a, b int) float64) int {
	type deficiency struct {
		chk  diversityCheck
		seen map[string]struct{}
	}
	var deficient []deficiency
	if cfg.P >= 2 {
		for _, chk := range checks {
			seen := make(map[string]struct{}, len(cluster))
			for _, r := range cluster {
				seen[chk.label(r)] = struct{}{}
			}
			if len(seen) < cfg.P {
				deficient = append(deficient, deficiency{chk: chk, seen: seen})
			}
		}
	}
	seed := cluster[0]
	best, bestD := -1, -1.0
	for r := range unassigned {
		if len(deficient) > 0 {
			helps := false
			for _, d := range deficient {
				if _, dup := d.seen[d.chk.label(r)]; !dup {
					helps = true
					break
				}
			}
			if !helps {
				continue
			}
		}
		d := dist(seed, r)
		if best < 0 || d < bestD || (d == bestD && r < best) {
			best, bestD = r, d
		}
	}
	return best
}

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func lowestKey(set map[int]struct{}) int {
	best := -1
	for k := range set {
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

// String renders the cluster sizes compactly for reports.
func (r ClusterResult) String() string {
	parts := make([]string, len(r.GroupSizes))
	for i, s := range r.GroupSizes {
		parts[i] = fmt.Sprint(s)
	}
	return fmt.Sprintf("%d clusters (sizes %s, %d dispersed)", r.Clusters, strings.Join(parts, ","), r.Dispersed)
}
