package search

import (
	"fmt"
	"sort"

	"psk/internal/core"
	"psk/internal/generalize"
	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// IncognitoResult is the outcome of the subset-pruned search.
type IncognitoResult struct {
	// Minimal are the p-k-minimal nodes of the full QI lattice.
	Minimal []MinimalNode
	// Stats describes the work performed.
	Stats Stats
	// PrunedBySubsets counts full-lattice candidate nodes rejected
	// because a projection onto a smaller QI subset already failed.
	PrunedBySubsets int
	// SubsetsEvaluated is the number of QI subsets processed.
	SubsetsEvaluated int
	// Report is the telemetry snapshot taken when the search finished;
	// nil unless Config.Recorder was set.
	Report *obs.Report
	// StopReason records why the search ended; anything but StopDone
	// marks a valid best-so-far partial result (nodes in Minimal were
	// genuinely evaluated and satisfied; subsets or levels the budget
	// skipped may hide further solutions).
	StopReason StopReason
	// Frontier is the dominance-reduced set of satisfying full-lattice
	// nodes with their stats-native loss scores, in lattice walk order;
	// nil unless Config.Frontier.Enabled.
	Frontier []FrontierEntry
}

// Incognito implements the subset-lattice search of LeFevre, DeWitt and
// Ramakrishnan ("Incognito", SIGMOD 2005 — the paper's reference [12]),
// extended to p-sensitive k-anonymity. The key observation is the
// subset property: if a masked microdata satisfies the property with
// respect to a QI set S, it satisfies it with respect to every subset
// of S (subset groupings are coarser, so groups only grow, and growing
// a group can lose neither members nor distinct confidential values).
// Contrapositively, a node of the full lattice whose projection onto
// any smaller subset failed cannot succeed, and is pruned without
// materializing its masking.
//
// Subsets are processed in increasing size; within each subset's
// lattice, nodes are visited bottom-up and upward tagging skips the
// up-set of every satisfying node (as in AllMinimal). The final pass
// over the full QI set yields the complete p-k-minimal antichain.
func Incognito(im *table.Table, cfg Config) (IncognitoResult, error) {
	cfg.strategy = "incognito"
	m, err := cfg.validate()
	if err != nil {
		return IncognitoResult{}, err
	}
	var res IncognitoResult
	span := cfg.Recorder.StartSpan(obs.PhaseSearch, nil)
	defer span.End()

	bounds, err := searchBounds(im, cfg)
	if err != nil {
		return IncognitoResult{}, err
	}
	if cfg.Policy == nil && cfg.UseConditions && cfg.P >= 2 && !bounds.Feasible() {
		res.Stats.PrunedCondition1 = 1
		span.End()
		res.Report = cfg.Recorder.Snapshot()
		return res, nil
	}

	qis := cfg.QIs
	mAttrs := len(qis)
	if mAttrs > 16 {
		return IncognitoResult{}, fmt.Errorf("search: incognito supports at most 16 quasi-identifiers, got %d", mAttrs)
	}
	fullDims := m.Lattice().Dims()

	// One limiter spans every subset pass: the whole strategy call
	// draws on a single budget, and a trip in any subset stops the rest.
	lim := cfg.newLimiter()

	// satisfied[mask] is the set of satisfying node keys for the QI
	// subset encoded by mask (bit i = qis[i] present). Node keys are
	// over the subset's own coordinates, in ascending attribute order.
	satisfied := make(map[uint32]map[string]bool)

	// One generalized-column cache serves every subset's evaluator: it is
	// keyed by attribute name and hierarchy level, both of which are
	// independent of which QI subset a node ranges over, so the level-l
	// generalization of an attribute computed for one subset is reused by
	// every later subset that includes the attribute.
	var sharedCache *generalize.Cache
	if !cfg.DisableCache {
		sharedCache = m.NewCache(im)
	}

	// Enumerate masks grouped by popcount.
	masks := make([][]uint32, mAttrs+1)
	for mask := uint32(1); mask < 1<<mAttrs; mask++ {
		pc := popcount(mask)
		masks[pc] = append(masks[pc], mask)
	}

	// With the roll-up store on, frequency sets roll up across QI
	// subsets too — the classic Incognito formulation: the base-level
	// statistics over the full QI set are computed once, and every
	// subset lattice's bottom is a projection of them, so no subset
	// search ever re-scans rows. Projections chain by descending subset
	// size — each mask projects from a one-attribute-larger superset
	// with the fewest groups — so most merge a few hundred groups
	// instead of the full base-level group set.
	var projStats map[uint32]*table.GroupStats
	if sharedCache != nil && !cfg.DisableRollup {
		conf := cfg.effectiveConf()
		w := cfg.Workers
		if w < 1 {
			w = 1
		}
		gbStart := cfg.Recorder.Start()
		baseStats, err := im.GroupStats(qis, conf, w)
		cfg.Recorder.PhaseEnd(obs.PhaseGroupBy, gbStart)
		if err != nil {
			return IncognitoResult{}, err
		}
		fullMask := uint32(1<<mAttrs) - 1
		projStats = make(map[uint32]*table.GroupStats, fullMask)
		projStats[fullMask] = baseStats
		for size := mAttrs - 1; size >= 1; size-- {
			for _, mask := range masks[size] {
				var parent *table.GroupStats
				var parentMask uint32
				for i := 0; i < mAttrs; i++ {
					if mask&(1<<uint(i)) != 0 {
						continue
					}
					if ps := projStats[mask|1<<uint(i)]; parent == nil || ps.NumGroups() < parent.NumGroups() {
						parent, parentMask = ps, mask|1<<uint(i)
					}
				}
				// keep holds the positions of mask's attributes among the
				// parent's key columns (the parent mask's set bits,
				// ascending).
				keep := make([]int, 0, size)
				col := 0
				for i := 0; i < mAttrs; i++ {
					if parentMask&(1<<uint(i)) == 0 {
						continue
					}
					if mask&(1<<uint(i)) != 0 {
						keep = append(keep, col)
					}
					col++
				}
				projStart := cfg.Recorder.Start()
				proj, err := parent.Project(keep)
				cfg.Recorder.PhaseEnd(obs.PhaseRollup, projStart)
				if err != nil {
					return IncognitoResult{}, err
				}
				projStats[mask] = proj
			}
		}
	}

	// fullEval is the evaluator of the final full-QI pass, captured so
	// the frontier scan can reuse its memoized roll-up statistics.
	var fullEval *evaluator

subsets:
	for size := 1; size <= mAttrs; size++ {
		for _, mask := range masks[size] {
			if lim.tripped() {
				break subsets
			}
			attrs, dims := subsetOf(qis, fullDims, mask)
			subLat, err := lattice.New(dims)
			if err != nil {
				return IncognitoResult{}, err
			}
			// Progress denominator: each subset lattice adds its own node
			// count, so the /progress fraction tracks the whole multi-pass
			// strategy, not just the final full-QI lattice.
			cfg.Recorder.AddLatticeNodes(int64(subLat.Size()))
			subCfg := cfg
			subCfg.QIs = attrs
			subMasker, err := subCfg.validate()
			if err != nil {
				return IncognitoResult{}, err
			}

			subEval := newLimitedEvaluator(im, subMasker, sharedCache, subCfg, bounds, lim)
			// Only the final full-QI pass reads masked tables from the
			// outcomes; smaller subsets exist purely to prune, so their
			// stats-path evaluations stop at the verdict.
			subEval.noMaterialize = size < mAttrs
			if size == mAttrs {
				fullEval = subEval
			}
			if s := projStats[mask]; s != nil && subEval.rollups != nil {
				subEval.rollups.seed(make(lattice.Node, size), s)
			}

			sat := make(map[string]bool)
			satisfied[mask] = sat
			tagged := make(map[string]bool)
			var fullMinimal []MinimalNode

			for h := 0; h <= subLat.Height(); h++ {
				// Pre-filter the level serially: tagging only marks
				// strictly higher nodes and projection checks read only
				// smaller, already-completed subsets, so the survivors
				// are independent and can be evaluated concurrently.
				nodes := subLat.NodesAtHeight(h)
				var candidates []lattice.Node
				candIdx := make([]int, len(nodes))
				for i, node := range nodes {
					key := node.Key()
					if tagged[key] {
						sat[key] = true
						tagUp(subLat, node, tagged)
						candIdx[i] = -1
						continue
					}
					// Subset pruning: every (size-1)-projection must have
					// satisfied.
					if size > 1 && !projectionsSatisfied(mask, node, satisfied) {
						if size == mAttrs {
							res.PrunedBySubsets++
						}
						candIdx[i] = -1
						continue
					}
					candIdx[i] = len(candidates)
					candidates = append(candidates, node)
				}
				outs, err := subEval.evalAll(candidates, &res.Stats)
				if err != nil {
					return IncognitoResult{}, err
				}
				for i, node := range nodes {
					if candIdx[i] < 0 {
						continue
					}
					if o := outs[candIdx[i]]; o.ok {
						sat[node.Key()] = true
						if size == mAttrs {
							fullMinimal = append(fullMinimal, MinimalNode{
								Node: node, Masked: o.masked, Suppressed: o.suppressed,
							})
						}
						tagUp(subLat, node, tagged)
					}
				}
				if lim.tripped() {
					break
				}
			}
			res.SubsetsEvaluated++
			if size == mAttrs {
				sortMinimal(fullMinimal)
				res.Minimal = fullMinimal
			}
		}
	}
	if cfg.Frontier.Enabled {
		if fullEval == nil {
			// The budget tripped before the full-QI pass ran. Build an
			// evaluator over the full lattice anyway: it shares the tripped
			// limiter, so the scan no-ops deterministically, and a deadline
			// trip mid-strategy still yields a valid (possibly empty)
			// partial frontier.
			fullEval = newLimitedEvaluator(im, m, sharedCache, cfg, bounds, lim)
			if s := projStats[uint32(1<<mAttrs)-1]; s != nil && fullEval.rollups != nil {
				fullEval.rollups.seed(make(lattice.Node, mAttrs), s)
			}
		}
		// Incognito assumes monotonicity (the subset property), so the
		// frontier scan may cut dominated up-sets.
		if err := attachFrontier(fullEval, m.Lattice(), true, &res.Stats, &res.Frontier, &span); err != nil {
			return IncognitoResult{}, err
		}
	}
	res.StopReason = lim.stopReason()
	span.End()
	res.Report = cfg.Recorder.Snapshot()
	return res, nil
}

// subsetOf extracts the attributes and dims selected by mask, keeping
// attribute order.
func subsetOf(qis []string, dims []int, mask uint32) ([]string, []int) {
	var attrs []string
	var sub []int
	for i := range qis {
		if mask&(1<<uint(i)) != 0 {
			attrs = append(attrs, qis[i])
			sub = append(sub, dims[i])
		}
	}
	return attrs, sub
}

// projectionsSatisfied checks every (|S|-1)-subset projection of node.
func projectionsSatisfied(mask uint32, node lattice.Node, satisfied map[uint32]map[string]bool) bool {
	// Positions of set bits, ascending: coordinate j of node belongs to
	// attribute bits[j].
	var bits []uint
	for i := uint(0); i < 32; i++ {
		if mask&(1<<i) != 0 {
			bits = append(bits, i)
		}
	}
	for drop := range bits {
		subMask := mask &^ (1 << bits[drop])
		proj := make(lattice.Node, 0, len(bits)-1)
		for j := range bits {
			if j != drop {
				proj = append(proj, node[j])
			}
		}
		if !satisfied[subMask][proj.Key()] {
			return false
		}
	}
	return true
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// FindAnonymousIncognito mirrors FindAnonymous for the subset-pruned
// search: run Incognito and derive the failure reason.
func FindAnonymousIncognito(im *table.Table, cfg Config) (IncognitoResult, core.Reason, error) {
	res, err := Incognito(im, cfg)
	if err != nil {
		return IncognitoResult{}, core.Satisfied, err
	}
	switch {
	case len(res.Minimal) > 0:
		return res, core.Satisfied, nil
	case res.Stats.PrunedCondition1 > 0:
		return res, core.FailedCondition1, nil
	default:
		return res, core.NotPSensitive, nil
	}
}

// sortMinimal orders minimal nodes bottom-up for deterministic output.
func sortMinimal(nodes []MinimalNode) {
	sort.Slice(nodes, func(a, b int) bool {
		ha, hb := nodes[a].Node.Height(), nodes[b].Node.Height()
		if ha != hb {
			return ha < hb
		}
		return nodes[a].Node.Key() < nodes[b].Node.Key()
	})
}
