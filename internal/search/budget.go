package search

import (
	"context"
	"sync/atomic"
	"time"

	"psk/internal/obs"
)

// Budget bounds the resources one search may spend. The zero value is
// unlimited. Budgets compose with Config.Context: whichever limit trips
// first stops the search, which then returns a valid best-so-far
// partial result tagged with the StopReason instead of an error.
type Budget struct {
	// Deadline is the wall-clock allowance for the whole search,
	// measured from the strategy call. Zero means no deadline. (To bound
	// several searches under one clock, use Config.Context with
	// context.WithDeadline instead.)
	Deadline time.Duration
	// MaxNodes caps the number of lattice nodes the search may consume.
	// Nodes are charged in deterministic reduction order — speculative
	// parallel work past a hit is free, exactly as in Stats — so a
	// node-budget-stopped search returns byte-identical results at every
	// worker count. Zero means unlimited.
	MaxNodes int64
	// MaxCacheBytes caps the estimated memory (table.MemBytes) held by
	// the generalized-column cache. Checked between node evaluations;
	// the search stops before evaluating the next node once the cache
	// exceeds the cap. Zero means unlimited. Ignored with DisableCache
	// (there is no cache to measure).
	MaxCacheBytes int64
}

// active reports whether any limit is set.
func (b Budget) active() bool {
	return b.Deadline > 0 || b.MaxNodes > 0 || b.MaxCacheBytes > 0
}

// StopReason explains why a search ended. Every Result carries one;
// StopDone marks a complete search, anything else a valid best-so-far
// partial result.
type StopReason uint8

// Search termination causes. StopDone must stay the zero value: the
// limiter publishes the first tripped reason with a compare-and-swap
// against it.
const (
	// StopDone: the search ran to completion.
	StopDone StopReason = iota
	// StopDeadline: the Budget.Deadline wall-clock allowance elapsed.
	StopDeadline
	// StopNodeBudget: the Budget.MaxNodes allowance was consumed.
	StopNodeBudget
	// StopMemBudget: the generalized-column cache grew past
	// Budget.MaxCacheBytes.
	StopMemBudget
	// StopCancelled: Config.Context was cancelled (or hit its own
	// deadline).
	StopCancelled
)

// String names the stop reason for diagnostics and traces.
func (s StopReason) String() string {
	switch s {
	case StopDone:
		return "done"
	case StopDeadline:
		return "deadline"
	case StopNodeBudget:
		return "node-budget"
	case StopMemBudget:
		return "mem-budget"
	case StopCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Partial reports whether the search stopped before completing.
func (s StopReason) Partial() bool { return s != StopDone }

// limiter is the per-search enforcement of Config.Context and
// Config.Budget, shared by every evaluator of one strategy call
// (Samarati's height probes, Incognito's subset evaluators). A nil
// limiter — the common unbudgeted case — costs one pointer compare per
// node, preserving the engine's ≤2% disabled-overhead contract.
//
// Node accounting is deliberately split in two: checkpoint (called
// concurrently by workers before claiming a node) covers the
// time-dependent limits, while the node allowance is reserved and
// charged single-threaded at reduction time so that a fixed MaxNodes
// yields byte-identical results at every worker count.
type limiter struct {
	ctx      context.Context
	deadline time.Time // absolute; zero = no deadline
	maxNodes int64     // 0 = unlimited
	used     int64     // nodes consumed; only touched at reduction time
	maxBytes int64     // 0 = unlimited
	mem      func() int64
	rec      *obs.Recorder
	// reason holds the first tripped StopReason (StopDone = running).
	reason atomic.Int32
}

// newLimiter builds the limiter for one strategy call, or nil when
// neither a context nor a budget is configured.
func (c Config) newLimiter() *limiter {
	if c.Context == nil && !c.Budget.active() {
		return nil
	}
	l := &limiter{
		ctx:      c.Context,
		maxNodes: c.Budget.MaxNodes,
		maxBytes: c.Budget.MaxCacheBytes,
		rec:      c.Recorder,
	}
	if c.Budget.Deadline > 0 {
		l.deadline = time.Now().Add(c.Budget.Deadline)
	}
	// Publish the limits to the live-progress gauges up front, so a
	// /progress scrape early in the search already shows the budget's
	// denominator and deadline.
	l.rec.NoteBudgetNodes(0, l.maxNodes)
	l.rec.NoteDeadline(l.deadline)
	return l
}

// attachMem wires the cache-size probe once the evaluator knows its
// cache. Incognito's subset evaluators share one cache, so repeated
// attachment is harmless.
func (l *limiter) attachMem(mem func() int64) {
	if l != nil && l.maxBytes > 0 {
		l.mem = mem
	}
}

// trip publishes the first stop reason; later trips lose.
func (l *limiter) trip(r StopReason) {
	if l == nil {
		return
	}
	if l.reason.CompareAndSwap(int32(StopDone), int32(r)) {
		l.rec.BudgetStop()
	}
}

// tripped reports whether the search has been told to stop.
func (l *limiter) tripped() bool {
	return l != nil && l.reason.Load() != int32(StopDone)
}

// stopReason returns the recorded reason (StopDone while running or
// for a nil limiter).
func (l *limiter) stopReason() StopReason {
	if l == nil {
		return StopDone
	}
	return StopReason(l.reason.Load())
}

// checkpoint is the per-node gate workers pass before evaluating:
// false means stop claiming work. It covers the time-dependent limits
// (cancellation, deadline, cache bytes); the node budget is enforced
// separately via allowance/charge.
func (l *limiter) checkpoint() bool {
	if l == nil {
		return true
	}
	if l.reason.Load() != int32(StopDone) {
		return false
	}
	if l.ctx != nil {
		select {
		case <-l.ctx.Done():
			l.trip(StopCancelled)
			return false
		default:
		}
	}
	if !l.deadline.IsZero() && time.Now().After(l.deadline) {
		l.trip(StopDeadline)
		return false
	}
	if l.maxBytes > 0 && l.mem != nil {
		used := l.mem()
		l.rec.NoteMem(used, l.maxBytes)
		if used > l.maxBytes {
			l.trip(StopMemBudget)
			return false
		}
	}
	return true
}

// allowance caps a batch of n nodes to the remaining node budget.
// Called single-threaded before each engine run.
func (l *limiter) allowance(n int) int {
	if l == nil || l.maxNodes <= 0 {
		return n
	}
	rem := l.maxNodes - l.used
	if rem <= 0 {
		return 0
	}
	if rem < int64(n) {
		return int(rem)
	}
	return n
}

// charge consumes n nodes of the budget. Called single-threaded at
// reduction time with the count of outcomes the reduction consumed, so
// the spend is identical at every worker count.
func (l *limiter) charge(n int) {
	if l != nil {
		l.used += int64(n)
		l.rec.NoteBudgetNodes(l.used, l.maxNodes)
	}
}
