package search

import (
	"fmt"
	"testing"

	"psk/internal/table"
)

// The parallel engine promises results byte-identical to the serial
// scan at every worker count: same found nodes, same masked microdata,
// same stats totals. These tests exercise that promise across every
// strategy, worker counts beyond GOMAXPROCS, and both cache modes; run
// them with -race to also exercise the synchronization.

func fmtMasked(t *table.Table) string {
	if t == nil {
		return "<nil>"
	}
	return t.Format(-1)
}

func sameStats(a, b Stats) bool { return a == b }

func fmtMinimal(ms []MinimalNode) string {
	s := ""
	for _, m := range ms {
		s += fmt.Sprintf("<%s> sup=%d\n%s\n", m.Node.Key(), m.Suppressed, fmtMasked(m.Masked))
	}
	return s
}

// TestParallelMatchesSerial: for every strategy, every fixture
// configuration and several worker counts, the parallel run must be
// node-for-node identical to the Workers=1 run.
func TestParallelMatchesSerial(t *testing.T) {
	tbl := figure3Table(t)
	workerCounts := []int{2, 4, 8}
	for _, p := range []int{1, 2} {
		for ts := 0; ts <= 10; ts += 2 {
			for _, useCond := range []bool{true, false} {
				base := kOnlyConfig(t, ts)
				base.P = p
				base.UseConditions = useCond
				name := fmt.Sprintf("p=%d/TS=%d/cond=%v", p, ts, useCond)

				samS, err := Samarati(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				exS, err := Exhaustive(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				buS, err := BottomUp(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				amS, err := AllMinimal(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				incS, err := Incognito(tbl, base)
				if err != nil {
					t.Fatal(err)
				}

				for _, w := range workerCounts {
					cfg := base
					cfg.Workers = w

					samP, err := Samarati(tbl, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if samP.Found != samS.Found || !sameStats(samP.Stats, samS.Stats) ||
						samP.Suppressed != samS.Suppressed ||
						(samP.Found && !samP.Node.Equal(samS.Node)) ||
						fmtMasked(samP.Masked) != fmtMasked(samS.Masked) {
						t.Errorf("%s w=%d: Samarati diverged: %+v vs serial %+v", name, w, samP, samS)
					}

					exP, err := Exhaustive(tbl, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !sameStats(exP.Stats, exS.Stats) ||
						fmt.Sprint(exP.Satisfying) != fmt.Sprint(exS.Satisfying) ||
						fmtMinimal(exP.Minimal) != fmtMinimal(exS.Minimal) {
						t.Errorf("%s w=%d: Exhaustive diverged", name, w)
					}

					buP, err := BottomUp(tbl, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !sameStats(buP.Stats, buS.Stats) ||
						fmt.Sprint(buP.Satisfying) != fmt.Sprint(buS.Satisfying) ||
						fmtMinimal(buP.Minimal) != fmtMinimal(buS.Minimal) {
						t.Errorf("%s w=%d: BottomUp diverged", name, w)
					}

					amP, err := AllMinimal(tbl, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !sameStats(amP.Stats, amS.Stats) ||
						fmt.Sprint(amP.Satisfying) != fmt.Sprint(amS.Satisfying) ||
						fmtMinimal(amP.Minimal) != fmtMinimal(amS.Minimal) {
						t.Errorf("%s w=%d: AllMinimal diverged", name, w)
					}

					incP, err := Incognito(tbl, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !sameStats(incP.Stats, incS.Stats) ||
						incP.PrunedBySubsets != incS.PrunedBySubsets ||
						incP.SubsetsEvaluated != incS.SubsetsEvaluated ||
						fmtMinimal(incP.Minimal) != fmtMinimal(incS.Minimal) {
						t.Errorf("%s w=%d: Incognito diverged", name, w)
					}
				}
			}
		}
	}
}

// TestCacheAblationMatches: DisableCache restores the pre-engine
// evaluation path; found nodes, masked tables and stats must not move.
func TestCacheAblationMatches(t *testing.T) {
	tbl := figure3Table(t)
	for _, p := range []int{1, 2} {
		for ts := 0; ts <= 10; ts += 3 {
			cached := kOnlyConfig(t, ts)
			cached.P = p
			plain := cached
			plain.DisableCache = true

			a, err := Exhaustive(tbl, cached)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Exhaustive(tbl, plain)
			if err != nil {
				t.Fatal(err)
			}
			if !sameStats(a.Stats, b.Stats) || fmtMinimal(a.Minimal) != fmtMinimal(b.Minimal) {
				t.Errorf("p=%d TS=%d: cache changed the Exhaustive outcome", p, ts)
			}

			sa, err := Samarati(tbl, cached)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := Samarati(tbl, plain)
			if err != nil {
				t.Fatal(err)
			}
			if sa.Found != sb.Found || !sameStats(sa.Stats, sb.Stats) ||
				fmtMasked(sa.Masked) != fmtMasked(sb.Masked) {
				t.Errorf("p=%d TS=%d: cache changed the Samarati outcome", p, ts)
			}
		}
	}
}

// TestWorkerCountClamp covers the pool-size arithmetic.
func TestWorkerCountClamp(t *testing.T) {
	cases := []struct{ workers, nodes, want int }{
		{0, 10, 1}, {1, 10, 1}, {-3, 10, 1},
		{4, 10, 4}, {16, 3, 3}, {4, 0, 0}, {2, 1, 1},
	}
	for _, c := range cases {
		cfg := Config{Workers: c.workers}
		if got := cfg.workerCount(c.nodes); got != c.want {
			t.Errorf("workerCount(workers=%d, n=%d) = %d, want %d", c.workers, c.nodes, got, c.want)
		}
	}
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d, want >= 1", DefaultWorkers())
	}
}
