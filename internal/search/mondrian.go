package search

import (
	"fmt"
	"sort"
	"strings"

	"psk/internal/table"
)

// Mondrian implements greedy multidimensional partitioning (LeFevre et
// al. 2006) extended with a p-sensitivity side constraint. It is the
// alternative-paradigm baseline to full-domain generalization: instead
// of recoding whole attribute domains, it recursively splits the table
// at the median of one quasi-identifier, accepting a split only when
// both halves still satisfy k-anonymity and, when P >= 2, contain at
// least P distinct values of every confidential attribute.
//
// The output recodes each QI cell to the value range of its partition
// ("[20-39]", "{F,M}"), so the result is k-anonymous by construction
// (every partition is a QI-group of size >= k) and p-sensitive when the
// constraint was enabled.
type MondrianResult struct {
	// Masked is the recoded microdata.
	Masked *table.Table
	// Partitions is the number of leaf partitions (QI-groups).
	Partitions int
	// GroupSizes are the leaf sizes, in creation order.
	GroupSizes []int
}

// MondrianConfig parameterizes a Mondrian run. Hierarchies are not
// needed: ranges are derived from the data.
type MondrianConfig struct {
	// QIs are the quasi-identifier attributes considered for splitting.
	QIs []string
	// Confidential are the attributes protected by the P constraint.
	Confidential []string
	// K is the minimum partition size (>= 2).
	K int
	// P is the sensitivity constraint (1 = none; requires Confidential
	// when >= 2).
	P int
	// Strict selects strict partitioning (median split with no
	// overlap); the relaxed variant is not implemented.
	Strict bool
}

// Mondrian partitions the table and returns the recoded masked
// microdata. The input must be non-empty and satisfy the feasibility
// requirement n >= K (and, when P >= 2, have at least P distinct values
// per confidential attribute overall).
func Mondrian(t *table.Table, cfg MondrianConfig) (MondrianResult, error) {
	if cfg.K < 2 {
		return MondrianResult{}, fmt.Errorf("search: mondrian k must be >= 2, got %d", cfg.K)
	}
	if cfg.P < 1 {
		return MondrianResult{}, fmt.Errorf("search: mondrian p must be >= 1, got %d", cfg.P)
	}
	if cfg.P > cfg.K {
		return MondrianResult{}, fmt.Errorf("search: mondrian p (%d) must be <= k (%d)", cfg.P, cfg.K)
	}
	if cfg.P >= 2 && len(cfg.Confidential) == 0 {
		return MondrianResult{}, fmt.Errorf("search: mondrian p >= 2 requires confidential attributes")
	}
	if len(cfg.QIs) == 0 {
		return MondrianResult{}, fmt.Errorf("search: mondrian needs at least one quasi-identifier")
	}
	if t.NumRows() < cfg.K {
		return MondrianResult{}, fmt.Errorf("search: table has %d rows, fewer than k = %d", t.NumRows(), cfg.K)
	}
	cols := make([]table.Column, len(cfg.QIs))
	for i, q := range cfg.QIs {
		c, err := t.Column(q)
		if err != nil {
			return MondrianResult{}, err
		}
		cols[i] = c
	}
	confCols := make([]table.Column, len(cfg.Confidential))
	for i, s := range cfg.Confidential {
		c, err := t.Column(s)
		if err != nil {
			return MondrianResult{}, err
		}
		confCols[i] = c
	}

	all := make([]int, t.NumRows())
	for i := range all {
		all[i] = i
	}
	var leaves [][]int
	partition(t, cols, confCols, cfg, all, &leaves)

	// Recode: per leaf, per QI, compute the value range label.
	labels := make([][]string, len(cfg.QIs)) // per QI, per row
	for i := range labels {
		labels[i] = make([]string, t.NumRows())
	}
	sizes := make([]int, 0, len(leaves))
	for _, leaf := range leaves {
		sizes = append(sizes, len(leaf))
		for qi, col := range cols {
			label := rangeLabel(col, leaf)
			for _, r := range leaf {
				labels[qi][r] = label
			}
		}
	}
	masked := t
	var err error
	for qi, attr := range cfg.QIs {
		row := 0
		lbl := labels[qi]
		masked, err = masked.MapColumn(attr, func(table.Value) (string, error) {
			s := lbl[row]
			row++
			return s, nil
		})
		if err != nil {
			return MondrianResult{}, err
		}
	}
	return MondrianResult{Masked: masked, Partitions: len(leaves), GroupSizes: sizes}, nil
}

// partition recursively splits rows; leaves are appended to out.
func partition(t *table.Table, cols, confCols []table.Column, cfg MondrianConfig, rows []int, out *[][]int) {
	// Choose the dimension with the most distinct values among rows.
	bestDim, bestDistinct := -1, 1
	for d, col := range cols {
		seen := make(map[int]struct{}, len(rows))
		for _, r := range rows {
			seen[col.Code(r)] = struct{}{}
		}
		if len(seen) > bestDistinct {
			bestDim, bestDistinct = d, len(seen)
		}
	}
	if bestDim >= 0 {
		if lhs, rhs, ok := trySplit(cols[bestDim], confCols, cfg, rows); ok {
			partition(t, cols, confCols, cfg, lhs, out)
			partition(t, cols, confCols, cfg, rhs, out)
			return
		}
		// The widest dimension would not split; try the others.
		for d := range cols {
			if d == bestDim {
				continue
			}
			if lhs, rhs, ok := trySplit(cols[d], confCols, cfg, rows); ok {
				partition(t, cols, confCols, cfg, lhs, out)
				partition(t, cols, confCols, cfg, rhs, out)
				return
			}
		}
	}
	*out = append(*out, rows)
}

// trySplit splits rows at the median of the column and validates both
// halves against the k and p constraints.
func trySplit(col table.Column, confCols []table.Column, cfg MondrianConfig, rows []int) (lhs, rhs []int, ok bool) {
	sorted := make([]int, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(a, b int) bool {
		return col.Value(sorted[a]).Compare(col.Value(sorted[b])) < 0
	})
	// Strict median split: left takes values <= median value, but we cut
	// at the value boundary nearest the middle so equal values stay
	// together (strict Mondrian).
	mid := len(sorted) / 2
	cut := mid
	// Move the cut forward past equal values.
	for cut < len(sorted) && cut > 0 && col.Value(sorted[cut]).Equal(col.Value(sorted[cut-1])) {
		cut++
	}
	if cut == len(sorted) {
		// Try moving backwards instead.
		cut = mid
		for cut > 0 && col.Value(sorted[cut]).Equal(col.Value(sorted[cut-1])) {
			cut--
		}
		if cut == 0 {
			return nil, nil, false
		}
	}
	lhs, rhs = sorted[:cut], sorted[cut:]
	if len(lhs) < cfg.K || len(rhs) < cfg.K {
		return nil, nil, false
	}
	if cfg.P >= 2 {
		for _, cc := range confCols {
			if distinctIn(cc, lhs) < cfg.P || distinctIn(cc, rhs) < cfg.P {
				return nil, nil, false
			}
		}
	}
	return lhs, rhs, true
}

func distinctIn(col table.Column, rows []int) int {
	seen := make(map[int]struct{}, len(rows))
	for _, r := range rows {
		seen[col.Code(r)] = struct{}{}
	}
	return len(seen)
}

// rangeLabel renders the QI range of a partition: "[lo-hi]" for numeric
// columns, "{v1,v2}" for categorical ones, or the single value when the
// partition is constant in that attribute.
func rangeLabel(col table.Column, rows []int) string {
	switch col.Type() {
	case table.Int, table.Float:
		lo, hi := col.Value(rows[0]), col.Value(rows[0])
		for _, r := range rows[1:] {
			v := col.Value(r)
			if v.Compare(lo) < 0 {
				lo = v
			}
			if v.Compare(hi) > 0 {
				hi = v
			}
		}
		if lo.Equal(hi) {
			return lo.Str()
		}
		return "[" + lo.Str() + "-" + hi.Str() + "]"
	default:
		seen := make(map[string]struct{})
		var vals []string
		for _, r := range rows {
			s := col.Value(r).Str()
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				vals = append(vals, s)
			}
		}
		if len(vals) == 1 {
			return vals[0]
		}
		sort.Strings(vals)
		return "{" + strings.Join(vals, ",") + "}"
	}
}
