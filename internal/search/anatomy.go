package search

import (
	"fmt"
	"sort"

	"psk/internal/table"
)

// AnatomyResult is the two-table release produced by Anatomize: the
// quasi-identifier table keeps every QI value untouched and adds a
// GroupID; the sensitive table maps each GroupID to its sensitive
// values. An intruder who links an individual to a group via the exact
// QIs still faces at least p equally plausible sensitive values.
type AnatomyResult struct {
	// QIT is the quasi-identifier table: the original QI columns plus
	// GroupID, one row per input tuple.
	QIT *table.Table
	// ST is the sensitive table: GroupID, the sensitive attribute and a
	// Count column, one row per (group, value) pair.
	ST *table.Table
	// Groups is the number of groups formed.
	Groups int
}

// Anatomize implements the anatomy bucketization of Xiao and Tao (VLDB
// 2006), the contemporaneous alternative to generalization that the
// p-sensitive literature compares against: instead of coarsening the
// quasi-identifiers, the release is split into two tables joined only
// by a group id, and every group is built to contain at least p
// distinct sensitive values (each at most once in the core assignment,
// so the intruder's posterior is uniform over >= p values).
//
// The algorithm is the original two-phase one: group-creation pops one
// record from each of the p currently largest value-buckets until
// fewer than p buckets remain; residue-assignment places each leftover
// record into a group that does not yet contain its value. It succeeds
// exactly when no sensitive value occurs more than n/p times — the
// anatomy analogue of the paper's second necessary condition.
func Anatomize(t *table.Table, qis []string, sensitive string, p int) (AnatomyResult, error) {
	if p < 2 {
		return AnatomyResult{}, fmt.Errorf("search: anatomy p must be >= 2, got %d", p)
	}
	if len(qis) == 0 {
		return AnatomyResult{}, fmt.Errorf("search: anatomy needs at least one quasi-identifier")
	}
	for _, q := range qis {
		if _, err := t.Column(q); err != nil {
			return AnatomyResult{}, err
		}
	}
	col, err := t.Column(sensitive)
	if err != nil {
		return AnatomyResult{}, err
	}
	n := t.NumRows()
	if n < p {
		return AnatomyResult{}, fmt.Errorf("search: table has %d rows, fewer than p = %d", n, p)
	}

	// Bucketize by sensitive value.
	buckets := make(map[string][]int)
	for r := 0; r < n; r++ {
		v := col.Value(r).Str()
		buckets[v] = append(buckets[v], r)
	}
	if len(buckets) < p {
		return AnatomyResult{}, fmt.Errorf("search: sensitive attribute %q has %d distinct values, fewer than p = %d (necessary condition 1)",
			sensitive, len(buckets), p)
	}
	for v, rows := range buckets {
		if len(rows)*p > n {
			return AnatomyResult{}, fmt.Errorf("search: value %q occurs %d times, more than n/p = %d/%d (anatomy eligibility / necessary condition 2)",
				v, len(rows), n, p)
		}
	}

	// Group-creation phase.
	type bucket struct {
		value string
		rows  []int
	}
	pop := func() []bucket {
		// The p largest buckets, deterministic tie-break by value.
		var bs []bucket
		for v, rows := range buckets {
			if len(rows) > 0 {
				bs = append(bs, bucket{value: v, rows: rows})
			}
		}
		sort.Slice(bs, func(a, b int) bool {
			if len(bs[a].rows) != len(bs[b].rows) {
				return len(bs[a].rows) > len(bs[b].rows)
			}
			return bs[a].value < bs[b].value
		})
		return bs
	}

	groupOf := make([]int, n)
	var groupValues []map[string]bool
	for {
		bs := pop()
		if len(bs) < p {
			break
		}
		gid := len(groupValues)
		values := make(map[string]bool, p)
		for i := 0; i < p; i++ {
			rows := buckets[bs[i].value]
			r := rows[len(rows)-1]
			buckets[bs[i].value] = rows[:len(rows)-1]
			groupOf[r] = gid
			values[bs[i].value] = true
		}
		groupValues = append(groupValues, values)
	}
	if len(groupValues) == 0 {
		return AnatomyResult{}, fmt.Errorf("search: anatomy could not form any group (n = %d, p = %d)", n, p)
	}

	// Residue-assignment phase: each leftover row joins a group lacking
	// its value (and marks it, so two leftovers with the same value go
	// to different groups).
	for v, rows := range buckets {
		for _, r := range rows {
			placed := false
			for gid, values := range groupValues {
				if !values[v] {
					groupOf[r] = gid
					values[v] = true
					placed = true
					break
				}
			}
			if !placed {
				// Under the eligibility condition every residue value has
				// at most one leftover record and more groups than
				// leftovers exist; this is a defensive guard.
				return AnatomyResult{}, fmt.Errorf("search: anatomy residue for value %q could not be placed", v)
			}
		}
	}

	// Build QIT: QI columns + GroupID.
	qiOnly, err := t.Select(qis...)
	if err != nil {
		return AnatomyResult{}, err
	}
	fields := append([]table.Field{}, qiOnly.Schema().Fields...)
	fields = append(fields, table.Field{Name: "GroupID", Type: table.Int})
	qitSchema, err := table.NewSchema(fields...)
	if err != nil {
		return AnatomyResult{}, err
	}
	qb, err := table.NewBuilder(qitSchema)
	if err != nil {
		return AnatomyResult{}, err
	}
	for r := 0; r < n; r++ {
		row, err := qiOnly.Row(r)
		if err != nil {
			return AnatomyResult{}, err
		}
		qb.Append(append(row, table.IV(int64(groupOf[r])))...)
	}
	qit, err := qb.Build()
	if err != nil {
		return AnatomyResult{}, err
	}

	// Build ST: GroupID, value, count.
	counts := make(map[int]map[string]int)
	for r := 0; r < n; r++ {
		gid := groupOf[r]
		if counts[gid] == nil {
			counts[gid] = make(map[string]int)
		}
		counts[gid][col.Value(r).Str()]++
	}
	stSchema, err := table.NewSchema(
		table.Field{Name: "GroupID", Type: table.Int},
		table.Field{Name: sensitive, Type: table.String},
		table.Field{Name: "Count", Type: table.Int},
	)
	if err != nil {
		return AnatomyResult{}, err
	}
	sb, err := table.NewBuilder(stSchema)
	if err != nil {
		return AnatomyResult{}, err
	}
	for gid := 0; gid < len(groupValues); gid++ {
		vals := make([]string, 0, len(counts[gid]))
		for v := range counts[gid] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			sb.Append(table.IV(int64(gid)), table.SV(v), table.IV(int64(counts[gid][v])))
		}
	}
	st, err := sb.Build()
	if err != nil {
		return AnatomyResult{}, err
	}
	return AnatomyResult{QIT: qit, ST: st, Groups: len(groupValues)}, nil
}
