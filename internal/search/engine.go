package search

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"psk/internal/core"
	"psk/internal/generalize"
	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// evaluator is the shared node-evaluation engine behind every lattice
// search strategy: it runs the per-node property check (generalize,
// suppress within budget, evaluate the policy) either serially
// or on a bounded worker pool, and reduces per-node outcomes in
// deterministic node order so that found nodes, masked tables and stats
// never depend on goroutine scheduling.
//
// All shared state is immutable during evaluation: the source table and
// hierarchies are read-only, the necessary-condition bounds were hoisted
// out of the loop once per search (Theorems 1-2 make them valid for
// every derived masking, so workers share them without locks), and the
// generalized-column cache synchronizes internally with per-entry
// sync.Once. Each node evaluation accumulates its own Stats delta;
// merging happens single-threaded at reduction time.
type evaluator struct {
	im     *table.Table
	m      *generalize.Masker
	cache  *generalize.Cache
	qis    []string
	cfg    Config
	bounds core.Bounds
	// policy is the per-node verdict (cfg.effectivePolicy): the custom
	// Config.Policy, or the built-in equivalent of the legacy P/K
	// parameters. conf is the attribute list its statistics carry
	// histograms for (cfg.effectiveConf).
	policy core.Policy
	conf   []string
	// rollups, when non-nil, holds each evaluated node's pre-suppression
	// group statistics so ancestor nodes are checked by merging groups
	// (rollup.go) instead of re-scanning rows. It is per-search state:
	// Incognito's subset searches each get their own store (their nodes
	// index different QI subsets) while sharing one column cache.
	rollups *rollupStore
	// noMaterialize tells the stats path the caller never reads
	// outcome.masked (Incognito's non-final subsets only consume the
	// verdict), so satisfying nodes skip building the masked table.
	noMaterialize bool
	// keepStats tells both evaluation paths to retain the
	// post-suppression group statistics and the policy verdict of
	// satisfying nodes on the outcome (outcome.post / outcome.res). The
	// frontier scan sets it so nodes can be scored from O(groups)
	// statistics without materializing anything.
	keepStats bool
	// rec and tracer are the telemetry sinks (Config.Recorder/Tracer);
	// both are nil-safe, so the hot path calls them unguarded and the
	// disabled configuration costs one compare per call site.
	rec    *obs.Recorder
	tracer *obs.Tracer
	// lim enforces Config.Context and Config.Budget (budget.go). Nil —
	// the unbudgeted default — costs one compare per node. Strategies
	// that build several evaluators (Samarati's probes share one;
	// Incognito builds one per subset) share a single limiter so the
	// whole strategy call spends one budget.
	lim *limiter
}

// newEvaluator builds the engine for one search. m's quasi-identifiers
// must match cfg.QIs (Incognito passes subset maskers with a matching
// subset config). cache may be shared across evaluators of the same
// source table; pass nil to build a fresh one.
func newEvaluator(im *table.Table, m *generalize.Masker, cache *generalize.Cache, cfg Config, bounds core.Bounds) *evaluator {
	return newLimitedEvaluator(im, m, cache, cfg, bounds, cfg.newLimiter())
}

// newLimitedEvaluator is newEvaluator with an explicit limiter, for
// strategies that build several evaluators per call and need them to
// draw on one shared budget (Incognito's subset passes).
func newLimitedEvaluator(im *table.Table, m *generalize.Masker, cache *generalize.Cache, cfg Config, bounds core.Bounds, lim *limiter) *evaluator {
	if cache == nil && !cfg.DisableCache {
		if cfg.Cache != nil && cfg.Cache.Source() == im {
			cache = cfg.Cache
		} else {
			cache = m.NewCache(im)
		}
	}
	e := &evaluator{
		im: im, m: m, cache: cache, qis: cfg.QIs, cfg: cfg, bounds: bounds,
		policy: core.Observe(cfg.effectivePolicy(bounds), cfg.Recorder),
		conf:   cfg.effectiveConf(),
		rec:    cfg.Recorder, tracer: cfg.Tracer,
		lim: lim,
	}
	if cache != nil {
		cache.Observe(cfg.Recorder)
		e.lim.attachMem(cache.Bytes)
	}
	if cache != nil && !cfg.DisableRollup {
		e.rollups = newRollupStore()
	}
	return e
}

// outcome is the result of evaluating one lattice node.
type outcome struct {
	// evaluated distinguishes real results from nodes skipped by early
	// cancellation (only ever nodes ordered after the first hit).
	evaluated  bool
	ok         bool
	masked     *table.Table
	suppressed int
	stats      Stats
	err        error
	// post and res are only retained when the evaluator's keepStats flag
	// is set and the node satisfied: the post-suppression group
	// statistics the verdict ran on, and the verdict itself. GroupStats
	// returns plain heap data (its arena scratch is released internally),
	// so retaining it here is safe.
	post *table.GroupStats
	res  core.Result
}

// evalNode runs the property check at one node. The bounds are reused
// across nodes per Theorems 1 and 2. With a roll-up store the verdict
// comes from group statistics (evalNodeStats); the row-scanning path
// below remains for the cache and roll-up ablations.
func (e *evaluator) evalNode(node lattice.Node) outcome {
	if e.rollups != nil {
		return e.evalNodeStats(node)
	}
	var o outcome
	o.evaluated = true

	var g *table.Table
	var err error
	genStart := e.rec.Start()
	if e.cache != nil {
		g, err = e.cache.ApplyQIs(e.qis, node)
	} else {
		g, err = e.m.Apply(e.im, node)
	}
	e.rec.PhaseEnd(obs.PhaseGeneralize, genStart)
	if err != nil {
		o.err = err
		return o
	}

	o.stats.NodesEvaluated++

	// Suppression step: count violators, enforce the threshold, remove.
	var mm *table.Table
	var suppressed int
	supStart := e.rec.Start()
	if e.cache != nil {
		var within bool
		mm, suppressed, within, err = e.m.SuppressWithin(g, e.cfg.K, e.cfg.MaxSuppress)
		e.rec.PhaseEnd(obs.PhaseSuppress, supStart)
		if err != nil {
			o.err = err
			return o
		}
		if !within {
			return o
		}
	} else {
		// Pre-engine two-pass path, kept for the cache ablation.
		violating, verr := e.m.ViolatingTuples(g, e.cfg.K)
		if verr != nil {
			e.rec.PhaseEnd(obs.PhaseSuppress, supStart)
			o.err = verr
			return o
		}
		if violating > e.cfg.MaxSuppress {
			e.rec.PhaseEnd(obs.PhaseSuppress, supStart)
			return o
		}
		mm, suppressed, err = e.m.Suppress(g, e.cfg.K)
		e.rec.PhaseEnd(obs.PhaseSuppress, supStart)
		if err != nil {
			o.err = err
			return o
		}
	}
	o.stats.SuppressedRows += suppressed
	// Note: when the budget admits suppressing every tuple, the empty
	// release vacuously satisfies the property; the paper's Table 4
	// relies on this (TS = 10 makes the bottom node 3-minimal).

	gbStart := e.rec.Start()
	ps, err := mm.GroupStats(e.qis, e.conf, 1)
	e.rec.PhaseEnd(obs.PhaseGroupBy, gbStart)
	if err != nil {
		o.err = err
		return o
	}
	polStart := e.rec.Start()
	res, err := e.policy.Evaluate(core.StatsView{Stats: ps, Conf: e.conf})
	e.rec.PhaseEnd(obs.PhasePolicy, polStart)
	if err != nil {
		o.err = err
		return o
	}
	if e.verdict(res, &o) {
		o.ok, o.masked, o.suppressed = true, mm, suppressed
		if e.keepStats {
			o.post, o.res = ps, res
		}
	}
	return o
}

// verdict folds a policy result into the outcome's stats counters and
// reports whether the node satisfies the policy. The counter mapping
// mirrors Algorithm 3: bounds rejections are prunes that skipped the
// detailed scan; everything else — satisfied or a real violation —
// paid for one.
func (e *evaluator) verdict(res core.Result, o *outcome) bool {
	switch res.Reason {
	case core.FailedCondition1:
		o.stats.PrunedCondition1++
	case core.FailedCondition2:
		o.stats.PrunedCondition2++
	default:
		o.stats.GroupScans++
	}
	return res.Satisfied
}

// evalNodeStats is evalNode on group statistics: the node's
// pre-suppression stats come from the roll-up store (rows are scanned
// at most once per search, at the lattice bottom), suppression is
// replayed on the statistics, and the verdict functions of core run on
// histograms. The masked table is only materialized for satisfying
// nodes, through the identical ApplyQIs + SuppressWithin pipeline the
// direct path uses, so results — tables, suppression counts and Stats
// deltas — are byte-identical to the direct path, branch for branch.
func (e *evaluator) evalNodeStats(node lattice.Node) outcome {
	var o outcome
	o.evaluated = true

	s, err := e.statsFor(node)
	if err != nil {
		o.err = err
		return o
	}

	o.stats.NodesEvaluated++

	// Suppression step on the statistics: SuppressWithin's verdict is
	// "violating tuples <= budget", and its removal drops exactly the
	// sub-k groups.
	supStart := e.rec.Start()
	violating := s.TuplesBelow(e.cfg.K)
	if violating > e.cfg.MaxSuppress {
		e.rec.PhaseEnd(obs.PhaseSuppress, supStart)
		return o
	}
	post := s.SuppressBelow(e.cfg.K)
	e.rec.PhaseEnd(obs.PhaseSuppress, supStart)
	o.stats.SuppressedRows += violating
	accept := func() {
		if e.noMaterialize {
			o.ok, o.suppressed = true, violating
			return
		}
		e.materialize(node, &o)
	}

	polStart := e.rec.Start()
	res, err := e.policy.Evaluate(core.StatsView{Stats: post, Conf: e.conf})
	e.rec.PhaseEnd(obs.PhasePolicy, polStart)
	if err != nil {
		o.err = err
		return o
	}
	if e.verdict(res, &o) {
		accept()
		if o.ok && e.keepStats {
			o.post, o.res = post, res
		}
	}
	return o
}

// materialize builds the masked table for a node the statistics proved
// satisfying, through the same pipeline the direct path runs.
func (e *evaluator) materialize(node lattice.Node, o *outcome) {
	defer e.rec.PhaseEnd(obs.PhaseMaterialize, e.rec.Start())
	g, err := e.cache.ApplyQIs(e.qis, node)
	if err != nil {
		o.err = err
		return
	}
	mm, suppressed, within, err := e.m.SuppressWithin(g, e.cfg.K, e.cfg.MaxSuppress)
	if err != nil {
		o.err = err
		return
	}
	if !within {
		// Unreachable when the statistics are exact; surfacing it as an
		// error beats silently disagreeing with the direct path.
		o.err = fmt.Errorf("search: rollup stats admitted node %v but suppression exceeds the budget", node)
		return
	}
	o.ok, o.masked, o.suppressed = true, mm, suppressed
}

// evalTimed wraps evalNode with the per-node telemetry: one verdict +
// latency sample on the recorder, busy time on the worker's row, and
// one trace event. Nodes that error before counting as evaluated (an
// apply failure) produce neither, keeping the trace event count equal
// to Stats.NodesEvaluated. With both sinks nil the wrapper is a tail
// call — no clock reads.
func (e *evaluator) evalTimed(node lattice.Node, worker int) outcome {
	if e.rec == nil && e.tracer == nil {
		return e.evalNode(node)
	}
	start := time.Now()
	o := e.evalNode(node)
	d := time.Since(start)
	if o.stats.NodesEvaluated == 0 {
		return o
	}
	v := nodeVerdict(o)
	e.rec.NodeEvaluated(v, d)
	e.rec.WorkerBusy(worker, d)
	e.rec.AddSuppressedRows(int64(o.stats.SuppressedRows))
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Node:       append([]int(nil), node...),
			Height:     node.Height(),
			Verdict:    v.String(),
			DurationNs: d.Nanoseconds(),
			Worker:     worker,
		})
	}
	return o
}

// evalSafe wraps evalTimed with panic recovery: a panicking node
// evaluation (a buggy custom Policy, hostile data tripping an internal
// invariant) becomes an error outcome for that node instead of killing
// the process, and the reduction surfaces it exactly like any other
// node error. The recover here pairs with statsFor's, which must
// additionally publish the node's roll-up entry so no other worker
// blocks on it forever.
func (e *evaluator) evalSafe(node lattice.Node, worker int) (o outcome) {
	defer func() {
		if r := recover(); r != nil {
			e.rec.PanicRecovered()
			o = outcome{evaluated: true, err: fmt.Errorf("search: node %v: panic recovered: %v", node, r)}
		}
	}()
	return e.evalTimed(node, worker)
}

// nodeVerdict classifies an outcome from its stats delta: each
// evaluated node increments exactly one of the prune/scan counters, so
// the delta plus the ok/err flags fully determine the verdict.
func nodeVerdict(o outcome) obs.Verdict {
	switch {
	case o.err != nil:
		return obs.VerdictError
	case o.ok:
		return obs.VerdictSatisfied
	case o.stats.PrunedCondition1 > 0:
		return obs.VerdictPrunedCondition1
	case o.stats.PrunedCondition2 > 0:
		return obs.VerdictPrunedCondition2
	case o.stats.GroupScans > 0:
		return obs.VerdictViolated
	default:
		return obs.VerdictOverBudget
	}
}

// run evaluates the nodes, serially or on the worker pool. With
// cancelEarly, nodes ordered after an already-observed hit (or error)
// are skipped: the reduction only ever consumes outcomes up to the
// first hit in node order, and every node before it is guaranteed to be
// evaluated, so cancellation can never change the reduced result — it
// only avoids wasted work.
//
// The limiter bounds the batch two ways. The node budget truncates it
// up front to the prefix nodes[:limit] — a property of node order
// alone, so serial and parallel runs evaluate the same prefix. The
// time-dependent limits (context, deadline, cache bytes) gate each
// claim via checkpoint; once tripped, no further node starts, leaving
// arbitrary gaps the reductions already tolerate. run returns limit so
// the reduction can tell budget truncation from completion.
func (e *evaluator) run(nodes []lattice.Node, cancelEarly bool) ([]outcome, int) {
	n := len(nodes)
	outs := make([]outcome, n)
	limit := e.lim.allowance(n)
	w := e.cfg.workerCount(limit)
	e.rec.SetPoolSize(w)
	if w <= 1 {
		e.labeled(0, func() {
			for i := 0; i < limit; i++ {
				if !e.lim.checkpoint() {
					break
				}
				outs[i] = e.evalSafe(nodes[i], 0)
				if cancelEarly && (outs[i].ok || outs[i].err != nil) {
					break
				}
			}
		})
		return outs, limit
	}
	var next int64
	barrier := int64(limit) // lowest index seen to hit or fail hard
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			e.labeled(worker, func() {
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= limit {
						return
					}
					if !e.lim.checkpoint() {
						return
					}
					if cancelEarly && int64(i) > atomic.LoadInt64(&barrier) {
						continue
					}
					o := e.evalSafe(nodes[i], worker)
					outs[i] = o
					if cancelEarly && (o.ok || o.err != nil) {
						for {
							cur := atomic.LoadInt64(&barrier)
							if int64(i) >= cur || atomic.CompareAndSwapInt64(&barrier, cur, int64(i)) {
								break
							}
						}
					}
				}
			})
		}(g)
	}
	wg.Wait()
	return outs, limit
}

// labeled runs fn under pprof goroutine labels identifying the
// strategy, pipeline phase and worker id, so CPU and goroutine profiles
// scraped from the live /debug/pprof endpoints (or -cpuprofile files)
// attribute samples to (psk_strategy, psk_phase, psk_worker). Labels
// cost one small allocation per engine batch — amortized over the
// batch's node evaluations — and are restored on return.
func (e *evaluator) labeled(worker int, fn func()) {
	strat := e.cfg.strategy
	if strat == "" {
		strat = "direct"
	}
	pprof.Do(context.Background(), pprof.Labels(
		"psk_strategy", strat,
		"psk_phase", "node-eval",
		"psk_worker", strconv.Itoa(worker),
	), func(context.Context) { fn() })
}

// firstHit returns the index and outcome of the first satisfying node
// in node order, or index -1. Stats are merged exactly as the serial
// scan would: deltas accumulate in node order up to and including the
// first hit (or error); speculative work past it is discarded, so
// totals are identical at every worker count. The node budget is
// charged with the same consumed count, making budget spend equally
// scheduling-independent; a truncated batch that found no hit trips
// StopNodeBudget (a hit inside the prefix means the truncation never
// mattered).
func (e *evaluator) firstHit(nodes []lattice.Node, stats *Stats) (int, outcome, error) {
	outs, limit := e.run(nodes, true)
	consumed := 0
	for i := range outs {
		o := outs[i]
		if !o.evaluated {
			continue
		}
		stats.Merge(o.stats)
		consumed++
		if o.err != nil {
			e.lim.charge(consumed)
			return -1, outcome{}, o.err
		}
		if o.ok {
			e.lim.charge(consumed)
			if e.rec != nil {
				e.rec.NoteBest(nodes[i].String(), nodes[i].Height())
			}
			return i, o, nil
		}
	}
	e.lim.charge(consumed)
	if limit < len(nodes) && !e.lim.tripped() {
		e.lim.trip(StopNodeBudget)
	}
	return -1, outcome{}, nil
}

// evalAll evaluates every node and merges all stats deltas in node
// order, returning the outcomes (or the first error in node order).
// Nodes a tripped limiter skipped stay !evaluated in the returned
// slice; callers treat them as non-satisfying, which keeps partial
// results valid (everything reported satisfying really was evaluated).
func (e *evaluator) evalAll(nodes []lattice.Node, stats *Stats) ([]outcome, error) {
	outs, limit := e.run(nodes, false)
	consumed := 0
	noted := false
	for i := range outs {
		if !outs[i].evaluated {
			continue
		}
		stats.Merge(outs[i].stats)
		consumed++
		if outs[i].err != nil {
			e.lim.charge(consumed)
			return nil, outs[i].err
		}
		// Best-so-far gauge: the first satisfying node in reduction order
		// (levels ascend, so it is a lowest-height hit). Noted here, on the
		// single-threaded reduction, so the gauge is scheduling-independent.
		if outs[i].ok && !noted && e.rec != nil {
			e.rec.NoteBest(nodes[i].String(), nodes[i].Height())
			noted = true
		}
	}
	e.lim.charge(consumed)
	if limit < len(nodes) && !e.lim.tripped() {
		e.lim.trip(StopNodeBudget)
	}
	return outs, nil
}
