package search

import (
	"strings"
	"testing"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/hierarchy"
	"psk/internal/table"
)

func TestGreedyClusterBasic(t *testing.T) {
	tbl := figure3Table(t)
	res, err := GreedyCluster(tbl, ClusterConfig{
		QIs: []string{"Sex", "ZipCode"}, Confidential: []string{"Illness"},
		K: 3, P: 2,
	})
	if err != nil {
		t.Fatalf("GreedyCluster: %v", err)
	}
	if res.Masked.NumRows() != tbl.NumRows() {
		t.Errorf("rows = %d, want %d (clustering never suppresses)", res.Masked.NumRows(), tbl.NumRows())
	}
	chk, err := core.Check(res.Masked, []string{"Sex", "ZipCode"}, []string{"Illness"}, 2, 3)
	if err != nil || !chk.Satisfied {
		t.Errorf("output fails 2-sensitive 3-anonymity: %+v, %v", chk, err)
	}
	total := 0
	for _, s := range res.GroupSizes {
		if s < 3 {
			t.Errorf("cluster size %d < k", s)
		}
		total += s
	}
	if total != tbl.NumRows() {
		t.Errorf("cluster sizes sum to %d", total)
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestGreedyClusterKOnly(t *testing.T) {
	tbl := figure3Table(t)
	res, err := GreedyCluster(tbl, ClusterConfig{
		QIs: []string{"Sex", "ZipCode"}, K: 2, P: 1,
	})
	if err != nil {
		t.Fatalf("GreedyCluster: %v", err)
	}
	ok, err := core.IsKAnonymous(res.Masked, []string{"Sex", "ZipCode"}, 2)
	if err != nil || !ok {
		t.Errorf("output not 2-anonymous: %v", err)
	}
	if res.Clusters < 2 {
		t.Errorf("clusters = %d; a 10-row table at k=2 should split", res.Clusters)
	}
}

func TestGreedyClusterInfeasibleP(t *testing.T) {
	// Confidential attribute with one distinct value: Condition 1 fires.
	sch := table.MustSchema(
		table.Field{Name: "Q", Type: table.String},
		table.Field{Name: "S", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"a", "x"}, {"b", "x"}, {"c", "x"}, {"d", "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GreedyCluster(tbl, ClusterConfig{
		QIs: []string{"Q"}, Confidential: []string{"S"}, K: 2, P: 2,
	}); err == nil || !strings.Contains(err.Error(), "necessary condition 1") {
		t.Errorf("err = %v, want condition-1 failure", err)
	}
}

func TestGreedyClusterValidation(t *testing.T) {
	tbl := figure3Table(t)
	cases := []ClusterConfig{
		{QIs: []string{"Sex"}, K: 1, P: 1},
		{QIs: []string{"Sex"}, K: 3, P: 0},
		{QIs: []string{"Sex"}, K: 3, P: 4},
		{QIs: nil, K: 3, P: 1},
		{QIs: []string{"Sex"}, K: 3, P: 2},
		{QIs: []string{"Missing"}, K: 3, P: 1},
		{QIs: []string{"Sex"}, Confidential: []string{"Missing"}, K: 3, P: 2},
		{QIs: []string{"Sex"}, K: 99, P: 1},
	}
	for i, cfg := range cases {
		if _, err := GreedyCluster(tbl, cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

// TestGreedyClusterDispersal: a table where the final records cannot
// seed a valid cluster must disperse them instead of failing.
func TestGreedyClusterDispersal(t *testing.T) {
	// 5 rows, k=2: two clusters of 2 plus one leftover dispersed.
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "S", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"20", "a"}, {"21", "b"}, {"60", "a"}, {"61", "b"}, {"90", "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyCluster(tbl, ClusterConfig{
		QIs: []string{"Age"}, Confidential: []string{"S"}, K: 2, P: 2,
	})
	if err != nil {
		t.Fatalf("GreedyCluster: %v", err)
	}
	if res.Dispersed != 1 {
		t.Errorf("dispersed = %d, want 1", res.Dispersed)
	}
	chk, err := core.Check(res.Masked, []string{"Age"}, []string{"S"}, 2, 2)
	if err != nil || !chk.Satisfied {
		t.Errorf("post-dispersal property: %+v, %v", chk, err)
	}
}

// TestGreedyClusterOnAdult: property holds on a realistic workload and
// information loss beats full-domain generalization.
func TestGreedyClusterOnAdult(t *testing.T) {
	src, err := dataset.Generate(5000, 2006)
	if err != nil {
		t.Fatal(err)
	}
	im, err := src.Sample(600, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyCluster(im, ClusterConfig{
		QIs: dataset.QIs(), Confidential: dataset.Confidential(), K: 4, P: 2,
	})
	if err != nil {
		t.Fatalf("GreedyCluster: %v", err)
	}
	chk, err := core.Check(res.Masked, dataset.QIs(), dataset.Confidential(), 2, 4)
	if err != nil || !chk.Satisfied {
		t.Errorf("Adult clustering property: %+v, %v", chk, err)
	}
	if res.Clusters < 10 {
		t.Errorf("clusters = %d; expected a fine partition on 600 rows", res.Clusters)
	}
}

// TestAllMinimalMatchesExhaustive: predictive tagging must return
// exactly the minimal antichain the assumption-free Exhaustive finds,
// while evaluating no more nodes.
func TestAllMinimalMatchesExhaustive(t *testing.T) {
	tbl := figure3Table(t)
	for _, p := range []int{1, 2} {
		for ts := 0; ts <= 10; ts += 2 {
			cfg := kOnlyConfig(t, ts)
			cfg.P = p
			ex, err := Exhaustive(tbl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			am, err := AllMinimal(tbl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			exSet := make(map[string]bool)
			for _, m := range ex.Minimal {
				exSet[m.Node.Key()] = true
			}
			amSet := make(map[string]bool)
			for _, m := range am.Minimal {
				amSet[m.Node.Key()] = true
			}
			if len(exSet) != len(amSet) {
				t.Errorf("p=%d TS=%d: exhaustive %v vs tagged %v", p, ts, exSet, amSet)
				continue
			}
			for k := range exSet {
				if !amSet[k] {
					t.Errorf("p=%d TS=%d: missing minimal <%s>", p, ts, k)
				}
			}
			if am.Stats.NodesEvaluated > ex.Stats.NodesEvaluated {
				t.Errorf("p=%d TS=%d: tagging evaluated more nodes (%d > %d)",
					p, ts, am.Stats.NodesEvaluated, ex.Stats.NodesEvaluated)
			}
		}
	}
}

// TestAllMinimalSkipsUpSet: once the bottom satisfies, only one node is
// evaluated.
func TestAllMinimalSkipsUpSet(t *testing.T) {
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"M", "41076", "Flu"}, {"M", "41076", "Cold"}, {"M", "41076", "Flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := kOnlyConfig(t, 0)
	res, err := AllMinimal(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Minimal) != 1 || res.Minimal[0].Node.Height() != 0 {
		t.Fatalf("minimal = %v", res.Minimal)
	}
	if res.Stats.NodesEvaluated != 1 {
		t.Errorf("evaluated %d nodes, want 1 (bottom satisfies, rest tagged)", res.Stats.NodesEvaluated)
	}
	// All 6 nodes satisfy.
	if len(res.Satisfying) != 6 {
		t.Errorf("satisfying = %d, want 6", len(res.Satisfying))
	}
}

func TestAllMinimalInfeasible(t *testing.T) {
	tbl := figure3Table(t)
	cfg := kOnlyConfig(t, 10)
	cfg.P = 4
	cfg.K = 4
	res, err := AllMinimal(tbl, cfg)
	if err != nil || len(res.Minimal) != 0 || res.Stats.PrunedCondition1 != 1 {
		t.Errorf("infeasible: %+v, %v", res.Stats, err)
	}
}

// illnessTaxonomy groups diseases into categories for extended tests.
func illnessTaxonomy(t *testing.T) hierarchy.Hierarchy {
	t.Helper()
	h, err := hierarchy.NewTree("Illness", map[string][]string{
		"Colon Cancer":   {"Cancer"},
		"Lung Cancer":    {"Cancer"},
		"Stomach Cancer": {"Cancer"},
		"Flu":            {"Infection"},
		"HIV":            {"Infection"},
		"Asthma":         {"Chronic"},
		"Diabetes":       {"Chronic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func similarityData(t *testing.T) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"20", "Colon Cancer"}, {"21", "Lung Cancer"}, {"22", "Stomach Cancer"},
		{"30", "Flu"}, {"31", "Diabetes"}, {"32", "Colon Cancer"},
		{"40", "HIV"}, {"41", "Flu"}, {"42", "Asthma"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestGreedyClusterExtendedConstraint: without the constraint the
// nearest-neighbour clusters put the three cancers together; with it,
// every cluster mixes categories.
func TestGreedyClusterExtendedConstraint(t *testing.T) {
	tbl := similarityData(t)
	tax := illnessTaxonomy(t)
	base := ClusterConfig{
		QIs: []string{"Age"}, Confidential: []string{"Illness"}, K: 3, P: 2,
	}

	plain, err := GreedyCluster(tbl, base)
	if err != nil {
		t.Fatalf("plain cluster: %v", err)
	}
	plainExt, err := core.CheckExtended(plain.Masked, []string{"Age"}, "Illness", 2, 3,
		core.ExtendedConfig{Hierarchy: tax, MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plainExt {
		t.Skip("plain clustering happened to satisfy the extended property; constraint untestable on this data")
	}

	ext := base
	ext.Extended = []ExtendedConstraint{{Attr: "Illness", Hierarchy: tax, MaxLevel: 1}}
	res, err := GreedyCluster(tbl, ext)
	if err != nil {
		t.Fatalf("extended cluster: %v", err)
	}
	ok, err := core.CheckExtended(res.Masked, []string{"Age"}, "Illness", 2, 3,
		core.ExtendedConfig{Hierarchy: tax, MaxLevel: 1})
	if err != nil || !ok {
		t.Errorf("extended clustering output fails the extended property: %v", err)
	}
	// Plain p-sensitivity also holds.
	chk, err := core.Check(res.Masked, []string{"Age"}, []string{"Illness"}, 2, 3)
	if err != nil || !chk.Satisfied {
		t.Errorf("plain property: %+v, %v", chk, err)
	}
}

func TestGreedyClusterExtendedValidation(t *testing.T) {
	tbl := similarityData(t)
	tax := illnessTaxonomy(t)
	base := ClusterConfig{QIs: []string{"Age"}, Confidential: []string{"Illness"}, K: 3, P: 2}

	bad := base
	bad.Extended = []ExtendedConstraint{{Attr: "Illness", Hierarchy: nil, MaxLevel: 1}}
	if _, err := GreedyCluster(tbl, bad); err == nil {
		t.Error("nil hierarchy accepted")
	}
	bad = base
	bad.Extended = []ExtendedConstraint{{Attr: "Other", Hierarchy: tax, MaxLevel: 1}}
	if _, err := GreedyCluster(tbl, bad); err == nil {
		t.Error("non-confidential extended attribute accepted")
	}
	bad = base
	bad.Extended = []ExtendedConstraint{{Attr: "Illness", Hierarchy: tax, MaxLevel: 5}}
	if _, err := GreedyCluster(tbl, bad); err == nil {
		t.Error("out-of-range MaxLevel accepted")
	}
	bad = base
	bad.Extended = []ExtendedConstraint{{Attr: "Illness", Hierarchy: tax, MaxLevel: 0}}
	if _, err := GreedyCluster(tbl, bad); err == nil {
		t.Error("MaxLevel 0 accepted (would be a no-op)")
	}
	// Infeasible: p = 4 but only 3 categories.
	bad = base
	bad.K = 4
	bad.P = 4
	bad.Extended = []ExtendedConstraint{{Attr: "Illness", Hierarchy: tax, MaxLevel: 1}}
	if _, err := GreedyCluster(tbl, bad); err == nil {
		t.Error("infeasible category count accepted")
	}
}
