package search

import (
	"io"
	"strings"
	"testing"

	"psk/internal/stream"
	"psk/internal/table"
)

// FuzzApplyDelta drives an incremental session with a hostile delta
// file: arbitrary bytes are decoded as JSONL batches and fed through
// the same Validate/Apply/Republish loop the streaming CLI runs. The
// session must never panic — malformed lines, schema mismatches,
// unknown or doubled retire ids and oversized rows must all surface as
// errors — and the live-row accounting must stay exact across every
// accepted batch. Seed corpus under testdata/fuzz.
func FuzzApplyDelta(f *testing.F) {
	f.Add(`{"append":[["M","41076","Flu"]],"retire":[0]}` + "\n")
	f.Add(`{"columns":["Sex","ZipCode","Illness"],"append":[["F","43103","Cold"]]}` + "\n" + `{"retire":[1,2]}` + "\n")
	f.Add(`{"retire":[99]}` + "\n")
	f.Add(`{"retire":[0]}` + "\n" + `{"retire":[0]}` + "\n")
	f.Add(`{"append":[["M","41076"]]}` + "\n")
	f.Add(`{"columns":["Sex","Zip","Illness"]}` + "\n")
	f.Add("not json\n\n[3]\n")
	f.Add(`{"retire":[-1]}` + "\n")
	f.Fuzz(func(t *testing.T, text string) {
		s := fuzzSession(t)
		cols := s.Schema().Names()
		live := s.NumLive()
		rows := s.NumRows()
		r := stream.NewReader(strings.NewReader(text))
		for batches := 0; batches < 8; batches++ {
			b, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed line: a clean parse error ends the stream
			}
			if b.Validate(cols) != nil {
				continue
			}
			if err := s.Apply(b.Append, b.Retire); err != nil {
				// A rejected batch may be half-absorbed (Apply stops at the
				// failing row); re-read the counters instead of predicting
				// them, then check the session still answers or reports its
				// poisoning honestly.
				live, rows = s.NumLive(), s.NumRows()
				if _, err := s.Republish(); err == nil {
					if got := s.NumLive(); got != live {
						t.Fatalf("republish moved NumLive %d -> %d", live, got)
					}
				}
				continue
			}
			live += len(b.Append) - len(b.Retire)
			rows += len(b.Append)
			if s.NumLive() != live || s.NumRows() != rows {
				t.Fatalf("accounting drift: live %d want %d, rows %d want %d", s.NumLive(), live, s.NumRows(), rows)
			}
			if _, err := s.Republish(); err != nil {
				t.Fatalf("republish after accepted batch: %v", err)
			}
		}
	})
}

// fuzzSession opens a small fixed session (Figure 3's shape) the fuzz
// deltas run against.
func fuzzSession(t *testing.T) *Incremental {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"M", "41076", "Flu"}, {"F", "41099", "Cold"}, {"M", "41099", "Asthma"},
		{"M", "41076", "Cold"}, {"F", "43102", "Flu"}, {"M", "43102", "Asthma"},
		{"M", "43102", "Cold"}, {"F", "43103", "Flu"}, {"M", "48202", "Asthma"},
		{"M", "48201", "Flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenIncremental(tbl, incrConfig(t, 3, 2, 4, 1), StrategySamarati)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
