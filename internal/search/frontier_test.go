package search

import (
	"math"
	"reflect"
	"testing"

	"psk/internal/dataset"
	"psk/internal/loss"
	"psk/internal/obs"
	"psk/internal/table"
)

// frontierAdult returns a generated Adult-shaped sample and a
// p-sensitive configuration with frontier mode enabled.
func frontierAdult(t testing.TB, n int) (*table.Table, Config) {
	t.Helper()
	src, err := dataset.Generate(n, 2006)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   10,
		UseConditions: true,
		Frontier:      FrontierConfig{Enabled: true},
	}
	return src, cfg
}

// frontierStrategies adapts every strategy to "run and hand back the
// frontier".
func frontierStrategies() []struct {
	name string
	run  func(*table.Table, Config) ([]FrontierEntry, error)
} {
	return []struct {
		name string
		run  func(*table.Table, Config) ([]FrontierEntry, error)
	}{
		{"samarati", func(im *table.Table, cfg Config) ([]FrontierEntry, error) {
			r, err := Samarati(im, cfg)
			return r.Frontier, err
		}},
		{"exhaustive", func(im *table.Table, cfg Config) ([]FrontierEntry, error) {
			r, err := Exhaustive(im, cfg)
			return r.Frontier, err
		}},
		{"bottomup", func(im *table.Table, cfg Config) ([]FrontierEntry, error) {
			r, err := BottomUp(im, cfg)
			return r.Frontier, err
		}},
		{"allminimal", func(im *table.Table, cfg Config) ([]FrontierEntry, error) {
			r, err := AllMinimal(im, cfg)
			return r.Frontier, err
		}},
		{"incognito", func(im *table.Table, cfg Config) ([]FrontierEntry, error) {
			r, err := Incognito(im, cfg)
			return r.Frontier, err
		}},
	}
}

// withinOneULP reports whether two floats are bit-identical or one
// representable value apart.
func withinOneULP(a, b float64) bool {
	if a == b {
		return true
	}
	if math.Signbit(a) != math.Signbit(b) {
		return false
	}
	ua, ub := math.Float64bits(a), math.Float64bits(b)
	if ua > ub {
		ua, ub = ub, ua
	}
	return ub-ua <= 1
}

// TestFrontierDifferentialOracle pins the stats-native loss scores on
// every frontier entry, for all five strategies at workers 1 and 4,
// against the table-based oracle run on the materialized release:
// integers must match exactly, floats within one ulp (in practice both
// paths sum the same terms in the same order and agree bit-for-bit).
func TestFrontierDifferentialOracle(t *testing.T) {
	im, base := frontierAdult(t, 800)
	m, err := base.validate()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range frontierStrategies() {
		for _, workers := range []int{1, 4} {
			cfg := base
			cfg.Workers = workers
			fr, err := s.run(im, cfg)
			if err != nil {
				t.Fatalf("%s/w%d: %v", s.name, workers, err)
			}
			if len(fr) == 0 {
				t.Fatalf("%s/w%d: empty frontier", s.name, workers)
			}
			for _, e := range fr {
				g, err := m.Apply(im, e.Node)
				if err != nil {
					t.Fatal(err)
				}
				mm, suppressed, within, err := m.SuppressWithin(g, cfg.K, cfg.MaxSuppress)
				if err != nil || !within {
					t.Fatalf("%s/w%d node %v: suppress: %v within=%v", s.name, workers, e.Node, err, within)
				}
				if suppressed != e.Suppressed {
					t.Errorf("%s/w%d node %v: suppressed %d, oracle %d", s.name, workers, e.Node, e.Suppressed, suppressed)
				}
				want, err := loss.Measure(loss.Input{
					Initial: im, Masked: mm, QIs: cfg.QIs,
					Node: e.Node, Lattice: m.Lattice(), K: cfg.K,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := e.Loss
				if got.Discernibility != want.Discernibility {
					t.Errorf("%s/w%d node %v: DM %d, oracle %d", s.name, workers, e.Node, got.Discernibility, want.Discernibility)
				}
				floats := []struct {
					name     string
					got, want float64
				}{
					{"height", got.HeightRatio, want.HeightRatio},
					{"precision", got.Precision, want.Precision},
					{"avg-group", got.AvgGroupRatio, want.AvgGroupRatio},
					{"suppression", got.SuppressionRatio, want.SuppressionRatio},
					{"entropy", got.EntropyLossBits, want.EntropyLossBits},
				}
				for _, f := range floats {
					if !withinOneULP(f.got, f.want) {
						t.Errorf("%s/w%d node %v: %s = %x, oracle %x",
							s.name, workers, e.Node, f.name,
							math.Float64bits(f.got), math.Float64bits(f.want))
					}
				}
			}
		}
	}
}

// TestFrontierProperties pins the frontier invariants on every
// strategy: every member carries a satisfied verdict, no rank-0 member
// beats another, entries come in lattice walk order, and the serial and
// 4-worker frontiers are deeply identical (bit-for-bit floats).
func TestFrontierProperties(t *testing.T) {
	im, base := frontierAdult(t, 800)
	objs := DefaultObjectives()
	var reference []FrontierEntry
	for _, s := range frontierStrategies() {
		serial := base
		serial.Workers = 1
		fr, err := s.run(im, serial)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if len(fr) == 0 {
			t.Fatalf("%s: empty frontier", s.name)
		}
		for i := range fr {
			if !fr[i].Verdict.Satisfied {
				t.Errorf("%s: member %v carries unsatisfied verdict", s.name, fr[i].Node)
			}
			if fr[i].Rank != 0 {
				t.Errorf("%s: member %v has rank %d with default MaxRank 0", s.name, fr[i].Node, fr[i].Rank)
			}
			if fr[i].MinGroup < base.K && fr[i].Groups > 0 {
				t.Errorf("%s: member %v min group %d < k", s.name, fr[i].Node, fr[i].MinGroup)
			}
		}
		for i := range fr {
			for j := range fr {
				if i == j {
					continue
				}
				if beats(&fr[i], &fr[j], objs, i < j) {
					t.Errorf("%s: frontier member %v beats member %v", s.name, fr[i].Node, fr[j].Node)
				}
			}
		}
		parallel := base
		parallel.Workers = 4
		fr4, err := s.run(im, parallel)
		if err != nil {
			t.Fatalf("%s/w4: %v", s.name, err)
		}
		if !reflect.DeepEqual(fr, fr4) {
			t.Errorf("%s: serial and 4-worker frontiers differ", s.name)
		}
		// Every strategy reduces the same satisfying set: the up-set cut
		// removes only beaten entries (each cut node is beaten by its cut
		// root, and beats is transitive), so the rank-0 frontier is
		// identical whether the scan cut (Samarati/AllMinimal/Incognito)
		// or scored everything (Exhaustive/BottomUp).
		if reference == nil {
			reference = fr
		} else if !reflect.DeepEqual(reference, fr) {
			t.Errorf("%s: frontier differs from %s's", s.name, frontierStrategies()[0].name)
		}
	}
}

// TestFrontierCounters pins the telemetry of a frontier pass: scored =
// members + dominated, members = len(frontier), and the monotone scan
// actually skips cut nodes.
func TestFrontierCounters(t *testing.T) {
	im, cfg := frontierAdult(t, 800)
	cfg.Recorder = obs.NewRecorder()
	r, err := AllMinimal(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := r.Report.Frontier
	if fs.Members != int64(len(r.Frontier)) {
		t.Errorf("members = %d, frontier has %d", fs.Members, len(r.Frontier))
	}
	if fs.Scored != fs.Members+fs.Dominated {
		t.Errorf("scored %d != members %d + dominated %d", fs.Scored, fs.Members, fs.Dominated)
	}
	if fs.Scored == 0 {
		t.Error("no nodes scored")
	}
	counters := r.Report.DeterministicCounters()
	for _, k := range []string{"frontier.scored", "frontier.members", "frontier.dominated", "frontier.cut_skipped"} {
		if _, ok := counters[k]; !ok {
			t.Errorf("DeterministicCounters missing %q", k)
		}
	}
}

// TestFrontierAblations: the frontier must be identical with the cache
// and roll-up ablations (the row path retains stats too), and across
// MaxRank growth the rank-0 prefix set must be preserved.
func TestFrontierAblations(t *testing.T) {
	im, cfg := frontierAdult(t, 300)
	ref, err := AllMinimal(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		mut  func(*Config)
	}{
		{"no-rollup", func(c *Config) { c.DisableRollup = true }},
		{"no-cache", func(c *Config) { c.DisableCache = true }},
	} {
		c := cfg
		mode.mut(&c)
		r, err := AllMinimal(im, c)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if !reflect.DeepEqual(ref.Frontier, r.Frontier) {
			t.Errorf("%s: frontier differs from the engine path", mode.name)
		}
	}

	ranked := cfg
	ranked.Frontier.MaxRank = 2
	r, err := AllMinimal(im, ranked)
	if err != nil {
		t.Fatal(err)
	}
	var rank0 []FrontierEntry
	for _, e := range r.Frontier {
		if e.Rank == 0 {
			rank0 = append(rank0, e)
		}
		if e.Rank < 0 || e.Rank > 2 {
			t.Errorf("entry %v has rank %d outside [0, 2]", e.Node, e.Rank)
		}
	}
	if !reflect.DeepEqual(rank0, ref.Frontier) {
		t.Errorf("rank-0 slice of MaxRank=2 frontier differs from the Pareto set")
	}
	if len(r.Frontier) < len(ref.Frontier) {
		t.Errorf("MaxRank=2 frontier smaller than the Pareto set")
	}
}

// TestFrontierObjectiveValidation: bad frontier configurations must be
// rejected up front.
func TestFrontierObjectiveValidation(t *testing.T) {
	im, cfg := frontierAdult(t, 100)
	bad := cfg
	bad.Frontier.Objectives = []Objective{Objective(250)}
	if _, err := Samarati(im, bad); err == nil {
		t.Error("unknown objective accepted")
	}
	neg := cfg
	neg.Frontier.MaxRank = -1
	if _, err := Samarati(im, neg); err == nil {
		t.Error("negative MaxRank accepted")
	}
	if Objective(250).String() == "" || ObjMargin.String() != "margin" {
		t.Errorf("objective names: %q, %q", Objective(250).String(), ObjMargin.String())
	}
}

// TestFrontierDisabled: with the zero-value FrontierConfig no frontier
// is computed and results stay nil.
func TestFrontierDisabled(t *testing.T) {
	im, cfg := frontierAdult(t, 100)
	cfg.Frontier = FrontierConfig{}
	r, err := Samarati(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Frontier != nil {
		t.Errorf("frontier computed while disabled: %d entries", len(r.Frontier))
	}
}

// TestFrontierBudgetPartial: a node budget that trips mid-walk still
// yields a valid (possibly empty) frontier prefix and tags the stop
// reason, at every worker count.
func TestFrontierBudgetPartial(t *testing.T) {
	im, cfg := frontierAdult(t, 300)
	cfg.Budget.MaxNodes = 25
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		r, err := AllMinimal(im, c)
		if err != nil {
			t.Fatalf("w%d: %v", workers, err)
		}
		if r.StopReason != StopNodeBudget {
			t.Errorf("w%d: stop reason %v, want node budget", workers, r.StopReason)
		}
		objs := DefaultObjectives()
		for i := range r.Frontier {
			for j := range r.Frontier {
				if i != j && beats(&r.Frontier[i], &r.Frontier[j], objs, i < j) {
					t.Errorf("w%d: partial frontier member %v beats %v", workers, r.Frontier[i].Node, r.Frontier[j].Node)
				}
			}
		}
	}
}
