package search

import (
	"testing"

	"psk/internal/core"
	"psk/internal/hierarchy"
	"psk/internal/table"
)

// figure3Table reproduces the 10-row Sex/ZipCode microdata of Figure 3,
// here with a confidential Illness column added so p-sensitive searches
// have something to protect.
func figure3Table(t testing.TB) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"M", "41076", "Flu"},
		{"F", "41099", "Cold"},
		{"M", "41099", "Asthma"},
		{"M", "41076", "Cold"},
		{"F", "43102", "Flu"},
		{"M", "43102", "Asthma"},
		{"M", "43102", "Cold"},
		{"F", "43103", "Flu"},
		{"M", "48202", "Asthma"},
		{"M", "48201", "Flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// figure3Hierarchies builds the Figure 3 hierarchy set: Sex -> Person,
// ZipCode -> 431** -> *.
func figure3Hierarchies(t testing.TB) *hierarchy.Set {
	t.Helper()
	zip, err := hierarchy.NewPrefixSteps("ZipCode", 5, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	sex := hierarchy.NewFlat("Sex")
	sex.Top = "Person"
	return hierarchy.MustSet(zip, sex)
}

func kOnlyConfig(t testing.TB, ts int) Config {
	return Config{
		QIs:           []string{"Sex", "ZipCode"},
		Confidential:  []string{"Illness"},
		Hierarchies:   figure3Hierarchies(t),
		K:             3,
		P:             1,
		MaxSuppress:   ts,
		UseConditions: true,
	}
}

// TestTable4MinimalGeneralizations reproduces the paper's Table 4: the
// 3-minimal generalizations of the Figure 3 microdata for every
// suppression threshold TS from 0 to 10.
func TestTable4MinimalGeneralizations(t *testing.T) {
	tbl := figure3Table(t)
	want := map[int][]string{
		0:  {"0,2"},
		1:  {"0,2"},
		2:  {"0,2", "1,1"},
		3:  {"0,2", "1,1"},
		4:  {"0,2", "1,1"},
		5:  {"0,2", "1,1"},
		6:  {"0,2", "1,1"},
		7:  {"1,0", "0,1"},
		8:  {"1,0", "0,1"},
		9:  {"1,0", "0,1"},
		10: {"0,0"},
	}
	for ts := 0; ts <= 10; ts++ {
		res, err := Exhaustive(tbl, kOnlyConfig(t, ts))
		if err != nil {
			t.Fatalf("Exhaustive(TS=%d): %v", ts, err)
		}
		got := make(map[string]bool)
		for _, m := range res.Minimal {
			got[m.Node.Key()] = true
		}
		if len(got) != len(want[ts]) {
			t.Errorf("TS=%d: minimal nodes %v, want %v", ts, keys(got), want[ts])
			continue
		}
		for _, w := range want[ts] {
			if !got[w] {
				t.Errorf("TS=%d: missing minimal node <%s>; got %v", ts, w, keys(got))
			}
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSamaratiFindsMinimalHeight: for each TS, Samarati must return a
// node whose height equals the minimal height found by Exhaustive.
func TestSamaratiFindsMinimalHeight(t *testing.T) {
	tbl := figure3Table(t)
	for ts := 0; ts <= 10; ts++ {
		cfg := kOnlyConfig(t, ts)
		ex, err := Exhaustive(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sam, err := Samarati(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !sam.Found {
			t.Fatalf("TS=%d: Samarati found nothing", ts)
		}
		minHeight := ex.Minimal[0].Node.Height()
		for _, m := range ex.Minimal {
			if h := m.Node.Height(); h < minHeight {
				minHeight = h
			}
		}
		if sam.Node.Height() != minHeight {
			t.Errorf("TS=%d: Samarati height %d, exhaustive minimal height %d (node %v)",
				ts, sam.Node.Height(), minHeight, sam.Node)
		}
		// The masked output must be 3-anonymous and within budget.
		ok, err := core.IsKAnonymous(sam.Masked, cfg.QIs, cfg.K)
		if err != nil || !ok {
			t.Errorf("TS=%d: Samarati output not k-anonymous (%v)", ts, err)
		}
		if sam.Suppressed > ts {
			t.Errorf("TS=%d: suppressed %d > budget", ts, sam.Suppressed)
		}
	}
}

// TestBottomUpMatchesExhaustiveMinimalHeight: BottomUp returns exactly
// the minimal-height satisfying nodes.
func TestBottomUpMatchesExhaustive(t *testing.T) {
	tbl := figure3Table(t)
	for ts := 0; ts <= 10; ts++ {
		cfg := kOnlyConfig(t, ts)
		bu, err := BottomUp(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := Exhaustive(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(bu.Minimal) == 0 {
			t.Fatalf("TS=%d: BottomUp found nothing", ts)
		}
		h := bu.Minimal[0].Node.Height()
		// Every BottomUp hit must be among Exhaustive's minimal nodes of
		// that height.
		exMin := make(map[string]bool)
		minH := -1
		for _, m := range ex.Minimal {
			exMin[m.Node.Key()] = true
			if minH == -1 || m.Node.Height() < minH {
				minH = m.Node.Height()
			}
		}
		if h != minH {
			t.Errorf("TS=%d: BottomUp height %d, want %d", ts, h, minH)
		}
		for _, m := range bu.Minimal {
			if m.Node.Height() == minH && !exMin[m.Node.Key()] {
				t.Errorf("TS=%d: BottomUp hit %v not minimal per Exhaustive", ts, m.Node)
			}
		}
	}
}

// TestPSensitiveSearch: with p = 2 the search must reject nodes whose
// groups have constant Illness and land on a (possibly) higher node
// than the k-only search.
func TestPSensitiveSearch(t *testing.T) {
	tbl := figure3Table(t)
	cfg := kOnlyConfig(t, 4)
	cfg.P = 2
	res, err := Samarati(tbl, cfg)
	if err != nil {
		t.Fatalf("Samarati: %v", err)
	}
	if !res.Found {
		t.Fatal("p-sensitive search found nothing")
	}
	r, err := core.Check(res.Masked, cfg.QIs, cfg.Confidential, cfg.P, cfg.K)
	if err != nil || !r.Satisfied {
		t.Errorf("result not 2-sensitive 3-anonymous: %+v, %v", r, err)
	}
	// k-only minimal height for TS=4 is 2 (<0,2> or <1,1>); p=2 height
	// must be >= that.
	kOnly, err := Samarati(tbl, kOnlyConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node.Height() < kOnly.Node.Height() {
		t.Errorf("p=2 node %v below k-only node %v", res.Node, kOnly.Node)
	}
}

// TestCondition1ShortCircuit: an infeasible p must be rejected before
// the lattice is touched.
func TestCondition1ShortCircuit(t *testing.T) {
	tbl := figure3Table(t)
	cfg := kOnlyConfig(t, 10)
	cfg.P = 4 // Illness has only 3 distinct values
	cfg.K = 4
	res, err := Samarati(tbl, cfg)
	if err != nil {
		t.Fatalf("Samarati: %v", err)
	}
	if res.Found {
		t.Error("infeasible p reported as found")
	}
	if res.Stats.PrunedCondition1 != 1 {
		t.Errorf("PrunedCondition1 = %d, want 1", res.Stats.PrunedCondition1)
	}
	if res.Stats.NodesEvaluated != 0 {
		t.Errorf("NodesEvaluated = %d, want 0 (condition 1 fires first)", res.Stats.NodesEvaluated)
	}

	_, reason, err := FindAnonymous(tbl, cfg)
	if err != nil || reason != core.FailedCondition1 {
		t.Errorf("FindAnonymous reason = %v, %v; want FailedCondition1", reason, err)
	}

	ex, err := Exhaustive(tbl, cfg)
	if err != nil || len(ex.Minimal) != 0 || ex.Stats.PrunedCondition1 != 1 {
		t.Errorf("Exhaustive infeasible: %+v, %v", ex.Stats, err)
	}
	bu, err := BottomUp(tbl, cfg)
	if err != nil || len(bu.Minimal) != 0 || bu.Stats.PrunedCondition1 != 1 {
		t.Errorf("BottomUp infeasible: %+v, %v", bu.Stats, err)
	}
}

func TestFindAnonymousSatisfied(t *testing.T) {
	tbl := figure3Table(t)
	res, reason, err := FindAnonymous(tbl, kOnlyConfig(t, 10))
	if err != nil || reason != core.Satisfied || !res.Found {
		t.Errorf("FindAnonymous = %v, %v, %v", res.Found, reason, err)
	}
}

// TestUnsatisfiableWithinBudget: k larger than the table admits with a
// zero suppression budget at every node.
func TestUnsatisfiableWithinBudget(t *testing.T) {
	tbl := figure3Table(t)
	cfg := kOnlyConfig(t, 0)
	cfg.K = 11 // more than the number of rows
	res, err := Samarati(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found a node for k=11 on a 10-row table")
	}
	_, reason, err := FindAnonymous(tbl, cfg)
	if err != nil || reason != core.NotPSensitive {
		t.Errorf("reason = %v, %v", reason, err)
	}
}

func TestConfigValidation(t *testing.T) {
	tbl := figure3Table(t)
	base := kOnlyConfig(t, 0)

	bad := base
	bad.K = 1
	if _, err := Samarati(tbl, bad); err == nil {
		t.Error("k=1 accepted")
	}
	bad = base
	bad.P = 0
	if _, err := Samarati(tbl, bad); err == nil {
		t.Error("p=0 accepted")
	}
	bad = base
	bad.P = 5
	bad.K = 3
	if _, err := Samarati(tbl, bad); err == nil {
		t.Error("p>k accepted")
	}
	bad = base
	bad.P = 2
	bad.Confidential = nil
	if _, err := Samarati(tbl, bad); err == nil {
		t.Error("p>=2 without confidential attributes accepted")
	}
	bad = base
	bad.MaxSuppress = -1
	if _, err := Samarati(tbl, bad); err == nil {
		t.Error("negative TS accepted")
	}
	bad = base
	bad.Hierarchies = nil
	if _, err := Samarati(tbl, bad); err == nil {
		t.Error("nil hierarchies accepted")
	}
	bad = base
	bad.QIs = []string{"Missing"}
	if _, err := Samarati(tbl, bad); err == nil {
		t.Error("missing QI hierarchy accepted")
	}
}

// TestConditionsDoNotChangeOutcome: with and without the necessary-
// condition filters, all three searches must find the same minimal
// heights (the conditions are *necessary*, so they can only skip
// doomed work).
func TestConditionsDoNotChangeOutcome(t *testing.T) {
	tbl := figure3Table(t)
	for _, p := range []int{1, 2} {
		for ts := 0; ts <= 10; ts += 2 {
			on := kOnlyConfig(t, ts)
			on.P = p
			off := on
			off.UseConditions = false

			rOn, err := Samarati(tbl, on)
			if err != nil {
				t.Fatal(err)
			}
			rOff, err := Samarati(tbl, off)
			if err != nil {
				t.Fatal(err)
			}
			if rOn.Found != rOff.Found {
				t.Errorf("p=%d TS=%d: conditions changed foundness %v vs %v", p, ts, rOn.Found, rOff.Found)
				continue
			}
			if rOn.Found && rOn.Node.Height() != rOff.Node.Height() {
				t.Errorf("p=%d TS=%d: heights differ with conditions: %v vs %v",
					p, ts, rOn.Node, rOff.Node)
			}
		}
	}
}

func TestMondrianBasic(t *testing.T) {
	tbl := figure3Table(t)
	res, err := Mondrian(tbl, MondrianConfig{
		QIs: []string{"Sex", "ZipCode"}, K: 3, P: 1, Strict: true,
	})
	if err != nil {
		t.Fatalf("Mondrian: %v", err)
	}
	if res.Partitions < 1 {
		t.Fatal("no partitions")
	}
	// Output must be 3-anonymous with zero suppression.
	if res.Masked.NumRows() != tbl.NumRows() {
		t.Errorf("Mondrian dropped rows: %d -> %d", tbl.NumRows(), res.Masked.NumRows())
	}
	ok, err := core.IsKAnonymous(res.Masked, []string{"Sex", "ZipCode"}, 3)
	if err != nil || !ok {
		t.Errorf("Mondrian output not 3-anonymous: %v", err)
	}
	total := 0
	for _, s := range res.GroupSizes {
		if s < 3 {
			t.Errorf("partition of size %d < k", s)
		}
		total += s
	}
	if total != tbl.NumRows() {
		t.Errorf("partition sizes sum to %d, want %d", total, tbl.NumRows())
	}
}

func TestMondrianPSensitive(t *testing.T) {
	tbl := figure3Table(t)
	res, err := Mondrian(tbl, MondrianConfig{
		QIs: []string{"Sex", "ZipCode"}, Confidential: []string{"Illness"},
		K: 3, P: 2, Strict: true,
	})
	if err != nil {
		t.Fatalf("Mondrian: %v", err)
	}
	r, err := core.Check(res.Masked, []string{"Sex", "ZipCode"}, []string{"Illness"}, 2, 3)
	if err != nil || !r.Satisfied {
		t.Errorf("Mondrian p=2 output not 2-sensitive 3-anonymous: %+v, %v", r, err)
	}
}

func TestMondrianSplitsWhenPossible(t *testing.T) {
	// 8 rows over two clear numeric clusters: Mondrian with k=2 must
	// produce more than one partition.
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "S", Type: table.String},
	)
	rows := [][]string{
		{"20", "a"}, {"21", "b"}, {"22", "a"}, {"23", "b"},
		{"70", "a"}, {"71", "b"}, {"72", "a"}, {"73", "b"},
	}
	tbl, err := table.FromText(sch, rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mondrian(tbl, MondrianConfig{QIs: []string{"Age"}, K: 2, P: 1, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Errorf("partitions = %d, want >= 2", res.Partitions)
	}
	// Check the range labels look like ranges or single values.
	v, _ := res.Masked.Value(0, "Age")
	if v.Str() == "" {
		t.Error("empty range label")
	}
}

func TestMondrianValidation(t *testing.T) {
	tbl := figure3Table(t)
	cases := []MondrianConfig{
		{QIs: []string{"Sex"}, K: 1, P: 1},
		{QIs: []string{"Sex"}, K: 3, P: 0},
		{QIs: []string{"Sex"}, K: 3, P: 4},
		{QIs: []string{"Sex"}, K: 3, P: 2},     // p>=2 without confidential
		{QIs: nil, K: 3, P: 1},                 // no QIs
		{QIs: []string{"Missing"}, K: 3, P: 1}, // unknown QI
		{QIs: []string{"Sex"}, K: 99, P: 1},    // k > n
		{QIs: []string{"Sex"}, K: 3, P: 2, Confidential: []string{"Missing"}},
	}
	for i, cfg := range cases {
		if _, err := Mondrian(tbl, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

// TestMondrianUnsplittable: when no split preserves the constraints the
// whole table is one partition.
func TestMondrianUnsplittable(t *testing.T) {
	sch := table.MustSchema(
		table.Field{Name: "X", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{{"a"}, {"a"}, {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mondrian(tbl, MondrianConfig{QIs: []string{"X"}, K: 2, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Errorf("partitions = %d, want 1", res.Partitions)
	}
}

// TestSamaratiP1EqualsLatticeBottomWhenTrivial: a table that is already
// k-anonymous at the bottom node must return height 0.
func TestSamaratiTrivialBottom(t *testing.T) {
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	rows := [][]string{
		{"M", "41076", "Flu"}, {"M", "41076", "Cold"}, {"M", "41076", "Flu"},
	}
	tbl, err := table.FromText(sch, rows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kOnlyConfig(t, 0)
	res, err := Samarati(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Node.Height() != 0 {
		t.Errorf("result = %v %v, want found at height 0", res.Found, res.Node)
	}
}

// TestStatsAblation: with conditions enabled the search must do no more
// group scans than with them disabled (they can only prune).
func TestStatsAblation(t *testing.T) {
	tbl := figure3Table(t)
	on := kOnlyConfig(t, 4)
	on.P = 2
	off := on
	off.UseConditions = false

	rOn, err := Exhaustive(tbl, on)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := Exhaustive(tbl, off)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.Stats.GroupScans > rOff.Stats.GroupScans {
		t.Errorf("conditions increased group scans: %d > %d",
			rOn.Stats.GroupScans, rOff.Stats.GroupScans)
	}
}
