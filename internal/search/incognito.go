package search

import (
	"psk/internal/core"
	"psk/internal/obs"
	"psk/internal/table"
)

// BottomUp performs a bottom-up breadth-first search of the
// generalization lattice in the spirit of LeFevre et al.'s Incognito
// (the paper's reference [12]), adapted to p-sensitive k-anonymity:
// nodes are visited level by level from the bottom, and the search
// stops at the first level containing a satisfying node. Every
// satisfying node at that level is returned.
//
// Compared with Samarati's binary search it evaluates every node below
// the answer but never probes above it, and it yields all
// minimal-height solutions rather than the first one found. (Incognito's
// signature subset-lattice pruning concerns searches over multiple QI
// subsets; for a single fixed QI set, level-order scan is what remains.)
func BottomUp(im *table.Table, cfg Config) (ExhaustiveResult, error) {
	cfg.strategy = "bottom-up"
	m, err := cfg.validate()
	if err != nil {
		return ExhaustiveResult{}, err
	}
	var res ExhaustiveResult
	span := cfg.Recorder.StartSpan(obs.PhaseSearch, nil)
	defer span.End()

	bounds, err := searchBounds(im, cfg)
	if err != nil {
		return ExhaustiveResult{}, err
	}
	if cfg.Policy == nil && cfg.UseConditions && cfg.P >= 2 && !bounds.Feasible() {
		res.Stats.PrunedCondition1 = 1
		span.End()
		res.Report = cfg.Recorder.Snapshot()
		return res, nil
	}

	eval := newEvaluator(im, m, nil, cfg, bounds)
	lat := m.Lattice()
	cfg.Recorder.AddLatticeNodes(int64(lat.Size()))
	for h := 0; h <= lat.Height(); h++ {
		nodes := lat.NodesAtHeight(h)
		outs, err := eval.evalAll(nodes, &res.Stats)
		if err != nil {
			return ExhaustiveResult{}, err
		}
		var levelHits []MinimalNode
		for i, o := range outs {
			if o.ok {
				levelHits = append(levelHits, MinimalNode{Node: nodes[i], Masked: o.masked, Suppressed: o.suppressed})
			}
		}
		if len(levelHits) > 0 {
			res.Minimal = levelHits
			for _, hit := range levelHits {
				res.Satisfying = append(res.Satisfying, hit.Node)
			}
			// BottomUp makes no monotonicity assumption, so the frontier
			// pass must not cut up-sets either.
			if err := attachFrontier(eval, lat, false, &res.Stats, &res.Frontier, &span); err != nil {
				return ExhaustiveResult{}, err
			}
			res.StopReason = eval.lim.stopReason()
			span.End()
			res.Report = cfg.Recorder.Snapshot()
			return res, nil
		}
		if eval.lim.tripped() {
			break
		}
	}
	if err := attachFrontier(eval, lat, false, &res.Stats, &res.Frontier, &span); err != nil {
		return ExhaustiveResult{}, err
	}
	res.StopReason = eval.lim.stopReason()
	span.End()
	res.Report = cfg.Recorder.Snapshot()
	return res, nil
}

// FindAnonymous is a convenience wrapper that runs Samarati and, when
// nothing satisfies within the suppression budget, reports the reason
// derived from the necessary conditions.
func FindAnonymous(im *table.Table, cfg Config) (Result, core.Reason, error) {
	res, err := Samarati(im, cfg)
	if err != nil {
		return Result{}, core.Satisfied, err
	}
	if res.Found {
		return res, core.Satisfied, nil
	}
	if res.Stats.PrunedCondition1 > 0 {
		return res, core.FailedCondition1, nil
	}
	return res, core.NotPSensitive, nil
}
