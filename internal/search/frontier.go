package search

import (
	"fmt"

	"psk/internal/core"
	"psk/internal/lattice"
	"psk/internal/loss"
	"psk/internal/obs"
)

// This file adds the utility-aware Pareto frontier mode to every
// strategy: one budget-bounded pass over the lattice that scores each
// satisfying node with the statistics-native loss metrics (O(groups)
// per node, nothing materialized) and reduces the scored set under
// multi-objective dominance. The reduction is deterministic — entries
// are collected in lattice walk order, exact objective ties are
// resolved toward the earlier node, and every score is insensitive to
// group order — so the frontier is byte-identical at every worker
// count.

// Objective identifies one axis of the frontier reduction. Every axis
// is minimized; the two "bigger is better" quantities are folded into
// that convention (ObjPrecision minimizes 1 - Prec, ObjMargin minimizes
// the negated minimum group size, i.e. prefers the larger privacy
// slack).
type Objective uint8

const (
	// ObjHeight minimizes the normalized generalization height.
	ObjHeight Objective = iota
	// ObjPrecision minimizes Sweeney's precision loss (1 - Prec).
	ObjPrecision
	// ObjDiscernibility minimizes the discernibility metric DM.
	ObjDiscernibility
	// ObjAvgGroup minimizes C_AVG, the normalized average group size.
	ObjAvgGroup
	// ObjSuppression minimizes the suppressed-tuple ratio.
	ObjSuppression
	// ObjEntropy minimizes the summed per-QI entropy loss in bits.
	ObjEntropy
	// ObjMargin maximizes the minimum QI-group size — the policy
	// strictness axis: a release whose smallest group is far above k
	// withstands a stricter k (and, with histograms, a stricter p)
	// without re-search.
	ObjMargin

	numObjectives
)

var objectiveNames = [numObjectives]string{
	"height", "precision", "discernibility", "avg-group",
	"suppression", "entropy", "margin",
}

func (o Objective) String() string {
	if o < numObjectives {
		return objectiveNames[o]
	}
	return fmt.Sprintf("Objective(%d)", uint8(o))
}

// DefaultObjectives is the frontier the publisher usually wants: the
// three information-loss axes the paper's utility discussion motivates
// (discernibility, entropy loss, suppression) traded against the
// privacy margin. Height and precision are node properties the caller
// can always rank by afterwards; leaving them out keeps the default
// frontier from absorbing every node of a tall lattice.
func DefaultObjectives() []Objective {
	return []Objective{ObjDiscernibility, ObjEntropy, ObjSuppression, ObjMargin}
}

// FrontierConfig switches a search into frontier mode.
type FrontierConfig struct {
	// Enabled adds a frontier pass after the strategy's own search: the
	// lattice is re-walked (memoized roll-up statistics make re-visits
	// O(groups)), every satisfying node is scored, and Result.Frontier
	// receives the dominance-reduced set. The pass draws on the same
	// budget limiter as the search proper.
	Enabled bool
	// Objectives are the axes of the dominance reduction; empty selects
	// DefaultObjectives().
	Objectives []Objective
	// MaxRank admits entries up to this dominance rank: 0 (the default)
	// keeps only the Pareto set, 1 adds the second front, and so on.
	MaxRank int
}

// FrontierEntry is one member of the reduced frontier.
type FrontierEntry struct {
	// Node is the scored lattice node.
	Node lattice.Node
	// Verdict is the policy verdict at Node (always satisfied).
	Verdict core.Result
	// Loss is the full metric report, computed on the statistics path.
	Loss loss.Report
	// MinGroup is the smallest QI-group size of the release (the margin
	// axis), Groups the group count, Suppressed the tuples removed.
	MinGroup   int
	Groups     int
	Suppressed int
	// Rank is the dominance rank: 0 = Pareto-optimal, 1 = dominated
	// only by rank 0, ...
	Rank int
}

// objective extracts one minimized coordinate of the entry.
func (f *FrontierEntry) objective(o Objective) float64 {
	switch o {
	case ObjHeight:
		return f.Loss.HeightRatio
	case ObjPrecision:
		return 1 - f.Loss.Precision
	case ObjDiscernibility:
		return float64(f.Loss.Discernibility)
	case ObjAvgGroup:
		return f.Loss.AvgGroupRatio
	case ObjSuppression:
		return f.Loss.SuppressionRatio
	case ObjEntropy:
		return f.Loss.EntropyLossBits
	case ObjMargin:
		return -float64(f.MinGroup)
	}
	return 0
}

// frontierScan walks the lattice level by level (AllMinimal's candidate
// enumeration), scores every satisfying node from its post-suppression
// statistics, and returns the dominance-reduced frontier. The walk runs
// on a copy of the strategy's evaluator with keepStats set, sharing its
// roll-up store, cache and limiter: nodes the search already evaluated
// re-verdict from memoized statistics, and the whole strategy call
// still spends one budget.
//
// monotone marks strategies licensed to assume the paper's
// generalization monotonicity (Samarati, AllMinimal, Incognito). For
// those, the up-set of a node that satisfied with zero suppression is
// cut: climbing from such a node merges groups, which can only keep
// suppression at zero and weakly worsen every loss axis — so every
// ancestor is dominated by (or exactly ties, and ties lose to) the node
// itself. The one axis merging can improve is the margin; when ObjMargin
// is in play the cut therefore additionally requires the node to
// already be a single group, which pins the margin at its maximum.
func (e *evaluator) frontierScan(lat *lattice.Lattice, monotone bool, stats *Stats) ([]FrontierEntry, error) {
	fc := e.cfg.Frontier
	objs := fc.Objectives
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	hasMargin := false
	for _, o := range objs {
		if o >= numObjectives {
			return nil, fmt.Errorf("search: unknown frontier objective %d", uint8(o))
		}
		if o == ObjMargin {
			hasMargin = true
		}
	}
	base, err := loss.NewBaseline(e.im, e.qis)
	if err != nil {
		return nil, err
	}

	fe := *e
	fe.keepStats = true
	fe.noMaterialize = true

	rows := e.im.NumRows()
	var entries []FrontierEntry
	cut := make(map[string]bool) // dominated up-set, never scored
	for h := 0; h <= lat.Height(); h++ {
		nodes := lat.NodesAtHeight(h)
		var candidates []lattice.Node
		candIdx := make([]int, len(nodes))
		for i, node := range nodes {
			if cut[node.Key()] {
				candIdx[i] = -1
				e.rec.FrontierCutSkip()
				continue
			}
			candIdx[i] = len(candidates)
			candidates = append(candidates, node)
		}
		outs, err := fe.evalAll(candidates, stats)
		if err != nil {
			return nil, err
		}
		for i, node := range nodes {
			if candIdx[i] < 0 {
				continue
			}
			o := outs[candIdx[i]]
			if !o.ok || o.post == nil {
				continue
			}
			rep, err := loss.MeasureStats(loss.StatsInput{
				Stats: o.post, Rows: rows, Baseline: base,
				Node: node, Lattice: lat, K: e.cfg.K,
			})
			if err != nil {
				return nil, err
			}
			entries = append(entries, FrontierEntry{
				Node: node.Clone(), Verdict: o.res, Loss: rep,
				MinGroup: o.post.MinGroupSize(), Groups: o.post.NumGroups(),
				Suppressed: o.suppressed,
			})
			e.rec.FrontierScored()
			if monotone && o.suppressed == 0 && (!hasMargin || o.post.NumGroups() == 1) {
				tagUp(lat, node, cut)
			}
		}
		if fe.lim.tripped() {
			// Levels below completed in full; the reduced set over them is
			// a valid frontier of the evaluated region.
			break
		}
	}
	frontier := reduceFrontier(entries, objs, fc.MaxRank)
	e.rec.FrontierReduced(int64(len(entries)), int64(len(frontier)))
	return frontier, nil
}

// attachFrontier runs the frontier pass when the configuration asks for
// one and stores the result; strategies call it just before computing
// their stop reason so a budget trip inside the scan is reported.
// parent is the strategy's root search span (may be nil or disabled):
// the scan runs under a nested frontier-scan span, so the report's
// phase table attributes the pass's wall time to the frontier, not to
// the search's self time.
func attachFrontier(e *evaluator, lat *lattice.Lattice, monotone bool, stats *Stats, dst *[]FrontierEntry, parent *obs.Span) error {
	if !e.cfg.Frontier.Enabled {
		return nil
	}
	sp := e.rec.StartSpan(obs.PhaseFrontier, parent)
	defer sp.End()
	fr, err := e.frontierScan(lat, monotone, stats)
	if err != nil {
		return err
	}
	*dst = fr
	return nil
}

// beats reports whether entry a eliminates entry b: a is no worse on
// every objective and either strictly better somewhere, or an exact tie
// that a — earlier in lattice walk order — wins. The tie rule keeps the
// relation a strict partial order (irreflexive, antisymmetric,
// transitive), so reduceFrontier's peeling always finds a non-empty
// front and terminates, and it deduplicates identical objective vectors
// deterministically toward the lowest node.
func beats(a, b *FrontierEntry, objs []Objective, aEarlier bool) bool {
	strict := false
	for _, o := range objs {
		va, vb := a.objective(o), b.objective(o)
		if va > vb {
			return false
		}
		if va < vb {
			strict = true
		}
	}
	return strict || aEarlier
}

// reduceFrontier assigns dominance ranks by peeling: rank 0 is the set
// of entries no other entry beats, rank 1 the set unbeaten once rank 0
// is removed, and so on. Entries with rank <= maxRank are returned in
// their original (lattice walk) order with Rank filled in.
func reduceFrontier(entries []FrontierEntry, objs []Objective, maxRank int) []FrontierEntry {
	if len(entries) == 0 {
		return nil
	}
	rank := make([]int, len(entries))
	for i := range rank {
		rank[i] = -1
	}
	for r, assigned := 0, 0; assigned < len(entries); r++ {
		var front []int
		for i := range entries {
			if rank[i] >= 0 {
				continue
			}
			beaten := false
			for j := range entries {
				if j == i || rank[j] >= 0 {
					continue
				}
				if beats(&entries[j], &entries[i], objs, j < i) {
					beaten = true
					break
				}
			}
			if !beaten {
				front = append(front, i)
			}
		}
		for _, i := range front {
			rank[i] = r
		}
		assigned += len(front)
	}
	var out []FrontierEntry
	for i := range entries {
		if rank[i] <= maxRank {
			entries[i].Rank = rank[i]
			out = append(out, entries[i])
		}
	}
	return out
}
