package search

import (
	"fmt"
	"math/rand"
	"testing"

	"psk/internal/core"
)

// Composite policies must be drop-in replacements for the built-in
// p-sensitive k-anonymity target: a conjunction that adds only implied
// properties (distinct l-diversity with l <= p) has exactly the same
// satisfying nodes, so every strategy must return byte-identical
// results — nodes, masked microdata, suppression counts and work
// counters — whether it searched via cfg.P/cfg.K or via cfg.Policy.
// Run with -race; the worker loop exercises the parallel engine.

// equivalentPolicy builds the composite with the same solution set as
// the legacy (p, k) configuration.
func equivalentPolicy(p, k int) core.Policy {
	if p <= 1 {
		return core.All(
			core.KAnonymityPolicy{K: k},
			core.DistinctLDiversityPolicy{Attr: "Illness", L: 1},
		)
	}
	return core.All(
		core.PSensitiveKAnonymityPolicy{P: p, K: k},
		core.DistinctLDiversityPolicy{Attr: "Illness", L: p},
	)
}

// TestCompositePolicyMatchesLegacy: all five strategies, randomized
// tables, serial and parallel.
func TestCompositePolicyMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl, base := randomSearchFixture(t, rng, 120+rng.Intn(200))
		base.K = 2 + rng.Intn(3)
		base.P = 1 + rng.Intn(2)
		if base.P > base.K {
			base.P = base.K
		}
		base.MaxSuppress = rng.Intn(15)
		for _, w := range []int{1, 4} {
			legacy := base
			legacy.Workers = w
			composite := legacy
			composite.Policy = equivalentPolicy(base.P, base.K)
			name := fmt.Sprintf("seed=%d w=%d K=%d P=%d TS=%d",
				seed, w, base.K, base.P, base.MaxSuppress)

			sa, err := Samarati(tbl, legacy)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := Samarati(tbl, composite)
			if err != nil {
				t.Fatal(err)
			}
			if sa.Found != sb.Found || !sameStats(sa.Stats, sb.Stats) ||
				sa.Suppressed != sb.Suppressed ||
				(sa.Found && !sa.Node.Equal(sb.Node)) ||
				fmtMasked(sa.Masked) != fmtMasked(sb.Masked) {
				t.Errorf("%s: composite policy changed the Samarati outcome", name)
			}

			ea, err := Exhaustive(tbl, legacy)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := Exhaustive(tbl, composite)
			if err != nil {
				t.Fatal(err)
			}
			if !sameStats(ea.Stats, eb.Stats) ||
				fmt.Sprint(ea.Satisfying) != fmt.Sprint(eb.Satisfying) ||
				fmtMinimal(ea.Minimal) != fmtMinimal(eb.Minimal) {
				t.Errorf("%s: composite policy changed the Exhaustive outcome", name)
			}

			ba, err := BottomUp(tbl, legacy)
			if err != nil {
				t.Fatal(err)
			}
			bb, err := BottomUp(tbl, composite)
			if err != nil {
				t.Fatal(err)
			}
			if !sameStats(ba.Stats, bb.Stats) ||
				fmtMinimal(ba.Minimal) != fmtMinimal(bb.Minimal) {
				t.Errorf("%s: composite policy changed the BottomUp outcome", name)
			}

			aa, err := AllMinimal(tbl, legacy)
			if err != nil {
				t.Fatal(err)
			}
			ab, err := AllMinimal(tbl, composite)
			if err != nil {
				t.Fatal(err)
			}
			if !sameStats(aa.Stats, ab.Stats) ||
				fmtMinimal(aa.Minimal) != fmtMinimal(ab.Minimal) {
				t.Errorf("%s: composite policy changed the AllMinimal outcome", name)
			}

			ia, err := Incognito(tbl, legacy)
			if err != nil {
				t.Fatal(err)
			}
			ib, err := Incognito(tbl, composite)
			if err != nil {
				t.Fatal(err)
			}
			if !sameStats(ia.Stats, ib.Stats) ||
				ia.PrunedBySubsets != ib.PrunedBySubsets ||
				ia.SubsetsEvaluated != ib.SubsetsEvaluated ||
				fmtMinimal(ia.Minimal) != fmtMinimal(ib.Minimal) {
				t.Errorf("%s: composite policy changed the Incognito outcome", name)
			}
		}
	}
}

// TestBoundedPolicyMatchesConditions: wrapping the composite with
// core.WithBounds must reproduce the UseConditions search outcomes
// (the bounds are necessary conditions, so the solution set is
// unchanged); only the work counters may differ, because the legacy
// path rejects an infeasible Condition 1 before the search starts
// while a bounded policy reports it per evaluated node.
func TestBoundedPolicyMatchesConditions(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl, base := randomSearchFixture(t, rng, 150)
		base.K = 3
		base.P = 2
		base.MaxSuppress = 10
		legacy := base
		legacy.UseConditions = true

		bounds, err := core.ComputeBounds(tbl, base.Confidential, base.P)
		if err != nil {
			t.Fatal(err)
		}
		composite := base
		composite.Policy = core.WithBounds(equivalentPolicy(base.P, base.K), bounds)

		sa, err := Samarati(tbl, legacy)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := Samarati(tbl, composite)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Found != sb.Found || sa.Suppressed != sb.Suppressed ||
			(sa.Found && !sa.Node.Equal(sb.Node)) ||
			fmtMasked(sa.Masked) != fmtMasked(sb.Masked) {
			t.Errorf("seed %d: bounded policy changed the Samarati solution", seed)
		}

		ia, err := Incognito(tbl, legacy)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := Incognito(tbl, composite)
		if err != nil {
			t.Fatal(err)
		}
		if fmtMinimal(ia.Minimal) != fmtMinimal(ib.Minimal) {
			t.Errorf("seed %d: bounded policy changed the Incognito solutions", seed)
		}
	}
}

// TestStrictCompositeSearch: a conjunction the legacy path cannot
// express (adding t-closeness) must still drive every strategy, and
// whatever masked microdata comes back must actually satisfy the
// policy it searched for.
func TestStrictCompositeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tbl, base := randomSearchFixture(t, rng, 250)
	base.K = 2
	base.MaxSuppress = 10
	pol := core.All(
		core.PSensitiveKAnonymityPolicy{P: 2, K: 2},
		core.TClosenessPolicy{Attr: "Illness", T: 0.5},
	)
	base.Policy = pol

	sr, err := Samarati(tbl, base)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Found {
		v, err := core.NewStatsView(sr.Masked, base.QIs, []string{"Illness"}, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pol.Evaluate(v)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			t.Errorf("Samarati returned a node violating its own policy: %+v", res)
		}
	}

	ir, err := Incognito(tbl, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ir.Minimal {
		v, err := core.NewStatsView(m.Masked, base.QIs, []string{"Illness"}, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pol.Evaluate(v)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfied {
			t.Errorf("Incognito minimal node <%s> violates the policy: %+v", m.Node.Key(), res)
		}
	}
	// The strict target is at least as hard as the legacy one: if the
	// legacy search finds nothing, neither may the strict search.
	legacy := base
	legacy.Policy = nil
	legacy.P = 2
	lr, err := Samarati(tbl, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Found && !lr.Found {
		t.Error("strict composite found a node the weaker legacy target missed")
	}
}
