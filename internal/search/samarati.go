package search

import (
	"psk/internal/core"
	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// Samarati implements the paper's Algorithm 3: a binary search on the
// height of the generalization lattice for a p-k-minimal generalization,
// with the two necessary conditions used as early rejection filters.
//
// Faithfulness notes:
//
//   - Condition 1 (p <= maxP) is checked once on the initial microdata,
//     before any node is evaluated, exactly as Algorithm 3 does.
//   - Condition 2 is applied per node. Algorithm 3 as printed filters on
//     the group count of the generalized-only table; because suppression
//     can only reduce the group count, that filter can reject a node
//     whose final masked microdata actually satisfies the condition.
//     This implementation therefore applies the bound to the
//     post-suppression table (via core.CheckWithBounds), which is the
//     exact form of Condition 2; the bound value itself is still the one
//     computed once on the initial microdata, as licensed by Theorems 1
//     and 2.
//   - The binary search assumes the satisfying heights form an
//     upward-closed set, which holds for k-anonymity with suppression
//     and for p-sensitivity under pure generalization (the paper's
//     premise). Use Exhaustive when that assumption must not be trusted.
//
// The returned node is the first satisfying node found at the minimal
// satisfying height; Exhaustive enumerates all p-k-minimal nodes when
// every solution is wanted. With cfg.Workers > 1 the nodes of each
// probed height are evaluated concurrently; the result is identical to
// the serial search.
func Samarati(im *table.Table, cfg Config) (Result, error) {
	cfg.strategy = "samarati"
	m, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	var res Result
	span := cfg.Recorder.StartSpan(obs.PhaseSearch, nil)
	defer span.End()

	bounds, err := searchBounds(im, cfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.Policy == nil && cfg.UseConditions && cfg.P >= 2 && !bounds.Feasible() {
		// First necessary condition: no masked microdata derived from im
		// can be p-sensitive. Checked before touching the lattice.
		res.Stats.PrunedCondition1 = 1
		span.End()
		res.Report = cfg.Recorder.Snapshot()
		return res, nil
	}

	eval := newEvaluator(im, m, nil, cfg, bounds)
	lat := m.Lattice()
	cfg.Recorder.AddLatticeNodes(int64(lat.Size()))
	low, high := 0, lat.Height()
	var found *Result
	for low < high {
		try := (low + high) / 2
		r, err := eval.firstAtHeight(lat, try, &res.Stats)
		if err != nil {
			return Result{}, err
		}
		if r != nil {
			// A hit is a genuinely satisfying node even when the probe was
			// budget-truncated, so record it before checking the limiter.
			found = r
			high = try
		}
		if eval.lim.tripped() {
			// The probe stopped early: a "no hit" verdict is unreliable, so
			// neither bound may move on it. Return the best-so-far instead
			// of descending on bad information.
			break
		}
		if r == nil {
			low = try + 1
		}
	}
	// low == high: the candidate minimal height. If the last successful
	// probe was exactly at this height we already have the answer;
	// otherwise probe it (covers both the "never probed" and the
	// "nothing satisfies anywhere" cases).
	if !eval.lim.tripped() && (found == nil || found.Node.Height() != low) {
		r, err := eval.firstAtHeight(lat, low, &res.Stats)
		if err != nil {
			return Result{}, err
		}
		if r != nil {
			found = r
		}
	}
	if err := attachFrontier(eval, lat, true, &res.Stats, &res.Frontier, &span); err != nil {
		return Result{}, err
	}
	res.StopReason = eval.lim.stopReason()
	span.End()
	if found == nil {
		res.Report = cfg.Recorder.Snapshot()
		return res, nil
	}
	found.Stats = res.Stats
	found.Frontier = res.Frontier
	found.StopReason = res.StopReason
	found.Report = cfg.Recorder.Snapshot()
	return *found, nil
}

// searchBounds computes the necessary-condition bounds on the initial
// microdata when the built-in property is searched with conditions
// enabled and p >= 2; otherwise it returns permissive bounds that never
// reject. A custom Policy brings its own bounds (core.WithBounds), so
// no dataset scan happens on its behalf here.
func searchBounds(im *table.Table, cfg Config) (core.Bounds, error) {
	if cfg.Policy == nil && cfg.UseConditions && cfg.P >= 2 {
		return core.ComputeBounds(im, cfg.Confidential, cfg.P)
	}
	return core.Bounds{MaxP: cfg.P, MaxGroups: im.NumRows(), P: cfg.P}, nil
}

// firstAtHeight probes every node at one height (lexicographic order)
// through the evaluation engine and returns the first satisfying result
// in node order, or nil. Workers > 1 evaluates the height's nodes
// concurrently with deterministic reduction.
func (e *evaluator) firstAtHeight(lat *lattice.Lattice, h int, stats *Stats) (*Result, error) {
	nodes := lat.NodesAtHeight(h)
	i, o, err := e.firstHit(nodes, stats)
	if err != nil {
		return nil, err
	}
	if i < 0 {
		return nil, nil
	}
	return &Result{Found: true, Node: nodes[i], Masked: o.masked, Suppressed: o.suppressed}, nil
}
