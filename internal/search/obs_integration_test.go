package search

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"psk/internal/obs"
)

// The telemetry layer promises to be a pure observer: attaching a
// recorder and tracer must not move a single result byte or stats
// counter, and the counters it reports must themselves be deterministic
// wherever the evaluated node set is (every barrier strategy, any
// worker count). Run with -race to exercise the recorder's atomics
// under the parallel engine.

// TestTelemetryDoesNotChangeResults: for every strategy, serial and
// parallel, a run with recorder+tracer attached must be byte-identical
// to the plain run.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	tbl := figure3Table(t)
	for _, p := range []int{1, 2} {
		for _, ts := range []int{0, 4, 10} {
			for _, w := range []int{0, 4} {
				base := kOnlyConfig(t, ts)
				base.P = p
				base.Workers = w
				observed := base
				observed.Recorder = obs.NewRecorder()
				observed.Tracer = obs.NewTracer(&bytes.Buffer{})
				name := fmt.Sprintf("p=%d/TS=%d/w=%d", p, ts, w)

				samA, err := Samarati(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				samB, err := Samarati(tbl, observed)
				if err != nil {
					t.Fatal(err)
				}
				if samA.Found != samB.Found || !sameStats(samA.Stats, samB.Stats) ||
					samA.Suppressed != samB.Suppressed ||
					(samA.Found && !samA.Node.Equal(samB.Node)) ||
					fmtMasked(samA.Masked) != fmtMasked(samB.Masked) {
					t.Errorf("%s: telemetry changed the Samarati outcome", name)
				}
				if samA.Report != nil {
					t.Errorf("%s: unobserved Samarati run carries a report", name)
				}
				if samB.Report == nil {
					t.Errorf("%s: observed Samarati run lost its report", name)
				}

				exA, err := Exhaustive(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				exB, err := Exhaustive(tbl, observed)
				if err != nil {
					t.Fatal(err)
				}
				if !sameStats(exA.Stats, exB.Stats) ||
					fmt.Sprint(exA.Satisfying) != fmt.Sprint(exB.Satisfying) ||
					fmtMinimal(exA.Minimal) != fmtMinimal(exB.Minimal) {
					t.Errorf("%s: telemetry changed the Exhaustive outcome", name)
				}

				buA, err := BottomUp(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				buB, err := BottomUp(tbl, observed)
				if err != nil {
					t.Fatal(err)
				}
				if !sameStats(buA.Stats, buB.Stats) ||
					fmtMinimal(buA.Minimal) != fmtMinimal(buB.Minimal) {
					t.Errorf("%s: telemetry changed the BottomUp outcome", name)
				}

				amA, err := AllMinimal(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				amB, err := AllMinimal(tbl, observed)
				if err != nil {
					t.Fatal(err)
				}
				if !sameStats(amA.Stats, amB.Stats) ||
					fmtMinimal(amA.Minimal) != fmtMinimal(amB.Minimal) {
					t.Errorf("%s: telemetry changed the AllMinimal outcome", name)
				}

				incA, err := Incognito(tbl, base)
				if err != nil {
					t.Fatal(err)
				}
				incB, err := Incognito(tbl, observed)
				if err != nil {
					t.Fatal(err)
				}
				if !sameStats(incA.Stats, incB.Stats) ||
					incA.PrunedBySubsets != incB.PrunedBySubsets ||
					fmtMinimal(incA.Minimal) != fmtMinimal(incB.Minimal) {
					t.Errorf("%s: telemetry changed the Incognito outcome", name)
				}
			}
		}
	}
}

// TestTelemetryDeterministicCounters: for the barrier strategies (whose
// evaluated node set cannot depend on scheduling), the deterministic
// counter view must be identical between the serial run and any
// parallel run.
func TestTelemetryDeterministicCounters(t *testing.T) {
	tbl := figure3Table(t)
	type runner struct {
		name string
		run  func(Config) (*obs.Report, error)
	}
	runners := []runner{
		{"Exhaustive", func(cfg Config) (*obs.Report, error) {
			r, err := Exhaustive(tbl, cfg)
			return r.Report, err
		}},
		{"BottomUp", func(cfg Config) (*obs.Report, error) {
			r, err := BottomUp(tbl, cfg)
			return r.Report, err
		}},
		{"AllMinimal", func(cfg Config) (*obs.Report, error) {
			r, err := AllMinimal(tbl, cfg)
			return r.Report, err
		}},
		{"Incognito", func(cfg Config) (*obs.Report, error) {
			r, err := Incognito(tbl, cfg)
			return r.Report, err
		}},
	}
	for _, p := range []int{1, 2} {
		for _, ts := range []int{0, 4, 10} {
			base := kOnlyConfig(t, ts)
			base.P = p
			for _, r := range runners {
				serial := base
				serial.Recorder = obs.NewRecorder()
				repS, err := r.run(serial)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{2, 8} {
					par := base
					par.Workers = w
					par.Recorder = obs.NewRecorder()
					repP, err := r.run(par)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(repS.DeterministicCounters(), repP.DeterministicCounters()) {
						t.Errorf("p=%d TS=%d %s w=%d: counters diverged\nserial:   %v\nparallel: %v",
							p, ts, r.name, w, repS.DeterministicCounters(), repP.DeterministicCounters())
					}
				}
			}
		}
	}
}

// TestTraceCountMatchesNodesEvaluated: on the serial path, one JSONL
// event is emitted per evaluated node — no more, no fewer — and the
// trace parses back with a verdict breakdown matching the report's.
func TestTraceCountMatchesNodesEvaluated(t *testing.T) {
	tbl := figure3Table(t)
	for _, ts := range []int{0, 4, 10} {
		cfg := kOnlyConfig(t, ts)
		cfg.P = 2
		cfg.Recorder = obs.NewRecorder()
		var buf bytes.Buffer
		cfg.Tracer = obs.NewTracer(&buf)

		res, err := AllMinimal(tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Tracer.Flush(); err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadEvents(&buf)
		if err != nil {
			t.Fatalf("TS=%d: trace does not parse: %v", ts, err)
		}
		if len(events) != res.Stats.NodesEvaluated {
			t.Errorf("TS=%d: %d trace events, %d nodes evaluated", ts, len(events), res.Stats.NodesEvaluated)
		}
		if got := cfg.Tracer.Events(); got != int64(len(events)) {
			t.Errorf("TS=%d: Events() = %d, parsed %d", ts, got, len(events))
		}
		byVerdict := map[string]int64{}
		for _, ev := range events {
			byVerdict[ev.Verdict]++
			if ev.Worker != 0 {
				t.Errorf("TS=%d: serial trace event on worker %d", ts, ev.Worker)
			}
			if ev.DurationNs < 0 {
				t.Errorf("TS=%d: negative duration %d", ts, ev.DurationNs)
			}
		}
		rep := res.Report
		want := map[string]int64{
			obs.VerdictSatisfied.String():        rep.Nodes.Satisfied,
			obs.VerdictViolated.String():         rep.Nodes.Violated,
			obs.VerdictPrunedCondition1.String(): rep.Nodes.PrunedCondition1,
			obs.VerdictPrunedCondition2.String(): rep.Nodes.PrunedCondition2,
			obs.VerdictOverBudget.String():       rep.Nodes.OverBudget,
			obs.VerdictError.String():            rep.Nodes.Errors,
		}
		for v, n := range want {
			if n == 0 {
				delete(want, v)
			}
		}
		if !reflect.DeepEqual(byVerdict, want) {
			t.Errorf("TS=%d: trace verdicts %v, report %v", ts, byVerdict, want)
		}
	}
}
