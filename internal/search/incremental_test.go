package search

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"psk/internal/core"
	"psk/internal/lattice"
	"psk/internal/obs"
	"psk/internal/table"
)

// incrConfig is the streaming test configuration over the Figure 3
// schema (Sex/ZipCode QIs, Illness confidential).
func incrConfig(t testing.TB, k, p, ts, workers int) Config {
	t.Helper()
	return Config{
		QIs:           []string{"Sex", "ZipCode"},
		Confidential:  []string{"Illness"},
		Hierarchies:   figure3Hierarchies(t),
		K:             k,
		P:             p,
		MaxSuppress:   ts,
		UseConditions: true,
		Workers:       workers,
	}
}

// streamTable builds a deterministic n-row table over the Figure 3
// schema with enough value variety that churn moves group statistics.
func streamTable(t testing.TB, rng *rand.Rand, n int) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = streamRow(rng, 0)
	}
	tbl, err := table.FromText(sch, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

var (
	streamZips = []string{"41076", "41099", "43102", "43103", "48201", "48202"}
	streamIlls = []string{"Flu", "Cold", "Asthma", "HIV"}
)

// streamRow samples one row; newValueOdds > 0 gives roughly 1-in-odds
// rows a never-before-seen ZipCode, exercising dictionary growth and
// the published-node code translation for new values.
func streamRow(rng *rand.Rand, newValueOdds int) []string {
	sex := "M"
	if rng.Intn(2) == 0 {
		sex = "F"
	}
	zip := streamZips[rng.Intn(len(streamZips))]
	if newValueOdds > 0 && rng.Intn(newValueOdds) == 0 {
		zip = fmt.Sprintf("4%04d", rng.Intn(10000))
	}
	return []string{sex, zip, streamIlls[rng.Intn(len(streamIlls))]}
}

// churn samples a delta batch against the session: nRetire distinct
// live ids and nAppend fresh rows.
func churn(rng *rand.Rand, s *Incremental, nAppend, nRetire int) ([][]string, []int) {
	retires := make([]int, 0, nRetire)
	seen := make(map[int]bool)
	for len(retires) < nRetire {
		id := rng.Intn(s.NumRows())
		if s.led.Live(id) && !seen[id] {
			seen[id] = true
			retires = append(retires, id)
		}
	}
	appends := make([][]string, nAppend)
	for i := range appends {
		appends[i] = streamRow(rng, 4)
	}
	return appends, retires
}

// renderTable renders schema and every cell to text, the byte-level
// form the equivalence tests compare masked tables in (dictionary code
// assignment is storage detail; values and row order are the contract).
func renderTable(tbl *table.Table) string {
	var b strings.Builder
	b.WriteString(strings.Join(tbl.Schema().Names(), ","))
	for r := 0; r < tbl.NumRows(); r++ {
		b.WriteByte('\n')
		for c := 0; c < tbl.Schema().Len(); c++ {
			if c > 0 {
				b.WriteByte(',')
			}
			b.WriteString(tbl.ColumnAt(c).Value(r).Str())
		}
	}
	return b.String()
}

// canonGroups canonicalizes statistics for cross-code-space comparison:
// QI codes are session-private in maintained statistics, so groups
// reduce to (size, confidential histograms) — the only inputs any
// verdict reads — sorted into a multiset.
func canonGroups(s *table.GroupStats) []string {
	out := make([]string, 0, len(s.Groups))
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.Size == 0 {
			continue
		}
		out = append(out, fmt.Sprintf("%d|%v", g.Size, g.Hists))
	}
	sort.Strings(out)
	return out
}

// freshNodeStats evaluates the node on a fresh scan of the session's
// live rows: generalize the snapshot, group, gate suppression, run the
// effective policy — the batch pipeline the incremental verdict must
// agree with byte for byte.
func freshNodeStats(t *testing.T, s *Incremental, node lattice.Node) (violating int, satisfied bool, stats *table.GroupStats) {
	t.Helper()
	snap, err := s.led.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.m.Apply(snap, node)
	if err != nil {
		t.Fatal(err)
	}
	stats, err = g.GroupStats(s.cfg.QIs, s.conf, 1)
	if err != nil {
		t.Fatal(err)
	}
	violating = stats.TuplesBelow(s.cfg.K)
	if violating > s.cfg.MaxSuppress {
		return violating, false, stats
	}
	bounds, err := searchBounds(snap, s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.cfg.effectivePolicy(bounds).Evaluate(core.StatsView{
		Stats: stats.SuppressBelow(s.cfg.K),
		Conf:  s.conf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return violating, res.Satisfied, stats
}

// TestIncrementalInitialPublishMatchesBatch: the first Republish must
// be byte-identical to running the fallback strategy directly on the
// same rows — node, verdict, suppression, stats, and the masked table —
// for all five strategies at worker counts 1 and 4.
func TestIncrementalInitialPublishMatchesBatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for fb := Strategy(0); fb < numStrategies; fb++ {
			t.Run(fmt.Sprintf("%s/w%d", fb, workers), func(t *testing.T) {
				cfg := incrConfig(t, 3, 2, 2, workers)
				im := figure3Table(t)
				s, err := OpenIncremental(im, cfg, fb)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.Republish()
				if err != nil {
					t.Fatal(err)
				}
				var want Result
				switch fb {
				case StrategySamarati:
					want, err = Samarati(im, cfg)
				case StrategyBottomUp, StrategyExhaustive, StrategyAllMinimal:
					var er ExhaustiveResult
					switch fb {
					case StrategyBottomUp:
						er, err = BottomUp(im, cfg)
					case StrategyExhaustive:
						er, err = Exhaustive(im, cfg)
					default:
						er, err = AllMinimal(im, cfg)
					}
					if err == nil && len(er.Minimal) > 0 {
						want = Result{Found: true, Node: er.Minimal[0].Node, Masked: er.Minimal[0].Masked,
							Suppressed: er.Minimal[0].Suppressed, Stats: er.Stats, StopReason: er.StopReason}
					}
				case StrategyIncognito:
					var ir IncognitoResult
					ir, err = Incognito(im, cfg)
					if err == nil && len(ir.Minimal) > 0 {
						want = Result{Found: true, Node: ir.Minimal[0].Node, Masked: ir.Minimal[0].Masked,
							Suppressed: ir.Minimal[0].Suppressed, Stats: ir.Stats, StopReason: ir.StopReason}
					}
				}
				if err != nil {
					t.Fatal(err)
				}
				if !want.Found {
					t.Fatalf("batch %s found nothing on the fixture", fb)
				}
				if !got.Found || !got.Node.Equal(want.Node) || got.Suppressed != want.Suppressed {
					t.Fatalf("initial publish (%+v node %v) differs from batch (%+v node %v)",
						got, got.Node, want, want.Node)
				}
				if got.Stats != want.Stats || got.StopReason != want.StopReason {
					t.Fatalf("stats/stop differ: %+v/%v vs %+v/%v", got.Stats, got.StopReason, want.Stats, want.StopReason)
				}
				if renderTable(got.Masked) != renderTable(want.Masked) {
					t.Fatal("masked tables differ between incremental initial publish and batch")
				}
				mat, supp, err := s.Materialize()
				if err != nil {
					t.Fatal(err)
				}
				if supp != want.Suppressed || renderTable(mat) != renderTable(want.Masked) {
					t.Fatal("Materialize differs from the batch masked table")
				}
			})
		}
	}
}

// TestIncrementalStreamMatchesFreshScan is the differential core: a
// long churn stream where, after every batch, the incremental verdict,
// suppression count, maintained statistics and materialized table must
// all agree with a fresh batch pipeline on the live rows.
func TestIncrementalStreamMatchesFreshScan(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			cfg := incrConfig(t, 3, 2, 8, workers)
			rec := obs.NewRecorder()
			cfg.Recorder = rec
			s, err := OpenIncremental(streamTable(t, rng, 300), cfg, StrategySamarati)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Republish(); err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 10; batch++ {
				appends, retires := churn(rng, s, 24, 12)
				if err := s.Apply(appends, retires); err != nil {
					t.Fatal(err)
				}
				res, err := s.Republish()
				if err != nil {
					t.Fatal(err)
				}
				if !res.Found {
					// Nothing satisfies: the batch oracle must agree.
					snap, err := s.led.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					cold, err := Samarati(snap, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if cold.Found {
						t.Fatalf("batch %d: incremental found nothing, batch found %v", batch, cold.Node)
					}
					continue
				}
				violating, satisfied, fresh := freshNodeStats(t, s, res.Node)
				if !satisfied {
					t.Fatalf("batch %d: incremental published %v, fresh scan rejects it", batch, res.Node)
				}
				if violating != res.Suppressed {
					t.Fatalf("batch %d: suppressed %d, fresh scan says %d", batch, res.Suppressed, violating)
				}
				ps := s.pubStats.Stats()
				if ps.NumRows != fresh.NumRows {
					t.Fatalf("batch %d: maintained NumRows %d, fresh %d", batch, ps.NumRows, fresh.NumRows)
				}
				gotGroups, wantGroups := canonGroups(ps), canonGroups(fresh)
				if len(gotGroups) != len(wantGroups) {
					t.Fatalf("batch %d: %d maintained groups, %d fresh", batch, len(gotGroups), len(wantGroups))
				}
				for i := range gotGroups {
					if gotGroups[i] != wantGroups[i] {
						t.Fatalf("batch %d: maintained group %q, fresh %q", batch, gotGroups[i], wantGroups[i])
					}
				}
				// The masked release must be the batch pipeline's bytes.
				mat, supp, err := s.Materialize()
				if err != nil {
					t.Fatal(err)
				}
				snap, err := s.led.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				g, err := s.m.Apply(snap, res.Node)
				if err != nil {
					t.Fatal(err)
				}
				want, wantSupp, within, err := s.m.SuppressWithin(g, cfg.K, cfg.MaxSuppress)
				if err != nil || !within {
					t.Fatalf("batch pipeline rejected the published node: within=%v err=%v", within, err)
				}
				if supp != wantSupp || renderTable(mat) != renderTable(want) {
					t.Fatalf("batch %d: materialized table differs from the batch pipeline", batch)
				}
			}
			rep := rec.Snapshot()
			if rep.Incremental.GroupsRecheck == 0 {
				t.Fatal("stream never took the O(changed-groups) fast path")
			}
			if rep.Incremental.ColdFallbacks == 0 {
				t.Fatal("initial publish did not count as a cold fallback")
			}
		})
	}
}

// TestIncrementalWorkerCountsAgree: two sessions fed identical batches
// at worker counts 1 and 4 must publish identical node sequences.
func TestIncrementalWorkerCountsAgree(t *testing.T) {
	open := func(workers int) *Incremental {
		rng := rand.New(rand.NewSource(9))
		s, err := OpenIncremental(streamTable(t, rng, 200), incrConfig(t, 4, 2, 6, workers), StrategySamarati)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s4 := open(1), open(4)
	rng := rand.New(rand.NewSource(10))
	for batch := 0; batch < 6; batch++ {
		if batch > 0 {
			appends, retires := churn(rng, s1, 30, 15)
			if err := s1.Apply(appends, retires); err != nil {
				t.Fatal(err)
			}
			if err := s4.Apply(appends, retires); err != nil {
				t.Fatal(err)
			}
		}
		r1, err := s1.Republish()
		if err != nil {
			t.Fatal(err)
		}
		r4, err := s4.Republish()
		if err != nil {
			t.Fatal(err)
		}
		if r1.Found != r4.Found || r1.Suppressed != r4.Suppressed ||
			(r1.Found && !r1.Node.Equal(r4.Node)) {
			t.Fatalf("batch %d: workers=1 got %+v (node %v), workers=4 got %+v (node %v)",
				batch, r1, r1.Node, r4, r4.Node)
		}
	}
}

// TestIncrementalRepairAscends engineers a violation with a satisfying
// ancestor: the session must climb from the incumbent — not search cold
// — and land on the first satisfying ancestor in deterministic node
// order, with the telemetry counting exactly one repair.
func TestIncrementalRepairAscends(t *testing.T) {
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	var rows [][]string
	for _, sex := range []string{"M", "F"} {
		for _, zip := range []string{"41076", "41099"} {
			for i := 0; i < 4; i++ {
				rows = append(rows, []string{sex, zip, streamIlls[i%len(streamIlls)]})
			}
		}
	}
	im, err := table.FromText(sch, rows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := incrConfig(t, 3, 1, 0, 1)
	rec := obs.NewRecorder()
	cfg.Recorder = rec
	s, err := OpenIncremental(im, cfg, StrategySamarati)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Republish()
	if err != nil {
		t.Fatal(err)
	}
	bottom := lattice.Node{0, 0}
	if !first.Found || !first.Node.Equal(bottom) {
		t.Fatalf("expected the bottom node to publish first, got %+v (node %v)", first, first.Node)
	}
	// Two rows in a brand-new zip: a sub-k group the zero suppression
	// budget cannot absorb at the incumbent or at any ancestor below
	// <Sex level 0, ZipCode level 2>.
	if err := s.Apply([][]string{{"M", "99999", "Flu"}, {"F", "99999", "Cold"}}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := s.Republish()
	if err != nil {
		t.Fatal(err)
	}
	want := lattice.Node{0, 2}
	if !res.Found || !res.Node.Equal(want) {
		t.Fatalf("repair published %v (found=%v), want %v", res.Node, res.Found, want)
	}
	if !res.Node.StrictGeneralizationOf(first.Node) {
		t.Fatal("repaired node is not an ancestor of the incumbent")
	}
	if _, satisfied, _ := freshNodeStats(t, s, res.Node); !satisfied {
		t.Fatal("fresh scan rejects the repaired node")
	}
	rep := rec.Snapshot()
	if rep.Incremental.RepairAscents != 1 {
		t.Fatalf("RepairAscents = %d, want 1", rep.Incremental.RepairAscents)
	}
	if rep.Incremental.ColdFallbacks != 1 {
		t.Fatalf("ColdFallbacks = %d, want 1 (the initial publish only)", rep.Incremental.ColdFallbacks)
	}
	// The next batch re-verdicts the repaired node in O(changed groups).
	if err := s.Apply([][]string{{"M", "99999", "Asthma"}}, nil); err != nil {
		t.Fatal(err)
	}
	again, err := s.Republish()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Found || !again.Node.Equal(want) {
		t.Fatalf("post-repair republish moved to %v (found=%v)", again.Node, again.Found)
	}
	if rec.Snapshot().Incremental.GroupsRecheck == 0 {
		t.Fatal("post-repair republish did not use the fast path")
	}
}

// TestIncrementalNotFoundClearsAndRecovers: when even the top node
// fails, the publication clears; a later batch that restores
// feasibility republishes cold.
func TestIncrementalNotFoundClearsAndRecovers(t *testing.T) {
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	rows := [][]string{
		{"M", "41076", "Flu"}, {"M", "41076", "Cold"}, {"M", "41076", "Asthma"},
		{"M", "41076", "Flu"}, {"M", "41076", "Cold"},
	}
	im, err := table.FromText(sch, rows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := incrConfig(t, 3, 1, 0, 1)
	rec := obs.NewRecorder()
	cfg.Recorder = rec
	s, err := OpenIncremental(im, cfg, StrategySamarati)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.Republish(); err != nil || !res.Found {
		t.Fatalf("initial publish: %+v, %v", res, err)
	}
	if err := s.Apply(nil, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Republish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || s.Published() != nil {
		t.Fatalf("2 live rows under k=3 published %v", res.Node)
	}
	if _, _, err := s.Materialize(); err == nil {
		t.Fatal("Materialize succeeded with nothing published")
	}
	if err := s.Apply([][]string{
		{"F", "41099", "Flu"}, {"F", "41099", "Cold"}, {"F", "41099", "Flu"}, {"M", "41076", "HIV"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	back, err := s.Republish()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Found {
		t.Fatal("recovered table did not republish")
	}
	if _, satisfied, _ := freshNodeStats(t, s, back.Node); !satisfied {
		t.Fatal("fresh scan rejects the recovered node")
	}
	rep := rec.Snapshot()
	if rep.Incremental.ColdFallbacks != 3 {
		t.Fatalf("ColdFallbacks = %d, want 3 (initial, failed repair fallback, recovery)", rep.Incremental.ColdFallbacks)
	}
	if rep.Incremental.RepairAscents != 1 {
		t.Fatalf("RepairAscents = %d, want 1", rep.Incremental.RepairAscents)
	}
}

// TestOpenIncrementalValidation: ablation flags and unknown strategies
// are rejected at open, not at first use.
func TestOpenIncrementalValidation(t *testing.T) {
	im := figure3Table(t)
	base := incrConfig(t, 3, 1, 2, 1)

	cfg := base
	cfg.DisableCache = true
	if _, err := OpenIncremental(im, cfg, StrategySamarati); err == nil {
		t.Fatal("DisableCache accepted")
	}
	cfg = base
	cfg.DisableRollup = true
	if _, err := OpenIncremental(im, cfg, StrategySamarati); err == nil {
		t.Fatal("DisableRollup accepted")
	}
	if _, err := OpenIncremental(im, base, numStrategies); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	cfg = base
	cfg.K = 1
	if _, err := OpenIncremental(im, cfg, StrategySamarati); err == nil {
		t.Fatal("k = 1 accepted")
	}
}

// TestIncrementalApplyErrors: pre-mutation failures leave the session
// usable; each row is absorbed fully or not at all.
func TestIncrementalApplyErrors(t *testing.T) {
	s, err := OpenIncremental(figure3Table(t), incrConfig(t, 3, 2, 2, 1), StrategySamarati)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(nil, []int{99}); err == nil {
		t.Fatal("retire of an unknown id accepted")
	}
	if err := s.Apply([][]string{{"M", "41076"}}, nil); err == nil {
		t.Fatal("short row accepted")
	}
	if err := s.Apply(nil, []int{3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(nil, []int{3}); err == nil {
		t.Fatal("double retire accepted")
	}
	// The session stays live after rejected batches.
	if err := s.Apply([][]string{{"F", "41076", "Measles"}}, nil); err != nil {
		t.Fatal(err)
	}
	if res, err := s.Republish(); err != nil || !res.Found {
		t.Fatalf("republish after rejected batches: %+v, %v", res, err)
	}
	if s.NumLive() != 10 {
		t.Fatalf("NumLive = %d, want 10", s.NumLive())
	}
}
