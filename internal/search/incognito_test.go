package search

import (
	"testing"

	"psk/internal/core"
	"psk/internal/dataset"
)

// TestIncognitoMatchesExhaustive: the subset-pruned search must return
// exactly the p-k-minimal antichain of the assumption-free Exhaustive.
func TestIncognitoMatchesExhaustive(t *testing.T) {
	tbl := figure3Table(t)
	for _, p := range []int{1, 2} {
		for ts := 0; ts <= 10; ts += 2 {
			cfg := kOnlyConfig(t, ts)
			cfg.P = p
			ex, err := Exhaustive(tbl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := Incognito(tbl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			exSet := make(map[string]bool)
			for _, m := range ex.Minimal {
				exSet[m.Node.Key()] = true
			}
			if len(inc.Minimal) != len(exSet) {
				t.Errorf("p=%d TS=%d: incognito found %d minimal, exhaustive %d",
					p, ts, len(inc.Minimal), len(exSet))
				continue
			}
			for _, m := range inc.Minimal {
				if !exSet[m.Node.Key()] {
					t.Errorf("p=%d TS=%d: spurious minimal %v", p, ts, m.Node)
				}
			}
			if inc.SubsetsEvaluated != 3 { // {S}, {Z}, {S,Z}
				t.Errorf("subsets evaluated = %d, want 3", inc.SubsetsEvaluated)
			}
		}
	}
}

// TestIncognitoOnAdult: the 4-attribute Adult lattice exercises the
// 15-subset pruning path; results must agree with AllMinimal, and the
// outputs must satisfy the property.
func TestIncognitoOnAdult(t *testing.T) {
	src, err := dataset.Generate(5000, 2006)
	if err != nil {
		t.Fatal(err)
	}
	im, err := src.Sample(400, 17)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             3,
		P:             2,
		MaxSuppress:   8,
		UseConditions: true,
	}
	inc, err := Incognito(im, cfg)
	if err != nil {
		t.Fatalf("Incognito: %v", err)
	}
	am, err := AllMinimal(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inc.SubsetsEvaluated != 15 {
		t.Errorf("subsets = %d, want 15 (2^4 - 1)", inc.SubsetsEvaluated)
	}
	amSet := make(map[string]bool)
	for _, m := range am.Minimal {
		amSet[m.Node.Key()] = true
	}
	if len(inc.Minimal) != len(amSet) {
		t.Fatalf("incognito %d minimal vs tagged %d", len(inc.Minimal), len(amSet))
	}
	for _, m := range inc.Minimal {
		if !amSet[m.Node.Key()] {
			t.Errorf("node %v not in AllMinimal set", m.Node)
		}
		chk, err := core.Check(m.Masked, cfg.QIs, cfg.Confidential, cfg.P, cfg.K)
		if err != nil || !chk.Satisfied {
			t.Errorf("minimal node %v output fails property: %+v, %v", m.Node, chk, err)
		}
	}
	// Minimal nodes are sorted bottom-up.
	for i := 1; i < len(inc.Minimal); i++ {
		if inc.Minimal[i].Node.Height() < inc.Minimal[i-1].Node.Height() {
			t.Error("minimal nodes not height-sorted")
		}
	}
}

func TestIncognitoInfeasible(t *testing.T) {
	tbl := figure3Table(t)
	cfg := kOnlyConfig(t, 10)
	cfg.P = 4
	cfg.K = 4
	res, reason, err := FindAnonymousIncognito(tbl, cfg)
	if err != nil || reason != core.FailedCondition1 || len(res.Minimal) != 0 {
		t.Errorf("infeasible: %v, %v, %v", res.Minimal, reason, err)
	}
	// Satisfiable case.
	_, reason, err = FindAnonymousIncognito(tbl, kOnlyConfig(t, 10))
	if err != nil || reason != core.Satisfied {
		t.Errorf("satisfied reason = %v, %v", reason, err)
	}
	// Unsatisfiable within budget.
	cfg = kOnlyConfig(t, 0)
	cfg.K = 11
	_, reason, err = FindAnonymousIncognito(tbl, cfg)
	if err != nil || reason != core.NotPSensitive {
		t.Errorf("unsatisfiable reason = %v, %v", reason, err)
	}
}

func TestIncognitoValidation(t *testing.T) {
	tbl := figure3Table(t)
	bad := kOnlyConfig(t, 0)
	bad.K = 1
	if _, err := Incognito(tbl, bad); err == nil {
		t.Error("k=1 accepted")
	}
}

// TestIncognitoPrunes: on a workload where low nodes fail, the subset
// pass must prune some full-lattice candidates.
func TestIncognitoPrunes(t *testing.T) {
	src, err := dataset.Generate(5000, 2006)
	if err != nil {
		t.Fatal(err)
	}
	im, err := src.Sample(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := dataset.Hierarchies()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QIs:           dataset.QIs(),
		Confidential:  dataset.Confidential(),
		Hierarchies:   hs,
		K:             5,
		P:             1,
		MaxSuppress:   0,
		UseConditions: true,
	}
	inc, err := Incognito(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Exhaustive(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same answers.
	if len(inc.Minimal) != len(ex.Minimal) {
		t.Errorf("minimal counts differ: %d vs %d", len(inc.Minimal), len(ex.Minimal))
	}
	if inc.PrunedBySubsets == 0 {
		t.Log("no subset pruning occurred on this sample (acceptable but unexpected)")
	}
}
