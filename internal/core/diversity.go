package core

import (
	"fmt"
	"math"

	"psk/internal/table"
)

// This file implements the two follow-on privacy models most often
// compared against p-sensitive k-anonymity in the literature it
// spawned: l-diversity (Machanavajjhala et al. 2006) and t-closeness
// (Li et al. 2007). They are not part of the paper itself but give the
// library's users — and the benchmark harness — reference points for
// how the models relate: distinct l-diversity with l = p is exactly
// p-sensitivity for a single confidential attribute.

// IsDistinctLDiverse reports whether every QI-group contains at least l
// distinct values of the confidential attribute. For one confidential
// attribute this coincides with p-sensitivity (p = l) without the
// k-anonymity side condition.
func IsDistinctLDiverse(t *table.Table, qis []string, confidential string, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("core: l must be >= 1, got %d", l)
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return false, err
	}
	for _, g := range groups {
		d, err := t.DistinctInRows(confidential, g.Rows)
		if err != nil {
			return false, err
		}
		if d < l {
			return false, nil
		}
	}
	return true, nil
}

// IsEntropyLDiverse reports whether every QI-group's confidential value
// distribution has entropy at least log(l).
func IsEntropyLDiverse(t *table.Table, qis []string, confidential string, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("core: l must be >= 1, got %d", l)
	}
	col, err := t.Column(confidential)
	if err != nil {
		return false, err
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return false, err
	}
	threshold := math.Log(float64(l))
	for _, g := range groups {
		counts := make(map[int]int)
		for _, r := range g.Rows {
			counts[col.Code(r)]++
		}
		entropy := 0.0
		n := float64(len(g.Rows))
		for _, c := range counts {
			pr := float64(c) / n
			entropy -= pr * math.Log(pr)
		}
		// Tolerate floating error at the boundary (uniform groups of
		// exactly l values have entropy == log l).
		if entropy+1e-12 < threshold {
			return false, nil
		}
	}
	return true, nil
}

// TCloseness computes the maximum over QI-groups of the variational
// distance (half L1, the equal-distance EMD) between the group's
// confidential value distribution and the whole-table distribution. A
// table is t-close when the returned value is <= t.
func TCloseness(t *table.Table, qis []string, confidential string) (float64, error) {
	col, err := t.Column(confidential)
	if err != nil {
		return 0, err
	}
	if t.NumRows() == 0 {
		return 0, nil
	}
	global := make(map[int]float64)
	for i := 0; i < t.NumRows(); i++ {
		global[col.Code(i)]++
	}
	n := float64(t.NumRows())
	for k := range global {
		global[k] /= n
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, g := range groups {
		local := make(map[int]float64)
		for _, r := range g.Rows {
			local[col.Code(r)]++
		}
		gn := float64(len(g.Rows))
		dist := 0.0
		for code, p := range global {
			q := local[code] / gn
			dist += math.Abs(p - q)
		}
		// Values present locally are always present globally, so the sum
		// above covers the full support.
		dist /= 2
		if dist > worst {
			worst = dist
		}
	}
	return worst, nil
}

// CheckPAlpha tests (p, alpha)-sensitive k-anonymity, the frequency-
// bounded refinement of p-sensitivity from the follow-on literature:
// in addition to k-anonymity and p distinct values per (group,
// confidential attribute) pair, the relative frequency of the most
// common confidential value within each group must not exceed alpha.
// It subsumes the plain property (alpha = 1) and rules out groups like
// {99 x Cancer, 1 x Flu} that p-sensitivity alone admits.
func CheckPAlpha(t *table.Table, qis, confidential []string, p, k int, alpha float64) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if alpha <= 0 || alpha > 1 {
		return false, fmt.Errorf("core: alpha must be in (0, 1], got %g", alpha)
	}
	if len(confidential) == 0 {
		return false, fmt.Errorf("core: no confidential attributes")
	}
	cols := make([]table.Column, len(confidential))
	for i, attr := range confidential {
		c, err := t.Column(attr)
		if err != nil {
			return false, err
		}
		cols[i] = c
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return false, err
	}
	for _, g := range groups {
		if g.Size() < k {
			return false, nil
		}
	}
	for _, g := range groups {
		for _, col := range cols {
			counts := make(map[int]int, g.Size())
			for _, r := range g.Rows {
				counts[col.Code(r)]++
			}
			if len(counts) < p {
				return false, nil
			}
			max := 0
			for _, c := range counts {
				if c > max {
					max = c
				}
			}
			if float64(max) > alpha*float64(g.Size()) {
				return false, nil
			}
		}
	}
	return true, nil
}
