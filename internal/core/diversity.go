package core

import (
	"fmt"

	"psk/internal/table"
)

// This file exposes the two follow-on privacy models most often
// compared against p-sensitive k-anonymity in the literature it
// spawned: l-diversity (Machanavajjhala et al. 2006) and t-closeness
// (Li et al. 2007). They are not part of the paper itself but give the
// library's users — and the benchmark harness — reference points for
// how the models relate: distinct l-diversity with l = p is exactly
// p-sensitivity for a single confidential attribute. Each function is a
// thin wrapper over the statistics path; the group scans live in
// policy.go.

// IsDistinctLDiverse reports whether every QI-group contains at least l
// distinct values of the confidential attribute. For one confidential
// attribute this coincides with p-sensitivity (p = l) without the
// k-anonymity side condition.
func IsDistinctLDiverse(t *table.Table, qis []string, confidential string, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("core: l must be >= 1, got %d", l)
	}
	s, err := t.GroupStats(qis, []string{confidential}, 1)
	if err != nil {
		return false, err
	}
	return DistinctLDiverseStats(s, 0, l)
}

// IsEntropyLDiverse reports whether every QI-group's confidential value
// distribution has entropy at least log(l).
func IsEntropyLDiverse(t *table.Table, qis []string, confidential string, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("core: l must be >= 1, got %d", l)
	}
	s, err := t.GroupStats(qis, []string{confidential}, 1)
	if err != nil {
		return false, err
	}
	return EntropyLDiverseStats(s, 0, l)
}

// TCloseness computes the maximum over QI-groups of the variational
// distance (half L1, the equal-distance EMD) between the group's
// confidential value distribution and the whole-table distribution. A
// table is t-close when the returned value is <= t.
func TCloseness(t *table.Table, qis []string, confidential string) (float64, error) {
	s, err := t.GroupStats(qis, []string{confidential}, 1)
	if err != nil {
		return 0, err
	}
	return TClosenessStats(s, 0)
}

// CheckPAlpha tests (p, alpha)-sensitive k-anonymity, the frequency-
// bounded refinement of p-sensitivity from the follow-on literature:
// in addition to k-anonymity and p distinct values per (group,
// confidential attribute) pair, the relative frequency of the most
// common confidential value within each group must not exceed alpha.
// It subsumes the plain property (alpha = 1) and rules out groups like
// {99 x Cancer, 1 x Flu} that p-sensitivity alone admits.
func CheckPAlpha(t *table.Table, qis, confidential []string, p, k int, alpha float64) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if alpha <= 0 || alpha > 1 {
		return false, fmt.Errorf("core: alpha must be in (0, 1], got %g", alpha)
	}
	if len(confidential) == 0 {
		return false, fmt.Errorf("core: no confidential attributes")
	}
	s, err := t.GroupStats(qis, confidential, 1)
	if err != nil {
		return false, err
	}
	return CheckPAlphaStats(s, p, k, alpha)
}
