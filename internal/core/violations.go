package core

import (
	"fmt"
	"strings"

	"psk/internal/table"
)

// GroupViolation describes one QI-group that breaks p-sensitive
// k-anonymity: either it is smaller than k, or some confidential
// attribute has fewer than p distinct values inside it. Data owners use
// this to see *where* a candidate masking leaks, not just that it does.
type GroupViolation struct {
	// Key holds the group's QI values in QI order.
	Key []table.Value
	// Size is the number of tuples in the group.
	Size int
	// TooSmall is true when Size < k (a k-anonymity violation).
	TooSmall bool
	// LowDiversity maps each confidential attribute with fewer than p
	// distinct values to its observed distinct count.
	LowDiversity map[string]int
}

// KeyString renders the group key.
func (v GroupViolation) KeyString() string {
	parts := make([]string, len(v.Key))
	for i, k := range v.Key {
		parts[i] = k.Str()
	}
	return strings.Join(parts, ", ")
}

// groupKey recovers a group's QI values from its representative row.
func groupKey(cols []table.Column, g *table.GroupStat) []table.Value {
	key := make([]table.Value, len(cols))
	for i, c := range cols {
		key[i] = c.Value(g.Rep)
	}
	return key
}

// qiColumns resolves the QI columns the group keys are rendered from.
func qiColumns(t *table.Table, qis []string) ([]table.Column, error) {
	cols := make([]table.Column, len(qis))
	for i, n := range qis {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	return cols, nil
}

// Violations lists every QI-group violating p-sensitive k-anonymity,
// in group first-appearance order. A nil slice means the table has the
// property. This is the diagnostic companion to Check: the same group
// statistics the policy verdicts run on, with full reporting instead of
// the policies' first-violation early exit (group keys come from each
// group's representative row).
func Violations(t *table.Table, qis, confidential []string, p, k int) ([]GroupViolation, error) {
	if err := validatePK(p, k); err != nil {
		return nil, err
	}
	if len(confidential) == 0 {
		return nil, fmt.Errorf("core: no confidential attributes")
	}
	s, err := t.GroupStats(qis, confidential, 1)
	if err != nil {
		return nil, err
	}
	cols, err := qiColumns(t, qis)
	if err != nil {
		return nil, err
	}
	var out []GroupViolation
	for gi := range s.Groups {
		g := &s.Groups[gi]
		v := GroupViolation{Size: g.Size}
		if g.Size < k {
			v.TooSmall = true
		}
		for a, attr := range confidential {
			if d := g.Hists[a].Distinct(); d < p {
				if v.LowDiversity == nil {
					v.LowDiversity = make(map[string]int)
				}
				v.LowDiversity[attr] = d
			}
		}
		if v.TooSmall || len(v.LowDiversity) > 0 {
			v.Key = groupKey(cols, g)
			out = append(out, v)
		}
	}
	return out, nil
}

// GroupProfile summarizes one QI-group of a masked microdata: its size
// and the per-confidential-attribute distinct counts.
type GroupProfile struct {
	Key      []table.Value
	Size     int
	Distinct map[string]int
}

// Profile computes the profile of every QI-group, in first-appearance
// order. Sensitivity(t) equals the minimum Distinct value over all
// profiles; MinGroupSize(t) the minimum Size.
func Profile(t *table.Table, qis, confidential []string) ([]GroupProfile, error) {
	s, err := t.GroupStats(qis, confidential, 1)
	if err != nil {
		return nil, err
	}
	cols, err := qiColumns(t, qis)
	if err != nil {
		return nil, err
	}
	out := make([]GroupProfile, 0, len(s.Groups))
	for gi := range s.Groups {
		g := &s.Groups[gi]
		p := GroupProfile{Key: groupKey(cols, g), Size: g.Size, Distinct: make(map[string]int, len(confidential))}
		for a, attr := range confidential {
			p.Distinct[attr] = g.Hists[a].Distinct()
		}
		out = append(out, p)
	}
	return out, nil
}
