package core

import (
	"testing"

	"psk/internal/hierarchy"
	"psk/internal/table"
)

// illnessHierarchy groups diseases into categories: the similarity-
// attack scenario.
func illnessHierarchy(t *testing.T) hierarchy.Hierarchy {
	t.Helper()
	h, err := hierarchy.NewTree("Illness", map[string][]string{
		"Colon Cancer":   {"Cancer", "Any"},
		"Lung Cancer":    {"Cancer", "Any"},
		"Stomach Cancer": {"Cancer", "Any"},
		"Flu":            {"Infection", "Any"},
		"HIV":            {"Infection", "Any"},
		"Diabetes":       {"Chronic", "Any"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func similarityTable(t *testing.T, illnesses []string) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Zip", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	rows := make([][]string, len(illnesses))
	for i, ill := range illnesses {
		rows[i] = []string{"41076", ill}
	}
	tbl, err := table.FromText(sch, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestSimilarityAttackDetected: three distinct cancers satisfy plain
// 3-sensitivity but fail extended 2-sensitivity at the category level.
func TestSimilarityAttackDetected(t *testing.T) {
	tbl := similarityTable(t, []string{"Colon Cancer", "Lung Cancer", "Stomach Cancer"})
	qis := []string{"Zip"}
	cfg := ExtendedConfig{Hierarchy: illnessHierarchy(t), MaxLevel: 1}

	// Plain p-sensitivity is fooled: 3 distinct ground values.
	plain, err := CheckBasic(tbl, qis, []string{"Illness"}, 3, 3)
	if err != nil || !plain {
		t.Fatalf("plain 3-sensitivity = %v, %v; want true", plain, err)
	}
	// Extended 2-sensitivity catches the all-cancer group.
	ext, err := CheckExtended(tbl, qis, "Illness", 2, 3, cfg)
	if err != nil {
		t.Fatalf("CheckExtended: %v", err)
	}
	if ext {
		t.Error("extended check should fail: every value generalizes to Cancer")
	}
	s, err := ExtendedSensitivity(tbl, qis, "Illness", cfg)
	if err != nil || s != 1 {
		t.Errorf("extended sensitivity = %d, %v; want 1", s, err)
	}
}

// TestExtendedSatisfied: values from different categories pass.
func TestExtendedSatisfied(t *testing.T) {
	tbl := similarityTable(t, []string{"Colon Cancer", "Flu", "Diabetes"})
	qis := []string{"Zip"}
	cfg := ExtendedConfig{Hierarchy: illnessHierarchy(t), MaxLevel: 1}
	ok, err := CheckExtended(tbl, qis, "Illness", 3, 3, cfg)
	if err != nil || !ok {
		t.Errorf("extended 3-sensitivity = %v, %v; want true", ok, err)
	}
	s, err := ExtendedSensitivity(tbl, qis, "Illness", cfg)
	if err != nil || s != 3 {
		t.Errorf("extended sensitivity = %d, %v; want 3", s, err)
	}
}

// TestExtendedRootLevelExempt: at the root everything is one label, so
// including it would make the property unsatisfiable; the default
// MaxLevel (height - 1) must exempt it.
func TestExtendedRootLevelExempt(t *testing.T) {
	tbl := similarityTable(t, []string{"Colon Cancer", "Flu", "Diabetes"})
	cfg := ExtendedConfig{Hierarchy: illnessHierarchy(t), MaxLevel: -1}
	if cfg.maxLevel() != 1 {
		t.Fatalf("default MaxLevel = %d, want 1", cfg.maxLevel())
	}
	ok, err := CheckExtended(tbl, []string{"Zip"}, "Illness", 2, 3, cfg)
	if err != nil || !ok {
		t.Errorf("check with default MaxLevel = %v, %v", ok, err)
	}
	// Forcing the root level makes p=2 impossible.
	cfg.MaxLevel = 2
	ok, err = CheckExtended(tbl, []string{"Zip"}, "Illness", 2, 3, cfg)
	if err != nil || ok {
		t.Errorf("root-level check = %v, %v; want false", ok, err)
	}
}

func TestExtendedKAnonymityGate(t *testing.T) {
	// Two singleton groups: fails k=2 regardless of diversity.
	sch := table.MustSchema(
		table.Field{Name: "Zip", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"41076", "Flu"}, {"43102", "Diabetes"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CheckExtended(tbl, []string{"Zip"}, "Illness", 1, 2,
		ExtendedConfig{Hierarchy: illnessHierarchy(t), MaxLevel: 0})
	if err != nil || ok {
		t.Errorf("k gate = %v, %v; want false", ok, err)
	}
}

func TestExtendedValidation(t *testing.T) {
	tbl := similarityTable(t, []string{"Flu", "HIV", "Diabetes"})
	h := illnessHierarchy(t)
	if _, err := CheckExtended(tbl, []string{"Zip"}, "Illness", 0, 2, ExtendedConfig{Hierarchy: h}); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := CheckExtended(tbl, []string{"Zip"}, "Illness", 2, 2, ExtendedConfig{}); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := CheckExtended(tbl, []string{"Zip"}, "Other", 2, 2, ExtendedConfig{Hierarchy: h}); err == nil {
		t.Error("attribute mismatch accepted")
	}
	if _, err := CheckExtended(tbl, []string{"Zip"}, "Illness", 2, 2,
		ExtendedConfig{Hierarchy: h, MaxLevel: 9}); err == nil {
		t.Error("MaxLevel beyond height accepted")
	}
	if _, err := ExtendedSensitivity(tbl, []string{"Zip"}, "Illness", ExtendedConfig{}); err == nil {
		t.Error("sensitivity with nil hierarchy accepted")
	}
	// Unknown ground value surfaces the hierarchy error (two rows so
	// the k-anonymity gate passes and the hierarchy is consulted).
	bad := similarityTable(t, []string{"Mystery", "Mystery"})
	if _, err := CheckExtended(bad, []string{"Zip"}, "Illness", 1, 2,
		ExtendedConfig{Hierarchy: h, MaxLevel: 1}); err == nil {
		t.Error("unknown ground value accepted")
	}
	empty := tbl.Filter(func(int) bool { return false })
	s, err := ExtendedSensitivity(empty, []string{"Zip"}, "Illness", ExtendedConfig{Hierarchy: h})
	if err != nil || s != 0 {
		t.Errorf("empty sensitivity = %d, %v", s, err)
	}
}

func TestViolationsReporting(t *testing.T) {
	tbl := table3(t)
	// p=2, k=3: group 1 (age 20) has constant Income.
	vs, err := Violations(tbl, patientQIs, patientConf, 2, 3)
	if err != nil {
		t.Fatalf("Violations: %v", err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	v := vs[0]
	if v.TooSmall {
		t.Error("group marked too small; it has 3 members")
	}
	if v.LowDiversity["Income"] != 1 {
		t.Errorf("low diversity = %v", v.LowDiversity)
	}
	if v.Size != 3 {
		t.Errorf("size = %d", v.Size)
	}
	if v.KeyString() == "" {
		t.Error("empty key string")
	}

	// k=4: both groups now violate (sizes 3 and 4; first too small).
	vs, err = Violations(tbl, patientQIs, patientConf, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tooSmall := 0
	for _, v := range vs {
		if v.TooSmall {
			tooSmall++
		}
	}
	if tooSmall != 1 {
		t.Errorf("tooSmall groups = %d, want 1", tooSmall)
	}

	// A satisfying table yields nil.
	fixed := table3Fixed(t)
	vs, err = Violations(fixed, patientQIs, patientConf, 2, 3)
	if err != nil || len(vs) != 0 {
		t.Errorf("violations on satisfying table = %v, %v", vs, err)
	}

	// Validation.
	if _, err := Violations(tbl, patientQIs, nil, 2, 3); err == nil {
		t.Error("no confidential attributes accepted")
	}
	if _, err := Violations(tbl, patientQIs, patientConf, 0, 3); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestProfile(t *testing.T) {
	tbl := table3(t)
	ps, err := Profile(tbl, patientQIs, patientConf)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if len(ps) != 2 {
		t.Fatalf("profiles = %d, want 2", len(ps))
	}
	if ps[0].Size != 3 || ps[0].Distinct["Illness"] != 2 || ps[0].Distinct["Income"] != 1 {
		t.Errorf("group 1 profile = %+v", ps[0])
	}
	if ps[1].Size != 4 || ps[1].Distinct["Income"] != 2 {
		t.Errorf("group 2 profile = %+v", ps[1])
	}
	// Consistency with Sensitivity and MinGroupSize.
	s, _ := Sensitivity(tbl, patientQIs, patientConf)
	min := ps[0].Distinct["Income"]
	for _, p := range ps {
		for _, d := range p.Distinct {
			if d < min {
				min = d
			}
		}
	}
	if s != min {
		t.Errorf("Sensitivity %d != min profile distinct %d", s, min)
	}
	if _, err := Profile(tbl, []string{"Nope"}, patientConf); err == nil {
		t.Error("unknown QI accepted")
	}
}

func TestCheckPAlpha(t *testing.T) {
	// A 3-anonymous group {Cancer x2, Flu x1}: 2 distinct values, but
	// the dominant value holds 2/3 of the group.
	sch := table.MustSchema(
		table.Field{Name: "Zip", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"41076", "Cancer"}, {"41076", "Cancer"}, {"41076", "Flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	qis := []string{"Zip"}
	conf := []string{"Illness"}

	// alpha = 1 degenerates to plain p-sensitivity.
	ok, err := CheckPAlpha(tbl, qis, conf, 2, 3, 1)
	if err != nil || !ok {
		t.Errorf("alpha=1: %v, %v; want true", ok, err)
	}
	plain, _ := CheckBasic(tbl, qis, conf, 2, 3)
	if ok != plain {
		t.Error("alpha=1 disagrees with CheckBasic")
	}
	// alpha = 0.5 rejects the 2/3-dominant group.
	ok, err = CheckPAlpha(tbl, qis, conf, 2, 3, 0.5)
	if err != nil || ok {
		t.Errorf("alpha=0.5: %v, %v; want false", ok, err)
	}
	// alpha = 0.7 admits it (2/3 <= 0.7).
	ok, err = CheckPAlpha(tbl, qis, conf, 2, 3, 0.7)
	if err != nil || !ok {
		t.Errorf("alpha=0.7: %v, %v; want true", ok, err)
	}
	// p gate still applies.
	ok, _ = CheckPAlpha(tbl, qis, conf, 3, 3, 1)
	if ok {
		t.Error("p=3 with 2 distinct values accepted")
	}
	// k gate.
	ok, _ = CheckPAlpha(tbl.Head(2), qis, conf, 2, 3, 1)
	if ok {
		t.Error("undersized group accepted")
	}
	// Validation.
	if _, err := CheckPAlpha(tbl, qis, conf, 2, 3, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := CheckPAlpha(tbl, qis, conf, 2, 3, 1.5); err == nil {
		t.Error("alpha>1 accepted")
	}
	if _, err := CheckPAlpha(tbl, qis, nil, 2, 3, 1); err == nil {
		t.Error("no confidential attributes accepted")
	}
	if _, err := CheckPAlpha(tbl, qis, []string{"Missing"}, 2, 3, 1); err == nil {
		t.Error("missing attribute accepted")
	}
	if _, err := CheckPAlpha(tbl, qis, conf, 0, 3, 1); err == nil {
		t.Error("p=0 accepted")
	}
}

// TestExtendedSensitivityBelowPlain: category-level diversity can only
// be lower than value-level diversity.
func TestExtendedSensitivityBelowPlain(t *testing.T) {
	tbl := similarityTable(t, []string{"Colon Cancer", "Lung Cancer", "Flu", "HIV", "Diabetes"})
	qis := []string{"Zip"}
	plain, err := Sensitivity(tbl, qis, []string{"Illness"})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtendedSensitivity(tbl, qis, "Illness",
		ExtendedConfig{Hierarchy: illnessHierarchy(t), MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ext > plain {
		t.Errorf("extended sensitivity %d > plain %d", ext, plain)
	}
	if plain != 5 || ext != 3 {
		t.Errorf("plain=%d ext=%d, want 5/3", plain, ext)
	}
}
