package core

import (
	"fmt"
	"math"

	"psk/internal/table"
)

// MaxP computes the first necessary condition's bound (Condition 1): the
// minimum over confidential attributes of the number of distinct values.
// No masked microdata derived from t can be p-sensitive for p > MaxP.
func MaxP(t *table.Table, confidential []string) (int, error) {
	if len(confidential) == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	min := -1
	for _, attr := range confidential {
		s, err := t.DistinctCount(attr)
		if err != nil {
			return 0, err
		}
		if min == -1 || s < min {
			min = s
		}
	}
	return min, nil
}

// MaxGroups computes the second necessary condition's bound (Condition
// 2): the maximum number of distinct QI-value combinations a masked
// microdata derived from t may contain while still admitting p distinct
// confidential values in every group:
//
//	maxGroups = min_{i=1..p-1} floor((n - cf_{p-i}) / i)
//
// For p == 1 the condition is vacuous and MaxGroups returns n (every
// tuple may be its own group). It is the caller's responsibility to
// first establish p <= MaxP; indices past the defined cf range are
// rejected.
func MaxGroups(t *table.Table, confidential []string, p int) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: p must be >= 1, got %d", p)
	}
	n := t.NumRows()
	if p == 1 {
		return n, nil
	}
	cf, err := CFMax(t, confidential)
	if err != nil {
		return 0, err
	}
	if p-1 > len(cf) {
		return 0, fmt.Errorf("core: p = %d exceeds the defined cumulative frequency range (maxP = %d)", p, len(cf))
	}
	best := math.MaxInt
	for i := 1; i <= p-1; i++ {
		// cf is 0-indexed; the paper's cf_{p-i} is cf[p-i-1].
		v := (n - cf[p-i-1]) / i
		if v < best {
			best = v
		}
	}
	if best < 0 {
		best = 0
	}
	return best, nil
}

// Bounds packages the two necessary-condition values. Theorems 1 and 2
// prove that bounds computed on the initial microdata remain upper
// bounds for every masked microdata derived from it by full-domain
// generalization followed by suppression, so a search algorithm computes
// them once and reuses them at every lattice node.
type Bounds struct {
	// MaxP is Condition 1's bound: the largest feasible p.
	MaxP int
	// MaxGroups is Condition 2's bound for the p the bounds were
	// computed with: the largest admissible number of QI-groups.
	MaxGroups int
	// P is the sensitivity level MaxGroups was computed for.
	P int
}

// ComputeBounds evaluates both necessary conditions on the (initial)
// microdata for a target p. If p exceeds MaxP, the returned bounds have
// Feasible() == false and MaxGroups is 0.
func ComputeBounds(t *table.Table, confidential []string, p int) (Bounds, error) {
	maxP, err := MaxP(t, confidential)
	if err != nil {
		return Bounds{}, err
	}
	b := Bounds{MaxP: maxP, P: p}
	if p > maxP {
		return b, nil
	}
	b.MaxGroups, err = MaxGroups(t, confidential, p)
	if err != nil {
		return Bounds{}, err
	}
	return b, nil
}

// Feasible reports whether Condition 1 admits the target p at all.
func (b Bounds) Feasible() bool { return b.P <= b.MaxP }
