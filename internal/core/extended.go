package core

import (
	"fmt"

	"psk/internal/hierarchy"
	"psk/internal/table"
)

// Extended p-sensitivity (in the spirit of Campan and Truta's follow-up
// "Extended P-Sensitive K-Anonymity"): plain p-sensitivity counts
// distinct confidential *values*, which leaves the similarity attack
// open — a group holding {Colon Cancer, Lung Cancer, Stomach Cancer}
// has three distinct values, yet an intruder still learns "cancer".
// The extended property equips the confidential attribute with its own
// value hierarchy and requires the group's values to remain at least
// p-diverse after generalization to every level below the root: the
// values must come from p different categories at every granularity at
// which categories are meaningful.

// ExtendedConfig configures the extended check for one confidential
// attribute.
type ExtendedConfig struct {
	// Hierarchy is the value generalization hierarchy over the
	// confidential attribute.
	Hierarchy hierarchy.Hierarchy
	// MaxLevel is the highest hierarchy level at which diversity is
	// still required; 0 means "ground values only" (plain
	// p-sensitivity). Levels above MaxLevel — typically the root, where
	// everything collapses to one label — are exempt. Negative values
	// default to Hierarchy.Height() - 1.
	MaxLevel int
}

func (c ExtendedConfig) maxLevel() int {
	if c.MaxLevel >= 0 {
		return c.MaxLevel
	}
	return c.Hierarchy.Height() - 1
}

// ConfLevelMaps resolves a confidential-attribute value hierarchy into
// the per-level code translations the statistics path consumes:
// maps[lvl] translates the table's ground confidential codes into the
// codes of their level-lvl labels, for every level 0 through maxLevel.
// Building the maps visits each distinct ground value once per level —
// afterwards every extended verdict is histogram-only.
func ConfLevelMaps(t *table.Table, confidential string, h hierarchy.Hierarchy, maxLevel int) ([]*table.CodeMap, error) {
	base, err := t.Column(confidential)
	if err != nil {
		return nil, err
	}
	maps := make([]*table.CodeMap, maxLevel+1)
	for lvl := 0; lvl <= maxLevel; lvl++ {
		lvl := lvl
		gen, err := t.MapColumn(confidential, func(v table.Value) (string, error) {
			return h.Generalize(v.Str(), lvl)
		})
		if err != nil {
			return nil, err
		}
		genCol, err := gen.Column(confidential)
		if err != nil {
			return nil, err
		}
		maps[lvl], err = table.BuildCodeMap(base, genCol)
		if err != nil {
			return nil, err
		}
	}
	return maps, nil
}

// CheckExtended reports whether the table satisfies extended
// p-sensitive k-anonymity for the given confidential attribute: it is
// k-anonymous, and every QI-group keeps at least p distinct labels at
// every hierarchy level from 0 through MaxLevel. It is a thin wrapper
// over the statistics path (CheckExtendedStats).
func CheckExtended(t *table.Table, qis []string, confidential string, p, k int, cfg ExtendedConfig) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if cfg.Hierarchy == nil {
		return false, fmt.Errorf("core: extended check requires a confidential-attribute hierarchy")
	}
	if cfg.Hierarchy.Attribute() != confidential {
		return false, fmt.Errorf("core: hierarchy is for %q, confidential attribute is %q",
			cfg.Hierarchy.Attribute(), confidential)
	}
	maxLevel := cfg.maxLevel()
	if maxLevel > cfg.Hierarchy.Height() {
		return false, fmt.Errorf("core: MaxLevel %d exceeds hierarchy height %d", maxLevel, cfg.Hierarchy.Height())
	}
	levelMaps, err := ConfLevelMaps(t, confidential, cfg.Hierarchy, maxLevel)
	if err != nil {
		return false, fmt.Errorf("core: extended check: %w", err)
	}
	s, err := t.GroupStats(qis, []string{confidential}, 1)
	if err != nil {
		return false, err
	}
	return CheckExtendedStats(s, 0, p, k, maxLevel, levelMaps)
}

// ExtendedSensitivity computes the largest p for which CheckExtended
// would succeed (ignoring the k side condition): the minimum, over
// QI-groups and hierarchy levels 0..MaxLevel, of the distinct label
// count. An empty table has extended sensitivity 0.
func ExtendedSensitivity(t *table.Table, qis []string, confidential string, cfg ExtendedConfig) (int, error) {
	if cfg.Hierarchy == nil {
		return 0, fmt.Errorf("core: extended sensitivity requires a confidential-attribute hierarchy")
	}
	if t.NumRows() == 0 {
		return 0, nil
	}
	maxLevel := cfg.maxLevel()
	levelMaps, err := ConfLevelMaps(t, confidential, cfg.Hierarchy, maxLevel)
	if err != nil {
		return 0, fmt.Errorf("core: extended sensitivity: %w", err)
	}
	s, err := t.GroupStats(qis, []string{confidential}, 1)
	if err != nil {
		return 0, err
	}
	return ExtendedSensitivityStats(s, 0, maxLevel, levelMaps)
}
