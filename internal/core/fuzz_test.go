package core

import (
	"testing"

	"psk/internal/table"
)

// fuzzTable decodes arbitrary bytes into a tiny two-column microdata
// table: byte pairs become (QI, Conf) cells over a 4-letter alphabet,
// small enough that groups collide and both the satisfied and violated
// paths are reachable from short inputs.
func fuzzTable(t *testing.T, data []byte) *table.Table {
	sch := table.MustSchema(
		table.Field{Name: "QI", Type: table.String},
		table.Field{Name: "Conf", Type: table.String},
	)
	b, err := table.NewBuilder(sch)
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	letters := []string{"a", "b", "c", "d"}
	for i := 0; i+1 < len(data); i += 2 {
		b.Append(table.SV(letters[int(data[i])%len(letters)]), table.SV(letters[int(data[i+1])%len(letters)]))
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return tbl
}

// FuzzPolicyEval is a differential check of the two implementations of
// Definition 2: Algorithm 1's row path (CheckBasic) against the
// composable PSensitiveKAnonymityPolicy on the statistics view. They
// must agree on every input — same error/no-error outcome, same
// verdict — and neither may panic. Seed corpus under testdata/fuzz.
func FuzzPolicyEval(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 1, 0, 1, 1}, uint8(2), uint8(2))
	f.Add([]byte{0, 0, 0, 0}, uint8(1), uint8(3))
	f.Add([]byte{}, uint8(2), uint8(2))
	f.Add([]byte{3, 2, 1, 0}, uint8(0), uint8(0))
	f.Add([]byte{1, 2, 3}, uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, pb, kb uint8) {
		// Small moduli keep p <= group sizes reachable; raw 0 values
		// stay possible so the validation paths are fuzzed too.
		p, k := int(pb%6), int(kb%9)
		tbl := fuzzTable(t, data)
		qis, conf := []string{"QI"}, []string{"Conf"}

		basicOK, basicErr := CheckBasic(tbl, qis, conf, p, k)

		view, err := NewStatsView(tbl, qis, conf, 1)
		if err != nil {
			t.Fatalf("NewStatsView: %v", err)
		}
		res, polErr := PSensitiveKAnonymityPolicy{P: p, K: k, Attrs: conf}.Evaluate(view)

		if (basicErr == nil) != (polErr == nil) {
			t.Fatalf("p=%d k=%d rows=%d: CheckBasic err %v, policy err %v",
				p, k, tbl.NumRows(), basicErr, polErr)
		}
		if basicErr == nil && basicOK != res.Satisfied {
			t.Fatalf("p=%d k=%d rows=%d: CheckBasic=%v, policy=%v (%v)",
				p, k, tbl.NumRows(), basicOK, res.Satisfied, res.Reason)
		}
	})
}
