package core

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"psk/internal/table"
)

// The policies are the single verdict implementation per property; the
// tests below pin them against independent row-scanning oracles built
// on GroupBy/DistinctInRows (a data path that never touches the code
// histograms), and against the legacy table-based wrappers — the
// regression net that keeps one-implementation-per-property honest.

// rowOracle precomputes, from raw rows, everything the per-property
// oracles need: group row sets in first-appearance order (the same
// order GroupStats scans in) and per-(group, attribute) value counts.
type rowOracle struct {
	sizes  []int
	counts [][]map[string]int // [group][confIdx] value -> count
}

func buildRowOracle(t *testing.T, tbl *table.Table, qis, conf []string) rowOracle {
	t.Helper()
	groups, err := tbl.GroupBy(qis...)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]table.Column, len(conf))
	for i, attr := range conf {
		c, err := tbl.Column(attr)
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = c
	}
	o := rowOracle{}
	for _, g := range groups {
		o.sizes = append(o.sizes, g.Size())
		per := make([]map[string]int, len(conf))
		for a := range conf {
			per[a] = make(map[string]int)
			for _, r := range g.Rows {
				per[a][cols[a].Value(r).Str()]++
			}
		}
		o.counts = append(o.counts, per)
	}
	return o
}

func (o rowOracle) distinct(g, a int) int { return len(o.counts[g][a]) }

func (o rowOracle) firstBelowK(k int) int {
	for g, s := range o.sizes {
		if s < k {
			return g
		}
	}
	return -1
}

func (o rowOracle) firstLowDistinct(attrs []int, p int) (int, int) {
	for g := range o.sizes {
		for _, a := range attrs {
			if o.distinct(g, a) < p {
				return g, a
			}
		}
	}
	return -1, -1
}

func (o rowOracle) entropy(g, a int) float64 {
	e, n := 0.0, float64(o.sizes[g])
	for _, c := range o.counts[g][a] {
		pr := float64(c) / n
		e -= pr * math.Log(pr)
	}
	return e
}

func (o rowOracle) maxCount(g, a int) int {
	m := 0
	for _, c := range o.counts[g][a] {
		if c > m {
			m = c
		}
	}
	return m
}

// variational distance of group g's attribute-a distribution from the
// whole-table distribution (half L1).
func (o rowOracle) distance(g, a int) float64 {
	global := make(map[string]float64)
	n := 0.0
	for gi := range o.sizes {
		for v, c := range o.counts[gi][a] {
			global[v] += float64(c)
		}
		n += float64(o.sizes[gi])
	}
	d := 0.0
	for v, c := range global {
		d += math.Abs(c/n - float64(o.counts[g][a][v])/float64(o.sizes[g]))
	}
	return d / 2
}

func mustEval(t *testing.T, p Policy, v StatsView) Result {
	t.Helper()
	res, err := p.Evaluate(v)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return res
}

// TestPoliciesMatchRowOracles: every policy must agree — verdict and
// first violating (group, attribute) — with an independent row-scanning
// oracle, and with its legacy table-based wrapper, on randomized tables
// at several worker counts.
func TestPoliciesMatchRowOracles(t *testing.T) {
	qis := []string{"Zip", "Sex"}
	conf := []string{"Illness", "Income"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl := randomStatsTable(t, rng, 20+rng.Intn(150))
		v, err := NewStatsView(tbl, qis, conf, 1+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		o := buildRowOracle(t, tbl, qis, conf)

		// k-anonymity.
		for _, k := range []int{2, 3, 5} {
			res := mustEval(t, KAnonymityPolicy{K: k}, v)
			wantG := o.firstBelowK(k)
			if res.Satisfied != (wantG == -1) || res.Group != wantG {
				t.Errorf("seed %d: %d-anonymity = (%v, group %d), oracle group %d",
					seed, k, res.Satisfied, res.Group, wantG)
			}
			legacy, err := IsKAnonymous(tbl, qis, k)
			if err != nil || legacy != res.Satisfied {
				t.Errorf("seed %d: IsKAnonymous(%d) = %v, %v; policy %v", seed, k, legacy, err, res.Satisfied)
			}
		}

		// p-sensitivity and p-sensitive k-anonymity.
		for _, p := range []int{1, 2, 3} {
			res := mustEval(t, PSensitivityPolicy{P: p}, v)
			wantG, wantA := o.firstLowDistinct([]int{0, 1}, p)
			if res.Satisfied != (wantG == -1) || res.Group != wantG || res.Attr != wantA {
				t.Errorf("seed %d: %d-sensitivity = (%v, group %d, attr %d), oracle (%d, %d)",
					seed, p, res.Satisfied, res.Group, res.Attr, wantG, wantA)
			}
			named := mustEval(t, PSensitivityPolicy{P: p, Attrs: []string{"Income"}}, v)
			ng, _ := o.firstLowDistinct([]int{1}, p)
			if named.Satisfied != (ng == -1) || named.Group != ng {
				t.Errorf("seed %d: %d-sensitivity(Income) = (%v, %d), oracle %d",
					seed, p, named.Satisfied, named.Group, ng)
			}

			for _, k := range []int{maxInt(2, p), p + 2} {
				pk := mustEval(t, PSensitiveKAnonymityPolicy{P: p, K: k}, v)
				want := o.firstBelowK(k) == -1
				if wg, _ := o.firstLowDistinct([]int{0, 1}, p); wg != -1 {
					want = false
				}
				if pk.Satisfied != want {
					t.Errorf("seed %d: %d-sensitive-%d-anonymity = %v, oracle %v", seed, p, k, pk.Satisfied, want)
				}
				legacy, err := CheckBasic(tbl, qis, conf, p, k)
				if err != nil || legacy != pk.Satisfied {
					t.Errorf("seed %d: CheckBasic(%d,%d) = %v, %v; policy %v", seed, p, k, legacy, err, pk.Satisfied)
				}
				withBounds, err := Check(tbl, qis, conf, p, k)
				if err != nil || withBounds.Satisfied != pk.Satisfied {
					t.Errorf("seed %d: Check(%d,%d) = %v, %v; policy %v",
						seed, p, k, withBounds.Satisfied, err, pk.Satisfied)
				}
			}
		}

		// Distinct and entropy l-diversity on each confidential attribute.
		for a, attr := range conf {
			for _, l := range []int{1, 2, 3, 4} {
				res := mustEval(t, DistinctLDiversityPolicy{Attr: attr, L: l}, v)
				wantG, _ := o.firstLowDistinct([]int{a}, l)
				if res.Satisfied != (wantG == -1) || res.Group != wantG {
					t.Errorf("seed %d: distinct-%d-diversity(%s) = (%v, %d), oracle %d",
						seed, l, attr, res.Satisfied, res.Group, wantG)
				}
				legacy, err := IsDistinctLDiverse(tbl, qis, attr, l)
				if err != nil || legacy != res.Satisfied {
					t.Errorf("seed %d: IsDistinctLDiverse(%s,%d) = %v, %v; policy %v",
						seed, attr, l, legacy, err, res.Satisfied)
				}

				ent := mustEval(t, EntropyLDiversityPolicy{Attr: attr, L: l}, v)
				wantEnt := -1
				for g := range o.sizes {
					if o.entropy(g, a)+1e-12 < math.Log(float64(l)) {
						wantEnt = g
						break
					}
				}
				if ent.Satisfied != (wantEnt == -1) || ent.Group != wantEnt {
					t.Errorf("seed %d: entropy-%d-diversity(%s) = (%v, %d), oracle %d",
						seed, l, attr, ent.Satisfied, ent.Group, wantEnt)
				}
				legacyEnt, err := IsEntropyLDiverse(tbl, qis, attr, l)
				if err != nil || legacyEnt != ent.Satisfied {
					t.Errorf("seed %d: IsEntropyLDiverse(%s,%d) = %v, %v; policy %v",
						seed, attr, l, legacyEnt, err, ent.Satisfied)
				}
			}

			// Recursive (c, l)-diversity.
			for _, c := range []float64{1, 2, 4} {
				for _, l := range []int{2, 3} {
					res := mustEval(t, RecursiveLDiversityPolicy{Attr: attr, C: c, L: l}, v)
					want := -1
					for g := range o.sizes {
						var counts []int
						for _, n := range o.counts[g][a] {
							counts = append(counts, n)
						}
						sort.Sort(sort.Reverse(sort.IntSlice(counts)))
						tail := 0
						for j := l - 1; j < len(counts); j++ {
							tail += counts[j]
						}
						if !(float64(counts[0]) < c*float64(tail)) {
							want = g
							break
						}
					}
					if res.Satisfied != (want == -1) || res.Group != want {
						t.Errorf("seed %d: recursive-(%g,%d)(%s) = (%v, %d), oracle %d",
							seed, c, l, attr, res.Satisfied, res.Group, want)
					}
				}
			}

			// t-closeness: the policy threshold must match the measured
			// worst distance, which must match the oracle's.
			worst, err := TCloseness(tbl, qis, attr)
			if err != nil {
				t.Fatal(err)
			}
			oracleWorst := 0.0
			for g := range o.sizes {
				if d := o.distance(g, a); d > oracleWorst {
					oracleWorst = d
				}
			}
			if math.Abs(worst-oracleWorst) > 1e-9 {
				t.Errorf("seed %d: TCloseness(%s) = %g, oracle %g", seed, attr, worst, oracleWorst)
			}
			for _, tt := range []float64{0, 0.2, 0.5, 1} {
				res := mustEval(t, TClosenessPolicy{Attr: attr, T: tt}, v)
				if res.Satisfied != (oracleWorst <= tt+1e-12) {
					t.Errorf("seed %d: %g-closeness(%s) = %v, worst %g", seed, tt, attr, res.Satisfied, oracleWorst)
				}
			}

			// (p, alpha)-sensitivity.
			for _, alpha := range []float64{0.4, 0.7, 1} {
				p, k := 2, 2
				res := mustEval(t, PAlphaPolicy{P: p, K: k, Alpha: alpha, Attrs: []string{attr}}, v)
				want := o.firstBelowK(k) == -1
				if want {
					for g := range o.sizes {
						if o.distinct(g, a) < p || float64(o.maxCount(g, a)) > alpha*float64(o.sizes[g]) {
							want = false
							break
						}
					}
				}
				if res.Satisfied != want {
					t.Errorf("seed %d: (%d,%g)-sensitivity(%s) = %v, oracle %v",
						seed, p, alpha, attr, res.Satisfied, want)
				}
				legacy, err := CheckPAlpha(tbl, qis, []string{attr}, p, k, alpha)
				if err != nil || legacy != res.Satisfied {
					t.Errorf("seed %d: CheckPAlpha(%s,%g) = %v, %v; policy %v",
						seed, attr, alpha, legacy, err, res.Satisfied)
				}
			}
		}

		// Extended p-sensitivity against the table-based wrapper, using
		// the similarity-attack hierarchy over Illness.
		h := illnessHierarchy(t)
		levelMaps, err := ConfLevelMaps(tbl, "Illness", h, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2} {
			res := mustEval(t, ExtendedPolicy{Attr: "Illness", P: p, K: 2, MaxLevel: 1, LevelMaps: levelMaps}, v)
			legacy, err := CheckExtended(tbl, qis, "Illness", p, 2, ExtendedConfig{Hierarchy: h, MaxLevel: 1})
			if err != nil || legacy != res.Satisfied {
				t.Errorf("seed %d: CheckExtended(p=%d) = %v, %v; policy %v", seed, p, legacy, err, res.Satisfied)
			}
		}
	}
}

// TestAllConjunction pins All's semantics: first-failure-wins verdict,
// union of confidential attributes, and the composed name.
func TestAllConjunction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tbl := randomStatsTable(t, rng, 60)
	qis := []string{"Zip", "Sex"}
	conf := []string{"Illness", "Income"}
	v, err := NewStatsView(tbl, qis, conf, 1)
	if err != nil {
		t.Fatal(err)
	}

	// An impossible member makes the conjunction fail with its reason,
	// regardless of the satisfied members around it. 1-sensitivity holds
	// for every non-empty group, so it is the always-true member.
	always := PSensitivityPolicy{P: 1}
	never := DistinctLDiversityPolicy{Attr: "Illness", L: 100}
	res := mustEval(t, All(always, never, always), v)
	if res.Satisfied || res.Reason != NotLDiverse {
		t.Errorf("conjunction = %+v, want first failure NotLDiverse", res)
	}
	// Order decides which failure reports.
	res = mustEval(t, All(TClosenessPolicy{Attr: "Income", T: 0}, never), v)
	if res.Satisfied || res.Reason != NotTClose {
		t.Errorf("conjunction = %+v, want NotTClose first", res)
	}
	// All satisfied -> satisfied, with the group count filled in.
	res = mustEval(t, All(always, PSensitivityPolicy{P: 1, Attrs: []string{"Income"}}), v)
	if !res.Satisfied || res.Groups != v.Stats.NumGroups() {
		t.Errorf("satisfied conjunction = %+v", res)
	}
	// Empty conjunction is trivially satisfied.
	if res := mustEval(t, All(), v); !res.Satisfied {
		t.Errorf("All() = %+v", res)
	}
	// One member: All is the identity.
	if got := All(never); got.Name() != never.Name() {
		t.Errorf("All(p).Name() = %q", got.Name())
	}

	comp := All(PSensitiveKAnonymityPolicy{P: 2, K: 3}, never)
	if name := comp.Name(); !strings.Contains(name, "all(") || !strings.Contains(name, " and ") {
		t.Errorf("composite name = %q", name)
	}
	if attrs := comp.ConfAttrs(); len(attrs) != 1 || attrs[0] != "Illness" {
		t.Errorf("composite ConfAttrs = %v", attrs)
	}
}

// TestWithBoundsPolicy pins the prefilter wrapper: Condition 1 and 2
// rejections carry the bounds and skip the inner policy; a pass-through
// result is the inner verdict with the bounds stamped on.
func TestWithBoundsPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := randomStatsTable(t, rng, 80)
	v, err := NewStatsView(tbl, []string{"Zip", "Sex"}, []string{"Illness"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner := PSensitiveKAnonymityPolicy{P: 2, K: 2}

	res := mustEval(t, WithBounds(inner, Bounds{P: 3, MaxP: 2, MaxGroups: 100}), v)
	if res.Satisfied || res.Reason != FailedCondition1 || res.MaxP != 2 || res.Groups != 0 {
		t.Errorf("condition 1 result = %+v", res)
	}
	res = mustEval(t, WithBounds(inner, Bounds{P: 2, MaxP: 5, MaxGroups: 1}), v)
	if res.Satisfied || res.Reason != FailedCondition2 || res.Groups != v.Stats.NumGroups() {
		t.Errorf("condition 2 result = %+v", res)
	}
	// Permissive bounds: the inner verdict, stamped.
	loose := Bounds{P: 2, MaxP: 5, MaxGroups: 1 << 30}
	got := mustEval(t, WithBounds(inner, loose), v)
	want := mustEval(t, inner, v)
	want.MaxP, want.MaxGroups = loose.MaxP, loose.MaxGroups
	if got != want {
		t.Errorf("pass-through = %+v, want %+v", got, want)
	}
}

// TestPolicyViewErrors: policies naming attributes the view does not
// carry, and attribute-agnostic policies over histogram-free
// statistics, must error rather than misreport.
func TestPolicyViewErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := randomStatsTable(t, rng, 30)
	v, err := NewStatsView(tbl, []string{"Zip"}, []string{"Illness"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (DistinctLDiversityPolicy{Attr: "Nope", L: 2}).Evaluate(v); err == nil {
		t.Error("unknown attribute accepted")
	}
	bare, err := NewStatsView(tbl, []string{"Zip"}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (PSensitivityPolicy{P: 2}).Evaluate(bare); err == nil {
		t.Error("p-sensitivity over histogram-free statistics accepted")
	}
	if _, err := (KAnonymityPolicy{K: 0}).Evaluate(v); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := (TClosenessPolicy{Attr: "Illness", T: -1}).Evaluate(v); err == nil {
		t.Error("negative t accepted")
	}
}
