package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"psk/internal/table"
)

var statIllnesses = []string{"Colon Cancer", "Lung Cancer", "Stomach Cancer", "Flu", "HIV", "Diabetes"}

// randomStatsTable builds an n-row table with two QI columns and two
// confidential columns (Illness drawn from the extended-check fixture's
// domain so the same table serves the hierarchy tests).
func randomStatsTable(t testing.TB, rng *rand.Rand, n int) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Zip", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
		table.Field{Name: "Income", Type: table.Int},
	)
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = []string{
			fmt.Sprintf("4%d", rng.Intn(4)),
			[]string{"M", "F"}[rng.Intn(2)],
			statIllnesses[rng.Intn(len(statIllnesses))],
			fmt.Sprintf("%d", 10*rng.Intn(4)),
		}
	}
	tbl, err := table.FromText(sch, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestStatsChecksMatchTableChecks: every stats-based verdict must agree
// with its table-based counterpart on randomized tables, across p/k/l
// settings and worker counts.
func TestStatsChecksMatchTableChecks(t *testing.T) {
	qis := []string{"Zip", "Sex"}
	conf := []string{"Illness", "Income"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl := randomStatsTable(t, rng, 20+rng.Intn(200))
		s, err := tbl.GroupStats(qis, conf, 1+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}

		for _, k := range []int{2, 3, 5} {
			wantK, err := IsKAnonymous(tbl, qis, k)
			if err != nil {
				t.Fatal(err)
			}
			gotK, err := IsKAnonymousStats(s, k)
			if err != nil || gotK != wantK {
				t.Errorf("seed %d k=%d: IsKAnonymousStats = %v, %v; want %v", seed, k, gotK, err, wantK)
			}
			wantV, err := TuplesViolatingK(tbl, qis, k)
			if err != nil {
				t.Fatal(err)
			}
			gotV, err := TuplesViolatingKStats(s, k)
			if err != nil || gotV != wantV {
				t.Errorf("seed %d k=%d: TuplesViolatingKStats = %d, %v; want %d", seed, k, gotV, err, wantV)
			}
			for p := 1; p <= k && p <= 4; p++ {
				wantB, err := CheckBasic(tbl, qis, conf, p, k)
				if err != nil {
					t.Fatal(err)
				}
				gotB, err := CheckBasicStats(s, p, k)
				if err != nil || gotB != wantB {
					t.Errorf("seed %d p=%d k=%d: CheckBasicStats = %v, %v; want %v", seed, p, k, gotB, err, wantB)
				}
				bounds, err := ComputeBounds(tbl, conf, p)
				if err != nil {
					t.Fatal(err)
				}
				wantR, err := CheckWithBounds(tbl, qis, conf, p, k, bounds)
				if err != nil {
					t.Fatal(err)
				}
				gotR, err := CheckStatsWithBounds(s, p, k, bounds)
				if err != nil || gotR != wantR {
					t.Errorf("seed %d p=%d k=%d: CheckStatsWithBounds = %+v, %v; want %+v", seed, p, k, gotR, err, wantR)
				}
				for _, alpha := range []float64{0.5, 0.8, 1.0} {
					wantA, err := CheckPAlpha(tbl, qis, conf, p, k, alpha)
					if err != nil {
						t.Fatal(err)
					}
					gotA, err := CheckPAlphaStats(s, p, k, alpha)
					if err != nil || gotA != wantA {
						t.Errorf("seed %d p=%d k=%d alpha=%g: CheckPAlphaStats = %v, %v; want %v",
							seed, p, k, alpha, gotA, err, wantA)
					}
				}
			}
		}

		wantSens, err := Sensitivity(tbl, qis, conf)
		if err != nil {
			t.Fatal(err)
		}
		gotSens, err := SensitivityStats(s)
		if err != nil || gotSens != wantSens {
			t.Errorf("seed %d: SensitivityStats = %d, %v; want %d", seed, gotSens, err, wantSens)
		}
		for _, p := range []int{2, 3} {
			wantD, err := AttributeDisclosures(tbl, qis, conf, p)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := AttributeDisclosuresStats(s, p)
			if err != nil || gotD != wantD {
				t.Errorf("seed %d p=%d: AttributeDisclosuresStats = %d, %v; want %d", seed, p, gotD, err, wantD)
			}
		}

		for ci, attr := range conf {
			for _, l := range []int{1, 2, 3} {
				wantL, err := IsDistinctLDiverse(tbl, qis, attr, l)
				if err != nil {
					t.Fatal(err)
				}
				gotL, err := DistinctLDiverseStats(s, ci, l)
				if err != nil || gotL != wantL {
					t.Errorf("seed %d %s l=%d: DistinctLDiverseStats = %v, %v; want %v", seed, attr, l, gotL, err, wantL)
				}
				wantE, err := IsEntropyLDiverse(tbl, qis, attr, l)
				if err != nil {
					t.Fatal(err)
				}
				gotE, err := EntropyLDiverseStats(s, ci, l)
				if err != nil || gotE != wantE {
					t.Errorf("seed %d %s l=%d: EntropyLDiverseStats = %v, %v; want %v", seed, attr, l, gotE, err, wantE)
				}
			}
			wantT, err := TCloseness(tbl, qis, attr)
			if err != nil {
				t.Fatal(err)
			}
			gotT, err := TClosenessStats(s, ci)
			if err != nil || math.Abs(gotT-wantT) > 1e-12 {
				t.Errorf("seed %d %s: TClosenessStats = %g, %v; want %g", seed, attr, gotT, err, wantT)
			}
		}
	}
}

// TestCheckExtendedStatsMatches: the code-map-based extended check must
// agree with the hierarchy-walking table check.
func TestCheckExtendedStatsMatches(t *testing.T) {
	h := illnessHierarchy(t)
	qis := []string{"Zip", "Sex"}
	cfg := ExtendedConfig{Hierarchy: h, MaxLevel: 1}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		tbl := randomStatsTable(t, rng, 20+rng.Intn(120))
		s, err := tbl.GroupStats(qis, []string{"Illness"}, 1+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		// Level maps: ground codes (level 0, identity) and the code map
		// into each generalized confidential column.
		levelMaps := []*table.CodeMap{nil}
		base, err := tbl.Column("Illness")
		if err != nil {
			t.Fatal(err)
		}
		for lvl := 1; lvl <= cfg.MaxLevel; lvl++ {
			gen, err := tbl.MapColumn("Illness", func(v table.Value) (string, error) {
				return h.Generalize(v.Str(), lvl)
			})
			if err != nil {
				t.Fatal(err)
			}
			genCol, err := gen.Column("Illness")
			if err != nil {
				t.Fatal(err)
			}
			cm, err := table.BuildCodeMap(base, genCol)
			if err != nil {
				t.Fatal(err)
			}
			levelMaps = append(levelMaps, cm)
		}
		for _, k := range []int{2, 3} {
			for p := 1; p <= k; p++ {
				want, err := CheckExtended(tbl, qis, "Illness", p, k, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := CheckExtendedStats(s, 0, p, k, cfg.MaxLevel, levelMaps)
				if err != nil || got != want {
					t.Errorf("seed %d p=%d k=%d: CheckExtendedStats = %v, %v; want %v", seed, p, k, got, err, want)
				}
			}
		}
	}
}

// TestStatsCheckValidation pins the argument validation of the stats
// paths.
func TestStatsCheckValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := randomStatsTable(t, rng, 30)
	s, err := tbl.GroupStats([]string{"Zip"}, []string{"Illness"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IsKAnonymousStats(s, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TuplesViolatingKStats(s, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := CheckBasicStats(s, 3, 2); err == nil {
		t.Error("p > k accepted")
	}
	if _, err := CheckStatsWithBounds(s, 0, 2, Bounds{}); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := CheckPAlphaStats(s, 2, 3, 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := DistinctLDiverseStats(s, 5, 2); err == nil {
		t.Error("conf index out of range accepted")
	}
	if _, err := EntropyLDiverseStats(s, -1, 2); err == nil {
		t.Error("conf index out of range accepted")
	}
	if _, err := TClosenessStats(s, 9); err == nil {
		t.Error("conf index out of range accepted")
	}
	if _, err := CheckExtendedStats(s, 0, 2, 2, 1, []*table.CodeMap{nil}); err == nil {
		t.Error("short level-map vector accepted")
	}
	if _, err := CheckExtendedStats(s, 0, 2, 2, -1, nil); err == nil {
		t.Error("negative maxLevel accepted")
	}
	empty := &table.GroupStats{}
	if _, err := CheckBasicStats(empty, 2, 2); err == nil {
		t.Error("no confidential attributes accepted")
	}
	if _, err := SensitivityStats(empty); err == nil {
		t.Error("no confidential attributes accepted")
	}
	if _, err := AttributeDisclosuresStats(empty, 2); err == nil {
		t.Error("no confidential attributes accepted")
	}
}
