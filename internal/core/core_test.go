package core

import (
	"testing"

	"psk/internal/table"
)

var (
	patientQIs  = []string{"Age", "ZipCode", "Sex"}
	patientConf = []string{"Illness", "Income"}
)

// table1 reproduces the paper's Table 1 (2-anonymous patient data).
func table1(t *testing.T) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"50", "43102", "M", "Colon Cancer"},
		{"30", "43102", "F", "Breast Cancer"},
		{"30", "43102", "F", "HIV"},
		{"20", "43102", "M", "Diabetes"},
		{"20", "43102", "M", "Diabetes"},
		{"50", "43102", "M", "Heart Disease"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// table3 reproduces the paper's Table 3 (3-anonymous, 1-sensitive).
func table3(t *testing.T) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "ZipCode", Type: table.String},
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "Illness", Type: table.String},
		table.Field{Name: "Income", Type: table.Int},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"20", "43102", "F", "AIDS", "50000"},
		{"20", "43102", "F", "AIDS", "50000"},
		{"20", "43102", "F", "Diabetes", "50000"},
		{"30", "43102", "M", "Diabetes", "30000"},
		{"30", "43102", "M", "Diabetes", "40000"},
		{"30", "43102", "M", "Heart Disease", "30000"},
		{"30", "43102", "M", "Heart Disease", "40000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// table3Fixed is Table 3 with the paper's suggested edit (first tuple's
// income changed to 40,000), which lifts the sensitivity to p = 2.
func table3Fixed(t *testing.T) *table.Table {
	t.Helper()
	tbl := table3(t)
	out, err := tbl.MapColumn("Income", func(v table.Value) (string, error) {
		return v.Str(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with the edit: simplest is to reconstruct the rows.
	sch := out.Schema()
	b, _ := table.NewBuilder(sch)
	for r := 0; r < out.NumRows(); r++ {
		row, _ := out.Row(r)
		if r == 0 {
			row[4] = table.SV("40000")
		}
		b.Append(row...)
	}
	fixed, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return fixed
}

func TestTable1IsTwoAnonymous(t *testing.T) {
	tbl := table1(t)
	ok, err := IsKAnonymous(tbl, patientQIs, 2)
	if err != nil || !ok {
		t.Errorf("IsKAnonymous(2) = %v, %v; want true", ok, err)
	}
	ok, _ = IsKAnonymous(tbl, patientQIs, 3)
	if ok {
		t.Error("Table 1 should not be 3-anonymous")
	}
	min, err := MinGroupSize(tbl, patientQIs)
	if err != nil || min != 2 {
		t.Errorf("MinGroupSize = %d, %v; want 2", min, err)
	}
}

func TestKAnonymityEdgeCases(t *testing.T) {
	tbl := table1(t)
	if _, err := IsKAnonymous(tbl, patientQIs, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := IsKAnonymous(tbl, []string{"Nope"}, 2); err == nil {
		t.Error("missing QI accepted")
	}
	empty := tbl.Filter(func(int) bool { return false })
	ok, err := IsKAnonymous(empty, patientQIs, 5)
	if err != nil || !ok {
		t.Errorf("empty table k-anonymity = %v, %v; want true", ok, err)
	}
	min, _ := MinGroupSize(empty, patientQIs)
	if min != 0 {
		t.Errorf("empty MinGroupSize = %d", min)
	}
	n, err := TuplesViolatingK(tbl, patientQIs, 3)
	if err != nil || n != 6 {
		t.Errorf("TuplesViolatingK(3) = %d, %v; want 6 (all groups are pairs)", n, err)
	}
	if _, err := TuplesViolatingK(tbl, patientQIs, 0); err == nil {
		t.Error("k=0 accepted by TuplesViolatingK")
	}
}

// TestTable3SensitivityIsOne reproduces the paper's analysis: the first
// group has one distinct income, so the masked microdata satisfies only
// 1-sensitive 3-anonymity.
func TestTable3SensitivityIsOne(t *testing.T) {
	tbl := table3(t)
	ok, err := IsKAnonymous(tbl, patientQIs, 3)
	if err != nil || !ok {
		t.Fatalf("Table 3 should be 3-anonymous: %v, %v", ok, err)
	}
	s, err := Sensitivity(tbl, patientQIs, patientConf)
	if err != nil || s != 1 {
		t.Errorf("Sensitivity = %d, %v; want 1", s, err)
	}
	ok, err = CheckBasic(tbl, patientQIs, patientConf, 2, 3)
	if err != nil || ok {
		t.Errorf("CheckBasic(p=2) = %v, %v; want false", ok, err)
	}
	ok, err = CheckBasic(tbl, patientQIs, patientConf, 1, 3)
	if err != nil || !ok {
		t.Errorf("CheckBasic(p=1) = %v, %v; want true", ok, err)
	}
}

// TestTable3FixedSensitivityIsTwo reproduces the paper's "if the first
// tuple would have income 40,000" edit: sensitivity rises to 2.
func TestTable3FixedSensitivityIsTwo(t *testing.T) {
	tbl := table3Fixed(t)
	s, err := Sensitivity(tbl, patientQIs, patientConf)
	if err != nil || s != 2 {
		t.Errorf("Sensitivity = %d, %v; want 2", s, err)
	}
	ok, err := CheckBasic(tbl, patientQIs, patientConf, 2, 3)
	if err != nil || !ok {
		t.Errorf("CheckBasic(p=2) = %v, %v; want true", ok, err)
	}
	res, err := Check(tbl, patientQIs, patientConf, 2, 3)
	if err != nil || !res.Satisfied || res.Reason != Satisfied {
		t.Errorf("Check = %+v, %v; want satisfied", res, err)
	}
}

func TestPKValidation(t *testing.T) {
	tbl := table3(t)
	cases := []struct{ p, k int }{
		{0, 3},  // p < 1
		{2, 1},  // k < 2
		{4, 3},  // p > k
		{-1, 2}, // negative p
	}
	for _, c := range cases {
		if _, err := CheckBasic(tbl, patientQIs, patientConf, c.p, c.k); err == nil {
			t.Errorf("CheckBasic(p=%d,k=%d) accepted", c.p, c.k)
		}
		if _, err := Check(tbl, patientQIs, patientConf, c.p, c.k); err == nil {
			t.Errorf("Check(p=%d,k=%d) accepted", c.p, c.k)
		}
	}
	if _, err := CheckBasic(tbl, patientQIs, nil, 2, 3); err == nil {
		t.Error("empty confidential list accepted")
	}
	if _, err := Sensitivity(tbl, patientQIs, nil); err == nil {
		t.Error("Sensitivity with no confidential attributes accepted")
	}
}

// example1Table builds the synthetic 1000-tuple microdata of the
// paper's Example 1 (Tables 5 and 6): three confidential attributes
// with prescribed descending frequency sets. QI columns give every
// tuple the same group (irrelevant to the frequency computations).
func example1Table(t testing.TB) *table.Table {
	t.Helper()
	freqs := map[string][]int{
		"S1": {300, 300, 200, 100, 100},
		"S2": {500, 300, 100, 40, 35, 25},
		"S3": {700, 200, 50, 10, 10, 10, 10, 5, 3, 2},
	}
	sch := table.MustSchema(
		table.Field{Name: "K1", Type: table.Int},
		table.Field{Name: "S1", Type: table.String},
		table.Field{Name: "S2", Type: table.String},
		table.Field{Name: "S3", Type: table.String},
	)
	// Expand each frequency set into a 1000-value column: value v_i
	// repeated f_i times.
	expand := func(name string) []string {
		var out []string
		for i, f := range freqs[name] {
			for j := 0; j < f; j++ {
				out = append(out, name+"-v"+string(rune('a'+i)))
			}
		}
		return out
	}
	s1, s2, s3 := expand("S1"), expand("S2"), expand("S3")
	b, _ := table.NewBuilder(sch)
	for i := 0; i < 1000; i++ {
		b.Append(table.IV(int64(i)), table.SV(s1[i]), table.SV(s2[i]), table.SV(s3[i]))
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestTables5And6FrequencySets verifies the exact frequency and
// cumulative frequency values of the paper's Tables 5 and 6.
func TestTables5And6FrequencySets(t *testing.T) {
	tbl := example1Table(t)

	want := map[string][]int{
		"S1": {300, 300, 200, 100, 100},
		"S2": {500, 300, 100, 40, 35, 25},
		"S3": {700, 200, 50, 10, 10, 10, 10, 5, 3, 2},
	}
	wantCum := map[string][]int{
		"S1": {300, 600, 800, 900, 1000},
		"S2": {500, 800, 900, 940, 975, 1000},
		"S3": {700, 900, 950, 960, 970, 980, 990, 995, 998, 1000},
	}
	for attr, w := range want {
		f, err := FrequencySet(tbl, attr)
		if err != nil {
			t.Fatalf("FrequencySet(%s): %v", attr, err)
		}
		if !equalInts(f, w) {
			t.Errorf("f^%s = %v, want %v", attr, f, w)
		}
		cf := Cumulative(f)
		if !equalInts(cf, wantCum[attr]) {
			t.Errorf("cf^%s = %v, want %v", attr, cf, wantCum[attr])
		}
	}

	// cf_i row of Table 6: max over attributes, defined up to min s_j = 5.
	cf, err := CFMax(tbl, []string{"S1", "S2", "S3"})
	if err != nil {
		t.Fatalf("CFMax: %v", err)
	}
	if !equalInts(cf, []int{700, 900, 950, 960, 1000}) {
		t.Errorf("cf = %v, want [700 900 950 960 1000]", cf)
	}
}

// TestExample1MaxGroups verifies the maxGroups walk-through of Section
// 3: 300 groups for p=2, 100 for p=3, 50 for p=4, 25 for p=5.
func TestExample1MaxGroups(t *testing.T) {
	tbl := example1Table(t)
	conf := []string{"S1", "S2", "S3"}

	maxP, err := MaxP(tbl, conf)
	if err != nil || maxP != 5 {
		t.Fatalf("MaxP = %d, %v; want 5", maxP, err)
	}
	want := map[int]int{2: 300, 3: 100, 4: 50, 5: 25}
	for p, w := range want {
		g, err := MaxGroups(tbl, conf, p)
		if err != nil {
			t.Fatalf("MaxGroups(p=%d): %v", p, err)
		}
		if g != w {
			t.Errorf("MaxGroups(p=%d) = %d, want %d", p, g, w)
		}
	}
	// p = 1 is vacuous: every tuple may form its own group.
	g, err := MaxGroups(tbl, conf, 1)
	if err != nil || g != 1000 {
		t.Errorf("MaxGroups(p=1) = %d, %v; want 1000", g, err)
	}
	// p beyond the cf range is rejected.
	if _, err := MaxGroups(tbl, conf, 7); err == nil {
		t.Error("MaxGroups(p=7) should fail (p > maxP)")
	}
	if _, err := MaxGroups(tbl, conf, 0); err == nil {
		t.Error("MaxGroups(p=0) should fail")
	}
	if _, err := MaxGroups(tbl, nil, 2); err == nil {
		t.Error("MaxGroups with no confidential attributes should fail")
	}
}

func TestComputeBounds(t *testing.T) {
	tbl := example1Table(t)
	conf := []string{"S1", "S2", "S3"}
	b, err := ComputeBounds(tbl, conf, 3)
	if err != nil {
		t.Fatalf("ComputeBounds: %v", err)
	}
	if !b.Feasible() || b.MaxP != 5 || b.MaxGroups != 100 || b.P != 3 {
		t.Errorf("Bounds = %+v", b)
	}
	// Infeasible p.
	b, err = ComputeBounds(tbl, conf, 9)
	if err != nil {
		t.Fatalf("ComputeBounds(9): %v", err)
	}
	if b.Feasible() || b.MaxGroups != 0 {
		t.Errorf("infeasible bounds = %+v", b)
	}
	if _, err := ComputeBounds(tbl, nil, 2); err == nil {
		t.Error("ComputeBounds with no confidential attributes accepted")
	}
}

// TestCheckReasons drives Algorithm 2 through each of its gates.
func TestCheckReasons(t *testing.T) {
	tbl := table3(t)

	// Condition 1: Illness has 3 distinct values, Income has 3; p = 4
	// exceeds maxP = 3 (and p <= k requires k >= 4).
	res, err := Check(tbl, patientQIs, patientConf, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied || res.Reason != FailedCondition1 {
		t.Errorf("p=4 result = %+v, want FailedCondition1", res)
	}

	// Not k-anonymous: k = 4 with groups of 3 and 4.
	res, err = Check(tbl, patientQIs, patientConf, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied || res.Reason != NotKAnonymous {
		t.Errorf("k=4 result = %+v, want NotKAnonymous", res)
	}

	// Not p-sensitive: p=2, k=3 (group 1 has constant income).
	res, err = Check(tbl, patientQIs, patientConf, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied || res.Reason != NotPSensitive {
		t.Errorf("p=2 result = %+v, want NotPSensitive", res)
	}

	// Satisfied: p=1, k=3.
	res, err = Check(tbl, patientQIs, patientConf, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("p=1 result = %+v, want satisfied", res)
	}
}

// TestCheckCondition2Gate constructs a table that passes Condition 1
// but has more QI-groups than maxGroups allows, so Algorithm 2 must
// reject at the second gate without scanning groups in detail.
func TestCheckCondition2Gate(t *testing.T) {
	sch := table.MustSchema(
		table.Field{Name: "K", Type: table.Int},
		table.Field{Name: "S", Type: table.String},
	)
	b, _ := table.NewBuilder(sch)
	// 10 groups of 2; S has values: one very common (18 rows), one rare
	// (2 rows). maxP = 2; maxGroups for p=2: n - cf_1 = 20 - 18 = 2.
	for g := 0; g < 10; g++ {
		for j := 0; j < 2; j++ {
			s := "common"
			if g == 0 {
				s = "rare"
			}
			b.Append(table.IV(int64(g)), table.SV(s))
		}
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(tbl, []string{"K"}, []string{"S"}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied || res.Reason != FailedCondition2 {
		t.Errorf("result = %+v, want FailedCondition2", res)
	}
	if res.Groups != 10 || res.MaxGroups != 2 {
		t.Errorf("groups = %d, maxGroups = %d; want 10, 2", res.Groups, res.MaxGroups)
	}
}

// TestAlgorithmsAgree: Algorithm 1 and Algorithm 2 must produce the
// same verdict on every (p, k) combination for the paper's tables.
func TestAlgorithmsAgree(t *testing.T) {
	for _, tbl := range []*table.Table{table3(t), table3Fixed(t)} {
		for k := 2; k <= 4; k++ {
			for p := 1; p <= k && p <= 3; p++ {
				basic, err := CheckBasic(tbl, patientQIs, patientConf, p, k)
				if err != nil {
					t.Fatal(err)
				}
				improved, err := Check(tbl, patientQIs, patientConf, p, k)
				if err != nil {
					t.Fatal(err)
				}
				if basic != improved.Satisfied {
					t.Errorf("p=%d k=%d: basic=%v improved=%v (%s)",
						p, k, basic, improved.Satisfied, improved.Reason)
				}
			}
		}
	}
}

func TestAttributeDisclosures(t *testing.T) {
	tbl := table3(t)
	// Group 1 (age 20) has Income constant: one (group, attribute) pair
	// below p=2.
	n, err := AttributeDisclosures(tbl, patientQIs, patientConf, 2)
	if err != nil || n != 1 {
		t.Errorf("AttributeDisclosures(2) = %d, %v; want 1", n, err)
	}
	// At p=3 more pairs fall short: group1 Illness (2), group1 Income
	// (1), group2 Illness (2), group2 Income (2) -> 4 pairs.
	n, err = AttributeDisclosures(tbl, patientQIs, patientConf, 3)
	if err != nil || n != 4 {
		t.Errorf("AttributeDisclosures(3) = %d, %v; want 4", n, err)
	}
	fixed := table3Fixed(t)
	n, _ = AttributeDisclosures(fixed, patientQIs, patientConf, 2)
	if n != 0 {
		t.Errorf("fixed AttributeDisclosures(2) = %d, want 0", n)
	}
	if _, err := AttributeDisclosures(tbl, patientQIs, patientConf, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := AttributeDisclosures(tbl, patientQIs, nil, 2); err == nil {
		t.Error("no confidential attributes accepted")
	}
}

func TestTable1AttributeDisclosure(t *testing.T) {
	// The motivating example: Table 1 is 2-anonymous yet the Diabetes
	// group leaks — exactly one (group, Illness) pair with a constant
	// value.
	tbl := table1(t)
	n, err := AttributeDisclosures(tbl, patientQIs, []string{"Illness"}, 2)
	if err != nil || n != 1 {
		t.Errorf("AttributeDisclosures = %d, %v; want 1 (the Diabetes pair)", n, err)
	}
	s, _ := Sensitivity(tbl, patientQIs, []string{"Illness"})
	if s != 1 {
		t.Errorf("Sensitivity = %d, want 1", s)
	}
}

func TestLDiversity(t *testing.T) {
	tbl := table3(t)
	// Illness: groups have 2 and 2 distinct -> 2-diverse, not 3-diverse.
	ok, err := IsDistinctLDiverse(tbl, patientQIs, "Illness", 2)
	if err != nil || !ok {
		t.Errorf("distinct 2-diverse = %v, %v; want true", ok, err)
	}
	ok, _ = IsDistinctLDiverse(tbl, patientQIs, "Illness", 3)
	if ok {
		t.Error("should not be 3-diverse")
	}
	// Income: group 1 constant -> not 2-diverse.
	ok, _ = IsDistinctLDiverse(tbl, patientQIs, "Income", 2)
	if ok {
		t.Error("Income should not be 2-diverse")
	}
	if _, err := IsDistinctLDiverse(tbl, patientQIs, "Illness", 0); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := IsDistinctLDiverse(tbl, patientQIs, "Nope", 2); err == nil {
		t.Error("missing attribute accepted")
	}
}

func TestEntropyLDiversity(t *testing.T) {
	tbl := table3(t)
	// Every group trivially satisfies entropy 1-diversity.
	ok, err := IsEntropyLDiverse(tbl, patientQIs, "Illness", 1)
	if err != nil || !ok {
		t.Errorf("entropy 1-diverse = %v, %v", ok, err)
	}
	// Group 1 has distribution (2/3, 1/3): entropy ~0.636 < log 2, so
	// not entropy 2-diverse.
	ok, _ = IsEntropyLDiverse(tbl, patientQIs, "Illness", 2)
	if ok {
		t.Error("should not be entropy 2-diverse")
	}
	// A uniform 2-value group is exactly entropy 2-diverse: group 2 has
	// Illness (2,2) — build a table with only that group.
	g2 := tbl.Filter(func(r int) bool {
		v, _ := tbl.Value(r, "Age")
		return v.Int() == 30
	})
	ok, err = IsEntropyLDiverse(g2, patientQIs, "Illness", 2)
	if err != nil || !ok {
		t.Errorf("uniform group entropy 2-diverse = %v, %v; want true", ok, err)
	}
	if _, err := IsEntropyLDiverse(tbl, patientQIs, "Illness", 0); err == nil {
		t.Error("l=0 accepted")
	}
}

func TestTCloseness(t *testing.T) {
	tbl := table3(t)
	d, err := TCloseness(tbl, patientQIs, "Income")
	if err != nil {
		t.Fatalf("TCloseness: %v", err)
	}
	// Global income distribution: 50000 x3, 30000 x2, 40000 x2 over 7.
	// Group 1 (all 50000): distance = (|3/7-1| + 2/7 + 2/7)/2 = 4/7.
	want := 4.0 / 7.0
	if d < want-1e-9 || d > want+1e-9 {
		t.Errorf("TCloseness = %g, want %g", d, want)
	}
	// Identical distribution in one group -> distance 0.
	empty := tbl.Filter(func(int) bool { return false })
	d, err = TCloseness(empty, patientQIs, "Income")
	if err != nil || d != 0 {
		t.Errorf("empty TCloseness = %g, %v", d, err)
	}
	if _, err := TCloseness(tbl, patientQIs, "Nope"); err == nil {
		t.Error("missing attribute accepted")
	}
}

func TestReasonStrings(t *testing.T) {
	for r := Satisfied; r <= NotPSensitive; r++ {
		if r.String() == "" {
			t.Errorf("empty string for reason %d", r)
		}
	}
	if Reason(99).String() == "" {
		t.Error("unknown reason string empty")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
