package core

import (
	"fmt"

	"psk/internal/table"
)

// FrequencySet returns the descending ordered frequency set f_i of the
// attribute (Definition 4): the counts of each distinct value, largest
// first. Ties are broken by value order so the result is deterministic.
func FrequencySet(t *table.Table, attr string) ([]int, error) {
	vc, err := t.ValueCounts(attr)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(vc))
	for i, c := range vc {
		out[i] = c.Count
	}
	return out, nil
}

// Cumulative converts a descending frequency set f into its cumulative
// form cf: cf[i] = f[0] + ... + f[i].
func Cumulative(freq []int) []int {
	out := make([]int, len(freq))
	sum := 0
	for i, f := range freq {
		sum += f
		out[i] = sum
	}
	return out
}

// CFMax computes the paper's cf_i = max_j cf_i^j for the confidential
// attributes: element i (0-based here, 1-based in the paper) is the
// maximum over all confidential attributes of the cumulative frequency
// of their i+1 most common values. Its length is min_j s_j, the number
// of indices at which every attribute still has a defined cf value.
func CFMax(t *table.Table, confidential []string) ([]int, error) {
	if len(confidential) == 0 {
		return nil, fmt.Errorf("core: no confidential attributes")
	}
	var cfs [][]int
	minLen := -1
	for _, attr := range confidential {
		f, err := FrequencySet(t, attr)
		if err != nil {
			return nil, err
		}
		cf := Cumulative(f)
		cfs = append(cfs, cf)
		if minLen == -1 || len(cf) < minLen {
			minLen = len(cf)
		}
	}
	out := make([]int, minLen)
	for i := 0; i < minLen; i++ {
		max := 0
		for _, cf := range cfs {
			if cf[i] > max {
				max = cf[i]
			}
		}
		out[i] = max
	}
	return out, nil
}
