package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"psk/internal/table"
)

// recheckTable builds an n-row table with two QI columns and two
// confidential columns, with cardinalities low enough that subsets of
// groups exercise every verdict branch.
func recheckTable(t *testing.T, rng *rand.Rand, n int) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Q1", Type: table.String},
		table.Field{Name: "Q2", Type: table.String},
		table.Field{Name: "Ill", Type: table.String},
		table.Field{Name: "Inc", Type: table.Int},
	)
	b, err := table.NewBuilder(sch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b.Append(
			table.SV(fmt.Sprintf("q%d", rng.Intn(5))),
			table.SV(fmt.Sprintf("r%d", rng.Intn(3))),
			table.SV(fmt.Sprintf("ill%d", rng.Intn(4))),
			table.IV(int64(rng.Intn(6))),
		)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func recheckView(t *testing.T, tbl *table.Table) StatsView {
	t.Helper()
	v, err := NewStatsView(tbl, []string{"Q1", "Q2"}, []string{"Ill", "Inc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func allGroups(v StatsView) []int {
	out := make([]int, len(v.Stats.Groups))
	for i := range out {
		out[i] = i
	}
	return out
}

// localPolicies enumerates every built-in group-local policy at
// parameters that produce a mix of satisfied and violated verdicts on
// random microdata.
func localPolicies() []Policy {
	return []Policy{
		KAnonymityPolicy{K: 2},
		KAnonymityPolicy{K: 4},
		PSensitivityPolicy{P: 2},
		PSensitivityPolicy{P: 3, Attrs: []string{"Ill"}},
		PSensitiveKAnonymityPolicy{P: 2, K: 3},
		DistinctLDiversityPolicy{Attr: "Ill", L: 2},
		EntropyLDiversityPolicy{Attr: "Ill", L: 2},
		RecursiveLDiversityPolicy{Attr: "Ill", C: 1.5, L: 2},
		PAlphaPolicy{P: 2, K: 2, Alpha: 0.6},
	}
}

// TestCheckGroupsFullSubsetMatchesEvaluate: over the full group set,
// CheckGroups must reproduce Evaluate bit for bit — first violating
// group, reason, attribute and all — for every group-local policy,
// for compositions, and for bounds wrappers.
func TestCheckGroupsFullSubsetMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 4; round++ {
		v := recheckView(t, recheckTable(t, rng, 40+40*round))
		full := allGroups(v)
		policies := localPolicies()
		policies = append(policies,
			All(KAnonymityPolicy{K: 2}, PSensitivityPolicy{P: 2}, TClosenessPolicy{Attr: "Ill", T: 0.4}),
			WithBounds(PSensitiveKAnonymityPolicy{P: 2, K: 2}, Bounds{MaxP: 4, MaxGroups: 10, P: 2}),
			WithBounds(PSensitiveKAnonymityPolicy{P: 5, K: 2}, Bounds{MaxP: 4, MaxGroups: 1 << 30, P: 5}),
			WithBounds(KAnonymityPolicy{K: 2}, Bounds{MaxP: 4, MaxGroups: 2, P: 2}),
		)
		for _, p := range policies {
			want, err := p.Evaluate(v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.(GroupLocal).CheckGroups(v, full)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round %d, %s: CheckGroups(all) = %+v, Evaluate = %+v", round, p.Name(), got, want)
			}
		}
	}
}

// TestCheckGroupsSubsetFindsViolation: when the only violating groups
// are inside the subset, the subset verdict matches the full one; a
// subset of satisfied groups reads satisfied.
func TestCheckGroupsSubsetFindsViolation(t *testing.T) {
	v := StatsView{
		Conf: []string{"Ill"},
		Stats: &table.GroupStats{NumRows: 9, NumQI: 1, NumConf: 1, Groups: []table.GroupStat{
			{Codes: []int{0}, Size: 3, Hists: []table.CodeHist{{{Code: 0, Count: 2}, {Code: 1, Count: 1}}}},
			{Codes: []int{1}, Size: 1, Hists: []table.CodeHist{{{Code: 0, Count: 1}}}}, // below k, 1 distinct
			{Codes: []int{2}, Size: 5, Hists: []table.CodeHist{{{Code: 1, Count: 3}, {Code: 2, Count: 2}}}},
		}},
	}
	p := PSensitiveKAnonymityPolicy{P: 2, K: 2}
	want, err := p.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.CheckGroups(v, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subset holding the violator: got %+v, want %+v", got, want)
	}
	ok, err := p.CheckGroups(v, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Satisfied || ok.Groups != 3 || ok.Group != -1 {
		t.Fatalf("satisfied subset misreported: %+v", ok)
	}
	if _, err := p.CheckGroups(v, []int{3}); err == nil {
		t.Fatal("out-of-range group index accepted")
	}
}

// TestRecheckGroupsDispatch: local policies take the fast path,
// t-closeness (alone or as the sole member under observation) falls
// back to a full evaluation with an identical verdict.
func TestRecheckGroupsDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := recheckView(t, recheckTable(t, rng, 60))
	sub := []int{0}

	res, local, err := RecheckGroups(KAnonymityPolicy{K: 2}, v, sub)
	if err != nil || !local {
		t.Fatalf("k-anonymity recheck: local=%v err=%v", local, err)
	}
	if res.Groups != len(v.Stats.Groups) {
		t.Fatalf("subset verdict reports %d groups, view has %d", res.Groups, len(v.Stats.Groups))
	}

	tc := TClosenessPolicy{Attr: "Ill", T: 0.3}
	res, local, err = RecheckGroups(tc, v, sub)
	if err != nil {
		t.Fatal(err)
	}
	if local {
		t.Fatal("t-closeness took the group-local fast path")
	}
	want, err := tc.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("t-closeness fallback verdict differs: %+v vs %+v", res, want)
	}

	// A conjunction with a non-local member still dispatches as local;
	// the member is fully evaluated inside.
	comp := All(KAnonymityPolicy{K: 2}, tc)
	res, local, err = RecheckGroups(comp, v, allGroups(v))
	if err != nil || !local {
		t.Fatalf("composite recheck: local=%v err=%v", local, err)
	}
	if want, _ := comp.Evaluate(v); !reflect.DeepEqual(res, want) {
		t.Fatalf("composite recheck verdict differs: %+v vs %+v", res, want)
	}
}

// TestBoundsFromStatsMatchesComputeBounds: bounds refreshed from group
// statistics must equal bounds computed from the table they describe,
// across p values on both sides of feasibility.
func TestBoundsFromStatsMatchesComputeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	conf := []string{"Ill", "Inc"}
	for round := 0; round < 4; round++ {
		tbl := recheckTable(t, rng, 30+60*round)
		stats, err := tbl.GroupStats([]string{"Q1", "Q2"}, conf, 1)
		if err != nil {
			t.Fatal(err)
		}
		for p := 1; p <= 6; p++ {
			want, err := ComputeBounds(tbl, conf, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := BoundsFromStats(stats, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("round %d p=%d: BoundsFromStats = %+v, ComputeBounds = %+v", round, p, got, want)
			}
		}
	}
	if _, err := BoundsFromStats(nil, 2); err == nil {
		t.Fatal("nil stats accepted")
	}
	if _, err := BoundsFromStats(&table.GroupStats{NumQI: 1}, 2); err == nil {
		t.Fatal("conf-free stats accepted")
	}
	if _, err := BoundsFromStats(&table.GroupStats{NumConf: 1}, 0); err == nil {
		t.Fatal("p = 0 accepted")
	}
}
