package core

import (
	"fmt"

	"psk/internal/table"
)

// Reason explains why a privacy check failed, and in particular which
// of Algorithm 2's gates rejected the table.
type Reason int

// Check outcomes, ordered by how early Algorithm 2 detects them; the
// policy layer appends the outcomes of the follow-on properties.
const (
	// Satisfied: the table has the property.
	Satisfied Reason = iota
	// FailedCondition1: p exceeds the minimum distinct-value count of
	// the confidential attributes (Condition 1).
	FailedCondition1
	// FailedCondition2: the table has more QI-groups than maxGroups
	// admits (Condition 2).
	FailedCondition2
	// NotKAnonymous: some QI-group is smaller than k.
	NotKAnonymous
	// NotPSensitive: some QI-group has fewer than p distinct values for
	// some confidential attribute.
	NotPSensitive
	// NotLDiverse: some QI-group fails an l-diversity variant's
	// threshold (distinct count, entropy, or recursive ratio).
	NotLDiverse
	// NotTClose: some QI-group's confidential distribution is farther
	// than t from the table-wide distribution.
	NotTClose
	// NotAlphaBounded: some confidential value exceeds the alpha
	// frequency bound inside a QI-group.
	NotAlphaBounded
	// NotExtended: some QI-group has fewer than p distinct categories at
	// some level of the confidential value hierarchy.
	NotExtended
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case Satisfied:
		return "satisfied"
	case FailedCondition1:
		return "failed necessary condition 1 (p > maxP)"
	case FailedCondition2:
		return "failed necessary condition 2 (too many QI-groups)"
	case NotKAnonymous:
		return "not k-anonymous"
	case NotPSensitive:
		return "not p-sensitive"
	case NotLDiverse:
		return "not l-diverse"
	case NotTClose:
		return "not t-close"
	case NotAlphaBounded:
		return "exceeds the alpha frequency bound"
	case NotExtended:
		return "not extended p-sensitive"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Result reports the outcome of a privacy check together with the
// quantities computed on the way. Every policy reports through this one
// verdict type.
type Result struct {
	// Satisfied is true when the table has the property.
	Satisfied bool
	// Reason identifies the first gate that failed (or Satisfied).
	Reason Reason
	// MaxP and MaxGroups are the necessary-condition bounds that were in
	// force (zero when the check skipped them).
	MaxP      int
	MaxGroups int
	// Groups is the number of QI-groups observed (when counted).
	Groups int
	// Group is the index (first-appearance order) of the first QI-group
	// that violated the property, or -1 when no single group is
	// implicated (satisfied, or a necessary-condition filter rejected
	// the whole table).
	Group int
	// Attr is the histogram index of the confidential attribute
	// implicated in the violation — a position in the confidential list
	// the statistics were built with — or -1 when none is.
	Attr int
}

func validatePK(p, k int) error {
	if k < 2 {
		return fmt.Errorf("core: k must be >= 2, got %d", k)
	}
	if p < 1 {
		return fmt.Errorf("core: p must be >= 1, got %d", p)
	}
	if p > k {
		return fmt.Errorf("core: p (%d) must be <= k (%d)", p, k)
	}
	return nil
}

// CheckBasic is the paper's Algorithm 1: test k-anonymity, then require
// at least p distinct values per (QI-group, confidential attribute)
// pair, stopping at the first violation. It is a thin wrapper over the
// statistics path (CheckBasicStats).
func CheckBasic(t *table.Table, qis, confidential []string, p, k int) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if len(confidential) == 0 {
		return false, fmt.Errorf("core: no confidential attributes")
	}
	s, err := t.GroupStats(qis, confidential, 1)
	if err != nil {
		return false, err
	}
	return CheckBasicStats(s, p, k)
}

// Check is the paper's Algorithm 2: evaluate the two necessary
// conditions as cheap rejection filters before the detailed group scan.
// Bounds are computed from the table itself; use CheckWithBounds to
// reuse bounds precomputed on the initial microdata (Theorems 1 and 2).
func Check(t *table.Table, qis, confidential []string, p, k int) (Result, error) {
	bounds, err := ComputeBounds(t, confidential, p)
	if err != nil {
		return Result{}, err
	}
	return CheckWithBounds(t, qis, confidential, p, k, bounds)
}

// CheckWithBounds is Algorithm 2 with externally supplied bounds. The
// typical caller computed them once on the initial microdata; Theorems 1
// and 2 guarantee they remain valid for every masked microdata derived
// by generalization and suppression. It is a thin wrapper over the
// statistics path (CheckStatsWithBounds).
func CheckWithBounds(t *table.Table, qis, confidential []string, p, k int, bounds Bounds) (Result, error) {
	if err := validatePK(p, k); err != nil {
		return Result{}, err
	}
	s, err := t.GroupStats(qis, confidential, 1)
	if err != nil {
		return Result{}, err
	}
	return CheckStatsWithBounds(s, p, k, bounds)
}

// Sensitivity computes the largest p for which the table (with its
// current QI-grouping) is p-sensitive: the minimum over QI-groups and
// confidential attributes of the number of distinct values. An empty
// table has sensitivity 0.
func Sensitivity(t *table.Table, qis, confidential []string) (int, error) {
	if len(confidential) == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	if t.NumRows() == 0 {
		return 0, nil
	}
	s, err := t.GroupStats(qis, confidential, 1)
	if err != nil {
		return 0, err
	}
	return SensitivityStats(s)
}

// AttributeDisclosures counts the (QI-group, confidential attribute)
// pairs with fewer than p distinct values — the "number of attribute
// disclosures" reported in Table 8 (there with p = 2: groups in which a
// confidential attribute is constant, so an intruder who links any
// member learns that attribute's value with certainty).
func AttributeDisclosures(t *table.Table, qis, confidential []string, p int) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: p must be >= 1, got %d", p)
	}
	if len(confidential) == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	s, err := t.GroupStats(qis, confidential, 1)
	if err != nil {
		return 0, err
	}
	return AttributeDisclosuresStats(s, p)
}
