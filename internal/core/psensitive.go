package core

import (
	"fmt"

	"psk/internal/table"
)

// Reason explains why a p-sensitive k-anonymity check failed, and in
// particular which of Algorithm 2's gates rejected the table.
type Reason int

// Check outcomes, ordered by how early Algorithm 2 detects them.
const (
	// Satisfied: the table has p-sensitive k-anonymity.
	Satisfied Reason = iota
	// FailedCondition1: p exceeds the minimum distinct-value count of
	// the confidential attributes (Condition 1).
	FailedCondition1
	// FailedCondition2: the table has more QI-groups than maxGroups
	// admits (Condition 2).
	FailedCondition2
	// NotKAnonymous: some QI-group is smaller than k.
	NotKAnonymous
	// NotPSensitive: some QI-group has fewer than p distinct values for
	// some confidential attribute.
	NotPSensitive
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case Satisfied:
		return "satisfied"
	case FailedCondition1:
		return "failed necessary condition 1 (p > maxP)"
	case FailedCondition2:
		return "failed necessary condition 2 (too many QI-groups)"
	case NotKAnonymous:
		return "not k-anonymous"
	case NotPSensitive:
		return "not p-sensitive"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Result reports the outcome of a p-sensitive k-anonymity check
// together with the quantities Algorithm 2 computed on the way.
type Result struct {
	// Satisfied is true when the table has p-sensitive k-anonymity.
	Satisfied bool
	// Reason identifies the first gate that failed (or Satisfied).
	Reason Reason
	// MaxP and MaxGroups are the necessary-condition bounds that were in
	// force (zero when the check skipped them).
	MaxP      int
	MaxGroups int
	// Groups is the number of QI-groups observed (when counted).
	Groups int
}

func validatePK(p, k int) error {
	if k < 2 {
		return fmt.Errorf("core: k must be >= 2, got %d", k)
	}
	if p < 1 {
		return fmt.Errorf("core: p must be >= 1, got %d", p)
	}
	if p > k {
		return fmt.Errorf("core: p (%d) must be <= k (%d)", p, k)
	}
	return nil
}

// CheckBasic is the paper's Algorithm 1: test k-anonymity with a
// group-by, then scan every (QI-group, confidential attribute) pair and
// require at least p distinct values, stopping at the first violation.
func CheckBasic(t *table.Table, qis, confidential []string, p, k int) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if len(confidential) == 0 {
		return false, fmt.Errorf("core: no confidential attributes")
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return false, err
	}
	for _, g := range groups {
		if g.Size() < k {
			return false, nil
		}
	}
	for _, g := range groups {
		for _, attr := range confidential {
			ok, err := t.DistinctAtLeast(attr, g.Rows, p)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

// Check is the paper's Algorithm 2: evaluate the two necessary
// conditions as cheap rejection filters before the detailed group scan.
// Bounds are computed from the table itself; use CheckWithBounds to
// reuse bounds precomputed on the initial microdata (Theorems 1 and 2).
func Check(t *table.Table, qis, confidential []string, p, k int) (Result, error) {
	bounds, err := ComputeBounds(t, confidential, p)
	if err != nil {
		return Result{}, err
	}
	return CheckWithBounds(t, qis, confidential, p, k, bounds)
}

// CheckWithBounds is Algorithm 2 with externally supplied bounds. The
// typical caller computed them once on the initial microdata; Theorems 1
// and 2 guarantee they remain valid for every masked microdata derived
// by generalization and suppression.
func CheckWithBounds(t *table.Table, qis, confidential []string, p, k int, bounds Bounds) (Result, error) {
	if err := validatePK(p, k); err != nil {
		return Result{}, err
	}
	res := Result{MaxP: bounds.MaxP, MaxGroups: bounds.MaxGroups}

	// First necessary condition.
	if p > bounds.MaxP {
		res.Reason = FailedCondition1
		return res, nil
	}

	// Second necessary condition.
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return Result{}, err
	}
	res.Groups = len(groups)
	if p >= 2 && len(groups) > bounds.MaxGroups {
		res.Reason = FailedCondition2
		return res, nil
	}

	// k-anonymity.
	for _, g := range groups {
		if g.Size() < k {
			res.Reason = NotKAnonymous
			return res, nil
		}
	}

	// Detailed p-sensitivity scan; only tables passing the two
	// conditions reach this loop. DistinctAtLeast stops counting a
	// group's values as soon as the p-th distinct one appears.
	for _, g := range groups {
		for _, attr := range confidential {
			ok, err := t.DistinctAtLeast(attr, g.Rows, p)
			if err != nil {
				return Result{}, err
			}
			if !ok {
				res.Reason = NotPSensitive
				return res, nil
			}
		}
	}
	res.Satisfied = true
	res.Reason = Satisfied
	return res, nil
}

// Sensitivity computes the largest p for which the table (with its
// current QI-grouping) is p-sensitive: the minimum over QI-groups and
// confidential attributes of the number of distinct values. An empty
// table has sensitivity 0.
func Sensitivity(t *table.Table, qis, confidential []string) (int, error) {
	if len(confidential) == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	if t.NumRows() == 0 {
		return 0, nil
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return 0, err
	}
	min := -1
	for _, g := range groups {
		for _, attr := range confidential {
			if min != -1 {
				// A group already known to reach the running minimum
				// cannot lower it; DistinctAtLeast short-circuits at min
				// distinct values instead of counting them all.
				atLeast, err := t.DistinctAtLeast(attr, g.Rows, min)
				if err != nil {
					return 0, err
				}
				if atLeast {
					continue
				}
			}
			d, err := t.DistinctInRows(attr, g.Rows)
			if err != nil {
				return 0, err
			}
			if min == -1 || d < min {
				min = d
			}
		}
	}
	return min, nil
}

// AttributeDisclosures counts the (QI-group, confidential attribute)
// pairs with fewer than p distinct values — the "number of attribute
// disclosures" reported in Table 8 (there with p = 2: groups in which a
// confidential attribute is constant, so an intruder who links any
// member learns that attribute's value with certainty).
func AttributeDisclosures(t *table.Table, qis, confidential []string, p int) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: p must be >= 1, got %d", p)
	}
	if len(confidential) == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, g := range groups {
		for _, attr := range confidential {
			ok, err := t.DistinctAtLeast(attr, g.Rows, p)
			if err != nil {
				return 0, err
			}
			if !ok {
				count++
			}
		}
	}
	return count, nil
}
