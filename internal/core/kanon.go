// Package core implements the paper's primary contribution: the
// p-sensitive k-anonymity privacy model.
//
// It provides the k-anonymity check (Definition 1), the p-sensitive
// k-anonymity check (Definition 2) in both the basic form of Algorithm 1
// and the improved form of Algorithm 2, the frequency-set machinery of
// Definition 4, the two necessary conditions (maxP, maxGroups), and the
// attribute-disclosure measurements behind Table 8. Theorems 1 and 2 of
// the paper are what justify the Bounds type: bounds computed once on
// the initial microdata remain valid for every masked microdata derived
// by generalization and suppression.
//
// Every property is implemented once, as a Policy over group statistics
// (policy.go); the table-based checks below and in the sibling files
// are wrappers that build the statistics and evaluate the stats path.
package core

import (
	"fmt"

	"psk/internal/table"
)

// IsKAnonymous reports whether every combination of quasi-identifier
// values occurs at least k times (Definition 1). An empty table is
// trivially k-anonymous.
func IsKAnonymous(t *table.Table, qis []string, k int) (bool, error) {
	if k < 1 {
		return false, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if t.NumRows() == 0 {
		return true, nil
	}
	s, err := t.GroupStats(qis, nil, 1)
	if err != nil {
		return false, err
	}
	return IsKAnonymousStats(s, k)
}

// MinGroupSize returns the size of the smallest QI-group — the largest k
// for which the table is k-anonymous. An empty table returns 0.
func MinGroupSize(t *table.Table, qis []string) (int, error) {
	if t.NumRows() == 0 {
		return 0, nil
	}
	s, err := t.GroupStats(qis, nil, 1)
	if err != nil {
		return 0, err
	}
	return s.MinGroupSize(), nil
}

// TuplesViolatingK counts the tuples belonging to QI-groups smaller than
// k — the number of tuples suppression would remove (the parenthesized
// counts of Figure 3).
func TuplesViolatingK(t *table.Table, qis []string, k int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	s, err := t.GroupStats(qis, nil, 1)
	if err != nil {
		return 0, err
	}
	return s.TuplesBelow(k), nil
}
