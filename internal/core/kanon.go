// Package core implements the paper's primary contribution: the
// p-sensitive k-anonymity privacy model.
//
// It provides the k-anonymity check (Definition 1), the p-sensitive
// k-anonymity check (Definition 2) in both the basic form of Algorithm 1
// and the improved form of Algorithm 2, the frequency-set machinery of
// Definition 4, the two necessary conditions (maxP, maxGroups), and the
// attribute-disclosure measurements behind Table 8. Theorems 1 and 2 of
// the paper are what justify the Bounds type: bounds computed once on
// the initial microdata remain valid for every masked microdata derived
// by generalization and suppression.
package core

import (
	"fmt"

	"psk/internal/table"
)

// IsKAnonymous reports whether every combination of quasi-identifier
// values occurs at least k times (Definition 1). An empty table is
// trivially k-anonymous.
func IsKAnonymous(t *table.Table, qis []string, k int) (bool, error) {
	if k < 1 {
		return false, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if t.NumRows() == 0 {
		return true, nil
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return false, err
	}
	for _, g := range groups {
		if g.Size() < k {
			return false, nil
		}
	}
	return true, nil
}

// MinGroupSize returns the size of the smallest QI-group — the largest k
// for which the table is k-anonymous. An empty table returns 0.
func MinGroupSize(t *table.Table, qis []string) (int, error) {
	if t.NumRows() == 0 {
		return 0, nil
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return 0, err
	}
	min := groups[0].Size()
	for _, g := range groups[1:] {
		if g.Size() < min {
			min = g.Size()
		}
	}
	return min, nil
}

// TuplesViolatingK counts the tuples belonging to QI-groups smaller than
// k — the number of tuples suppression would remove (the parenthesized
// counts of Figure 3).
func TuplesViolatingK(t *table.Table, qis []string, k int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	groups, err := t.GroupBy(qis...)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, g := range groups {
		if g.Size() < k {
			n += g.Size()
		}
	}
	return n, nil
}
