package core

import "psk/internal/obs"

// Observe instruments a policy tree with per-policy telemetry: every
// leaf policy reports its evaluation count, satisfaction count and
// wall time to rec under its own name. Compositions are rebuilt around
// instrumented members — a conjunction's members are wrapped
// individually (so a report shows where a composite spends its time),
// and WithBounds keeps its rejection filters outside the timer (the
// engine already accounts pruned nodes by verdict; timing them as
// policy work would double-count microseconds that never reached the
// inner policy). A nil recorder returns p unchanged, keeping the
// disabled path free of wrapper indirection.
func Observe(p Policy, rec *obs.Recorder) Policy {
	if rec == nil || p == nil {
		return p
	}
	switch t := p.(type) {
	case conjunction:
		out := make(conjunction, len(t))
		for i, member := range t {
			out[i] = Observe(member, rec)
		}
		return out
	case boundedPolicy:
		return boundedPolicy{inner: Observe(t.inner, rec), bounds: t.bounds}
	case observedPolicy:
		return observedPolicy{inner: t.inner, name: t.name, rec: rec}
	default:
		return observedPolicy{inner: p, name: p.Name(), rec: rec}
	}
}

// observedPolicy times one leaf policy. The name is captured at wrap
// time: Name() renders fresh strings per call, and the hot path should
// not.
type observedPolicy struct {
	inner Policy
	name  string
	rec   *obs.Recorder
}

func (p observedPolicy) Name() string        { return p.inner.Name() }
func (p observedPolicy) ConfAttrs() []string { return p.inner.ConfAttrs() }

func (p observedPolicy) Evaluate(v StatsView) (Result, error) {
	start := p.rec.Start()
	res, err := p.inner.Evaluate(v)
	p.rec.PolicyEval(p.name, start, err == nil && res.Satisfied)
	return res, err
}
