package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"psk/internal/table"
)

// microdata is a quick generator for random initial microdata with two
// QI columns and two confidential columns.
type microdata struct {
	tbl *table.Table
}

func (microdata) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(size*4+1)
	sch := table.MustSchema(
		table.Field{Name: "K1", Type: table.String},
		table.Field{Name: "K2", Type: table.String},
		table.Field{Name: "S1", Type: table.String},
		table.Field{Name: "S2", Type: table.String},
	)
	keys := []string{"a", "b", "c"}
	sens := []string{"u", "v", "w", "x", "y"}
	b, _ := table.NewBuilder(sch)
	for i := 0; i < n; i++ {
		b.Append(
			table.SV(keys[r.Intn(len(keys))]),
			table.SV(keys[r.Intn(len(keys))]),
			table.SV(sens[r.Intn(len(sens))]),
			table.SV(sens[r.Intn(len(sens))]),
		)
	}
	t, _ := b.Build()
	return reflect.ValueOf(microdata{tbl: t})
}

var mdQIs = []string{"K1", "K2"}
var mdConf = []string{"S1", "S2"}

// suppressRandom removes a random subset of rows, mimicking the
// suppression step (which only ever deletes tuples).
func suppressRandom(t *table.Table, r *rand.Rand) *table.Table {
	return t.Filter(func(int) bool { return r.Intn(4) != 0 })
}

// TestTheorem1Property: maxP computed on the initial microdata is an
// upper bound for maxP of any row-subset (suppression never increases
// distinct counts). This is the paper's Theorem 1.
func TestTheorem1Property(t *testing.T) {
	f := func(md microdata, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		maxP, err := MaxP(md.tbl, mdConf)
		if err != nil {
			return false
		}
		mm := suppressRandom(md.tbl, r)
		if mm.NumRows() == 0 {
			return true
		}
		maxPM, err := MaxP(mm, mdConf)
		if err != nil {
			return false
		}
		return maxP >= maxPM
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTheorem2Property: maxGroups computed on the initial microdata is
// an upper bound for maxGroups of any row-subset, for every feasible p.
// This is the paper's Theorem 2.
func TestTheorem2Property(t *testing.T) {
	f := func(md microdata, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mm := suppressRandom(md.tbl, r)
		if mm.NumRows() == 0 {
			return true
		}
		maxPM, err := MaxP(mm, mdConf)
		if err != nil {
			return false
		}
		for p := 2; p <= maxPM; p++ {
			gIM, err := MaxGroups(md.tbl, mdConf, p)
			if err != nil {
				return false
			}
			gMM, err := MaxGroups(mm, mdConf, p)
			if err != nil {
				return false
			}
			if gIM < gMM {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNecessaryConditionsAreNecessary: whenever the detailed check says
// a table satisfies p-sensitive k-anonymity, both necessary conditions
// must hold — the conditions never wrongly reject a satisfying table.
func TestNecessaryConditionsAreNecessary(t *testing.T) {
	f := func(md microdata) bool {
		for k := 2; k <= 3; k++ {
			for p := 1; p <= k; p++ {
				ok, err := CheckBasic(md.tbl, mdQIs, mdConf, p, k)
				if err != nil {
					return false
				}
				if !ok {
					continue
				}
				// Basic says satisfied: Algorithm 2 must agree (its
				// condition gates must not fire).
				res, err := Check(md.tbl, mdQIs, mdConf, p, k)
				if err != nil || !res.Satisfied {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCheckMonotoneInPK: satisfying (p, k) implies satisfying any
// weaker (p', k') with p' <= p, k' <= k.
func TestCheckMonotoneInPK(t *testing.T) {
	f := func(md microdata) bool {
		ok, err := CheckBasic(md.tbl, mdQIs, mdConf, 3, 3)
		if err != nil {
			return false
		}
		if !ok {
			return true
		}
		for k := 2; k <= 3; k++ {
			for p := 1; p <= k && p <= 3; p++ {
				weaker, err := CheckBasic(md.tbl, mdQIs, mdConf, p, k)
				if err != nil || !weaker {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSensitivityConsistent: CheckBasic(p) succeeds iff p <=
// Sensitivity (given k-anonymity holds with k = min group size >= 2).
func TestSensitivityConsistent(t *testing.T) {
	f := func(md microdata) bool {
		minSize, err := MinGroupSize(md.tbl, mdQIs)
		if err != nil || minSize < 2 {
			return true
		}
		s, err := Sensitivity(md.tbl, mdQIs, mdConf)
		if err != nil {
			return false
		}
		maxP := s
		if maxP > minSize {
			maxP = minSize
		}
		for p := 1; p <= maxP; p++ {
			ok, err := CheckBasic(md.tbl, mdQIs, mdConf, p, maxInt(2, p))
			if err != nil || !ok {
				return false
			}
		}
		if s < minSize {
			ok, err := CheckBasic(md.tbl, mdQIs, mdConf, s+1, maxInt(2, s+1))
			if err != nil || ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPLessOrEqualSensitivityBoundedByGroupSize: sensitivity never
// exceeds the smallest group size (p <= k observation from Section 2).
func TestSensitivityBoundedByGroupSize(t *testing.T) {
	f := func(md microdata) bool {
		s, err1 := Sensitivity(md.tbl, mdQIs, mdConf)
		g, err2 := MinGroupSize(md.tbl, mdQIs)
		if err1 != nil || err2 != nil {
			return false
		}
		return s <= g || md.tbl.NumRows() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAttributeDisclosuresZeroIffPSensitive: a k-anonymous table has no
// p-level attribute disclosures exactly when it is p-sensitive.
func TestAttributeDisclosuresZeroIffPSensitive(t *testing.T) {
	f := func(md microdata) bool {
		minSize, err := MinGroupSize(md.tbl, mdQIs)
		if err != nil || minSize < 2 {
			return true
		}
		for p := 1; p <= 2; p++ {
			n, err := AttributeDisclosures(md.tbl, mdQIs, mdConf, p)
			if err != nil {
				return false
			}
			ok, err := CheckBasic(md.tbl, mdQIs, mdConf, p, 2)
			if err != nil {
				return false
			}
			if (n == 0) != ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
