package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"psk/internal/table"
)

// This file is the package's verdict layer. Every privacy property the
// library knows — k-anonymity, p-sensitivity, the l-diversity variants,
// t-closeness, (p, alpha)-sensitivity, extended p-sensitivity — depends
// only on per-QI-group aggregates: group sizes and confidential code
// histograms. Policy makes that uniformity explicit: a policy is a
// predicate over table.GroupStats, every property is one Policy
// implementation, and conjunction (All) plus the Theorem 1–2 rejection
// filters (WithBounds) compose them. The table-based Check* functions
// elsewhere in the package are thin wrappers that build statistics and
// evaluate the matching policy; the group loops below are the only
// verdict implementations in the package.
//
// All built-in policies are monotone under group merging: if masked
// microdata satisfies the policy, so does every further generalization
// of it (merging QI-groups never lowers a group size, a distinct count,
// an entropy, a per-level category count, and never raises a relative
// frequency or the distance to the table-wide distribution). The
// lattice searches that prune by that assumption (Samarati's binary
// search, AllMinimal's predictive tagging, Incognito's subset pruning)
// rely on it; custom Policy implementations fed to them must preserve
// it.

// StatsView is what a Policy evaluates: group statistics together with
// the confidential attribute names their histograms were built with,
// so policies can address attributes by name. Conf[i] names the
// attribute behind Stats.Groups[*].Hists[i]; it may be shorter than the
// histogram vector (or nil) when the caller addresses attributes by
// index only.
type StatsView struct {
	Stats *table.GroupStats
	Conf  []string
}

// NewStatsView builds the view a policy evaluation needs: the table's
// group statistics over the given key and confidential attributes.
func NewStatsView(t *table.Table, qis, conf []string, workers int) (StatsView, error) {
	s, err := t.GroupStats(qis, conf, workers)
	if err != nil {
		return StatsView{}, err
	}
	return StatsView{Stats: s, Conf: conf}, nil
}

// index resolves a confidential attribute name to its histogram index.
func (v StatsView) index(attr string) (int, error) {
	for i, n := range v.Conf {
		if n == attr {
			if err := validateConfIdx(v.Stats, i); err != nil {
				return 0, err
			}
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: policy: confidential attribute %q not among the statistics' attributes %v", attr, v.Conf)
}

// indices resolves an attribute list to histogram indices; an empty
// list means "every attribute the view carries" and is returned as nil
// (which the group scans below treat as all histograms).
func (v StatsView) indices(attrs []string) ([]int, error) {
	if len(attrs) == 0 {
		if v.Stats.NumConf == 0 {
			return nil, fmt.Errorf("core: no confidential attributes")
		}
		return nil, nil
	}
	idxs := make([]int, len(attrs))
	for i, a := range attrs {
		idx, err := v.index(a)
		if err != nil {
			return nil, err
		}
		idxs[i] = idx
	}
	return idxs, nil
}

// Policy is a privacy property evaluated over group statistics. A
// policy must be a pure function of the statistics it is shown: the
// search engine evaluates one policy against many lattice nodes, from
// many goroutines, and caches nothing about it.
type Policy interface {
	// Name renders the policy for reports ("2-sensitive-3-anonymity").
	Name() string
	// ConfAttrs lists the confidential attributes the policy addresses
	// by name, so callers can build statistics that carry the needed
	// histograms. Policies that apply to "whatever the view carries"
	// (empty Attrs fields) return nil.
	ConfAttrs() []string
	// Evaluate renders the verdict. The Result always carries the first
	// violating group (Group, -1 when none) and, when a specific
	// confidential attribute is implicated, its histogram index (Attr,
	// -1 when none). Errors are reserved for invalid parameters or
	// attributes missing from the view, never for unsatisfied tables.
	Evaluate(v StatsView) (Result, error)
}

// satisfied is the Result every policy returns on success.
func satisfied(v StatsView) Result {
	return Result{Satisfied: true, Reason: Satisfied, Groups: v.Stats.NumGroups(), Group: -1, Attr: -1}
}

// violation is the Result shell for a failed gate.
func violation(v StatsView, reason Reason, group, attr int) Result {
	return Result{Reason: reason, Groups: v.Stats.NumGroups(), Group: group, Attr: attr}
}

// KAnonymityPolicy is Definition 1: every QI-group holds at least K
// tuples.
type KAnonymityPolicy struct {
	K int
}

func (p KAnonymityPolicy) Name() string        { return fmt.Sprintf("%d-anonymity", p.K) }
func (p KAnonymityPolicy) ConfAttrs() []string { return nil }

func (p KAnonymityPolicy) Evaluate(v StatsView) (Result, error) {
	if p.K < 1 {
		return Result{}, fmt.Errorf("core: k must be >= 1, got %d", p.K)
	}
	if g := firstBelowK(v.Stats, p.K); g >= 0 {
		return violation(v, NotKAnonymous, g, -1), nil
	}
	return satisfied(v), nil
}

// PSensitivityPolicy is the sensitivity half of Definition 2 alone:
// every QI-group holds at least P distinct values of each confidential
// attribute in Attrs (every attribute the view carries, when empty).
type PSensitivityPolicy struct {
	P     int
	Attrs []string
}

func (p PSensitivityPolicy) Name() string {
	return fmt.Sprintf("%d-sensitivity%s", p.P, attrSuffix(p.Attrs))
}
func (p PSensitivityPolicy) ConfAttrs() []string { return p.Attrs }

func (p PSensitivityPolicy) Evaluate(v StatsView) (Result, error) {
	if p.P < 1 {
		return Result{}, fmt.Errorf("core: p must be >= 1, got %d", p.P)
	}
	idxs, err := v.indices(p.Attrs)
	if err != nil {
		return Result{}, err
	}
	if g, a := firstLowDistinct(v.Stats, idxs, p.P); g >= 0 {
		return violation(v, NotPSensitive, g, a), nil
	}
	return satisfied(v), nil
}

// PSensitiveKAnonymityPolicy is Definition 2, gate for gate the check
// of Algorithm 1: k-anonymity over every group first, then the
// distinct-count scan.
type PSensitiveKAnonymityPolicy struct {
	P, K  int
	Attrs []string
}

func (p PSensitiveKAnonymityPolicy) Name() string {
	return fmt.Sprintf("%d-sensitive-%d-anonymity%s", p.P, p.K, attrSuffix(p.Attrs))
}
func (p PSensitiveKAnonymityPolicy) ConfAttrs() []string { return p.Attrs }

func (p PSensitiveKAnonymityPolicy) Evaluate(v StatsView) (Result, error) {
	if err := validatePK(p.P, p.K); err != nil {
		return Result{}, err
	}
	idxs, err := v.indices(p.Attrs)
	if err != nil {
		return Result{}, err
	}
	if g := firstBelowK(v.Stats, p.K); g >= 0 {
		return violation(v, NotKAnonymous, g, -1), nil
	}
	if g, a := firstLowDistinct(v.Stats, idxs, p.P); g >= 0 {
		return violation(v, NotPSensitive, g, a), nil
	}
	return satisfied(v), nil
}

// DistinctLDiversityPolicy requires at least L distinct values of Attr
// in every QI-group (Machanavajjhala et al.'s distinct l-diversity).
type DistinctLDiversityPolicy struct {
	Attr string
	L    int
}

func (p DistinctLDiversityPolicy) Name() string {
	return fmt.Sprintf("distinct-%d-diversity(%s)", p.L, p.Attr)
}
func (p DistinctLDiversityPolicy) ConfAttrs() []string { return []string{p.Attr} }

func (p DistinctLDiversityPolicy) Evaluate(v StatsView) (Result, error) {
	if p.L < 1 {
		return Result{}, fmt.Errorf("core: l must be >= 1, got %d", p.L)
	}
	idx, err := v.index(p.Attr)
	if err != nil {
		return Result{}, err
	}
	if g, a := firstLowDistinct(v.Stats, []int{idx}, p.L); g >= 0 {
		return violation(v, NotLDiverse, g, a), nil
	}
	return satisfied(v), nil
}

// EntropyLDiversityPolicy requires every QI-group's Attr distribution
// to have entropy at least log(L).
type EntropyLDiversityPolicy struct {
	Attr string
	L    int
}

func (p EntropyLDiversityPolicy) Name() string {
	return fmt.Sprintf("entropy-%d-diversity(%s)", p.L, p.Attr)
}
func (p EntropyLDiversityPolicy) ConfAttrs() []string { return []string{p.Attr} }

func (p EntropyLDiversityPolicy) Evaluate(v StatsView) (Result, error) {
	if p.L < 1 {
		return Result{}, fmt.Errorf("core: l must be >= 1, got %d", p.L)
	}
	idx, err := v.index(p.Attr)
	if err != nil {
		return Result{}, err
	}
	if g := firstLowEntropy(v.Stats, idx, p.L); g >= 0 {
		return violation(v, NotLDiverse, g, idx), nil
	}
	return satisfied(v), nil
}

// RecursiveLDiversityPolicy is recursive (c, l)-diversity: with the
// group's Attr value counts sorted descending (r1 >= r2 >= ... >= rm),
// every group must satisfy r1 < C * (r_L + r_{L+1} + ... + r_m), so the
// most frequent value cannot dominate even after the L-1 next most
// frequent ones are ruled out.
type RecursiveLDiversityPolicy struct {
	Attr string
	C    float64
	L    int
}

func (p RecursiveLDiversityPolicy) Name() string {
	return fmt.Sprintf("recursive-(%g,%d)-diversity(%s)", p.C, p.L, p.Attr)
}
func (p RecursiveLDiversityPolicy) ConfAttrs() []string { return []string{p.Attr} }

func (p RecursiveLDiversityPolicy) Evaluate(v StatsView) (Result, error) {
	if p.L < 1 {
		return Result{}, fmt.Errorf("core: l must be >= 1, got %d", p.L)
	}
	if p.C <= 0 {
		return Result{}, fmt.Errorf("core: recursive l-diversity requires c > 0, got %g", p.C)
	}
	idx, err := v.index(p.Attr)
	if err != nil {
		return Result{}, err
	}
	if g := firstNotRecursive(v.Stats, idx, p.C, p.L); g >= 0 {
		return violation(v, NotLDiverse, g, idx), nil
	}
	return satisfied(v), nil
}

// TClosenessPolicy requires every QI-group's Attr distribution to lie
// within variational distance T of the table-wide distribution (the
// equal-distance EMD of Li et al.).
type TClosenessPolicy struct {
	Attr string
	T    float64
}

func (p TClosenessPolicy) Name() string {
	return fmt.Sprintf("%g-closeness(%s)", p.T, p.Attr)
}
func (p TClosenessPolicy) ConfAttrs() []string { return []string{p.Attr} }

func (p TClosenessPolicy) Evaluate(v StatsView) (Result, error) {
	if p.T < 0 {
		return Result{}, fmt.Errorf("core: t must be >= 0, got %g", p.T)
	}
	idx, err := v.index(p.Attr)
	if err != nil {
		return Result{}, err
	}
	_, over := tclosenessScan(v.Stats, idx, p.T)
	if over >= 0 {
		return violation(v, NotTClose, over, idx), nil
	}
	return satisfied(v), nil
}

// PAlphaPolicy is (p, alpha)-sensitive k-anonymity: k-anonymity, at
// least P distinct values per (group, attribute) pair, and no single
// confidential value covering more than an Alpha fraction of any group.
type PAlphaPolicy struct {
	P, K  int
	Alpha float64
	Attrs []string
}

func (p PAlphaPolicy) Name() string {
	return fmt.Sprintf("(%d,%g)-sensitive-%d-anonymity%s", p.P, p.Alpha, p.K, attrSuffix(p.Attrs))
}
func (p PAlphaPolicy) ConfAttrs() []string { return p.Attrs }

func (p PAlphaPolicy) Evaluate(v StatsView) (Result, error) {
	if err := validatePK(p.P, p.K); err != nil {
		return Result{}, err
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		return Result{}, fmt.Errorf("core: alpha must be in (0, 1], got %g", p.Alpha)
	}
	idxs, err := v.indices(p.Attrs)
	if err != nil {
		return Result{}, err
	}
	if g := firstBelowK(v.Stats, p.K); g >= 0 {
		return violation(v, NotKAnonymous, g, -1), nil
	}
	if g, a, reason := firstAlphaViolation(v.Stats, idxs, p.P, p.Alpha); g >= 0 {
		return violation(v, reason, g, a), nil
	}
	return satisfied(v), nil
}

// ExtendedPolicy is extended p-sensitive k-anonymity over
// pre-resolved confidential level maps: k-anonymity, then at least P
// distinct categories of Attr at every hierarchy level 0..MaxLevel in
// every group. LevelMaps[lvl] translates ground confidential codes to
// level-lvl category codes (see ConfLevelMaps for building them from a
// hierarchy).
type ExtendedPolicy struct {
	Attr      string
	P, K      int
	MaxLevel  int
	LevelMaps []*table.CodeMap
}

func (p ExtendedPolicy) Name() string {
	return fmt.Sprintf("extended-%d-sensitive-%d-anonymity(%s)", p.P, p.K, p.Attr)
}
func (p ExtendedPolicy) ConfAttrs() []string { return []string{p.Attr} }

func (p ExtendedPolicy) Evaluate(v StatsView) (Result, error) {
	if err := validatePK(p.P, p.K); err != nil {
		return Result{}, err
	}
	if p.MaxLevel < 0 {
		return Result{}, fmt.Errorf("core: extended policy requires MaxLevel >= 0, got %d", p.MaxLevel)
	}
	if len(p.LevelMaps) <= p.MaxLevel {
		return Result{}, fmt.Errorf("core: extended policy has %d level maps for MaxLevel %d", len(p.LevelMaps), p.MaxLevel)
	}
	idx, err := v.index(p.Attr)
	if err != nil {
		return Result{}, err
	}
	if g := firstBelowK(v.Stats, p.K); g >= 0 {
		return violation(v, NotKAnonymous, g, -1), nil
	}
	g, err := firstExtendedViolation(v.Stats, idx, p.P, p.MaxLevel, p.LevelMaps)
	if err != nil {
		return Result{}, err
	}
	if g >= 0 {
		return violation(v, NotExtended, g, idx), nil
	}
	return satisfied(v), nil
}

// All conjoins policies: the composite is satisfied when every member
// is, and an unsatisfied member's Result (the first, in argument order)
// is the composite's. All() with no members is trivially satisfied.
func All(ps ...Policy) Policy {
	if len(ps) == 1 {
		return ps[0]
	}
	return conjunction(ps)
}

type conjunction []Policy

func (c conjunction) Name() string {
	names := make([]string, len(c))
	for i, p := range c {
		names[i] = p.Name()
	}
	return "all(" + strings.Join(names, " and ") + ")"
}

func (c conjunction) ConfAttrs() []string {
	var out []string
	seen := make(map[string]bool)
	for _, p := range c {
		for _, a := range p.ConfAttrs() {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

func (c conjunction) Evaluate(v StatsView) (Result, error) {
	for _, p := range c {
		res, err := p.Evaluate(v)
		if err != nil {
			return Result{}, err
		}
		if !res.Satisfied {
			return res, nil
		}
	}
	return satisfied(v), nil
}

// WithBounds wraps a policy with the Algorithm 2 / Theorem 1–2
// rejection filters: Condition 1 (bounds.P > bounds.MaxP, a property of
// the dataset) and Condition 2 (more QI-groups than bounds.MaxGroups
// admits) reject the statistics before the inner policy runs, and the
// bounds are stamped onto every Result exactly as CheckWithBounds
// reports them. Theorems 1 and 2 make bounds computed on the initial
// microdata valid for every masked microdata derived from it, so one
// wrapped policy serves a whole lattice search.
func WithBounds(inner Policy, bounds Bounds) Policy {
	return boundedPolicy{inner: inner, bounds: bounds}
}

type boundedPolicy struct {
	inner  Policy
	bounds Bounds
}

func (p boundedPolicy) Name() string        { return "bounded(" + p.inner.Name() + ")" }
func (p boundedPolicy) ConfAttrs() []string { return p.inner.ConfAttrs() }

func (p boundedPolicy) Evaluate(v StatsView) (Result, error) {
	res := Result{MaxP: p.bounds.MaxP, MaxGroups: p.bounds.MaxGroups, Group: -1, Attr: -1}

	// First necessary condition.
	if p.bounds.P > p.bounds.MaxP {
		res.Reason = FailedCondition1
		return res, nil
	}

	// Second necessary condition.
	res.Groups = v.Stats.NumGroups()
	if p.bounds.P >= 2 && res.Groups > p.bounds.MaxGroups {
		res.Reason = FailedCondition2
		return res, nil
	}

	out, err := p.inner.Evaluate(v)
	if err != nil {
		return Result{}, err
	}
	out.MaxP, out.MaxGroups = p.bounds.MaxP, p.bounds.MaxGroups
	return out, nil
}

// attrSuffix renders an explicit attribute list for policy names.
func attrSuffix(attrs []string) string {
	if len(attrs) == 0 {
		return ""
	}
	return "(" + strings.Join(attrs, ",") + ")"
}

// The group scans below are the only verdict loops in the package: the
// policies above and the exported *Stats functions in statscheck.go
// both delegate here, and the table-based checks wrap those.

// firstBelowK returns the index of the first group smaller than k, or
// -1 when every group is large enough.
func firstBelowK(s *table.GroupStats, k int) int {
	for i := range s.Groups {
		if s.Groups[i].Size < k {
			return i
		}
	}
	return -1
}

// firstLowDistinct returns the first (group, histogram) whose distinct
// code count falls below p, scanning the given histogram indices (nil
// meaning all of them) in order within each group; (-1, -1) when none.
func firstLowDistinct(s *table.GroupStats, idxs []int, p int) (int, int) {
	for i := range s.Groups {
		if idxs == nil {
			for a := range s.Groups[i].Hists {
				if s.Groups[i].Hists[a].Distinct() < p {
					return i, a
				}
			}
			continue
		}
		for _, a := range idxs {
			if s.Groups[i].Hists[a].Distinct() < p {
				return i, a
			}
		}
	}
	return -1, -1
}

// firstLowEntropy returns the first group whose confIdx-histogram
// entropy falls below log(l) (with the same boundary tolerance the
// package has always used: uniform groups of exactly l values count as
// diverse), or -1.
func firstLowEntropy(s *table.GroupStats, confIdx, l int) int {
	threshold := math.Log(float64(l))
	for i := range s.Groups {
		entropy := 0.0
		n := float64(s.Groups[i].Size)
		for _, e := range s.Groups[i].Hists[confIdx] {
			pr := float64(e.Count) / n
			entropy -= pr * math.Log(pr)
		}
		if entropy+1e-12 < threshold {
			return i
		}
	}
	return -1
}

// firstNotRecursive returns the first group violating recursive (c, l)-
// diversity on the confIdx histogram, or -1.
func firstNotRecursive(s *table.GroupStats, confIdx int, c float64, l int) int {
	var counts []int
	for i := range s.Groups {
		h := s.Groups[i].Hists[confIdx]
		counts = counts[:0]
		for _, e := range h {
			counts = append(counts, e.Count)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		tail := 0
		for j := l - 1; j < len(counts); j++ {
			tail += counts[j]
		}
		if len(counts) > 0 && !(float64(counts[0]) < c*float64(tail)) {
			return i
		}
	}
	return -1
}

// tclosenessScan computes, over the confIdx histograms, the worst
// variational distance between a group's distribution and the
// table-wide one, and the first group whose distance exceeds t (beyond
// float tolerance); over is -1 when none does (pass t = +Inf to only
// measure).
func tclosenessScan(s *table.GroupStats, confIdx int, t float64) (worst float64, over int) {
	over = -1
	if s.NumRows == 0 {
		return 0, -1
	}
	global := make(map[int]float64)
	for i := range s.Groups {
		for _, e := range s.Groups[i].Hists[confIdx] {
			global[e.Code] += float64(e.Count)
		}
	}
	n := float64(s.NumRows)
	for code := range global {
		global[code] /= n
	}
	for i := range s.Groups {
		local := make(map[int]float64, len(s.Groups[i].Hists[confIdx]))
		for _, e := range s.Groups[i].Hists[confIdx] {
			local[e.Code] = float64(e.Count)
		}
		gn := float64(s.Groups[i].Size)
		dist := 0.0
		for code, p := range global {
			q := local[code] / gn
			dist += math.Abs(p - q)
		}
		// Values present locally are always present globally, so the sum
		// above covers the full support.
		dist /= 2
		if dist > worst {
			worst = dist
		}
		if over == -1 && dist > t+1e-12 {
			over = i
		}
	}
	return worst, over
}

// firstAlphaViolation returns the first (group, histogram) breaking the
// (p, alpha) scan — fewer than p distinct values (NotPSensitive) or a
// value more frequent than alpha admits (NotAlphaBounded) — over the
// given histogram indices (nil meaning all); group is -1 when none.
func firstAlphaViolation(s *table.GroupStats, idxs []int, p int, alpha float64) (int, int, Reason) {
	check := func(i, a int) (bool, Reason) {
		h := s.Groups[i].Hists[a]
		if h.Distinct() < p {
			return true, NotPSensitive
		}
		if float64(h.MaxCount()) > alpha*float64(s.Groups[i].Size) {
			return true, NotAlphaBounded
		}
		return false, Satisfied
	}
	for i := range s.Groups {
		if idxs == nil {
			for a := range s.Groups[i].Hists {
				if bad, reason := check(i, a); bad {
					return i, a, reason
				}
			}
			continue
		}
		for _, a := range idxs {
			if bad, reason := check(i, a); bad {
				return i, a, reason
			}
		}
	}
	return -1, -1, Satisfied
}

// firstExtendedViolation returns the first group with fewer than p
// distinct level-lvl categories for some level 0..maxLevel of the
// confIdx histogram, or -1; levelMaps must cover every level.
func firstExtendedViolation(s *table.GroupStats, confIdx, p, maxLevel int, levelMaps []*table.CodeMap) (int, error) {
	seen := make(map[int]struct{}, p)
	for i := range s.Groups {
		h := s.Groups[i].Hists[confIdx]
		for lvl := 0; lvl <= maxLevel; lvl++ {
			clear(seen)
			for _, e := range h {
				code, ok := levelMaps[lvl].Map(e.Code)
				if !ok {
					return -1, fmt.Errorf("core: extended stats check: code %d has no level-%d translation", e.Code, lvl)
				}
				seen[code] = struct{}{}
				// DistinctAtLeast-style early exit: the level is satisfied
				// as soon as the p-th category appears.
				if len(seen) >= p {
					break
				}
			}
			if len(seen) < p {
				return i, nil
			}
		}
	}
	return -1, nil
}
