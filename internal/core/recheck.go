package core

import (
	"fmt"
	"math"
	"sort"

	"psk/internal/table"
)

// This file is the incremental half of the verdict layer. Every
// built-in policy except t-closeness is group-local: its verdict over a
// table is the conjunction of a per-group predicate, so when only a few
// groups changed since a satisfied verdict, re-verdicting those groups
// re-verdicts the table. GroupLocal encodes that property per policy,
// CheckGroups is the subset scan, and RecheckGroups is the dispatch the
// streaming session calls — fast path when the policy admits it, full
// Evaluate when it does not (DESIGN.md §14).
//
// The fast path is only sound under the caller's premise that every
// group outside the subset satisfied this same policy before the delta
// and was not touched by it. The subset scan reuses Evaluate itself
// (over a view holding just the selected groups), so the per-group
// loops cannot drift from the full-scan ones; because the subset is
// presented in ascending group order and — under the premise — every
// violating group is in it, the Result is identical to a full
// Evaluate's, first-violating group and all.

// GroupLocal is implemented by policies that know whether their verdict
// decomposes into independent per-group predicates, and if so, how to
// re-verdict a subset of groups.
type GroupLocal interface {
	Policy
	// LocalCheck reports whether CheckGroups on a subset is equivalent
	// to Evaluate when every group outside the subset is known to
	// satisfy the policy. t-closeness answers false: its verdict
	// compares each group to the table-wide distribution, which any
	// change anywhere shifts.
	LocalCheck() bool
	// CheckGroups re-verdicts the groups named by ascending indices
	// into v.Stats.Groups. Policies whose LocalCheck is false ignore
	// the subset and evaluate the full view. Group and Groups in the
	// Result are always in the full view's terms.
	CheckGroups(v StatsView, groups []int) (Result, error)
}

// RecheckGroups re-verdicts statistics of which only the given groups
// changed since a satisfied verdict of p. It returns the verdict, and
// whether the O(changed-groups) fast path was taken (false means the
// policy — or some part of a composite — required a full scan).
func RecheckGroups(p Policy, v StatsView, groups []int) (Result, bool, error) {
	if gl, ok := p.(GroupLocal); ok && gl.LocalCheck() {
		res, err := gl.CheckGroups(v, groups)
		return res, true, err
	}
	res, err := p.Evaluate(v)
	return res, false, err
}

// checkGroupsOrEvaluate is the per-member dispatch compositions use:
// local members scan the subset, everything else evaluates fully.
func checkGroupsOrEvaluate(p Policy, v StatsView, groups []int) (Result, error) {
	if gl, ok := p.(GroupLocal); ok && gl.LocalCheck() {
		return gl.CheckGroups(v, groups)
	}
	return p.Evaluate(v)
}

// localCheck runs a group-local policy's own Evaluate over a view
// restricted to the selected groups, then restores full-view indexing
// on the Result. Reusing Evaluate keeps the subset path pinned to the
// full-scan loops — including multi-gate orders like "k-anonymity
// first, then distinctness" — by construction.
func localCheck(p Policy, v StatsView, groups []int) (Result, error) {
	sub := table.GroupStats{
		NumRows: v.Stats.NumRows,
		NumQI:   v.Stats.NumQI,
		NumConf: v.Stats.NumConf,
		Groups:  make([]table.GroupStat, len(groups)),
	}
	for i, g := range groups {
		if g < 0 || g >= len(v.Stats.Groups) {
			return Result{}, fmt.Errorf("core: recheck: group index %d outside 0..%d", g, len(v.Stats.Groups)-1)
		}
		sub.Groups[i] = v.Stats.Groups[g]
	}
	res, err := p.Evaluate(StatsView{Stats: &sub, Conf: v.Conf})
	if err != nil {
		return Result{}, err
	}
	res.Groups = v.Stats.NumGroups()
	if res.Group >= 0 {
		res.Group = groups[res.Group]
	}
	return res, nil
}

func (p KAnonymityPolicy) LocalCheck() bool { return true }
func (p KAnonymityPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return localCheck(p, v, groups)
}

func (p PSensitivityPolicy) LocalCheck() bool { return true }
func (p PSensitivityPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return localCheck(p, v, groups)
}

func (p PSensitiveKAnonymityPolicy) LocalCheck() bool { return true }
func (p PSensitiveKAnonymityPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return localCheck(p, v, groups)
}

func (p DistinctLDiversityPolicy) LocalCheck() bool { return true }
func (p DistinctLDiversityPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return localCheck(p, v, groups)
}

func (p EntropyLDiversityPolicy) LocalCheck() bool { return true }
func (p EntropyLDiversityPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return localCheck(p, v, groups)
}

func (p RecursiveLDiversityPolicy) LocalCheck() bool { return true }
func (p RecursiveLDiversityPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return localCheck(p, v, groups)
}

// t-closeness measures every group against the table-wide distribution,
// so a change to any group moves the yardstick for all of them: the
// verdict is not group-local and CheckGroups falls back to a full scan.
func (p TClosenessPolicy) LocalCheck() bool { return false }
func (p TClosenessPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return p.Evaluate(v)
}

func (p PAlphaPolicy) LocalCheck() bool { return true }
func (p PAlphaPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return localCheck(p, v, groups)
}

func (p ExtendedPolicy) LocalCheck() bool { return true }
func (p ExtendedPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	return localCheck(p, v, groups)
}

// A conjunction rechecks member by member — local members scan the
// subset, non-local ones evaluate fully — preserving first-failure-wins
// order. It reports itself local so the composite takes the fast path
// whenever any member can; per-member fallbacks still happen inside.
func (c conjunction) LocalCheck() bool { return true }
func (c conjunction) CheckGroups(v StatsView, groups []int) (Result, error) {
	for _, p := range c {
		res, err := checkGroupsOrEvaluate(p, v, groups)
		if err != nil {
			return Result{}, err
		}
		if !res.Satisfied {
			return res, nil
		}
	}
	return satisfied(v), nil
}

// boundedPolicy re-applies the Theorem 1–2 rejection filters — they are
// O(1) and O(groups) respectively, and Condition 2 depends on the total
// group count, which deltas move — then dispatches the inner policy.
func (p boundedPolicy) LocalCheck() bool {
	if gl, ok := p.inner.(GroupLocal); ok {
		return gl.LocalCheck()
	}
	return false
}

func (p boundedPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	res := Result{MaxP: p.bounds.MaxP, MaxGroups: p.bounds.MaxGroups, Group: -1, Attr: -1}
	if p.bounds.P > p.bounds.MaxP {
		res.Reason = FailedCondition1
		return res, nil
	}
	res.Groups = v.Stats.NumGroups()
	if p.bounds.P >= 2 && res.Groups > p.bounds.MaxGroups {
		res.Reason = FailedCondition2
		return res, nil
	}
	out, err := checkGroupsOrEvaluate(p.inner, v, groups)
	if err != nil {
		return Result{}, err
	}
	out.MaxP, out.MaxGroups = p.bounds.MaxP, p.bounds.MaxGroups
	return out, nil
}

// observedPolicy forwards locality and times subset rechecks under the
// same per-policy key as full evaluations.
func (p observedPolicy) LocalCheck() bool {
	if gl, ok := p.inner.(GroupLocal); ok {
		return gl.LocalCheck()
	}
	return false
}

func (p observedPolicy) CheckGroups(v StatsView, groups []int) (Result, error) {
	start := p.rec.Start()
	res, err := checkGroupsOrEvaluate(p.inner, v, groups)
	p.rec.PolicyEval(p.name, start, err == nil && res.Satisfied)
	return res, err
}

// BoundsFromStats computes the Theorem 1–2 bounds from group statistics
// instead of a table: the confidential histograms carry exactly the
// per-value counts MaxP and MaxGroups need, so a streaming session can
// refresh its bounds from maintained statistics without rescanning
// rows. The result matches ComputeBounds on the table the statistics
// describe (zero-size tombstone groups carry empty histograms and so
// contribute nothing).
func BoundsFromStats(s *table.GroupStats, p int) (Bounds, error) {
	if s == nil || s.NumConf == 0 {
		return Bounds{}, fmt.Errorf("core: no confidential attributes")
	}
	if p < 1 {
		return Bounds{}, fmt.Errorf("core: p must be >= 1, got %d", p)
	}
	maxP := -1
	var cfs [][]int
	minLen := -1
	for a := 0; a < s.NumConf; a++ {
		counts := make(map[int]int)
		for i := range s.Groups {
			for _, e := range s.Groups[i].Hists[a] {
				counts[e.Code] += e.Count
			}
		}
		if maxP == -1 || len(counts) < maxP {
			maxP = len(counts)
		}
		f := make([]int, 0, len(counts))
		for _, c := range counts {
			f = append(f, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(f)))
		cf := Cumulative(f)
		cfs = append(cfs, cf)
		if minLen == -1 || len(cf) < minLen {
			minLen = len(cf)
		}
	}
	b := Bounds{MaxP: maxP, P: p}
	if p > maxP {
		return b, nil
	}
	if p == 1 {
		b.MaxGroups = s.NumRows
		return b, nil
	}
	cf := make([]int, minLen)
	for i := 0; i < minLen; i++ {
		for _, c := range cfs {
			if c[i] > cf[i] {
				cf[i] = c[i]
			}
		}
	}
	if p-1 > len(cf) {
		return Bounds{}, fmt.Errorf("core: p = %d exceeds the defined cumulative frequency range (maxP = %d)", p, len(cf))
	}
	best := math.MaxInt
	for i := 1; i <= p-1; i++ {
		v := (s.NumRows - cf[p-i-1]) / i
		if v < best {
			best = v
		}
	}
	if best < 0 {
		best = 0
	}
	b.MaxGroups = best
	return b, nil
}
