package core

import (
	"fmt"
	"math"

	"psk/internal/table"
)

// This file re-states every verdict of the package on table.GroupStats
// instead of the table itself. The checks are row-free: a group's size
// and its per-confidential-attribute code histograms are all any of
// the definitions actually consume, so a search engine that maintains
// group statistics across lattice nodes (rolling them up instead of
// re-scanning rows) gets identical verdicts in O(#groups) time. Each
// function mirrors its table-based counterpart gate for gate; the
// equivalence is pinned by TestStatsChecksMatchTableChecks.
//
// Confidential attributes are addressed by index into the stats'
// histogram vector — position i corresponds to the i-th name in the
// confidential list the stats were built with.

// IsKAnonymousStats is IsKAnonymous on group statistics.
func IsKAnonymousStats(s *table.GroupStats, k int) (bool, error) {
	if k < 1 {
		return false, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if s.NumRows == 0 {
		return true, nil
	}
	for i := range s.Groups {
		if s.Groups[i].Size < k {
			return false, nil
		}
	}
	return true, nil
}

// TuplesViolatingKStats is TuplesViolatingK on group statistics.
func TuplesViolatingKStats(s *table.GroupStats, k int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	return s.TuplesBelow(k), nil
}

// CheckBasicStats is Algorithm 1 (CheckBasic) on group statistics. The
// histogram length is the group's distinct-value count, so the
// DistinctAtLeast early exit of the table path becomes a plain length
// comparison here.
func CheckBasicStats(s *table.GroupStats, p, k int) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if s.NumConf == 0 {
		return false, fmt.Errorf("core: no confidential attributes")
	}
	for i := range s.Groups {
		if s.Groups[i].Size < k {
			return false, nil
		}
	}
	for i := range s.Groups {
		for _, h := range s.Groups[i].Hists {
			if h.Distinct() < p {
				return false, nil
			}
		}
	}
	return true, nil
}

// CheckStatsWithBounds is Algorithm 2 (CheckWithBounds) on group
// statistics: the two necessary conditions as rejection filters, then
// k-anonymity, then the detailed p-sensitivity scan. Gate order and
// Result fields match the table path exactly.
func CheckStatsWithBounds(s *table.GroupStats, p, k int, bounds Bounds) (Result, error) {
	if err := validatePK(p, k); err != nil {
		return Result{}, err
	}
	res := Result{MaxP: bounds.MaxP, MaxGroups: bounds.MaxGroups}

	// First necessary condition.
	if p > bounds.MaxP {
		res.Reason = FailedCondition1
		return res, nil
	}

	// Second necessary condition.
	res.Groups = s.NumGroups()
	if p >= 2 && res.Groups > bounds.MaxGroups {
		res.Reason = FailedCondition2
		return res, nil
	}

	// k-anonymity.
	for i := range s.Groups {
		if s.Groups[i].Size < k {
			res.Reason = NotKAnonymous
			return res, nil
		}
	}

	// Detailed p-sensitivity scan.
	for i := range s.Groups {
		for _, h := range s.Groups[i].Hists {
			if h.Distinct() < p {
				res.Reason = NotPSensitive
				return res, nil
			}
		}
	}
	res.Satisfied = true
	res.Reason = Satisfied
	return res, nil
}

// SensitivityStats is Sensitivity on group statistics: the minimum
// distinct-value count over (group, confidential attribute) pairs.
func SensitivityStats(s *table.GroupStats) (int, error) {
	if s.NumConf == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	if s.NumRows == 0 {
		return 0, nil
	}
	min := -1
	for i := range s.Groups {
		for _, h := range s.Groups[i].Hists {
			if d := h.Distinct(); min == -1 || d < min {
				min = d
			}
		}
	}
	return min, nil
}

// AttributeDisclosuresStats is AttributeDisclosures on group
// statistics.
func AttributeDisclosuresStats(s *table.GroupStats, p int) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: p must be >= 1, got %d", p)
	}
	if s.NumConf == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	count := 0
	for i := range s.Groups {
		for _, h := range s.Groups[i].Hists {
			if h.Distinct() < p {
				count++
			}
		}
	}
	return count, nil
}

func validateConfIdx(s *table.GroupStats, confIdx int) error {
	if confIdx < 0 || confIdx >= s.NumConf {
		return fmt.Errorf("core: confidential index %d out of range (stats cover %d)", confIdx, s.NumConf)
	}
	return nil
}

// DistinctLDiverseStats is IsDistinctLDiverse on group statistics for
// the confIdx-th confidential attribute.
func DistinctLDiverseStats(s *table.GroupStats, confIdx, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("core: l must be >= 1, got %d", l)
	}
	if err := validateConfIdx(s, confIdx); err != nil {
		return false, err
	}
	for i := range s.Groups {
		if s.Groups[i].Hists[confIdx].Distinct() < l {
			return false, nil
		}
	}
	return true, nil
}

// EntropyLDiverseStats is IsEntropyLDiverse on group statistics: the
// group's entropy is computed straight from its histogram, with the
// same boundary tolerance as the table path.
func EntropyLDiverseStats(s *table.GroupStats, confIdx, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("core: l must be >= 1, got %d", l)
	}
	if err := validateConfIdx(s, confIdx); err != nil {
		return false, err
	}
	threshold := math.Log(float64(l))
	for i := range s.Groups {
		entropy := 0.0
		n := float64(s.Groups[i].Size)
		for _, e := range s.Groups[i].Hists[confIdx] {
			pr := float64(e.Count) / n
			entropy -= pr * math.Log(pr)
		}
		if entropy+1e-12 < threshold {
			return false, nil
		}
	}
	return true, nil
}

// TClosenessStats is TCloseness on group statistics: the global
// distribution is the merge of all group histograms, so no table access
// is needed.
func TClosenessStats(s *table.GroupStats, confIdx int) (float64, error) {
	if err := validateConfIdx(s, confIdx); err != nil {
		return 0, err
	}
	if s.NumRows == 0 {
		return 0, nil
	}
	global := make(map[int]float64)
	for i := range s.Groups {
		for _, e := range s.Groups[i].Hists[confIdx] {
			global[e.Code] += float64(e.Count)
		}
	}
	n := float64(s.NumRows)
	for code := range global {
		global[code] /= n
	}
	worst := 0.0
	for i := range s.Groups {
		local := make(map[int]float64, len(s.Groups[i].Hists[confIdx]))
		for _, e := range s.Groups[i].Hists[confIdx] {
			local[e.Code] = float64(e.Count)
		}
		gn := float64(s.Groups[i].Size)
		dist := 0.0
		for code, p := range global {
			q := local[code] / gn
			dist += math.Abs(p - q)
		}
		dist /= 2
		if dist > worst {
			worst = dist
		}
	}
	return worst, nil
}

// CheckPAlphaStats is CheckPAlpha on group statistics: the most common
// confidential value's count is the histogram's MaxCount.
func CheckPAlphaStats(s *table.GroupStats, p, k int, alpha float64) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if alpha <= 0 || alpha > 1 {
		return false, fmt.Errorf("core: alpha must be in (0, 1], got %g", alpha)
	}
	if s.NumConf == 0 {
		return false, fmt.Errorf("core: no confidential attributes")
	}
	for i := range s.Groups {
		if s.Groups[i].Size < k {
			return false, nil
		}
	}
	for i := range s.Groups {
		for _, h := range s.Groups[i].Hists {
			if h.Distinct() < p {
				return false, nil
			}
			if float64(h.MaxCount()) > alpha*float64(s.Groups[i].Size) {
				return false, nil
			}
		}
	}
	return true, nil
}

// CheckExtendedStats is CheckExtended on group statistics. The value
// hierarchy over the confidential attribute is supplied as one code
// map per level: levelMaps[lvl] translates ground confidential codes
// to their level-lvl category codes (nil meaning identity, as at level
// 0). Distinct categories at a level are counted by mapping the
// group's histogram codes through the level's map — rows are never
// touched. levelMaps must cover levels 0 through MaxLevel inclusive.
func CheckExtendedStats(s *table.GroupStats, confIdx, p, k, maxLevel int, levelMaps []*table.CodeMap) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if err := validateConfIdx(s, confIdx); err != nil {
		return false, err
	}
	if maxLevel < 0 {
		return false, fmt.Errorf("core: extended stats check requires maxLevel >= 0, got %d", maxLevel)
	}
	if len(levelMaps) <= maxLevel {
		return false, fmt.Errorf("core: extended stats check has %d level maps for maxLevel %d", len(levelMaps), maxLevel)
	}
	for i := range s.Groups {
		if s.Groups[i].Size < k {
			return false, nil
		}
	}
	seen := make(map[int]struct{}, p)
	for i := range s.Groups {
		h := s.Groups[i].Hists[confIdx]
		for lvl := 0; lvl <= maxLevel; lvl++ {
			clear(seen)
			for _, e := range h {
				code, ok := levelMaps[lvl].Map(e.Code)
				if !ok {
					return false, fmt.Errorf("core: extended stats check: code %d has no level-%d translation", e.Code, lvl)
				}
				seen[code] = struct{}{}
				// DistinctAtLeast-style early exit: the level is satisfied
				// as soon as the p-th category appears.
				if len(seen) >= p {
					break
				}
			}
			if len(seen) < p {
				return false, nil
			}
		}
	}
	return true, nil
}
