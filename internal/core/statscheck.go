package core

import (
	"fmt"
	"math"

	"psk/internal/table"
)

// This file exposes every verdict of the package on table.GroupStats.
// The checks are row-free: a group's size and its per-confidential-
// attribute code histograms are all any of the definitions actually
// consume, so a search engine that maintains group statistics across
// lattice nodes (rolling them up instead of re-scanning rows) gets
// identical verdicts in O(#groups) time. These functions and the Policy
// implementations share the group scans in policy.go — the statistics
// path is the *only* verdict implementation; the table-based checks
// wrap it.
//
// Confidential attributes are addressed by index into the stats'
// histogram vector — position i corresponds to the i-th name in the
// confidential list the stats were built with.

// IsKAnonymousStats is IsKAnonymous on group statistics.
func IsKAnonymousStats(s *table.GroupStats, k int) (bool, error) {
	if k < 1 {
		return false, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	return firstBelowK(s, k) == -1, nil
}

// TuplesViolatingKStats is TuplesViolatingK on group statistics.
func TuplesViolatingKStats(s *table.GroupStats, k int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	return s.TuplesBelow(k), nil
}

// CheckBasicStats is Algorithm 1 (CheckBasic) on group statistics. The
// histogram length is the group's distinct-value count, so the
// DistinctAtLeast early exit of the row-scanning path becomes a plain
// length comparison here.
func CheckBasicStats(s *table.GroupStats, p, k int) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if s.NumConf == 0 {
		return false, fmt.Errorf("core: no confidential attributes")
	}
	if firstBelowK(s, k) >= 0 {
		return false, nil
	}
	g, _ := firstLowDistinct(s, nil, p)
	return g == -1, nil
}

// CheckStatsWithBounds is Algorithm 2 (CheckWithBounds) on group
// statistics: the two necessary conditions as rejection filters, then
// k-anonymity, then the detailed p-sensitivity scan — the bounds-
// wrapped p-sensitive k-anonymity policy evaluated over the stats.
func CheckStatsWithBounds(s *table.GroupStats, p, k int, bounds Bounds) (Result, error) {
	if err := validatePK(p, k); err != nil {
		return Result{}, err
	}
	// The conditions gate on the p being checked, which prevails over
	// whatever p the bounds were computed for.
	b := bounds
	b.P = p
	return WithBounds(PSensitiveKAnonymityPolicy{P: p, K: k}, b).Evaluate(StatsView{Stats: s})
}

// SensitivityStats is Sensitivity on group statistics: the minimum
// distinct-value count over (group, confidential attribute) pairs.
func SensitivityStats(s *table.GroupStats) (int, error) {
	if s.NumConf == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	if s.NumRows == 0 {
		return 0, nil
	}
	min := -1
	for i := range s.Groups {
		for _, h := range s.Groups[i].Hists {
			if d := h.Distinct(); min == -1 || d < min {
				min = d
			}
		}
	}
	return min, nil
}

// AttributeDisclosuresStats is AttributeDisclosures on group
// statistics.
func AttributeDisclosuresStats(s *table.GroupStats, p int) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: p must be >= 1, got %d", p)
	}
	if s.NumConf == 0 {
		return 0, fmt.Errorf("core: no confidential attributes")
	}
	count := 0
	for i := range s.Groups {
		for _, h := range s.Groups[i].Hists {
			if h.Distinct() < p {
				count++
			}
		}
	}
	return count, nil
}

func validateConfIdx(s *table.GroupStats, confIdx int) error {
	if confIdx < 0 || confIdx >= s.NumConf {
		return fmt.Errorf("core: confidential index %d out of range (stats cover %d)", confIdx, s.NumConf)
	}
	return nil
}

// DistinctLDiverseStats is IsDistinctLDiverse on group statistics for
// the confIdx-th confidential attribute.
func DistinctLDiverseStats(s *table.GroupStats, confIdx, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("core: l must be >= 1, got %d", l)
	}
	if err := validateConfIdx(s, confIdx); err != nil {
		return false, err
	}
	g, _ := firstLowDistinct(s, []int{confIdx}, l)
	return g == -1, nil
}

// EntropyLDiverseStats is IsEntropyLDiverse on group statistics: the
// group's entropy is computed straight from its histogram, with the
// same boundary tolerance as the table path.
func EntropyLDiverseStats(s *table.GroupStats, confIdx, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("core: l must be >= 1, got %d", l)
	}
	if err := validateConfIdx(s, confIdx); err != nil {
		return false, err
	}
	return firstLowEntropy(s, confIdx, l) == -1, nil
}

// TClosenessStats is TCloseness on group statistics: the global
// distribution is the merge of all group histograms, so no table access
// is needed.
func TClosenessStats(s *table.GroupStats, confIdx int) (float64, error) {
	if err := validateConfIdx(s, confIdx); err != nil {
		return 0, err
	}
	worst, _ := tclosenessScan(s, confIdx, math.Inf(1))
	return worst, nil
}

// CheckPAlphaStats is CheckPAlpha on group statistics: the most common
// confidential value's count is the histogram's MaxCount.
func CheckPAlphaStats(s *table.GroupStats, p, k int, alpha float64) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if alpha <= 0 || alpha > 1 {
		return false, fmt.Errorf("core: alpha must be in (0, 1], got %g", alpha)
	}
	if s.NumConf == 0 {
		return false, fmt.Errorf("core: no confidential attributes")
	}
	if firstBelowK(s, k) >= 0 {
		return false, nil
	}
	g, _, _ := firstAlphaViolation(s, nil, p, alpha)
	return g == -1, nil
}

// CheckExtendedStats is CheckExtended on group statistics. The value
// hierarchy over the confidential attribute is supplied as one code
// map per level: levelMaps[lvl] translates ground confidential codes
// to their level-lvl category codes (nil meaning identity, as at level
// 0). Distinct categories at a level are counted by mapping the
// group's histogram codes through the level's map — rows are never
// touched. levelMaps must cover levels 0 through MaxLevel inclusive.
func CheckExtendedStats(s *table.GroupStats, confIdx, p, k, maxLevel int, levelMaps []*table.CodeMap) (bool, error) {
	if err := validatePK(p, k); err != nil {
		return false, err
	}
	if err := validateConfIdx(s, confIdx); err != nil {
		return false, err
	}
	if maxLevel < 0 {
		return false, fmt.Errorf("core: extended stats check requires maxLevel >= 0, got %d", maxLevel)
	}
	if len(levelMaps) <= maxLevel {
		return false, fmt.Errorf("core: extended stats check has %d level maps for maxLevel %d", len(levelMaps), maxLevel)
	}
	if firstBelowK(s, k) >= 0 {
		return false, nil
	}
	g, err := firstExtendedViolation(s, confIdx, p, maxLevel, levelMaps)
	if err != nil {
		return false, err
	}
	return g == -1, nil
}

// ExtendedSensitivityStats is ExtendedSensitivity on group statistics:
// the minimum, over QI-groups and hierarchy levels 0..maxLevel, of the
// distinct category count of the confIdx-th confidential attribute.
func ExtendedSensitivityStats(s *table.GroupStats, confIdx, maxLevel int, levelMaps []*table.CodeMap) (int, error) {
	if err := validateConfIdx(s, confIdx); err != nil {
		return 0, err
	}
	if maxLevel < 0 {
		return 0, fmt.Errorf("core: extended stats sensitivity requires maxLevel >= 0, got %d", maxLevel)
	}
	if len(levelMaps) <= maxLevel {
		return 0, fmt.Errorf("core: extended stats sensitivity has %d level maps for maxLevel %d", len(levelMaps), maxLevel)
	}
	if s.NumRows == 0 {
		return 0, nil
	}
	min := -1
	seen := make(map[int]struct{})
	for i := range s.Groups {
		h := s.Groups[i].Hists[confIdx]
		for lvl := 0; lvl <= maxLevel; lvl++ {
			clear(seen)
			for _, e := range h {
				code, ok := levelMaps[lvl].Map(e.Code)
				if !ok {
					return 0, fmt.Errorf("core: extended stats sensitivity: code %d has no level-%d translation", e.Code, lvl)
				}
				seen[code] = struct{}{}
			}
			if min == -1 || len(seen) < min {
				min = len(seen)
			}
		}
	}
	return min, nil
}
