package config

import (
	"os"
	"path/filepath"
	"testing"

	"psk/internal/table"
)

const validJSON = `{
  "quasiIdentifiers": ["Age", "ZipCode", "Sex"],
  "confidential": ["Illness"],
  "k": 3, "p": 2, "maxSuppress": 10,
  "types": {"Age": "int"},
  "hierarchies": {
    "Age":     {"type": "interval",
                "levels": [{"name": "decades", "width": 10, "min": 0, "max": 99},
                           {"cuts": [50], "labels": ["<50", ">=50"]},
                           {"labels": ["*"]}]},
    "ZipCode": {"type": "prefixSteps", "width": 5, "suppress": [2, 5]},
    "Sex":     {"type": "flat", "top": "Person"}
  }
}`

func TestParseValid(t *testing.T) {
	job, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if job.K != 3 || job.P != 2 || job.MaxSuppress != 10 {
		t.Errorf("job = %+v", job)
	}
	hs, err := job.BuildHierarchies()
	if err != nil {
		t.Fatalf("BuildHierarchies: %v", err)
	}
	age, err := hs.Get("Age")
	if err != nil {
		t.Fatal(err)
	}
	if age.Height() != 3 {
		t.Errorf("age height = %d", age.Height())
	}
	got, err := age.Generalize("42", 1)
	if err != nil || got != "40-49" {
		t.Errorf("42@1 = %q, %v", got, err)
	}
	got, _ = age.Generalize("42", 2)
	if got != "<50" {
		t.Errorf("42@2 = %q", got)
	}
	zip, _ := hs.Get("ZipCode")
	got, _ = zip.Generalize("43102", 1)
	if got != "431**" {
		t.Errorf("zip@1 = %q", got)
	}
	sex, _ := hs.Get("Sex")
	got, _ = sex.Generalize("M", 1)
	if got != "Person" {
		t.Errorf("sex@1 = %q", got)
	}
}

func TestSchemaTypes(t *testing.T) {
	job, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := job.Schema([]string{"Age", "ZipCode", "Sex", "Illness"})
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	if sch.Fields[0].Type != table.Int {
		t.Errorf("Age type = %v", sch.Fields[0].Type)
	}
	if sch.Fields[1].Type != table.String {
		t.Errorf("ZipCode type = %v", sch.Fields[1].Type)
	}
	// Bad type override.
	job.Types["Sex"] = "blob"
	if _, err := job.Schema([]string{"Sex"}); err == nil {
		t.Error("bad type accepted")
	}
}

func TestParseValidation(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"quasiIdentifiers": ["A"], "k": 1, "p": 1, "hierarchies": {"A": {"type":"flat"}}}`,
		`{"quasiIdentifiers": ["A"], "k": 3, "p": 0, "hierarchies": {"A": {"type":"flat"}}}`,
		`{"quasiIdentifiers": ["A"], "k": 3, "p": 4, "hierarchies": {"A": {"type":"flat"}}}`,
		`{"quasiIdentifiers": ["A"], "k": 3, "p": 2, "hierarchies": {"A": {"type":"flat"}}}`,
		`{"quasiIdentifiers": ["A"], "confidential": ["S"], "k": 3, "p": 2, "maxSuppress": -1, "hierarchies": {"A": {"type":"flat"}}}`,
		`{"quasiIdentifiers": ["A"], "confidential": ["S"], "k": 3, "p": 2, "hierarchies": {}}`,
	}
	for i, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestBuildHierarchyErrors(t *testing.T) {
	cases := []HierarchySpec{
		{Type: "unknown"},
		{Type: "interval"},
		{Type: "interval", Levels: []IntervalLevelSpec{{}}},
		{Type: "tree"},
		{Type: "tree", File: "/nonexistent"},
		{Type: "prefix", Width: 0},
		{Type: "prefixSteps", Width: 5, Suppress: nil},
	}
	for i, spec := range cases {
		if _, err := buildOne("X", spec); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
}

func TestTreeFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "marital.csv")
	if err := os.WriteFile(path, []byte("a;Single;*\nb;Married;*\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := buildOne("M", HierarchySpec{Type: "tree", File: path})
	if err != nil {
		t.Fatalf("buildOne: %v", err)
	}
	got, _ := h.Generalize("a", 1)
	if got != "Single" {
		t.Errorf("a@1 = %q", got)
	}
}

func TestTreeInlineChains(t *testing.T) {
	h, err := buildOne("M", HierarchySpec{Type: "tree", Chains: map[string][]string{
		"x": {"g", "*"}, "y": {"g", "*"},
	}})
	if err != nil || h.Height() != 2 {
		t.Fatalf("buildOne: %v", err)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	if err := os.WriteFile(path, []byte(validJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	job, err := Load(path)
	if err != nil || job.K != 3 {
		t.Errorf("Load: %v", err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
