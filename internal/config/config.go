// Package config loads anonymization job descriptions from JSON for the
// command-line tools: attribute roles, k/p parameters, the suppression
// threshold and per-attribute generalization hierarchies.
//
// Example:
//
//	{
//	  "quasiIdentifiers": ["Age", "ZipCode", "Sex"],
//	  "confidential": ["Illness"],
//	  "k": 3, "p": 2, "maxSuppress": 10,
//	  "types": {"Age": "int"},
//	  "hierarchies": {
//	    "Age":     {"type": "interval",
//	                "levels": [{"name": "decades", "width": 10, "min": 0, "max": 99},
//	                           {"cuts": [50], "labels": ["<50", ">=50"]},
//	                           {"labels": ["*"]}]},
//	    "ZipCode": {"type": "prefixSteps", "width": 5, "suppress": [2, 5]},
//	    "Sex":     {"type": "flat", "top": "Person"}
//	  }
//	}
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"psk/internal/hierarchy"
	"psk/internal/table"
)

// Job is a parsed anonymization job.
type Job struct {
	QuasiIdentifiers []string                 `json:"quasiIdentifiers"`
	Confidential     []string                 `json:"confidential"`
	K                int                      `json:"k"`
	P                int                      `json:"p"`
	MaxSuppress      int                      `json:"maxSuppress"`
	Types            map[string]string        `json:"types"`
	Hierarchies      map[string]HierarchySpec `json:"hierarchies"`
}

// HierarchySpec is the JSON form of one attribute's hierarchy.
type HierarchySpec struct {
	// Type is one of "interval", "tree", "prefix", "prefixSteps",
	// "flat".
	Type string `json:"type"`
	// Interval fields: ordered levels.
	Levels []IntervalLevelSpec `json:"levels,omitempty"`
	// Tree fields: either inline chains or a file of
	// "value;level1;level2" lines.
	Chains map[string][]string `json:"chains,omitempty"`
	File   string              `json:"file,omitempty"`
	// Prefix fields.
	Width    int   `json:"width,omitempty"`
	Steps    int   `json:"steps,omitempty"`
	Suppress []int `json:"suppress,omitempty"`
	// Flat fields.
	Top string `json:"top,omitempty"`
}

// IntervalLevelSpec is one numeric level: either explicit cuts+labels,
// or a fixed-width bucketing over [min, max].
type IntervalLevelSpec struct {
	Name   string   `json:"name,omitempty"`
	Cuts   []int64  `json:"cuts,omitempty"`
	Labels []string `json:"labels,omitempty"`
	Width  int64    `json:"width,omitempty"`
	Min    int64    `json:"min,omitempty"`
	Max    int64    `json:"max,omitempty"`
}

// Load reads and validates a job file.
func Load(path string) (*Job, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return Parse(raw)
}

// Parse parses and validates a job from JSON bytes.
func Parse(raw []byte) (*Job, error) {
	var job Job
	if err := json.Unmarshal(raw, &job); err != nil {
		return nil, fmt.Errorf("config: invalid JSON: %w", err)
	}
	if len(job.QuasiIdentifiers) == 0 {
		return nil, fmt.Errorf("config: no quasiIdentifiers")
	}
	if job.K < 2 {
		return nil, fmt.Errorf("config: k must be >= 2, got %d", job.K)
	}
	if job.P < 1 {
		return nil, fmt.Errorf("config: p must be >= 1, got %d", job.P)
	}
	if job.P > job.K {
		return nil, fmt.Errorf("config: p (%d) must be <= k (%d)", job.P, job.K)
	}
	if job.P >= 2 && len(job.Confidential) == 0 {
		return nil, fmt.Errorf("config: p >= 2 requires confidential attributes")
	}
	if job.MaxSuppress < 0 {
		return nil, fmt.Errorf("config: negative maxSuppress")
	}
	for _, qi := range job.QuasiIdentifiers {
		if _, ok := job.Hierarchies[qi]; !ok {
			return nil, fmt.Errorf("config: quasi-identifier %q has no hierarchy", qi)
		}
	}
	return &job, nil
}

// Schema builds the table schema for a CSV with the given header,
// applying the job's optional type overrides (default: string).
func (j *Job) Schema(header []string) (table.Schema, error) {
	fields := make([]table.Field, len(header))
	for i, name := range header {
		t := table.String
		if ts, ok := j.Types[name]; ok {
			var err error
			t, err = table.ParseType(ts)
			if err != nil {
				return table.Schema{}, fmt.Errorf("config: attribute %q: %w", name, err)
			}
		}
		fields[i] = table.Field{Name: name, Type: t}
	}
	return table.NewSchema(fields...)
}

// BuildHierarchies materializes the hierarchy set. Tree specs with a
// File are resolved relative to the current directory.
func (j *Job) BuildHierarchies() (*hierarchy.Set, error) {
	var hs []hierarchy.Hierarchy
	for attr, spec := range j.Hierarchies {
		h, err := buildOne(attr, spec)
		if err != nil {
			return nil, err
		}
		hs = append(hs, h)
	}
	return hierarchy.NewSet(hs...)
}

func buildOne(attr string, spec HierarchySpec) (hierarchy.Hierarchy, error) {
	switch spec.Type {
	case "interval":
		if len(spec.Levels) == 0 {
			return nil, fmt.Errorf("config: %s: interval hierarchy needs levels", attr)
		}
		levels := make([]hierarchy.IntervalLevel, 0, len(spec.Levels))
		for i, ls := range spec.Levels {
			switch {
			case ls.Width > 0:
				levels = append(levels, hierarchy.DecadeLevel(ls.Name, ls.Min, ls.Max, ls.Width))
			case len(ls.Cuts) > 0 || len(ls.Labels) > 0:
				levels = append(levels, hierarchy.IntervalLevel{Name: ls.Name, Cuts: ls.Cuts, Labels: ls.Labels})
			default:
				return nil, fmt.Errorf("config: %s: interval level %d needs width or cuts/labels", attr, i+1)
			}
		}
		return hierarchy.NewInterval(attr, levels)
	case "tree":
		if spec.File != "" {
			raw, err := os.ReadFile(spec.File)
			if err != nil {
				return nil, fmt.Errorf("config: %s: %w", attr, err)
			}
			return hierarchy.ParseTree(attr, string(raw))
		}
		if len(spec.Chains) == 0 {
			return nil, fmt.Errorf("config: %s: tree hierarchy needs chains or file", attr)
		}
		return hierarchy.NewTree(attr, spec.Chains)
	case "prefix":
		return hierarchy.NewPrefix(attr, spec.Width, spec.Steps)
	case "prefixSteps":
		return hierarchy.NewPrefixSteps(attr, spec.Width, spec.Suppress)
	case "flat":
		f := hierarchy.NewFlat(attr)
		f.Top = spec.Top
		return f, nil
	default:
		return nil, fmt.Errorf("config: %s: unknown hierarchy type %q", attr, spec.Type)
	}
}
