package loss

import (
	"math"
	"testing"

	"psk/internal/lattice"
)

// statsAt materializes the Figure 3 masking at node and returns both
// the masked table (oracle side) and its post-suppression group
// statistics (stats side).
func statsAt(t *testing.T, node lattice.Node, k int) (oracle, stats Report) {
	t.Helper()
	tbl, m := fig3(t)
	mm, _, err := m.Mask(tbl, node, k)
	if err != nil {
		t.Fatal(err)
	}
	qis := []string{"Sex", "ZipCode"}
	oracle, err = Measure(Input{
		Initial: tbl, Masked: mm, QIs: qis,
		Node: node, Lattice: m.Lattice(), K: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := mm.GroupStats(qis, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewBaseline(tbl, qis)
	if err != nil {
		t.Fatal(err)
	}
	stats, err = MeasureStats(StatsInput{
		Stats: ps, Rows: tbl.NumRows(), Baseline: base,
		Node: node, Lattice: m.Lattice(), K: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return oracle, stats
}

// TestMeasureStatsMatchesOracle: the stats path must reproduce the
// table path bit-for-bit at every node of the Figure 3 lattice.
func TestMeasureStatsMatchesOracle(t *testing.T) {
	for _, node := range []lattice.Node{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 2}, {1, 2}} {
		// Skip maskings whose suppression exceeds what Mask allows — Mask
		// has no threshold, it suppresses whatever violates k.
		oracle, stats := statsAt(t, node, 3)
		if oracle.Discernibility != stats.Discernibility {
			t.Errorf("node %v: DM %d vs %d", node, stats.Discernibility, oracle.Discernibility)
		}
		pairs := []struct {
			name     string
			got, want float64
		}{
			{"height", stats.HeightRatio, oracle.HeightRatio},
			{"precision", stats.Precision, oracle.Precision},
			{"avg-group", stats.AvgGroupRatio, oracle.AvgGroupRatio},
			{"suppression", stats.SuppressionRatio, oracle.SuppressionRatio},
			{"entropy", stats.EntropyLossBits, oracle.EntropyLossBits},
		}
		for _, p := range pairs {
			if math.Float64bits(p.got) != math.Float64bits(p.want) {
				t.Errorf("node %v: %s = %x, oracle %x", node, p.name,
					math.Float64bits(p.got), math.Float64bits(p.want))
			}
		}
		if !stats.Node.Equal(node) {
			t.Errorf("node %v: report node %v", node, stats.Node)
		}
	}
}

// TestStatsEdgeCases: empty release (everything suppressed) and
// argument validation.
func TestStatsEdgeCases(t *testing.T) {
	tbl, m := fig3(t)
	qis := []string{"Sex", "ZipCode"}
	// At <0,0> with k=3 everything is suppressed (all groups < 3).
	mm, sup, err := m.Mask(tbl, lattice.Node{0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumRows() != 0 || sup != 10 {
		t.Fatalf("expected empty release, got %d rows, %d suppressed", mm.NumRows(), sup)
	}
	ps, err := mm.GroupStats(qis, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dm, err := DiscernibilityStats(ps, 10); err != nil || dm != 100 {
		t.Errorf("empty-release DM = %d, %v; want 100", dm, err)
	}
	if r, err := AvgGroupRatioStats(ps, 3); err != nil || r != 0 {
		t.Errorf("empty-release C_AVG = %g, %v; want 0", r, err)
	}
	base, err := NewBaseline(tbl, qis)
	if err != nil {
		t.Fatal(err)
	}
	el, err := EntropyLossStats(ps, base)
	if err != nil {
		t.Fatal(err)
	}
	// Empty masked column has entropy 0, so the loss is the baseline sum.
	wantEL, err := EntropyLoss(tbl, mm, qis)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(el) != math.Float64bits(wantEL) {
		t.Errorf("empty-release entropy loss %g, oracle %g", el, wantEL)
	}

	// Validation.
	if _, err := DiscernibilityStats(ps, -1); err == nil {
		t.Error("n < released accepted")
	}
	if _, err := AvgGroupRatioStats(ps, 0); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := EntropyLossStats(ps, nil); err == nil {
		t.Error("nil baseline accepted")
	}
	short, err := NewBaseline(tbl, []string{"Sex"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EntropyLossStats(ps, short); err == nil {
		t.Error("QI-count mismatch accepted")
	}
	if _, err := NewBaseline(tbl, []string{"Missing"}); err == nil {
		t.Error("missing attribute accepted")
	}
	if got := short.QIs(); len(got) != 1 || got[0] != "Sex" {
		t.Errorf("baseline QIs = %v", got)
	}
}
