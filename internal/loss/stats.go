package loss

import (
	"fmt"
	"sort"

	"psk/internal/lattice"
	"psk/internal/table"
)

// This file is the statistics-native side of the package: every metric
// that Measure derives by scanning the released table is recomputed
// here from post-suppression group statistics (per-group sizes plus the
// QI codes of each group), so scoring a lattice node costs O(groups)
// instead of O(rows) and no node has to be materialized just to be
// scored. The table-based functions in metrics.go remain the
// differential oracles; the tests pin the two paths byte-identical
// (integers exactly, floats bit-for-bit, since both sides sum the same
// terms in the same order).

// Baseline memoizes the per-QI Shannon entropies of the *initial*
// microdata, which EntropyLoss would otherwise recompute for every
// scored node (O(rows·QIs) per node). Build it once per search with
// NewBaseline; it is immutable afterwards and safe to share.
type Baseline struct {
	qis       []string
	entropies []float64
}

// NewBaseline scans the initial microdata once and records the entropy
// of every QI column, in the given QI order (which must match the key
// order of the statistics later measured against it).
func NewBaseline(im *table.Table, qis []string) (*Baseline, error) {
	b := &Baseline{
		qis:       append([]string(nil), qis...),
		entropies: make([]float64, len(qis)),
	}
	for i, q := range qis {
		h, err := columnEntropy(im, q)
		if err != nil {
			return nil, err
		}
		b.entropies[i] = h
	}
	return b, nil
}

// QIs returns the attribute order the baseline was computed over.
func (b *Baseline) QIs() []string { return append([]string(nil), b.qis...) }

// DiscernibilityStats is Discernibility from post-suppression group
// statistics: every released tuple is charged its group size, every
// suppressed tuple the original table size n. Group code vectors and
// released values are in bijection (generalized columns intern one code
// per distinct label), so the group-size multiset here equals the
// oracle's GroupBy partition and the integer sum is identical.
func DiscernibilityStats(s *table.GroupStats, n int) (int, error) {
	if n < s.NumRows {
		return 0, fmt.Errorf("loss: original size %d smaller than released %d", n, s.NumRows)
	}
	dm := 0
	for i := range s.Groups {
		sz := s.Groups[i].Size
		dm += sz * sz
	}
	dm += (n - s.NumRows) * n
	return dm, nil
}

// AvgGroupRatioStats is AvgGroupRatio from post-suppression group
// statistics: C_AVG = (released / groups) / k.
func AvgGroupRatioStats(s *table.GroupStats, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("loss: k must be >= 1, got %d", k)
	}
	if s.NumRows == 0 {
		return 0, nil
	}
	return float64(s.NumRows) / float64(s.NumGroups()) / float64(k), nil
}

// EntropyLossStats is EntropyLoss from post-suppression group
// statistics against a memoized Baseline: for each QI the marginal
// value counts are accumulated over the groups' key codes, sorted
// descending (the order ValueCounts reports, so the float sum is
// bit-identical to the oracle's), and the masked entropy is subtracted
// from the baseline entropy.
func EntropyLossStats(s *table.GroupStats, base *Baseline) (float64, error) {
	if base == nil {
		return 0, fmt.Errorf("loss: nil baseline")
	}
	if s.NumQI != len(base.entropies) {
		return 0, fmt.Errorf("loss: stats carry %d QI key columns, baseline has %d", s.NumQI, len(base.entropies))
	}
	total := 0.0
	marginal := make(map[int]int)
	var counts []int
	for i := range base.entropies {
		clear(marginal)
		for g := range s.Groups {
			marginal[s.Groups[g].Codes[i]] += s.Groups[g].Size
		}
		counts = counts[:0]
		for _, c := range marginal {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		total += base.entropies[i] - entropyOfCounts(counts, s.NumRows)
	}
	return total, nil
}

// StatsInput names the arguments of a statistics-native measurement:
// Stats are the post-suppression group statistics of the release at
// Node, Rows the original (pre-suppression) row count, Baseline the
// per-search entropy memo of the initial microdata.
type StatsInput struct {
	Stats    *table.GroupStats
	Rows     int
	Baseline *Baseline
	Node     lattice.Node
	Lattice  *lattice.Lattice
	K        int
}

// MeasureStats computes the full metric report from group statistics
// alone — no masked table. It returns exactly what Measure returns for
// the materialized release the statistics describe: the integer metrics
// match exactly and the float metrics bit-for-bit (both paths run the
// same expressions over the same operands in the same order).
func MeasureStats(in StatsInput) (Report, error) {
	heights := in.Lattice.Dims()
	rep := Report{Node: in.Node.Clone(), HeightRatio: HeightRatio(in.Node, in.Lattice)}
	kept := in.Stats.NumRows
	var err error
	if rep.Precision, err = Precision(in.Node, heights, in.Rows, kept); err != nil {
		return Report{}, err
	}
	if rep.Discernibility, err = DiscernibilityStats(in.Stats, in.Rows); err != nil {
		return Report{}, err
	}
	if rep.AvgGroupRatio, err = AvgGroupRatioStats(in.Stats, in.K); err != nil {
		return Report{}, err
	}
	if rep.SuppressionRatio, err = SuppressionRatio(in.Rows, kept); err != nil {
		return Report{}, err
	}
	if rep.EntropyLossBits, err = EntropyLossStats(in.Stats, in.Baseline); err != nil {
		return Report{}, err
	}
	return rep, nil
}
