// Package loss implements information-loss (data utility) metrics for
// masked microdata: Sweeney's precision (Prec), the discernibility
// metric (DM), the normalized average equivalence class size (C_AVG),
// generalization height, entropy-based loss and the suppression ratio.
// The paper motivates minimal generalizations by data usefulness; these
// metrics let the benchmark harness compare the candidates the searches
// return.
package loss

import (
	"fmt"
	"math"

	"psk/internal/lattice"
	"psk/internal/table"
)

// HeightRatio is the simplest loss proxy: the node height divided by
// the lattice height. 0 = no generalization, 1 = full generalization.
func HeightRatio(node lattice.Node, lat *lattice.Lattice) float64 {
	if lat.Height() == 0 {
		return 0
	}
	return float64(node.Height()) / float64(lat.Height())
}

// Precision computes Sweeney's Prec metric for full-domain
// generalization: one minus the average, over all QI cells, of the cell
// generalization level divided by its hierarchy height. Suppressed
// tuples count as fully generalized. heights[i] is the hierarchy height
// of QI i; n is the original (pre-suppression) row count; kept is the
// number of released rows.
func Precision(node lattice.Node, heights []int, n, kept int) (float64, error) {
	if len(node) != len(heights) {
		return 0, fmt.Errorf("loss: node has %d attributes, heights has %d", len(node), len(heights))
	}
	if n <= 0 {
		return 0, fmt.Errorf("loss: non-positive original size %d", n)
	}
	if kept < 0 || kept > n {
		return 0, fmt.Errorf("loss: kept %d outside [0, %d]", kept, n)
	}
	total := 0.0
	for i, h := range heights {
		if h == 0 {
			continue
		}
		// Released tuples lose node[i]/h per cell; suppressed tuples
		// lose the full cell.
		total += float64(kept)*float64(node[i])/float64(h) + float64(n-kept)
	}
	cells := float64(n * len(heights))
	if cells == 0 {
		return 1, nil
	}
	return 1 - total/cells, nil
}

// Discernibility computes the discernibility metric DM: every released
// tuple is charged the size of its QI-group; every suppressed tuple is
// charged the original table size n.
func Discernibility(mm *table.Table, qis []string, n int) (int, error) {
	if n < mm.NumRows() {
		return 0, fmt.Errorf("loss: original size %d smaller than released %d", n, mm.NumRows())
	}
	groups, err := mm.GroupBy(qis...)
	if err != nil {
		return 0, err
	}
	dm := 0
	for _, g := range groups {
		dm += g.Size() * g.Size()
	}
	dm += (n - mm.NumRows()) * n
	return dm, nil
}

// AvgGroupRatio computes C_AVG = (released / groups) / k: how much
// larger the average QI-group is than the minimum k requires. 1.0 is
// optimal.
func AvgGroupRatio(mm *table.Table, qis []string, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("loss: k must be >= 1, got %d", k)
	}
	if mm.NumRows() == 0 {
		return 0, nil
	}
	groups, err := mm.NumGroups(qis...)
	if err != nil {
		return 0, err
	}
	return float64(mm.NumRows()) / float64(groups) / float64(k), nil
}

// SuppressionRatio is the fraction of original tuples that were
// suppressed.
func SuppressionRatio(n, kept int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("loss: non-positive original size %d", n)
	}
	if kept < 0 || kept > n {
		return 0, fmt.Errorf("loss: kept %d outside [0, %d]", kept, n)
	}
	return float64(n-kept) / float64(n), nil
}

// EntropyLoss measures, per QI attribute, the reduction in Shannon
// entropy from the initial to the masked column, summed over the QIs.
// Generalization merges values, so masked entropy never exceeds the
// original; the difference (in bits) is the information lost.
func EntropyLoss(im, mm *table.Table, qis []string) (float64, error) {
	total := 0.0
	for _, q := range qis {
		hIM, err := columnEntropy(im, q)
		if err != nil {
			return 0, err
		}
		hMM, err := columnEntropy(mm, q)
		if err != nil {
			return 0, err
		}
		total += hIM - hMM
	}
	return total, nil
}

func columnEntropy(t *table.Table, attr string) (float64, error) {
	vc, err := t.ValueCounts(attr)
	if err != nil {
		return 0, err
	}
	n := 0
	counts := make([]int, len(vc))
	for i, c := range vc {
		n += c.Count
		counts[i] = c.Count
	}
	return entropyOfCounts(counts, n), nil
}

// entropyOfCounts is the Shannon entropy (bits) of a count vector
// summing to n, accumulated in slice order. Both the table path
// (ValueCounts order: descending count) and the statistics path
// (marginal counts sorted descending) feed it their counts in
// descending order, so equal count multisets produce bit-identical
// sums — the differential tests rely on that.
func entropyOfCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}

// Report bundles every metric for one masked microdata.
type Report struct {
	Node             lattice.Node
	HeightRatio      float64
	Precision        float64
	Discernibility   int
	AvgGroupRatio    float64
	SuppressionRatio float64
	EntropyLossBits  float64
}

// Input names the arguments of a table-based measurement: the masked
// microdata Masked was derived from Initial by generalizing the QIs to
// Node (over Lattice) and suppressing down to Masked.NumRows() rows.
// StatsInput is the statistics-native twin for callers that never
// materialize the masked table.
type Input struct {
	Initial *table.Table
	Masked  *table.Table
	QIs     []string
	Node    lattice.Node
	Lattice *lattice.Lattice
	K       int
}

// Measure computes the full metric report for one masked microdata by
// scanning the released table. It is the differential oracle for
// MeasureStats, which computes the identical report from group
// statistics alone.
func Measure(in Input) (Report, error) {
	heights := in.Lattice.Dims()
	rep := Report{Node: in.Node.Clone(), HeightRatio: HeightRatio(in.Node, in.Lattice)}
	var err error
	if rep.Precision, err = Precision(in.Node, heights, in.Initial.NumRows(), in.Masked.NumRows()); err != nil {
		return Report{}, err
	}
	if rep.Discernibility, err = Discernibility(in.Masked, in.QIs, in.Initial.NumRows()); err != nil {
		return Report{}, err
	}
	if rep.AvgGroupRatio, err = AvgGroupRatio(in.Masked, in.QIs, in.K); err != nil {
		return Report{}, err
	}
	if rep.SuppressionRatio, err = SuppressionRatio(in.Initial.NumRows(), in.Masked.NumRows()); err != nil {
		return Report{}, err
	}
	if rep.EntropyLossBits, err = EntropyLoss(in.Initial, in.Masked, in.QIs); err != nil {
		return Report{}, err
	}
	return rep, nil
}
