// Package loss implements information-loss (data utility) metrics for
// masked microdata: Sweeney's precision (Prec), the discernibility
// metric (DM), the normalized average equivalence class size (C_AVG),
// generalization height, entropy-based loss and the suppression ratio.
// The paper motivates minimal generalizations by data usefulness; these
// metrics let the benchmark harness compare the candidates the searches
// return.
package loss

import (
	"fmt"
	"math"

	"psk/internal/lattice"
	"psk/internal/table"
)

// HeightRatio is the simplest loss proxy: the node height divided by
// the lattice height. 0 = no generalization, 1 = full generalization.
func HeightRatio(node lattice.Node, lat *lattice.Lattice) float64 {
	if lat.Height() == 0 {
		return 0
	}
	return float64(node.Height()) / float64(lat.Height())
}

// Precision computes Sweeney's Prec metric for full-domain
// generalization: one minus the average, over all QI cells, of the cell
// generalization level divided by its hierarchy height. Suppressed
// tuples count as fully generalized. heights[i] is the hierarchy height
// of QI i; n is the original (pre-suppression) row count; kept is the
// number of released rows.
func Precision(node lattice.Node, heights []int, n, kept int) (float64, error) {
	if len(node) != len(heights) {
		return 0, fmt.Errorf("loss: node has %d attributes, heights has %d", len(node), len(heights))
	}
	if n <= 0 {
		return 0, fmt.Errorf("loss: non-positive original size %d", n)
	}
	if kept < 0 || kept > n {
		return 0, fmt.Errorf("loss: kept %d outside [0, %d]", kept, n)
	}
	total := 0.0
	for i, h := range heights {
		if h == 0 {
			continue
		}
		// Released tuples lose node[i]/h per cell; suppressed tuples
		// lose the full cell.
		total += float64(kept)*float64(node[i])/float64(h) + float64(n-kept)
	}
	cells := float64(n * len(heights))
	if cells == 0 {
		return 1, nil
	}
	return 1 - total/cells, nil
}

// Discernibility computes the discernibility metric DM: every released
// tuple is charged the size of its QI-group; every suppressed tuple is
// charged the original table size n.
func Discernibility(mm *table.Table, qis []string, n int) (int, error) {
	if n < mm.NumRows() {
		return 0, fmt.Errorf("loss: original size %d smaller than released %d", n, mm.NumRows())
	}
	groups, err := mm.GroupBy(qis...)
	if err != nil {
		return 0, err
	}
	dm := 0
	for _, g := range groups {
		dm += g.Size() * g.Size()
	}
	dm += (n - mm.NumRows()) * n
	return dm, nil
}

// AvgGroupRatio computes C_AVG = (released / groups) / k: how much
// larger the average QI-group is than the minimum k requires. 1.0 is
// optimal.
func AvgGroupRatio(mm *table.Table, qis []string, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("loss: k must be >= 1, got %d", k)
	}
	if mm.NumRows() == 0 {
		return 0, nil
	}
	groups, err := mm.NumGroups(qis...)
	if err != nil {
		return 0, err
	}
	return float64(mm.NumRows()) / float64(groups) / float64(k), nil
}

// SuppressionRatio is the fraction of original tuples that were
// suppressed.
func SuppressionRatio(n, kept int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("loss: non-positive original size %d", n)
	}
	if kept < 0 || kept > n {
		return 0, fmt.Errorf("loss: kept %d outside [0, %d]", kept, n)
	}
	return float64(n-kept) / float64(n), nil
}

// EntropyLoss measures, per QI attribute, the reduction in Shannon
// entropy from the initial to the masked column, summed over the QIs.
// Generalization merges values, so masked entropy never exceeds the
// original; the difference (in bits) is the information lost.
func EntropyLoss(im, mm *table.Table, qis []string) (float64, error) {
	total := 0.0
	for _, q := range qis {
		hIM, err := columnEntropy(im, q)
		if err != nil {
			return 0, err
		}
		hMM, err := columnEntropy(mm, q)
		if err != nil {
			return 0, err
		}
		total += hIM - hMM
	}
	return total, nil
}

func columnEntropy(t *table.Table, attr string) (float64, error) {
	vc, err := t.ValueCounts(attr)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, c := range vc {
		n += c.Count
	}
	if n == 0 {
		return 0, nil
	}
	h := 0.0
	for _, c := range vc {
		p := float64(c.Count) / float64(n)
		h -= p * math.Log2(p)
	}
	return h, nil
}

// Report bundles every metric for one masked microdata.
type Report struct {
	Node             lattice.Node
	HeightRatio      float64
	Precision        float64
	Discernibility   int
	AvgGroupRatio    float64
	SuppressionRatio float64
	EntropyLossBits  float64
}

// Measure computes the full metric report for a masked microdata mm
// derived from im by generalizing to node (with the given lattice and
// per-QI hierarchy heights) and suppressing down to mm.NumRows() rows.
func Measure(im, mm *table.Table, qis []string, node lattice.Node, lat *lattice.Lattice, k int) (Report, error) {
	heights := lat.Dims()
	rep := Report{Node: node.Clone(), HeightRatio: HeightRatio(node, lat)}
	var err error
	if rep.Precision, err = Precision(node, heights, im.NumRows(), mm.NumRows()); err != nil {
		return Report{}, err
	}
	if rep.Discernibility, err = Discernibility(mm, qis, im.NumRows()); err != nil {
		return Report{}, err
	}
	if rep.AvgGroupRatio, err = AvgGroupRatio(mm, qis, k); err != nil {
		return Report{}, err
	}
	if rep.SuppressionRatio, err = SuppressionRatio(im.NumRows(), mm.NumRows()); err != nil {
		return Report{}, err
	}
	if rep.EntropyLossBits, err = EntropyLoss(im, mm, qis); err != nil {
		return Report{}, err
	}
	return rep, nil
}
