package loss

import (
	"math"
	"testing"

	"psk/internal/generalize"
	"psk/internal/hierarchy"
	"psk/internal/lattice"
	"psk/internal/table"
)

func fig3(t *testing.T) (*table.Table, *generalize.Masker) {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Sex", Type: table.String},
		table.Field{Name: "ZipCode", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"M", "41076"}, {"F", "41099"}, {"M", "41099"}, {"M", "41076"},
		{"F", "43102"}, {"M", "43102"}, {"M", "43102"}, {"F", "43103"},
		{"M", "48202"}, {"M", "48201"},
	})
	if err != nil {
		t.Fatal(err)
	}
	zip, err := hierarchy.NewPrefixSteps("ZipCode", 5, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := generalize.NewMasker([]string{"Sex", "ZipCode"}, hierarchy.MustSet(zip, hierarchy.NewFlat("Sex")))
	if err != nil {
		t.Fatal(err)
	}
	return tbl, m
}

func TestHeightRatio(t *testing.T) {
	lat, _ := lattice.New([]int{1, 2})
	if r := HeightRatio(lattice.Node{0, 0}, lat); r != 0 {
		t.Errorf("bottom ratio = %g", r)
	}
	if r := HeightRatio(lattice.Node{1, 2}, lat); r != 1 {
		t.Errorf("top ratio = %g", r)
	}
	if r := HeightRatio(lattice.Node{1, 0}, lat); math.Abs(r-1.0/3.0) > 1e-12 {
		t.Errorf("ratio = %g, want 1/3", r)
	}
	flat, _ := lattice.New([]int{0})
	if r := HeightRatio(lattice.Node{0}, flat); r != 0 {
		t.Errorf("degenerate lattice ratio = %g", r)
	}
}

func TestPrecision(t *testing.T) {
	heights := []int{1, 2}
	// No generalization, nothing suppressed: Prec = 1.
	p, err := Precision(lattice.Node{0, 0}, heights, 10, 10)
	if err != nil || p != 1 {
		t.Errorf("Prec = %g, %v; want 1", p, err)
	}
	// Full generalization: Prec = 0.
	p, _ = Precision(lattice.Node{1, 2}, heights, 10, 10)
	if p != 0 {
		t.Errorf("Prec = %g, want 0", p)
	}
	// Half generalization on one attribute: zip level 1 of 2 over two
	// attributes -> loss = (10*0 + 10*0.5)/20 = 0.25.
	p, _ = Precision(lattice.Node{0, 1}, heights, 10, 10)
	if math.Abs(p-0.75) > 1e-12 {
		t.Errorf("Prec = %g, want 0.75", p)
	}
	// All suppressed: Prec = 0 regardless of node.
	p, _ = Precision(lattice.Node{0, 0}, heights, 10, 0)
	if p != 0 {
		t.Errorf("Prec with all suppressed = %g, want 0", p)
	}
	// Errors.
	if _, err := Precision(lattice.Node{0}, heights, 10, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Precision(lattice.Node{0, 0}, heights, 0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Precision(lattice.Node{0, 0}, heights, 5, 6); err == nil {
		t.Error("kept>n accepted")
	}
}

func TestPrecisionZeroHeightAttr(t *testing.T) {
	// Attributes with height 0 contribute no loss (they cannot be
	// generalized).
	p, err := Precision(lattice.Node{0}, []int{0}, 10, 10)
	if err != nil || p != 1 {
		t.Errorf("Prec = %g, %v", p, err)
	}
}

func TestDiscernibility(t *testing.T) {
	tbl, m := fig3(t)
	// At <1,2> everything is one group of 10: DM = 100.
	g, _ := m.Apply(tbl, lattice.Node{1, 2})
	dm, err := Discernibility(g, []string{"Sex", "ZipCode"}, 10)
	if err != nil || dm != 100 {
		t.Errorf("DM = %d, %v; want 100", dm, err)
	}
	// At <1,1>: groups 4,4,2 -> 16+16+4 = 36.
	g, _ = m.Apply(tbl, lattice.Node{1, 1})
	dm, _ = Discernibility(g, []string{"Sex", "ZipCode"}, 10)
	if dm != 36 {
		t.Errorf("DM = %d, want 36", dm)
	}
	// Suppressing the 482** pair charges 2*10: groups 4,4 -> 32 + 20 = 52.
	mm, _, err := m.Suppress(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	dm, _ = Discernibility(mm, []string{"Sex", "ZipCode"}, 10)
	if dm != 52 {
		t.Errorf("DM with suppression = %d, want 52", dm)
	}
	if _, err := Discernibility(g, []string{"Sex", "ZipCode"}, 5); err == nil {
		t.Error("n < released accepted")
	}
}

func TestAvgGroupRatio(t *testing.T) {
	tbl, m := fig3(t)
	g, _ := m.Apply(tbl, lattice.Node{1, 1})
	// 10 rows in 3 groups, k=3: (10/3)/3 = 1.111...
	r, err := AvgGroupRatio(g, []string{"Sex", "ZipCode"}, 3)
	if err != nil || math.Abs(r-10.0/9.0) > 1e-12 {
		t.Errorf("C_AVG = %g, %v", r, err)
	}
	empty := g.Filter(func(int) bool { return false })
	r, err = AvgGroupRatio(empty, []string{"Sex", "ZipCode"}, 3)
	if err != nil || r != 0 {
		t.Errorf("empty C_AVG = %g, %v", r, err)
	}
	if _, err := AvgGroupRatio(g, []string{"Sex", "ZipCode"}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSuppressionRatio(t *testing.T) {
	r, err := SuppressionRatio(10, 7)
	if err != nil || math.Abs(r-0.3) > 1e-12 {
		t.Errorf("ratio = %g, %v", r, err)
	}
	if _, err := SuppressionRatio(0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SuppressionRatio(5, 6); err == nil {
		t.Error("kept>n accepted")
	}
}

func TestEntropyLoss(t *testing.T) {
	tbl, m := fig3(t)
	// Identity: no loss.
	el, err := EntropyLoss(tbl, tbl, []string{"Sex", "ZipCode"})
	if err != nil || math.Abs(el) > 1e-12 {
		t.Errorf("identity entropy loss = %g, %v", el, err)
	}
	// Full generalization: masked entropy 0, loss = original entropy > 0.
	g, _ := m.Apply(tbl, lattice.Node{1, 2})
	el, err = EntropyLoss(tbl, g, []string{"Sex", "ZipCode"})
	if err != nil || el <= 0 {
		t.Errorf("full generalization entropy loss = %g, %v", el, err)
	}
	// Monotone: more generalization, more loss.
	g1, _ := m.Apply(tbl, lattice.Node{0, 1})
	el1, _ := EntropyLoss(tbl, g1, []string{"Sex", "ZipCode"})
	g2, _ := m.Apply(tbl, lattice.Node{1, 2})
	el2, _ := EntropyLoss(tbl, g2, []string{"Sex", "ZipCode"})
	if el1 > el2 {
		t.Errorf("entropy loss not monotone: %g > %g", el1, el2)
	}
	if _, err := EntropyLoss(tbl, g, []string{"Missing"}); err == nil {
		t.Error("missing attribute accepted")
	}
}

func TestMeasure(t *testing.T) {
	tbl, m := fig3(t)
	node := lattice.Node{1, 1}
	mm, _, err := m.Mask(tbl, node, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Measure(Input{
		Initial: tbl, Masked: mm, QIs: []string{"Sex", "ZipCode"},
		Node: node, Lattice: m.Lattice(), K: 3,
	})
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if !rep.Node.Equal(node) {
		t.Errorf("node = %v", rep.Node)
	}
	if rep.HeightRatio <= 0 || rep.HeightRatio >= 1 {
		t.Errorf("height ratio = %g", rep.HeightRatio)
	}
	if rep.Precision <= 0 || rep.Precision >= 1 {
		t.Errorf("precision = %g", rep.Precision)
	}
	if rep.Discernibility != 52 {
		t.Errorf("DM = %d, want 52", rep.Discernibility)
	}
	if rep.SuppressionRatio != 0.2 {
		t.Errorf("suppression ratio = %g, want 0.2", rep.SuppressionRatio)
	}
	if rep.EntropyLossBits <= 0 {
		t.Errorf("entropy loss = %g", rep.EntropyLossBits)
	}
	// Mutating the returned node must not affect future calls (Clone).
	rep.Node[0] = 9
	if node[0] == 9 {
		t.Error("Measure aliased the node")
	}
}
