package mask

import (
	"math"
	"testing"

	"psk/internal/core"
	"psk/internal/dataset"
	"psk/internal/table"
)

func numericTable(t *testing.T) *table.Table {
	t.Helper()
	sch := table.MustSchema(
		table.Field{Name: "Age", Type: table.Int},
		table.Field{Name: "Income", Type: table.Int},
		table.Field{Name: "Illness", Type: table.String},
	)
	tbl, err := table.FromText(sch, [][]string{
		{"23", "20000", "Flu"},
		{"25", "22000", "Cold"},
		{"27", "21000", "Flu"},
		{"45", "50000", "Asthma"},
		{"47", "52000", "Cold"},
		{"49", "51000", "Flu"},
		{"65", "30000", "Asthma"},
		{"67", "31000", "Cold"},
		{"69", "32000", "Flu"},
		{"70", "33000", "Asthma"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestMicroaggregateKAnonymity(t *testing.T) {
	tbl := numericTable(t)
	out, err := Microaggregate(tbl, []string{"Age", "Income"}, 3)
	if err != nil {
		t.Fatalf("Microaggregate: %v", err)
	}
	if out.NumRows() != tbl.NumRows() {
		t.Errorf("rows = %d", out.NumRows())
	}
	// The microaggregated attributes are k-anonymous by construction.
	ok, err := core.IsKAnonymous(out, []string{"Age", "Income"}, 3)
	if err != nil || !ok {
		t.Errorf("output not 3-anonymous on microaggregated attrs: %v", err)
	}
	// Confidential column untouched.
	v, _ := out.Value(0, "Illness")
	if v.Str() != "Flu" {
		t.Errorf("illness mutated: %v", v)
	}
	// Group means are plausible: first cluster of ages ~23-27 -> mean 25.
	a0, _ := out.Value(0, "Age")
	if a0.Int() < 20 || a0.Int() > 30 {
		t.Errorf("age mean = %v, expected in the 20s", a0)
	}
}

// TestMicroaggregateMeanPreservation: MDAV preserves the attribute mean
// exactly (each value is replaced by its group mean).
func TestMicroaggregateMeanPreservation(t *testing.T) {
	tbl := numericTable(t)
	out, err := Microaggregate(tbl, []string{"Income"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sumIn, sumOut := 0.0, 0.0
	for r := 0; r < tbl.NumRows(); r++ {
		vi, _ := tbl.Value(r, "Income")
		vo, _ := out.Value(r, "Income")
		sumIn += vi.Float()
		sumOut += vo.Float()
	}
	// Integer rounding introduces at most 0.5 per row.
	if math.Abs(sumIn-sumOut) > 0.5*float64(tbl.NumRows()) {
		t.Errorf("mean drifted: %g -> %g", sumIn, sumOut)
	}
}

func TestMicroaggregateGroupSizes(t *testing.T) {
	// On Adult ages the groups must all be within [k, 2k-1].
	src, err := dataset.Generate(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Microaggregate(src, []string{dataset.Age}, 5)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := out.GroupBy(dataset.Age)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		// Distinct age means can coincide across MDAV groups, so only
		// the lower bound is a hard invariant.
		if g.Size() < 5 {
			t.Errorf("group %s has %d < k members", g.KeyString(), g.Size())
		}
	}
}

func TestMicroaggregateValidation(t *testing.T) {
	tbl := numericTable(t)
	if _, err := Microaggregate(tbl, []string{"Age"}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Microaggregate(tbl, nil, 3); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := Microaggregate(tbl, []string{"Illness"}, 3); err == nil {
		t.Error("categorical attribute accepted")
	}
	if _, err := Microaggregate(tbl, []string{"Missing"}, 3); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Microaggregate(tbl.Head(2), []string{"Age"}, 3); err == nil {
		t.Error("n < k accepted")
	}
}

func TestRankSwapPreservesMarginal(t *testing.T) {
	tbl := numericTable(t)
	out, err := RankSwap(tbl, "Income", 30, 42)
	if err != nil {
		t.Fatalf("RankSwap: %v", err)
	}
	// The multiset of incomes is exactly preserved.
	countIn := make(map[int64]int)
	countOut := make(map[int64]int)
	changed := false
	for r := 0; r < tbl.NumRows(); r++ {
		vi, _ := tbl.Value(r, "Income")
		vo, _ := out.Value(r, "Income")
		countIn[vi.Int()]++
		countOut[vo.Int()]++
		if vi.Int() != vo.Int() {
			changed = true
		}
	}
	for v, c := range countIn {
		if countOut[v] != c {
			t.Errorf("marginal broken at %d: %d vs %d", v, c, countOut[v])
		}
	}
	if !changed {
		t.Error("rank swap changed nothing")
	}
	// Deterministic for a seed.
	again, _ := RankSwap(tbl, "Income", 30, 42)
	for r := 0; r < out.NumRows(); r++ {
		a, _ := out.Value(r, "Income")
		b, _ := again.Value(r, "Income")
		if !a.Equal(b) {
			t.Fatal("same-seed swaps differ")
		}
	}
}

func TestRankSwapWindowBound(t *testing.T) {
	// With a 10% window on 10 rows, swap partners are rank-adjacent:
	// the value at each position moves at most 1 rank.
	tbl := numericTable(t)
	out, err := RankSwap(tbl, "Age", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.NumRows(); r++ {
		vi, _ := tbl.Value(r, "Age")
		vo, _ := out.Value(r, "Age")
		if math.Abs(float64(vi.Int()-vo.Int())) > 25 {
			t.Errorf("row %d moved too far: %d -> %d", r, vi.Int(), vo.Int())
		}
	}
}

func TestRankSwapValidation(t *testing.T) {
	tbl := numericTable(t)
	if _, err := RankSwap(tbl, "Age", 0, 1); err == nil {
		t.Error("pct=0 accepted")
	}
	if _, err := RankSwap(tbl, "Age", 101, 1); err == nil {
		t.Error("pct>100 accepted")
	}
	if _, err := RankSwap(tbl, "Illness", 10, 1); err == nil {
		t.Error("categorical attribute accepted")
	}
	if _, err := RankSwap(tbl, "Missing", 10, 1); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestAddNoise(t *testing.T) {
	tbl := numericTable(t)
	out, err := AddNoise(tbl, "Income", 0.2, 7)
	if err != nil {
		t.Fatalf("AddNoise: %v", err)
	}
	changed := 0
	for r := 0; r < tbl.NumRows(); r++ {
		vi, _ := tbl.Value(r, "Income")
		vo, _ := out.Value(r, "Income")
		if vi.Int() != vo.Int() {
			changed++
		}
	}
	if changed < tbl.NumRows()/2 {
		t.Errorf("only %d values perturbed", changed)
	}
	// Deterministic.
	again, _ := AddNoise(tbl, "Income", 0.2, 7)
	for r := 0; r < out.NumRows(); r++ {
		a, _ := out.Value(r, "Income")
		b, _ := again.Value(r, "Income")
		if !a.Equal(b) {
			t.Fatal("same-seed noise differs")
		}
	}
	// Mean roughly preserved (zero-mean noise, small sample tolerance).
	sumIn, sumOut := 0.0, 0.0
	for r := 0; r < tbl.NumRows(); r++ {
		vi, _ := tbl.Value(r, "Income")
		vo, _ := out.Value(r, "Income")
		sumIn += vi.Float()
		sumOut += vo.Float()
	}
	sd := 11883.0 * 0.2 // attribute sd ~11883
	if math.Abs(sumIn-sumOut) > 4*sd*math.Sqrt(float64(tbl.NumRows())) {
		t.Errorf("mean drifted: %g -> %g", sumIn/10, sumOut/10)
	}
}

func TestAddNoiseValidation(t *testing.T) {
	tbl := numericTable(t)
	if _, err := AddNoise(tbl, "Age", 0, 1); err == nil {
		t.Error("scale=0 accepted")
	}
	if _, err := AddNoise(tbl, "Illness", 0.1, 1); err == nil {
		t.Error("categorical attribute accepted")
	}
	if _, err := AddNoise(tbl, "Missing", 0.1, 1); err == nil {
		t.Error("unknown attribute accepted")
	}
	empty := tbl.Filter(func(int) bool { return false })
	out, err := AddNoise(empty, "Age", 0.1, 1)
	if err != nil || out.NumRows() != 0 {
		t.Errorf("empty table: %v", err)
	}
}
