// Package mask implements the other disclosure-control methods the
// paper's Section 2 surveys alongside generalization and suppression:
// microaggregation (Domingo-Ferrer and Mateo-Sanz's MDAV, the paper's
// reference [5]), rank swapping (Dalenius/Reiss data swapping, [4, 17])
// and additive noise ([9]). They give the library's users — and the
// masking-method comparison experiment — the classical alternatives to
// the k-anonymity family.
package mask

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"psk/internal/table"
)

// Microaggregate applies MDAV (Maximum Distance to Average Vector)
// microaggregation to the named numeric attributes: records are
// partitioned into groups of at least k (2k-1 at most) by the classic
// fixed-size heuristic, and every value is replaced by its group mean
// (rounded for integer columns). The result is k-anonymous with respect
// to the microaggregated attributes by construction.
func Microaggregate(t *table.Table, attrs []string, k int) (*table.Table, error) {
	if k < 2 {
		return nil, fmt.Errorf("mask: microaggregation k must be >= 2, got %d", k)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("mask: no attributes to microaggregate")
	}
	n := t.NumRows()
	if n < k {
		return nil, fmt.Errorf("mask: table has %d rows, fewer than k = %d", n, k)
	}
	cols := make([]table.Column, len(attrs))
	for i, a := range attrs {
		c, err := t.Column(a)
		if err != nil {
			return nil, err
		}
		if c.Type() == table.String {
			return nil, fmt.Errorf("mask: attribute %q is categorical; microaggregation needs numeric data", a)
		}
		cols[i] = c
	}

	// Normalize each attribute to zero mean / unit range for distance.
	vecs := make([][]float64, n)
	mins := make([]float64, len(cols))
	ranges := make([]float64, len(cols))
	for j, c := range cols {
		lo, hi := c.Value(0).Float(), c.Value(0).Float()
		for r := 1; r < n; r++ {
			v := c.Value(r).Float()
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		mins[j] = lo
		ranges[j] = hi - lo
		if ranges[j] == 0 {
			ranges[j] = 1
		}
	}
	for r := 0; r < n; r++ {
		vecs[r] = make([]float64, len(cols))
		for j, c := range cols {
			vecs[r][j] = (c.Value(r).Float() - mins[j]) / ranges[j]
		}
	}

	dist2 := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			diff := a[i] - b[i]
			d += diff * diff
		}
		return d
	}
	centroid := func(rows []int) []float64 {
		c := make([]float64, len(cols))
		for _, r := range rows {
			for j := range c {
				c[j] += vecs[r][j]
			}
		}
		for j := range c {
			c[j] /= float64(len(rows))
		}
		return c
	}
	farthest := func(from []float64, rows []int) int {
		best, bestD := rows[0], -1.0
		for _, r := range rows {
			d := dist2(from, vecs[r])
			if d > bestD {
				best, bestD = r, d
			}
		}
		return best
	}
	nearestK := func(seed int, rows []int) []int {
		sorted := make([]int, len(rows))
		copy(sorted, rows)
		sort.Slice(sorted, func(a, b int) bool {
			da, db := dist2(vecs[seed], vecs[sorted[a]]), dist2(vecs[seed], vecs[sorted[b]])
			if da != db {
				return da < db
			}
			return sorted[a] < sorted[b]
		})
		return sorted[:k]
	}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	groupOf := make([]int, n)
	groups := 0
	for len(remaining) >= 2*k {
		// MDAV: r = farthest from centroid, s = farthest from r; carve a
		// k-group around each.
		c := centroid(remaining)
		r := farthest(c, remaining)
		gr := nearestK(r, remaining)
		remaining = without(remaining, gr)
		assign(groupOf, gr, groups)
		groups++

		if len(remaining) == 0 {
			break
		}
		s := farthest(vecs[r], remaining)
		gs := nearestK(s, remaining)
		remaining = without(remaining, gs)
		assign(groupOf, gs, groups)
		groups++
	}
	if len(remaining) > 0 {
		assign(groupOf, remaining, groups)
		groups++
	}

	// Replace each attribute value with the group mean.
	out := t
	for j, attr := range attrs {
		sums := make([]float64, groups)
		counts := make([]int, groups)
		for r := 0; r < n; r++ {
			sums[groupOf[r]] += cols[j].Value(r).Float()
			counts[groupOf[r]]++
		}
		isInt := cols[j].Type() == table.Int
		row := 0
		var err error
		out, err = out.MapColumn(attr, func(table.Value) (string, error) {
			g := groupOf[row]
			row++
			mean := sums[g] / float64(counts[g])
			if isInt {
				return table.IV(int64(math.Round(mean))).Str(), nil
			}
			return table.FV(mean).Str(), nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func without(rows, drop []int) []int {
	doomed := make(map[int]bool, len(drop))
	for _, r := range drop {
		doomed[r] = true
	}
	out := rows[:0]
	for _, r := range rows {
		if !doomed[r] {
			out = append(out, r)
		}
	}
	return out
}

func assign(groupOf []int, rows []int, g int) {
	for _, r := range rows {
		groupOf[r] = g
	}
}

// RankSwap applies rank swapping to one numeric attribute: values are
// sorted and each is swapped with a partner whose rank differs by at
// most pct percent of n (Reiss-style practical data swapping). The
// marginal distribution is preserved exactly; rank correlations with
// other attributes degrade with pct.
func RankSwap(t *table.Table, attr string, pct float64, seed int64) (*table.Table, error) {
	if pct <= 0 || pct > 100 {
		return nil, fmt.Errorf("mask: rank swap percentage must be in (0, 100], got %g", pct)
	}
	col, err := t.Column(attr)
	if err != nil {
		return nil, err
	}
	if col.Type() == table.String {
		return nil, fmt.Errorf("mask: attribute %q is categorical; rank swapping needs numeric data", attr)
	}
	n := t.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return col.Value(order[a]).Float() < col.Value(order[b]).Float()
	})
	window := int(float64(n) * pct / 100)
	if window < 1 {
		window = 1
	}
	rng := rand.New(rand.NewSource(seed))
	swapped := make([]bool, n)
	newVal := make([]table.Value, n)
	for i := range order {
		newVal[order[i]] = col.Value(order[i])
	}
	for i := 0; i < n; i++ {
		if swapped[i] {
			continue
		}
		// Partner rank within the window, unswapped.
		lo, hi := i+1, i+window
		if hi >= n {
			hi = n - 1
		}
		var candidates []int
		for j := lo; j <= hi; j++ {
			if !swapped[j] {
				candidates = append(candidates, j)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		j := candidates[rng.Intn(len(candidates))]
		ri, rj := order[i], order[j]
		newVal[ri], newVal[rj] = col.Value(rj), col.Value(ri)
		swapped[i], swapped[j] = true, true
	}
	row := 0
	return t.MapColumn(attr, func(table.Value) (string, error) {
		v := newVal[row]
		row++
		return v.Str(), nil
	})
}

// AddNoise perturbs one numeric attribute with zero-mean Gaussian noise
// whose standard deviation is scale times the attribute's observed
// standard deviation (Kim-style additive noise, the paper's reference
// [9]). Integer columns are rounded.
func AddNoise(t *table.Table, attr string, scale float64, seed int64) (*table.Table, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("mask: noise scale must be positive, got %g", scale)
	}
	col, err := t.Column(attr)
	if err != nil {
		return nil, err
	}
	if col.Type() == table.String {
		return nil, fmt.Errorf("mask: attribute %q is categorical; noise addition needs numeric data", attr)
	}
	n := t.NumRows()
	if n == 0 {
		return t, nil
	}
	mean := 0.0
	for r := 0; r < n; r++ {
		mean += col.Value(r).Float()
	}
	mean /= float64(n)
	variance := 0.0
	for r := 0; r < n; r++ {
		d := col.Value(r).Float() - mean
		variance += d * d
	}
	variance /= float64(n)
	sigma := math.Sqrt(variance) * scale

	rng := rand.New(rand.NewSource(seed))
	isInt := col.Type() == table.Int
	row := 0
	return t.MapColumn(attr, func(v table.Value) (string, error) {
		noisy := v.Float() + rng.NormFloat64()*sigma
		row++
		if isInt {
			return table.IV(int64(math.Round(noisy))).Str(), nil
		}
		return table.FV(noisy).Str(), nil
	})
}
