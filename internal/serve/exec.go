package serve

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"

	"psk/internal/config"
	"psk/internal/core"
	"psk/internal/generalize"
	"psk/internal/hierarchy"
	"psk/internal/obs"
	"psk/internal/risk"
	"psk/internal/search"
	"psk/internal/table"
)

// CheckResult is the verdict of a check job.
type CheckResult struct {
	Satisfied bool   `json:"satisfied"`
	Policy    string `json:"policy"`
	Reason    string `json:"reason"`
	// Groups is the number of QI-groups observed; Group the index of the
	// first violating group (-1 when none is implicated).
	Groups int `json:"groups"`
	Group  int `json:"group"`
	Rows   int `json:"rows"`
}

// AnonymizeResult is the outcome of an anonymize job.
type AnonymizeResult struct {
	Found      bool   `json:"found"`
	Node       string `json:"node,omitempty"`
	Height     int    `json:"height"`
	Suppressed int    `json:"suppressed"`
	// ReleasedRows counts the rows of the masked table.
	ReleasedRows int `json:"released_rows"`
	// AllMinimal lists every minimal node (bottomup / exhaustive).
	AllMinimal []string `json:"all_minimal,omitempty"`
	// MaskedCSV carries the released table when the request asked for it.
	MaskedCSV string `json:"masked_csv,omitempty"`
}

// FrontierMember is one scored node of a frontier job's result.
type FrontierMember struct {
	Node       string `json:"node"`
	Height     int    `json:"height"`
	Rank       int    `json:"rank"`
	MinGroup   int    `json:"min_group"`
	Groups     int    `json:"groups"`
	Suppressed int    `json:"suppressed"`
	// Loss metrics (see internal/loss).
	HeightRatio      float64 `json:"height_ratio"`
	Precision        float64 `json:"precision"`
	Discernibility   int     `json:"discernibility"`
	AvgGroupRatio    float64 `json:"avg_group_ratio"`
	SuppressionRatio float64 `json:"suppression_ratio"`
	EntropyLossBits  float64 `json:"entropy_loss_bits"`
}

// FrontierResult is the outcome of a frontier job.
type FrontierResult struct {
	Members []FrontierMember `json:"members"`
}

// AttackResult is the outcome of an attack job: the record-linkage
// summary of risk.SummarizeAttack.
type AttackResult struct {
	Individuals               int     `json:"individuals"`
	Linked                    int     `json:"linked"`
	UniquelyIdentified        int     `json:"uniquely_identified"`
	AttributeDisclosed        int     `json:"attribute_disclosed"`
	MaxIdentityRisk           float64 `json:"max_identity_risk"`
	ExpectedReidentifications float64 `json:"expected_reidentifications"`
}

// JobResult is the kind-discriminated union a finished job reports.
type JobResult struct {
	Check     *CheckResult     `json:"check,omitempty"`
	Anonymize *AnonymizeResult `json:"anonymize,omitempty"`
	Frontier  *FrontierResult  `json:"frontier,omitempty"`
	Attack    *AttackResult    `json:"attack,omitempty"`
}

// exitCode maps a result onto the CLI exit-code convention: a negative
// verdict (violated property, no generalization, empty frontier) is
// ExitViolation, everything else ExitOK.
func (r *JobResult) exitCode() int {
	switch {
	case r == nil:
		return ExitInputError
	case r.Check != nil && !r.Check.Satisfied:
		return ExitViolation
	case r.Anonymize != nil && !r.Anonymize.Found:
		return ExitViolation
	case r.Frontier != nil && len(r.Frontier.Members) == 0:
		return ExitViolation
	}
	return ExitOK
}

// runFunc performs a job's computation. It runs on a queue worker with
// the execution's cancellable context and private recorder.
type runFunc func(ctx context.Context, rec *obs.Recorder) (*JobResult, search.StopReason, error)

// sharedData is one entry of the server's dataset cache: everything
// derivable from (dataset bytes, types, hierarchies, QI list) that
// concurrent searches can share — the parsed table, built hierarchies,
// masker and above all the generalized-column cache, so a tenant's
// search finds the columns earlier tenants already generalized.
type sharedData struct {
	tbl    *table.Table
	hiers  *hierarchy.Set
	masker *generalize.Masker
	cache  *generalize.Cache
}

// execution is one underlying computation, shared by every job whose
// request hashed to the same Key (single-flight). It is created at
// submit, queued once, and finished exactly once; completed cacheable
// executions stay in the server's result cache and later identical
// submissions attach to them without re-running.
type execution struct {
	key    Key
	kind   string
	ctx    context.Context
	cancel context.CancelFunc
	run    runFunc

	// refs counts attached, not-yet-cancelled jobs; the last DELETE
	// drops it to zero and cancels the context.
	refs atomic.Int64
	// started flips when a worker picks the execution up — the boundary
	// between "cancel removes it from the queue" and "cancel interrupts
	// the engine".
	started atomic.Bool
	// done closes when the outcome fields below are final.
	done chan struct{}

	rec  *obs.Recorder
	view *obs.Server

	// Outcome; written once before done closes. report is the frozen
	// final obs report — the same pointer the per-job /metrics endpoint
	// serves, so the status payload's embedded report and a /metrics
	// scrape are byte-identical documents.
	result *JobResult
	stop   search.StopReason
	err    error
	exit   int
	report *obs.Report
}

func newExecution(key Key, kind string, run runFunc) *execution {
	ctx, cancel := context.WithCancel(context.Background())
	rec := obs.NewRecorder()
	view, _ := obs.NewHandler(rec, nil) // only errs on nil recorder
	return &execution{
		key: key, kind: kind, ctx: ctx, cancel: cancel, run: run,
		done: make(chan struct{}), rec: rec, view: view,
	}
}

func (e *execution) finished() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// finish records the outcome and freezes the per-job /metrics view on
// the final report. Called exactly once, by the worker that ran (or
// skipped) the execution.
func (e *execution) finish(res *JobResult, stop search.StopReason, err error) {
	e.result, e.stop, e.err = res, stop, err
	switch {
	case err != nil:
		if isInputError(err) {
			e.exit = ExitInputError
		} else {
			e.exit = -1 // internal failure; HTTPStatus maps it to 500
		}
	case stop == search.StopCancelled && res == nil:
		e.exit = -1 // cancelled before any verdict
	default:
		e.exit = res.exitCode()
	}
	e.report = e.rec.Snapshot()
	e.view.Finalize(e.report)
	close(e.done)
}

// cacheable reports whether the outcome may serve future identical
// requests. Only complete runs qualify: partial results (deadline, node
// or memory budget, cancellation) depend on wall clock and scheduling,
// and errors should be re-observed, not replayed.
func (e *execution) cacheable() bool {
	return e.err == nil && e.stop == search.StopDone && e.result != nil
}

// prepare parses and validates a request into its content key, run
// function and (for search kinds) the shared dataset entry. Everything
// that can fail with a 400 fails here, at submit time — a rejected
// request never touches the queue or the engine.
func (s *Server) prepare(r *JobRequest) (Key, runFunc, *sharedData, error) {
	if err := r.validate(); err != nil {
		return Key{}, nil, nil, err
	}
	eff := clampBudget(r.Budget, s.opt.MaxBudget)
	workers := r.Workers
	if workers < 0 || workers > s.opt.MaxSearchWorkers {
		workers = s.opt.MaxSearchWorkers
	}
	key, err := r.key(eff)
	if err != nil {
		return Key{}, nil, nil, err
	}
	var run runFunc
	var sd *sharedData
	switch r.Kind {
	case KindCheck:
		run, err = prepareCheck(r)
	case KindAnonymize, KindFrontier:
		run, sd, err = s.prepareSearch(r, key, eff, workers)
	case KindAttack:
		run, err = prepareAttack(r)
	}
	if err != nil {
		return Key{}, nil, nil, err
	}
	return key, run, sd, nil
}

// prepareCheck builds a check run: one group-statistics pass, then the
// target policy's verdict — the service twin of pskcheck.
func prepareCheck(r *JobRequest) (runFunc, error) {
	tbl, err := table.ReadCSV(strings.NewReader(r.CSV), nil)
	if err != nil {
		return nil, inputError{err}
	}
	pol := composePolicy(r.Conf, r.P, r.K, r.LDiv, r.TClose, r.Alpha)
	if pol == nil {
		if r.P <= 1 || len(r.Conf) == 0 {
			pol = core.KAnonymityPolicy{K: r.K}
		} else {
			pol = core.PSensitiveKAnonymityPolicy{P: r.P, K: r.K, Attrs: r.Conf}
		}
	}
	qis, confs := r.QIs, r.Conf
	return func(ctx context.Context, rec *obs.Recorder) (*JobResult, search.StopReason, error) {
		v, err := core.NewStatsView(tbl, qis, confs, 1)
		if err != nil {
			return nil, search.StopDone, inputError{err}
		}
		verdict, err := core.Observe(pol, rec).Evaluate(v)
		if err != nil {
			return nil, search.StopDone, inputError{err}
		}
		return &JobResult{Check: &CheckResult{
			Satisfied: verdict.Satisfied,
			Policy:    pol.Name(),
			Reason:    verdict.Reason.String(),
			Groups:    verdict.Groups,
			Group:     verdict.Group,
			Rows:      tbl.NumRows(),
		}}, search.StopDone, nil
	}, nil
}

// prepareSearch builds an anonymize or frontier run over the shared
// dataset entry for (dataset, hierarchy) — concurrent tenants searching
// the same data reuse one parsed table and one generalized-column
// cache.
func (s *Server) prepareSearch(r *JobRequest, key Key, eff search.Budget, workers int) (runFunc, *sharedData, error) {
	// Round-trip the embedded job through config.Parse so the service
	// applies exactly the validation pskanon's -job path does.
	raw, err := json.Marshal(r.Job)
	if err != nil {
		return nil, nil, inputError{err}
	}
	job, err := config.Parse(raw)
	if err != nil {
		return nil, nil, inputError{err}
	}
	for attr, spec := range job.Hierarchies {
		if spec.File != "" {
			return nil, nil, inputErrf("hierarchy %q: file-based specs are not accepted over the service (inline the chains)", attr)
		}
	}
	sd, err := s.sharedDataset(key, r.CSV, job)
	if err != nil {
		return nil, nil, err
	}
	pol := composePolicy(job.Confidential, job.P, job.K, r.LDiv, r.TClose, r.Alpha)
	kind, algorithm, includeMasked := r.Kind, r.Algorithm, r.IncludeMasked
	run := func(ctx context.Context, rec *obs.Recorder) (*JobResult, search.StopReason, error) {
		cfg := search.Config{
			QIs:           job.QuasiIdentifiers,
			Confidential:  job.Confidential,
			Hierarchies:   sd.hiers,
			K:             job.K,
			P:             job.P,
			MaxSuppress:   job.MaxSuppress,
			Policy:        pol,
			UseConditions: true,
			Workers:       workers,
			Recorder:      rec,
			Context:       ctx,
			Budget:        eff,
		}
		if eff.MaxCacheBytes == 0 {
			// A private memory budget opts out of sharing: the shared
			// cache's bytes belong to every tenant at once and must not
			// trip one request's limit.
			cfg.Cache = sd.cache
		}
		if kind == KindFrontier {
			cfg.Frontier = search.FrontierConfig{Enabled: true}
		}
		var res search.Result
		var allMinimal []string
		switch algorithm {
		case "samarati":
			r2, err := search.Samarati(sd.tbl, cfg)
			if err != nil {
				return nil, search.StopDone, inputError{err}
			}
			res = r2
		case "bottomup", "exhaustive":
			var er search.ExhaustiveResult
			var err error
			if algorithm == "bottomup" {
				er, err = search.BottomUp(sd.tbl, cfg)
			} else {
				er, err = search.Exhaustive(sd.tbl, cfg)
			}
			if err != nil {
				return nil, search.StopDone, inputError{err}
			}
			res = search.Result{Stats: er.Stats, StopReason: er.StopReason, Frontier: er.Frontier}
			if len(er.Minimal) > 0 {
				first := er.Minimal[0]
				res.Found = true
				res.Node = first.Node
				res.Masked = first.Masked
				res.Suppressed = first.Suppressed
				for _, m := range er.Minimal {
					allMinimal = append(allMinimal, fmt.Sprint(m.Node))
				}
			}
		}
		if kind == KindFrontier {
			fr := &FrontierResult{Members: []FrontierMember{}}
			for _, f := range res.Frontier {
				fr.Members = append(fr.Members, FrontierMember{
					Node:             fmt.Sprint(f.Node),
					Height:           f.Node.Height(),
					Rank:             f.Rank,
					MinGroup:         f.MinGroup,
					Groups:           f.Groups,
					Suppressed:       f.Suppressed,
					HeightRatio:      f.Loss.HeightRatio,
					Precision:        f.Loss.Precision,
					Discernibility:   f.Loss.Discernibility,
					AvgGroupRatio:    f.Loss.AvgGroupRatio,
					SuppressionRatio: f.Loss.SuppressionRatio,
					EntropyLossBits:  f.Loss.EntropyLossBits,
				})
			}
			return &JobResult{Frontier: fr}, res.StopReason, nil
		}
		ar := &AnonymizeResult{Found: res.Found, Suppressed: res.Suppressed}
		if res.Found {
			ar.Node = fmt.Sprint(res.Node)
			ar.Height = res.Node.Height()
			ar.ReleasedRows = res.Masked.NumRows()
			ar.AllMinimal = allMinimal
			if includeMasked {
				var buf strings.Builder
				if err := res.Masked.WriteCSV(&buf); err != nil {
					return nil, res.StopReason, err
				}
				ar.MaskedCSV = buf.String()
			}
		}
		return &JobResult{Anonymize: ar}, res.StopReason, nil
	}
	return run, sd, nil
}

// prepareAttack builds a record-linkage attack run — the service twin
// of pskattack.
func prepareAttack(r *JobRequest) (runFunc, error) {
	mm, err := table.ReadCSV(strings.NewReader(r.CSV), nil)
	if err != nil {
		return nil, inputErrf("masked csv: %w", err)
	}
	ext, err := table.ReadCSV(strings.NewReader(r.ExternalCSV), nil)
	if err != nil {
		return nil, inputErrf("external csv: %w", err)
	}
	qis, confs, id := r.QIs, r.Conf, r.ID
	return func(ctx context.Context, rec *obs.Recorder) (*JobResult, search.StopReason, error) {
		in := &risk.Intruder{External: ext, IDAttr: id, QIs: qis}
		links, err := in.Attack(mm, confs)
		if err != nil {
			return nil, search.StopDone, inputError{err}
		}
		sum := risk.Summarize(links)
		return &JobResult{Attack: &AttackResult{
			Individuals:               sum.Individuals,
			Linked:                    sum.Linked,
			UniquelyIdentified:        sum.UniquelyIdentified,
			AttributeDisclosed:        sum.AttributeDisclosed,
			MaxIdentityRisk:           sum.MaxIdentityRisk,
			ExpectedReidentifications: sum.ExpectedReidentifications,
		}}, search.StopDone, nil
	}, nil
}

// csvHeader reads the header row of an inline CSV payload.
func csvHeader(raw string) ([]string, error) {
	r := csv.NewReader(strings.NewReader(raw))
	r.TrimLeadingSpace = true
	return r.Read()
}
