package loadtest

import (
	"strings"
	"testing"
)

// TestRunDedup is a scaled-down version of the E21 dedup scenario: a
// wide queue, a small tenant fleet, and the two invariants that must
// hold at any interleaving.
func TestRunDedup(t *testing.T) {
	rep, err := Run(Config{Tenants: 16, Requests: 2, Variants: 3, Rows: 60, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 32 {
		t.Errorf("submitted %d, want 32", rep.Submitted)
	}
	if rep.Accepted+rep.Rejected != rep.Submitted {
		t.Errorf("accepted %d + rejected %d != submitted %d", rep.Accepted, rep.Rejected, rep.Submitted)
	}
	if rep.Rejected != 0 {
		t.Errorf("wide queue rejected %d submissions", rep.Rejected)
	}
	if !rep.SingleFlight {
		t.Errorf("single-flight violated: %d searches for %d variants", rep.Searches, rep.Variants)
	}
	if !rep.ResultsConsistent {
		t.Error("per-variant results not byte-identical")
	}
	if rep.Searches <= 0 {
		t.Errorf("no searches ran: %+v", rep)
	}
	if got := rep.Format(); !strings.Contains(got, "single-flight") {
		t.Errorf("Format missing verdict lines:\n%s", got)
	}
}

// TestRunBackpressure: distinct keys defeat coalescing, so a tiny
// queue with one worker actually fills. Whether 429 fires depends on
// scheduling; the invariants must hold either way and the totals must
// balance.
func TestRunBackpressure(t *testing.T) {
	rep, err := Run(Config{Tenants: 12, Requests: 2, Distinct: true, Rows: 60, Queue: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Variants != 24 {
		t.Errorf("distinct mode: variants %d, want 24", rep.Variants)
	}
	if rep.Accepted+rep.Rejected != rep.Submitted {
		t.Errorf("accepted %d + rejected %d != submitted %d", rep.Accepted, rep.Rejected, rep.Submitted)
	}
	if !rep.SingleFlight || !rep.ResultsConsistent {
		t.Errorf("invariants violated: %+v", rep)
	}
}

// TestDeterministicInputs: the request mix is a pure function of the
// indices, so two runs must generate identical payloads.
func TestDeterministicInputs(t *testing.T) {
	if DatasetCSV(50) != DatasetCSV(50) {
		t.Error("DatasetCSV not deterministic")
	}
	if !strings.HasPrefix(DatasetCSV(3), "Age,ZipCode,Sex,Illness\n") {
		t.Errorf("unexpected header: %q", DatasetCSV(3))
	}
	for v := 0; v < 8; v++ {
		job := JobSpec(v)
		if job.K < 2 || job.P < 1 || job.P > job.K {
			t.Errorf("variant %d: invalid policy k=%d p=%d", v, job.K, job.P)
		}
	}
}
