// Package loadtest is a deterministic load-generation harness for the
// anonymization service: it drives an in-process serve.Server over real
// HTTP with hundreds of concurrent tenants and verifies the invariants
// that must hold at any interleaving — single-flight collapses the
// request mix to at most one search per distinct content key, every
// tenant of a variant reads the same result bytes, and rejected
// submissions never reach the engine. Request contents are pure
// functions of (tenant, request) indices, so two runs issue the same
// mix; only scheduling differs.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"psk/internal/config"
	"psk/internal/serve"
)

// Config sizes a load-test run. The zero value gets defaults suitable
// for a CI gate (hundreds of requests, sub-second wall clock).
type Config struct {
	// Tenants is the number of concurrent clients. Default 100.
	Tenants int
	// Requests per tenant. Default 4.
	Requests int
	// Variants is the number of distinct job configurations in the mix;
	// tenant t's request r uses variant (t+r) % Variants. Default 4.
	Variants int
	// Distinct gives every request its own variant (index t*Requests+r),
	// defeating single-flight so the queue actually fills — the
	// backpressure scenario. Variants is ignored.
	Distinct bool
	// Rows sizes the synthetic dataset every request carries. Default 240.
	Rows int
	// Queue / Workers size the server. Defaults: Tenants*Requests (no
	// backpressure) / 4.
	Queue   int
	Workers int
	// PollEvery is the job-status poll interval. Default 2ms.
	PollEvery time.Duration
}

// Report is the outcome of a run: totals, the dedup counters read from
// the service's /metrics, and the invariant checks' verdicts.
type Report struct {
	Tenants   int           `json:"tenants"`
	Requests  int           `json:"requests_per_tenant"`
	Variants  int           `json:"variants"`
	Rows      int           `json:"rows"`
	Submitted int           `json:"submitted"`
	Accepted  int           `json:"accepted"`
	Rejected  int           `json:"rejected_429"`
	Searches  int64         `json:"searches"`
	Coalesced int64         `json:"coalesced"`
	CacheHits int64         `json:"cache_hits"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	// ResultsConsistent: every accepted job of a variant returned
	// byte-identical result payloads.
	ResultsConsistent bool `json:"results_consistent"`
	// SingleFlight: the service ran at most one search per variant.
	SingleFlight bool `json:"single_flight"`
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 100
	}
	if c.Requests <= 0 {
		c.Requests = 4
	}
	if c.Variants <= 0 {
		c.Variants = 4
	}
	if c.Rows <= 0 {
		c.Rows = 240
	}
	if c.Queue <= 0 {
		c.Queue = c.Tenants * c.Requests
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 2 * time.Millisecond
	}
	return c
}

// DatasetCSV builds the synthetic microdata every request carries: a
// patients-shaped table whose values are pure functions of the row
// index. Exported so the serve benchmarks reuse the same data.
func DatasetCSV(rows int) string {
	var b strings.Builder
	b.WriteString("Age,ZipCode,Sex,Illness\n")
	illnesses := [4]string{"Flu", "Asthma", "Diabetes", "Hypertension"}
	sexes := [2]string{"M", "F"}
	zips := [4]string{"41076", "41099", "43102", "43103"}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,%s,%s,%s\n",
			20+(i*7)%50, zips[(i/3)%4], sexes[i%2], illnesses[(i*5)%4])
	}
	return b.String()
}

// JobSpec builds the job description for one variant. Exported for the
// serve benchmarks.
func JobSpec(variant int) *config.Job {
	raw := fmt.Sprintf(`{
  "quasiIdentifiers": ["Age", "ZipCode", "Sex"],
  "confidential": ["Illness"],
  "k": %d, "p": %d, "maxSuppress": %d,
  "types": {"Age": "int"},
  "hierarchies": {
    "Age":     {"type": "interval",
                "levels": [{"name": "decades", "width": 10, "min": 20, "max": 70},
                           {"cuts": [50], "labels": ["<50", ">=50"]},
                           {"labels": ["*"]}]},
    "ZipCode": {"type": "prefixSteps", "width": 5, "suppress": [2, 5]},
    "Sex":     {"type": "flat", "top": "Person"}
  }
}`, 2+variant%3, 1+variant%2, 2+variant)
	job, err := config.Parse([]byte(raw))
	if err != nil {
		panic("loadtest: bad variant spec: " + err.Error()) // pure function of variant; cannot fail
	}
	return job
}

// Run executes the load test against a fresh server and reports the
// outcome. It returns an error only for harness failures (transport
// errors, jobs that never finish); verdict-level findings land in the
// Report so callers can render them.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	srv := serve.New(serve.Options{
		QueueSize: cfg.Queue,
		Workers:   cfg.Workers,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	return RunAgainst(cfg, ts.URL)
}

// RunAgainst executes the load test against an already-running service
// at baseURL — the path `pskexp -exp serve` and the CI smoke gate use
// to exercise the real binary over real sockets.
func RunAgainst(cfg Config, baseURL string) (*Report, error) {
	cfg = cfg.withDefaults()
	nVariants := cfg.Variants
	if cfg.Distinct {
		nVariants = cfg.Tenants * cfg.Requests
	}
	csv := DatasetCSV(cfg.Rows)
	requests := make([][]byte, nVariants)
	for v := range requests {
		raw, err := json.Marshal(serve.JobRequest{
			Kind: serve.KindAnonymize, CSV: csv, Job: JobSpec(v),
		})
		if err != nil {
			return nil, err
		}
		requests[v] = raw
	}

	rep := &Report{Tenants: cfg.Tenants, Requests: cfg.Requests, Variants: nVariants, Rows: cfg.Rows}
	type submitted struct {
		id      string
		variant int
	}
	var (
		mu   sync.Mutex
		jobs []submitted
		errs []error
	)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for r := 0; r < cfg.Requests; r++ {
				v := (t + r) % nVariants
				if cfg.Distinct {
					v = t*cfg.Requests + r
				}
				resp, err := client.Post(baseURL+"/v1/jobs", "application/json",
					bytes.NewReader(requests[v]))
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				var payload struct {
					ID    string `json:"id"`
					Error string `json:"error"`
				}
				err = json.NewDecoder(resp.Body).Decode(&payload)
				resp.Body.Close()
				mu.Lock()
				rep.Submitted++
				switch {
				case err != nil:
					errs = append(errs, err)
				case resp.StatusCode == http.StatusAccepted:
					rep.Accepted++
					jobs = append(jobs, submitted{payload.ID, v})
				case resp.StatusCode == http.StatusTooManyRequests:
					rep.Rejected++
				default:
					errs = append(errs, fmt.Errorf("submit: status %d: %s", resp.StatusCode, payload.Error))
				}
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, fmt.Errorf("load test: %d submit failures, first: %w", len(errs), errs[0])
	}

	// Poll every accepted job to completion and collect result bytes.
	variantResult := make(map[int]string)
	rep.ResultsConsistent = true
	deadline := time.Now().Add(2 * time.Minute)
	for _, j := range jobs {
		for {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("load test: job %s did not finish", j.id)
			}
			resp, err := client.Get(baseURL + "/v1/jobs/" + j.id)
			if err != nil {
				return nil, err
			}
			var payload struct {
				State  string          `json:"state"`
				Result json.RawMessage `json:"result"`
				Error  string          `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&payload)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if payload.State == "queued" || payload.State == "running" {
				time.Sleep(cfg.PollEvery)
				continue
			}
			if payload.State != "done" {
				return nil, fmt.Errorf("load test: job %s ended %s: %s", j.id, payload.State, payload.Error)
			}
			if prior, ok := variantResult[j.variant]; !ok {
				variantResult[j.variant] = string(payload.Result)
			} else if prior != string(payload.Result) {
				rep.ResultsConsistent = false
			}
			break
		}
	}
	rep.Elapsed = time.Since(start)

	// Read the dedup counters off the service.
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	var m serve.ServiceMetrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	rep.Searches = m.Counters["searches"]
	rep.Coalesced = m.Counters["coalesced"]
	rep.CacheHits = m.Counters["cache_hits"]
	rep.SingleFlight = rep.Searches <= int64(nVariants)
	return rep, nil
}

// Format renders the report as the experiment harness's text block.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenants: %d x %d requests over %d variants (%d-row dataset)\n",
		r.Tenants, r.Requests, r.Variants, r.Rows)
	fmt.Fprintf(&b, "submitted: %d  accepted: %d  rejected(429): %d\n",
		r.Submitted, r.Accepted, r.Rejected)
	fmt.Fprintf(&b, "searches run: %d  coalesced: %d  cache hits: %d\n",
		r.Searches, r.Coalesced, r.CacheHits)
	fmt.Fprintf(&b, "single-flight (searches <= variants): %v\n", r.SingleFlight)
	fmt.Fprintf(&b, "per-variant results byte-identical: %v\n", r.ResultsConsistent)
	fmt.Fprintf(&b, "elapsed: %s\n", r.Elapsed.Round(time.Millisecond))
	return b.String()
}
