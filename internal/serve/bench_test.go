package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"psk/internal/serve"
	"psk/internal/serve/loadtest"
)

// BenchmarkServe measures end-to-end job latency over real HTTP in the
// three regimes the result cache creates: cold (a distinct content key
// every iteration, so every submission runs a full search),
// result-cache-hit (an identical resubmission served straight from the
// LRU without ever queueing), and coalesced (a burst of identical
// in-flight requests collapsing onto a single underlying search).
// `make bench-serve` snapshots it into BENCH_serve.json and
// bench-compare gates regressions at SERVE_TOLERANCE. The numbers are
// service latencies — HTTP round trips and poll intervals included —
// so the interesting signal is the ratio between the regimes, not the
// absolute ns/op.
func BenchmarkServe(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		env := newBenchEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env.submitWait(b, benchBody(b, int64(1_000_000_000+i)))
		}
	})

	b.Run("result-cache-hit", func(b *testing.B) {
		env := newBenchEnv(b)
		body := benchBody(b, 1_000_000_000)
		env.submitWait(b, body) // warm the result cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env.submitWait(b, body)
		}
	})

	b.Run("coalesced", func(b *testing.B) {
		env := newBenchEnv(b)
		const tenants = 8
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh key per iteration; eight tenants race to submit it.
			// One runs, the rest coalesce (or hit the cache if they land
			// after completion). ns/op is burst-to-all-done latency.
			body := benchBody(b, int64(2_000_000_000+i))
			var wg sync.WaitGroup
			for f := 0; f < tenants; f++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					env.submitWait(b, body)
				}()
			}
			wg.Wait()
		}
	})
}

type benchEnv struct {
	ts     *httptest.Server
	client *http.Client
}

func newBenchEnv(b *testing.B) *benchEnv {
	b.Helper()
	srv := serve.New(serve.Options{Workers: 2, QueueSize: 256, ResultCacheEntries: 256})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &benchEnv{ts: ts, client: &http.Client{Timeout: 30 * time.Second}}
}

// benchBody builds an anonymize request over the loadtest dataset.
// maxNodes is far above the lattice size, so it never stops a search —
// it only salts the content key, which is how the cold and coalesced
// regimes force a fresh key per iteration.
func benchBody(b *testing.B, maxNodes int64) []byte {
	b.Helper()
	raw, err := json.Marshal(serve.JobRequest{
		Kind:   serve.KindAnonymize,
		CSV:    loadtest.DatasetCSV(240),
		Job:    loadtest.JobSpec(0),
		Budget: serve.BudgetRequest{MaxNodes: maxNodes},
	})
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

// submitWait submits one job and polls it to completion. Safe to call
// from bench goroutines (Errorf only, never FailNow).
func (e *benchEnv) submitWait(b *testing.B, body []byte) {
	resp, err := e.client.Post(e.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Error(err)
		return
	}
	var sub struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		b.Errorf("submit: status %d err %v (%s)", resp.StatusCode, err, sub.Error)
		return
	}
	for {
		resp, err := e.client.Get(e.ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			b.Error(err)
			return
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			b.Error(err)
			return
		}
		if st.State == "queued" || st.State == "running" {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if st.State != "done" {
			b.Errorf("job %s ended %s: %s", sub.ID, st.State, st.Error)
		}
		return
	}
}
